.PHONY: all test bench bench-smoke bench-scale bench-write fault-smoke fuzz-smoke serve-smoke replica-smoke doc clean

all:
	dune build

test:
	dune runtest

# Full benchmark suite (slow; quotas per EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# Tiny-quota sanity run of the perf experiments (P1-P9); leaves
# BENCH_legality.json, BENCH_query.json, BENCH_session.json,
# BENCH_store.json, BENCH_ingest.json, BENCH_serve.json,
# BENCH_scale.json, BENCH_write.json and BENCH_replicate.json in
# _build/default/bench.  --force because the json is a side effect of
# the alias action, which dune would otherwise cache.
bench-smoke:
	dune build --force @bench-smoke

# The full P7 scale sweep (10^4 .. 10^6 entries): one store lifecycle
# per size - bulk load, queries, transactions, delta + full checkpoint,
# trusted recovery - with wall-clock and peak-heap per point.  Writes
# BENCH_scale.json into the working directory.
bench-scale:
	dune exec bench/main.exe -- --json P7

# The full P8 write-throughput sweep (10^4 .. 10^6 entries): steady-state
# single-entry transactions against a live session on chunked
# copy-on-write index versions, next to a rebuild-per-transaction
# baseline.  Writes BENCH_write.json into the working directory.
bench-write:
	dune exec bench/main.exe -- --json P8

# Daemon round-trip: initialize a throwaway store, serve it on an
# ephemeral port, drive brief mixed read/write traffic from concurrent
# clients, and shut down cleanly over the wire.
serve-smoke:
	@dune build bin/ldapschema.exe
	@tmp=$$(mktemp -d); bin=_build/default/bin/ldapschema.exe; \
	trap 'rm -rf "$$tmp"' EXIT; \
	$$bin generate --units 4 --persons 3 --out $$tmp/data.ldif \
	  --emit-schema $$tmp/wp.spec 2>/dev/null; \
	: > $$tmp/empty.ldif; \
	$$bin update --store $$tmp/store -s $$tmp/wp.spec -d $$tmp/data.ldif \
	  -o $$tmp/empty.ldif >/dev/null; \
	$$bin serve $$tmp/store --port 0 > $$tmp/serve.out 2>&1 & pid=$$!; \
	port=""; for i in $$(seq 100); do \
	  port=$$(sed -n 's/^listening on [^:]*:\([0-9]*\) .*/\1/p' $$tmp/serve.out); \
	  [ -n "$$port" ] && break; sleep 0.1; \
	done; \
	[ -n "$$port" ] || { echo "serve-smoke: daemon never bound"; kill $$pid; exit 1; }; \
	$$bin traffic --port $$port --clients 8 --requests 25 --write-ratio 0.3 || exit 1; \
	$$bin client --port $$port shutdown >/dev/null || exit 1; \
	wait $$pid; \
	echo "serve-smoke: ok (daemon exited cleanly)"

# Replication round-trip: serve a store with --replicate, bootstrap a
# replica over the wire, drive writes, kill -9 the replica mid-stream,
# restart it (resume from its durable lsn, no re-bootstrap), drive more
# writes, and require both sides to converge to the same lsn and the
# same query answers.
replica-smoke:
	@dune build bin/ldapschema.exe
	@tmp=$$(mktemp -d); bin=_build/default/bin/ldapschema.exe; \
	trap 'rm -rf "$$tmp"' EXIT; \
	$$bin generate --units 4 --persons 3 --out $$tmp/data.ldif \
	  --emit-schema $$tmp/wp.spec 2>/dev/null; \
	: > $$tmp/empty.ldif; \
	$$bin update --store $$tmp/store -s $$tmp/wp.spec -d $$tmp/data.ldif \
	  -o $$tmp/empty.ldif >/dev/null; \
	$$bin serve $$tmp/store --port 0 --replicate > $$tmp/serve.out 2>&1 & spid=$$!; \
	port=""; for i in $$(seq 100); do \
	  port=$$(sed -n 's/^listening on [^:]*:\([0-9]*\) .*/\1/p' $$tmp/serve.out); \
	  [ -n "$$port" ] && break; sleep 0.1; \
	done; \
	[ -n "$$port" ] || { echo "replica-smoke: primary never bound"; kill $$spid; exit 1; }; \
	$$bin replica --from 127.0.0.1:$$port --store $$tmp/rstore --port 0 \
	  > $$tmp/replica.out 2>&1 & rpid=$$!; \
	$$bin traffic --port $$port --clients 4 --requests 20 --write-ratio 0.5 >/dev/null || exit 1; \
	kill -9 $$rpid 2>/dev/null; wait $$rpid 2>/dev/null; \
	$$bin traffic --port $$port --clients 2 --requests 10 --write-ratio 1.0 --tag u2 >/dev/null || exit 1; \
	$$bin replica --from 127.0.0.1:$$port --store $$tmp/rstore --port 0 \
	  > $$tmp/replica2.out 2>&1 & rpid=$$!; \
	rport=""; for i in $$(seq 100); do \
	  rport=$$(sed -n 's/^replica listening on [^:]*:\([0-9]*\) .*/\1/p' $$tmp/replica2.out); \
	  [ -n "$$rport" ] && break; sleep 0.1; \
	done; \
	[ -n "$$rport" ] || { echo "replica-smoke: replica never bound"; kill $$spid; exit 1; }; \
	plsn=$$($$bin client --port $$port stats | sed -n 's/^lsn //p'); \
	alsn=""; for i in $$(seq 100); do \
	  alsn=$$($$bin client --port $$rport stats | sed -n 's/^applied_lsn //p'); \
	  [ "$$alsn" = "$$plsn" ] && break; sleep 0.1; \
	done; \
	[ "$$alsn" = "$$plsn" ] || { echo "replica-smoke: never converged (primary $$plsn, replica $$alsn)"; kill $$spid $$rpid; exit 1; }; \
	pq=$$($$bin client --port $$port query '(objectClass=person)' | head -1); \
	rq=$$($$bin client --port $$rport query '(objectClass=person)' | head -1); \
	[ "$$pq" = "$$rq" ] || { echo "replica-smoke: answers diverge (primary $$pq, replica $$rq)"; kill $$spid $$rpid; exit 1; }; \
	$$bin client --port $$rport shutdown >/dev/null || exit 1; \
	wait $$rpid; \
	$$bin client --port $$port shutdown >/dev/null || exit 1; \
	wait $$spid; \
	echo "replica-smoke: ok (killed, reconnected, converged at lsn $$plsn, $$pq persons both sides)"

# Crash-recovery tests in isolation: the durable-store suite drives every
# WAL/checkpoint scenario through the fault-injecting Io harness (torn
# writes, bit flips, crash at every mutating operation).
fault-smoke:
	dune exec test/test_store.exe

# Quick differential-fuzzing pass over every registered oracle.  Exits
# non-zero if any oracle pair disagrees.
fuzz-smoke:
	dune exec -- ldapschema fuzz --budget 200 --seed 42 -j 0

# API documentation (requires odoc; dune reports a clear error if the
# toolchain lacks it).
doc:
	dune build @doc

clean:
	dune clean
