.PHONY: all test bench bench-smoke fuzz-smoke doc clean

all:
	dune build

test:
	dune runtest

# Full benchmark suite (slow; quotas per EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# Tiny-quota sanity run of the parallel-engine benchmark; leaves
# _build/default/bench/BENCH_legality.json.  --force because the json is
# a side effect of the alias action, which dune would otherwise cache.
bench-smoke:
	dune build --force @bench-smoke

# Quick differential-fuzzing pass over every registered oracle.  Exits
# non-zero if any oracle pair disagrees.
fuzz-smoke:
	dune exec -- ldapschema fuzz --budget 200 --seed 42 -j 0

# API documentation (requires odoc; dune reports a clear error if the
# toolchain lacks it).
doc:
	dune build @doc

clean:
	dune clean
