.PHONY: all test bench bench-smoke clean

all:
	dune build

test:
	dune runtest

# Full benchmark suite (slow; quotas per EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# Tiny-quota sanity run of the parallel-engine benchmark; leaves
# _build/default/bench/BENCH_legality.json.  --force because the json is
# a side effect of the alias action, which dune would otherwise cache.
bench-smoke:
	dune build --force @bench-smoke

clean:
	dune clean
