.PHONY: all test bench bench-smoke fault-smoke fuzz-smoke doc clean

all:
	dune build

test:
	dune runtest

# Full benchmark suite (slow; quotas per EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# Tiny-quota sanity run of the perf experiments (P1-P4); leaves
# BENCH_legality.json, BENCH_query.json, BENCH_session.json and
# BENCH_store.json in _build/default/bench.  --force because the json is
# a side effect of the alias action, which dune would otherwise cache.
bench-smoke:
	dune build --force @bench-smoke

# Crash-recovery tests in isolation: the durable-store suite drives every
# WAL/checkpoint scenario through the fault-injecting Io harness (torn
# writes, bit flips, crash at every mutating operation).
fault-smoke:
	dune exec test/test_store.exe

# Quick differential-fuzzing pass over every registered oracle.  Exits
# non-zero if any oracle pair disagrees.
fuzz-smoke:
	dune exec -- ldapschema fuzz --budget 200 --seed 42 -j 0

# API documentation (requires odoc; dune reports a clear error if the
# toolchain lacks it).
doc:
	dune build @doc

clean:
	dune clean
