.PHONY: all test bench bench-smoke bench-scale bench-write fault-smoke fuzz-smoke serve-smoke doc clean

all:
	dune build

test:
	dune runtest

# Full benchmark suite (slow; quotas per EXPERIMENTS.md).
bench:
	dune exec bench/main.exe

# Tiny-quota sanity run of the perf experiments (P1-P8); leaves
# BENCH_legality.json, BENCH_query.json, BENCH_session.json,
# BENCH_store.json, BENCH_ingest.json, BENCH_serve.json,
# BENCH_scale.json and BENCH_write.json in _build/default/bench.  --force because the json
# is a side effect of the alias action, which dune would otherwise
# cache.
bench-smoke:
	dune build --force @bench-smoke

# The full P7 scale sweep (10^4 .. 10^6 entries): one store lifecycle
# per size - bulk load, queries, transactions, delta + full checkpoint,
# trusted recovery - with wall-clock and peak-heap per point.  Writes
# BENCH_scale.json into the working directory.
bench-scale:
	dune exec bench/main.exe -- --json P7

# The full P8 write-throughput sweep (10^4 .. 10^6 entries): steady-state
# single-entry transactions against a live session on chunked
# copy-on-write index versions, next to a rebuild-per-transaction
# baseline.  Writes BENCH_write.json into the working directory.
bench-write:
	dune exec bench/main.exe -- --json P8

# Daemon round-trip: initialize a throwaway store, serve it on an
# ephemeral port, drive brief mixed read/write traffic from concurrent
# clients, and shut down cleanly over the wire.
serve-smoke:
	@dune build bin/ldapschema.exe
	@tmp=$$(mktemp -d); bin=_build/default/bin/ldapschema.exe; \
	trap 'rm -rf "$$tmp"' EXIT; \
	$$bin generate --units 4 --persons 3 --out $$tmp/data.ldif \
	  --emit-schema $$tmp/wp.spec 2>/dev/null; \
	: > $$tmp/empty.ldif; \
	$$bin update --store $$tmp/store -s $$tmp/wp.spec -d $$tmp/data.ldif \
	  -o $$tmp/empty.ldif >/dev/null; \
	$$bin serve $$tmp/store --port 0 > $$tmp/serve.out 2>&1 & pid=$$!; \
	port=""; for i in $$(seq 100); do \
	  port=$$(sed -n 's/^listening on [^:]*:\([0-9]*\) .*/\1/p' $$tmp/serve.out); \
	  [ -n "$$port" ] && break; sleep 0.1; \
	done; \
	[ -n "$$port" ] || { echo "serve-smoke: daemon never bound"; kill $$pid; exit 1; }; \
	$$bin traffic --port $$port --clients 8 --requests 25 --write-ratio 0.3 || exit 1; \
	$$bin client --port $$port shutdown >/dev/null || exit 1; \
	wait $$pid; \
	echo "serve-smoke: ok (daemon exited cleanly)"

# Crash-recovery tests in isolation: the durable-store suite drives every
# WAL/checkpoint scenario through the fault-injecting Io harness (torn
# writes, bit flips, crash at every mutating operation).
fault-smoke:
	dune exec test/test_store.exe

# Quick differential-fuzzing pass over every registered oracle.  Exits
# non-zero if any oracle pair disagrees.
fuzz-smoke:
	dune exec -- ldapschema fuzz --budget 200 --seed 42 -j 0

# API documentation (requires odoc; dune reports a clear error if the
# toolchain lacks it).
doc:
	dune build @doc

clean:
	dune clean
