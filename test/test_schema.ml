(* Tests for the schema components (Definitions 2.2-2.5) and the spec
   language. *)

open Bounds_model
open Bounds_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Attr.of_string
let c = Oclass.of_string

(* --- Attribute schema ---------------------------------------------------- *)

let test_attribute_schema () =
  let s =
    Attribute_schema.empty
    |> Attribute_schema.add_class_exn (c "person") ~required:[ a "name" ]
         ~allowed:[ a "mail" ]
  in
  check "required" true (Attr.Set.mem (a "name") (Attribute_schema.required s (c "person")));
  check "required ⊆ allowed" true
    (Attr.Set.subset
       (Attribute_schema.required s (c "person"))
       (Attribute_schema.allowed s (c "person")));
  check "allowed includes mail" true
    (Attr.Set.mem (a "mail") (Attribute_schema.allowed s (c "person")));
  check "unknown class empty" true
    (Attr.Set.is_empty (Attribute_schema.required s (c "nosuch")));
  check "duplicate class" true
    (Result.is_error (Attribute_schema.add_class (c "person") s));
  check_int "total allowed" 2 (Attribute_schema.total_allowed s)

(* --- Class schema ---------------------------------------------------------- *)

let figure2 () =
  Class_schema.empty
  |> Class_schema.add_core_exn (c "orggroup") ~parent:Oclass.top
  |> Class_schema.add_core_exn (c "organization") ~parent:(c "orggroup")
  |> Class_schema.add_core_exn (c "orgunit") ~parent:(c "orggroup")
  |> Class_schema.add_core_exn (c "person") ~parent:Oclass.top
  |> Class_schema.add_core_exn (c "researcher") ~parent:(c "person")
  |> Class_schema.add_aux_exn (c "online")
  |> Class_schema.allow_aux_exn ~core:(c "person") (c "online")

let test_class_schema_hierarchy () =
  let h = figure2 () in
  check "core" true (Class_schema.is_core h (c "organization"));
  check "aux" true (Class_schema.is_aux h (c "online"));
  check "top is core" true (Class_schema.is_core h Oclass.top);
  Alcotest.(check (list string))
    "superclasses of organization" [ "orggroup"; "top" ]
    (List.map Oclass.to_string (Class_schema.superclasses h (c "organization")));
  check "organization |- orggroup" true
    (Class_schema.is_subclass h ~sub:(c "organization") ~super:(c "orggroup"));
  check "reflexive" true (Class_schema.is_subclass h ~sub:(c "person") ~super:(c "person"));
  check "organization |-/ person (incomparable)" true
    (Class_schema.disjoint h (c "organization") (c "person"));
  check "not disjoint with super" false
    (Class_schema.disjoint h (c "researcher") (c "person"));
  check "aux never disjoint" false (Class_schema.disjoint h (c "online") (c "person"));
  check_int "depth" 3 (Class_schema.depth h);
  check_int "depth of top" 1 (Class_schema.depth_of h Oclass.top);
  check "closure" true
    (Oclass.Set.equal
       (Class_schema.up_closure h (c "researcher"))
       (Oclass.Set.of_list [ c "researcher"; c "person"; Oclass.top ]));
  check "aux_of" true
    (Oclass.Set.mem (c "online") (Class_schema.aux_of h (c "person")));
  check_int "max_aux" 1 (Class_schema.max_aux h)

let test_class_schema_errors () =
  let h = figure2 () in
  check "duplicate core" true
    (Result.is_error (Class_schema.add_core (c "person") ~parent:Oclass.top h));
  check "aux as parent" true
    (Result.is_error (Class_schema.add_core (c "x") ~parent:(c "online") h));
  check "unknown parent" true
    (Result.is_error (Class_schema.add_core (c "x") ~parent:(c "nosuch") h));
  check "aux duplicate" true (Result.is_error (Class_schema.add_aux (c "person") h));
  check "allow_aux non-core" true
    (Result.is_error (Class_schema.allow_aux ~core:(c "online") (c "online") h));
  check "allow_aux non-aux" true
    (Result.is_error (Class_schema.allow_aux ~core:(c "person") (c "orgunit") h))

(* --- Structure schema ---------------------------------------------------- *)

let test_structure_schema () =
  let s =
    Structure_schema.empty
    |> Structure_schema.require_class (c "orgunit")
    |> Structure_schema.require (c "orggroup") Structure_schema.Descendant (c "person")
    |> Structure_schema.forbid (c "person") Structure_schema.F_child Oclass.top
  in
  check_int "size" 3 (Structure_schema.size s);
  check "mem required class" true (Structure_schema.mem_required_class s (c "orgunit"));
  check "mem required rel" true
    (Structure_schema.mem_required s (c "orggroup", Structure_schema.Descendant, c "person"));
  check "mem forbidden" true
    (Structure_schema.mem_forbidden s (c "person", Structure_schema.F_child, Oclass.top));
  check "classes mentioned" true
    (Oclass.Set.equal
       (Structure_schema.classes s)
       (Oclass.Set.of_list [ c "orgunit"; c "orggroup"; c "person"; Oclass.top ]));
  (* idempotent adds *)
  let s2 =
    Structure_schema.require (c "orggroup") Structure_schema.Descendant (c "person") s
  in
  check "idempotent" true (Structure_schema.equal s s2)

(* --- Schema validation ----------------------------------------------------- *)

let test_schema_validation () =
  let classes = figure2 () in
  let bad_attr =
    Attribute_schema.add_class_exn (c "ghost") ~required:[ a "x" ] Attribute_schema.empty
  in
  check "undeclared class in attribute schema" true
    (Result.is_error (Schema.make ~classes ~attributes:bad_attr ()));
  let bad_structure =
    Structure_schema.require_class (c "online") Structure_schema.empty
  in
  check "aux class in structure schema" true
    (Result.is_error (Schema.make ~classes ~structure:bad_structure ()));
  let bad_sv = Schema.make ~classes ~single_valued:[ a "ghostattr" ] () in
  check "unknown single-valued attr" true (Result.is_error bad_sv);
  (* keys are single-valued by definition *)
  let attributes =
    Attribute_schema.add_class_exn (c "person") ~required:[ a "uid" ]
      Attribute_schema.empty
  in
  let s = Schema.make_exn ~classes ~attributes ~keys:[ a "uid" ] () in
  check "key implies single-valued" true (Attr.Set.mem (a "uid") s.Schema.single_valued)

(* --- Spec language ---------------------------------------------------------- *)

let spec =
  {|
# white pages, compactly
attribute name : string
attribute uid : string
attribute age : int
attribute mail : string

class orgGroup { aux: online }
class organization extends orgGroup { required: o }
attribute o : string
class orgUnit extends orgGroup { required: ou }
attribute ou : string
class person { required: name, uid; allowed: age; aux: online }
class researcher extends person
auxiliary online { allowed: mail }

require exists orgUnit
require orgGroup descendant person
require orgUnit parent orgGroup
forbid person child top
single-valued uid
key uid
|}

let test_spec_parse () =
  let s = Spec_parser.parse_exn spec in
  check "person core" true (Class_schema.is_core s.Schema.classes (c "person"));
  check "researcher extends person" true
    (Class_schema.is_subclass s.Schema.classes ~sub:(c "researcher") ~super:(c "person"));
  check "online aux" true (Class_schema.is_aux s.Schema.classes (c "online"));
  check "aux allowed on person" true
    (Oclass.Set.mem (c "online") (Class_schema.aux_of s.Schema.classes (c "person")));
  check "typing" true (Typing.find s.Schema.typing (a "age") = Atype.T_int);
  check "required attrs" true
    (Attr.Set.mem (a "uid") (Attribute_schema.required s.Schema.attributes (c "person")));
  check "structure: required class" true
    (Structure_schema.mem_required_class s.Schema.structure (c "orgunit"));
  check "structure: descendant rel" true
    (Structure_schema.mem_required s.Schema.structure
       (c "orggroup", Structure_schema.Descendant, c "person"));
  check "structure: forbidden" true
    (Structure_schema.mem_forbidden s.Schema.structure
       (c "person", Structure_schema.F_child, Oclass.top));
  check "key" true (Attr.Set.mem (a "uid") s.Schema.keys)

let test_spec_errors () =
  let err s =
    match Spec_parser.parse s with Error _ -> true | Ok _ -> false
  in
  check "unknown statement" true (err "frobnicate x");
  check "bad type" true (err "attribute a : float");
  check "parent before child" true (err "class a extends b\nclass b");
  check "aux with extends" true (err "auxiliary x extends top");
  check "missing colon" true (err "attribute a string");
  check "unterminated body" true (err "class x { required: a");
  check "line numbers" true
    (match Spec_parser.parse "class a\nclass a" with
    | Error e -> e.Parse_error.pos = 2
    | Ok _ -> false)

let test_spec_roundtrip () =
  let s = Spec_parser.parse_exn spec in
  let printed = Spec_printer.to_string s in
  let s' = Spec_parser.parse_exn printed in
  check "schema equal after roundtrip" true (Schema.equal s s');
  check "typing preserved" true
    (Typing.find s'.Schema.typing (a "age") = Atype.T_int)

let test_spec_roundtrip_white_pages () =
  let s = Bounds_workload.White_pages.schema in
  let s' = Spec_parser.parse_exn (Spec_printer.to_string s) in
  check "white pages roundtrip" true (Schema.equal s s')

let test_spec_roundtrip_den () =
  let s = Bounds_workload.Den.schema in
  let s' = Spec_parser.parse_exn (Spec_printer.to_string s) in
  check "den roundtrip" true (Schema.equal s s')

(* property: random schemas survive print→parse *)
let prop_spec_roundtrip =
  QCheck.Test.make ~name:"spec print/parse roundtrip on random schemas" ~count:100
    (QCheck.make
       ~print:(fun seed ->
         Spec_printer.to_string
           (Bounds_workload.Gen.random_schema ~seed ~n_classes:6 ~n_req:5 ~n_forb:3
              ~n_required_classes:2))
       QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let s =
        Bounds_workload.Gen.random_schema ~seed ~n_classes:6 ~n_req:5 ~n_forb:3
          ~n_required_classes:2
      in
      Schema.equal s (Spec_parser.parse_exn (Spec_printer.to_string s)))

let () =
  Alcotest.run "schema"
    [
      ("attribute-schema", [ Alcotest.test_case "basics" `Quick test_attribute_schema ]);
      ( "class-schema",
        [
          Alcotest.test_case "hierarchy" `Quick test_class_schema_hierarchy;
          Alcotest.test_case "errors" `Quick test_class_schema_errors;
        ] );
      ("structure-schema", [ Alcotest.test_case "basics" `Quick test_structure_schema ]);
      ("schema", [ Alcotest.test_case "validation" `Quick test_schema_validation ]);
      ( "spec-language",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "roundtrip white pages" `Quick
            test_spec_roundtrip_white_pages;
          Alcotest.test_case "roundtrip den" `Quick test_spec_roundtrip_den;
          QCheck_alcotest.to_alcotest prop_spec_roundtrip;
        ] );
    ]
