(* The network layer: wire protocol totality and round-trips, framed
   connections, epoch reclamation, group commit, and the live server.

   The group-commit property pins the equivalence the server relies on:
   transactions committed through [Store.batch] leave byte-identical
   log contents (same lsns, same frames) as the same transactions
   applied sequentially — recovery cannot tell group commits apart.
   The crash property then tears the shared batch append at every byte
   boundary and requires recovery to land on a prefix of the admitted
   batch (acknowledged ⊆ recovered: the batch never acknowledged, so
   any prefix is within contract — but it must be a {e prefix}, legal,
   and resumable).

   The server integration test runs real sockets on an ephemeral port:
   concurrent readers observe snapshot-isolated, per-connection
   monotone person counts while a writer inserts entries one
   transaction at a time. *)

open Bounds_model
open Bounds_core
module Io = Bounds_store.Io
module Store = Bounds_store.Store
module Frame = Bounds_store.Frame
module Proto = Bounds_net.Proto
module Conn = Bounds_net.Conn
module Epoch = Bounds_net.Epoch
module Server = Bounds_net.Server
module Client = Bounds_net.Client
module Replica = Bounds_net.Replica
module Gen = Bounds_workload.Gen
module WP = Bounds_workload.White_pages

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let get_store what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Store.error_to_string e)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- protocol ------------------------------------------------------------ *)

let test_proto_roundtrip () =
  List.iter
    (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok r' -> check (Proto.request_verb r) true (r = r')
      | Error e -> Alcotest.failf "%s: %s" (Proto.request_verb r) e)
    [
      Proto.Ping;
      Proto.Query "(objectClass=person)";
      Proto.Query "";
      Proto.Query "(minus (a=b)\n (c=d))";
      Proto.Search { base = None; scope = "sub"; filter = "(uid=*)" };
      Proto.Search
        { base = Some "ou=x, o=y"; scope = "one"; filter = "(a=b)\n(c=d)" };
      Proto.Apply "dn: uid=z, o=y\nchangetype: add\nobjectClass: top";
      Proto.Stats;
      Proto.Checkpoint;
      Proto.Shutdown;
      Proto.Hello { version = Proto.version; role = Proto.Reader };
      Proto.Hello { version = 3; role = Proto.Replica };
      Proto.Subscribe { from_lsn = -1 };
      Proto.Subscribe { from_lsn = 123 };
    ];
  List.iter
    (fun r ->
      match Proto.decode_response (Proto.encode_response r) with
      | Ok r' -> check "response" true (r = r')
      | Error e -> Alcotest.failf "response: %s" e)
    [ Proto.Reply ""; Proto.Reply "15\na\nb"; Proto.Failed "no such dn" ]

let test_proto_errors () =
  List.iter
    (fun payload -> check payload true (Result.is_error (Proto.decode_request payload)))
    [ "teleport"; "search\nsub"; "search\n\nx\n(f)"; "search\nsub\nbase"; "" ];
  check "bad response" true (Result.is_error (Proto.decode_response "maybe\nx"))

let line_gen =
  (* newline-free, sometimes empty-ish operand lines *)
  QCheck.Gen.(
    map
      (fun s ->
        String.concat "" (List.filter (fun c -> c <> "\n") [ s ]) |> fun s ->
        if s = "" then "x" else String.map (fun c -> if c = '\n' then '_' else c) s)
      (string_size (int_range 1 12)))

let request_gen =
  QCheck.Gen.(
    oneof
      [
        return Proto.Ping;
        return Proto.Stats;
        return Proto.Checkpoint;
        return Proto.Shutdown;
        map (fun s -> Proto.Query s) (string_size (int_bound 40));
        map (fun s -> Proto.Apply s) (string_size (int_bound 40));
        map3
          (fun base scope filter -> Proto.Search { base; scope; filter })
          (opt line_gen)
          (oneofl [ "base"; "one"; "sub" ])
          (map2 (fun a b -> a ^ b) line_gen (string_size (int_bound 20)));
        map2
          (fun version replica ->
            Proto.Hello
              { version; role = (if replica then Proto.Replica else Proto.Reader) })
          (int_bound 100) bool;
        map (fun l -> Proto.Subscribe { from_lsn = l - 1 }) (int_bound 1000);
      ])

let prop_proto_roundtrip =
  QCheck.Test.make ~name:"request decode . encode = id" ~count:500
    (QCheck.make request_gen) (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok r' -> r = r'
      | Error _ -> false)

let prop_proto_total =
  QCheck.Test.make ~name:"request decoding is total" ~count:500
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun junk ->
      (match Proto.decode_request junk with Ok _ | Error _ -> true)
      && match Proto.decode_response junk with Ok _ | Error _ -> true)

let test_stream_roundtrip () =
  let inst0 = WP.generate ~seed:3 ~units:1 ~persons_per_unit:2 () in
  let counter = ref 90_000 in
  let ops = Gen.random_ops ~counter ~seed:5 ~n:3 WP.schema inst0 in
  List.iter
    (fun msg ->
      match Proto.decode_stream (Proto.encode_stream msg) with
      | Error e -> Alcotest.fail e
      | Ok msg' ->
          (* the codec may rebuild ops structurally; byte equality of the
             re-encoding is the round-trip law that matters on a wire *)
          check_string "stream round-trip" (Proto.encode_stream msg)
            (Proto.encode_stream msg'))
    [
      Proto.Ship { lsn = 1; ops };
      Proto.Ship { lsn = 42; ops = [] };
      Proto.Mark { lsn = 7 };
      Proto.Boot
        {
          lsn = 9;
          schema = "schema text\nwith lines";
          checkpoint = "\x00\x01binary\nblob \xff";
        };
      Proto.Boot { lsn = 0; schema = ""; checkpoint = "" };
    ]

let prop_stream_total =
  QCheck.Test.make ~name:"stream decoding is total" ~count:500
    QCheck.(string_gen QCheck.Gen.(char_range '\000' '\255'))
    (fun junk -> match Proto.decode_stream junk with Ok _ | Error _ -> true)

(* --- framed connections -------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_conn_roundtrip () =
  with_socketpair (fun a b ->
      List.iter
        (fun payload ->
          Conn.send a payload;
          match Conn.recv b with
          | Ok (Some p) -> check_string "payload" payload p
          | Ok None -> Alcotest.fail "unexpected close"
          | Error e -> Alcotest.fail e)
        [ ""; "x"; String.init 300 (fun i -> Char.chr (i mod 256)) ])

let test_conn_close_and_torn () =
  (* clean close before any byte: Ok None *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Conn.recv b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "read from closed peer"
      | Error e -> Alcotest.failf "clean close reported as %s" e);
  (* close mid-frame: Error, not a truncated payload *)
  let framed = Bounds_store.Frame.encode "torn in transit" in
  for keep = 1 to String.length framed - 1 do
    with_socketpair (fun a b ->
        let n = Unix.write_substring a framed 0 keep in
        check_int "short write" keep n;
        Unix.close a;
        match Conn.recv b with
        | Error _ -> ()
        | Ok None -> Alcotest.failf "%d-byte prefix read as clean close" keep
        | Ok (Some _) -> Alcotest.failf "%d-byte prefix read as a frame" keep)
  done

let test_conn_corrupt () =
  let framed = Bytes.of_string (Bounds_store.Frame.encode "checksummed") in
  let last = Bytes.length framed - 1 in
  Bytes.set framed last (Char.chr (Char.code (Bytes.get framed last) lxor 1));
  with_socketpair (fun a b ->
      let s = Bytes.to_string framed in
      let _ = Unix.write_substring a s 0 (String.length s) in
      Unix.close a;
      match Conn.recv b with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bit flip not caught")

(* A replica classifies feed failures by the error text: a mid-frame
   disconnect is torn transport (reconnect and resume), a checksum
   failure is corruption.  Pin the two classes apart. *)
let test_torn_vs_corrupt_classification () =
  let framed = Frame.encode "classification probe" in
  with_socketpair (fun a b ->
      let _ = Unix.write_substring a framed 0 (String.length framed - 3) in
      Unix.close a;
      match Conn.recv b with
      | Error e ->
          check "cut is classified torn" true (contains e "mid-frame");
          check "cut is not classified corrupt" false (contains e "crc")
      | Ok _ -> Alcotest.fail "mid-frame cut read as a frame");
  with_socketpair (fun a b ->
      let flipped = Bytes.of_string framed in
      let mid = Bytes.length flipped - 2 in
      Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
      let s = Bytes.to_string flipped in
      let _ = Unix.write_substring a s 0 (String.length s) in
      Unix.close a;
      match Conn.recv b with
      | Error e -> check "flip is classified corrupt" true (contains e "crc")
      | Ok _ -> Alcotest.fail "bit flip not caught")

(* --- epoch reclamation --------------------------------------------------- *)

let test_epoch_unpinned () =
  let e = Epoch.create ~slots:4 in
  Epoch.retire e "v0";
  Epoch.retire e "v1";
  check_int "nothing pinned: all reclaimed" 0 (Epoch.pending e);
  check_int "reclaimed total" 2 (Epoch.reclaimed e)

let test_epoch_pinned_reader_holds () =
  let e = Epoch.create ~slots:2 in
  let _ = Epoch.pin e ~slot:0 in
  Epoch.retire e "v0";
  Epoch.retire e "v1";
  check_int "pinned reader holds both" 2 (Epoch.pending e);
  Epoch.unpin e ~slot:0;
  Epoch.retire e "v2";
  check_int "unpinned: swept at next retire" 0 (Epoch.pending e);
  check_int "all reclaimed" 3 (Epoch.reclaimed e)

let test_epoch_late_pin_does_not_hold_past () =
  let e = Epoch.create ~slots:2 in
  Epoch.retire e "v0";
  (* a reader pinning now is at epoch 1: it can only hold v1+ *)
  let ep = Epoch.pin e ~slot:1 in
  check_int "pinned at advanced epoch" 1 ep;
  Epoch.retire e "v1";
  check_int "only v1 held" 1 (Epoch.pending e)

(* --- group commit: equivalence and crash --------------------------------- *)

(* A deterministic script of legal transactions over a small
   white-pages instance, with the expected state after each prefix. *)
let make_script seed =
  let inst0 = WP.generate ~seed:(seed + 1) ~units:2 ~persons_per_unit:2 () in
  let fs = Io.fresh_fs () in
  let st = get_store "script init" (Store.init (Io.mem fs) WP.schema inst0) in
  let counter = ref 50_000 in
  let txns = ref [] and states = ref [ inst0 ] in
  for i = 0 to 5 do
    let cur = Directory.instance (Store.directory st) in
    let txn =
      Gen.random_ops ~counter ~seed:(seed + (17 * i)) ~n:(1 + (i mod 2))
        WP.schema cur
    in
    match Store.apply st txn with
    | Admission.Accepted _ ->
        txns := txn :: !txns;
        states := Directory.instance (Store.directory st) :: !states
    | Admission.Rejected _ -> ()
  done;
  (inst0, List.rev !txns, Array.of_list (List.rev !states))

let chunk sizes_rng txns =
  let rec go acc = function
    | [] -> List.rev acc
    | l ->
        let k = min (List.length l) (1 + Random.State.int sizes_rng 4) in
        let rec split a n = function
          | tl when n = 0 -> (List.rev a, tl)
          | x :: tl -> split (x :: a) (n - 1) tl
          | [] -> (List.rev a, [])
        in
        let c, rest = split [] k l in
        go (c :: acc) rest
  in
  go [] txns

let prop_group_commit_equivalence =
  QCheck.Test.make
    ~name:"batched commits leave byte-identical logs (lsn, frames, state)"
    ~count:8
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let inst0, txns, states = make_script seed in
      QCheck.assume (txns <> []);
      let fs_seq = Io.fresh_fs () and fs_bat = Io.fresh_fs () in
      let st_seq =
        get_store "seq init" (Store.init (Io.mem fs_seq) WP.schema inst0)
      in
      let st_bat =
        get_store "bat init" (Store.init (Io.mem fs_bat) WP.schema inst0)
      in
      List.iter
        (fun txn ->
          match Store.apply st_seq txn with
          | Admission.Accepted _ -> ()
          | Admission.Rejected _ ->
              Alcotest.fail "sequential apply rejected a scripted txn")
        txns;
      let rng = Random.State.make [| seed; 99 |] in
      List.iter
        (fun group ->
          ignore
            (Store.batch st_bat (fun () ->
                 List.iter
                   (fun txn ->
                     match Store.apply st_bat txn with
                     | Admission.Accepted _ -> ()
                     | Admission.Rejected _ ->
                         Alcotest.fail "batched apply rejected a scripted txn")
                   group)))
        (chunk rng txns);
      let final = states.(Array.length states - 1) in
      let wal fs =
        match Io.read_fs fs Store.wal_file with Some s -> s | None -> ""
      in
      Store.lsn st_bat = Store.lsn st_seq
      && wal fs_bat = wal fs_seq
      && Instance.equal (Directory.instance (Store.directory st_bat)) final
      && Directory.validate (Store.directory st_bat) = []
      &&
      (* and recovery agrees *)
      let st_r, _ = get_store "recover" (Store.open_ (Io.mem (Io.copy_fs fs_bat))) in
      Instance.equal (Directory.instance (Store.directory st_r)) final)

let prop_crash_during_group_commit =
  QCheck.Test.make
    ~name:"torn batch append recovers a legal prefix of the batch" ~count:6
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let inst0, txns, states = make_script seed in
      QCheck.assume (List.length txns >= 2);
      (* base: an initialized store; the batched run then performs
         exactly one mutating I/O operation — the shared append *)
      let base = Io.fresh_fs () in
      let _ = get_store "base init" (Store.init (Io.mem base) WP.schema inst0) in
      let append_size =
        let fs = Io.copy_fs base in
        let io, trace = Io.counting (Io.mem fs) in
        let st, _ = get_store "clean open" (Store.open_ io) in
        ignore
          (Store.batch st (fun () ->
               List.iter (fun txn -> ignore (Store.apply st txn)) txns));
        match trace () with
        | [ (0, size) ] -> size
        | ops -> Alcotest.failf "batch performed %d I/O ops, wanted 1" (List.length ops)
      in
      let faults =
        Io.Crash_at 0
        :: List.init (append_size - 1) (fun i -> Io.Tear { op = 0; keep = i + 1 })
      in
      List.for_all
        (fun fault ->
          let fs = Io.copy_fs base in
          let io = Io.faulty ~faults:[ fault ] (Io.mem fs) in
          let st, _ = get_store "faulty open" (Store.open_ io) in
          let crashed =
            match
              Store.batch st (fun () ->
                  List.iter (fun txn -> ignore (Store.apply st txn)) txns)
            with
            | (), _ -> false
            | exception Io.Crash -> true
          in
          (* nothing was acknowledged; recovery must land on a prefix *)
          crashed
          &&
          let st_r, _ =
            get_store "crash recover" (Store.open_ (Io.mem fs))
          in
          let lsn = Store.lsn st_r in
          lsn <= List.length txns
          && Instance.equal
               (Directory.instance (Store.directory st_r))
               states.(lsn)
          && Directory.validate (Store.directory st_r) = [])
        faults)

(* --- the live server ----------------------------------------------------- *)

let person_count client =
  match
    Client.request client (Proto.Query "(objectClass=person)")
  with
  | Ok (Proto.Reply body) -> (
      match String.split_on_char '\n' body with
      | count :: _ -> int_of_string count
      | [] -> Alcotest.fail "empty query reply")
  | Ok (Proto.Failed e) -> Alcotest.failf "query failed: %s" e
  | Error e -> Alcotest.failf "query transport: %s" e

let test_server_concurrent_isolation () =
  let inst0 = WP.generate ~seed:7 ~units:3 ~persons_per_unit:2 () in
  let n0 = 6 (* 3 units * 2 persons *) in
  let writes = 24 and readers = 4 and reads_each = 40 in
  let st =
    get_store "server store" (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
  in
  let srv = Server.start ~port:0 ~batch_max:8 st in
  let port = Server.port srv in
  let failures = Atomic.make 0 in
  let fail () = Atomic.incr failures in
  let writer =
    Thread.create
      (fun () ->
        match Client.connect ~port ~retries:40 () with
        | Error _ -> fail ()
        | Ok c ->
            for n = 0 to writes - 1 do
              let record =
                String.concat "\n"
                  [
                    Printf.sprintf "dn: uid=iso%d, ou=unit1, o=acme" n;
                    "changetype: add";
                    "objectClass: person";
                    "objectClass: staffmember";
                    "objectClass: top";
                    Printf.sprintf "uid: iso%d" n;
                    Printf.sprintf "name: iso person %d" n;
                  ]
              in
              match Client.request c (Proto.Apply record) with
              | Ok (Proto.Reply _) -> ()
              | Ok (Proto.Failed _) | Error _ -> fail ()
            done;
            Client.close c)
      ()
  in
  let reader_threads =
    List.init readers (fun _ ->
        Thread.create
          (fun () ->
            match Client.connect ~port ~retries:40 () with
            | Error _ -> fail ()
            | Ok c ->
                let last = ref n0 in
                (try
                   for _ = 1 to reads_each do
                     let n = person_count c in
                     (* a snapshot the server once published: within the
                        write window, and (per connection) monotone —
                        snapshots only move forward *)
                     if n < !last || n > n0 + writes then fail ();
                     last := n
                   done
                 with _ -> fail ());
                Client.close c)
          ())
  in
  Thread.join writer;
  List.iter Thread.join reader_threads;
  (* all writes landed: the final count is exact *)
  (match Client.connect ~port ~retries:10 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      check_int "final person count" (n0 + writes) (person_count c);
      (match Client.request c Proto.Shutdown with
      | Ok (Proto.Reply _) -> ()
      | _ -> Alcotest.fail "shutdown refused");
      Client.close c);
  Server.wait srv;
  check_int "no reader or writer anomalies" 0 (Atomic.get failures);
  let s = Server.stats srv in
  check_int "every write acknowledged" writes s.Server.writes_ok;
  check "reads were served" true (s.Server.reads > 0);
  check "snapshots were retired" true (s.Server.snapshots_retired > 0)

let test_server_group_commit_batches () =
  (* many concurrent writers, writer thread slower than arrivals: the
     server must coalesce transactions into shared commits *)
  let inst0 = WP.generate ~seed:11 ~units:2 ~persons_per_unit:1 () in
  let st =
    get_store "server store" (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
  in
  let srv = Server.start ~port:0 ~batch_max:16 st in
  let port = Server.port srv in
  let clients = 8 and per_client = 10 in
  let failures = Atomic.make 0 in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            match Client.connect ~port ~retries:40 () with
            | Error _ -> Atomic.incr failures
            | Ok c ->
                for n = 0 to per_client - 1 do
                  let record =
                    String.concat "\n"
                      [
                        Printf.sprintf "dn: uid=gc%dx%d, ou=unit1, o=acme" ci n;
                        "changetype: add";
                        "objectClass: person";
                        "objectClass: top";
                        Printf.sprintf "uid: gc%dx%d" ci n;
                        "name: group commit probe";
                      ]
                  in
                  match Client.request c (Proto.Apply record) with
                  | Ok (Proto.Reply _) -> ()
                  | Ok (Proto.Failed _) | Error _ -> Atomic.incr failures
                done;
                Client.close c)
          ())
  in
  List.iter Thread.join threads;
  (match Client.connect ~port ~retries:10 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      (match Client.request c Proto.Shutdown with
      | Ok (Proto.Reply _) -> ()
      | _ -> Alcotest.fail "shutdown refused");
      Client.close c);
  Server.wait srv;
  check_int "no failures" 0 (Atomic.get failures);
  let s = Server.stats srv in
  let total = clients * per_client in
  check_int "all transactions committed" total s.Server.writes_ok;
  check_int "all carried by group commits" total s.Server.batched;
  (* not every commit can have been solo: with 8 concurrent writers at
     least one shared fsync carried more than one transaction *)
  check "commits were coalesced" true (s.Server.batches < total);
  (* and the durable state is exact: recovery would see every txn — the
     store is in memory, but the directory must hold all inserts *)
  check_int "final size" (Instance.size inst0 + total)
    (Directory.size (Store.directory st))

(* --- replication --------------------------------------------------------- *)

let await ?(tries = 500) what pred =
  let rec go tries =
    if pred () then ()
    else if tries = 0 then Alcotest.failf "timeout waiting for %s" what
    else begin
      Thread.delay 0.02;
      go (tries - 1)
    end
  in
  go tries

(* The reconnect schedule is pure: check it without a clock. *)
let test_backoff_schedule () =
  List.iteri
    (fun i expect ->
      check
        (Printf.sprintf "backoff attempt %d" i)
        true
        (Float.abs (Replica.backoff ~attempt:i -. expect) < 1e-9))
    [ 0.05; 0.1; 0.2; 0.4; 0.8; 1.6; 2.0; 2.0; 2.0 ]

(* And the feeder follows it: against a dead primary, an injected
   fake-clock sleep records exactly the exponential schedule. *)
let test_backoff_deterministic_reconnect () =
  (* a port with nothing listening: bind, read it back, close *)
  let dead_port =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    Unix.close fd;
    p
  in
  let recorded = ref [] in
  let m = Mutex.create () in
  let sleep d =
    Mutex.lock m;
    recorded := d :: !recorded;
    Mutex.unlock m;
    Thread.yield ()
  in
  let rep =
    Replica.start ~sleep ~primary_port:dead_port (Io.mem (Io.fresh_fs ()))
  in
  await "five recorded reconnect pauses" (fun () ->
      Mutex.lock m;
      let n = List.length !recorded in
      Mutex.unlock m;
      n >= 5);
  Replica.stop rep;
  Replica.wait rep;
  let sleeps = List.rev !recorded in
  List.iteri
    (fun i expect ->
      check
        (Printf.sprintf "recorded pause %d" i)
        true
        (Float.abs (List.nth sleeps i -. expect) < 1e-9))
    [ 0.05; 0.1; 0.2; 0.4; 0.8 ];
  let s = Replica.stats rep in
  check "reconnects counted" true (s.Replica.reconnects >= 5);
  check "never connected" false s.Replica.connected

(* Resume-from-lsn never re-applies: shipping the whole history again
   over an up-to-date replica yields [`Duplicate] for every record and
   changes nothing; a gap is refused outright. *)
let prop_lsn_discipline =
  QCheck.Test.make
    ~name:"resume overlap is skipped, never re-applied (lsn discipline)"
    ~count:6
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let inst0, txns, _states = make_script seed in
      QCheck.assume (txns <> []);
      let primary =
        get_store "primary" (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
      in
      List.iter (fun t -> ignore (Store.apply primary t)) txns;
      let records =
        match Store.records_from primary ~lsn:0 with
        | `Records rs -> rs
        | `Too_old -> Alcotest.fail "fresh primary claims too-old"
      in
      let rep =
        get_store "replica" (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
      in
      let applied =
        List.for_all
          (fun (lsn, ops) -> Store.replica_apply rep ~lsn ops = Ok `Applied)
          records
      in
      let before = Directory.instance (Store.directory rep) in
      let lsn_before = Store.lsn rep in
      let all_dup =
        List.for_all
          (fun (lsn, ops) -> Store.replica_apply rep ~lsn ops = Ok `Duplicate)
          records
      in
      let unchanged =
        Store.lsn rep = lsn_before
        && Instance.equal before (Directory.instance (Store.directory rep))
      in
      let gap_refused =
        match records with
        | (_, ops) :: _ -> (
            match Store.replica_apply rep ~lsn:(Store.lsn rep + 2) ops with
            | Error _ -> true
            | Ok _ -> false)
        | [] -> true
      in
      applied && all_dup && unchanged && gap_refused
      && Instance.equal
           (Directory.instance (Store.directory rep))
           (Directory.instance (Store.directory primary)))

(* The headline fault property: materialize the exact byte stream a
   subscriber receives (one CRC frame per shipped record, a compaction
   mark mid-stream), crash the replica at {e every} byte boundary —
   whole frames applied, the torn tail discarded, the handle dropped —
   recover it from its own files, reconnect (catch up from the durable
   lsn), and require convergence with the primary at every single cut. *)
let prop_crash_at_every_shipped_byte =
  QCheck.Test.make
    ~name:"replica crashed at every shipped byte converges after reconnect"
    ~count:2
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      let inst0, txns, states = make_script seed in
      QCheck.assume (txns <> []);
      let primary =
        get_store "primary" (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
      in
      List.iter
        (fun txn ->
          match Store.apply primary txn with
          | Admission.Accepted _ -> ()
          | Admission.Rejected _ -> Alcotest.fail "scripted txn rejected")
        txns;
      let final_lsn = Store.lsn primary in
      let final = states.(Array.length states - 1) in
      (* bootstrap package at lsn 0, installed once as the base image
         every cut starts from *)
      let base = Io.fresh_fs () in
      (let b0 =
         get_store "boot source"
           (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
       in
       let schema_text, ckpt, _ = Store.boot_blob b0 in
       Store.close b0;
       match
         Store.install_snapshot (Io.mem base) ~schema:schema_text
           ~checkpoint:ckpt
       with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      (* the byte stream a subscriber from lsn 0 receives *)
      let stream =
        let buf = Buffer.create 1024 in
        let mark_at = (List.length txns + 1) / 2 in
        List.iteri
          (fun i txn ->
            Buffer.add_string buf
              (Frame.encode
                 (Proto.encode_stream (Proto.Ship { lsn = i + 1; ops = txn })));
            if i + 1 = mark_at then
              Buffer.add_string buf
                (Frame.encode (Proto.encode_stream (Proto.Mark { lsn = i + 1 }))))
          txns;
        Buffer.contents buf
      in
      for cut = 0 to String.length stream do
        let fs = Io.copy_fs base in
        let st, _ = get_store "replica open" (Store.open_ (Io.mem fs)) in
        let prefix = String.sub stream 0 cut in
        let rec feed off =
          match Frame.read prefix off with
          | Frame.End | Frame.Torn _ -> ()  (* the cut: stop receiving *)
          | Frame.Record { payload; next } ->
              (match Proto.decode_stream payload with
              | Ok (Proto.Ship { lsn; ops }) -> (
                  match Store.replica_apply st ~lsn ops with
                  | Ok (`Applied | `Duplicate) -> ()
                  | Error e -> Alcotest.failf "apply at cut %d: %s" cut e)
              | Ok (Proto.Mark _) -> Store.checkpoint st
              | Ok (Proto.Boot _) -> Alcotest.fail "unexpected boot mid-stream"
              | Error e -> Alcotest.failf "decode at cut %d: %s" cut e);
              feed next
        in
        feed 0;
        (* crash: drop the handle, recover from the replica's own files *)
        Store.close st;
        let st_r, _ = get_store "replica recover" (Store.open_ (Io.mem fs)) in
        (* reconnect: resume from the durable lsn *)
        (match Store.records_from primary ~lsn:(Store.lsn st_r) with
        | `Too_old -> Alcotest.failf "catch-up too old at cut %d" cut
        | `Records rs ->
            List.iter
              (fun (lsn, ops) ->
                match Store.replica_apply st_r ~lsn ops with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "catch-up at cut %d: %s" cut e)
              rs);
        if Store.lsn st_r <> final_lsn then
          Alcotest.failf "cut %d: lsn %d, primary %d" cut (Store.lsn st_r)
            final_lsn;
        if not (Instance.equal (Directory.instance (Store.directory st_r)) final)
        then Alcotest.failf "cut %d: replica instance diverged" cut;
        if Directory.validate (Store.directory st_r) <> [] then
          Alcotest.failf "cut %d: replica fails validate" cut;
        Store.close st_r
      done;
      Store.close primary;
      true)

(* Version gate: a future protocol hello is refused and the connection
   dropped; the current version handshakes; a reader cannot subscribe
   on a primary without replication enabled. *)
let test_hello_version_gate () =
  let inst0 = WP.generate ~seed:5 ~units:1 ~persons_per_unit:1 () in
  let st =
    get_store "store" (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
  in
  let srv = Server.start ~port:0 st in
  let port = Server.port srv in
  (match Client.connect ~port ~retries:40 ~hello:false () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      (match
         Client.request c
           (Proto.Hello { version = Proto.version + 1; role = Proto.Reader })
       with
      | Ok (Proto.Failed msg) ->
          check "mismatch named" true (contains msg "version mismatch")
      | Ok (Proto.Reply _) -> Alcotest.fail "future version accepted"
      | Error e -> Alcotest.fail e);
      (match Client.request c Proto.Ping with
      | Error _ -> ()  (* the server hung up after the refusal *)
      | Ok _ -> Alcotest.fail "connection survived a version mismatch");
      Client.close c);
  (match Client.connect ~port ~retries:10 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      (match Client.request c Proto.Ping with
      | Ok (Proto.Reply "pong") -> ()
      | _ -> Alcotest.fail "ping after handshake");
      (match Client.request c (Proto.Subscribe { from_lsn = -1 }) with
      | Ok (Proto.Failed msg) ->
          check "subscribe refused" true (contains msg "replication")
      | _ -> Alcotest.fail "subscribe was not refused");
      (match Client.request c Proto.Shutdown with
      | Ok (Proto.Reply _) -> ()
      | _ -> Alcotest.fail "shutdown refused");
      Client.close c);
  Server.wait srv

(* End to end over real sockets: primary serves with replication, the
   replica bootstraps, follows live traffic, is killed, restarted on
   its own files, and converges again — resuming by lsn, not by a
   second bootstrap. *)
let test_replication_live () =
  let inst0 = WP.generate ~seed:21 ~units:2 ~persons_per_unit:2 () in
  let n0 = 4 in
  let st =
    get_store "primary store"
      (Store.init (Io.mem (Io.fresh_fs ())) WP.schema inst0)
  in
  let srv = Server.start ~port:0 ~replicate:true st in
  let port = Server.port srv in
  let rfs = Io.fresh_fs () in
  let rep = Replica.start ~primary_port:port (Io.mem rfs) in
  let write c n name =
    for i = 0 to n - 1 do
      let record =
        String.concat "\n"
          [
            Printf.sprintf "dn: uid=%s%d, ou=unit1, o=acme" name i;
            "changetype: add";
            "objectClass: person";
            "objectClass: top";
            Printf.sprintf "uid: %s%d" name i;
            "name: replicated person";
          ]
      in
      match Client.request c (Proto.Apply record) with
      | Ok (Proto.Reply _) -> ()
      | Ok (Proto.Failed e) -> Alcotest.failf "apply: %s" e
      | Error e -> Alcotest.failf "apply transport: %s" e
    done
  in
  (match Client.connect ~port ~retries:40 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      write c 10 "rep";
      Client.close c);
  await "replica caught up to lsn 10" (fun () ->
      (Replica.stats rep).Replica.applied_lsn >= 10);
  (* the replica answers the same query the primary would *)
  (match Client.connect ~port:(Replica.port rep) ~retries:40 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      check_int "replicated person count" (n0 + 10) (person_count c);
      Client.close c);
  let boots_before = (Replica.stats rep).Replica.boots in
  check "first sync bootstrapped" true (boots_before >= 1);
  (* kill the replica, write more, restart it on the same files *)
  Replica.stop rep;
  Replica.wait rep;
  (match Client.connect ~port ~retries:10 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      write c 5 "late";
      Client.close c);
  let rep2 = Replica.start ~primary_port:port (Io.mem rfs) in
  await "restarted replica caught up to lsn 15" (fun () ->
      (Replica.stats rep2).Replica.applied_lsn >= 15);
  let s2 = Replica.stats rep2 in
  check_int "restart resumed by lsn, no second bootstrap" 0 s2.Replica.boots;
  (match Client.connect ~port:(Replica.port rep2) ~retries:40 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      check_int "post-restart person count" (n0 + 15) (person_count c);
      Client.close c);
  (* primary-side stats see the subscriber *)
  let ps = Server.stats srv in
  check_int "one live subscriber" 1 ps.Server.replicas;
  check_int "no shipping backlog" 0 ps.Server.replica_lag;
  Replica.stop rep2;
  Replica.wait rep2;
  (match Client.connect ~port ~retries:10 () with
  | Error e -> Alcotest.fail e
  | Ok c ->
      (match Client.request c Proto.Shutdown with
      | Ok (Proto.Reply _) -> ()
      | _ -> Alcotest.fail "shutdown refused");
      Client.close c);
  Server.wait srv

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "proto",
        [
          Alcotest.test_case "constructor round-trips" `Quick test_proto_roundtrip;
          Alcotest.test_case "malformed payloads reject" `Quick test_proto_errors;
          Alcotest.test_case "stream round-trips" `Quick test_stream_roundtrip;
          qt prop_proto_roundtrip;
          qt prop_proto_total;
          qt prop_stream_total;
        ] );
      ( "conn",
        [
          Alcotest.test_case "frame round-trip" `Quick test_conn_roundtrip;
          Alcotest.test_case "close and torn frames" `Quick test_conn_close_and_torn;
          Alcotest.test_case "corrupt frame" `Quick test_conn_corrupt;
          Alcotest.test_case "torn vs corrupt classification" `Quick
            test_torn_vs_corrupt_classification;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "unpinned reclaims immediately" `Quick test_epoch_unpinned;
          Alcotest.test_case "pinned reader holds" `Quick test_epoch_pinned_reader_holds;
          Alcotest.test_case "late pin holds only the present" `Quick
            test_epoch_late_pin_does_not_hold_past;
        ] );
      ( "group-commit",
        [ qt prop_group_commit_equivalence; qt prop_crash_during_group_commit ] );
      ( "server",
        [
          Alcotest.test_case "concurrent readers see isolated snapshots" `Quick
            test_server_concurrent_isolation;
          Alcotest.test_case "concurrent writers coalesce into shared commits"
            `Quick test_server_group_commit_batches;
        ] );
      ( "replication",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "deterministic reconnect pacing" `Quick
            test_backoff_deterministic_reconnect;
          Alcotest.test_case "hello version gate" `Quick test_hello_version_gate;
          qt prop_lsn_discipline;
          qt prop_crash_at_every_shipped_byte;
          Alcotest.test_case "live kill and reconnect converges" `Quick
            test_replication_live;
        ] );
    ]
