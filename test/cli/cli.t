The ldapschema command-line tool, end to end.

A schema and a directory:

  $ cat > team.schema <<'EOF'
  > attribute name : string
  > attribute uid : string
  > class team { required: name }
  > class person { required: name, uid }
  > require exists team
  > require team descendant person
  > forbid person child top
  > key uid
  > EOF

  $ cat > dir.ldif <<'EOF'
  > dn: name=research
  > objectClass: team
  > objectClass: top
  > name: research
  > 
  > dn: uid=ada,name=research
  > objectClass: person
  > objectClass: top
  > name: Ada
  > uid: ada
  > EOF

Canonical formatting round-trips the schema:

  $ ldapschema fmt -s team.schema
  attribute name : string
  attribute uid : string
  class team extends top { required: name }
  class person extends top { required: name, uid }
  require exists team
  require team descendant person
  forbid person child top
  key uid

Validation of a legal directory, with both checkers:

  $ ldapschema validate -s team.schema -d dir.ldif
  dir.ldif: legal (2 entries)
  $ ldapschema validate -s team.schema -d dir.ldif --naive
  dir.ldif: legal (2 entries)

An illegal one (the team loses its person):

  $ head -5 dir.ldif > broken.ldif
  $ ldapschema validate -s team.schema -d broken.ldif
  broken.ldif: ILLEGAL — 1 violation(s)
    - entry 0 violates required relationship team ->> person
  [1]

Queries:

  $ ldapschema query -s team.schema -d dir.ldif '(objectClass=person)'
  1 entries
  uid=ada,name=research
  $ ldapschema query -s team.schema -d dir.ldif \
  >   '(minus (objectClass=team) (chi d (objectClass=team) (objectClass=person)))'
  0 entries

Consistency with a witness:

  $ ldapschema consistent -s team.schema -w witness.ldif
  consistent (saturation: 3 passes, 17 elements)
  witness (3 entries) written to witness.ldif
  $ ldapschema validate -s team.schema -d witness.ldif
  witness.ldif: legal (3 entries)

An inconsistent schema, with its proof:

  $ cat > bad.schema <<'EOF'
  > class a
  > class b
  > require exists a
  > require a descendant b
  > forbid a descendant b
  > EOF
  $ ldapschema consistent -s bad.schema --proof
  INCONSISTENT (saturation: 3 passes, 14 elements)
  ∅•  [exists-target]
    a•  [axiom]
    a —desc↠ ∅  [conflict-de]
      a —desc↠ b  [axiom]
      a —desc↛ b  [axiom]
  [1]

Updates through the incremental monitor; a violating transaction is
rejected atomically:

  $ cat > ops.ldif <<'EOF'
  > dn: uid=alan,name=research
  > objectClass: person
  > objectClass: top
  > name: Alan
  > uid: alan
  > EOF
  $ ldapschema update -s team.schema -d dir.ldif -o ops.ldif --out dir2.ldif
  transaction accepted: 1 operation(s), 3 entries now
  updated directory written to dir2.ldif
  $ cat > bad-ops.ldif <<'EOF'
  > dn: uid=ada,name=research
  > changetype: delete
  > 
  > dn: name=research
  > changetype: delete
  > EOF
  $ ldapschema update -s team.schema -d dir.ldif -o bad-ops.ldif
  transaction REJECTED: illegal at step 1:
                        no entry of required class team exists
  [1]

Workload generation produces legal data:

  $ ldapschema generate --workload white-pages --units 3 --persons 2 \
  >   --out wp.ldif --emit-schema wp.schema 2>/dev/null
  $ ldapschema validate -s wp.schema -d wp.ldif
  wp.ldif: legal (10 entries)

Scoped search, with schema-aware filter simplification:

  $ ldapschema search -d dir2.ldif --base name=research --scope one '(objectClass=person)'
  2 entries
  uid=ada,name=research
  uid=alan,name=research
  $ ldapschema search -d dir2.ldif --scope base '(name=*)'
  1 entries
  name=research
  $ ldapschema search -s team.schema -d dir2.ldif --optimize '(objectClass=martian)'
  0 entries

Repairing an illegal directory:

  $ cat > hurt.ldif <<'EOF2'
  > dn: name=research
  > objectClass: team
  > objectClass: top
  > name: research
  > 
  > dn: uid=ada,name=research
  > objectClass: person
  > objectClass: top
  > uid: ada
  > salary: lots
  > EOF2
  $ ldapschema repair -s team.schema -d hurt.ldif --out healed.ldif
    entry 1: added name: unknown
    entry 1: removed attribute salary
  repaired directory (2 entries) written to healed.ldif
  fully repaired: 2 action(s)
  $ ldapschema validate -s team.schema -d healed.ldif
  healed.ldif: legal (2 entries)

Schema-aware statistics:

  $ ldapschema profile -s team.schema -d dir2.ldif
  3 entries, 1 roots, depth 1, max fanout 2
  depth histogram: 0:1 1:2
  person: 2 entries
    name (required): 2/2 (100%)
    uid (required): 2/2 (100%)
  team: 1 entries
    name (required): 1/1 (100%)
  top: 3 entries
  optional-attribute fill rate: 100.0% (heterogeneity 0.0%)

Semistructured data (Section 6.3):

  $ cat > doc.sschema <<'EOF2'
  > require exists library
  > require library descendant book
  > require book child title
  > forbid country descendant country
  > EOF2
  $ ldapschema tree-check -s doc.sschema
  consistent; a minimal legal document:
    (library (top) (book (title)))
  $ cat > good.trees <<'EOF2'
  > (library (shelf (book (title) (isbn))))
  > EOF2
  $ ldapschema tree-check -s doc.sschema -d good.trees
  good.trees: legal (5 nodes)
  $ cat > bad.trees <<'EOF2'
  > (library (book (isbn)) (country (city (country))))
  > EOF2
  $ ldapschema tree-check -s doc.sschema -d bad.trees
  bad.trees: ILLEGAL — 2 violation(s)
    - entry 1 violates required relationship book -> title
    - entries 3 and 5 violate forbidden relationship country -/->> country
  [1]

Differential fuzzing (a tiny deterministic budget; oracle list is stable):

  $ ldapschema fuzz --list
  ldif-roundtrip           Ldif.parse ∘ Ldif.to_string preserves the instance (RFC 2849)
  b64-strict               Ldif.b64_decode agrees with an independent strict RFC 4648 decoder
  b64-roundtrip            b64_decode ∘ b64_encode is the identity and encodings are canonical
  filter-roundtrip         Filter_parser.parse ∘ Filter.to_string is the identity on ASTs
  filter-text              parse ∘ print ∘ parse is stable on adversarial filter texts
  query-roundtrip          Query_parser.parse ∘ Query.to_string is the identity on ASTs
  spec-roundtrip           Spec_parser.parse ∘ Spec_printer.to_string is the identity on schemas
  eval-vs-naive            indexed Eval agrees with the specification interpreter Naive_eval
  plan-vs-naive            cost-based Plan agrees with the specification interpreter Naive_eval
  legality-vs-naive        linear Legality agrees with quadratic Naive_legality (with §6.1 extensions)
  legality-noext-vs-naive  Legality agrees with Naive_legality (core Definition 2.6 only)
  monitor-vs-recheck       incremental Monitor agrees with per-step full recheck (Transaction.check)
  txn-witness              an accepted transaction's final instance is naive-legal
  index-apply-vs-rebuild   a Directory session's incrementally-patched index/vindex/memo agree with a from-scratch rebuild after each accepted transaction
  par-vs-seq-legality      pooled Legality.check is bit-identical to the sequential engine
  par-vs-seq-eval          pooled index build + Eval is bit-identical to the sequential path
  store-roundtrip          a WAL-persisted session recovers to its in-memory twin (instance, legality, obligation answers)
  trusted-replay           recovery via trusted replay (auto/batch/incremental ingest) agrees with checked replay (instance, legality, obligation answers)
  intern-transparency      evaluation with interning disabled agrees with the interned path (instance, legality, obligation answers)
  replica-convergence      a WAL-shipped replica converges to the primary across disconnects, kills and bootstraps (lsn, instance, legality, obligation answers)
  $ ldapschema fuzz --oracle b64-strict --oracle filter-text --budget 50 --seed 42
  b64-strict                   50 cases  ok
  filter-text                  50 cases  ok
  all oracles agree

Durable sessions: --store initializes a write-ahead-logged store on the
first update and appends one CRC-framed record per accepted transaction:

  $ ldapschema update -s team.schema -d dir.ldif -o ops.ldif --store S
  store: initialized S (2 entries)
  transaction accepted: 1 operation(s), 3 entries now
  logged at lsn 1 (1 record(s), 108 bytes)
  $ cat > ops2.ldif <<'EOF'
  > dn: uid=grace,name=research
  > objectClass: person
  > objectClass: top
  > name: Grace
  > uid: grace
  > EOF
  $ ldapschema update -o ops2.ldif --store S
  store: checkpoint lsn 0, 1 replayed, 0 skipped, tail clean
  transaction accepted: 1 operation(s), 4 entries now
  logged at lsn 2 (2 record(s), 219 bytes)
  $ ldapschema log S
  checkpoint: lsn 0, 2 entries
  stats: applied 0 rejected 0 queries 0
  log: 2 record(s), 219 bytes
    lsn 1: 1 op(s) at byte 0
    lsn 2: 1 op(s) at byte 108
  tail: clean

Reads recover the session from checkpoint + log replay:

  $ ldapschema query --store S '(objectClass=person)'
  store: checkpoint lsn 0, 2 replayed, 0 skipped, tail clean
  3 entries
  uid=ada,name=research
  uid=alan,name=research
  uid=grace,name=research
  $ ldapschema validate --store S
  store: checkpoint lsn 0, 2 replayed, 0 skipped, tail clean
  S: legal (4 entries)

A rejected transaction touches neither the session nor the log:

  $ ldapschema update -o bad-ops.ldif --store S
  store: checkpoint lsn 0, 2 replayed, 0 skipped, tail clean
  transaction REJECTED: invalid transaction: entry 0 is not a leaf
  [1]
  $ ldapschema log S | tail -4
  log: 2 record(s), 219 bytes
    lsn 1: 1 op(s) at byte 0
    lsn 2: 1 op(s) at byte 108
  tail: clean

Checkpointing compacts in O(delta): the log folds into the delta chain
as one CRC-framed segment (the base snapshot is rewritten only with
--full or past the chain threshold), then the log resets:

  $ ldapschema checkpoint S
  store: checkpoint lsn 0, 2 replayed, 0 skipped, tail clean
  delta checkpoint at lsn 2 (1 segment(s), 239 bytes); log reset
  $ cat > ops3.ldif <<'EOF'
  > dn: uid=edsger,name=research
  > objectClass: person
  > objectClass: top
  > name: Edsger
  > uid: edsger
  > EOF
  $ ldapschema update -o ops3.ldif --store S
  store: checkpoint lsn 0, 0 replayed, 0 skipped, tail clean; delta: 1 segment(s), 2 replayed, clean
  transaction accepted: 1 operation(s), 5 entries now
  logged at lsn 3 (1 record(s), 114 bytes)

A torn record at the log tail (simulated by truncating the file) is
detected, reported with its byte offset, and healed on the next open —
recovery rolls back to the durable prefix, never crashes:

  $ dd if=S/wal.log of=S/wal.tmp bs=1 count=60 2>/dev/null && mv S/wal.tmp S/wal.log
  $ ldapschema log S
  checkpoint: lsn 0, 2 entries
  stats: applied 0 rejected 0 queries 0
  delta: 1 segment(s), 2 record(s), 239 bytes
  log: 0 record(s), 0 bytes
  tail: damaged at byte 0 (truncated frame payload)
  [1]
  $ ldapschema validate --store S
  store: checkpoint lsn 0, 0 replayed, 0 skipped, tail recovered at byte 0 (truncated frame payload); delta: 1 segment(s), 2 replayed, clean
  S: legal (4 entries)
  $ ldapschema log S
  checkpoint: lsn 0, 2 entries
  stats: applied 0 rejected 0 queries 0
  delta: 1 segment(s), 2 record(s), 239 bytes
  log: 0 record(s), 0 bytes
  tail: clean

A full checkpoint collapses the chain back into one snapshot:

  $ ldapschema checkpoint --full S
  store: checkpoint lsn 0, 0 replayed, 0 skipped, tail clean; delta: 1 segment(s), 2 replayed, clean
  checkpointed at lsn 2 (4 entries); chain collapsed, log reset
  $ ldapschema log S
  checkpoint: lsn 2, 4 entries
  stats: applied 2 rejected 0 queries 0
  log: 0 record(s), 0 bytes
  tail: clean

The stats verb recovers the store and reports the session counters,
including the hash-cons pools (counts vary with the instance, so just
check the shape):

  $ ldapschema stats S | sed -n 's/^entries: .*/entries ok/p; s/^intern:.*/intern ok/p'
  entries ok
  intern ok

Streaming bulk load: entries stream straight into a batched index build
and bypass the log; the commit is one atomic checkpoint replace.  An
untrusted load pays exactly one admission check, on the final instance:

  $ cat > bulk.ldif <<'EOF2'
  > dn: name=infra
  > objectClass: team
  > objectClass: top
  > name: infra
  > 
  > dn: uid=edsger,name=infra
  > objectClass: person
  > objectClass: top
  > name: Edsger
  > uid: edsger
  > 
  > dn: uid=tony,name=infra
  > objectClass: person
  > objectClass: top
  > name: Tony
  > uid: tony
  > EOF2
  $ ldapschema load bulk.ldif --store S
  store: checkpoint lsn 2, 0 replayed, 0 skipped, tail clean
  loaded 3 entries (one admission check on the final instance); 7 entries now
  checkpointed at lsn 2; log reset
  $ ldapschema query --store S '(objectClass=person)'
  store: checkpoint lsn 2, 0 replayed, 0 skipped, tail clean
  5 entries
  uid=ada,name=research
  uid=alan,name=research
  uid=grace,name=research
  uid=edsger,name=infra
  uid=tony,name=infra

An illegal dump (a team that never gets a person) fails that single
check and the store is untouched:

  $ cat > ghost.ldif <<'EOF2'
  > dn: name=ghost
  > objectClass: team
  > objectClass: top
  > name: ghost
  > EOF2
  $ ldapschema load ghost.ldif --store S
  store: checkpoint lsn 2, 0 replayed, 0 skipped, tail clean
  load REJECTED — final instance is illegal, store unchanged:
    - entry 7 violates required relationship team ->> person
  [1]
  $ ldapschema validate --store S
  store: checkpoint lsn 2, 0 replayed, 0 skipped, tail clean
  S: legal (7 entries)

--trust skips the check for pre-validated dumps.  Misused on the
illegal dump it commits anyway — and the next open's admission scan
reports the voided invariant:

  $ ldapschema load ghost.ldif --trust --store S
  store: checkpoint lsn 2, 0 replayed, 0 skipped, tail clean
  loaded 1 entries (trusted, admission skipped); 8 entries now
  checkpointed at lsn 2; log reset
  $ ldapschema validate --store S
  error: S: illegal instance:
  entry 7 violates required relationship team ->> person
  [2]
