(* Tests for the hierarchical query engine: bitsets, filters, parsers, and
   the linear evaluator checked against the naive reference evaluator. *)

open Bounds_model
open Bounds_query

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ids = Alcotest.(check (list int))

(* --- Bitset ------------------------------------------------------------ *)

let test_bitset_basics () =
  let s = Bitset.create 20 in
  check "empty" true (Bitset.is_empty s);
  let s = Bitset.add (Bitset.add s 3) 17 in
  check "mem 3" true (Bitset.mem s 3);
  check "mem 17" true (Bitset.mem s 17);
  check "not mem 4" false (Bitset.mem s 4);
  check_int "cardinal" 2 (Bitset.cardinal s);
  check_ids "elements" [ 3; 17 ] (Bitset.elements s);
  let s = Bitset.remove s 3 in
  check_ids "after remove" [ 17 ] (Bitset.elements s)

let test_bitset_algebra () =
  let a = Bitset.of_list 10 [ 1; 3; 5; 7 ] in
  let b = Bitset.of_list 10 [ 3; 4; 5 ] in
  check_ids "union" [ 1; 3; 4; 5; 7 ] (Bitset.elements (Bitset.union a b));
  check_ids "inter" [ 3; 5 ] (Bitset.elements (Bitset.inter a b));
  check_ids "diff" [ 1; 7 ] (Bitset.elements (Bitset.diff a b));
  check_ids "complement" [ 0; 2; 4; 6; 8; 9 ] (Bitset.elements (Bitset.complement a));
  check "subset" true (Bitset.subset (Bitset.of_list 10 [ 3; 5 ]) a);
  check "not subset" false (Bitset.subset b a);
  check "choose" true (Bitset.choose a = Some 1);
  check "choose empty" true (Bitset.choose (Bitset.create 10) = None)

let test_bitset_full_and_edges () =
  (* n not a multiple of 8: padding bits must stay clear *)
  let f = Bitset.full 13 in
  check_int "full cardinal" 13 (Bitset.cardinal f);
  check "complement of full is empty" true (Bitset.is_empty (Bitset.complement f));
  let z = Bitset.full 0 in
  check_int "full 0" 0 (Bitset.cardinal z);
  check "size mismatch raises" true
    (try
       ignore (Bitset.union (Bitset.create 5) (Bitset.create 6));
       false
     with Invalid_argument _ -> true);
  check "out of range raises" true
    (try
       ignore (Bitset.mem (Bitset.create 5) 5);
       false
     with Invalid_argument _ -> true)

(* --- Filters ------------------------------------------------------------ *)

let a = Attr.of_string
let person = Oclass.of_string "person"

let entry =
  Entry.make ~id:0
    ~classes:(Oclass.Set.of_list [ person; Oclass.top ])
    [
      (a "name", Value.String "Laks Lakshmanan");
      (a "age", Value.Int 42);
      (a "mail", Value.String "laks@cs.concordia.ca");
      (a "mail", Value.String "laks@cse.iitb.ernet.in");
    ]

let test_filter_matching () =
  let m f = Filter.matches f entry in
  check "class eq" true (m (Filter.class_eq person));
  check "class eq case" true (m (Filter.Eq (Attr.object_class, "PERSON")));
  check "class neq" false (m (Filter.class_eq (Oclass.of_string "router")));
  check "eq string ci" true (m (Filter.Eq (a "name", "laks lakshmanan")));
  check "present" true (m (Filter.Present (a "mail")));
  check "absent" false (m (Filter.Present (a "phone")));
  check "ge numeric" true (m (Filter.Ge (a "age", "40")));
  check "ge numeric false" false (m (Filter.Ge (a "age", "43")));
  check "le numeric" true (m (Filter.Le (a "age", "42")));
  check "ge lexicographic" true (m (Filter.Ge (a "name", "laks")));
  check "and" true
    (m (Filter.And [ Filter.Present (a "mail"); Filter.Ge (a "age", "1") ]));
  check "and empty is true" true (m (Filter.And []));
  check "or empty is false" false (m (Filter.Or []));
  check "not" true (m (Filter.Not (Filter.Present (a "phone"))))

let test_filter_substring () =
  let m f = Filter.matches f entry in
  let sub ?initial ?(any = []) ?final () = { Filter.initial; any; final } in
  check "initial" true (m (Filter.Substr (a "mail", sub ~initial:"laks@" ())));
  check "final" true (m (Filter.Substr (a "mail", sub ~final:".ca" ())));
  check "any" true (m (Filter.Substr (a "mail", sub ~any:[ "cs" ] ())));
  check "all three" true
    (m (Filter.Substr (a "mail", sub ~initial:"laks" ~any:[ "cse" ] ~final:"in" ())));
  check "ordered anys" true
    (m (Filter.Substr (a "name", sub ~any:[ "Laks"; "Laks" ] ())));
  check "ordered anys fail" false
    (m (Filter.Substr (a "mail", sub ~any:[ "iitb"; "cse" ] ())));
  check "case-insensitive" true (m (Filter.Substr (a "name", sub ~initial:"LAKS" ())))

let test_filter_parser () =
  let p s = Filter_parser.parse_exn s in
  check "simple eq" true
    (Filter.equal (p "(objectClass=person)") (Filter.class_eq person));
  check "and" true
    (Filter.equal
       (p "(&(objectClass=person)(mail=*))")
       (Filter.And [ Filter.class_eq person; Filter.Present (a "mail") ]));
  check "or-not" true
    (Filter.equal
       (p "(|(!(a=1))(b>=2))")
       (Filter.Or [ Filter.Not (Filter.Eq (a "a", "1")); Filter.Ge (a "b", "2") ]));
  check "substring" true
    (Filter.equal
       (p "(mail=laks*ca)")
       (Filter.Substr (a "mail", { initial = Some "laks"; any = []; final = Some "ca" })));
  check "escaped star" true (Filter.equal (p {|(x=a\*b)|}) (Filter.Eq (a "x", "a*b")));
  check "whitespace tolerated" true
    (Filter.equal
       (p "( & (a=1) (b=2) )")
       (Filter.And [ Filter.Eq (a "a", "1"); Filter.Eq (a "b", "2") ]));
  check "error: unbalanced" true (Result.is_error (Filter_parser.parse "(a=1"));
  check "error: trailing" true (Result.is_error (Filter_parser.parse "(a=1)x"));
  check "error: star in ge" true (Result.is_error (Filter_parser.parse "(a>=1*2)"))

let test_filter_parser_escapes () =
  let p s = Filter_parser.parse_exn s in
  (* RFC 2254 hex escapes name bytes *)
  check "hex star" true (Filter.equal (p {|(x=a\2ab)|}) (Filter.Eq (a "x", "a*b")));
  check "hex parens" true
    (Filter.equal (p {|(x=\28\29)|}) (Filter.Eq (a "x", "()")));
  check "hex backslash" true
    (Filter.equal (p {|(x=\5c)|}) (Filter.Eq (a "x", "\\")));
  check "hex nul" true (Filter.equal (p {|(x=\00)|}) (Filter.Eq (a "x", "\000")));
  (* backslash before a non-hex-pair still escapes one character *)
  check "legacy single-char escape" true
    (Filter.equal (p {|(x=a\zb)|}) (Filter.Eq (a "x", "azb")));
  (* a pattern of only stars is plain presence, not a degenerate Substr *)
  check "double star is presence" true
    (Filter.equal (p "(x=**)") (Filter.Present (a "x")));
  check "triple star is presence" true
    (Filter.equal (p "(x=***)") (Filter.Present (a "x")));
  (* the printer emits hex escapes, so specials round-trip *)
  List.iter
    (fun v ->
      let f = Filter.Eq (a "x", v) in
      check
        (Printf.sprintf "special %S roundtrips" v)
        true
        (Filter.equal f (p (Filter.to_string f))))
    [ "*"; "()"; "\\2a"; "a*b(c)\\"; "\000" ]

let test_filter_roundtrip () =
  List.iter
    (fun s ->
      let f = Filter_parser.parse_exn s in
      let f' = Filter_parser.parse_exn (Filter.to_string f) in
      check ("roundtrip " ^ s) true (Filter.equal f f'))
    [
      "(objectClass=person)";
      "(mail=*)";
      "(&(a=1)(|(b=2)(c=3)))";
      "(!(x<=10))";
      "(mail=a*b*c)";
      {|(x=p\(q\)r)|};
    ]

(* --- Query parser / printer -------------------------------------------- *)

let test_query_parser () =
  let q =
    Query_parser.parse_exn
      {|(minus (select "(objectClass=orgGroup)") (chi d (select "(objectClass=orgGroup)") (select "(objectClass=person)")))|}
  in
  (match q with
  | Query.Minus (Query.Select _, Query.Chi (Query.Descendant, _, _)) -> ()
  | _ -> Alcotest.fail "unexpected shape");
  check_int "size" 5 (Query.size q);
  (* bare filter shorthand *)
  let q2 = Query_parser.parse_exn "(chi c (objectClass=person) (objectClass=top))" in
  (match q2 with
  | Query.Chi (Query.Child, Query.Select _, Query.Select _) -> ()
  | _ -> Alcotest.fail "unexpected shape 2");
  check "error" true (Result.is_error (Query_parser.parse "(chi q (a=1) (b=2))"))

let test_query_roundtrip () =
  List.iter
    (fun s ->
      let q = Query_parser.parse_exn s in
      let q' = Query_parser.parse_exn (Query.to_string q) in
      check ("roundtrip " ^ s) true (Query.equal q q'))
    [
      "(objectClass=person)";
      "(minus (a=1) (b=2))";
      "(union (inter (a=1) (b=2)) (chi a (c=3) (d=4)))";
      "(chi p (select \"(&(a=1)(b=2))\") (x=*))";
    ]

(* --- Evaluation ---------------------------------------------------------- *)

(* A small fixed forest:
     0:org -> 1:unit -> 3:person, 4:person
            -> 2:person
     5:org (second root, person-less) *)
let mk id cls =
  Entry.make ~id ~classes:(Oclass.Set.of_list [ Oclass.top; Oclass.of_string cls ]) []

let forest () =
  Instance.empty
  |> Instance.add_root_exn (mk 0 "org")
  |> Instance.add_child_exn ~parent:0 (mk 1 "unit")
  |> Instance.add_child_exn ~parent:0 (mk 2 "person")
  |> Instance.add_child_exn ~parent:1 (mk 3 "person")
  |> Instance.add_child_exn ~parent:1 (mk 4 "person")
  |> Instance.add_root_exn (mk 5 "org")

let sel c = Query.select_class (Oclass.of_string c)

let eval_ids q =
  let inst = forest () in
  Eval.eval_ids (Index.create inst) q

let test_eval_select () =
  check_ids "persons" [ 2; 3; 4 ] (List.sort compare (eval_ids (sel "person")));
  check_ids "orgs" [ 0; 5 ] (List.sort compare (eval_ids (sel "org")));
  check_ids "top = everything" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare (eval_ids (sel "top")))

let test_eval_chi () =
  let sorted q = List.sort compare (eval_ids q) in
  check_ids "orgs with person child" [ 0 ]
    (sorted (Query.Chi (Query.Child, sel "org", sel "person")));
  check_ids "orgs with person descendant" [ 0 ]
    (sorted (Query.Chi (Query.Descendant, sel "org", sel "person")));
  check_ids "persons with unit parent" [ 3; 4 ]
    (sorted (Query.Chi (Query.Parent, sel "person", sel "unit")));
  check_ids "persons with org ancestor" [ 2; 3; 4 ]
    (sorted (Query.Chi (Query.Ancestor, sel "person", sel "org")));
  check_ids "units with org parent" [ 1 ]
    (sorted (Query.Chi (Query.Parent, sel "unit", sel "org")));
  check_ids "no org has org descendant" []
    (sorted (Query.Chi (Query.Descendant, sel "org", sel "org")))

let test_eval_minus () =
  (* the Q1 of Section 3.2: orgs without a person descendant *)
  let q1 =
    Query.Minus (sel "org", Query.Chi (Query.Descendant, sel "org", sel "person"))
  in
  check_ids "org 5 has no person" [ 5 ] (eval_ids q1);
  check "is_empty false" false (Eval.is_empty (Index.create (forest ())) q1)

let test_eval_empty_instance () =
  let ix = Index.create Instance.empty in
  check "empty select" true (Eval.is_empty ix (sel "person"));
  check "empty chi" true
    (Eval.is_empty ix (Query.Chi (Query.Descendant, sel "a", sel "b")))

let test_vindex_agrees () =
  let inst = forest () in
  let ix = Index.create inst in
  let vx = Vindex.create ix in
  List.iter
    (fun q ->
      check "vindex = scan" true
        (Bitset.equal (Eval.eval ix q) (Eval.eval ~vindex:vx ix q)))
    [
      sel "person";
      Query.Select (Filter.Not (Filter.class_eq person));
      Query.Select (Filter.And [ Filter.class_eq person; Filter.Present (a "x") ]);
      Query.Chi (Query.Descendant, sel "org", sel "person");
      Query.Select (Filter.Present Attr.object_class);
    ]

(* --- planner: range / trigram / memo unit tests -------------------------- *)

(* Duplicate values, numeric/non-numeric mix on one attribute ("9" < "10"
   numerically but "10" < "9" lexicographically, and "2a" parses as
   neither), and an attribute nobody carries. *)
let rich_forest () =
  let e id cls pairs =
    Entry.make ~id
      ~classes:(Oclass.Set.of_list [ Oclass.top; Oclass.of_string cls ])
      (List.map (fun (n, v) -> (a n, Value.String v)) pairs)
  in
  Instance.empty
  |> Instance.add_root_exn (e 0 "org" [ ("ou", "root") ])
  |> Instance.add_child_exn ~parent:0
       (e 1 "person" [ ("uid", "u1"); ("age", "9"); ("name", "name of u1") ])
  |> Instance.add_child_exn ~parent:0
       (e 2 "person" [ ("uid", "u1"); ("age", "10"); ("name", "name of u2") ])
  |> Instance.add_child_exn ~parent:0
       (e 3 "person" [ ("uid", "u2"); ("age", "2a") ])
  |> Instance.add_child_exn ~parent:3 (e 4 "person" [ ("uid", "u3") ])

let plan_ids inst q =
  let vx = Vindex.create (Index.create inst) in
  List.sort compare (Plan.eval_ids vx q)

let test_plan_range_edges () =
  let inst = rich_forest () in
  let naive q = List.sort compare (Naive_eval.eval inst q) in
  let agree name q = check name true (plan_ids inst q = naive q) in
  agree "range over missing attribute" (Query.Select (Filter.Ge (a "phone", "0")));
  agree "le over missing attribute" (Query.Select (Filter.Le (a "phone", "z")));
  agree "numeric ge crosses digit count" (Query.Select (Filter.Ge (a "age", "9")));
  agree "numeric le crosses digit count" (Query.Select (Filter.Le (a "age", "9")));
  agree "non-numeric bound over mixed values"
    (Query.Select (Filter.Ge (a "age", "1a")));
  agree "eq with duplicate values" (Query.Select (Filter.Eq (a "uid", "u1")));
  agree "range with duplicate values" (Query.Select (Filter.Ge (a "uid", "u1")));
  agree "range on empty instance bound" (Query.Select (Filter.Le (a "uid", "")));
  (* a concrete expectation, not just agreement: ordering is numeric when
     both sides parse, so 9 <= age <= 10 catches "9" and "10" but not "2a" *)
  check_ids "9 <= age <= 10 is numeric" [ 1; 2 ]
    (plan_ids inst
       (Query.Select (Filter.And [ Filter.Ge (a "age", "9"); Filter.Le (a "age", "10") ])))

let test_plan_substr_edges () =
  let inst = rich_forest () in
  let naive q = List.sort compare (Naive_eval.eval inst q) in
  let agree name q = check name true (plan_ids inst q = naive q) in
  let sub ?initial ?(any = []) ?final () = { Filter.initial; any; final } in
  (* fragments >= 3 chars go through the trigram index *)
  agree "trigram prefix" (Query.Select (Filter.Substr (a "name", sub ~initial:"name of" ())));
  agree "trigram any" (Query.Select (Filter.Substr (a "name", sub ~any:[ "of u1" ] ())));
  (* short fragments have no trigrams and fall back to presence candidates *)
  agree "short fragment" (Query.Select (Filter.Substr (a "uid", sub ~any:[ "u" ] ())));
  (* degenerate all-star patterns: no fragments at all *)
  agree "all stars" (Query.Select (Filter.Substr (a "uid", sub ())));
  agree "empty fragments" (Query.Select (Filter.Substr (a "uid", sub ~initial:"" ~any:[ "" ] ~final:"" ())));
  agree "substr over missing attribute"
    (Query.Select (Filter.Substr (a "phone", sub ~any:[ "555" ] ())))

let test_plan_explain_shapes () =
  let inst = rich_forest () in
  let vx = Vindex.create (Index.create inst) in
  let has_sub needle lines =
    List.exists
      (fun l ->
        let nl = String.length needle and ll = String.length l in
        let rec go i = i + nl <= ll && (String.sub l i nl = needle || go (i + 1)) in
        go 0)
      lines
  in
  (* an expensive Not lands in the verify tail, not in an O(n) complement *)
  let p1 =
    Plan.plan vx
      (Query.Select
         (Filter.And
            [
              Filter.Eq (a "uid", "u1");
              Filter.Not
                (Filter.Substr (a "uid", { Filter.initial = None; any = [ "u" ]; final = None }));
            ]))
  in
  ignore (Plan.exec p1);
  check "not verified per candidate" true (has_sub "verify" (Plan.explain_lines p1));
  (* an empty left operand skips the right one, visible in the explain *)
  let p2 = Plan.plan vx (Query.Inter (sel "nosuchclass", sel "person")) in
  ignore (Plan.exec p2);
  check "early exit marks skipped" true (has_sub "skipped" (Plan.explain_lines p2))

let test_plan_memo () =
  let inst = forest () in
  let vx = Vindex.create (Index.create inst) in
  let m = Plan.memo_create vx in
  let q =
    Query.Minus (sel "org", Query.Chi (Query.Descendant, sel "org", sel "person"))
  in
  (* q's own subqueries repeat [sel "org"], so the prewarm caches it *)
  Plan.prewarm m [ q ];
  let r1 = Plan.memo_eval m q in
  let r2 = Plan.memo_eval_ro m q in
  check "memo = plain planner" true (Bitset.equal r1 (Plan.eval vx q));
  check "ro = rw" true (Bitset.equal r1 r2);
  let hits, _, entries = Plan.memo_stats m in
  check "cache populated" true (entries > 0);
  check "shared subqueries hit" true (hits > 0)

(* --- property: linear evaluator ≡ naive reference ----------------------- *)

let classes_pool = [ "a"; "b"; "c" ]

let gen_instance =
  QCheck.Gen.(
    sized_size (int_bound 40) (fun n st ->
        let seed = int_bound 1_000_000 st in
        Bounds_workload.Gen.random_forest ~seed ~size:(max 1 n)
          ~mk_entry:(fun rng id ->
            let cls = List.nth classes_pool (Random.State.int rng 3) in
            mk id cls)
          ()))

let gen_query =
  let open QCheck.Gen in
  let leaf = map (fun i -> sel (List.nth classes_pool i)) (int_bound 2) in
  let axis = oneofl [ Query.Child; Query.Parent; Query.Descendant; Query.Ancestor ] in
  sized_size (int_bound 5)
    (fix (fun self n ->
         if n = 0 then leaf
         else
           frequency
             [
               (1, leaf);
               ( 2,
                 map3
                   (fun ax a b -> Query.Chi (ax, a, b))
                   axis
                   (self (n / 2))
                   (self (n / 2)) );
               (1, map2 (fun a b -> Query.Minus (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Query.Union (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Query.Inter (a, b)) (self (n / 2)) (self (n / 2)));
             ]))

let arb_case =
  QCheck.make
    ~print:(fun (inst, q) ->
      Format.asprintf "size=%d query=%s" (Instance.size inst) (Query.to_string q))
    QCheck.Gen.(pair gen_instance gen_query)

let prop_eval_equiv =
  QCheck.Test.make ~name:"linear evaluator = naive reference" ~count:300 arb_case
    (fun (inst, q) ->
      let fast = List.sort compare (Eval.eval_ids (Index.create inst) q) in
      let slow = Naive_eval.eval inst q in
      fast = slow)

let prop_eval_vindex_equiv =
  QCheck.Test.make ~name:"vindex evaluator = naive reference" ~count:200 arb_case
    (fun (inst, q) ->
      let ix = Index.create inst in
      let fast =
        List.sort compare (Index.ids_of ix (Eval.eval ~vindex:(Vindex.create ix) ix q))
      in
      fast = Naive_eval.eval inst q)

let prop_plan_equiv =
  QCheck.Test.make ~name:"planned evaluator = naive reference" ~count:300 arb_case
    (fun (inst, q) ->
      let vx = Vindex.create (Index.create inst) in
      List.sort compare (Plan.eval_ids vx q) = Naive_eval.eval inst q)

(* Hostile cases for the planner: value-carrying entries (duplicates, the
   numeric/lexicographic "9"/"10"/"2a" mix, empty strings), Not-heavy
   filters, empty And/Or, and deeply nested χ chains — everything the
   cost model could misjudge must still agree extensionally. *)

let hostile_vals = [| "9"; "10"; "2a"; "u1"; "u2"; "name of u1"; "" |]

let gen_rich_instance =
  QCheck.Gen.(
    sized_size (int_bound 30) (fun n st ->
        let seed = int_bound 1_000_000 st in
        Bounds_workload.Gen.random_forest ~seed ~size:(max 1 n)
          ~mk_entry:(fun rng id ->
            let cls = List.nth classes_pool (Random.State.int rng 3) in
            let pairs =
              List.filter_map
                (fun attr ->
                  if Random.State.bool rng then
                    Some
                      ( a attr,
                        Value.String
                          hostile_vals.(Random.State.int rng (Array.length hostile_vals)) )
                  else None)
                [ "uid"; "age"; "name" ]
            in
            Entry.make ~id
              ~classes:(Oclass.Set.of_list [ Oclass.top; Oclass.of_string cls ])
              pairs)
          ()))

let gen_hostile_filter =
  let open QCheck.Gen in
  let value = oneofl (Array.to_list hostile_vals) in
  let gattr = oneofl [ "uid"; "age"; "name"; "phone" ] >|= a in
  let leaf =
    oneof
      [
        map (fun at -> Filter.Present at) gattr;
        map2 (fun at v -> Filter.Eq (at, v)) gattr value;
        map2 (fun at v -> Filter.Ge (at, v)) gattr value;
        map2 (fun at v -> Filter.Le (at, v)) gattr value;
        map2
          (fun at (i, f) ->
            Filter.Substr (at, { Filter.initial = i; any = [ "of" ]; final = f }))
          gattr
          (pair (opt (return "name")) (opt (return "1")));
        return (Filter.And []);
        return (Filter.Or []);
      ]
  in
  sized_size (int_bound 6)
    (fix (fun self n ->
         if n = 0 then leaf
         else
           frequency
             [
               (1, leaf);
               (3, map (fun f -> Filter.Not f) (self (n - 1)));
               (2, map (fun fs -> Filter.And fs) (list_size (int_bound 3) (self (n / 2))));
               (2, map (fun fs -> Filter.Or fs) (list_size (int_bound 3) (self (n / 2))));
             ]))

let gen_hostile_query =
  let open QCheck.Gen in
  let axis = oneofl [ Query.Child; Query.Parent; Query.Descendant; Query.Ancestor ] in
  let leaf = map (fun f -> Query.Select f) gen_hostile_filter in
  sized_size (int_bound 8)
    (fix (fun self n ->
         if n = 0 then leaf
         else
           frequency
             [
               (1, leaf);
               ( 3,
                 map3
                   (fun ax q b -> Query.Chi (ax, q, b))
                   axis
                   (self (n - 1))
                   (self (n / 2)) );
               (1, map2 (fun q b -> Query.Minus (q, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun q b -> Query.Union (q, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun q b -> Query.Inter (q, b)) (self (n / 2)) (self (n / 2)));
             ]))

let arb_hostile =
  QCheck.make
    ~print:(fun (inst, q) ->
      Format.asprintf "size=%d query=%s" (Instance.size inst) (Query.to_string q))
    QCheck.Gen.(pair gen_rich_instance gen_hostile_query)

let prop_plan_hostile =
  QCheck.Test.make ~name:"planned evaluator = naive on hostile queries" ~count:300
    arb_hostile (fun (inst, q) ->
      let ix = Index.create inst in
      let vx = Vindex.create ix in
      let slow = Naive_eval.eval inst q in
      List.sort compare (Plan.eval_ids vx q) = slow
      && List.sort compare (Index.ids_of ix (Eval.eval ~vindex:vx ix q)) = slow)

(* --- random print/parse round-trips ---------------------------------------- *)

let gen_attr = QCheck.Gen.(oneofl [ "cn"; "mail"; "uid"; "x-opt" ] >|= a)

let gen_value_str =
  QCheck.Gen.(
    oneofl [ "v"; "a b"; "we(i)rd*"; "back\\slash"; ""; "héllo"; "42" ])

let gen_filter =
  let open QCheck.Gen in
  sized_size (int_bound 6)
    (fix (fun self n ->
         if n = 0 then
           oneof
             [
               map (fun at -> Filter.Present at) gen_attr;
               map2 (fun at v -> Filter.Eq (at, v)) gen_attr gen_value_str;
               map2 (fun at v -> Filter.Ge (at, v)) gen_attr (oneofl [ "1"; "z" ]);
               map2 (fun at v -> Filter.Le (at, v)) gen_attr (oneofl [ "9"; "a" ]);
               map2
                 (fun at (i, f) ->
                   Filter.Substr (at, { Filter.initial = i; any = [ "mid" ]; final = f }))
                 gen_attr
                 (pair (opt (return "st")) (opt (return "end")));
             ]
         else
           frequency
             [
               (2, self 0);
               (1, map (fun fs -> Filter.And fs) (list_size (int_bound 3) (self (n / 2))));
               (1, map (fun fs -> Filter.Or fs) (list_size (int_bound 3) (self (n / 2))));
               (1, map (fun f -> Filter.Not f) (self (n / 2)));
             ]))

let prop_filter_roundtrip_random =
  QCheck.Test.make ~name:"filter print/parse roundtrip (random)" ~count:500
    (QCheck.make ~print:Filter.to_string gen_filter)
    (fun f ->
      match Filter_parser.parse (Filter.to_string f) with
      | Ok f' -> Filter.equal f f'
      | Error _ -> false)

let prop_query_roundtrip_random =
  QCheck.Test.make ~name:"query print/parse roundtrip (random)" ~count:300
    (QCheck.make ~print:Query.to_string gen_query)
    (fun q ->
      match Query_parser.parse (Query.to_string q) with
      | Ok q' -> Query.equal q q'
      | Error _ -> false)

(* --- bitset model-based property ----------------------------------------- *)

module Iset = Set.Make (Int)

let arb_sets =
  QCheck.make
    ~print:(fun (n, xs, ys) ->
      Printf.sprintf "n=%d xs=%s ys=%s" n
        (String.concat "," (List.map string_of_int xs))
        (String.concat "," (List.map string_of_int ys)))
    QCheck.Gen.(
      int_range 1 64 >>= fun n ->
      pair (return n)
        (pair (list_size (int_bound 40) (int_bound (n - 1)))
           (list_size (int_bound 40) (int_bound (n - 1))))
      >|= fun (n, (xs, ys)) -> (n, xs, ys))

(* --- word-kernel vs byte-reference bit identity -------------------------- *)

(* The byte-at-a-time kernels the word-level rewrite replaced, kept here
   as the reference semantics.  Universe sizes are drawn to land on every
   tail residue (0..7 bytes past a word boundary). *)
module Byte_ref = struct
  let union_into ~into src =
    List.iter (Bitset.set into) (Bitset.elements src)

  let inter a b =
    Bitset.of_list (Bitset.length a)
      (List.filter (Bitset.mem b) (Bitset.elements a))

  let union a b =
    Bitset.of_list (Bitset.length a) (Bitset.elements a @ Bitset.elements b)

  let diff a b =
    Bitset.of_list (Bitset.length a)
      (List.filter (fun i -> not (Bitset.mem b i)) (Bitset.elements a))

  let cardinal a =
    List.fold_left (fun n _ -> n + 1) 0 (Bitset.elements a)

  let iter_range f s ~lo ~hi =
    for i = max lo 0 to min hi (Bitset.length s) - 1 do
      if Bitset.mem s i then f i
    done
end

let arb_word_sets =
  QCheck.make
    ~print:(fun (n, xs, ys, lo, hi) ->
      Printf.sprintf "n=%d lo=%d hi=%d xs=%s ys=%s" n lo hi
        (String.concat "," (List.map string_of_int xs))
        (String.concat "," (List.map string_of_int ys)))
    QCheck.Gen.(
      (* words + every byte-tail residue, plus tiny universes *)
      oneof [ int_range 1 80; int_range 120 200; return 64; return 128 ]
      >>= fun n ->
      list_size (int_bound 60) (int_bound (n - 1)) >>= fun xs ->
      list_size (int_bound 60) (int_bound (n - 1)) >>= fun ys ->
      int_bound (n + 2) >>= fun lo ->
      int_bound (n + 2) >|= fun hi -> (n, xs, ys, lo - 1, hi))

let prop_bitset_word_kernels =
  QCheck.Test.make ~name:"word kernels = byte reference (bit identity)"
    ~count:500 arb_word_sets (fun (n, xs, ys, lo, hi) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let id bs bs' = Bitset.equal bs bs' && Bitset.elements bs = Bitset.elements bs' in
      let into_u = Bitset.copy a and into_u' = Bitset.copy a in
      Bitset.union_into ~into:into_u b;
      Byte_ref.union_into ~into:into_u' b;
      let into_i = Bitset.copy a in
      Bitset.inter_into ~into:into_i b;
      let range s =
        let acc = ref [] in
        Bitset.iter_range (fun i -> acc := i :: !acc) s ~lo ~hi;
        List.rev !acc
      and range' s =
        let acc = ref [] in
        Byte_ref.iter_range (fun i -> acc := i :: !acc) s ~lo ~hi;
        List.rev !acc
      in
      id (Bitset.union a b) (Byte_ref.union a b)
      && id (Bitset.inter a b) (Byte_ref.inter a b)
      && id (Bitset.diff a b) (Byte_ref.diff a b)
      && id into_u into_u'
      && id into_i (Byte_ref.inter a b)
      && Bitset.cardinal a = Byte_ref.cardinal a
      && Bitset.is_empty a = (Byte_ref.cardinal a = 0)
      && Bitset.subset a b = Bitset.is_empty (Byte_ref.diff a b)
      && range a = range' a
      && range (Bitset.full n) = range' (Bitset.full n))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset ops match the set model" ~count:300 arb_sets
    (fun (n, xs, ys) ->
      let a = Bitset.of_list n xs and b = Bitset.of_list n ys in
      let sa = Iset.of_list xs and sb = Iset.of_list ys in
      let eq bs s = Bitset.elements bs = Iset.elements s in
      eq (Bitset.union a b) (Iset.union sa sb)
      && eq (Bitset.inter a b) (Iset.inter sa sb)
      && eq (Bitset.diff a b) (Iset.diff sa sb)
      && Bitset.cardinal a = Iset.cardinal sa
      && eq (Bitset.complement a)
           (Iset.diff (Iset.of_list (List.init n Fun.id)) sa)
      && Bitset.subset a b = Iset.subset sa sb
      && Bitset.is_empty a = Iset.is_empty sa)

(* [Bitset.splice] carries memoized per-rank sets across index version
   steps; hold the word-gather kernel to the member-by-member reference
   on every alignment of splice point, width and tail residue. *)
let arb_splice =
  QCheck.make
    ~print:(fun (n, xs, at, removed, inserted) ->
      Printf.sprintf "n=%d at=%d removed=%d inserted=%d xs=%s" n at removed
        inserted
        (String.concat "," (List.map string_of_int xs)))
    QCheck.Gen.(
      oneof [ int_range 0 80; int_range 120 200; return 64; return 128 ]
      >>= fun n ->
      (if n = 0 then return [] else list_size (int_bound 60) (int_bound (n - 1)))
      >>= fun xs ->
      int_bound n >>= fun at ->
      int_bound (n - at) >>= fun removed ->
      int_bound 70 >|= fun inserted -> (n, xs, at, removed, inserted))

let prop_bitset_splice =
  QCheck.Test.make ~name:"bitset splice = member reference" ~count:500
    arb_splice (fun (n, xs, at, removed, inserted) ->
      let s = Bitset.of_list n xs in
      let got = Bitset.splice ~at ~removed ~inserted s in
      let want =
        Bitset.of_list
          (n - removed + inserted)
          (List.filter_map
             (fun i ->
               if i < at then Some i
               else if i < at + removed then None
               else Some (i - removed + inserted))
             (List.sort_uniq compare xs))
      in
      Bitset.equal got want
      && Bitset.elements got = Bitset.elements want
      && Bitset.length got = n - removed + inserted)

(* --- search vs reference --------------------------------------------------- *)

let arb_search =
  QCheck.make
    ~print:(fun (seed, k) -> Printf.sprintf "seed=%d k=%d" seed k)
    QCheck.Gen.(pair (int_bound 100_000) (int_bound 1_000))

let prop_search_reference =
  QCheck.Test.make ~name:"scoped search = reference semantics" ~count:200 arb_search
    (fun (seed, k) ->
      let inst =
        Bounds_workload.Gen.random_forest ~seed ~size:(1 + (seed mod 60))
          ~mk_entry:(fun rng id -> mk id (List.nth classes_pool (Random.State.int rng 3)))
          ()
      in
      let ix = Index.create inst in
      let ids = Instance.ids inst in
      let base = List.nth ids (k mod List.length ids) in
      let f = Filter.class_eq (Oclass.of_string (List.nth classes_pool (k mod 3))) in
      let keep id = Filter.matches f (Instance.entry inst id) in
      let reference scope =
        (match scope with
        | Search.Base -> [ base ]
        | Search.One_level -> Instance.children inst base
        | Search.Subtree -> base :: Instance.descendants inst base)
        |> List.filter keep
        |> List.sort compare
      in
      List.for_all
        (fun scope ->
          List.sort compare (Search.search ix ~base:(Some base) scope f)
          = reference scope
          && Search.count ix ~base:(Some base) scope f = List.length (reference scope))
        [ Search.Base; Search.One_level; Search.Subtree ])

(* extent_of_rank really brackets the subtree *)
let prop_extent_brackets_subtree =
  QCheck.Test.make ~name:"preorder extents bracket subtrees" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let inst =
        Bounds_workload.Gen.random_forest ~seed ~size:(1 + (seed mod 60))
          ~mk_entry:(fun _ id -> mk id "a")
          ()
      in
      let ix = Index.create inst in
      List.for_all
        (fun id ->
          let r = Index.rank ix id in
          let e = Index.extent_of_rank ix r in
          let in_interval d = r < Index.rank ix d && Index.rank ix d <= e in
          e - r = List.length (Instance.descendants inst id)
          && List.for_all in_interval (Instance.descendants inst id))
        (Instance.ids inst))

(* Adversarial round-trips: the workload generators mix filter
   metacharacters, escapes, NUL and high bytes into values — the printed
   form must reparse to the same AST. *)
let prop_filter_roundtrip_adversarial =
  QCheck.Test.make ~name:"filter roundtrip on adversarial values" ~count:500
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Bounds_workload.Gen.random_filter ~depth:3 rng in
      Filter.equal f (Filter_parser.parse_exn (Filter.to_string f)))

let prop_query_roundtrip_adversarial =
  QCheck.Test.make ~name:"query roundtrip on adversarial values" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Bounds_workload.Gen.random_query ~depth:3 rng in
      Query.equal q (Query_parser.parse_exn (Query.to_string q)))

let () =
  Alcotest.run "query"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "algebra" `Quick test_bitset_algebra;
          Alcotest.test_case "full & edges" `Quick test_bitset_full_and_edges;
        ] );
      ( "filter",
        [
          Alcotest.test_case "matching" `Quick test_filter_matching;
          Alcotest.test_case "substring" `Quick test_filter_substring;
          Alcotest.test_case "parser" `Quick test_filter_parser;
          Alcotest.test_case "escapes" `Quick test_filter_parser_escapes;
          Alcotest.test_case "roundtrip" `Quick test_filter_roundtrip;
        ] );
      ( "query-syntax",
        [
          Alcotest.test_case "parser" `Quick test_query_parser;
          Alcotest.test_case "roundtrip" `Quick test_query_roundtrip;
        ] );
      ( "eval",
        [
          Alcotest.test_case "select" `Quick test_eval_select;
          Alcotest.test_case "chi axes" `Quick test_eval_chi;
          Alcotest.test_case "minus" `Quick test_eval_minus;
          Alcotest.test_case "empty instance" `Quick test_eval_empty_instance;
          Alcotest.test_case "vindex agreement" `Quick test_vindex_agrees;
        ] );
      ( "plan",
        [
          Alcotest.test_case "range edge cases" `Quick test_plan_range_edges;
          Alcotest.test_case "substring edge cases" `Quick test_plan_substr_edges;
          Alcotest.test_case "explain shapes" `Quick test_plan_explain_shapes;
          Alcotest.test_case "memoization" `Quick test_plan_memo;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_eval_equiv;
          QCheck_alcotest.to_alcotest prop_eval_vindex_equiv;
          QCheck_alcotest.to_alcotest prop_plan_equiv;
          QCheck_alcotest.to_alcotest prop_plan_hostile;
          QCheck_alcotest.to_alcotest prop_filter_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_query_roundtrip_random;
          QCheck_alcotest.to_alcotest prop_filter_roundtrip_adversarial;
          QCheck_alcotest.to_alcotest prop_query_roundtrip_adversarial;
          QCheck_alcotest.to_alcotest prop_bitset_model;
          QCheck_alcotest.to_alcotest prop_bitset_word_kernels;
          QCheck_alcotest.to_alcotest prop_bitset_splice;
          QCheck_alcotest.to_alcotest prop_search_reference;
          QCheck_alcotest.to_alcotest prop_extent_brackets_subtree;
        ] );
    ]
