(* Durable directory sessions: CRC-framed write-ahead log, checkpoint
   compaction, and crash recovery.

   The deterministic matrix drives every documented damage shape
   (truncated tail, torn header/payload, CRC bit flip, duplicate tail
   records, lsn gap, empty log, missing log) through [Store.open_] and
   checks the positioned [Recovered_at] report.  The QCheck property
   then crashes a scripted run at {e every} mutating operation and every
   intra-record byte boundary, and requires recovery to reproduce
   exactly the acknowledged prefix — through the trusted replay path
   (the default) {e and} through the checked path ([~trusted:false]),
   which must agree on every crash point. *)

open Bounds_model
open Bounds_core
module Io = Bounds_store.Io
module Frame = Bounds_store.Frame
module Codec = Bounds_store.Codec
module Wal = Bounds_store.Wal
module Checkpoint = Bounds_store.Checkpoint
module Store = Bounds_store.Store
module Gen = Bounds_workload.Gen
module WP = Bounds_workload.White_pages

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let a = Attr.of_string

let get_store what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Store.error_to_string e)

let get_apply what = function
  | Admission.Accepted _ as r -> r
  | Admission.Rejected { reason; _ } ->
      Alcotest.failf "%s: %s" what
        (Format.asprintf "%a" Monitor.pp_rejection reason)

(* --- Frame ---------------------------------------------------------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let s = Frame.encode payload in
      match Frame.read s 0 with
      | Frame.Record { payload = p; next } ->
          check_string "payload" payload p;
          check_int "next" (String.length s) next;
          check "end" true (Frame.read s next = Frame.End)
      | _ -> Alcotest.fail "frame did not read back")
    [ ""; "a"; String.init 256 Char.chr |> fun s -> s ^ s ]

let test_frame_torn () =
  let s = Frame.encode "hello, log" in
  for keep = 1 to String.length s - 1 do
    match Frame.read (String.sub s 0 keep) 0 with
    | Frame.Torn { offset; _ } -> check_int "torn offset" 0 offset
    | Frame.End -> Alcotest.failf "prefix of %d bytes read as End" keep
    | Frame.Record _ -> Alcotest.failf "prefix of %d bytes read as a record" keep
  done;
  (* a flip of any single payload bit is caught by the CRC *)
  let flip i bit s =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  in
  for i = Frame.header_size to String.length s - 1 do
    for bit = 0 to 7 do
      match Frame.read (flip i bit s) 0 with
      | Frame.Torn { reason; _ } -> check_string "flip reason" "crc mismatch" reason
      | _ -> Alcotest.failf "flipped bit %d of byte %d went unnoticed" bit i
    done
  done;
  (* header damage is caught too, whatever the reason *)
  for i = 0 to Frame.header_size - 1 do
    match Frame.read (flip i 0 s) 0 with
    | Frame.Torn _ -> ()
    | Frame.End -> Alcotest.failf "header flip at byte %d read as End" i
    | Frame.Record _ -> Alcotest.failf "header flip at byte %d went unnoticed" i
  done

(* --- Codec ---------------------------------------------------------------- *)

let sample_ops =
  let counter = ref 1000 in
  List.concat_map
    (fun seed ->
      Gen.random_ops ~counter ~seed ~n:4 WP.schema WP.instance)
    [ 1; 2; 3 ]

let test_codec_roundtrip () =
  (* canonical encoding: decode-then-reencode is the identity on bytes *)
  List.iteri
    (fun i op ->
      let s = Codec.encode_txn ~lsn:(i + 1) [ op ] in
      match Codec.decode_txn s with
      | Error m -> Alcotest.failf "op %d does not decode: %s" i m
      | Ok (lsn, ops) ->
          check_int "lsn" (i + 1) lsn;
          check_string "reencode" s (Codec.encode_txn ~lsn ops))
    sample_ops;
  let s = Codec.encode_txn ~lsn:7 sample_ops in
  match Codec.decode_txn s with
  | Error m -> Alcotest.failf "txn does not decode: %s" m
  | Ok (lsn, ops) -> check_string "txn reencode" s (Codec.encode_txn ~lsn ops)

let test_codec_total () =
  (* every single-bit corruption decodes to Ok or Error, never raises;
     truncations likewise *)
  let s = Codec.encode_txn ~lsn:3 sample_ops in
  let flip i bit =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.to_string b
  in
  for i = 0 to String.length s - 1 do
    for bit = 0 to 7 do
      match Codec.decode_txn (flip i bit) with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "decode raised on bit %d of byte %d: %s" bit i
            (Printexc.to_string e)
    done;
    match Codec.decode_txn (String.sub s 0 i) with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "decode raised on %d-byte prefix: %s" i
          (Printexc.to_string e)
  done

(* --- deterministic fault matrix ------------------------------------------- *)

(* staff entries under ou=attLabs (id 1) of the Figure-1 instance *)
let person ~id ~uid =
  Entry.make ~id ~rdn:("uid=" ^ uid)
    ~classes:(Oclass.set_of_list [ "staffmember"; "person"; "top" ])
    [ (a "name", Value.String ("name of " ^ uid)); (a "uid", Value.String uid) ]

let ins ?(parent = Some 1) id uid = [ Update.Insert { parent; entry = person ~id ~uid } ]
let txn1 = ins 100 "wal1"
let txn2 = ins 101 "wal2"
let txn3 = ins 102 "wal3"

let after txns = List.fold_left (fun i t -> Result.get_ok (Update.apply i t)) WP.instance txns

(* a store on a fresh in-memory fs with the Figure-1 seed *)
let fresh_store () =
  let fs = Io.fresh_fs () in
  let st = get_store "init" (Store.init (Io.mem fs) WP.schema WP.instance) in
  (fs, st)

let check_state what st expected =
  let d = Store.directory st in
  check what true (Instance.equal (Directory.instance d) expected);
  check (what ^ ": legal") true (Directory.validate d = [])

let reopen what fs = get_store what (Store.open_ (Io.mem fs))

let expect_recovered what ~offset ?reason report =
  match report.Store.tail with
  | Store.Clean -> Alcotest.failf "%s: tail reported clean" what
  | Store.Recovered_at { offset = o; reason = r } ->
      check_int (what ^ ": damage offset") offset o;
      (match reason with
      | Some reason -> check_string (what ^ ": reason") reason r
      | None -> ())

let r1 = Wal.record_size txn1

let test_truncated_tail () =
  let fs, st = fresh_store () in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  let raw = Option.get (Io.read_fs fs Store.wal_file) in
  Io.write_fs fs Store.wal_file (String.sub raw 0 (String.length raw - 3));
  let st', report = reopen "truncated tail" fs in
  check_int "lsn" 1 (Store.lsn st');
  check_int "replayed" 1 report.Store.replayed;
  check_int "skipped" 0 report.Store.skipped;
  expect_recovered "truncated tail" ~offset:r1 ~reason:"truncated frame payload"
    report;
  check_state "truncated tail" st' (after [ txn1 ]);
  (* the damaged tail was cut: the log reads clean again *)
  let scan = Wal.scan (Io.mem fs) Store.wal_file in
  check "log clean after recovery" true (scan.Wal.truncated = None);
  check_int "log bytes" r1 scan.Wal.end_offset;
  (* and future appends extend the durable prefix *)
  let _ = get_apply "t2 again" (Store.apply st' txn2) in
  let st'', report = reopen "after re-append" fs in
  check "clean" true (report.Store.tail = Store.Clean);
  check_int "lsn" 2 (Store.lsn st'');
  check_state "after re-append" st'' (after [ txn1; txn2 ])

let test_torn_header () =
  let fs, st = fresh_store () in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  let raw = Option.get (Io.read_fs fs Store.wal_file) in
  Io.write_fs fs Store.wal_file (String.sub raw 0 (r1 + 5));
  let st', report = reopen "torn header" fs in
  check_int "lsn" 1 (Store.lsn st');
  expect_recovered "torn header" ~offset:r1 ~reason:"truncated frame header" report;
  check_state "torn header" st' (after [ txn1 ])

let test_torn_append () =
  (* the tear happens through the fault schedule this time: append of
     txn2 (mutating op 1) writes header_size + 2 bytes and dies *)
  let fs, st0 = fresh_store () in
  ignore st0;
  let faulty =
    Io.faulty ~faults:[ Io.Tear { op = 1; keep = Frame.header_size + 2 } ] (Io.mem fs)
  in
  let st, _ = get_store "open faulty" (Store.open_ faulty) in
  let _ = get_apply "t1" (Store.apply st txn1) in
  (match Store.apply st txn2 with
  | exception Io.Crash -> ()
  | Admission.Accepted _ -> Alcotest.fail "torn append was acknowledged"
  | Admission.Rejected _ -> Alcotest.fail "torn append was rejected, not crashed");
  let st', report = reopen "torn append" fs in
  check_int "lsn" 1 (Store.lsn st');
  expect_recovered "torn append" ~offset:r1 ~reason:"truncated frame payload" report;
  check_state "torn append" st' (after [ txn1 ])

let test_crc_flip () =
  (* silent single-bit corruption of the first record's payload: both
     appends are acknowledged, recovery keeps nothing (prefix ends at
     the flipped record) *)
  let fs, st0 = fresh_store () in
  ignore st0;
  let faulty =
    Io.faulty
      ~faults:[ Io.Flip { op = 0; byte = Frame.header_size + 3; bit = 5 } ]
      (Io.mem fs)
  in
  let st, _ = get_store "open faulty" (Store.open_ faulty) in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  let st', report = reopen "crc flip" fs in
  check_int "lsn" 0 (Store.lsn st');
  check_int "replayed" 0 report.Store.replayed;
  expect_recovered "crc flip" ~offset:0 ~reason:"crc mismatch" report;
  check_state "crc flip" st' WP.instance

let test_duplicate_tail () =
  (* crash between checkpoint-rename and log-reset: the new checkpoint
     already covers every logged record, so recovery skips them all *)
  let fs, st0 = fresh_store () in
  ignore st0;
  (* script ops: 0 append, 1 append, then full checkpoint = 2 tmp write,
     3 rename, 4 delta reset, 5 log reset; crash before the resets *)
  let faulty = Io.faulty ~faults:[ Io.Crash_at 4 ] (Io.mem fs) in
  let st, _ = get_store "open faulty" (Store.open_ faulty) in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  (match Store.checkpoint ~full:true st with
  | exception Io.Crash -> ()
  | () -> Alcotest.fail "checkpoint survived the scheduled crash");
  let st', report = reopen "duplicate tail" fs in
  check_int "lsn" 2 (Store.lsn st');
  check_int "checkpoint lsn" 2 report.Store.checkpoint_lsn;
  check_int "replayed" 0 report.Store.replayed;
  check_int "skipped" 2 report.Store.skipped;
  check "clean" true (report.Store.tail = Store.Clean);
  check_state "duplicate tail" st' (after [ txn1; txn2 ])

let test_lsn_gap () =
  let fs, st = fresh_store () in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  let _ = get_apply "t3" (Store.apply st txn3) in
  let raw = Option.get (Io.read_fs fs Store.wal_file) in
  let r2 = Wal.record_size txn2 in
  (* splice record 2 out: lsn 1 then lsn 3 *)
  Io.write_fs fs Store.wal_file
    (String.sub raw 0 r1
    ^ String.sub raw (r1 + r2) (String.length raw - r1 - r2));
  let st', report = reopen "lsn gap" fs in
  check_int "lsn" 1 (Store.lsn st');
  expect_recovered "lsn gap" ~offset:r1 ~reason:"lsn gap: expected 2, found 3"
    report;
  check_state "lsn gap" st' (after [ txn1 ])

let test_empty_log () =
  let fs, st0 = fresh_store () in
  ignore st0;
  (* zero-length log file *)
  let st', report = reopen "empty log" fs in
  check_int "lsn" 0 (Store.lsn st');
  check "clean" true (report.Store.tail = Store.Clean);
  check_int "replayed" 0 report.Store.replayed;
  check_state "empty log" st' WP.instance;
  (* log file missing entirely *)
  Io.remove_fs fs Store.wal_file;
  let st'', report = reopen "missing log" fs in
  check "clean" true (report.Store.tail = Store.Clean);
  check_state "missing log" st'' WP.instance

let test_checkpoint_empty_log () =
  let fs, st = fresh_store () in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  Store.checkpoint ~full:true st;
  check_int "wal reset" 0 (Store.wal_bytes st);
  let st', report = reopen "checkpoint + empty log" fs in
  check_int "checkpoint lsn" 2 report.Store.checkpoint_lsn;
  check_int "lsn" 2 (Store.lsn st');
  check_int "replayed" 0 report.Store.replayed;
  check_int "skipped" 0 report.Store.skipped;
  check "clean" true (report.Store.tail = Store.Clean);
  check_state "checkpoint + empty log" st' (after [ txn1; txn2 ]);
  (* stats survived the compaction *)
  check_int "applied carried" 2 (Store.stats st').Checkpoint.applied

(* --- delta checkpoints ----------------------------------------------------- *)

let test_delta_checkpoint () =
  let fs, st = fresh_store () in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  Store.checkpoint st;
  check_int "wal reset" 0 (Store.wal_bytes st);
  check_int "one segment" 1 (Store.delta_segments st);
  let _ = get_apply "t3" (Store.apply st txn3) in
  Store.checkpoint st;
  check_int "two segments" 2 (Store.delta_segments st);
  (* the base snapshot was not rewritten: still the lsn-0 image *)
  let meta =
    Result.get_ok (Checkpoint.read_meta (Io.mem fs) Store.checkpoint_file)
  in
  check_int "base lsn" 0 meta.Checkpoint.lsn;
  let st', report = reopen "delta reopen" fs in
  check_int "lsn" 3 (Store.lsn st');
  check_int "checkpoint lsn" 0 report.Store.checkpoint_lsn;
  check_int "delta segments" 2 report.Store.delta_segments;
  check_int "delta replayed" 3 report.Store.delta_replayed;
  check_int "wal replayed" 0 report.Store.replayed;
  check "delta clean" true (report.Store.delta_tail = Store.Clean);
  check "wal clean" true (report.Store.tail = Store.Clean);
  check_state "delta" st' (after [ txn1; txn2; txn3 ]);
  (* an empty log folds to nothing: no marker-only segments *)
  Store.checkpoint st';
  check_int "no empty segment" 2 (Store.delta_segments st')

let test_delta_collapse () =
  let fs = Io.fresh_fs () in
  let st =
    get_store "init"
      (Store.init ~delta_chain:2 (Io.mem fs) WP.schema WP.instance)
  in
  let _ = get_apply "t1" (Store.apply st txn1) in
  Store.checkpoint st;
  let _ = get_apply "t2" (Store.apply st txn2) in
  Store.checkpoint st;
  check_int "chain at threshold" 2 (Store.delta_segments st);
  let _ = get_apply "t3" (Store.apply st txn3) in
  Store.checkpoint st;
  (* chain was at the threshold: this one collapsed to a full snapshot *)
  check_int "collapsed" 0 (Store.delta_segments st);
  let meta =
    Result.get_ok (Checkpoint.read_meta (Io.mem fs) Store.checkpoint_file)
  in
  check_int "snapshot lsn" 3 meta.Checkpoint.lsn;
  check_int "applied persisted" 3 meta.Checkpoint.applied;
  let st', report = reopen "collapse reopen" fs in
  check_int "lsn" 3 (Store.lsn st');
  check_int "checkpoint lsn" 3 report.Store.checkpoint_lsn;
  check_int "delta segments" 0 report.Store.delta_segments;
  check "delta clean" true (report.Store.delta_tail = Store.Clean);
  check_state "collapse" st' (after [ txn1; txn2; txn3 ])

let test_delta_torn_segment () =
  (* a torn segment append: the chain truncates back to whole records,
     and the log — not yet reset when the crash hit — still holds every
     record of the segment *)
  let fs, st0 = fresh_store () in
  ignore st0;
  (* ops: 0 append, 1 append, 2 delta segment append, 3 log reset *)
  let faulty = Io.faulty ~faults:[ Io.Tear { op = 2; keep = 5 } ] (Io.mem fs) in
  let st, _ = get_store "open faulty" (Store.open_ faulty) in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  (match Store.checkpoint st with
  | exception Io.Crash -> ()
  | () -> Alcotest.fail "delta checkpoint survived the scheduled tear");
  let st', report = reopen "torn segment" fs in
  check_int "lsn" 2 (Store.lsn st');
  check_int "wal replayed" 2 report.Store.replayed;
  (match report.Store.delta_tail with
  | Store.Recovered_at { offset = 0; _ } -> ()
  | _ -> Alcotest.fail "delta tail was not truncated at byte 0");
  check_state "torn segment" st' (after [ txn1; txn2 ]);
  (* the next delta checkpoint extends the truncated chain cleanly *)
  Store.checkpoint st';
  check_int "segment after heal" 1 (Store.delta_segments st');
  let st'', report' = reopen "healed" fs in
  check_int "healed lsn" 2 (Store.lsn st'');
  check "healed delta clean" true (report'.Store.delta_tail = Store.Clean);
  check_int "healed delta replayed" 2 report'.Store.delta_replayed;
  check_state "healed" st'' (after [ txn1; txn2 ])

let test_delta_duplicate_log () =
  (* crash between the segment append and the log reset: delta chain and
     log hold the same lsns; replay applies them once and skips the
     duplicates *)
  let fs, st0 = fresh_store () in
  ignore st0;
  let faulty = Io.faulty ~faults:[ Io.Crash_at 3 ] (Io.mem fs) in
  let st, _ = get_store "open faulty" (Store.open_ faulty) in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  (match Store.checkpoint st with
  | exception Io.Crash -> ()
  | () -> Alcotest.fail "delta checkpoint survived the scheduled crash");
  let st', report = reopen "duplicate log" fs in
  check_int "lsn" 2 (Store.lsn st');
  check_int "delta segments" 1 report.Store.delta_segments;
  check_int "delta replayed" 2 report.Store.delta_replayed;
  check_int "log duplicates skipped" 2 report.Store.skipped;
  check "delta clean" true (report.Store.delta_tail = Store.Clean);
  check "wal clean" true (report.Store.tail = Store.Clean);
  check_state "duplicate log" st' (after [ txn1; txn2 ])

let test_auto_checkpoint () =
  let fs = Io.fresh_fs () in
  let st =
    get_store "init"
      (Store.init ~auto_checkpoint:2 (Io.mem fs) WP.schema WP.instance)
  in
  let _ = get_apply "t1" (Store.apply st txn1) in
  check_int "one record pending" 1 (Store.wal_records st);
  let _ = get_apply "t2" (Store.apply st txn2) in
  (* second record crossed the threshold: compacted into a delta segment *)
  check_int "log reset" 0 (Store.wal_records st);
  check_int "delta segment" 1 (Store.delta_segments st);
  let st', report = reopen "auto checkpoint" fs in
  check_int "lsn" 2 (Store.lsn st');
  check "clean" true (report.Store.tail = Store.Clean);
  check_int "delta segments recovered" 1 report.Store.delta_segments;
  check_int "delta replayed" 2 report.Store.delta_replayed;
  check_state "auto checkpoint" st' (after [ txn1; txn2 ])

let test_init_guards () =
  let fs, st0 = fresh_store () in
  ignore st0;
  (match Store.init (Io.mem fs) WP.schema WP.instance with
  | Error Store.Already_a_store -> ()
  | _ -> Alcotest.fail "re-init did not refuse");
  match Store.open_ (Io.mem (Io.fresh_fs ())) with
  | Error (Store.Not_a_store _) -> ()
  | _ -> Alcotest.fail "open of nothing did not say Not_a_store"

(* --- crash-point property -------------------------------------------------- *)

(* One scripted session: some transactions, an O(Δ) delta checkpoint in
   the middle, more transactions, and a full (collapse) checkpoint at
   the end — so the crash points cover every intermediate state of both
   compaction sequences (segment-append + log-reset, and
   snapshot-rewrite + delta-reset + log-reset with a non-empty chain).
   [run] drives it against any handle, counting the transactions
   acknowledged before a crash (if any). *)
type script = {
  schema : Schema.t;
  seed_inst : Instance.t;
  txns : Update.op list list;  (* every one accepted in the clean run *)
  ckpt_after : int;  (* delta checkpoint once this many txns are in *)
  ckpt_full_after : int;  (* full checkpoint once this many txns are in *)
  states : Instance.t array;  (* states.(k) = seed + first k txns *)
}

let run_script script io =
  match Store.open_ io with
  | Error e -> Alcotest.failf "script open: %s" (Store.error_to_string e)
  | Ok (st, _) ->
      let acked = ref 0 in
      (try
         List.iteri
           (fun i txn ->
             (match Store.apply st txn with
             | Admission.Accepted _ -> incr acked
             | Admission.Rejected { reason; _ } ->
                 Alcotest.failf "script txn %d rejected: %s" i
                   (Format.asprintf "%a" Monitor.pp_rejection reason));
             if i + 1 = script.ckpt_after then Store.checkpoint st;
             if i + 1 = script.ckpt_full_after then
               Store.checkpoint ~full:true st)
           script.txns
       with Io.Crash -> ());
      !acked

(* Build a deterministic script on a prepared base fs.  Transactions are
   generated against the evolving instance and filtered to the accepted
   ones, so the script itself is replayable. *)
let make_script seed =
  let units = 1 + (seed mod 2) in
  let inst0 = WP.generate ~seed ~units ~persons_per_unit:1 () in
  let fs = Io.fresh_fs () in
  let st = get_store "script init" (Store.init (Io.mem fs) WP.schema inst0) in
  let counter = ref 10_000 in
  let n_txns = 3 + (seed mod 2) in
  let txns = ref [] and states = ref [ inst0 ] in
  for i = 0 to n_txns - 1 do
    let cur = Directory.instance (Store.directory st) in
    let txn =
      Gen.random_ops ~counter ~seed:(seed + (31 * i)) ~n:(1 + (i mod 2))
        WP.schema cur
    in
    match Store.apply st txn with
    | Admission.Accepted _ ->
        txns := txn :: !txns;
        states := Directory.instance (Store.directory st) :: !states
    | Admission.Rejected _ -> () (* rejected: not part of the script *)
  done;
  let txns = List.rev !txns in
  ( {
      schema = WP.schema;
      seed_inst = inst0;
      txns;
      ckpt_after = (List.length txns + 1) / 2;
      ckpt_full_after = List.length txns;
      states = Array.of_list (List.rev !states);
    },
    inst0 )

(* All mutating operations of a clean scripted run, with payload sizes:
   the universe of crash points. *)
let trace_script script base =
  let fs = Io.copy_fs base in
  let io, trace = Io.counting (Io.mem fs) in
  let acked = run_script script io in
  check_int "clean run acks everything" (List.length script.txns) acked;
  trace ()

let obligation_queries schema =
  List.map (fun (_, q, _) -> q) (Translate.all schema.Schema.structure)

let check_recovery ~what script fs acked =
  (* the checked replay path (full admission per record) must reproduce
     the same acknowledged prefix as the trusted default below, on a
     copy of the same on-disk state *)
  (match Store.open_ ~trusted:false (Io.mem (Io.copy_fs fs)) with
  | Error e ->
      Alcotest.failf "%s: checked recovery failed: %s" what
        (Store.error_to_string e)
  | Ok (st_c, _) ->
      if Store.lsn st_c <> acked then
        Alcotest.failf "%s: checked recovery lsn %d, %d acknowledged" what
          (Store.lsn st_c) acked;
      if
        not
          (Instance.equal
             (Directory.instance (Store.directory st_c))
             script.states.(acked))
      then
        Alcotest.failf "%s: checked recovery differs from acknowledged prefix"
          what);
  match Store.open_ (Io.mem fs) with
  | Error e ->
      Alcotest.failf "%s: recovery failed: %s" what (Store.error_to_string e)
  | Ok (st, report) ->
      let d = Store.directory st in
      if Store.lsn st <> acked then
        Alcotest.failf "%s: recovered lsn %d, %d acknowledged (report: %s)" what
          (Store.lsn st) acked
          (Format.asprintf "%a" Store.pp_report report);
      let expected = script.states.(acked) in
      if not (Instance.equal (Directory.instance d) expected) then
        Alcotest.failf "%s: recovered instance differs from acknowledged prefix"
          what;
      (match Directory.validate d with
      | [] -> ()
      | vs -> Alcotest.failf "%s: recovered directory illegal (%d)" what (List.length vs));
      (* obligation answers match a fresh snapshot of the same state *)
      let snap = Directory.Snapshot.of_instance expected in
      List.iter
        (fun q ->
          if Directory.query_ids d q <> Directory.Snapshot.query_ids snap q then
            Alcotest.failf "%s: query answers differ after recovery" what)
        (obligation_queries script.schema);
      (* the session must remain usable: append the next scripted txn *)
      match List.nth_opt script.txns acked with
      | None -> ()
      | Some txn -> (
          match Store.apply st txn with
          | Admission.Rejected { reason; _ } ->
              Alcotest.failf "%s: resume txn rejected: %s" what
                (Format.asprintf "%a" Monitor.pp_rejection reason)
          | Admission.Accepted _ ->
              if
                not
                  (Instance.equal
                     (Directory.instance (Store.directory st))
                     script.states.(acked + 1))
              then Alcotest.failf "%s: resumed state differs" what)

let crash_points trace =
  List.concat_map
    (fun (op, size) ->
      let tears =
        if size = 0 then []
        else if size <= 256 then
          (* every intra-record byte boundary of a log record *)
          List.init size (fun keep -> Io.Tear { op; keep })
        else
          (* large payloads (checkpoint images): sample the edges *)
          [ Io.Tear { op; keep = 1 }; Io.Tear { op; keep = size / 2 };
            Io.Tear { op; keep = size - 1 } ]
      in
      Io.Crash_at op :: tears)
    trace

let prop_crash_recovery =
  QCheck.Test.make ~name:"recovery = acknowledged prefix, at every crash point"
    ~count:6
    QCheck.(make Gen.(int_bound 10_000))
    (fun seed ->
      (* base: an initialized store on an in-memory fs *)
      let script, inst0 = make_script seed in
      let base = Io.fresh_fs () in
      let _ =
        get_store "base init" (Store.init (Io.mem base) script.schema inst0)
      in
      let trace = trace_script script base in
      List.iter
        (fun fault ->
          let what =
            match fault with
            | Io.Crash_at op -> Printf.sprintf "seed %d: crash at op %d" seed op
            | Io.Tear { op; keep } ->
                Printf.sprintf "seed %d: tear op %d at byte %d" seed op keep
            | Io.Flip _ -> assert false
          in
          let fs = Io.copy_fs base in
          let acked = run_script script (Io.faulty ~faults:[ fault ] (Io.mem fs)) in
          check_recovery ~what script fs acked)
        (crash_points trace);
      true)

(* Interning is stable across durability: recovery decodes the very
   strings the log and checkpoint encoded, [Intern.share] finds the
   existing pool slots, so every live string resolves to the same id as
   before the crash, every recovered attribute and string value is
   physically the canonical copy ([==], not just [=]), and a second
   recovery of the same bytes mints no new ids at all (the pools are at
   a fixed point). *)
let prop_intern_stable_across_recovery =
  QCheck.Test.make ~name:"intern ids stable across checkpoint/recover"
    ~count:30
    QCheck.(make ~print:(Printf.sprintf "seed=%d") Gen.(int_bound 10_000))
    (fun seed ->
      let script, _ = make_script seed in
      let fs = Io.fresh_fs () in
      let st =
        get_store "intern init"
          (Store.init (Io.mem fs) script.schema script.seed_inst)
      in
      List.iteri
        (fun i txn ->
          ignore (get_apply "intern txn" (Store.apply st txn));
          if i + 1 = script.ckpt_after then Store.checkpoint st)
        script.txns;
      Store.close st;
      (* the id every attribute and string value resolves to pre-recovery *)
      let witness inst =
        Instance.fold
          (fun e acc ->
            List.fold_left
              (fun acc (at, v) ->
                let s = Attr.to_string at in
                let acc = (s, Intern.find_id Intern.attr s) :: acc in
                match v with
                | Value.String p | Value.Dn p ->
                    (p, Intern.find_id Intern.value p) :: acc
                | Value.Int _ | Value.Bool _ -> acc)
              acc (Entry.stored_pairs e))
          inst []
      in
      let final = script.states.(List.length script.txns) in
      let before = witness final in
      if List.exists (fun (_, i) -> i = None) before then
        QCheck.Test.fail_report "live strings missing from the pools";
      let st', _ = get_store "intern reopen" (Store.open_ (Io.mem fs)) in
      let recovered = Directory.instance (Store.directory st') in
      let canonical =
        Instance.fold
          (fun e ok ->
            ok
            && List.for_all
                 (fun (at, v) ->
                   let s = Attr.to_string at in
                   Intern.share Intern.attr s == s
                   &&
                   match v with
                   | Value.String p | Value.Dn p ->
                       Intern.share Intern.value p == p
                   | Value.Int _ | Value.Bool _ -> true)
                 (Entry.stored_pairs e))
          recovered true
      in
      let after_ids = witness recovered in
      Store.close st';
      let sizes () = List.map (fun s -> s.Intern.distinct) (Intern.stats ()) in
      let s0 = sizes () in
      let st'', _ =
        get_store "intern reopen2" (Store.open_ (Io.mem (Io.copy_fs fs)))
      in
      let s1 = sizes () in
      Store.close st'';
      canonical
      && List.sort compare before = List.sort compare after_ids
      && s0 = s1)

(* --- trusted replay and bulk ingest ---------------------------------------- *)

let test_ingest_modes () =
  (* the same three-record tail recovered through each batching regime of
     the trusted path lands on the same state as checked replay *)
  List.iter
    (fun (label, ingest) ->
      let fs, st = fresh_store () in
      let _ = get_apply "t1" (Store.apply st txn1) in
      let _ = get_apply "t2" (Store.apply st txn2) in
      let _ = get_apply "t3" (Store.apply st txn3) in
      let st', report =
        get_store label (Store.open_ ~trusted:true ~ingest (Io.mem fs))
      in
      check (label ^ ": clean") true (report.Store.tail = Store.Clean);
      check_int (label ^ ": lsn") 3 (Store.lsn st');
      check_int (label ^ ": replayed") 3 report.Store.replayed;
      check_state label st' (after [ txn1; txn2; txn3 ]);
      (* the recovered session stays writable through the normal path *)
      let txn4 = ins 103 "wal4" in
      let _ = get_apply (label ^ ": t4") (Store.apply st' txn4) in
      check_state (label ^ ": after append") st'
        (after [ txn1; txn2; txn3; txn4 ]))
    [ ("batch", `Batch); ("incremental", `Incremental); ("auto", `Auto) ]

let orgunit_entry ~id ~ou =
  Entry.make ~id ~rdn:("ou=" ^ ou)
    ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
    [ (a "ou", Value.String ou) ]

let test_bulk_load () =
  let fs, st = fresh_store () in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let feed entries add =
    List.fold_left
      (fun acc (parent, e) ->
        match acc with Error _ as err -> err | Ok () -> add ~parent e)
      (Ok ()) entries
  in
  (* a lab with two people: passes the single final admission check *)
  let good =
    [
      (Some 0, orgunit_entry ~id:300 ~ou:"newlab");
      (Some 300, person ~id:301 ~uid:"bulk1");
      (Some 300, person ~id:302 ~uid:"bulk2");
    ]
  in
  (match Store.load st (feed good) with
  | Error e -> Alcotest.failf "load: %s" (Store.error_to_string e)
  | Ok n -> check_int "entries loaded" 3 n);
  let expected =
    after
      (txn1
      :: List.map
           (fun (parent, entry) -> [ Update.Insert { parent; entry } ])
           good)
  in
  check_state "after load" st expected;
  (* the load committed by checkpoint replace + log reset *)
  check_int "log reset" 0 (Store.wal_records st);
  let st', report = reopen "after load" fs in
  check "clean" true (report.Store.tail = Store.Clean);
  check_int "replayed" 0 report.Store.replayed;
  check_state "reopened after load" st' expected;
  (* an orgunit with no person descendant fails the admission check;
     nothing is committed *)
  let ghost = [ (Some 0, orgunit_entry ~id:400 ~ou:"ghost") ] in
  (match Store.load st' (feed ghost) with
  | Error (Store.Illegal _) -> ()
  | Ok _ -> Alcotest.fail "illegal load was committed"
  | Error e ->
      Alcotest.failf "unexpected load error: %s" (Store.error_to_string e));
  check_state "unchanged after rejected load" st' expected;
  (* ... unless the caller takes responsibility with [trust], which
     commits the dump and voids the legality invariant *)
  (match Store.load ~trust:true st' (feed ghost) with
  | Error e -> Alcotest.failf "trusted load: %s" (Store.error_to_string e)
  | Ok n -> check_int "trusted entries" 1 n);
  check "trusted load voided the invariant" false
    (Directory.validate (Store.directory st') = [])

(* --- real files ------------------------------------------------------------ *)

let test_real_io () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "bounds-store-test" in
  (* stale state from a previous run must not fail init *)
  if Sys.file_exists root then
    Array.iter
      (fun f -> Sys.remove (Filename.concat root f))
      (Sys.readdir root);
  let io = Io.real ~root () in
  let st = get_store "init" (Store.init io WP.schema WP.instance) in
  let _ = get_apply "t1" (Store.apply st txn1) in
  let _ = get_apply "t2" (Store.apply st txn2) in
  Store.close st;
  let st', report = get_store "reopen" (Store.open_ (Io.real ~root ())) in
  check "clean" true (report.Store.tail = Store.Clean);
  check_int "lsn" 2 (Store.lsn st');
  check_state "real io" st' (after [ txn1; txn2 ]);
  Store.close st'

let () =
  Alcotest.run "store"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn and flipped" `Quick test_frame_torn;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "total on damage" `Quick test_codec_total;
        ] );
      ( "faults",
        [
          Alcotest.test_case "truncated tail" `Quick test_truncated_tail;
          Alcotest.test_case "torn header" `Quick test_torn_header;
          Alcotest.test_case "torn append" `Quick test_torn_append;
          Alcotest.test_case "crc flip" `Quick test_crc_flip;
          Alcotest.test_case "duplicate tail" `Quick test_duplicate_tail;
          Alcotest.test_case "lsn gap" `Quick test_lsn_gap;
          Alcotest.test_case "empty log" `Quick test_empty_log;
          Alcotest.test_case "checkpoint + empty log" `Quick
            test_checkpoint_empty_log;
          Alcotest.test_case "delta checkpoint" `Quick test_delta_checkpoint;
          Alcotest.test_case "delta collapse" `Quick test_delta_collapse;
          Alcotest.test_case "delta torn segment" `Quick
            test_delta_torn_segment;
          Alcotest.test_case "delta duplicate log" `Quick
            test_delta_duplicate_log;
          Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
          Alcotest.test_case "init guards" `Quick test_init_guards;
        ] );
      ( "ingest",
        [
          Alcotest.test_case "ingest modes" `Quick test_ingest_modes;
          Alcotest.test_case "bulk load" `Quick test_bulk_load;
        ] );
      ( "recovery",
        [
          QCheck_alcotest.to_alcotest prop_crash_recovery;
          QCheck_alcotest.to_alcotest prop_intern_stable_across_recovery;
          Alcotest.test_case "real files" `Quick test_real_io;
        ] );
    ]
