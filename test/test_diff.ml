(* Differential-fuzzing harness tests: the persisted regression corpus
   replays green, a bounded smoke fuzz over every oracle finds nothing,
   and the case codec / shrinker building blocks behave. *)

open Bounds_model
open Bounds_query
module Sexp = Bounds_diff.Sexp
module Case = Bounds_diff.Case
module Shrink = Bounds_diff.Shrink
module Oracle = Bounds_diff.Oracle
module Fuzz = Bounds_diff.Fuzz

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- regression corpus ----------------------------------------------- *)

(* dune runtest runs in _build/default/test with the corpus declared as
   deps; `dune exec test/test_diff.exe` runs from the project root. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let test_corpus_replays_green () =
  match Fuzz.load_corpus ~dir:corpus_dir with
  | Error m -> Alcotest.failf "corpus load: %s" m
  | Ok cases ->
      check "corpus is not empty" true (List.length cases >= 4);
      List.iter
        (fun (file, case) ->
          match Fuzz.replay case with
          | Ok Oracle.Agree -> ()
          | Ok (Oracle.Disagree m) -> Alcotest.failf "%s: regressed: %s" file m
          | Error m -> Alcotest.failf "%s: %s" file m)
        cases

let test_corpus_covers_the_fixed_bugs () =
  match Fuzz.load_corpus ~dir:corpus_dir with
  | Error m -> Alcotest.failf "corpus load: %s" m
  | Ok cases ->
      let oracles =
        List.sort_uniq String.compare
          (List.map (fun (_, c) -> c.Case.oracle) cases)
      in
      List.iter
        (fun o -> check (o ^ " case present") true (List.mem o oracles))
        [ "b64-strict"; "filter-text"; "ldif-roundtrip"; "query-roundtrip" ]

(* --- smoke fuzz ------------------------------------------------------ *)

let test_smoke_all_oracles_agree () =
  match Fuzz.run ~budget:60 ~seed:42 () with
  | Error m -> Alcotest.fail m
  | Ok reports ->
      check_int "all oracles ran" (List.length Oracle.all) (List.length reports);
      List.iter
        (fun (r : Fuzz.report) ->
          check_int (r.oracle ^ " clean") 0 (List.length r.failures))
        reports

let test_generation_is_deterministic () =
  (* same (oracle, seed, index) → same case, regardless of call order *)
  let o = List.hd Oracle.all in
  let gen i =
    o.Oracle.generate ~seed:i
      (Random.State.make [| 42; Hashtbl.hash o.Oracle.name; i |])
  in
  let a = List.init 5 gen in
  (* generate again in the opposite call order: results must not depend
     on scheduling, only on (oracle, seed, index) *)
  let b = List.rev (List.map gen [ 4; 3; 2; 1; 0 ]) in
  List.iter2 (fun x y -> check "same case" true (Case.equal x y)) a b

(* --- sexp ------------------------------------------------------------ *)

let test_sexp_round_trip () =
  let torture =
    Sexp.List
      [
        Sexp.Atom "plain";
        Sexp.Atom "needs quoting: spaces";
        Sexp.Atom "esc\n\t\"\\\127";
        Sexp.Atom "";
        Sexp.List [ Sexp.Atom "nested"; Sexp.List [] ];
      ]
  in
  match Sexp.parse (Sexp.to_string torture) with
  | Error m -> Alcotest.failf "reparse: %s" m
  | Ok s -> check "sexp round-trips" true (s = torture)

let test_sexp_rejects_trailing () =
  check "trailing input rejected" true
    (match Sexp.parse "(a b) junk" with Error _ -> true | Ok _ -> false)

(* --- case codec ------------------------------------------------------ *)

let attr = Attr.of_string
let oc s = Oclass.Set.of_list [ Oclass.of_string s ]

let sample_instance () =
  let e0 = Entry.make ~id:0 ~rdn:"o=acme" ~classes:(oc "top") [] in
  let e1 =
    Entry.make ~id:1 ~rdn:"cn=a b" ~classes:(oc "person")
      [ (attr "cn", Value.s "a b"); (attr "age", Value.i 3) ]
  in
  let inst = Result.get_ok (Instance.add ~parent:None e0 Instance.empty) in
  Result.get_ok (Instance.add ~parent:(Some 0) e1 inst)

let test_case_round_trip () =
  let inst = sample_instance () in
  let ops =
    [
      Bounds_core.Update.Insert
        {
          parent = Some 1;
          entry = Entry.make ~id:2 ~classes:(oc "person") [ (attr "cn", Value.s "x") ];
        };
      Bounds_core.Update.Delete 2;
    ]
  in
  let filter =
    Filter.And
      [
        Filter.Substr
          (attr "cn", { initial = Some "a*"; any = [ "(" ]; final = None });
        Filter.Not (Filter.Present (attr "age"));
      ]
  in
  let query = Query.Minus (Query.Select filter, Query.Select (Filter.Eq (attr "cn", "\n"))) in
  let case =
    Case.make ~oracle:"unit-test" ~seed:7 ~instance:inst ~ops ~query ~filter
      ~text:"raw \x00 bytes\n" ()
  in
  match Case.of_string (Case.to_string case) with
  | Error m -> Alcotest.failf "decode: %s" m
  | Ok case' ->
      check "case round-trips" true (Case.equal case case');
      (* faithfulness: the hostile filter survived structurally *)
      check "filter intact" true
        (match case'.Case.filter with
        | Some f -> Filter.equal f filter
        | None -> false)

let test_case_codec_is_structural () =
  (* A value with a trailing space — precisely what the pre-fix LDIF
     printer lost — must survive the corpus codec. *)
  let e =
    Entry.make ~id:0 ~classes:(oc "top") [ (attr "cn", Value.s "0 ") ]
  in
  let inst = Result.get_ok (Instance.add ~parent:None e Instance.empty) in
  let case = Case.make ~oracle:"unit-test" ~instance:inst () in
  match Case.of_string (Case.to_string case) with
  | Error m -> Alcotest.failf "decode: %s" m
  | Ok case' ->
      let e' =
        match case'.Case.instance with
        | Some i -> Instance.entry i 0
        | None -> Alcotest.fail "instance lost"
      in
      check "trailing space survives" true
        (Entry.values e' (attr "cn") = [ Value.s "0 " ])

(* --- shrinker -------------------------------------------------------- *)

let test_shrink_text () =
  let case =
    Case.make ~oracle:"unit-test" ~text:"aaaaaaaaaaaaaaaaaaaaXaaaaaaaaaaa" ()
  in
  let still_fails c =
    match c.Case.text with Some t -> String.contains t 'X' | None -> false
  in
  let min = Shrink.minimize ~still_fails case in
  check_str "text shrinks to the witness" "X" (Option.get min.Case.text)

let test_shrink_filter_never_degenerate () =
  (* Shrinking a Substr must not fabricate the unprintable all-empty
     pattern: the minimum for "mentions attribute b" is Present b. *)
  let case =
    Case.make ~oracle:"unit-test"
      ~filter:
        (Filter.Or
           [
             Filter.Substr
               (attr "b", { initial = Some "u"; any = [ "v" ]; final = Some "w" });
             Filter.Eq (attr "c", "long value here");
           ])
      ()
  in
  let rec mentions_b = function
    | Filter.Present a | Filter.Eq (a, _) | Filter.Ge (a, _) | Filter.Le (a, _)
    | Filter.Substr (a, _) ->
        Attr.equal a (attr "b")
    | Filter.And fs | Filter.Or fs -> List.exists mentions_b fs
    | Filter.Not f -> mentions_b f
  in
  let still_fails c =
    match c.Case.filter with Some f -> mentions_b f | None -> false
  in
  let min = Shrink.minimize ~still_fails case in
  check "shrinks to presence" true
    (match min.Case.filter with
    | Some (Filter.Present a) -> Attr.equal a (attr "b")
    | _ -> false)

let test_shrink_instance () =
  (* minimal witness for "some entry has attribute age": the shrinker
     drops subtrees but never reparents, so the witness keeps its root —
     two entries, and the witness entry loses its other pair *)
  let inst = sample_instance () in
  let case = Case.make ~oracle:"unit-test" ~instance:inst () in
  let still_fails c =
    match c.Case.instance with
    | Some i ->
        let found = ref false in
        Instance.iter_preorder
          (fun ~depth:_ e -> if Entry.values e (attr "age") <> [] then found := true)
          i;
        !found
    | None -> false
  in
  let min = Shrink.minimize ~still_fails case in
  match min.Case.instance with
  | Some i ->
      check_int "root + witness only" 2 (Instance.size i);
      check_int "witness keeps just age" 1
        (List.length (Entry.stored_pairs (Instance.entry i 1)))
  | None -> Alcotest.fail "instance lost"

let () =
  Alcotest.run "diff"
    [
      ( "corpus",
        [
          Alcotest.test_case "replays green" `Quick test_corpus_replays_green;
          Alcotest.test_case "covers fixed bugs" `Quick test_corpus_covers_the_fixed_bugs;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "smoke: all oracles agree" `Quick test_smoke_all_oracles_agree;
          Alcotest.test_case "deterministic generation" `Quick test_generation_is_deterministic;
        ] );
      ( "sexp",
        [
          Alcotest.test_case "round-trip" `Quick test_sexp_round_trip;
          Alcotest.test_case "trailing input" `Quick test_sexp_rejects_trailing;
        ] );
      ( "case",
        [
          Alcotest.test_case "round-trip" `Quick test_case_round_trip;
          Alcotest.test_case "structural codec" `Quick test_case_codec_is_structural;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "text" `Quick test_shrink_text;
          Alcotest.test_case "no degenerate substr" `Quick test_shrink_filter_never_degenerate;
          Alcotest.test_case "instance" `Quick test_shrink_instance;
        ] );
    ]
