(* Unit tests for the directory data model (Definition 2.1). *)

open Bounds_model

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Attr / Oclass ---------------------------------------------------- *)

let test_attr_normalization () =
  check_str "lowercased" "mail" (Attr.to_string (Attr.of_string "MAIL"));
  check_str "trimmed" "cn" (Attr.to_string (Attr.of_string "  cn  "));
  check "equal ignoring case" true (Attr.equal (Attr.of_string "Mail") (Attr.of_string "maiL"));
  check "objectclass constant" true
    (Attr.equal Attr.object_class (Attr.of_string "objectClass"))

let test_attr_invalid () =
  check "empty rejected" true (Attr.of_string_opt "" = None);
  check "space rejected" true (Attr.of_string_opt "a b" = None);
  check "paren rejected" true (Attr.of_string_opt "a(b)" = None);
  Alcotest.check_raises "of_string raises"
    (Invalid_argument "Attr.of_string: invalid attribute name \"a b\"") (fun () ->
      ignore (Attr.of_string "a b"))

let test_oclass () =
  check_str "lowercased" "person" (Oclass.to_string (Oclass.of_string "Person"));
  check "top" true (Oclass.equal Oclass.top (Oclass.of_string "TOP"));
  check "invalid" true (Oclass.of_string_opt "a b" = None);
  check "underscore ok" true (Oclass.of_string_opt "a_b" <> None)

(* --- Intern ----------------------------------------------------------- *)

let test_intern_sharing () =
  (* two independent parses of the same name share one heap block; the
     copies start distinct, so [==] really observes the pool *)
  let raw1 = String.lowercase_ascii "MAIL" and raw2 = String.sub "mailx" 0 4 in
  check "copies distinct" false (raw1 == raw2);
  let a = Attr.to_string (Attr.of_string raw1)
  and b = Attr.to_string (Attr.of_string raw2) in
  check "attr canonical" true (a == b);
  (match (Value.intern (Value.String (String.sub "Parisx" 0 5)),
          Value.intern (Value.String (String.sub "xParis" 1 5)))
   with
  | Value.String x, Value.String y -> check "value canonical" true (x == y)
  | _ -> Alcotest.fail "intern changed the constructor");
  check "int passes through" true (Value.intern (Value.Int 3) = Value.Int 3);
  (* disabled: share is the identity, existing canonicals untouched *)
  let fresh = String.sub "mailz" 0 4 in
  Intern.with_disabled (fun () ->
      check "disabled share = identity" true (Intern.share Intern.attr fresh == fresh));
  check "canonical survives disable" true (Intern.share Intern.attr fresh == a)

(* --- Value / Atype / Typing ------------------------------------------- *)

let test_value_typing () =
  check "string in string" true (Value.has_type Atype.T_string (Value.String "x"));
  check "int not in string" false (Value.has_type Atype.T_string (Value.Int 3));
  check "int" true (Value.has_type Atype.T_int (Value.Int 3));
  check "bool" true (Value.has_type Atype.T_bool (Value.Bool false));
  check "dn" true (Value.has_type Atype.T_dn (Value.Dn "o=att"));
  check "telephone ok" true
    (Value.has_type Atype.T_telephone (Value.String "+1 (973) 360-8777"));
  check "telephone bad" false (Value.has_type Atype.T_telephone (Value.String "call me"));
  check "telephone empty bad" false (Value.has_type Atype.T_telephone (Value.String ""))

let test_value_parse () =
  let ok ty s v =
    match Value.parse ty s with
    | Ok v' -> check "parse ok" true (Value.equal v v')
    | Error m -> Alcotest.failf "parse %s failed: %s" s m
  in
  ok Atype.T_int "42" (Value.Int 42);
  ok Atype.T_int " -7 " (Value.Int (-7));
  ok Atype.T_bool "TRUE" (Value.Bool true);
  ok Atype.T_bool "false" (Value.Bool false);
  ok Atype.T_string "hello world" (Value.String "hello world");
  check "bad int" true (Result.is_error (Value.parse Atype.T_int "x"));
  check "bad bool" true (Result.is_error (Value.parse Atype.T_bool "yes"))

let test_value_roundtrip () =
  List.iter
    (fun (ty, v) ->
      match Value.parse ty (Value.to_string v) with
      | Ok v' -> check "roundtrip" true (Value.equal v v')
      | Error m -> Alcotest.fail m)
    [
      (Atype.T_int, Value.Int 123);
      (Atype.T_bool, Value.Bool true);
      (Atype.T_string, Value.String "abc def");
      (Atype.T_dn, Value.Dn "uid=x,o=y");
    ]

let test_typing_registry () =
  let t = Typing.default in
  check "default string" true (Typing.find t (Attr.of_string "anything") = Atype.T_string);
  check "objectclass declared" true (Typing.is_declared t Attr.object_class);
  let t = Typing.declare_exn (Attr.of_string "age") Atype.T_int t in
  check "declared int" true (Typing.find t (Attr.of_string "AGE") = Atype.T_int);
  check "same redeclare ok" true
    (Result.is_ok (Typing.declare (Attr.of_string "age") Atype.T_int t));
  check "conflicting redeclare" true
    (Result.is_error (Typing.declare (Attr.of_string "age") Atype.T_bool t))

(* --- Entry ------------------------------------------------------------- *)

let person = Oclass.of_string "person"
let top = Oclass.top
let name = Attr.of_string "name"
let mail = Attr.of_string "mail"

let mk_entry ?(id = 1) () =
  Entry.make ~id ~rdn:"uid=laks"
    ~classes:(Oclass.Set.of_list [ person; top ])
    [ (name, Value.String "laks"); (mail, Value.String "a@b"); (mail, Value.String "c@d") ]

let test_entry_basics () =
  let e = mk_entry () in
  check_int "id" 1 (Entry.id e);
  check_str "rdn" "uid=laks" (Entry.rdn e);
  check "class" true (Entry.has_class e person);
  check "no class" false (Entry.has_class e (Oclass.of_string "router"));
  check_int "mail values" 2 (List.length (Entry.values e mail));
  check_int "classes" 2 (Entry.n_classes e)

let test_entry_object_class_synthesized () =
  let e = mk_entry () in
  let ocs = Entry.values e Attr.object_class in
  check_int "two synthesized values" 2 (List.length ocs);
  check "person among them" true
    (List.exists (fun v -> Value.to_string v = "person") ocs);
  check "pair check" true (Entry.has_pair e Attr.object_class (Value.String "top"));
  (* |val(e)| counts objectClass pairs: 2 classes + name + 2 mails *)
  check_int "n_pairs" 5 (Entry.n_pairs e)

let test_entry_rejects_object_class_writes () =
  Alcotest.check_raises "make rejects"
    (Invalid_argument "Entry: the objectClass attribute is derived from the class set")
    (fun () ->
      ignore
        (Entry.make ~id:0
           ~classes:(Oclass.Set.singleton top)
           [ (Attr.object_class, Value.String "person") ]));
  let e = mk_entry () in
  Alcotest.check_raises "add_value rejects"
    (Invalid_argument "Entry: the objectClass attribute is derived from the class set")
    (fun () -> ignore (Entry.add_value Attr.object_class (Value.String "x") e))

let test_entry_set_semantics () =
  let e = mk_entry () in
  let e = Entry.add_value mail (Value.String "a@b") e in
  check_int "duplicate collapsed" 2 (List.length (Entry.values e mail));
  let e = Entry.remove_value mail (Value.String "a@b") e in
  check_int "removed" 1 (List.length (Entry.values e mail));
  let e = Entry.remove_value mail (Value.String "c@d") e in
  check "attribute gone" false (Entry.has_attr e mail)

let test_entry_empty_classes_rejected () =
  Alcotest.check_raises "empty classes"
    (Invalid_argument "Entry.make: an entry must belong to at least one object class")
    (fun () -> ignore (Entry.make ~id:0 ~classes:Oclass.Set.empty []))

(* --- Instance ----------------------------------------------------------- *)

let simple_entry id =
  Entry.make ~id ~rdn:(Printf.sprintf "id=%d" id) ~classes:(Oclass.Set.singleton top) []

(* 0 -> (1 -> 3, 4), (2); 5 is a second root *)
let sample () =
  Instance.empty
  |> Instance.add_root_exn (simple_entry 0)
  |> Instance.add_child_exn ~parent:0 (simple_entry 1)
  |> Instance.add_child_exn ~parent:0 (simple_entry 2)
  |> Instance.add_child_exn ~parent:1 (simple_entry 3)
  |> Instance.add_child_exn ~parent:1 (simple_entry 4)
  |> Instance.add_root_exn (simple_entry 5)

let test_instance_shape () =
  let t = sample () in
  check_int "size" 6 (Instance.size t);
  Alcotest.(check (list int)) "roots" [ 0; 5 ] (Instance.roots t);
  Alcotest.(check (list int)) "children of 0" [ 1; 2 ] (Instance.children t 0);
  Alcotest.(check (list int)) "children of 1" [ 3; 4 ] (Instance.children t 1);
  check "parent of 3" true (Instance.parent t 3 = Some 1);
  check "parent of root" true (Instance.parent t 0 = None);
  check "leaf" true (Instance.is_leaf t 4);
  check "not leaf" false (Instance.is_leaf t 1);
  check_int "depth of 3" 2 (Instance.depth t 3);
  Alcotest.(check (list int)) "ancestors of 3" [ 1; 0 ] (Instance.ancestors t 3);
  Alcotest.(check (list int)) "descendants of 0" [ 1; 3; 4; 2 ] (Instance.descendants t 0);
  check "ancestor test" true (Instance.is_strict_ancestor t ~anc:0 ~desc:4);
  check "not ancestor (self)" false (Instance.is_strict_ancestor t ~anc:3 ~desc:3);
  check "not ancestor (sibling)" false (Instance.is_strict_ancestor t ~anc:2 ~desc:1)

let test_instance_errors () =
  let t = sample () in
  check "duplicate id" true
    (Instance.add_root (simple_entry 3) t = Error (Instance.Duplicate_id 3));
  check "missing parent" true
    (Instance.add_child ~parent:99 (simple_entry 10) t
    = Error (Instance.No_such_entry 99));
  check "remove non-leaf" true
    (Instance.remove_leaf 1 t = Error (Instance.Not_a_leaf 1));
  check "remove missing" true
    (Instance.remove_leaf 42 t = Error (Instance.No_such_entry 42))

let test_instance_remove () =
  let t = sample () in
  let t = Result.get_ok (Instance.remove_leaf 4 t) in
  check_int "size after leaf removal" 5 (Instance.size t);
  Alcotest.(check (list int)) "children of 1" [ 3 ] (Instance.children t 1);
  let t = Result.get_ok (Instance.remove_subtree 1 t) in
  check_int "size after subtree removal" 3 (Instance.size t);
  check "3 gone" false (Instance.mem t 3);
  Alcotest.(check (list int)) "children of 0" [ 2 ] (Instance.children t 0);
  (* removing a root subtree *)
  let t = Result.get_ok (Instance.remove_subtree 0 t) in
  Alcotest.(check (list int)) "only root 5" [ 5 ] (Instance.roots t)

let test_instance_subtree_graft () =
  let t = sample () in
  let sub = Result.get_ok (Instance.subtree t 1) in
  check_int "subtree size" 3 (Instance.size sub);
  Alcotest.(check (list int)) "subtree roots" [ 1 ] (Instance.roots sub);
  Alcotest.(check (list int)) "subtree children" [ 3; 4 ] (Instance.children sub 1);
  let t' = Result.get_ok (Instance.remove_subtree 1 t) in
  let t'' = Result.get_ok (Instance.graft ~parent:(Some 2) sub t') in
  check "equal modulo position" true (Instance.size t'' = Instance.size t);
  check "moved" true (Instance.parent t'' 1 = Some 2);
  check "id clash detected" true
    (match Instance.graft ~parent:None sub t with
    | Error (Instance.Id_clash _) -> true
    | _ -> false)

let test_instance_dn () =
  let t =
    Instance.empty
    |> Instance.add_root_exn
         (Entry.make ~id:0 ~rdn:"o=att" ~classes:(Oclass.Set.singleton top) [])
    |> Instance.add_child_exn ~parent:0
         (Entry.make ~id:1 ~rdn:"ou=research" ~classes:(Oclass.Set.singleton top) [])
    |> Instance.add_child_exn ~parent:1
         (Entry.make ~id:2 ~rdn:"uid=laks" ~classes:(Oclass.Set.singleton top) [])
  in
  check_str "dn" "uid=laks,ou=research,o=att" (Instance.dn t 2);
  check "resolve" true (Instance.resolve_dn t "uid=laks,ou=research,o=att" = Some 2);
  check "resolve case-insensitive" true
    (Instance.resolve_dn t "UID=LAKS, OU=Research, O=ATT" = Some 2);
  check "resolve missing" true (Instance.resolve_dn t "uid=nobody,o=att" = None)

let test_instance_update_entry () =
  let t = sample () in
  let t =
    Result.get_ok
      (Instance.update_entry 2 (fun e -> Entry.add_class person e) t)
  in
  check "class added" true (Entry.has_class (Instance.entry t 2) person);
  Alcotest.check_raises "id change rejected"
    (Invalid_argument "Instance.update_entry: the update must preserve the entry id")
    (fun () -> ignore (Instance.update_entry 2 (fun e -> Entry.with_id 99 e) t))

let test_instance_equal_ignores_sibling_order () =
  let t1 =
    Instance.empty
    |> Instance.add_root_exn (simple_entry 0)
    |> Instance.add_child_exn ~parent:0 (simple_entry 1)
    |> Instance.add_child_exn ~parent:0 (simple_entry 2)
  in
  let t2 =
    Instance.empty
    |> Instance.add_root_exn (simple_entry 0)
    |> Instance.add_child_exn ~parent:0 (simple_entry 2)
    |> Instance.add_child_exn ~parent:0 (simple_entry 1)
  in
  check "equal" true (Instance.equal t1 t2)

let test_instance_preorder () =
  let t = sample () in
  let seen = ref [] in
  Instance.iter_preorder (fun ~depth e -> seen := (Entry.id e, depth) :: !seen) t;
  Alcotest.(check (list (pair int int)))
    "preorder with depths"
    [ (0, 0); (1, 1); (3, 2); (4, 2); (2, 1); (5, 0) ]
    (List.rev !seen)

(* --- Wf ----------------------------------------------------------------- *)

let test_wf () =
  let typing = Typing.declare_exn (Attr.of_string "age") Atype.T_int Typing.default in
  let good =
    Entry.make ~id:0 ~classes:(Oclass.Set.singleton top)
      [ (Attr.of_string "age", Value.Int 30) ]
  in
  let bad =
    Entry.make ~id:1 ~classes:(Oclass.Set.singleton top)
      [ (Attr.of_string "age", Value.String "thirty") ]
  in
  let t =
    Instance.empty |> Instance.add_root_exn good |> Instance.add_child_exn ~parent:0 bad
  in
  let viols = Wf.check typing t in
  check_int "one violation" 1 (List.length viols);
  check "well-formed fails" false (Wf.is_well_formed typing t);
  let v = List.hd viols in
  check_int "entry" 1 v.Wf.entry;
  check "expected type" true (v.Wf.expected = Atype.T_int)

(* --- properties ---------------------------------------------------------- *)

let arb_instance =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
    QCheck.Gen.(int_bound 100_000)

let random_instance seed =
  Bounds_workload.Gen.random_forest ~seed ~size:(1 + (seed mod 50))
    ~mk_entry:(fun _rng id -> simple_entry id)
    ()

(* structural invariants of the forest *)
let prop_forest_invariants =
  QCheck.Test.make ~name:"forest invariants" ~count:200 arb_instance (fun seed ->
      let t = random_instance seed in
      let ids = Instance.ids t in
      List.length ids = Instance.size t
      && List.for_all
           (fun id ->
             (* parent/children agree *)
             List.for_all (fun ch -> Instance.parent t ch = Some id) (Instance.children t id)
             &&
             match Instance.parent t id with
             | None -> List.mem id (Instance.roots t)
             | Some p -> List.mem id (Instance.children t p))
           ids
      && (* every entry reaches a root: ancestors are finite and acyclic *)
      List.for_all
        (fun id ->
          let anc = Instance.ancestors t id in
          List.length (List.sort_uniq compare anc) = List.length anc
          && not (List.mem id anc))
        ids)

(* descendants and is_strict_ancestor agree *)
let prop_descendants_vs_ancestor_test =
  QCheck.Test.make ~name:"descendants = strict-ancestor inverse" ~count:100
    arb_instance (fun seed ->
      let t = random_instance seed in
      let ids = Instance.ids t in
      List.for_all
        (fun anc ->
          let ds = Instance.descendants t anc in
          List.for_all (fun d -> Instance.is_strict_ancestor t ~anc ~desc:d) ds
          && List.for_all
               (fun other ->
                 List.mem other ds = Instance.is_strict_ancestor t ~anc ~desc:other)
               ids)
        ids)

(* subtree extraction + removal + graft restores the instance *)
let prop_subtree_remove_graft_identity =
  QCheck.Test.make ~name:"subtree/remove/graft identity" ~count:200 arb_instance
    (fun seed ->
      let t = random_instance seed in
      let ids = Instance.ids t in
      let victim = List.nth ids (seed * 7 mod List.length ids) in
      let parent = Instance.parent t victim in
      let sub = Result.get_ok (Instance.subtree t victim) in
      let without = Result.get_ok (Instance.remove_subtree victim t) in
      let back = Result.get_ok (Instance.graft ~parent sub without) in
      Instance.equal back t
      && Instance.size sub + Instance.size without = Instance.size t)

(* preorder visits every entry exactly once, parents before children *)
let prop_preorder_complete =
  QCheck.Test.make ~name:"preorder completeness & order" ~count:100 arb_instance
    (fun seed ->
      let t = random_instance seed in
      let seen = ref [] in
      Instance.iter_preorder (fun ~depth:_ e -> seen := Entry.id e :: !seen) t;
      let order = List.rev !seen in
      List.sort compare order = Instance.ids t
      && List.for_all
           (fun id ->
             match Instance.parent t id with
             | None -> true
             | Some p ->
                 let pos x =
                   let rec go i = function
                     | [] -> -1
                     | y :: r -> if y = x then i else go (i + 1) r
                   in
                   go 0 order
                 in
                 pos p < pos id)
           (Instance.ids t))

(* pool laws: share is canonical and idempotent, ids are stable and
   invertible, find_id never pollutes *)
let prop_intern_laws =
  QCheck.Test.make ~name:"intern pool laws" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 1 12) Gen.printable)
    (fun s ->
      let pool = Intern.rdn in
      let c = Intern.share pool s in
      let c' = Intern.share pool (String.sub s 0 (String.length s)) in
      let i = Intern.id pool s in
      String.equal c s
      && c == c' (* canonical: every equal string maps to one block *)
      && Intern.share pool c == c (* idempotent on the canonical copy *)
      && i = Intern.id pool c (* id agrees however the string is spelled *)
      && Intern.find_id pool s = Some i
      && Intern.get pool i == c (* get inverts id, physically *)
      && Intern.size pool > i)

let () =
  Alcotest.run "model"
    [
      ( "attr-oclass",
        [
          Alcotest.test_case "attr normalization" `Quick test_attr_normalization;
          Alcotest.test_case "attr invalid" `Quick test_attr_invalid;
          Alcotest.test_case "oclass" `Quick test_oclass;
          Alcotest.test_case "intern sharing" `Quick test_intern_sharing;
        ] );
      ( "values",
        [
          Alcotest.test_case "typing" `Quick test_value_typing;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "registry" `Quick test_typing_registry;
        ] );
      ( "entry",
        [
          Alcotest.test_case "basics" `Quick test_entry_basics;
          Alcotest.test_case "objectClass synthesized" `Quick
            test_entry_object_class_synthesized;
          Alcotest.test_case "objectClass writes rejected" `Quick
            test_entry_rejects_object_class_writes;
          Alcotest.test_case "set semantics" `Quick test_entry_set_semantics;
          Alcotest.test_case "empty classes rejected" `Quick
            test_entry_empty_classes_rejected;
        ] );
      ( "instance",
        [
          Alcotest.test_case "shape" `Quick test_instance_shape;
          Alcotest.test_case "errors" `Quick test_instance_errors;
          Alcotest.test_case "remove" `Quick test_instance_remove;
          Alcotest.test_case "subtree & graft" `Quick test_instance_subtree_graft;
          Alcotest.test_case "dn" `Quick test_instance_dn;
          Alcotest.test_case "update entry" `Quick test_instance_update_entry;
          Alcotest.test_case "sibling order" `Quick
            test_instance_equal_ignores_sibling_order;
          Alcotest.test_case "preorder" `Quick test_instance_preorder;
        ] );
      ("wf", [ Alcotest.test_case "typing check" `Quick test_wf ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_forest_invariants;
          QCheck_alcotest.to_alcotest prop_descendants_vs_ancestor_test;
          QCheck_alcotest.to_alcotest prop_subtree_remove_graft_identity;
          QCheck_alcotest.to_alcotest prop_preorder_complete;
          QCheck_alcotest.to_alcotest prop_intern_laws;
        ] );
    ]
