(* Live directory sessions: the incremental index maintenance of
   Index.apply/graft/prune/replace_entry (interval shifting on a
   copy-on-write version), and the Directory facade that keeps index,
   value tables and query memo consistent across updates. *)

open Bounds_model
open Bounds_core
module Index = Bounds_query.Index
module Query = Bounds_query.Query
module Gen = Bounds_workload.Gen
module WP = Bounds_workload.White_pages

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Attr.of_string
let c = Oclass.of_string
let wp = WP.instance

let person ?(id = 100) ?(uid = "u100") () =
  Entry.make ~id
    ~classes:(Oclass.set_of_list [ "person"; "top" ])
    [ (a "name", Value.String "n"); (a "uid", Value.String uid) ]

let unit_entry ?(id = 100) ?(ou = "newunit") () =
  Entry.make ~id
    ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
    [ (a "ou", Value.String ou) ]

(* Compare every per-rank fact the interval-shifting maintenance patches
   against a from-scratch rebuild. *)
let index_diff live fresh =
  if Index.n live <> Index.n fresh then
    Some
      (Printf.sprintf "sizes differ: %d vs %d" (Index.n live) (Index.n fresh))
  else
    let n = Index.n live in
    let rec go r =
      if r = n then None
      else
        let fail what x y =
          Some (Printf.sprintf "rank %d: %s %d vs %d" r what x y)
        in
        let x = Index.id_of_rank live r and y = Index.id_of_rank fresh r in
        if x <> y then fail "id" x y
        else if
          not
            (Entry.equal (Index.entry_of_rank live r)
               (Index.entry_of_rank fresh r))
        then Some (Printf.sprintf "rank %d: entries differ" r)
        else
          let x = Index.parent_rank live r and y = Index.parent_rank fresh r in
          if x <> y then fail "parent" x y
          else
            let x = Index.depth_of_rank live r
            and y = Index.depth_of_rank fresh r in
            if x <> y then fail "depth" x y
            else
              let x = Index.extent_of_rank live r
              and y = Index.extent_of_rank fresh r in
              if x <> y then fail "extent" x y
              else if Index.rank live (Index.id_of_rank live r) <> r then
                Some (Printf.sprintf "rank %d: rank table broken" r)
              else go (r + 1)
    in
    go 0

let check_same_index what live fresh =
  match index_diff live fresh with
  | None -> ()
  | Some m -> Alcotest.failf "%s: %s" what m

(* --- Index.apply / graft / prune / replace_entry -------------------------- *)

let test_index_apply_insert () =
  let ops =
    [
      Update.Insert { parent = Some 3; entry = person ~id:100 ~uid:"x1" () };
      Update.Insert { parent = Some 100; entry = person ~id:101 ~uid:"x2" () };
      Update.Insert { parent = None; entry = unit_entry ~id:102 () };
    ]
  in
  let final = Result.get_ok (Update.apply wp ops) in
  check_same_index "apply inserts"
    (Index.apply ops (Index.create wp))
    (Index.create final)

let test_index_apply_delete () =
  let ops = [ Update.Delete 4; Update.Delete 5; Update.Delete 3 ] in
  let final = Result.get_ok (Update.apply wp ops) in
  check_same_index "apply deletes"
    (Index.apply ops (Index.create wp))
    (Index.create final)

let test_index_apply_mixed () =
  let ops =
    [
      Update.Delete 4;
      Update.Insert { parent = Some 3; entry = person ~id:100 ~uid:"x1" () };
      Update.Delete 100;
      Update.Insert { parent = Some 1; entry = person ~id:101 ~uid:"x2" () };
    ]
  in
  let final = Result.get_ok (Update.apply wp ops) in
  check_same_index "apply mixed"
    (Index.apply ops (Index.create wp))
    (Index.create final)

let test_graft_and_prune () =
  let delta =
    Instance.add_child_exn ~parent:200
      (person ~id:201 ~uid:"g1" ())
      (Instance.add_root_exn (unit_entry ~id:200 ()) Instance.empty)
  in
  let base_ix = Index.create wp in
  let grafted = Index.graft ~parent:(Some 1) delta base_ix in
  let final =
    Result.get_ok (Update.apply wp (Update.ops_of_subtree ~parent:(Some 1) delta))
  in
  check_same_index "graft" grafted (Index.create final);
  (* pruning the grafted subtree restores the original encoding — and the
     pre-graft snapshot was never disturbed *)
  check_same_index "prune" (Index.prune 200 grafted) (Index.create wp);
  check_same_index "old version untouched" base_ix (Index.create wp)

let test_replace_entry () =
  let old_e = Instance.entry wp 4 in
  let new_e =
    Entry.make ~id:4 ~classes:(Entry.classes old_e)
      [ (a "name", Value.String "renamed"); (a "uid", Value.String "r4") ]
  in
  let ix = Index.replace_entry new_e (Index.create wp) in
  check "entry replaced" true
    (Entry.equal new_e (Index.entry_of_rank ix (Index.rank ix 4)));
  check_same_index "structure unchanged after replace" ix
    (Index.create
       (Result.get_ok (Instance.update_entry 4 (fun _ -> new_e) wp)))

(* --- Directory sessions ---------------------------------------------------- *)

let open_wp () =
  match Directory.open_ WP.schema wp with
  | Ok d -> d
  | Error vs ->
      Alcotest.failf "open_ rejected the white-pages instance: %d violations"
        (List.length vs)

let test_session_lifecycle () =
  let dir = open_wp () in
  let persons = Query.select_class (c "person") in
  let before = List.length (Directory.query_ids dir persons) in
  let ops =
    [ Update.Insert { parent = Some 3; entry = person ~id:100 ~uid:"s1" () } ]
  in
  let dir', _ = Directory.apply dir ops in
  check_int "one more entry" (Directory.size dir + 1) (Directory.size dir');
  check_int "one more person" (before + 1)
    (List.length (Directory.query_ids dir' persons));
  check "still legal by its own audit" true (Directory.validate dir' = []);
  check_same_index "session index = rebuild"
    (Directory.Snapshot.Private.index (Directory.snapshot dir'))
    (Index.create (Directory.instance dir'));
  (* the superseded version is a valid snapshot of its own instance *)
  check_int "old version still answers" before
    (List.length (Directory.query_ids dir persons));
  let s = Directory.stats dir' in
  check_int "applied counted" 1 s.Directory.applied;
  check "memo migrated entries across the update" true
    (s.Directory.memo_migrated > 0)

let test_session_rejection () =
  let dir = open_wp () in
  (* uid is a key in the white-pages schema: duplicating one is rejected *)
  let dup_uid = Entry.values (Instance.entry wp 4) (a "uid") in
  let uid =
    match dup_uid with Value.String s :: _ -> s | _ -> Alcotest.fail "no uid"
  in
  let ops = [ Update.Insert { parent = Some 3; entry = person ~id:100 ~uid () } ] in
  (match Directory.apply dir ops with
  | _, Admission.Accepted _ -> Alcotest.fail "duplicate key accepted"
  | _, Admission.Rejected _ -> ());
  check_int "session unchanged" (Instance.size wp) (Directory.size dir);
  check "still usable" true (Directory.validate dir = []);
  check_int "rejection counted" 1 (Directory.stats dir).Directory.rejected

let test_session_snapshot () =
  let dir = open_wp () in
  let snap = Directory.snapshot dir in
  let persons = Query.select_class (c "person") in
  let before = List.length (Directory.Snapshot.query_ids snap persons) in
  let ops =
    [ Update.Insert { parent = Some 3; entry = person ~id:100 ~uid:"s2" () } ]
  in
  let _dir', _ = Directory.apply dir ops in
  (* the snapshot still answers for its own version after the session moved *)
  check_int "snapshot stable" before
    (List.length (Directory.Snapshot.query_ids snap persons));
  check "snapshot validates" true
    (Directory.Snapshot.validate WP.schema snap = [])

(* --- properties ------------------------------------------------------------ *)

let arb_case =
  QCheck.make
    ~print:(fun (seed, size, n) ->
      Printf.sprintf "seed=%d size=%d n_ops=%d" seed size n)
    QCheck.Gen.(triple (int_bound 100000) (int_range 2 40) (int_range 1 12))

(* Index.apply needs only op-validity (insert under an existing parent,
   delete a leaf) — exactly what Gen.random_ops produces — so the pure
   index property holds with no legality in sight. *)
let prop_index_apply =
  QCheck.Test.make ~name:"Index.apply ops = rebuild from scratch" ~count:200
    arb_case (fun (seed, size, n) ->
      let schema = Gen.random_schema_rich ~seed () in
      let counter = ref 0 in
      let inst = Gen.content_legal_forest ~counter ~seed ~size schema in
      let ops = Gen.random_ops ~counter ~seed:(seed + 1) ~n schema inst in
      let final = Result.get_ok (Update.apply inst ops) in
      match index_diff (Index.apply ops (Index.create inst)) (Index.create final) with
      | None -> true
      | Some m -> QCheck.Test.fail_report m)

(* --- chunked copy-on-write versions ---------------------------------------- *)

(* Sizes straddling the 256-entry chunk boundary, so every splice shape
   (within one chunk, across a seam, spanning whole chunks) is hit. *)
let arb_chunked =
  QCheck.make
    ~print:(fun (seed, size, n) ->
      Printf.sprintf "seed=%d size=%d n_ops=%d" seed size n)
    QCheck.Gen.(triple (int_bound 100000) (int_range 200 600) (int_range 1 12))

let prop_chunk_boundary_apply =
  QCheck.Test.make
    ~name:"Index.apply at chunk-straddling sizes = rebuild, base isolated"
    ~count:60 arb_chunked (fun (seed, size, n) ->
      let schema = Gen.random_schema_rich ~seed () in
      let counter = ref 0 in
      let inst = Gen.content_legal_forest ~counter ~seed ~size schema in
      let ops = Gen.random_ops ~counter ~seed:(seed + 1) ~n schema inst in
      let final = Result.get_ok (Update.apply inst ops) in
      let base_ix = Index.create inst in
      let next_ix = Index.apply ops base_ix in
      (match index_diff next_ix (Index.create final) with
      | None -> ()
      | Some m -> QCheck.Test.fail_report ("new version: " ^ m));
      (* shared-chunk isolation: the new version shares most chunks with
         its base, yet producing it left the base bit-identical *)
      match index_diff base_ix (Index.create inst) with
      | None -> true
      | Some m -> QCheck.Test.fail_report ("base version mutated: " ^ m))

(* A long chain of versions, each one transaction apart: every sampled
   version must still equal a rebuild of its own instance — no drift
   accumulates down the chain, however deep. *)
let test_deep_version_chain () =
  let depth = 120 in
  let seed = 7 in
  let schema = Gen.random_schema_rich ~seed () in
  let counter = ref 0 in
  let inst = Gen.content_legal_forest ~counter ~seed ~size:400 schema in
  let parents =
    Instance.fold (fun e acc -> Entry.id e :: acc) inst [] |> Array.of_list
  in
  let versions = Array.make (depth + 1) (Index.create inst, inst) in
  let cur = ref (fst versions.(0), inst) in
  for i = 1 to depth do
    let ix, cur_inst = !cur in
    let parent = parents.(i mod Array.length parents) in
    let id = 1_000_000 + i in
    let e =
      Entry.make ~id
        ~rdn:(Printf.sprintf "chain%d" id)
        ~classes:(Oclass.Set.singleton Oclass.top)
        []
    in
    let ops = [ Update.Insert { parent = Some parent; entry = e } ] in
    let inst' = Result.get_ok (Update.apply cur_inst ops) in
    let ix' = Index.apply ops ix in
    versions.(i) <- (ix', inst');
    cur := (ix', inst')
  done;
  (* sample down the chain, then check the head exhaustively: every
     version answers for its own instance after 120 descendants *)
  List.iter
    (fun i ->
      let ix, inst_i = versions.(i) in
      check_same_index
        (Printf.sprintf "version %d of %d" i depth)
        ix (Index.create inst_i))
    [ 0; 1; 40; 80; depth ];
  check_int "chain head grew" (Instance.size inst + depth)
    (Index.n (fst versions.(depth)))

(* Lightly-edited versions of a large directory share almost all their
   chunks: the O(delta + touched-chunks) version step is what breaks the
   1 tx/s write wall, and chunk sharing is its physical witness. *)
let test_chunk_sharing () =
  let base = WP.generate ~seed:11 ~units:500 ~persons_per_unit:20 () in
  let n_versions = 8 in
  let unit_id =
    Instance.fold
      (fun e acc ->
        if Entry.has_class e (c "orgunit") then Some (Entry.id e) else acc)
      base None
    |> Option.get
  in
  let ix0 = Index.create base in
  let chunks = Index.chunk_count ix0 in
  check "large directory spans many chunks" true (chunks > 20);
  let prev = ref ix0 in
  for i = 1 to n_versions do
    let id = 2_000_000 + i in
    let ops =
      [
        Update.Insert
          { parent = Some unit_id; entry = person ~id ~uid:(Printf.sprintf "share%d" id) () };
      ]
    in
    let next = Index.apply ops !prev in
    let shared = Index.shared_chunks next !prev in
    let total = Index.chunk_count next in
    if 10 * shared < 9 * total then
      Alcotest.failf
        "version %d shares only %d of %d chunks with its parent (< 90%%)" i
        shared total;
    prev := next
  done;
  (* and the end of the chain still shares ≥90%% with the original *)
  let shared0 = Index.shared_chunks !prev ix0 in
  check "chain end still shares ≥90% with the base" true
    (10 * shared0 >= 9 * Index.chunk_count !prev)

(* A session driven through several random accepted transactions stays
   extensionally equal to a from-scratch rebuild: same index encoding,
   and its own (memoized) audit still finds nothing. *)
let prop_session_apply =
  QCheck.Test.make ~name:"Directory.apply over random transactions = rebuild"
    ~count:100 arb_case (fun (seed, size, n) ->
      let schema = Gen.random_schema_rich ~seed () in
      let counter = ref 0 in
      let inst = Gen.content_legal_forest ~counter ~seed ~size schema in
      match Directory.open_ schema inst with
      | Error _ -> true (* illegal start: out of the session's contract *)
      | Ok dir ->
          let dir = ref dir in
          for round = 0 to 2 do
            let ops =
              Gen.random_ops ~counter
                ~seed:(seed + 1 + round)
                ~n schema (Directory.instance !dir)
            in
            match Directory.apply !dir ops with
            | d, Admission.Accepted _ -> dir := d
            | _, Admission.Rejected _ -> ()
            (* rejected: session unchanged, keep going *)
          done;
          let fresh = Index.create (Directory.instance !dir) in
          (match
             index_diff
               (Directory.Snapshot.Private.index (Directory.snapshot !dir))
               fresh
           with
          | None -> ()
          | Some m -> QCheck.Test.fail_report m);
          Directory.validate !dir = [])

let () =
  Alcotest.run "session"
    [
      ( "index",
        [
          Alcotest.test_case "apply inserts" `Quick test_index_apply_insert;
          Alcotest.test_case "apply deletes" `Quick test_index_apply_delete;
          Alcotest.test_case "apply mixed" `Quick test_index_apply_mixed;
          Alcotest.test_case "graft and prune" `Quick test_graft_and_prune;
          Alcotest.test_case "replace entry" `Quick test_replace_entry;
          QCheck_alcotest.to_alcotest prop_index_apply;
        ] );
      ( "chunked-versions",
        [
          QCheck_alcotest.to_alcotest prop_chunk_boundary_apply;
          Alcotest.test_case "120-deep version chain" `Quick
            test_deep_version_chain;
          Alcotest.test_case "light edits share ≥90% of chunks" `Quick
            test_chunk_sharing;
        ] );
      ( "directory",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "rejection" `Quick test_session_rejection;
          Alcotest.test_case "snapshot" `Quick test_session_snapshot;
          QCheck_alcotest.to_alcotest prop_session_apply;
        ] );
    ]
