(* Legality testing (Section 3): every clause of Definition 2.7, the
   Figure-4 query reduction, and equivalence with the naive quadratic
   checker. *)

open Bounds_model
open Bounds_core
module WP = Bounds_workload.White_pages

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Attr.of_string
let c = Oclass.of_string

let wp_schema = WP.schema
let wp = WP.instance

let has_violation pred viols = List.exists pred viols

let person_entry ?(id = 100) ?(uid = "u100") ?(extra = []) ?(classes = []) () =
  Entry.make ~id
    ~classes:
      (Oclass.Set.of_list
         (if classes = [] then [ c "person"; Oclass.top ] else classes))
    ([ (a "name", Value.String "n"); (a "uid", Value.String uid) ] @ extra)

(* --- baseline: the paper's instance is legal ---------------------------- *)

let test_white_pages_legal () =
  Alcotest.(check (list string))
    "no violations" []
    (List.map Violation.to_string (Legality.check wp_schema wp));
  check "is_legal" true (Legality.is_legal wp_schema wp)

(* --- attribute schema clauses ------------------------------------------- *)

let test_missing_required_attr () =
  let e =
    Entry.make ~id:100
      ~classes:(Oclass.Set.of_list [ c "person"; Oclass.top ])
      [ (a "name", Value.String "x") ]
    (* uid missing *)
  in
  let viols = Content_legality.check_entry wp_schema e in
  check "missing uid" true
    (has_violation
       (function
         | Violation.Missing_required_attr { attr; _ } -> Attr.equal attr (a "uid")
         | _ -> false)
       viols)

let test_attr_not_allowed () =
  let e = person_entry ~extra:[ (a "salary", Value.String "lots") ] () in
  let viols = Content_legality.check_entry wp_schema e in
  check "salary not allowed" true
    (has_violation
       (function
         | Violation.Attr_not_allowed { attr; _ } -> Attr.equal attr (a "salary")
         | _ -> false)
       viols)

let test_aux_attrs_allowed_through_aux_class () =
  (* mail is allowed only via the online auxiliary class *)
  let without_online = person_entry ~extra:[ (a "mail", Value.String "x@y") ] () in
  check "mail rejected without online" true
    (has_violation
       (function Violation.Attr_not_allowed _ -> true | _ -> false)
       (Content_legality.check_entry wp_schema without_online));
  let with_online =
    person_entry
      ~classes:[ c "person"; c "online"; Oclass.top ]
      ~extra:[ (a "mail", Value.String "x@y") ]
      ()
  in
  Alcotest.(check (list string))
    "mail accepted with online" []
    (List.map Violation.to_string (Content_legality.check_entry wp_schema with_online))

(* --- class schema clauses ------------------------------------------------ *)

let test_unknown_class () =
  let e = person_entry ~classes:[ c "person"; c "martian"; Oclass.top ] () in
  check "unknown class" true
    (has_violation
       (function
         | Violation.Unknown_class { cls; _ } -> Oclass.equal cls (c "martian")
         | _ -> false)
       (Content_legality.check_entry wp_schema e))

let test_no_core_class () =
  let e =
    Entry.make ~id:100 ~classes:(Oclass.Set.of_list [ c "online" ]) []
  in
  check "no core class" true
    (has_violation
       (function Violation.No_core_class _ -> true | _ -> false)
       (Content_legality.check_entry wp_schema e))

let test_missing_superclass () =
  (* researcher without person *)
  let e =
    Entry.make ~id:100
      ~classes:(Oclass.Set.of_list [ c "researcher"; Oclass.top ])
      [ (a "name", Value.String "n"); (a "uid", Value.String "u") ]
  in
  check "missing person" true
    (has_violation
       (function
         | Violation.Missing_superclass { super; _ } -> Oclass.equal super (c "person")
         | _ -> false)
       (Content_legality.check_entry wp_schema e))

let test_incomparable_core_classes () =
  (* the paper: an orgUnit must not also be a person *)
  let e =
    Entry.make ~id:100
      ~classes:
        (Oclass.Set.of_list [ c "orgunit"; c "orggroup"; c "person"; Oclass.top ])
      [
        (a "ou", Value.String "x");
        (a "name", Value.String "n");
        (a "uid", Value.String "u");
      ]
  in
  check "incomparable" true
    (has_violation
       (function Violation.Incomparable_classes _ -> true | _ -> false)
       (Content_legality.check_entry wp_schema e))

let test_aux_not_allowed () =
  (* facultyMember is allowed for researchers, not staff *)
  let e =
    Entry.make ~id:100
      ~classes:
        (Oclass.Set.of_list
           [ c "staffmember"; c "person"; c "facultymember"; Oclass.top ])
      [ (a "name", Value.String "n"); (a "uid", Value.String "u") ]
  in
  check "aux not allowed" true
    (has_violation
       (function
         | Violation.Aux_not_allowed { aux; _ } -> Oclass.equal aux (c "facultymember")
         | _ -> false)
       (Content_legality.check_entry wp_schema e))

let test_typing_violation () =
  let e =
    person_entry ~extra:[ (a "telephonenumber", Value.String "not-a-phone") ] ()
  in
  check "typing" true
    (has_violation
       (function
         | Violation.Type_violation { expected; _ } -> expected = Atype.T_telephone
         | _ -> false)
       (Content_legality.check_entry wp_schema e))

(* --- structure schema clauses ------------------------------------------- *)

let add_person parent inst ~id ~uid =
  Instance.add_child_exn ~parent (person_entry ~id ~uid ()) inst

let test_missing_required_class () =
  (* delete all orgUnits: attLabs subtree - keep armstrong so person holds *)
  let smaller = Result.get_ok (Instance.remove_subtree 1 wp) in
  let viols = Structure_legality.check wp_schema smaller in
  check "orgunit missing" true
    (has_violation
       (function
         | Violation.Missing_required_class { cls } -> Oclass.equal cls (c "orgunit")
         | _ -> false)
       viols)

let test_unsatisfied_descendant () =
  (* a fresh orgUnit with no person below violates orgGroup ->> person *)
  let unit_entry =
    Entry.make ~id:100
      ~classes:(Oclass.Set.of_list [ c "orgunit"; c "orggroup"; Oclass.top ])
      [ (a "ou", Value.String "empty") ]
  in
  let inst = Instance.add_child_exn ~parent:1 unit_entry wp in
  let viols = Structure_legality.check wp_schema inst in
  check "unsatisfied descendant" true
    (has_violation
       (function
         | Violation.Unsatisfied_rel
             { entry = 100; rel = (ci, Structure_schema.Descendant, cj) } ->
             Oclass.equal ci (c "orggroup") && Oclass.equal cj (c "person")
         | _ -> false)
       viols)

let test_unsatisfied_parent () =
  (* an orgUnit directly under a person violates orgUnit <-parent- orgGroup;
     also forbidden person -/-> top *)
  let unit_entry =
    Entry.make ~id:100
      ~classes:(Oclass.Set.of_list [ c "orgunit"; c "orggroup"; Oclass.top ])
      [ (a "ou", Value.String "under-suciu") ]
  in
  let inst = Instance.add_child_exn ~parent:5 unit_entry wp in
  let inst = add_person 100 inst ~id:101 ~uid:"u101" in
  let viols = Structure_legality.check wp_schema inst in
  check "unsatisfied parent rel" true
    (has_violation
       (function
         | Violation.Unsatisfied_rel { entry = 100; rel = (_, Structure_schema.Parent, _) }
           ->
             true
         | _ -> false)
       viols)

let test_forbidden_child () =
  (* any child under a person violates person -/-> top *)
  let inst = add_person 4 wp ~id:100 ~uid:"u100" in
  let viols = Structure_legality.check wp_schema inst in
  check "forbidden child with witness pair" true
    (has_violation
       (function
         | Violation.Forbidden_rel { source = 4; target = 100; rel = (ci, Structure_schema.F_child, cj) }
           ->
             Oclass.equal ci (c "person") && Oclass.equal cj Oclass.top
         | _ -> false)
       viols)

let test_forbidden_descendant () =
  let schema =
    let structure =
      Structure_schema.forbid (c "organization") Structure_schema.F_descendant
        (c "organization") wp_schema.Schema.structure
    in
    Schema.make_exn ~typing:wp_schema.Schema.typing
      ~attributes:wp_schema.Schema.attributes ~classes:wp_schema.Schema.classes
      ~structure ()
  in
  check "wp still legal" true (Structure_legality.is_legal schema wp);
  (* nest an organization under attLabs *)
  let org =
    Entry.make ~id:100
      ~classes:(Oclass.Set.of_list [ c "organization"; c "orggroup"; Oclass.top ])
      [ (a "o", Value.String "sub") ]
  in
  let inst = Instance.add_child_exn ~parent:1 org wp in
  let inst = add_person 100 inst ~id:101 ~uid:"u101" in
  check "nested org detected" true
    (has_violation
       (function
         | Violation.Forbidden_rel { source = 0; target = 100; _ } -> true
         | _ -> false)
       (Structure_legality.check schema inst))

(* --- Figure 4 translation ------------------------------------------------ *)

let test_translate_shapes () =
  let req = (c "a", Structure_schema.Descendant, c "b") in
  (match Translate.required_rel req with
  | Bounds_query.Query.Minus
      ( Bounds_query.Query.Select _,
        Bounds_query.Query.Chi (Bounds_query.Query.Descendant, _, _) ) ->
      ()
  | _ -> Alcotest.fail "required_rel shape");
  (match Translate.forbidden_rel (c "a", Structure_schema.F_child, c "b") with
  | Bounds_query.Query.Chi (Bounds_query.Query.Child, _, _) -> ()
  | _ -> Alcotest.fail "forbidden_rel shape");
  let all = Translate.all wp_schema.Schema.structure in
  check_int "one obligation per element" (Structure_schema.size wp_schema.Schema.structure)
    (List.length all);
  (* expectations paired correctly *)
  List.iter
    (fun (ob, _, exp) ->
      match (ob, exp) with
      | Translate.Oblig_class _, Translate.Must_be_nonempty -> ()
      | (Translate.Oblig_required _ | Translate.Oblig_forbidden _), Translate.Must_be_empty
        ->
          ()
      | _ -> Alcotest.fail "mispaired expectation")
    all

let test_translate_legality_equivalence () =
  (* legality iff all required/forbidden queries empty and class queries
     non-empty — checked through the public API on both a legal and an
     illegal instance *)
  let ix = Bounds_query.Index.create wp in
  List.iter
    (fun (_, q, exp) ->
      let empty = Bounds_query.Eval.is_empty ix q in
      match exp with
      | Translate.Must_be_empty -> check "empty on legal" true empty
      | Translate.Must_be_nonempty -> check "non-empty on legal" false empty)
    (Translate.all wp_schema.Schema.structure)

(* --- extensions ----------------------------------------------------------- *)

let test_single_valued () =
  let e =
    person_entry
      ~extra:[ (a "uid", Value.String "second-uid") ]
      ()
  in
  let inst = Instance.add_child_exn ~parent:3 e wp in
  check "uid multi-valued" true
    (has_violation
       (function
         | Violation.Multiple_values { attr; count = 2; _ } -> Attr.equal attr (a "uid")
         | _ -> false)
       (Legality.check wp_schema inst))

let test_keys () =
  (* duplicate uid=laks *)
  let e = person_entry ~id:100 ~uid:"laks" () in
  let inst = Instance.add_child_exn ~parent:3 e wp in
  check "duplicate key" true
    (has_violation
       (function
         | Violation.Duplicate_key { attr; entries; _ } ->
             Attr.equal attr (a "uid") && List.mem 4 entries && List.mem 100 entries
         | _ -> false)
       (Legality.check wp_schema inst));
  check "extensions off ignores it" true
    (Legality.is_legal ~extensions:false wp_schema inst)

(* --- Theorem 3.1: fast checker ≡ naive checker --------------------------- *)

let gen_schema_and_instance =
  QCheck.Gen.(
    map2
      (fun seed size ->
        let schema =
          Bounds_workload.Gen.random_schema ~seed ~n_classes:5 ~n_req:4 ~n_forb:2
            ~n_required_classes:2
        in
        let inst =
          Bounds_workload.Gen.content_legal_forest ~seed:(seed + 1)
            ~size:(max 1 size) schema
        in
        (schema, inst))
      (int_bound 100000) (int_bound 60))

let arb_si =
  QCheck.make
    ~print:(fun (schema, inst) ->
      Format.asprintf "schema:@ %a@ instance size %d" Schema.pp schema
        (Instance.size inst))
    gen_schema_and_instance

let sorted_structure schema inst checker = List.sort Violation.compare (checker schema inst)

let prop_fast_eq_naive =
  QCheck.Test.make ~name:"query-based structure check = naive pairwise check"
    ~count:200 arb_si (fun (schema, inst) ->
      sorted_structure schema inst Structure_legality.check
      = sorted_structure schema inst Naive_legality.check_structure)

let prop_full_checkers_agree =
  QCheck.Test.make ~name:"full fast checker = full naive checker" ~count:100 arb_si
    (fun (schema, inst) ->
      List.sort Violation.compare (Legality.check schema inst)
      = List.sort Violation.compare (Naive_legality.check schema inst))

let prop_vindex_agrees =
  QCheck.Test.make ~name:"legality with vindex = without" ~count:100 arb_si
    (fun (schema, inst) ->
      let ix = Bounds_query.Index.create inst in
      let vx = Bounds_query.Vindex.create ix in
      List.sort Violation.compare (Legality.check ~index:ix ~vindex:vx schema inst)
      = List.sort Violation.compare (Legality.check schema inst))

let prop_memoize_agrees =
  QCheck.Test.make
    ~name:"memoized structure check = direct per-obligation check" ~count:100
    arb_si (fun (schema, inst) ->
      sorted_structure schema inst (Structure_legality.check ~memoize:true)
      = sorted_structure schema inst (Structure_legality.check ~memoize:false))

let () =
  Alcotest.run "legality"
    [
      ("baseline", [ Alcotest.test_case "white pages legal" `Quick test_white_pages_legal ]);
      ( "attribute-schema",
        [
          Alcotest.test_case "missing required attr" `Quick test_missing_required_attr;
          Alcotest.test_case "attr not allowed" `Quick test_attr_not_allowed;
          Alcotest.test_case "aux class attrs" `Quick
            test_aux_attrs_allowed_through_aux_class;
        ] );
      ( "class-schema",
        [
          Alcotest.test_case "unknown class" `Quick test_unknown_class;
          Alcotest.test_case "no core class" `Quick test_no_core_class;
          Alcotest.test_case "missing superclass" `Quick test_missing_superclass;
          Alcotest.test_case "incomparable cores" `Quick test_incomparable_core_classes;
          Alcotest.test_case "aux not allowed" `Quick test_aux_not_allowed;
          Alcotest.test_case "typing" `Quick test_typing_violation;
        ] );
      ( "structure-schema",
        [
          Alcotest.test_case "missing required class" `Quick test_missing_required_class;
          Alcotest.test_case "unsatisfied descendant" `Quick test_unsatisfied_descendant;
          Alcotest.test_case "unsatisfied parent" `Quick test_unsatisfied_parent;
          Alcotest.test_case "forbidden child" `Quick test_forbidden_child;
          Alcotest.test_case "forbidden descendant" `Quick test_forbidden_descendant;
        ] );
      ( "figure-4",
        [
          Alcotest.test_case "translation shapes" `Quick test_translate_shapes;
          Alcotest.test_case "legality equivalence" `Quick
            test_translate_legality_equivalence;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "single-valued" `Quick test_single_valued;
          Alcotest.test_case "keys" `Quick test_keys;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_fast_eq_naive;
          QCheck_alcotest.to_alcotest prop_full_checkers_agree;
          QCheck_alcotest.to_alcotest prop_vindex_agrees;
          QCheck_alcotest.to_alcotest prop_memoize_agrees;
        ] );
    ]
