(* Tests for the domain pool and the parallel legality engine: pool
   mechanics (batch execution, exception propagation, nested runs,
   chunk layout), the word-aligned Bitset primitives it relies on, and
   QCheck properties asserting that every parallel path — filter scans,
   chi axes, vindex construction, full legality checking — produces
   output identical to the sequential engine, violation order included. *)

open Bounds_model
open Bounds_query
open Bounds_core
module Pool = Bounds_par.Pool
module WP = Bounds_workload.White_pages

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ids = Alcotest.(check (list int))

(* Shared pools: sizes 1, 2 and 3 cover the inline path, the
   one-worker path and a genuinely multi-domain pool.  Shut down by the
   last test case of the suite. *)
let pool1 = Pool.create ~domains:1 ()
let pool2 = Pool.create ~domains:2 ()
let pool3 = Pool.create ~domains:3 ()
let pools = [ None; Some pool1; Some pool2; Some pool3 ]

(* --- Pool mechanics ------------------------------------------------------ *)

let test_pool_run () =
  List.iter
    (fun pool ->
      match pool with
      | None -> ()
      | Some p ->
          let n = 100 in
          let hits = Array.make n 0 in
          Pool.run p (Array.init n (fun i () -> hits.(i) <- hits.(i) + 1));
          check_int "every task ran once" n (Array.fold_left ( + ) 0 hits);
          Pool.run p [||];
          Pool.run p [| (fun () -> hits.(0) <- 42) |];
          check_int "singleton task ran" 42 hits.(0))
    pools

let test_pool_exception () =
  List.iter
    (fun p ->
      check "exception propagates" true
        (try
           Pool.run p (Array.init 8 (fun i () -> if i = 5 then failwith "boom"));
           false
         with Failure m -> m = "boom");
      (* the pool must survive a failed batch *)
      let ok = ref 0 in
      Pool.run p (Array.init 4 (fun _ () -> incr ok));
      check_int "pool usable after failure" 4 !ok)
    [ pool1; pool2; pool3 ]

let test_pool_nested () =
  (* a task submitting a batch must not deadlock: nested runs execute
     inline on the submitting domain *)
  let total = ref 0 in
  let m = Mutex.create () in
  let bump () = Mutex.lock m; incr total; Mutex.unlock m in
  Pool.run pool3
    (Array.init 4 (fun _ () -> Pool.run pool3 (Array.init 4 (fun _ () -> bump ()))));
  check_int "nested batches all ran" 16 !total

let test_pool_lifecycle () =
  let p = Pool.create ~domains:2 () in
  check_int "domains" 2 (Pool.domains p);
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  check "with_pool returns" true (Pool.with_pool ~domains:2 (fun _ -> true));
  check "with_pool shuts down on raise" true
    (try Pool.with_pool ~domains:2 (fun _ -> failwith "x") with Failure _ -> true)

let test_pool_chunks () =
  (* chunk boundaries must be multiples of [align] (except the final hi),
     cover [0, n) exactly, and degenerate to one chunk without a pool *)
  List.iter
    (fun n ->
      check "no pool: single chunk" true
        (Pool.chunks n = if n = 0 then [] else [ (0, n) ]);
      let cs = Pool.chunks ~pool:pool3 n in
      let rec covers expect = function
        | [] -> expect = n
        | (lo, hi) :: rest ->
            lo = expect && lo < hi
            && (lo mod 64 = 0)
            && (hi mod 64 = 0 || hi = n)
            && covers hi rest
      in
      check (Printf.sprintf "chunks cover [0,%d) aligned" n) true
        (covers 0 cs))
    [ 0; 1; 63; 64; 65; 300; 1000 ];
  check "multi-chunk when large enough" true
    (List.length (Pool.chunks ~pool:pool3 1000) > 1)

let test_pool_map () =
  List.iter
    (fun pool ->
      let a = Array.init 37 (fun i -> i) in
      check "map_array order" true
        (Pool.map_array ?pool (fun x -> x * x) a = Array.map (fun x -> x * x) a);
      let chunks = Pool.map_chunks ?pool 300 (fun ~lo ~hi -> (lo, hi)) in
      check "map_chunks = chunks" true (chunks = Pool.chunks ?pool 300))
    pools

(* --- Bitset word primitives --------------------------------------------- *)

let test_union_into () =
  List.iter
    (fun n ->
      let a = Bitset.of_list n (List.filter (fun i -> i < n) [ 0; 7; 8; 63; 64; 65 ]) in
      let b = Bitset.of_list n (List.filter (fun i -> i < n) [ 1; 7; 62; 64; n - 1 ]) in
      let expect = Bitset.elements (Bitset.union a b) in
      let into = Bitset.union a (Bitset.create n) in
      Bitset.union_into ~into b;
      check_ids (Printf.sprintf "union_into n=%d" n) expect (Bitset.elements into))
    [ 2; 13; 64; 65; 100; 129 ];
  check "size mismatch raises" true
    (try
       Bitset.union_into ~into:(Bitset.create 8) (Bitset.create 9);
       false
     with Invalid_argument _ -> true)

let test_blit_words () =
  (* aligned copy, including a src whose length is not a whole number of
     bytes: bits of dst beyond src.n must survive *)
  let src = Bitset.of_list 13 [ 0; 5; 12 ] in
  let dst = Bitset.of_list 40 [ 8; 9; 14; 21; 30 ] in
  Bitset.blit_words ~src ~dst ~at:8;
  check_ids "blit at 8, rem bits preserved" [ 8; 13; 20; 21; 30 ]
    (Bitset.elements dst);
  let dst = Bitset.of_list 40 [ 0; 39 ] in
  Bitset.blit_words ~src:(Bitset.of_list 16 [ 1; 15 ]) ~dst ~at:16;
  check_ids "blit whole bytes" [ 0; 17; 31; 39 ] (Bitset.elements dst);
  let dst = Bitset.of_list 24 [ 3 ] in
  Bitset.blit_words ~src:(Bitset.create 0) ~dst ~at:8;
  check_ids "empty src is a no-op" [ 3 ] (Bitset.elements dst);
  check "unaligned offset raises" true
    (try
       Bitset.blit_words ~src:(Bitset.create 8) ~dst:(Bitset.create 24) ~at:4;
       false
     with Invalid_argument _ -> true);
  check "overflow raises" true
    (try
       Bitset.blit_words ~src:(Bitset.create 16) ~dst:(Bitset.create 24) ~at:16;
       false
     with Invalid_argument _ -> true)

let test_iter_range () =
  let members = [ 0; 3; 64; 65; 127; 128; 255; 256; 299 ] in
  let s = Bitset.of_list 300 members in
  let collect ~lo ~hi =
    let acc = ref [] in
    Bitset.iter_range (fun i -> acc := i :: !acc) s ~lo ~hi;
    List.rev !acc
  in
  check_ids "full range" members (collect ~lo:0 ~hi:300);
  check_ids "sub range" [ 64; 65; 127 ] (collect ~lo:4 ~hi:128);
  check_ids "clamped" members (collect ~lo:(-5) ~hi:1000);
  check_ids "empty range" [] (collect ~lo:10 ~hi:10);
  check_ids "mid-byte bounds" [ 65; 127; 128 ] (collect ~lo:65 ~hi:200)

(* --- Properties: parallel ≡ sequential ----------------------------------- *)

let classes_pool = [ "a"; "b"; "c" ]

let mk id cls =
  Entry.make ~id ~classes:(Oclass.Set.of_list [ Oclass.top; Oclass.of_string cls ]) []

(* larger instances than test_query's so evaluation spans several 64-bit
   chunks per worker and the parallel paths are actually exercised *)
let gen_instance =
  QCheck.Gen.(
    map2
      (fun seed size ->
        Bounds_workload.Gen.random_forest ~seed ~size
          ~mk_entry:(fun rng id ->
            let cls = List.nth classes_pool (Random.State.int rng 3) in
            mk id cls)
          ())
      (int_bound 1_000_000)
      (int_range 200 400))

let gen_query =
  let open QCheck.Gen in
  let sel c = Query.select_class (Oclass.of_string c) in
  let leaf = map (fun i -> sel (List.nth classes_pool i)) (int_bound 2) in
  let axis =
    oneofl [ Query.Child; Query.Parent; Query.Descendant; Query.Ancestor ]
  in
  sized_size (int_bound 4)
    (fix (fun self n ->
         if n = 0 then leaf
         else
           frequency
             [
               (1, leaf);
               ( 2,
                 map3
                   (fun ax a b -> Query.Chi (ax, a, b))
                   axis
                   (self (n / 2))
                   (self (n / 2)) );
               (1, map2 (fun a b -> Query.Minus (a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Query.Union (a, b)) (self (n / 2)) (self (n / 2)));
             ]))

let arb_case =
  QCheck.make
    ~print:(fun (inst, q) ->
      Format.asprintf "size=%d query=%s" (Instance.size inst) (Query.to_string q))
    QCheck.Gen.(pair gen_instance gen_query)

let prop_eval_par_equiv =
  QCheck.Test.make ~name:"parallel eval = sequential eval" ~count:60 arb_case
    (fun (inst, q) ->
      let seq_ix = Index.create inst in
      let seq = Eval.eval seq_ix q in
      List.for_all
        (fun pool ->
          let ix = Index.create ?pool inst in
          Bitset.equal seq (Eval.eval ?pool ix q))
        pools)

let prop_vindex_par_equiv =
  QCheck.Test.make ~name:"parallel vindex = sequential vindex" ~count:40 arb_case
    (fun (inst, q) ->
      let ix = Index.create inst in
      let seq = Eval.eval ~vindex:(Vindex.create ix) ix q in
      List.for_all
        (fun pool ->
          Bitset.equal seq (Eval.eval ~vindex:(Vindex.create ?pool ix) ?pool ix q))
        pools)

(* white-pages instances plus a batch of rogue root entries: plenty of
   content, structure, single-valued and key violations, whose reported
   order must not depend on the pool *)
let gen_wp_instance =
  QCheck.Gen.(
    map2
      (fun seed units ->
        let inst =
          WP.generate ~seed ~units ~persons_per_unit:(5 + (seed mod 10)) ()
        in
        let base = Instance.fresh_id inst in
        let rogue i =
          Entry.make ~id:(base + i)
            ~rdn:(Printf.sprintf "uid=rogue%d" i)
            ~classes:(Oclass.set_of_list [ "person"; "top" ])
            [ (Attr.of_string "uid", Value.String (Printf.sprintf "r%d" (i / 2))) ]
        in
        let rec add i inst =
          if i = 0 then inst else add (i - 1) (Instance.add_root_exn (rogue i) inst)
        in
        add (seed mod 6) inst)
      (int_bound 1_000_000)
      (int_range 2 8))

let arb_wp =
  QCheck.make
    ~print:(fun inst -> Printf.sprintf "size=%d" (Instance.size inst))
    gen_wp_instance

let prop_legality_par_equiv =
  QCheck.Test.make ~name:"parallel Legality.check = sequential (order included)"
    ~count:25 arb_wp (fun inst ->
      let seq = Legality.check WP.schema inst in
      List.for_all (fun pool -> Legality.check ?pool WP.schema inst = seq) pools)

let prop_index_par_equiv =
  QCheck.Test.make ~name:"parallel Index.create = sequential" ~count:40
    (QCheck.make
       ~print:(fun inst -> Printf.sprintf "size=%d" (Instance.size inst))
       gen_instance)
    (fun inst ->
      let seq = Index.create inst in
      List.for_all
        (fun pool ->
          let ix = Index.create ?pool inst in
          Index.n ix = Index.n seq
          && List.for_all
               (fun r ->
                 Index.id_of_rank ix r = Index.id_of_rank seq r
                 && Entry.id (Index.entry_of_rank ix r)
                    = Entry.id (Index.entry_of_rank seq r)
                 && Index.parent_rank ix r = Index.parent_rank seq r
                 && Index.extent_of_rank ix r = Index.extent_of_rank seq r)
               (List.init (Index.n ix) Fun.id))
        pools)

(* --- suite --------------------------------------------------------------- *)

let test_shutdown_pools () =
  List.iter Pool.shutdown [ pool1; pool2; pool3 ];
  check "run after shutdown raises" true
    (try
       Pool.run pool3 (Array.init 3 (fun _ () -> ()));
       false
     with Invalid_argument _ -> true)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "run" `Quick test_pool_run;
          Alcotest.test_case "exception" `Quick test_pool_exception;
          Alcotest.test_case "nested" `Quick test_pool_nested;
          Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
          Alcotest.test_case "chunks" `Quick test_pool_chunks;
          Alcotest.test_case "map" `Quick test_pool_map;
        ] );
      ( "bitset-words",
        [
          Alcotest.test_case "union_into" `Quick test_union_into;
          Alcotest.test_case "blit_words" `Quick test_blit_words;
          Alcotest.test_case "iter_range" `Quick test_iter_range;
        ] );
      ( "par-equiv",
        [
          qt prop_eval_par_equiv;
          qt prop_vindex_par_equiv;
          qt prop_legality_par_equiv;
          qt prop_index_par_equiv;
        ] );
      ("teardown", [ Alcotest.test_case "shutdown" `Quick test_shutdown_pools ]);
    ]
