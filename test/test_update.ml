(* Updates and incremental legality (Section 4): operation discipline,
   transaction decomposition (Theorem 4.1), the Figure-5 testability table
   and Δ-checks (Theorem 4.2), and the Monitor. *)

open Bounds_model
open Bounds_core
module WP = Bounds_workload.White_pages
module SS = Structure_schema

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Attr.of_string
let c = Oclass.of_string
let wp_schema = WP.schema
let wp = WP.instance

let person ?(id = 100) ?(uid = "u100") ?(classes = [ "person"; "top" ]) () =
  Entry.make ~id
    ~classes:(Oclass.set_of_list classes)
    [ (a "name", Value.String "n"); (a "uid", Value.String uid) ]

let unit_entry ?(id = 100) ?(ou = "newunit") () =
  Entry.make ~id
    ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
    [ (a "ou", Value.String ou) ]

(* --- Update ops ----------------------------------------------------------- *)

let test_apply_op () =
  let inst = Result.get_ok (Update.apply_op wp (Update.Insert { parent = Some 3; entry = person () })) in
  check_int "inserted" 7 (Instance.size inst);
  check "delete leaf ok" true
    (Result.is_ok (Update.apply_op inst (Update.Delete 100)));
  check "delete non-leaf fails" true
    (Result.is_error (Update.apply_op inst (Update.Delete 1)));
  check "insert duplicate id fails" true
    (Result.is_error
       (Update.apply_op inst (Update.Insert { parent = None; entry = person ~id:3 () })));
  check "insert under missing parent fails" true
    (Result.is_error
       (Update.apply_op inst (Update.Insert { parent = Some 999; entry = person ~id:200 () })))

let test_ops_of_subtree_roundtrip () =
  let sub = Result.get_ok (Instance.subtree wp 1) in
  let base = Result.get_ok (Instance.remove_subtree 1 wp) in
  let ops = Update.ops_of_subtree ~parent:(Some 0) sub in
  let rebuilt = Result.get_ok (Update.apply base ops) in
  check "rebuilt equals original" true (Instance.equal rebuilt wp);
  (* deletion sequence is leaf-first and valid *)
  let del_ops = Update.ops_of_deletion wp 1 in
  let gone = Result.get_ok (Update.apply wp del_ops) in
  check "subtree gone" true (Instance.equal gone base)

(* --- Transaction decomposition (Theorem 4.1) ------------------------------- *)

let test_decompose_groups_inserts () =
  (* insert a unit and two persons under it: one subtree *)
  let u = unit_entry ~id:100 () in
  let ops =
    [
      Update.Insert { parent = Some 1; entry = u };
      Update.Insert { parent = Some 100; entry = person ~id:101 ~uid:"u101" () };
      Update.Insert { parent = Some 100; entry = person ~id:102 ~uid:"u102" () };
    ]
  in
  match Transaction.decompose wp ops with
  | Error m -> Alcotest.fail m
  | Ok [ Transaction.Insert_subtree { parent = Some 1; subtree } ] ->
      check_int "subtree size" 3 (Instance.size subtree)
  | Ok other ->
      Alcotest.failf "expected one insert, got %d updates" (List.length other)

let test_decompose_groups_deletes () =
  (* delete laks, suciu, then databases: one subtree deletion *)
  let ops = [ Update.Delete 4; Update.Delete 5; Update.Delete 3 ] in
  match Transaction.decompose wp ops with
  | Ok [ Transaction.Delete_subtree { root = 3 } ] -> ()
  | Ok _ -> Alcotest.fail "expected a single subtree deletion"
  | Error m -> Alcotest.fail m

let test_decompose_cancelling_ops () =
  (* insert then delete the same entry: net no-op *)
  let ops =
    [
      Update.Insert { parent = Some 3; entry = person ~id:100 () };
      Update.Delete 100;
    ]
  in
  match Transaction.decompose wp ops with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty decomposition"
  | Error m -> Alcotest.fail m

let test_decompose_rejects_moves () =
  (* delete laks then recreate it elsewhere with the same id *)
  let laks = Instance.entry wp 4 in
  let ops = [ Update.Delete 4; Update.Insert { parent = Some 1; entry = laks } ] in
  check "move rejected" true (Result.is_error (Transaction.decompose wp ops))

let test_transaction_check_accepts () =
  let ops =
    [
      Update.Insert { parent = Some 1; entry = unit_entry ~id:100 () };
      Update.Insert { parent = Some 100; entry = person ~id:101 ~uid:"u101" () };
    ]
  in
  match Transaction.check wp_schema wp ops with
  | Ok inst -> check_int "applied" 8 (Instance.size inst)
  | Error r -> Alcotest.failf "%a" (fun ppf -> Transaction.pp_rejection ppf) r

let test_transaction_check_rejects_intermediate () =
  (* the paper's Section 4.1 example, inverted: a unit with no person is
     illegal as a standalone insertion *)
  let ops = [ Update.Insert { parent = Some 1; entry = unit_entry ~id:100 () } ] in
  (match Transaction.check wp_schema wp ops with
  | Error (Transaction.Illegal { step; _ }) -> check_int "rejected at step 1" 1 step
  | Error (Transaction.Bad_ops m) -> Alcotest.fail m
  | Ok _ -> Alcotest.fail "should have been rejected");
  (* but together with its person it passes — exactly the granularity
     argument of Section 4.1 *)
  let ops =
    ops @ [ Update.Insert { parent = Some 100; entry = person ~id:101 ~uid:"u101" () } ]
  in
  check "combined ok" true (Result.is_ok (Transaction.check wp_schema wp ops))

(* Theorem 4.1 as a property: the final instance is legal iff every
   decomposed step preserves legality. *)
let arb_txn =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 100000) (int_bound 12))

let prop_theorem_41 =
  QCheck.Test.make ~name:"Theorem 4.1: stepwise legality = final legality" ~count:150
    arb_txn (fun (seed, n) ->
      let base = WP.generate ~seed ~units:3 ~persons_per_unit:2 () in
      let ops = Bounds_workload.Gen.random_ops ~seed:(seed + 1) ~n wp_schema base in
      let final = Result.get_ok (Update.apply base ops) in
      let final_legal = Legality.is_legal wp_schema final in
      match Transaction.check wp_schema base ops with
      | Ok inst -> final_legal && Instance.equal inst final
      | Error (Transaction.Illegal _) -> not final_legal
      | Error (Transaction.Bad_ops _) -> false)

(* --- Figure 5 testability table -------------------------------------------- *)

let test_figure5_table () =
  List.iter
    (fun rel -> check "insert testable" true (Incremental.testable_on_insert_req rel))
    [ SS.Child; SS.Descendant; SS.Parent; SS.Ancestor ];
  check "ch delete not testable" false (Incremental.testable_on_delete_req SS.Child);
  check "de delete not testable" false
    (Incremental.testable_on_delete_req SS.Descendant);
  check "pa delete testable" true (Incremental.testable_on_delete_req SS.Parent);
  check "an delete testable" true (Incremental.testable_on_delete_req SS.Ancestor);
  List.iter
    (fun f ->
      check "forb insert testable" true (Incremental.testable_on_insert_forb f);
      check "forb delete testable" true (Incremental.testable_on_delete_forb f))
    [ SS.F_child; SS.F_descendant ];
  (* Δ-query scopes: parent/ancestor insertions read D+Δ, others Δ-only *)
  let scopes rel = List.map snd (Incremental.delta_query_insert (c "a", rel, c "b")) in
  check "child all delta" true
    (List.for_all (( = ) Incremental.On_delta) (scopes SS.Child));
  check "parent touches updated" true
    (List.mem Incremental.On_updated (scopes SS.Parent));
  let dscopes rel =
    List.map snd (Incremental.delta_query_delete_req (c "a", rel, c "b"))
  in
  check "pa delete no check" true
    (List.for_all (( = ) Incremental.On_empty) (dscopes SS.Parent));
  check "ch delete full recheck" true
    (List.for_all (( = ) Incremental.On_updated) (dscopes SS.Child))

(* --- incremental insert / delete vs full recheck ---------------------------- *)

let test_incremental_insert_examples () =
  (* legal: unit + person inserted together under attLabs *)
  let delta =
    Instance.empty
    |> Instance.add_root_exn (unit_entry ~id:100 ())
    |> Instance.add_child_exn ~parent:100 (person ~id:101 ~uid:"u101" ())
  in
  (match Incremental.check_insert wp_schema ~base:wp ~parent:(Some 1) ~delta with
  | Ok [] -> ()
  | Ok viols ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map Violation.to_string viols))
  | Error m -> Alcotest.fail m);
  (* illegal: unit alone violates orgGroup ->> person *)
  let delta_unit = Instance.add_root_exn (unit_entry ~id:100 ()) Instance.empty in
  (match Incremental.check_insert wp_schema ~base:wp ~parent:(Some 1) ~delta:delta_unit with
  | Ok (_ :: _) -> ()
  | Ok [] -> Alcotest.fail "should have violations"
  | Error m -> Alcotest.fail m);
  (* illegal: the Section 4.2 example — unit under a person *)
  (match Incremental.check_insert wp_schema ~base:wp ~parent:(Some 5) ~delta with
  | Ok viols ->
      check "parent rel violated" true
        (List.exists
           (function
             | Violation.Unsatisfied_rel { rel = (_, SS.Parent, _); _ } -> true
             | _ -> false)
           viols);
      check "forbidden person child violated" true
        (List.exists
           (function Violation.Forbidden_rel _ -> true | _ -> false)
           viols)
  | Error m -> Alcotest.fail m)

let test_incremental_insert_rejects_bad_shape () =
  check "empty delta" true
    (Result.is_error
       (Incremental.check_insert wp_schema ~base:wp ~parent:None ~delta:Instance.empty));
  let two_roots =
    Instance.empty
    |> Instance.add_root_exn (person ~id:100 ())
    |> Instance.add_root_exn (person ~id:101 ~uid:"u101" ())
  in
  check "multi-rooted delta" true
    (Result.is_error
       (Incremental.check_insert wp_schema ~base:wp ~parent:None ~delta:two_roots));
  check "bad parent" true
    (Result.is_error
       (Incremental.check_insert wp_schema ~base:wp ~parent:(Some 999)
          ~delta:(Instance.add_root_exn (person ~id:100 ()) Instance.empty)))

let test_incremental_delete_examples () =
  (* deleting suciu is fine (laks remains under databases) *)
  (match Incremental.check_delete wp_schema ~base:wp ~root:5 with
  | Ok [] -> ()
  | Ok v ->
      Alcotest.failf "unexpected: %s" (String.concat "; " (List.map Violation.to_string v))
  | Error m -> Alcotest.fail m);
  (* deleting the whole databases subtree leaves attLabs without a person
     descendant *)
  (match Incremental.check_delete wp_schema ~base:wp ~root:3 with
  | Ok viols ->
      check "attLabs violated" true
        (List.exists
           (function
             | Violation.Unsatisfied_rel { entry = 1; rel = (_, SS.Descendant, _) } ->
                 true
             | _ -> false)
           viols)
  | Error m -> Alcotest.fail m);
  (* deleting armstrong is fine; deleting armstrong after databases would
     kill the last person, caught by the required-class count *)
  let no_dbs = Result.get_ok (Instance.remove_subtree 3 wp) in
  (match Incremental.check_delete wp_schema ~base:no_dbs ~root:2 with
  | Ok viols ->
      check "required class person" true
        (List.exists
           (function
             | Violation.Missing_required_class { cls } -> Oclass.equal cls (c "person")
             | _ -> false)
           viols)
  | Error m -> Alcotest.fail m)

(* Property: incremental insert verdict == full-check verdict on D+Δ. *)
let arb_ins =
  QCheck.make
    ~print:(fun (seed, units, dsize) ->
      Printf.sprintf "seed=%d units=%d dsize=%d" seed units dsize)
    QCheck.Gen.(triple (int_bound 100000) (int_range 1 5) (int_range 1 8))

let random_wp_delta ~seed ~size ~first_id =
  (* a random single-rooted white-pages-flavoured subtree: a unit root with
     persons/subunits below, or a lone person *)
  let rng = Random.State.make [| seed; 5 |] in
  if size = 1 && Random.State.bool rng then
    Instance.add_root_exn
      (person ~id:first_id ~uid:(Printf.sprintf "d%d" first_id) ())
      Instance.empty
  else begin
    let inst = ref (Instance.add_root_exn (unit_entry ~id:first_id ~ou:(Printf.sprintf "ou%d" first_id) ()) Instance.empty) in
    let units = ref [ first_id ] in
    for k = 1 to size - 1 do
      let id = first_id + k in
      let parent = List.nth !units (Random.State.int rng (List.length !units)) in
      if Random.State.int rng 3 = 0 then begin
        inst :=
          Instance.add_child_exn ~parent
            (unit_entry ~id ~ou:(Printf.sprintf "ou%d" id) ())
            !inst;
        units := id :: !units
      end
      else
        inst :=
          Instance.add_child_exn ~parent
            (person ~id ~uid:(Printf.sprintf "d%d" id) ())
            !inst
    done;
    !inst
  end

let prop_incremental_insert =
  QCheck.Test.make ~name:"incremental insert = full recheck" ~count:200 arb_ins
    (fun (seed, units, dsize) ->
      let base = WP.generate ~seed ~units ~persons_per_unit:2 () in
      let delta = random_wp_delta ~seed:(seed + 1) ~size:dsize ~first_id:(Instance.fresh_id base) in
      let rng = Random.State.make [| seed; 9 |] in
      let ids = Instance.ids base in
      let parent =
        if Random.State.int rng 8 = 0 then None
        else Some (List.nth ids (Random.State.int rng (List.length ids)))
      in
      let inc =
        match Incremental.check_insert wp_schema ~base ~parent ~delta with
        | Ok v -> v
        | Error m -> failwith m
      in
      let full =
        Legality.check ~extensions:false wp_schema
          (Result.get_ok (Instance.graft ~parent delta base))
      in
      (inc = []) = (full = []))

let prop_incremental_delete =
  QCheck.Test.make ~name:"incremental delete = full recheck" ~count:200
    (QCheck.make
       ~print:(fun (seed, units) -> Printf.sprintf "seed=%d units=%d" seed units)
       QCheck.Gen.(pair (int_bound 100000) (int_range 1 5)))
    (fun (seed, units) ->
      let base = WP.generate ~seed ~units ~persons_per_unit:2 () in
      let rng = Random.State.make [| seed; 13 |] in
      let ids = Instance.ids base in
      let root = List.nth ids (Random.State.int rng (List.length ids)) in
      let inc =
        match Incremental.check_delete wp_schema ~base ~root with
        | Ok v -> v
        | Error m -> failwith m
      in
      let full =
        Legality.check ~extensions:false wp_schema
          (Result.get_ok (Instance.remove_subtree root base))
      in
      (inc = []) = (full = []))

(* --- Monitor ----------------------------------------------------------------- *)

let test_monitor_lifecycle () =
  let m = Result.get_ok (Monitor.create wp_schema wp) in
  check_int "person count" 3 (Monitor.class_count m (c "person"));
  check_int "orggroup count" 3 (Monitor.class_count m (c "orggroup"));
  (* legal insert *)
  let delta =
    Instance.add_root_exn (person ~id:100 ~uid:"fresh1" ()) Instance.empty
  in
  let m, _ = Result.get_ok (Monitor.insert_subtree ~parent:(Some 3) delta m) in
  check_int "person count bumped" 4 (Monitor.class_count m (c "person"));
  check_int "size" 7 (Instance.size (Monitor.instance m));
  (* illegal insert rejected, monitor unchanged *)
  let bad = Instance.add_root_exn (unit_entry ~id:200 ()) Instance.empty in
  (match Monitor.insert_subtree ~parent:(Some 1) bad m with
  | Error (_ :: _) -> ()
  | _ -> Alcotest.fail "should reject");
  check_int "unchanged" 7 (Instance.size (Monitor.instance m));
  (* legal delete *)
  let m, _ = Result.get_ok (Monitor.delete_subtree 100 m) in
  check_int "person count restored" 3 (Monitor.class_count m (c "person"))

let test_monitor_rejects_illegal_base () =
  let bad = Instance.add_root_exn (unit_entry ~id:100 ()) wp in
  check "illegal base" true (Result.is_error (Monitor.create wp_schema bad))

let test_monitor_key_enforcement () =
  let m = Result.get_ok (Monitor.create wp_schema wp) in
  let dup = Instance.add_root_exn (person ~id:100 ~uid:"laks" ()) Instance.empty in
  (match Monitor.insert_subtree ~parent:(Some 3) dup m with
  | Error viols ->
      check "duplicate key caught" true
        (List.exists
           (function Violation.Duplicate_key _ -> true | _ -> false)
           viols)
  | Ok _ -> Alcotest.fail "key violation missed");
  (* delete laks then reuse the uid: must now be accepted *)
  let m, _ = Result.get_ok (Monitor.delete_subtree 4 m) in
  check "uid freed" true (Result.is_ok (Monitor.insert_subtree ~parent:(Some 3) dup m))

let test_monitor_transaction () =
  let m = Result.get_ok (Monitor.create wp_schema wp) in
  let ops =
    [
      Update.Insert { parent = Some 1; entry = unit_entry ~id:100 () };
      Update.Insert { parent = Some 100; entry = person ~id:101 ~uid:"u101" () };
      Update.Delete 5;
    ]
  in
  (match Monitor.apply ops m with
  | Ok (m', _) ->
      check_int "size" 7 (Instance.size (Monitor.instance m'));
      check "legal" true (Legality.is_legal wp_schema (Monitor.instance m'))
  | Error r -> Alcotest.failf "%a" (fun ppf -> Monitor.pp_rejection ppf) r);
  (* rejected transaction leaves monitor intact *)
  let bad_ops = [ Update.Delete 4; Update.Delete 5; Update.Delete 3; Update.Delete 2 ] in
  (match Monitor.apply bad_ops m with
  | Error (Monitor.Illegal _) -> ()
  | _ -> Alcotest.fail "should reject (kills all persons)");
  check_int "intact" 6 (Instance.size (Monitor.instance m))

(* Property: a Monitor fed random transactions accepts exactly those whose
   full recheck is legal, and its instance always stays legal. *)
let prop_monitor_agrees =
  QCheck.Test.make ~name:"monitor accepts iff full recheck legal" ~count:100 arb_txn
    (fun (seed, n) ->
      let base = WP.generate ~seed ~units:3 ~persons_per_unit:2 () in
      let m = Result.get_ok (Monitor.create wp_schema base) in
      let ops = Bounds_workload.Gen.random_ops ~seed:(seed + 2) ~n wp_schema base in
      let final = Result.get_ok (Update.apply base ops) in
      match Monitor.apply ops m with
      | Ok (m', _) ->
          Legality.is_legal wp_schema (Monitor.instance m')
          && Instance.equal (Monitor.instance m') final
      | Error (Monitor.Illegal _) -> not (Legality.is_legal wp_schema final)
      | Error (Monitor.Bad_ops _) -> false)

let test_monitor_modify () =
  let m = Result.get_ok (Monitor.create wp_schema wp) in
  (* a content edit within bounds *)
  let m =
    Result.get_ok
      (Monitor.modify_entry 4
         (Entry.add_value (a "mail") (Value.String "laks@ubc.ca"))
         m)
  in
  check_int "three mails now" 3
    (List.length (Entry.values (Instance.entry (Monitor.instance m) 4) (a "mail")));
  check "still legal" true (Legality.is_legal wp_schema (Monitor.instance m));
  (* removing a required attribute is rejected *)
  (match Monitor.modify_entry 4 (Entry.remove_attr (a "name")) m with
  | Error viols ->
      check "missing name caught" true
        (List.exists
           (function Violation.Missing_required_attr _ -> true | _ -> false)
           viols)
  | Ok _ -> Alcotest.fail "should reject");
  (* taking someone else's key value is rejected *)
  (match
     Monitor.modify_entry 5
       (fun e ->
         Entry.remove_attr (a "uid") e
         |> Entry.add_value (a "uid") (Value.String "laks"))
       m
   with
  | Error viols ->
      check "duplicate key caught" true
        (List.exists
           (function Violation.Duplicate_key _ -> true | _ -> false)
           viols)
  | Ok _ -> Alcotest.fail "should reject");
  (* an entry may re-assert its own key value *)
  let m =
    Result.get_ok
      (Monitor.modify_entry 5
         (fun e ->
           Entry.remove_attr (a "uid") e
           |> Entry.add_value (a "uid") (Value.String "suciu"))
         m)
  in
  (* ... and once renamed, the old value is free for others *)
  let m =
    Result.get_ok
      (Monitor.modify_entry 5
         (fun e ->
           Entry.remove_attr (a "uid") e
           |> Entry.add_value (a "uid") (Value.String "dan"))
         m)
  in
  check "freed key reusable" true
    (Result.is_ok
       (Monitor.modify_entry 2
          (fun e ->
            Entry.remove_attr (a "uid") e
            |> Entry.add_value (a "uid") (Value.String "suciu"))
          m));
  (* class-set changes are out of scope for modify *)
  Alcotest.check_raises "class change rejected"
    (Invalid_argument
       "Monitor.modify_entry: attribute-level modification must preserve the class \
        set (use delete + insert to reclassify)")
    (fun () -> ignore (Monitor.modify_entry 2 (Entry.add_class (c "online")) m))

(* Integration soak: a directory lives through schema-spec round-trips,
   LDIF round-trips, and a long stream of random transactions guarded by
   the monitor — the instance must stay legal at every step and agree
   with an unguarded replay of the accepted transactions. *)
let test_soak () =
  (* the schema itself round-trips through its textual form *)
  let schema = Spec_parser.parse_exn (Spec_printer.to_string wp_schema) in
  Alcotest.(check bool) "schema roundtrip" true (Schema.equal schema wp_schema);
  let base = WP.generate ~seed:2026 ~units:8 ~persons_per_unit:4 () in
  let m = ref (Result.get_ok (Monitor.create schema base)) in
  let replay = ref base in
  let accepted = ref 0 and rejected = ref 0 in
  for round = 1 to 40 do
    let ops =
      Bounds_workload.Gen.random_ops ~seed:(round * 31) ~n:(1 + (round mod 6))
        schema (Monitor.instance !m)
    in
    (match Monitor.apply ops !m with
    | Ok (m', _) ->
        incr accepted;
        m := m';
        replay := Result.get_ok (Update.apply !replay ops)
    | Error (Monitor.Illegal _) -> incr rejected
    | Error (Monitor.Bad_ops msg) -> Alcotest.fail msg);
    (* invariant: the guarded instance is always fully legal *)
    if round mod 10 = 0 then
      Alcotest.(check bool)
        (Printf.sprintf "legal after round %d" round)
        true
        (Legality.is_legal schema (Monitor.instance !m));
    (* periodic LDIF round-trip preserves the instance *)
    if round mod 20 = 0 then begin
      let ldif = Bounds_codec.Ldif.to_string (Monitor.instance !m) in
      let back = Bounds_codec.Ldif.parse_exn ~typing:schema.Schema.typing ldif in
      Alcotest.(check bool)
        (Printf.sprintf "ldif legal after round %d" round)
        true
        (Legality.is_legal schema back)
    end
  done;
  Alcotest.(check bool) "replay agrees" true
    (Instance.equal !replay (Monitor.instance !m));
  Alcotest.(check bool) "exercised both outcomes" true (!accepted > 0 && !rejected > 0);
  (* finally, evolve the schema over the survivor *)
  let migration =
    Result.get_ok
      (Evolution.migrate
         [
           Evolution.Add_allowed_attribute (c "person", a "pager");
           Evolution.Add_aux_class (c "contractor");
           Evolution.Allow_aux { core = c "person"; aux = c "contractor" };
         ]
         schema (Monitor.instance !m))
  in
  Alcotest.(check bool) "lightweight migration" false migration.Evolution.revalidated;
  Alcotest.(check bool) "still legal under evolved schema" true
    (Legality.is_legal migration.Evolution.schema (Monitor.instance !m))

let () =
  Alcotest.run "update"
    [
      ( "ops",
        [
          Alcotest.test_case "apply discipline" `Quick test_apply_op;
          Alcotest.test_case "subtree ops roundtrip" `Quick test_ops_of_subtree_roundtrip;
        ] );
      ( "transaction",
        [
          Alcotest.test_case "groups inserts" `Quick test_decompose_groups_inserts;
          Alcotest.test_case "groups deletes" `Quick test_decompose_groups_deletes;
          Alcotest.test_case "cancelling ops" `Quick test_decompose_cancelling_ops;
          Alcotest.test_case "rejects moves" `Quick test_decompose_rejects_moves;
          Alcotest.test_case "check accepts" `Quick test_transaction_check_accepts;
          Alcotest.test_case "check rejects intermediate" `Quick
            test_transaction_check_rejects_intermediate;
          QCheck_alcotest.to_alcotest prop_theorem_41;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "figure 5 table" `Quick test_figure5_table;
          Alcotest.test_case "insert examples" `Quick test_incremental_insert_examples;
          Alcotest.test_case "insert shape errors" `Quick
            test_incremental_insert_rejects_bad_shape;
          Alcotest.test_case "delete examples" `Quick test_incremental_delete_examples;
          QCheck_alcotest.to_alcotest prop_incremental_insert;
          QCheck_alcotest.to_alcotest prop_incremental_delete;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "lifecycle" `Quick test_monitor_lifecycle;
          Alcotest.test_case "rejects illegal base" `Quick
            test_monitor_rejects_illegal_base;
          Alcotest.test_case "key enforcement" `Quick test_monitor_key_enforcement;
          Alcotest.test_case "transactions" `Quick test_monitor_transaction;
          Alcotest.test_case "attribute-level modify" `Quick test_monitor_modify;
          QCheck_alcotest.to_alcotest prop_monitor_agrees;
        ] );
      ("integration", [ Alcotest.test_case "soak" `Slow test_soak ]);
    ]
