(* LDIF reader/writer tests. *)

open Bounds_model

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let typing =
  Typing.default
  |> Typing.declare_exn (Attr.of_string "age") Atype.T_int
  |> Typing.declare_exn (Attr.of_string "active") Atype.T_bool

let sample_ldif =
  {|# a small directory
dn: o=att
objectClass: organization
objectClass: top
o: att

dn: ou=research,o=att
objectClass: orgUnit
objectClass: top
ou: research

dn: uid=laks,ou=research,o=att
objectClass: person
objectClass: top
uid: laks
age: 42
active: TRUE
mail: laks@cs.concordia.ca
mail: laks@cse.iitb.ernet.in
|}

let test_parse_basic () =
  let inst = Bounds_codec.Ldif.parse_exn ~typing sample_ldif in
  check_int "three entries" 3 (Instance.size inst);
  let laks = Option.get (Instance.resolve_dn inst "uid=laks,ou=research,o=att") in
  let e = Instance.entry inst laks in
  check "person" true (Entry.has_class e (Oclass.of_string "person"));
  check "typed int" true
    (Entry.values e (Attr.of_string "age") = [ Value.Int 42 ]);
  check "typed bool" true
    (Entry.values e (Attr.of_string "active") = [ Value.Bool true ]);
  check_int "two mails" 2 (List.length (Entry.values e (Attr.of_string "mail")));
  check "hierarchy" true
    (Instance.parent inst laks = Instance.resolve_dn inst "ou=research,o=att");
  check "root" true
    (Instance.parent inst (Option.get (Instance.resolve_dn inst "o=att")) = None)

let test_parse_continuation () =
  let ldif = "dn: o=att\nobjectClass: top\no: a very\n  long name\n" in
  let inst = Bounds_codec.Ldif.parse_exn ~typing ldif in
  let e = Instance.entry inst 0 in
  check "folded" true
    (Entry.values e (Attr.of_string "o") = [ Value.String "a very long name" ])

let test_parse_base64 () =
  (* "hello world" *)
  let ldif = "dn: o=att\nobjectClass: top\ndescription:: aGVsbG8gd29ybGQ=\n" in
  let inst = Bounds_codec.Ldif.parse_exn ~typing ldif in
  let e = Instance.entry inst 0 in
  check "decoded" true
    (Entry.values e (Attr.of_string "description") = [ Value.String "hello world" ])

let test_parse_errors () =
  let err s =
    match Bounds_codec.Ldif.parse ~typing s with
    | Error _ -> true
    | Ok _ -> false
  in
  check "no dn first" true (err "objectClass: top\n");
  check "orphan parent" true (err "dn: ou=a,o=missing\nobjectClass: top\n");
  check "no objectclass" true (err "dn: o=att\no: att\n");
  check "bad type" true (err "dn: o=att\nobjectClass: top\nage: forty\n");
  check "bad base64" true (err "dn: o=att\nobjectClass: top\nx:: !!!!\n");
  (* error carries a line number *)
  (match Bounds_codec.Ldif.parse ~typing "dn: o=att\nobjectClass: top\nage: forty\n" with
  | Error e -> check_int "line" 1 e.Bounds_codec.Ldif.line
  | Ok _ -> Alcotest.fail "expected error")

let test_roundtrip () =
  let inst = Bounds_codec.Ldif.parse_exn ~typing sample_ldif in
  let inst' = Bounds_codec.Ldif.parse_exn ~typing (Bounds_codec.Ldif.to_string inst) in
  check "equal" true (Instance.equal inst inst')

let test_roundtrip_weird_values () =
  let e =
    Entry.make ~id:0 ~rdn:"o=x"
      ~classes:(Oclass.Set.singleton Oclass.top)
      [
        (Attr.of_string "a", Value.String " leading space");
        (Attr.of_string "b", Value.String "colon: value");
        (Attr.of_string "c", Value.String "uni\xc3\xa9code");
        (Attr.of_string "d", Value.String "");
      ]
  in
  let inst = Instance.add_root_exn e Instance.empty in
  let inst' =
    Bounds_codec.Ldif.parse_exn ~typing:Typing.default
      (Bounds_codec.Ldif.to_string inst)
  in
  check "equal" true (Instance.equal inst inst')

(* LDIF does not carry entry ids (re-parsing numbers entries in document
   order), so round-trips are compared id-agnostically: by the map from
   distinguished name to entry content. *)
let canonical inst =
  Instance.fold
    (fun e acc ->
      let key = String.lowercase_ascii (Instance.dn inst (Entry.id e)) in
      let payload =
        ( List.map Oclass.to_string (Oclass.Set.elements (Entry.classes e)),
          List.sort compare
            (List.map
               (fun (at, v) -> (Attr.to_string at, Value.to_string v))
               (Entry.stored_pairs e)) )
      in
      (key, payload) :: acc)
    inst []
  |> List.sort compare

let test_roundtrip_white_pages () =
  let wp = Bounds_workload.White_pages.instance in
  let out = Bounds_codec.Ldif.to_string wp in
  let back =
    Bounds_codec.Ldif.parse_exn ~typing:Bounds_workload.White_pages.schema.typing out
  in
  check "equal modulo ids" true (canonical wp = canonical back);
  let laks =
    Option.get (Instance.resolve_dn back "uid=laks,ou=databases,ou=attLabs,o=att")
  in
  check_str "dn preserved" "uid=laks,ou=databases,ou=attLabs,o=att"
    (Instance.dn back laks)

let test_roundtrip_generated () =
  let inst = Bounds_workload.White_pages.generate ~units:20 ~persons_per_unit:5 () in
  let back =
    Bounds_codec.Ldif.parse_exn
      ~typing:Bounds_workload.White_pages.schema.typing
      (Bounds_codec.Ldif.to_string inst)
  in
  check "equal modulo ids" true (canonical inst = canonical back)

(* Property: random content-legal instances round-trip through LDIF
   (compared id-agnostically, since LDIF does not carry entry ids). *)
let prop_ldif_roundtrip =
  QCheck.Test.make ~name:"ldif roundtrip on random instances" ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let schema = Bounds_workload.White_pages.schema in
      let inst =
        Bounds_workload.Gen.content_legal_forest ~seed ~size:(1 + (seed mod 40))
          schema
      in
      let back =
        Bounds_codec.Ldif.parse_exn
          ~typing:schema.Bounds_core.Schema.typing
          (Bounds_codec.Ldif.to_string inst)
      in
      canonical inst = canonical back)

(* Property: instances whose values are assembled from codec edge-case
   fragments (leading/trailing blanks, CRLF, base64-alphabet text, NUL,
   high bytes) survive the LDIF round-trip byte-for-byte. *)
let prop_ldif_adversarial =
  QCheck.Test.make ~name:"ldif roundtrip on adversarial values" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000))
    (fun seed ->
      let inst =
        Bounds_workload.Gen.adversarial_forest ~seed ~size:(1 + (seed mod 10)) ()
      in
      let back =
        Bounds_codec.Ldif.parse_exn ~typing:Typing.default
          (Bounds_codec.Ldif.to_string inst)
      in
      canonical inst = canonical back)

(* --- base64 vectors --------------------------------------------------- *)

let b64_decode = Bounds_codec.Ldif.b64_decode
let b64_encode = Bounds_codec.Ldif.b64_encode

let test_b64_vectors () =
  (* RFC 4648 §10 test vectors, both directions *)
  List.iter
    (fun (plain, coded) ->
      check_str ("encode " ^ plain) coded (b64_encode plain);
      check_str ("decode " ^ coded) plain (b64_decode coded))
    [
      ("", "");
      ("f", "Zg==");
      ("fo", "Zm8=");
      ("foo", "Zm9v");
      ("foob", "Zm9vYg==");
      ("fooba", "Zm9vYmE=");
      ("foobar", "Zm9vYmFy");
      ("\x00\xff ", "AP8g");
    ]

let test_b64_rejects_malformed () =
  let rejects label s =
    check label true
      (match b64_decode s with
      | (_ : string) -> false
      | exception Invalid_argument _ -> true)
  in
  rejects "bad length" "Zm9vY";
  rejects "non-alphabet byte" "Zm9%";
  rejects "embedded newline" "Zm\n9v";
  (* '=' padding is only legal in the final one or two positions *)
  rejects "padding mid-string" "Zg==Zg==";
  rejects "padding then data" "Zm=v";
  rejects "lone final padding misplaced" "Z==v";
  (* positioned error message *)
  check "error names the offset" true
    (match b64_decode "Zg==Zg==" with
    | (_ : string) -> false
    | exception Invalid_argument m ->
        (* the stray '=' is at offset 2 *)
        m = "stray base64 padding '=' at offset 2")

let prop_b64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip on random bytes" ~count:300
    QCheck.(string_of_size Gen.(int_bound 48))
    (fun s -> b64_decode (b64_encode s) = s)

let () =
  Alcotest.run "codec"
    [
      ( "ldif",
        [
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "continuation lines" `Quick test_parse_continuation;
          Alcotest.test_case "base64" `Quick test_parse_base64;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip weird values" `Quick
            test_roundtrip_weird_values;
          Alcotest.test_case "roundtrip white pages" `Quick test_roundtrip_white_pages;
          Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
          QCheck_alcotest.to_alcotest prop_ldif_roundtrip;
          QCheck_alcotest.to_alcotest prop_ldif_adversarial;
        ] );
      ( "base64",
        [
          Alcotest.test_case "rfc 4648 vectors" `Quick test_b64_vectors;
          Alcotest.test_case "rejects malformed" `Quick test_b64_rejects_malformed;
          QCheck_alcotest.to_alcotest prop_b64_roundtrip;
        ] );
    ]
