(* Consistency checking (Section 5): the inference rules of Figures 6-7,
   the examples from the paper's text, witness construction, and the
   soundness property (declared-consistent => constructed witness is
   legal). *)

open Bounds_model
open Bounds_core
module SS = Structure_schema

let check = Alcotest.(check bool)
let c = Oclass.of_string
let node x = Element.Cls (c x)

(* build a schema from a class tree description + structure elements *)
let mk_schema ?(tree = []) build =
  let classes =
    List.fold_left
      (fun cs (child, parent) ->
        Class_schema.add_core_exn (c child) ~parent:(c parent) cs)
      Class_schema.empty tree
  in
  let structure = build SS.empty in
  Schema.make_exn ~classes ~structure ()

let consistent schema = Consistency.is_consistent schema

let flat names = List.map (fun n -> (n, "top")) names

(* --- the paper's Section 5.1 examples -------------------------------------- *)

let test_simple_cycle_inconsistent () =
  (* c1•, c1 -> c2, c2 ->> c1 : no finite legal instance *)
  let s =
    mk_schema ~tree:(flat [ "c1"; "c2" ]) (fun s ->
        s |> SS.require_class (c "c1")
        |> SS.require (c "c1") SS.Child (c "c2")
        |> SS.require (c "c2") SS.Descendant (c "c1"))
  in
  check "inconsistent" false (consistent s)

let test_cycle_without_exists_is_consistent () =
  (* footnote 3: without c1• the cycle is satisfiable by avoidance *)
  let s =
    mk_schema ~tree:(flat [ "c1"; "c2" ]) (fun s ->
        s
        |> SS.require (c "c1") SS.Child (c "c2")
        |> SS.require (c "c2") SS.Descendant (c "c1"))
  in
  check "consistent" true (consistent s)

let test_cycle_through_class_hierarchy () =
  (* Section 5.1's second example: c1•, c3 -> c2, c5 ->> c4, with
     c1 <= c2, c3 <= c4, c5 <= c1 — wait, the paper has the cycle arise
     when c1 is a subclass of c2... we encode its spirit: the hierarchy
     routes the required edges into a loop.
       c1 <= c2?  No: paper says c1 sub of c2, c3 sub of c4, c5 sub of c1.
       Edges: c1• ; c3 ->ch c2 ; c5 ->>de c4.
     Hmm: with subclassing, c2's requirement comes from c3: an entry of
     c3 is also c4... Encode exactly and assert inconsistency. *)
  let s =
    mk_schema
      ~tree:[ ("c2", "top"); ("c1", "c2"); ("c4", "top"); ("c3", "c4"); ("c5", "c1") ]
      (fun s ->
        s |> SS.require_class (c "c1")
        |> SS.require (c "c3") SS.Child (c "c2")
        |> SS.require (c "c5") SS.Descendant (c "c4"))
  in
  (* c1• alone does not force anything here: c1 is not a source of a
     required edge (c3 and c5 are, and c1 is not a subclass of either).
     The paper's narrative abbreviates; the inconsistency needs the
     sources to apply.  We check the precise variant where they do:
     require exists c5 — a c5-entry is a c1 and hence c2; it needs a c4
     descendant, which as a c4... build the loop tightly below. *)
  check "this variant is consistent" true (consistent s);
  let s2 =
    mk_schema
      ~tree:[ ("c2", "top"); ("c1", "c2"); ("c3", "c1") ]
      (fun s ->
        (* c3 <= c1 <= c2 ; c2 ->> c3 requires every c2 (hence every c1,
           c3) to have a c3 descendant: infinite chain once one exists *)
        s |> SS.require_class (c "c1") |> SS.require (c "c2") SS.Descendant (c "c3"))
  in
  check "hierarchy-induced cycle inconsistent" false (consistent s2)

(* --- Section 5.2 contradiction example -------------------------------------- *)

let test_direct_contradiction () =
  (* c1•, c1 ->> c2, c1 -/->> c2 *)
  let s =
    mk_schema ~tree:(flat [ "c1"; "c2" ]) (fun s ->
        s |> SS.require_class (c "c1")
        |> SS.require (c "c1") SS.Descendant (c "c2")
        |> SS.forbid (c "c1") SS.F_descendant (c "c2"))
  in
  check "inconsistent" false (consistent s);
  (* without c1• it is satisfiable *)
  let s' =
    mk_schema ~tree:(flat [ "c1"; "c2" ]) (fun s ->
        s
        |> SS.require (c "c1") SS.Descendant (c "c2")
        |> SS.forbid (c "c1") SS.F_descendant (c "c2"))
  in
  check "consistent without exists" true (consistent s')

let test_contradiction_via_hierarchy () =
  (* forbidden on the superclass, required on the subclass *)
  let s =
    mk_schema
      ~tree:[ ("parent", "top"); ("child", "parent"); ("x", "top") ]
      (fun s ->
        s |> SS.require_class (c "child")
        |> SS.require (c "child") SS.Descendant (c "x")
        |> SS.forbid (c "parent") SS.F_descendant (c "x"))
  in
  check "inconsistent" false (consistent s)

(* --- specific rules ----------------------------------------------------------- *)

let test_loop_rule () =
  let s =
    mk_schema ~tree:(flat [ "a" ]) (fun s ->
        s |> SS.require_class (c "a") |> SS.require (c "a") SS.Descendant (c "a"))
  in
  check "self-descendant loop" false (consistent s);
  let s2 =
    mk_schema ~tree:(flat [ "a" ]) (fun s ->
        s |> SS.require_class (c "a") |> SS.require (c "a") SS.Ancestor (c "a"))
  in
  check "self-ancestor loop" false (consistent s2)

let test_child_forbidden_child () =
  let s =
    mk_schema ~tree:(flat [ "a"; "b" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Child (c "b")
        |> SS.forbid (c "a") SS.F_child (c "b"))
  in
  check "conflict-ch" false (consistent s)

let test_required_descendant_forbidden_child_ok () =
  (* a needs a b descendant but may not have a b child: satisfiable with
     an intermediate node *)
  let s =
    mk_schema ~tree:(flat [ "a"; "b" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Descendant (c "b")
        |> SS.forbid (c "a") SS.F_child (c "b"))
  in
  check "consistent via intermediate" true (consistent s);
  match Consistency.decide s with
  | Consistency.Consistent { witness; _ } ->
      check "witness legal" true (Legality.is_legal s witness);
      check "witness has >= 3 nodes" true (Instance.size witness >= 3)
  | Consistency.Inconsistent _ | Consistency.Unresolved _ ->
      Alcotest.fail "should be consistent with a witness"

let test_childless_top_blocks_descendants () =
  (* forbid a child top = a is childless; with a required descendant it
     must be inconsistent (forb-top + conflict) *)
  let s =
    mk_schema ~tree:(flat [ "a"; "b" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Descendant (c "b")
        |> SS.forbid (c "a") SS.F_child Oclass.top)
  in
  check "inconsistent" false (consistent s)

let test_parentless_target () =
  (* forbid top child b = b-entries are roots; requiring a to have a b
     descendant is then impossible *)
  let s =
    mk_schema ~tree:(flat [ "a"; "b" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Descendant (c "b")
        |> SS.forbid Oclass.top SS.F_child (c "b"))
  in
  check "inconsistent" false (consistent s)

let test_parenthood_rule () =
  (* a requires incomparable parents b and d: impossible (single parent) *)
  let s =
    mk_schema ~tree:(flat [ "a"; "b"; "d" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Parent (c "b")
        |> SS.require (c "a") SS.Parent (c "d"))
  in
  check "parenthood" false (consistent s);
  (* comparable parents are fine *)
  let s2 =
    mk_schema
      ~tree:[ ("b", "top"); ("d", "b"); ("a", "top") ]
      (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Parent (c "b")
        |> SS.require (c "a") SS.Parent (c "d"))
  in
  check "comparable parents ok" true (consistent s2)

let test_ancestorhood_rule () =
  (* two required incomparable ancestors that may not nest either way *)
  let s =
    mk_schema ~tree:(flat [ "a"; "b"; "d" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Ancestor (c "b")
        |> SS.require (c "a") SS.Ancestor (c "d")
        |> SS.forbid (c "b") SS.F_descendant (c "d")
        |> SS.forbid (c "d") SS.F_descendant (c "b"))
  in
  check "ancestorhood" false (consistent s);
  (* with one nesting allowed, consistent *)
  let s2 =
    mk_schema ~tree:(flat [ "a"; "b"; "d" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Ancestor (c "b")
        |> SS.require (c "a") SS.Ancestor (c "d")
        |> SS.forbid (c "b") SS.F_descendant (c "d"))
  in
  check "one direction ok" true (consistent s2)

let test_req_unsat_propagation () =
  (* b is unsatisfiable (self-loop); a requires a b child; a• *)
  let s =
    mk_schema ~tree:(flat [ "a"; "b" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Child (c "b")
        |> SS.require (c "b") SS.Descendant (c "b"))
  in
  check "unsat propagates to source" false (consistent s)

let test_ch_pa_conflict () =
  (* a must have a b child; every b needs an x parent; a and x
     incomparable *)
  let s =
    mk_schema ~tree:(flat [ "a"; "b"; "x" ]) (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Child (c "b")
        |> SS.require (c "b") SS.Parent (c "x"))
  in
  check "ch-pa conflict" false (consistent s);
  (* if x is a subclass of a, consistent: the witness a-node is labelled x *)
  let s2 =
    mk_schema
      ~tree:[ ("a", "top"); ("x", "a"); ("b", "top") ]
      (fun s ->
        s |> SS.require_class (c "a")
        |> SS.require (c "a") SS.Child (c "b")
        |> SS.require (c "b") SS.Parent (c "x"))
  in
  check "refinable" true (consistent s2);
  match Consistency.decide s2 with
  | Consistency.Consistent { witness; _ } ->
      check "witness legal" true (Legality.is_legal s2 witness)
  | Consistency.Inconsistent _ | Consistency.Unresolved _ ->
      Alcotest.fail "should be consistent with a witness"

(* --- proofs and witnesses ------------------------------------------------------ *)

let test_proof_tree () =
  let s =
    mk_schema ~tree:(flat [ "c1"; "c2" ]) (fun s ->
        s |> SS.require_class (c "c1")
        |> SS.require (c "c1") SS.Child (c "c2")
        |> SS.require (c "c2") SS.Descendant (c "c1"))
  in
  match Consistency.decide s with
  | Consistency.Inconsistent { proof; _ } ->
      check "concludes bottom" true (Element.equal proof.Inference.conclusion Element.bottom);
      (* leaves of the proof are axioms *)
      let rec leaves p =
        match p.Inference.premises with
        | [] -> [ p ]
        | ps -> List.concat_map leaves ps
      in
      check "all leaves are axioms" true
        (List.for_all (fun p -> p.Inference.rule = "axiom") (leaves proof));
      (* rendering works *)
      check "printable" true
        (String.length (Format.asprintf "%a" Inference.pp_proof proof) > 0)
  | Consistency.Consistent _ | Consistency.Unresolved _ ->
      Alcotest.fail "should be inconsistent"

let test_proof_checker () =
  let s =
    mk_schema ~tree:(flat [ "c1"; "c2" ]) (fun st ->
        st |> SS.require_class (c "c1")
        |> SS.require (c "c1") SS.Child (c "c2")
        |> SS.require (c "c2") SS.Descendant (c "c1"))
  in
  let inf = Inference.saturate s in
  let proof = Inference.explain inf Element.bottom in
  check "genuine proof accepted" true (Inference.check_proof inf proof);
  (* tampering: swap a leaf for a non-axiom *)
  let forged =
    {
      proof with
      Inference.premises =
        [
          {
            Inference.conclusion = Element.Exists (node "c2");
            rule = "axiom";
            premises = [];
          };
        ];
    }
  in
  check "forged axiom rejected" false (Inference.check_proof inf forged);
  (* unknown rule names are rejected *)
  let bad_rule = { proof with Inference.rule = "wishful-thinking" } in
  check "unknown rule rejected" false (Inference.check_proof inf bad_rule);
  (* proofs do not transfer to schemas that lack the axioms *)
  let other = mk_schema ~tree:(flat [ "c1"; "c2" ]) (fun st -> st) in
  check "axioms checked against the schema" false
    (Inference.check_proof (Inference.saturate other) proof)

let test_inference_api () =
  let s =
    mk_schema ~tree:[ ("person", "top"); ("researcher", "person") ] (fun st ->
        st |> SS.require (c "person") SS.Descendant (c "person") |> SS.require_class (c "researcher"))
  in
  let inf = Inference.saturate s in
  (* source-isa: researcher inherits person's requirement *)
  check "source-isa" true
    (Inference.is_derivable inf (Element.Req (node "researcher", SS.Descendant, node "person")));
  (* loop: person is unsat *)
  check "loop-derived unsat" true (Inference.class_unsat inf (node "person"));
  (* exists-up: researcher• gives person• *)
  check "exists-up" true (Inference.is_derivable inf (Element.Exists (node "person")));
  check "inconsistent overall" true (Inference.inconsistent inf)

let test_witness_white_pages () =
  match Consistency.decide Bounds_workload.White_pages.schema with
  | Consistency.Consistent { witness; _ } ->
      check "legal" true (Legality.is_legal Bounds_workload.White_pages.schema witness);
      (* witness has at least org, unit and person entries *)
      let has cls =
        Instance.fold (fun e acc -> acc || Entry.has_class e (c cls)) witness false
      in
      check "organization" true (has "organization");
      check "orgunit" true (has "orgunit");
      check "person" true (has "person")
  | Consistency.Inconsistent _ | Consistency.Unresolved _ ->
      Alcotest.fail "white pages schema is consistent"

let test_witness_den () =
  match Consistency.decide Bounds_workload.Den.schema with
  | Consistency.Consistent { witness; _ } ->
      check "legal" true (Legality.is_legal Bounds_workload.Den.schema witness)
  | Consistency.Inconsistent _ | Consistency.Unresolved _ ->
      Alcotest.fail "den schema is consistent"

let test_empty_schema_consistent () =
  match Consistency.decide Schema.empty with
  | Consistency.Consistent { witness; _ } ->
      check "empty witness suffices" true (Instance.size witness = 0)
  | Consistency.Inconsistent _ | Consistency.Unresolved _ ->
      Alcotest.fail "empty schema is consistent"

let test_witness_respects_keys () =
  (* two required classes whose entries share a required key attribute *)
  let classes =
    Class_schema.empty
    |> Class_schema.add_core_exn (c "a") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "b") ~parent:Oclass.top
  in
  let attributes =
    Attribute_schema.empty
    |> Attribute_schema.add_class_exn (c "a") ~required:[ Attr.of_string "uid" ]
    |> Attribute_schema.add_class_exn (c "b") ~required:[ Attr.of_string "uid" ]
  in
  let structure =
    SS.empty |> SS.require_class (c "a") |> SS.require_class (c "b")
  in
  let s =
    Schema.make_exn ~classes ~attributes ~structure ~keys:[ Attr.of_string "uid" ] ()
  in
  match Consistency.decide s with
  | Consistency.Consistent { witness; _ } ->
      check "legal with unique keys" true (Legality.is_legal s witness)
  | Consistency.Inconsistent _ | Consistency.Unresolved _ -> Alcotest.fail "consistent"

(* --- properties ------------------------------------------------------------------ *)

(* Soundness of the whole pipeline: on random schemas, whenever the
   inference system says "consistent", the chase must produce an instance
   that the independent legality checker accepts.  (This also exercises
   that the chase terminates and never trips Consistency.Incomplete.) *)
let arb_schema =
  QCheck.make
    ~print:(fun seed ->
      Spec_printer.to_string
        (Bounds_workload.Gen.random_schema ~seed ~n_classes:5 ~n_req:5 ~n_forb:3
           ~n_required_classes:2))
    QCheck.Gen.(int_bound 1_000_000)

let prop_consistent_implies_witness =
  QCheck.Test.make ~name:"consistent => witness legal (soundness)" ~count:500
    arb_schema (fun seed ->
      let s =
        Bounds_workload.Gen.random_schema ~seed ~n_classes:5 ~n_req:5 ~n_forb:3
          ~n_required_classes:2
      in
      match Consistency.decide s with
      | Consistency.Consistent { witness; _ } -> Legality.is_legal s witness
      | Consistency.Inconsistent { proof; _ } ->
          Element.equal proof.Inference.conclusion Element.bottom
      | Consistency.Unresolved _ ->
          (* allowed but rare: pinned by the deterministic coverage test *)
          true)

(* Inconsistency soundness: if ∅• is derived, no small instance generated
   from the witness machinery of a *relaxed* schema should satisfy it; we
   check a cheaper invariant — derived inconsistency must persist when
   adding more constraints (monotonicity). *)
let prop_inconsistency_monotone =
  QCheck.Test.make ~name:"inconsistency is monotone under added constraints"
    ~count:200 arb_schema (fun seed ->
      let s =
        Bounds_workload.Gen.random_schema ~seed ~n_classes:5 ~n_req:4 ~n_forb:2
          ~n_required_classes:2
      in
      if Consistency.is_consistent s then true
      else
        let s' =
          let structure =
            SS.require (c "c0") SS.Child (c "c1") s.Schema.structure
          in
          Schema.make_exn ~typing:s.Schema.typing ~attributes:s.Schema.attributes
            ~classes:s.Schema.classes ~structure ()
        in
        not (Consistency.is_consistent s'))

(* Deterministic coverage pin: over a fixed seed range, decide() must
   settle (witness or proof) essentially everything; the unresolved long
   tail of the greedy chase stays under 0.2%.  Seeds are fixed, so this
   is stable across runs — if a chase change regresses coverage, this
   fails. *)
let test_decide_coverage () =
  let total = 1500 in
  let unresolved = ref 0 in
  for seed = 0 to total - 1 do
    let s =
      Bounds_workload.Gen.random_schema ~seed ~n_classes:5 ~n_req:5 ~n_forb:3
        ~n_required_classes:2
    in
    match Consistency.decide s with
    | Consistency.Consistent { witness; _ } ->
        if not (Legality.is_legal s witness) then
          Alcotest.failf "illegal witness at seed %d" seed
    | Consistency.Inconsistent _ -> ()
    | Consistency.Unresolved _ -> incr unresolved
  done;
  if !unresolved > 3 then
    Alcotest.failf "coverage regression: %d unresolved of %d" !unresolved total

let () =
  Alcotest.run "consistency"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "cycle (5.1)" `Quick test_simple_cycle_inconsistent;
          Alcotest.test_case "cycle needs exists (footnote 3)" `Quick
            test_cycle_without_exists_is_consistent;
          Alcotest.test_case "cycle through hierarchy" `Quick
            test_cycle_through_class_hierarchy;
          Alcotest.test_case "contradiction (5.2)" `Quick test_direct_contradiction;
          Alcotest.test_case "contradiction via hierarchy" `Quick
            test_contradiction_via_hierarchy;
        ] );
      ( "rules",
        [
          Alcotest.test_case "loop" `Quick test_loop_rule;
          Alcotest.test_case "conflict-ch" `Quick test_child_forbidden_child;
          Alcotest.test_case "descendant via intermediate" `Quick
            test_required_descendant_forbidden_child_ok;
          Alcotest.test_case "childless top" `Quick test_childless_top_blocks_descendants;
          Alcotest.test_case "parentless target" `Quick test_parentless_target;
          Alcotest.test_case "parenthood" `Quick test_parenthood_rule;
          Alcotest.test_case "ancestorhood" `Quick test_ancestorhood_rule;
          Alcotest.test_case "req-unsat propagation" `Quick test_req_unsat_propagation;
          Alcotest.test_case "ch-pa conflict" `Quick test_ch_pa_conflict;
        ] );
      ( "proofs-witnesses",
        [
          Alcotest.test_case "proof tree" `Quick test_proof_tree;
          Alcotest.test_case "proof checker" `Quick test_proof_checker;
          Alcotest.test_case "inference api" `Quick test_inference_api;
          Alcotest.test_case "white pages witness" `Quick test_witness_white_pages;
          Alcotest.test_case "den witness" `Quick test_witness_den;
          Alcotest.test_case "empty schema" `Quick test_empty_schema_consistent;
          Alcotest.test_case "witness respects keys" `Quick test_witness_respects_keys;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_consistent_implies_witness;
          QCheck_alcotest.to_alcotest prop_inconsistency_monotone;
          Alcotest.test_case "decide coverage (fixed seeds)" `Slow
            test_decide_coverage;
        ] );
    ]
