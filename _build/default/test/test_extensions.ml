(* The library's extension surface: LDAP scoped search, schema evolution
   (Section 6.2), and schema-aware query simplification (Section 7
   outlook). *)

open Bounds_model
open Bounds_core
open Bounds_query
module WP = Bounds_workload.White_pages
module SS = Structure_schema

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ids = Alcotest.(check (list int))
let a = Attr.of_string
let c = Oclass.of_string

(* --- Search ---------------------------------------------------------------- *)

(* the Figure-1 instance: att(0) -> attLabs(1) -> databases(3) -> laks(4),
   suciu(5); att(0) -> armstrong(2) *)
let wp = WP.instance
let ix = Index.create wp
let person_f = Filter.class_eq (c "person")
let all_f = Filter.And []

let test_search_scopes () =
  check_ids "base on root" [ 0 ] (Search.search ix ~base:(Some 0) Search.Base all_f);
  check_ids "base no match" []
    (Search.search ix ~base:(Some 0) Search.Base person_f);
  check_ids "one-level of att" [ 1; 2 ]
    (Search.search ix ~base:(Some 0) Search.One_level all_f);
  check_ids "one-level persons of databases" [ 4; 5 ]
    (Search.search ix ~base:(Some 3) Search.One_level person_f);
  check_ids "subtree persons of attLabs" [ 4; 5 ]
    (Search.search ix ~base:(Some 1) Search.Subtree person_f);
  check_ids "subtree includes base" [ 0; 1; 3; 4; 5; 2 ]
    (Search.search ix ~base:(Some 0) Search.Subtree all_f);
  check_ids "whole forest" [ 2; 4; 5 ]
    (List.sort compare (Search.search ix ~base:None Search.Subtree person_f));
  check_ids "roots" [ 0 ] (Search.search ix ~base:None Search.Base all_f);
  check_int "count" 3 (Search.count ix ~base:None Search.Subtree person_f);
  check "missing base raises" true
    (try
       ignore (Search.search ix ~base:(Some 99) Search.Base all_f);
       false
     with Not_found -> true)

let test_search_vindex_agrees () =
  let vx = Vindex.create ix in
  List.iter
    (fun (base, scope, f) ->
      check "vindex = plain" true
        (Search.search ix ~base scope f = Search.search ~vindex:vx ix ~base scope f))
    [
      (Some 0, Search.Subtree, person_f);
      (Some 1, Search.One_level, all_f);
      (None, Search.Subtree, Filter.class_eq (c "orgunit"));
    ]

let test_search_scope_strings () =
  check "sub" true (Search.scope_of_string "subtree" = Ok Search.Subtree);
  check "one" true (Search.scope_of_string "ONE" = Ok Search.One_level);
  check "bad" true (Result.is_error (Search.scope_of_string "deep"));
  check "roundtrip" true
    (List.for_all
       (fun s -> Search.scope_of_string (Search.scope_to_string s) = Ok s)
       [ Search.Base; Search.One_level; Search.Subtree ])

(* --- Evolution ---------------------------------------------------------------- *)

let test_evolution_apply () =
  let s = WP.schema in
  (* lightweight: new allowed attribute *)
  let s1 =
    Result.get_ok (Evolution.apply (Evolution.Add_allowed_attribute (c "person", a "pager")) s)
  in
  check "pager allowed" true
    (Attr.Set.mem (a "pager") (Attribute_schema.allowed s1.Schema.attributes (c "person")));
  check "old attrs kept" true
    (Attr.Set.mem (a "uid") (Attribute_schema.required s1.Schema.attributes (c "person")));
  (* new auxiliary + association *)
  let s2 =
    Result.get_ok
      (Evolution.apply_all
         [
           Evolution.Add_aux_class (c "remote");
           Evolution.Allow_aux { core = c "person"; aux = c "remote" };
         ]
         s)
  in
  check "remote aux of person" true
    (Oclass.Set.mem (c "remote") (Class_schema.aux_of s2.Schema.classes (c "person")));
  (* errors *)
  check "unknown core" true
    (Result.is_error
       (Evolution.apply (Evolution.Allow_aux { core = c "ghost"; aux = c "online" }) s));
  check "drop absent rel" true
    (Result.is_error
       (Evolution.apply
          (Evolution.Drop_required_rel (c "person", SS.Child, c "person"))
          s));
  check "key stays single-valued" true
    (Result.is_error (Evolution.apply (Evolution.Drop_single_valued (a "uid")) s))

let test_evolution_structure_ops () =
  let s = WP.schema in
  let rel = (c "orggroup", SS.Descendant, c "person") in
  let s' = Result.get_ok (Evolution.apply (Evolution.Drop_required_rel rel) s) in
  check "rel dropped" false (SS.mem_required s'.Schema.structure rel);
  check "others kept" true
    (SS.mem_required s'.Schema.structure (c "orgunit", SS.Parent, c "orggroup"));
  check "forbidden kept" true
    (SS.mem_forbidden s'.Schema.structure (c "person", SS.F_child, Oclass.top));
  let s'' =
    Result.get_ok
      (Evolution.apply
         (Evolution.Forbid_rel (c "organization", SS.F_descendant, c "organization"))
         s')
  in
  check "forbid added" true
    (SS.mem_forbidden s''.Schema.structure
       (c "organization", SS.F_descendant, c "organization"))

let test_evolution_classification () =
  List.iter
    (fun (op, expect) ->
      check (Format.asprintf "%a" Evolution.pp_op op) expect
        (Evolution.preserves_legality op))
    [
      (Evolution.Add_allowed_attribute (c "person", a "pager"), true);
      (Evolution.Add_core_class { name = c "intern"; parent = c "person" }, true);
      (Evolution.Add_aux_class (c "remote"), true);
      (Evolution.Allow_aux { core = c "person"; aux = c "online" }, true);
      (Evolution.Drop_required_rel (c "orggroup", SS.Descendant, c "person"), true);
      (Evolution.Drop_forbidden_rel (c "person", SS.F_child, Oclass.top), true);
      (Evolution.Declare_attribute (a "note", Atype.T_string), true);
      (Evolution.Declare_attribute (a "age", Atype.T_int), false);
      (Evolution.Add_required_attribute (c "person", a "pager"), false);
      (Evolution.Require_class (c "researcher"), false);
      (Evolution.Require_rel (c "person", SS.Child, c "person"), false);
      (Evolution.Forbid_rel (c "orgunit", SS.F_child, c "orgunit"), false);
      (Evolution.Make_single_valued (a "mail"), false);
      (Evolution.Add_key (a "name"), false);
    ]

let test_evolution_migrate () =
  let inst = WP.generate ~seed:3 ~units:5 ~persons_per_unit:3 () in
  (* lightweight batch: no revalidation *)
  (match
     Evolution.migrate
       [
         Evolution.Add_allowed_attribute (c "person", a "pager");
         Evolution.Add_aux_class (c "remote");
       ]
       WP.schema inst
   with
  | Ok m ->
      check "not revalidated" false m.Evolution.revalidated;
      check "no violations" true (m.Evolution.violations = []);
      check "still legal (sanity)" true (Legality.is_legal m.Evolution.schema inst)
  | Error e -> Alcotest.fail e);
  (* tightening batch: revalidated, and this one breaks the instance *)
  match
    Evolution.migrate
      [ Evolution.Add_required_attribute (c "person", a "telephonenumber") ]
      WP.schema inst
  with
  | Ok m ->
      check "revalidated" true m.Evolution.revalidated;
      check "violations reported" true (m.Evolution.violations <> [])
  | Error e -> Alcotest.fail e

let test_evolution_diff () =
  let base = WP.schema in
  (* identical schemas diff to nothing *)
  (match Evolution.diff base base with
  | Ok [] -> ()
  | Ok ops ->
      Alcotest.failf "expected empty diff, got %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Evolution.pp_op) ops))
  | Error e -> Alcotest.fail e);
  (* a broad evolution round-trips through diff *)
  let ops =
    [
      Evolution.Declare_attribute (a "badge", Atype.T_string);
      Evolution.Add_core_class { name = c "intern"; parent = c "person" };
      Evolution.Add_core_class { name = c "summerintern"; parent = c "intern" };
      Evolution.Add_aux_class (c "remote");
      Evolution.Allow_aux { core = c "intern"; aux = c "remote" };
      Evolution.Add_required_attribute (c "intern", a "badge");
      Evolution.Add_allowed_attribute (c "person", a "badge");
      Evolution.Require_rel (c "intern", SS.Parent, c "orgunit");
      Evolution.Forbid_rel (c "intern", SS.F_child, Oclass.top);
      Evolution.Drop_required_class (c "organization");
      Evolution.Drop_required_rel (c "orggroup", SS.Descendant, c "person");
      Evolution.Make_single_valued (a "name");
      Evolution.Drop_key (a "uid");
    ]
  in
  let evolved = Result.get_ok (Evolution.apply_all ops base) in
  (match Evolution.diff base evolved with
  | Error e -> Alcotest.fail e
  | Ok dops ->
      let rebuilt = Result.get_ok (Evolution.apply_all dops base) in
      check "diff round-trips" true (Schema.equal rebuilt evolved));
  (* inexpressible changes are reported *)
  let retyped =
    Result.get_ok
      (Evolution.apply (Evolution.Declare_attribute (a "badge", Atype.T_int)) base)
  in
  check "retype inexpressible" true (Result.is_error (Evolution.diff retyped base))

(* Property: diff round-trips over random op sequences. *)
let candidate_ops =
  [
    Evolution.Declare_attribute (a "badge", Atype.T_string);
    Evolution.Add_core_class { name = c "intern"; parent = c "person" };
    Evolution.Add_aux_class (c "remote");
    Evolution.Add_allowed_attribute (c "orgunit", a "mail");
    Evolution.Add_required_attribute (c "organization", a "uri");
    Evolution.Require_class (c "researcher");
    Evolution.Require_rel (c "researcher", SS.Parent, c "orgunit");
    Evolution.Forbid_rel (c "orgunit", SS.F_child, c "organization");
    Evolution.Drop_required_class (c "organization");
    Evolution.Drop_required_rel (c "orgunit", SS.Parent, c "orggroup");
    Evolution.Drop_forbidden_rel (c "person", SS.F_child, Oclass.top);
    Evolution.Make_single_valued (a "location");
    Evolution.Add_key (a "mail");
    Evolution.Drop_key (a "uid");
    Evolution.Drop_required_attribute (c "person", a "name");
    Evolution.Drop_allowed_attribute (c "orgunit", a "location");
  ]

let prop_diff_roundtrip =
  QCheck.Test.make ~name:"diff round-trips random evolutions" ~count:200
    (QCheck.make
       ~print:(fun picks -> String.concat "," (List.map string_of_int picks))
       QCheck.Gen.(list_size (int_bound 8) (int_bound (List.length candidate_ops - 1))))
    (fun picks ->
      (* apply the applicable subset in order *)
      let evolved =
        List.fold_left
          (fun s k ->
            match Evolution.apply (List.nth candidate_ops k) s with
            | Ok s' -> s'
            | Error _ -> s)
          WP.schema picks
      in
      match Evolution.diff WP.schema evolved with
      | Error _ -> false
      | Ok dops -> (
          match Evolution.apply_all dops WP.schema with
          | Ok rebuilt -> Schema.equal rebuilt evolved
          | Error _ -> false))

(* Property: legality-preserving ops really preserve legality. *)
let light_ops =
  [
    Evolution.Add_allowed_attribute (c "person", a "pager");
    Evolution.Add_core_class { name = c "intern"; parent = c "person" };
    Evolution.Add_aux_class (c "remote");
    Evolution.Allow_aux { core = c "staffmember"; aux = c "facultymember" };
    Evolution.Drop_required_class (c "organization");
    Evolution.Drop_required_rel (c "orggroup", SS.Descendant, c "person");
    Evolution.Drop_forbidden_rel (c "person", SS.F_child, Oclass.top);
    Evolution.Drop_key (a "uid");
    Evolution.Declare_attribute (a "note", Atype.T_string);
  ]

let prop_preserving_ops_preserve =
  QCheck.Test.make ~name:"legality-preserving evolutions preserve legality" ~count:60
    (QCheck.make
       ~print:(fun (seed, k) ->
         Format.asprintf "seed=%d op=%a" seed Evolution.pp_op (List.nth light_ops k))
       QCheck.Gen.(pair (int_bound 10000) (int_bound (List.length light_ops - 1))))
    (fun (seed, k) ->
      let op = List.nth light_ops k in
      assert (Evolution.preserves_legality op);
      let inst = WP.generate ~seed ~units:4 ~persons_per_unit:2 () in
      let schema' = Result.get_ok (Evolution.apply op WP.schema) in
      Legality.is_legal schema' inst)

(* --- Profile ------------------------------------------------------------------- *)

let test_profile () =
  let p = Profile.compute WP.schema wp in
  check_int "entries" 6 p.Profile.entries;
  check_int "roots" 1 p.Profile.roots;
  check_int "max depth" 3 p.Profile.max_depth;
  Alcotest.(check (array int)) "depth histogram" [| 1; 2; 1; 2 |] p.Profile.depth_histogram;
  check_int "max fanout" 2 p.Profile.max_fanout;
  let person =
    List.find (fun cp -> Oclass.equal cp.Profile.cls (c "person")) p.Profile.classes
  in
  check_int "three persons" 3 person.Profile.count;
  (* uid is required and fully present *)
  let uid_fill =
    List.find (fun f -> Attr.equal f.Profile.attr (a "uid")) person.Profile.fills
  in
  check "uid required" true uid_fill.Profile.required;
  check_int "uid present everywhere" 3 uid_fill.Profile.present;
  (* telephoneNumber is optional and absent: heterogeneity shows up *)
  let tel_fill =
    List.find
      (fun f -> Attr.equal f.Profile.attr (a "telephonenumber"))
      person.Profile.fills
  in
  check_int "no telephones" 0 tel_fill.Profile.present;
  check "fill rate strictly below 1" true (p.Profile.optional_fill_rate < 1.0);
  (* online adoption among persons: laks only *)
  let online =
    List.assoc (c "online") person.Profile.aux_adoption
  in
  check_int "one online person" 1 online;
  (* empty instance profiles cleanly *)
  let p0 = Profile.compute WP.schema Instance.empty in
  check_int "empty" 0 p0.Profile.entries;
  check "renders" true (String.length (Format.asprintf "%a" Profile.pp p) > 0)

(* --- Optimize ------------------------------------------------------------------ *)

let inf = Inference.saturate WP.schema
let sel cls = Query.select_class (c cls)

let test_optimize_statics () =
  let simp q = Optimize.simplify inf q in
  (* undeclared class *)
  check "undeclared class empty" true (Optimize.is_empty_query (simp (sel "martian")));
  (* forbidden chi: person -/-> top *)
  check "forbidden chi child" true
    (Optimize.is_empty_query (simp (Query.Chi (Query.Child, sel "person", sel "top"))));
  check "forbidden chi reversed parent" true
    (Optimize.is_empty_query (simp (Query.Chi (Query.Parent, sel "top", sel "person"))));
  (* not forbidden: orgGroup children *)
  check "allowed chi unchanged" false
    (Optimize.is_empty_query
       (simp (Query.Chi (Query.Child, sel "orggroup", sel "person"))));
  (* the Figure-4 legality queries of the schema's own elements vanish *)
  List.iter
    (fun (oblig, q, expect) ->
      match expect with
      | Translate.Must_be_empty ->
          check
            (Format.asprintf "legality query of %a vanishes" Translate.pp_obligation
               oblig)
            true
            (Optimize.is_empty_query (simp q))
      | Translate.Must_be_nonempty -> ())
    (Translate.all WP.schema.Schema.structure);
  (* algebra *)
  check "minus self" true
    (Optimize.is_empty_query (simp (Query.Minus (sel "person", sel "person"))));
  check "union with empty" true
    (Query.equal (simp (Query.Union (sel "martian", sel "person"))) (sel "person"));
  check "inter with empty" true
    (Optimize.is_empty_query (simp (Query.Inter (sel "person", sel "martian"))));
  check "chi over empty" true
    (Optimize.is_empty_query
       (simp (Query.Chi (Query.Descendant, sel "martian", sel "person"))));
  (* filter folding *)
  check "and-false folds" true
    (Optimize.is_empty_query
       (simp
          (Query.Select
             (Filter.And [ Filter.class_eq (c "person"); Filter.Eq (Attr.object_class, "martian") ]))));
  check "not-false folds to true" true
    (Query.equal
       (simp (Query.Select (Filter.Not (Filter.Eq (Attr.object_class, "martian")))))
       (Query.Select (Filter.And [])))

let test_optimize_unsat_class () =
  (* a schema where class b is unsatisfiable: b needs a b descendant *)
  let schema =
    Spec_parser.parse_exn
      {|class a
        class b
        require b descendant b|}
  in
  let inf = Inference.saturate schema in
  check "unsat class select empty" true
    (Optimize.is_empty_query (Optimize.simplify inf (Query.select_class (c "b"))));
  check "sat class kept" false
    (Optimize.is_empty_query (Optimize.simplify inf (Query.select_class (c "a"))))

(* Property: simplification preserves results on legal instances. *)
let classes_pool = [ "person"; "orggroup"; "orgunit"; "researcher"; "top"; "organization" ]

let gen_query =
  let open QCheck.Gen in
  let leaf =
    map (fun i -> Query.select_class (c (List.nth classes_pool i))) (int_bound 5)
  in
  let axis = oneofl [ Query.Child; Query.Parent; Query.Descendant; Query.Ancestor ] in
  sized_size (int_bound 6)
    (fix (fun self n ->
         if n = 0 then leaf
         else
           frequency
             [
               (1, leaf);
               ( 2,
                 map3
                   (fun ax q1 q2 -> Query.Chi (ax, q1, q2))
                   axis
                   (self (n / 2))
                   (self (n / 2)) );
               (1, map2 (fun q1 q2 -> Query.Minus (q1, q2)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun q1 q2 -> Query.Union (q1, q2)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun q1 q2 -> Query.Inter (q1, q2)) (self (n / 2)) (self (n / 2)));
             ]))

let prop_simplify_preserves =
  QCheck.Test.make ~name:"simplify preserves results on legal instances" ~count:300
    (QCheck.make
       ~print:(fun (seed, q) -> Printf.sprintf "seed=%d q=%s" seed (Query.to_string q))
       QCheck.Gen.(pair (int_bound 1000) gen_query))
    (fun (seed, q) ->
      let inst = WP.generate ~seed ~units:4 ~persons_per_unit:3 () in
      let ix = Index.create inst in
      let before = Eval.eval_ids ix q in
      let after = Eval.eval_ids ix (Optimize.simplify inf q) in
      before = after)

let () =
  Alcotest.run "extensions"
    [
      ( "search",
        [
          Alcotest.test_case "scopes" `Quick test_search_scopes;
          Alcotest.test_case "vindex agreement" `Quick test_search_vindex_agrees;
          Alcotest.test_case "scope strings" `Quick test_search_scope_strings;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "apply" `Quick test_evolution_apply;
          Alcotest.test_case "structure ops" `Quick test_evolution_structure_ops;
          Alcotest.test_case "classification" `Quick test_evolution_classification;
          Alcotest.test_case "migrate" `Quick test_evolution_migrate;
          Alcotest.test_case "diff" `Quick test_evolution_diff;
          QCheck_alcotest.to_alcotest prop_diff_roundtrip;
          QCheck_alcotest.to_alcotest prop_preserving_ops_preserve;
        ] );
      ("profile", [ Alcotest.test_case "white pages statistics" `Quick test_profile ]);
      ( "optimize",
        [
          Alcotest.test_case "static simplifications" `Quick test_optimize_statics;
          Alcotest.test_case "unsatisfiable class" `Quick test_optimize_unsat_class;
          QCheck_alcotest.to_alcotest prop_simplify_preserves;
        ] );
    ]
