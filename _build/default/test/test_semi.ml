(* Section 6.3: bounding-schemas over semistructured (edge-labelled)
   data, via the embedding into the directory model. *)

open Bounds_core
open Bounds_semi
module SS = Structure_schema

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Ltree ---------------------------------------------------------------- *)

let test_ltree_basics () =
  let t = Ltree.v "country" [ Ltree.v "corporation" [ Ltree.leaf "corporation" ] ] in
  check_int "size" 3 (Ltree.size t);
  check_int "depth" 3 (Ltree.depth t);
  Alcotest.(check (list string))
    "labels" [ "country"; "corporation"; "corporation" ] (Ltree.labels t);
  check "invalid label" true
    (try
       ignore (Ltree.v "a b" []);
       false
     with Invalid_argument _ -> true)

let test_ltree_parse () =
  let t = Ltree.parse "(country (corporation (corporation)) (person))" in
  (match t with
  | Ok t ->
      check_int "size" 4 (Ltree.size t);
      check "roundtrip" true
        (Ltree.equal t (Result.get_ok (Ltree.parse (Ltree.to_string t))))
  | Error m -> Alcotest.fail m);
  check "parse error" true (Result.is_error (Ltree.parse "(a (b)"));
  check "trailing" true (Result.is_error (Ltree.parse "(a) x"));
  match Ltree.parse_forest "(a) (b (c))" with
  | Ok [ _; t2 ] -> check_int "forest second size" 2 (Ltree.size t2)
  | _ -> Alcotest.fail "forest parse"

(* --- the paper's Section 6.3 examples -------------------------------------- *)

(* person must have a name descendant at arbitrary depth *)
let person_schema = Sschema.empty |> Sschema.require "person" SS.Descendant "name"

let test_person_name_descendant () =
  let ok = Ltree.v "person" [ Ltree.v "info" [ Ltree.leaf "name" ] ] in
  let bad = Ltree.v "person" [ Ltree.v "info" [ Ltree.leaf "phone" ] ] in
  check "deep name ok" true (Sschema.is_legal person_schema [ ok ]);
  check "missing name" false (Sschema.is_legal person_schema [ bad ]);
  check "violation rendered" true
    (List.length (Sschema.check person_schema [ bad ]) = 1)

(* corporations nest, countries contain corporations and vice versa, but
   no country below another country *)
let geo_schema = Sschema.empty |> Sschema.forbid "country" SS.F_descendant "country"

let test_country_nesting () =
  let nested =
    Ltree.v "country"
      [ Ltree.v "corporation" [ Ltree.v "corporation" [ Ltree.leaf "country" ] ] ]
  in
  check "country under country illegal" false (Sschema.is_legal geo_schema [ nested ]);
  let legal =
    Ltree.v "corporation"
      [ Ltree.v "country" [ Ltree.leaf "corporation" ]; Ltree.leaf "country" ]
  in
  check "two sibling countries legal" true (Sschema.is_legal geo_schema [ legal ])

let test_required_label () =
  let s = Sschema.empty |> Sschema.require_label "catalog" in
  check "missing" false (Sschema.is_legal s [ Ltree.leaf "item" ]);
  check "present" true (Sschema.is_legal s [ Ltree.v "catalog" [ Ltree.leaf "item" ] ])

(* --- consistency through the embedding -------------------------------------- *)

let test_semi_consistency () =
  let inconsistent =
    Sschema.empty
    |> Sschema.require_label "a"
    |> Sschema.require "a" SS.Descendant "b"
    |> Sschema.forbid "a" SS.F_descendant "b"
  in
  check "inconsistent" false (Sschema.is_consistent inconsistent);
  check "witness err" true (Result.is_error (Sschema.witness inconsistent));
  let consistent =
    Sschema.empty
    |> Sschema.require_label "library"
    |> Sschema.require "library" SS.Descendant "book"
    |> Sschema.require "book" SS.Child "title"
    |> Sschema.forbid "title" SS.F_child "title"
  in
  check "consistent" true (Sschema.is_consistent consistent);
  match Sschema.witness consistent with
  | Ok forest ->
      check "witness legal" true (Sschema.is_legal consistent forest);
      check "has a book with title" true
        (List.exists (fun t -> List.mem "title" (Ltree.labels t)) forest)
  | Error m -> Alcotest.fail m

(* --- textual syntax -------------------------------------------------------- *)

let test_sschema_syntax () =
  let src =
    {|# a document schema
      require exists library
      require library descendant book ; require book child title
      forbid title child title
      forbid country descendant country|}
  in
  let s = Sschema.parse_exn src in
  Alcotest.(check (list string)) "required labels" [ "library" ] (Sschema.required_labels s);
  check_int "two required rels" 2 (List.length (Sschema.required_rels s));
  check_int "two forbidden rels" 2 (List.length (Sschema.forbidden_rels s));
  (* round-trip *)
  let s' = Sschema.parse_exn (Sschema.to_string s) in
  check "roundtrip labels" true (Sschema.labels s = Sschema.labels s');
  check "roundtrip rels" true (Sschema.required_rels s = Sschema.required_rels s');
  check "roundtrip forbs" true (Sschema.forbidden_rels s = Sschema.forbidden_rels s');
  (* errors *)
  check "bad rel" true (Result.is_error (Sschema.parse "require a sibling b"));
  check "bad label" true (Result.is_error (Sschema.parse "require exists top"));
  check "junk" true (Result.is_error (Sschema.parse "frobnicate"));
  check "forbid parent rejected" true
    (Result.is_error (Sschema.parse "forbid a parent b"))

(* --- embedding round trip ----------------------------------------------------- *)

let test_embedding_roundtrip () =
  let forest =
    [
      Ltree.v "site" [ Ltree.v "page" [ Ltree.leaf "img"; Ltree.leaf "txt" ] ];
      Ltree.leaf "orphan";
    ]
  in
  let inst = Sschema.embed_forest forest in
  check_int "entries" 5 (Bounds_model.Instance.size inst);
  let back = Sschema.of_instance inst in
  check "roundtrip" true (List.for_all2 Ltree.equal forest back)

let test_updates_through_embedding () =
  (* the whole Section 4 machinery applies to semistructured data via the
     embedding: reject a subtree deletion that kills a required label *)
  let s = Sschema.empty |> Sschema.require_label "book" in
  let forest = [ Ltree.v "library" [ Ltree.v "book" [ Ltree.leaf "title" ] ] ] in
  let inst = Sschema.embed_forest forest in
  let schema =
    let classes =
      List.fold_left
        (fun cs l ->
          Class_schema.add_core_exn
            (Bounds_model.Oclass.of_string l)
            ~parent:Bounds_model.Oclass.top cs)
        Class_schema.empty
        [ "library"; "book"; "title" ]
    in
    Schema.make_exn ~classes ~structure:(Sschema.to_schema s).Schema.structure ()
  in
  let m = Result.get_ok (Monitor.create schema inst) in
  (* deleting the book subtree (id 1) must be rejected *)
  (match Monitor.delete_subtree 1 m with
  | Error viols -> check "rejected" true (viols <> [])
  | Ok _ -> Alcotest.fail "deletion should be rejected");
  (* deleting just the title (id 2) is fine *)
  check "title deletion ok" true (Result.is_ok (Monitor.delete_subtree 2 m))

let () =
  Alcotest.run "semi"
    [
      ( "ltree",
        [
          Alcotest.test_case "basics" `Quick test_ltree_basics;
          Alcotest.test_case "parse" `Quick test_ltree_parse;
        ] );
      ( "schemas",
        [
          Alcotest.test_case "person/name (paper)" `Quick test_person_name_descendant;
          Alcotest.test_case "country nesting (paper)" `Quick test_country_nesting;
          Alcotest.test_case "required label" `Quick test_required_label;
        ] );
      ( "consistency",
        [ Alcotest.test_case "decide + witness" `Quick test_semi_consistency ] );
      ("syntax", [ Alcotest.test_case "parse/print" `Quick test_sschema_syntax ]);
      ( "embedding",
        [
          Alcotest.test_case "roundtrip" `Quick test_embedding_roundtrip;
          Alcotest.test_case "updates" `Quick test_updates_through_embedding;
        ] );
    ]
