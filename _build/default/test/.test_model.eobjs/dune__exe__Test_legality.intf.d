test/test_legality.mli:
