test/test_repair.ml: Alcotest Attr Bounds_core Bounds_model Bounds_workload Entry Instance Legality List Oclass Printf QCheck QCheck_alcotest Random Repair Result Structure_schema Value
