test/test_codec.ml: Alcotest Attr Atype Bounds_codec Bounds_core Bounds_model Bounds_workload Entry Instance List Oclass Option QCheck QCheck_alcotest String Typing Value
