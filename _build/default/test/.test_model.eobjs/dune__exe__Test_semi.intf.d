test/test_semi.mli:
