test/test_model.ml: Alcotest Attr Atype Bounds_model Bounds_workload Entry Instance List Oclass Printf QCheck QCheck_alcotest Result Typing Value Wf
