test/test_semi.ml: Alcotest Bounds_core Bounds_model Bounds_semi Class_schema List Ltree Monitor Result Schema Sschema Structure_schema
