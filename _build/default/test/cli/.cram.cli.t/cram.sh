  $ cat > team.schema <<'EOF'
  > attribute name : string
  > attribute uid : string
  > class team { required: name }
  > class person { required: name, uid }
  > require exists team
  > require team descendant person
  > forbid person child top
  > key uid
  > EOF
  $ cat > dir.ldif <<'EOF'
  > dn: name=research
  > objectClass: team
  > objectClass: top
  > name: research
  > 
  > dn: uid=ada,name=research
  > objectClass: person
  > objectClass: top
  > name: Ada
  > uid: ada
  > EOF
  $ ldapschema fmt -s team.schema
  $ ldapschema validate -s team.schema -d dir.ldif
  $ ldapschema validate -s team.schema -d dir.ldif --naive
  $ head -5 dir.ldif > broken.ldif
  $ ldapschema validate -s team.schema -d broken.ldif
  $ ldapschema query -s team.schema -d dir.ldif '(objectClass=person)'
  $ ldapschema query -s team.schema -d dir.ldif \
  >   '(minus (objectClass=team) (chi d (objectClass=team) (objectClass=person)))'
  $ ldapschema consistent -s team.schema -w witness.ldif
  $ ldapschema validate -s team.schema -d witness.ldif
  $ cat > bad.schema <<'EOF'
  > class a
  > class b
  > require exists a
  > require a descendant b
  > forbid a descendant b
  > EOF
  $ ldapschema consistent -s bad.schema --proof
  $ cat > ops.ldif <<'EOF'
  > dn: uid=alan,name=research
  > objectClass: person
  > objectClass: top
  > name: Alan
  > uid: alan
  > EOF
  $ ldapschema update -s team.schema -d dir.ldif -o ops.ldif --out dir2.ldif
  $ cat > bad-ops.ldif <<'EOF'
  > dn: uid=ada,name=research
  > changetype: delete
  > 
  > dn: name=research
  > changetype: delete
  > EOF
  $ ldapschema update -s team.schema -d dir.ldif -o bad-ops.ldif
  $ ldapschema generate --workload white-pages --units 3 --persons 2 \
  >   --out wp.ldif --emit-schema wp.schema 2>/dev/null
  $ ldapschema validate -s wp.schema -d wp.ldif
  $ ldapschema search -d dir2.ldif --base name=research --scope one '(objectClass=person)'
  $ ldapschema search -d dir2.ldif --scope base '(name=*)'
  $ ldapschema search -s team.schema -d dir2.ldif --optimize '(objectClass=martian)'
  $ cat > hurt.ldif <<'EOF2'
  > dn: name=research
  > objectClass: team
  > objectClass: top
  > name: research
  > 
  > dn: uid=ada,name=research
  > objectClass: person
  > objectClass: top
  > uid: ada
  > salary: lots
  > EOF2
  $ ldapschema repair -s team.schema -d hurt.ldif --out healed.ldif
  $ ldapschema validate -s team.schema -d healed.ldif
  $ ldapschema profile -s team.schema -d dir2.ldif
  $ cat > doc.sschema <<'EOF2'
  > require exists library
  > require library descendant book
  > require book child title
  > forbid country descendant country
  > EOF2
  $ ldapschema tree-check -s doc.sschema
  $ cat > good.trees <<'EOF2'
  > (library (shelf (book (title) (isbn))))
  > EOF2
  $ ldapschema tree-check -s doc.sschema -d good.trees
  $ cat > bad.trees <<'EOF2'
  > (library (book (isbn)) (country (city (country))))
  > EOF2
  $ ldapschema tree-check -s doc.sschema -d bad.trees
