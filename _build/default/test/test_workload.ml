(* Workload generators: the paper's running example and the random
   generators the benches and property tests rely on. *)

open Bounds_model
open Bounds_core
module WP = Bounds_workload.White_pages

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let c = Oclass.of_string

let test_white_pages_figures () =
  (* Figure 1 content spot checks *)
  let inst = WP.instance in
  check_int "six entries" 6 (Instance.size inst);
  let laks = Instance.entry inst 4 in
  check "laks researcher" true (Entry.has_class laks (c "researcher"));
  check "laks facultyMember" true (Entry.has_class laks (c "facultymember"));
  check "laks online" true (Entry.has_class laks (c "online"));
  check_int "laks two mails" 2
    (List.length (Entry.values laks (Attr.of_string "mail")));
  check "laks under databases" true (Instance.parent inst 4 = Some 3);
  (* Figure 2 hierarchy *)
  let h = WP.schema.Schema.classes in
  check "organization |- orgGroup" true
    (Class_schema.is_subclass h ~sub:(c "organization") ~super:(c "orggroup"));
  check "organization |-/ person" true
    (Class_schema.disjoint h (c "organization") (c "person"));
  (* Figure 3 structure *)
  let s = WP.schema.Schema.structure in
  check "orgGroup ->> person" true
    (Structure_schema.mem_required s
       (c "orggroup", Structure_schema.Descendant, c "person"));
  check "person -/-> top" true
    (Structure_schema.mem_forbidden s (c "person", Structure_schema.F_child, Oclass.top));
  (* the instance satisfies the schema — the paper's Section 2.3 claim *)
  check "legal" true (Legality.is_legal WP.schema inst)

let test_white_pages_generator_scales () =
  List.iter
    (fun (units, ppl) ->
      let inst = WP.generate ~seed:(units + ppl) ~units ~persons_per_unit:ppl () in
      check "legal" true (Legality.is_legal WP.schema inst);
      check "size" true (Instance.size inst >= (units * ppl) + 1))
    [ (0, 0); (1, 1); (5, 3); (40, 5) ]

let test_white_pages_generator_deterministic () =
  let a = WP.generate ~seed:7 ~units:10 ~persons_per_unit:3 () in
  let b = WP.generate ~seed:7 ~units:10 ~persons_per_unit:3 () in
  check "same seed same instance" true (Instance.equal a b);
  let d = WP.generate ~seed:8 ~units:10 ~persons_per_unit:3 () in
  check "different seed differs" false (Instance.equal a d)

let test_fresh_person_inserts () =
  let base = WP.generate ~seed:3 ~units:4 ~persons_per_unit:2 () in
  let delta = WP.fresh_person base ~seed:99 in
  check_int "single entry" 1 (Instance.size delta);
  (* inserting under a unit preserves legality *)
  let unit =
    Instance.fold
      (fun e acc -> if Entry.has_class e (c "orgunit") then Some (Entry.id e) else acc)
      base None
  in
  match
    Incremental.check_insert WP.schema ~base ~parent:unit ~delta
  with
  | Ok [] -> ()
  | Ok v ->
      Alcotest.failf "violations: %s" (String.concat "; " (List.map Violation.to_string v))
  | Error m -> Alcotest.fail m

let test_den () =
  let inst =
    Bounds_workload.Den.generate ~seed:5 ~sites:3 ~devices_per_site:4
      ~interfaces_per_device:2 ~policies:6 ()
  in
  check "legal" true (Legality.is_legal Bounds_workload.Den.schema inst);
  check "routers have interfaces" true
    (Instance.fold
       (fun e acc ->
         acc
         && (not (Entry.has_class e (c "router")))
            || Instance.children inst (Entry.id e) <> [])
       inst true);
  check "consistent schema" true (Consistency.is_consistent Bounds_workload.Den.schema)

let test_university () =
  let schema = Bounds_workload.University.schema in
  let inst =
    Bounds_workload.University.generate ~seed:9 ~faculties:3
      ~departments_per_faculty:2 ~courses_per_department:3 ~students_per_course:4 ()
  in
  check "legal" true (Legality.is_legal schema inst);
  check "consistent" true (Consistency.is_consistent schema);
  (* every student really has a university ancestor at depth > 1 — the
     ancestor-axis behaviour the other workloads do not exercise *)
  check "students deep under university" true
    (Instance.fold
       (fun e acc ->
         acc
         &&
         if Entry.has_class e (c "student") then
           Instance.depth inst (Entry.id e) >= 3
           && List.exists
                (fun anc ->
                  Entry.has_class (Instance.entry inst anc) (c "university"))
                (Instance.ancestors inst (Entry.id e))
         else true)
       inst true);
  (* incremental checking handles the ancestor axis here *)
  let m = Result.get_ok (Monitor.create schema inst) in
  let stray =
    Instance.add_root_exn
      (Entry.make ~id:9000 ~rdn:"sid=stray"
         ~classes:(Oclass.set_of_list [ "student"; "person"; "top" ])
         [
           (Attr.of_string "sid", Value.String "stray");
           (Attr.of_string "name", Value.String "stray");
         ])
      Instance.empty
  in
  (match Monitor.insert_subtree ~parent:None stray m with
  | Error viols ->
      check "rootless student rejected" true
        (List.exists
           (function
             | Violation.Unsatisfied_rel
                 { rel = (_, Structure_schema.Ancestor, _); _ } ->
                 true
             | _ -> false)
           viols)
  | Ok _ -> Alcotest.fail "student with no university ancestor accepted");
  (* under a course it is fine *)
  let course =
    Instance.fold
      (fun e acc -> if Entry.has_class e (c "course") then Some (Entry.id e) else acc)
      inst None
  in
  check "enrolment accepted" true
    (Result.is_ok (Monitor.insert_subtree ~parent:course stray m))

let test_random_forest_shape () =
  let mk _rng id =
    Entry.make ~id ~classes:(Oclass.Set.singleton Oclass.top) []
  in
  let inst = Bounds_workload.Gen.random_forest ~seed:11 ~size:200 ~mk_entry:mk () in
  check_int "size" 200 (Instance.size inst);
  (* max_fanout respected *)
  let inst2 =
    Bounds_workload.Gen.random_forest ~seed:11 ~size:200 ~max_fanout:2 ~mk_entry:mk ()
  in
  check "fanout bounded" true
    (Instance.fold
       (fun e ok -> ok && List.length (Instance.children inst2 (Entry.id e)) <= 2)
       inst2 true)

let test_content_legal_forest () =
  let schema =
    Bounds_workload.Gen.random_schema ~seed:21 ~n_classes:6 ~n_req:0 ~n_forb:0
      ~n_required_classes:0
  in
  let inst = Bounds_workload.Gen.content_legal_forest ~seed:22 ~size:100 schema in
  check "content legal" true (Content_legality.is_legal schema inst)

let test_random_ops_valid () =
  let base = WP.generate ~seed:13 ~units:3 ~persons_per_unit:2 () in
  let ops = Bounds_workload.Gen.random_ops ~seed:14 ~n:30 WP.schema base in
  check_int "thirty ops" 30 (List.length ops);
  check "applicable" true (Result.is_ok (Update.apply base ops))

let test_random_schema_components () =
  let s =
    Bounds_workload.Gen.random_schema ~seed:31 ~n_classes:8 ~n_req:6 ~n_forb:4
      ~n_required_classes:3
  in
  check_int "classes" 9 (Oclass.Set.cardinal (Class_schema.core_classes s.Schema.classes));
  check "structure sized" true (Structure_schema.size s.Schema.structure > 0)

let () =
  Alcotest.run "workload"
    [
      ( "white-pages",
        [
          Alcotest.test_case "figures 1-3" `Quick test_white_pages_figures;
          Alcotest.test_case "generator legal at scale" `Quick
            test_white_pages_generator_scales;
          Alcotest.test_case "deterministic" `Quick
            test_white_pages_generator_deterministic;
          Alcotest.test_case "fresh person" `Quick test_fresh_person_inserts;
        ] );
      ("den", [ Alcotest.test_case "legal + consistent" `Quick test_den ]);
      ( "university",
        [ Alcotest.test_case "ancestor-axis workload" `Quick test_university ] );
      ( "random",
        [
          Alcotest.test_case "forest shape" `Quick test_random_forest_shape;
          Alcotest.test_case "content-legal forest" `Quick test_content_legal_forest;
          Alcotest.test_case "ops valid" `Quick test_random_ops_valid;
          Alcotest.test_case "schema components" `Quick test_random_schema_components;
        ] );
    ]
