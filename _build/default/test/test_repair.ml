(* The repair engine: canonical fixes per violation kind, cascading
   rounds, and the corruption property (random content damage is always
   repaired non-destructively). *)

open Bounds_model
open Bounds_core
module WP = Bounds_workload.White_pages
module SS = Structure_schema

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let a = Attr.of_string
let c = Oclass.of_string
let schema = WP.schema
let wp = WP.instance

let has_action pred (o : Repair.outcome) = List.exists pred o.Repair.actions

let fixed ?destructive inst =
  let o = Repair.fix ?destructive schema inst in
  (o, o.Repair.remaining = [] && Legality.is_legal schema o.Repair.instance)

(* --- content repairs -------------------------------------------------------- *)

let test_missing_required_attr () =
  let broken =
    Result.get_ok (Instance.update_entry 5 (Entry.remove_attr (a "name")) wp)
  in
  let o, ok = fixed broken in
  check "fixed" true ok;
  check "placeholder added" true
    (has_action
       (function
         | Repair.Added_value { entry = 5; attr; _ } -> Attr.equal attr (a "name")
         | _ -> false)
       o);
  (* data preserved *)
  check "uid untouched" true
    (Entry.values (Instance.entry o.Repair.instance 5) (a "uid")
    = [ Value.String "suciu" ])

let test_missing_key_attr_unique () =
  (* two persons lose their uid; both must get distinct placeholders *)
  let broken =
    wp
    |> Instance.update_entry 4 (Entry.remove_attr (a "uid"))
    |> Result.get_ok
    |> Instance.update_entry 5 (Entry.remove_attr (a "uid"))
    |> Result.get_ok
  in
  let o, ok = fixed broken in
  check "fixed" true ok;
  let uid id = Entry.values (Instance.entry o.Repair.instance id) (a "uid") in
  check "distinct placeholders" true (uid 4 <> uid 5 && uid 4 <> [] && uid 5 <> [])

let test_attr_not_allowed () =
  let broken =
    Result.get_ok
      (Instance.update_entry 2
         (Entry.add_value (a "salary") (Value.String "lots"))
         wp)
  in
  let o, ok = fixed broken in
  check "fixed" true ok;
  check "removed" true
    (has_action
       (function
         | Repair.Removed_attribute { attr; _ } -> Attr.equal attr (a "salary")
         | _ -> false)
       o)

let test_ill_typed_values () =
  let broken =
    Result.get_ok
      (Instance.update_entry 2
         (fun e ->
           Entry.add_value (a "telephonenumber") (Value.String "call me") e
           |> Entry.add_value (a "telephonenumber") (Value.String "5551234"))
         wp)
  in
  let o, ok = fixed broken in
  check "fixed" true ok;
  check "good value kept" true
    (Entry.values (Instance.entry o.Repair.instance 2) (a "telephonenumber")
    = [ Value.String "5551234" ])

let test_multi_valued_single () =
  let broken =
    Result.get_ok
      (Instance.update_entry 1 (Entry.add_value (a "ou") (Value.String "zz-alt")) wp)
  in
  let o, ok = fixed broken in
  check "fixed" true ok;
  check_int "one value" 1
    (List.length (Entry.values (Instance.entry o.Repair.instance 1) (a "ou")))

let test_duplicate_key () =
  let broken =
    Result.get_ok
      (Instance.update_entry 5
         (fun e ->
           Entry.remove_attr (a "uid") e
           |> Entry.add_value (a "uid") (Value.String "laks"))
         wp)
  in
  let o, ok = fixed broken in
  check "fixed" true ok;
  (* laks (the first holder) keeps the value *)
  check "first holder keeps" true
    (Entry.values (Instance.entry o.Repair.instance 4) (a "uid")
    = [ Value.String "laks" ]);
  check "second rekeyed" true
    (has_action (function Repair.Rekeyed { entry = 5; _ } -> true | _ -> false) o)

let test_class_set_repairs () =
  let broken =
    wp
    |> Instance.update_entry 2 (Entry.add_class (c "martian"))
    |> Result.get_ok
    |> Instance.update_entry 5
         (Entry.with_classes (Oclass.set_of_list [ "researcher"; "top" ]))
    |> Result.get_ok
    |> Instance.update_entry 4 (Entry.add_class (c "secretary"))
    |> Result.get_ok
  in
  let o, ok = fixed broken in
  check "fixed" true ok;
  let classes id = Entry.classes (Instance.entry o.Repair.instance id) in
  check "martian dropped" false (Oclass.Set.mem (c "martian") (classes 2));
  check "person closure restored" true (Oclass.Set.mem (c "person") (classes 5));
  check "secretary (aux of staff, not researcher) dropped" false
    (Oclass.Set.mem (c "secretary") (classes 4));
  check "legit aux kept" true (Oclass.Set.mem (c "facultymember") (classes 4))

(* --- structure repairs ------------------------------------------------------- *)

let test_graft_for_unsatisfied_descendant () =
  let empty_unit =
    Entry.make ~id:100
      ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
      [ (a "ou", Value.String "empty") ]
  in
  let broken = Instance.add_child_exn ~parent:1 empty_unit wp in
  let o, ok = fixed broken in
  check "fixed" true ok;
  check "grafted a person" true
    (has_action
       (function
         | Repair.Grafted { parent = Some 100; for_class; _ } ->
             Oclass.equal for_class (c "person")
         | _ -> false)
       o);
  (* the grafted person is a real, content-legal entry *)
  check "still legal" true (Legality.is_legal schema o.Repair.instance)

let test_graft_for_missing_required_class () =
  (* strip all orgUnits: attLabs subtree goes, armstrong keeps person alive *)
  let broken = Result.get_ok (Instance.remove_subtree 1 wp) in
  let o, ok = fixed broken in
  check "fixed" true ok;
  check "seeded a fresh orgUnit forest" true
    (has_action
       (function
         | Repair.Grafted { parent = None; for_class; _ } ->
             Oclass.equal for_class (c "orgunit")
         | _ -> false)
       o)

let test_destructive_repairs () =
  (* a person with a child violates person -/-> top: only deletion helps *)
  let broken =
    Instance.add_child_exn ~parent:4
      (Entry.make ~id:100 ~rdn:"uid=x100"
         ~classes:(Oclass.set_of_list [ "person"; "top" ])
         [ (a "uid", Value.String "x100"); (a "name", Value.String "x") ])
      wp
  in
  let o, ok = fixed broken in
  check "non-destructive leaves it" false ok;
  check "violation remains" true (o.Repair.remaining <> []);
  let o2, ok2 = fixed ~destructive:true broken in
  check "destructive fixes" true ok2;
  check "deleted the child" true
    (has_action
       (function Repair.Deleted_subtree { root = 100 } -> true | _ -> false)
       o2);
  check "victim gone" false (Instance.mem o2.Repair.instance 100)

let test_destructive_parent_violation () =
  (* an orgUnit as a root violates orgUnit <-parent- orgGroup *)
  let broken =
    Instance.add_root_exn
      (Entry.make ~id:100
         ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
         [ (a "ou", Value.String "floating") ])
      wp
  in
  let _, ok = fixed broken in
  check "non-destructive cannot" false ok;
  let o2, ok2 = fixed ~destructive:true broken in
  check "destructive deletes the violator" true ok2;
  check "gone" false (Instance.mem o2.Repair.instance 100)

let test_fix_is_idempotent_on_legal () =
  let o = Repair.fix schema wp in
  check "no actions" true (o.Repair.actions = []);
  check "unchanged" true (Instance.equal o.Repair.instance wp)

(* --- the corruption property -------------------------------------------------- *)

(* random content-level damage is always repaired without destructive
   measures, and entry ids all survive *)
let corrupt rng inst =
  let ids = Instance.ids inst in
  let victim = List.nth ids (Random.State.int rng (List.length ids)) in
  let e = Instance.entry inst victim in
  let damage = Random.State.int rng 6 in
  let patch f = Result.get_ok (Instance.update_entry victim f inst) in
  match damage with
  | 0 -> patch (Entry.add_value (a "salary") (Value.String "lots"))
  | 1 -> patch (Entry.add_class (c "martian"))
  | 2 when Entry.has_class e (c "person") -> patch (Entry.remove_attr (a "name"))
  | 3 when Entry.has_class e (c "person") ->
      patch (Entry.add_value (a "uid") (Value.String "dup-uid"))
  | 4 -> patch (Entry.add_value (a "telephonenumber") (Value.String "nonsense"))
  | 5 when Entry.has_class e (c "researcher") ->
      patch (fun e ->
          Entry.with_classes (Oclass.Set.remove (c "person") (Entry.classes e)) e)
  | _ -> patch (Entry.add_class (c "consultant"))

let prop_content_corruption_always_fixed =
  QCheck.Test.make ~name:"random content damage is fully repaired" ~count:150
    (QCheck.make
       ~print:(fun (seed, k) -> Printf.sprintf "seed=%d k=%d" seed k)
       QCheck.Gen.(pair (int_bound 100_000) (int_range 1 6)))
    (fun (seed, k) ->
      let rng = Random.State.make [| seed; 77 |] in
      let base = WP.generate ~seed ~units:3 ~persons_per_unit:2 () in
      let broken = ref base in
      for _ = 1 to k do
        broken := corrupt rng !broken
      done;
      let o = Repair.fix schema !broken in
      o.Repair.remaining = []
      && Legality.is_legal schema o.Repair.instance
      && List.for_all (Instance.mem o.Repair.instance) (Instance.ids base))

let () =
  Alcotest.run "repair"
    [
      ( "content",
        [
          Alcotest.test_case "missing required attr" `Quick test_missing_required_attr;
          Alcotest.test_case "missing key attrs stay unique" `Quick
            test_missing_key_attr_unique;
          Alcotest.test_case "attr not allowed" `Quick test_attr_not_allowed;
          Alcotest.test_case "ill-typed values" `Quick test_ill_typed_values;
          Alcotest.test_case "multi-valued single" `Quick test_multi_valued_single;
          Alcotest.test_case "duplicate key" `Quick test_duplicate_key;
          Alcotest.test_case "class set normalization" `Quick test_class_set_repairs;
        ] );
      ( "structure",
        [
          Alcotest.test_case "graft for descendant" `Quick
            test_graft_for_unsatisfied_descendant;
          Alcotest.test_case "graft for required class" `Quick
            test_graft_for_missing_required_class;
          Alcotest.test_case "destructive child deletion" `Quick
            test_destructive_repairs;
          Alcotest.test_case "destructive parent violation" `Quick
            test_destructive_parent_violation;
          Alcotest.test_case "idempotent on legal" `Quick test_fix_is_idempotent_on_legal;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_content_corruption_always_fixed ] );
    ]
