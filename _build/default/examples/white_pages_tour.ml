(* The paper, end to end: Figures 1-3 as data, the Section 3 reduction to
   hierarchical queries, the Section 4 update scenarios, and the Section 5
   consistency machinery — every worked example from the text.

   Run with:  dune exec examples/white_pages_tour.exe *)

open Bounds_model
open Bounds_core
open Bounds_query
module WP = Bounds_workload.White_pages

let section title = Format.printf "@.==== %s ====@." title

let () =
  let schema = WP.schema in
  let inst = WP.instance in

  section "Figure 1: the corporate white-pages instance";
  Format.printf "%a" Instance.pp inst;
  Format.printf "as LDIF:@.%s@." (Bounds_codec.Ldif.to_string inst);

  section "Figures 2-3: the bounding-schema";
  Format.printf "%s@." (Spec_printer.to_string schema);

  section "Section 3.2: the Figure-4 translation";
  let ix = Index.create inst in
  List.iter
    (fun (oblig, q, expect) ->
      let result = Eval.eval_ids ix q in
      Format.printf "%a@.  query  %s@.  result %s  (%s)@." Translate.pp_obligation
        oblig (Query.to_string q)
        (match result with
        | [] -> "{}"
        | ids -> String.concat ", " (List.map string_of_int ids))
        (match expect with
        | Translate.Must_be_empty -> "must be empty"
        | Translate.Must_be_nonempty -> "must be non-empty"))
    (Translate.all schema.Schema.structure);
  Format.printf "=> the instance is legal: %b@." (Legality.is_legal schema inst);

  section "Section 3.2: the query Q1 on a broken instance";
  (* forget suciu and laks: databases loses its person descendants *)
  let broken =
    inst |> Instance.remove_leaf 4 |> Result.get_ok |> Instance.remove_leaf 5
    |> Result.get_ok
  in
  let q1 =
    Query_parser.parse_exn
      {|(minus (objectClass=orgGroup)
              (chi d (objectClass=orgGroup) (objectClass=person)))|}
  in
  Format.printf "Q1 = %s@." (Query.to_string q1);
  Format.printf "Q1[broken] = entries %s — the orgGroups with no person@."
    (String.concat ", "
       (List.map string_of_int (Eval.eval_ids (Index.create broken) q1)));

  section "Section 4.1: granularity of updates";
  (* adding an orgUnit alone violates orgGroup ->> person; together with
     its person children the transaction is fine *)
  let unit_entry =
    Entry.make ~id:100 ~rdn:"ou=voice"
      ~classes:(Oclass.set_of_list [ "orgunit"; "orggroup"; "top" ])
      [ (Attr.of_string "ou", Value.String "voice") ]
  in
  let person_entry =
    Entry.make ~id:101 ~rdn:"uid=shannon"
      ~classes:(Oclass.set_of_list [ "researcher"; "person"; "top" ])
      [
        (Attr.of_string "uid", Value.String "shannon");
        (Attr.of_string "name", Value.String "c shannon");
      ]
  in
  let lone = [ Update.Insert { parent = Some 1; entry = unit_entry } ] in
  (match Transaction.check schema inst lone with
  | Error r -> Format.printf "lone orgUnit rejected:@.  %a@." Transaction.pp_rejection r
  | Ok _ -> assert false);
  let both =
    lone @ [ Update.Insert { parent = Some 100; entry = person_entry } ]
  in
  (match Transaction.check schema inst both with
  | Ok inst' ->
      Format.printf "orgUnit + person accepted (%d entries now)@."
        (Instance.size inst')
  | Error _ -> assert false);

  section "Section 4.2: the incremental Section-4.2 example";
  (* adding an orgUnit under suciu violates two relationships; the
     incremental checker sees both without rescanning the directory *)
  let delta =
    Instance.empty
    |> Instance.add_root_exn unit_entry
    |> Instance.add_child_exn ~parent:100 person_entry
  in
  (match Incremental.check_insert schema ~base:inst ~parent:(Some 5) ~delta with
  | Ok viols ->
      Format.printf "inserting under suciu violates:@.";
      List.iter (fun v -> Format.printf "  - %s@." (Violation.to_string v)) viols
  | Error m -> failwith m);

  section "Figure 5: incremental testability";
  List.iter
    (fun rel ->
      Format.printf "required %-10s  insert: %-3s  delete: %s@."
        (Structure_schema.rel_to_string rel)
        (if Incremental.testable_on_insert_req rel then "yes" else "no")
        (if Incremental.testable_on_delete_req rel then "yes (no check)"
         else "no (recheck remainder)"))
    [
      Structure_schema.Child;
      Structure_schema.Descendant;
      Structure_schema.Parent;
      Structure_schema.Ancestor;
    ];

  section "Section 5: consistency of the white-pages schema";
  (match Consistency.decide schema with
  | Consistency.Consistent { witness; passes; derived } ->
      Format.printf
        "consistent (saturation: %d passes, %d derived elements); witness:@.%a"
        passes derived Instance.pp witness
  | Consistency.Inconsistent _ | Consistency.Unresolved _ -> assert false);

  section "Section 5.1: the cycle example";
  let cyclic =
    Spec_parser.parse_exn
      {|class c1
        class c2
        require exists c1
        require c1 child c2
        require c2 descendant c1|}
  in
  (match Consistency.decide cyclic with
  | Consistency.Inconsistent { proof; _ } ->
      Format.printf "c1•, c1 -> c2, c2 ->> c1 is inconsistent; proof:@.%a@."
        Inference.pp_proof proof
  | Consistency.Consistent _ | Consistency.Unresolved _ -> assert false);

  section "Section 5.2: the contradiction example";
  let contradictory =
    Spec_parser.parse_exn
      {|class c1
        class c2
        require exists c1
        require c1 descendant c2
        forbid c1 descendant c2|}
  in
  match Consistency.decide contradictory with
  | Consistency.Inconsistent { proof; _ } ->
      Format.printf "c1•, c1 ->> c2, c1 -/->> c2 is inconsistent; proof:@.%a@."
        Inference.pp_proof proof
  | Consistency.Consistent _ | Consistency.Unresolved _ -> assert false
