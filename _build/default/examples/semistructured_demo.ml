(* Section 6.3: bounding-schemas for semistructured data.  The paper's
   two examples — person/name at arbitrary depth, and country/corporation
   nesting — on edge-labelled trees.

   Run with:  dune exec examples/semistructured_demo.exe *)

open Bounds_core
open Bounds_semi
module SS = Structure_schema

let section title = Format.printf "@.==== %s ====@." title

let show_check schema forest =
  List.iter
    (fun t -> Format.printf "  %s@." (Ltree.to_string t))
    forest;
  match Sschema.check schema forest with
  | [] -> Format.printf "  => legal@."
  | viols -> List.iter (fun v -> Format.printf "  => %s@." v) viols

let () =
  section "every person has a name, at arbitrary depth";
  (* fixed-length path constraints cannot express this (the paper's
     observation about earlier proposals) *)
  let person = Sschema.empty |> Sschema.require "person" SS.Descendant "name" in
  Format.printf "%a" Sschema.pp person;
  show_check person
    [ Result.get_ok (Ltree.parse "(person (contact (name) (phone)))") ];
  show_check person [ Result.get_ok (Ltree.parse "(person (contact (phone)))") ];

  section "corporations nest; countries never contain countries";
  let geo = Sschema.empty |> Sschema.forbid "country" SS.F_descendant "country" in
  Format.printf "%a" Sschema.pp geo;
  show_check geo
    [
      Result.get_ok
        (Ltree.parse "(corporation (country (corporation)) (country))");
    ];
  show_check geo
    [ Result.get_ok (Ltree.parse "(country (corporation (country)))") ];

  section "consistency carries over through the embedding";
  let library =
    Sschema.empty
    |> Sschema.require_label "library"
    |> Sschema.require "library" SS.Descendant "book"
    |> Sschema.require "book" SS.Child "title"
    |> Sschema.forbid "library" SS.F_child "title"
  in
  Format.printf "%a" Sschema.pp library;
  (match Sschema.witness library with
  | Ok forest ->
      Format.printf "consistent; a minimal legal document:@.";
      List.iter (fun t -> Format.printf "  %s@." (Ltree.to_string t)) forest
  | Error m -> Format.printf "unexpected: %s@." m);
  let broken =
    Sschema.empty
    |> Sschema.require_label "a"
    |> Sschema.require "a" SS.Child "a"
  in
  Format.printf "@.and 'every a has an a child' with a required a:@.";
  match Sschema.witness broken with
  | Error m -> Format.printf "  rejected: %s@." m
  | Ok _ -> assert false
