examples/quickstart.ml: Bounds_codec Bounds_core Bounds_model Consistency Format Inference Legality List Monitor Result Schema Spec_parser Spec_printer Violation
