examples/updates_demo.mli:
