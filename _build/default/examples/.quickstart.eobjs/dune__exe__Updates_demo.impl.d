examples/updates_demo.ml: Attr Bounds_core Bounds_model Bounds_workload Entry Format Instance Legality List Monitor Oclass Result Update Value
