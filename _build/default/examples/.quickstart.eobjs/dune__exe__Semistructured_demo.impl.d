examples/semistructured_demo.ml: Bounds_core Bounds_semi Format List Ltree Result Sschema Structure_schema
