examples/den_policy.mli:
