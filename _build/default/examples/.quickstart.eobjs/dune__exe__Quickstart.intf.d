examples/quickstart.mli:
