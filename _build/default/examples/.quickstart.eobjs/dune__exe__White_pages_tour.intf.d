examples/white_pages_tour.mli:
