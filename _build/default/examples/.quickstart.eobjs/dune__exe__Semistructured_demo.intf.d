examples/semistructured_demo.mli:
