(** The typing function [tau : A -> T].

    A registry mapping attribute names to their types.  Undeclared
    attributes default to [T_string], reflecting LDAP practice where string
    syntax is the overwhelming default.  The [objectClass] attribute is
    permanently declared with type [string]
    (Section 2: [tau(objectClass) = string]). *)

type t

(** The registry containing only the built-in [objectClass] declaration. *)
val default : t

(** [declare attr ty reg] extends [reg].  Redeclaring an attribute with the
    same type is a no-op; with a different type it is an error, as the
    directory attribute namespace is global (Section 2.4). *)
val declare : Attr.t -> Atype.t -> t -> (t, string) result

(** [declare_exn] raises [Invalid_argument] on conflict. *)
val declare_exn : Attr.t -> Atype.t -> t -> t

(** [of_list decls] builds a registry from scratch. *)
val of_list : (Attr.t * Atype.t) list -> (t, string) result

(** [find reg attr] is [tau(attr)] ([T_string] if undeclared). *)
val find : t -> Attr.t -> Atype.t

(** [is_declared reg attr] *)
val is_declared : t -> Attr.t -> bool

(** All explicit declarations, sorted by attribute name. *)
val declarations : t -> (Attr.t * Atype.t) list

val pp : Format.formatter -> t -> unit
