type t = Atype.t Attr.Map.t

let default = Attr.Map.singleton Attr.object_class Atype.T_string

let declare attr ty reg =
  match Attr.Map.find_opt attr reg with
  | None -> Ok (Attr.Map.add attr ty reg)
  | Some ty' when Atype.equal ty ty' -> Ok reg
  | Some ty' ->
      Error
        (Printf.sprintf "attribute %s already declared with type %s (got %s)"
           (Attr.to_string attr) (Atype.to_string ty') (Atype.to_string ty))

let declare_exn attr ty reg =
  match declare attr ty reg with Ok r -> r | Error m -> invalid_arg m

let of_list decls =
  List.fold_left
    (fun acc (attr, ty) ->
      match acc with Error _ as e -> e | Ok reg -> declare attr ty reg)
    (Ok default) decls

let find reg attr =
  match Attr.Map.find_opt attr reg with Some ty -> ty | None -> Atype.T_string

let is_declared reg attr = Attr.Map.mem attr reg
let declarations reg = Attr.Map.bindings reg

let pp ppf reg =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf (a, ty) ->
         Format.fprintf ppf "attribute %a : %a" Attr.pp a Atype.pp ty))
    (declarations reg)
