(** Attribute types.

    The paper assumes a set [T] of types, each with a domain [dom(t)], and a
    typing function [tau : A -> T] (Section 2).  This module provides the
    concrete type universe used throughout the library. *)

type t =
  | T_string  (** arbitrary UTF-8 / printable strings *)
  | T_int  (** machine integers *)
  | T_bool  (** [TRUE] / [FALSE] *)
  | T_dn  (** distinguished-name-valued strings *)
  | T_telephone  (** telephone numbers: digits, space, [+()-.] *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string

(** [of_string s] parses a type name ([string], [int], [bool], [dn],
    [telephone]), case-insensitively. *)
val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

(** All types, in declaration order.  Useful for generators. *)
val all : t list
