type violation = {
  entry : Entry.id;
  attr : Attr.t;
  value : Value.t;
  expected : Atype.t;
}

let violation_to_string v =
  Printf.sprintf "entry %d: value %s of attribute %s is not of type %s" v.entry
    (Value.to_string v.value) (Attr.to_string v.attr)
    (Atype.to_string v.expected)

let pp_violation ppf v = Format.pp_print_string ppf (violation_to_string v)

let check_entry typing e acc =
  List.fold_left
    (fun acc (a, v) ->
      let ty = Typing.find typing a in
      if Value.has_type ty v then acc
      else { entry = Entry.id e; attr = a; value = v; expected = ty } :: acc)
    acc (Entry.stored_pairs e)

let check typing inst =
  Instance.fold (fun e acc -> check_entry typing e acc) inst [] |> List.rev

let is_well_formed typing inst = check typing inst = []
