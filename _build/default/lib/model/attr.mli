(** Attribute names.

    LDAP attribute names live in a single flat namespace and are
    case-insensitive ([cn], [CN] and [cN] denote the same attribute).  A
    value of type {!t} is a normalized attribute name; all comparisons are
    performed on the normalized form. *)

type t

(** [of_string s] normalizes [s] (ASCII lowercase, surrounding whitespace
    stripped).  Raises [Invalid_argument] if [s] is empty or contains
    characters outside the LDAP attribute-name alphabet
    ([A-Za-z0-9-;.]). *)
val of_string : string -> t

(** [of_string_opt s] is [of_string s], or [None] instead of raising. *)
val of_string_opt : string -> t option

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** The distinguished [objectClass] attribute (Definition 2.1 assumes it is
    always present in the attribute alphabet). *)
val object_class : t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : string list -> Set.t
