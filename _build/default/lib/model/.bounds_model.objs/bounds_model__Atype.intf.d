lib/model/atype.mli: Format
