lib/model/typing.ml: Attr Atype Format List Printf
