lib/model/value.mli: Atype Format
