lib/model/entry.mli: Attr Format Oclass Value
