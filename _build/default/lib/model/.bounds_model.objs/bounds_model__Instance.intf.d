lib/model/instance.mli: Entry Format
