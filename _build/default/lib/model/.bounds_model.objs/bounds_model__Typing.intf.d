lib/model/typing.mli: Attr Atype Format
