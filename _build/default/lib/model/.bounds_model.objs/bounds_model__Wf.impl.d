lib/model/wf.ml: Attr Atype Entry Format Instance List Printf Typing Value
