lib/model/atype.ml: Format Printf Stdlib String
