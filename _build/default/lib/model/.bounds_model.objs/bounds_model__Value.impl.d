lib/model/value.ml: Atype Bool Format Hashtbl Int Printf String
