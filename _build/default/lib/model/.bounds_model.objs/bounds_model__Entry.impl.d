lib/model/entry.ml: Attr Format List Oclass Printf String Value
