lib/model/oclass.mli: Format Map Set
