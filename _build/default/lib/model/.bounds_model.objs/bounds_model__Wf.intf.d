lib/model/wf.mli: Attr Atype Entry Format Instance Typing Value
