lib/model/oclass.ml: Format Hashtbl List Map Printf Set String
