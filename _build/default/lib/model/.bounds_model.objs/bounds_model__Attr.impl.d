lib/model/attr.ml: Format Hashtbl List Map Printf Set String
