lib/model/instance.ml: Entry Format Int List Map Oclass Option Printf Result String
