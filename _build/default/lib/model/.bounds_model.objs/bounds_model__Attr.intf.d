lib/model/attr.mli: Format Map Set
