(** Object class names.

    Object classes are the directory model's (weak) notion of entity type
    (Section 2 of the paper).  Like attribute names they are
    case-insensitive; a {!t} is a normalized class name. *)

type t

(** [of_string s] normalizes [s].  Raises [Invalid_argument] on the empty
    string or characters outside [A-Za-z0-9-_.]. *)
val of_string : string -> t

val of_string_opt : string -> t option
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** The distinguished root class [top] of every class schema
    (Definition 2.3). *)
val top : t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : string list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
