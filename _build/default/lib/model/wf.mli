(** Well-formedness of directory instances (Definition 2.1).

    Forest shape and the objectClass/class-set mirror (conditions 2, 3b, 4)
    hold by construction in {!Instance}; what remains checkable is typing
    (condition 3a): every value must belong to the domain of its
    attribute's declared type. *)

type violation = {
  entry : Entry.id;
  attr : Attr.t;
  value : Value.t;
  expected : Atype.t;
}

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

(** All typing violations in the instance, in entry-id order. *)
val check : Typing.t -> Instance.t -> violation list

val is_well_formed : Typing.t -> Instance.t -> bool
