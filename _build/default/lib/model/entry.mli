(** Directory entries.

    An entry pairs a finite, non-empty set of object classes with a finite
    set of (attribute, value) pairs (Definition 2.1).  Condition 3b of the
    definition — the values of the [objectClass] attribute are exactly the
    classes the entry belongs to — is maintained by construction: the class
    set is the single source of truth, and [objectClass] pairs are
    synthesized on read and rejected on write. *)

type id = int

type t

(** [make ~id ~rdn ~classes pairs] builds an entry.  [pairs] must not
    mention [objectClass] (use [classes]); duplicates are collapsed (value
    sets, not bags).  Raises [Invalid_argument] if [classes] is empty or
    [pairs] mentions [objectClass]. *)
val make :
  id:id -> ?rdn:string -> classes:Oclass.Set.t -> (Attr.t * Value.t) list -> t

val id : t -> id

(** The relative distinguished name, e.g. ["uid=laks"].  Defaults to
    ["id=<n>"]. *)
val rdn : t -> string

(** [class(e)]: the set of object classes the entry belongs to. *)
val classes : t -> Oclass.Set.t

val has_class : t -> Oclass.t -> bool
val n_classes : t -> int

(** [values e a] is the set of values of attribute [a] in [val(e)], sorted.
    [values e objectClass] synthesizes the class names as strings. *)
val values : t -> Attr.t -> Value.t list

val has_attr : t -> Attr.t -> bool
val has_pair : t -> Attr.t -> Value.t -> bool

(** All pairs of [val(e)], including the synthesized [objectClass] pairs. *)
val pairs : t -> (Attr.t * Value.t) list

(** Pairs excluding [objectClass] (what [make] accepts back). *)
val stored_pairs : t -> (Attr.t * Value.t) list

(** The attributes present in [val(e)], including [objectClass]. *)
val attributes : t -> Attr.Set.t

(** [|val(e)|], counting the synthesized [objectClass] pairs. *)
val n_pairs : t -> int

(** Functional updates.  [add_value]/[remove_value] reject [objectClass]
    with [Invalid_argument]; use [with_classes]. *)
val add_value : Attr.t -> Value.t -> t -> t

val remove_value : Attr.t -> Value.t -> t -> t
val remove_attr : Attr.t -> t -> t
val with_classes : Oclass.Set.t -> t -> t
val add_class : Oclass.t -> t -> t
val with_id : id -> t -> t
val with_rdn : string -> t -> t

(** Structural equality on (id, rdn, classes, pairs). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
