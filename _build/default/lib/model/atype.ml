type t = T_string | T_int | T_bool | T_dn | T_telephone

let equal = ( = )
let compare = Stdlib.compare

let to_string = function
  | T_string -> "string"
  | T_int -> "int"
  | T_bool -> "bool"
  | T_dn -> "dn"
  | T_telephone -> "telephone"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "string" -> Ok T_string
  | "int" | "integer" -> Ok T_int
  | "bool" | "boolean" -> Ok T_bool
  | "dn" -> Ok T_dn
  | "telephone" | "tel" -> Ok T_telephone
  | other -> Error (Printf.sprintf "unknown attribute type %S" other)

let pp ppf t = Format.pp_print_string ppf (to_string t)
let all = [ T_string; T_int; T_bool; T_dn; T_telephone ]
