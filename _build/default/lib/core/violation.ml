open Bounds_model

type t =
  | Missing_required_attr of { entry : Entry.id; cls : Oclass.t; attr : Attr.t }
  | Attr_not_allowed of { entry : Entry.id; attr : Attr.t }
  | Unknown_class of { entry : Entry.id; cls : Oclass.t }
  | No_core_class of { entry : Entry.id }
  | Missing_superclass of { entry : Entry.id; cls : Oclass.t; super : Oclass.t }
  | Incomparable_classes of { entry : Entry.id; c1 : Oclass.t; c2 : Oclass.t }
  | Aux_not_allowed of { entry : Entry.id; aux : Oclass.t }
  | Missing_required_class of { cls : Oclass.t }
  | Unsatisfied_rel of { entry : Entry.id; rel : Structure_schema.required }
  | Forbidden_rel of {
      source : Entry.id;
      target : Entry.id;
      rel : Structure_schema.forbidden;
    }
  | Type_violation of { entry : Entry.id; attr : Attr.t; expected : Atype.t }
  | Multiple_values of { entry : Entry.id; attr : Attr.t; count : int }
  | Duplicate_key of { attr : Attr.t; value : Value.t; entries : Entry.id list }

let to_string = function
  | Missing_required_attr { entry; cls; attr } ->
      Printf.sprintf "entry %d: missing attribute %s required by class %s" entry
        (Attr.to_string attr) (Oclass.to_string cls)
  | Attr_not_allowed { entry; attr } ->
      Printf.sprintf "entry %d: attribute %s is not allowed by any of its classes"
        entry (Attr.to_string attr)
  | Unknown_class { entry; cls } ->
      Printf.sprintf "entry %d: object class %s is not declared in the schema" entry
        (Oclass.to_string cls)
  | No_core_class { entry } ->
      Printf.sprintf "entry %d: belongs to no core object class" entry
  | Missing_superclass { entry; cls; super } ->
      Printf.sprintf "entry %d: belongs to %s but not to its superclass %s" entry
        (Oclass.to_string cls) (Oclass.to_string super)
  | Incomparable_classes { entry; c1; c2 } ->
      Printf.sprintf
        "entry %d: belongs to incomparable core classes %s and %s (single inheritance)"
        entry (Oclass.to_string c1) (Oclass.to_string c2)
  | Aux_not_allowed { entry; aux } ->
      Printf.sprintf
        "entry %d: auxiliary class %s is not associated with any of its core classes"
        entry (Oclass.to_string aux)
  | Missing_required_class { cls } ->
      Printf.sprintf "no entry of required class %s exists" (Oclass.to_string cls)
  | Unsatisfied_rel { entry; rel } ->
      Format.asprintf "entry %d violates required relationship %a" entry
        Structure_schema.pp_required rel
  | Forbidden_rel { source; target; rel } ->
      Format.asprintf "entries %d and %d violate forbidden relationship %a" source
        target Structure_schema.pp_forbidden rel
  | Type_violation { entry; attr; expected } ->
      Printf.sprintf "entry %d: attribute %s has a value not of type %s" entry
        (Attr.to_string attr) (Atype.to_string expected)
  | Multiple_values { entry; attr; count } ->
      Printf.sprintf "entry %d: single-valued attribute %s has %d values" entry
        (Attr.to_string attr) count
  | Duplicate_key { attr; value; entries } ->
      Printf.sprintf "key attribute %s: value %s shared by entries %s"
        (Attr.to_string attr) (Value.to_string value)
        (String.concat ", " (List.map string_of_int entries))

let pp ppf v = Format.pp_print_string ppf (to_string v)
let compare = Stdlib.compare
let equal v1 v2 = compare v1 v2 = 0
