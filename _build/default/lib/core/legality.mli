(** Full legality testing (Definition 2.7, Theorem 3.1).

    Combines the per-entry content checks of Section 3.1 with the
    query-reduction structure checks of Section 3.2.  Total cost is
    O(|D| · (max|class(e)| + max|Aux(c)|·depth(H) + max|val(e)| +
    max Σ|a(c)| + |S|)) — linear in the instance for a fixed schema,
    which benchmark [legality_scaling] validates against the quadratic
    {!Naive_legality} baseline. *)

open Bounds_model
open Bounds_query

(** All violations: typing, content, structure — and, when [extensions]
    is [true] (default), the Section 6.1 single-valued and key checks. *)
val check :
  ?extensions:bool ->
  ?index:Index.t ->
  ?vindex:Vindex.t ->
  Schema.t ->
  Instance.t ->
  Violation.t list

val is_legal :
  ?extensions:bool -> ?index:Index.t -> ?vindex:Vindex.t -> Schema.t -> Instance.t -> bool
