open Bounds_model

type node = Cls of Oclass.t | Empty

let node_equal n1 n2 =
  match (n1, n2) with
  | Cls c1, Cls c2 -> Oclass.equal c1 c2
  | Empty, Empty -> true
  | (Cls _ | Empty), _ -> false

let node_compare n1 n2 =
  match (n1, n2) with
  | Cls c1, Cls c2 -> Oclass.compare c1 c2
  | Empty, Empty -> 0
  | Empty, Cls _ -> -1
  | Cls _, Empty -> 1

let pp_node ppf = function
  | Cls c -> Oclass.pp ppf c
  | Empty -> Format.pp_print_string ppf "∅"

type t =
  | Exists of node
  | Req of node * Structure_schema.rel * node
  | Forb of node * Structure_schema.forb * node
  | Above_or_self of node * node

let rank = function
  | Exists _ -> 0
  | Req _ -> 1
  | Forb _ -> 2
  | Above_or_self _ -> 3

let compare e1 e2 =
  match (e1, e2) with
  | Exists n1, Exists n2 -> node_compare n1 n2
  | Req (a1, r1, b1), Req (a2, r2, b2) ->
      let c = node_compare a1 a2 in
      if c <> 0 then c
      else
        let c = Stdlib.compare r1 r2 in
        if c <> 0 then c else node_compare b1 b2
  | Forb (a1, f1, b1), Forb (a2, f2, b2) ->
      let c = node_compare a1 a2 in
      if c <> 0 then c
      else
        let c = Stdlib.compare f1 f2 in
        if c <> 0 then c else node_compare b1 b2
  | Above_or_self (a1, b1), Above_or_self (a2, b2) ->
      let c = node_compare a1 a2 in
      if c <> 0 then c else node_compare b1 b2
  | (Exists _ | Req _ | Forb _ | Above_or_self _), _ ->
      Int.compare (rank e1) (rank e2)

let equal e1 e2 = compare e1 e2 = 0

let pp ppf = function
  | Exists n -> Format.fprintf ppf "%a•" pp_node n
  | Req (a, r, b) ->
      let arrow =
        match r with
        | Structure_schema.Child -> "—child→"
        | Structure_schema.Descendant -> "—desc↠"
        | Structure_schema.Parent -> "—parent→"
        | Structure_schema.Ancestor -> "—anc↠"
      in
      Format.fprintf ppf "%a %s %a" pp_node a arrow pp_node b
  | Forb (a, f, b) ->
      let arrow =
        match f with
        | Structure_schema.F_child -> "—child↛"
        | Structure_schema.F_descendant -> "—desc↛"
      in
      Format.fprintf ppf "%a %s %a" pp_node a arrow pp_node b
  | Above_or_self (a, b) -> Format.fprintf ppf "%a ⇑= %a" pp_node a pp_node b

let to_string e = Format.asprintf "%a" pp e

let bottom = Exists Empty
let unsat n = Req (n, Structure_schema.Descendant, Empty)

let of_structure s =
  List.map (fun c -> Exists (Cls c))
    (Oclass.Set.elements (Structure_schema.required_classes s))
  @ List.map
      (fun (ci, r, cj) -> Req (Cls ci, r, Cls cj))
      (Structure_schema.required_rels s)
  @ List.map
      (fun (ci, f, cj) -> Forb (Cls ci, f, Cls cj))
      (Structure_schema.forbidden_rels s)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
