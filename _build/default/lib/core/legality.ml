let check ?(extensions = true) ?index ?vindex schema inst =
  Content_legality.check schema inst
  @ Structure_legality.check ?index ?vindex schema inst
  @
  if extensions then Single_valued.check schema inst @ Keys.check schema inst
  else []

let is_legal ?extensions ?index ?vindex schema inst =
  check ?extensions ?index ?vindex schema inst = []
