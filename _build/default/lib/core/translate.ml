open Bounds_model
open Bounds_query

let axis_of_rel : Structure_schema.rel -> Query.axis = function
  | Structure_schema.Child -> Query.Child
  | Structure_schema.Descendant -> Query.Descendant
  | Structure_schema.Parent -> Query.Parent
  | Structure_schema.Ancestor -> Query.Ancestor

let axis_of_forb : Structure_schema.forb -> Query.axis = function
  | Structure_schema.F_child -> Query.Child
  | Structure_schema.F_descendant -> Query.Descendant

let required_rel (ci, r, cj) =
  let si = Query.select_class ci and sj = Query.select_class cj in
  Query.Minus (si, Query.Chi (axis_of_rel r, si, sj))

(* For forbidden relationships Figure 4 retrieves the ci-entries that have
   an offending child/descendant, i.e. χ with q1 = ci and q2 = cj on the
   downward axis. *)
let forbidden_rel (ci, f, cj) =
  Query.Chi (axis_of_forb f, Query.select_class ci, Query.select_class cj)

let required_class c = Query.select_class c

type expectation = Must_be_empty | Must_be_nonempty

type obligation =
  | Oblig_required of Structure_schema.required
  | Oblig_forbidden of Structure_schema.forbidden
  | Oblig_class of Oclass.t

let all s =
  List.map
    (fun r -> (Oblig_required r, required_rel r, Must_be_empty))
    (Structure_schema.required_rels s)
  @ List.map
      (fun f -> (Oblig_forbidden f, forbidden_rel f, Must_be_empty))
      (Structure_schema.forbidden_rels s)
  @ List.map
      (fun c -> (Oblig_class c, required_class c, Must_be_nonempty))
      (Oclass.Set.elements (Structure_schema.required_classes s))

let pp_obligation ppf = function
  | Oblig_required r -> Structure_schema.pp_required ppf r
  | Oblig_forbidden f -> Structure_schema.pp_forbidden ppf f
  | Oblig_class c -> Format.fprintf ppf "exists %a" Oclass.pp c
