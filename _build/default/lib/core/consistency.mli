(** Schema consistency (Section 5, Theorem 5.2).

    A schema is consistent iff it admits at least one legal instance;
    Theorem 5.2 states this is decidable by checking whether the
    inference system derives [∅•].  [decide] settles the question
    constructively in both directions: an inconsistent schema comes with
    a proof tree, a consistent one with a legal witness instance that has
    been re-verified by the independent {!Legality} checker.

    {b Reconstruction caveat.}  The paper asserts Theorem 5.2 without a
    proof, explicitly notes its published rule set is incomplete for
    logical implication, and the completeness argument for inconsistency
    detection was never published.  Our reconstruction is {e sound} in
    both directions (an [Inconsistent] verdict carries a machine-checked
    derivation, a [Consistent] verdict a machine-checked witness), and
    constructively resolves more than 99.9% of random schemas (pinned by
    a deterministic coverage test); the remaining long tail — schemas the
    saturation cannot refute but the greedy witness chase cannot realize —
    is reported honestly as {!Unresolved} rather than guessed. *)

open Bounds_model

type verdict =
  | Consistent of { witness : Instance.t; passes : int; derived : int }
      (** [witness] is legal w.r.t. the schema (verified). *)
  | Inconsistent of { proof : Inference.proof; passes : int; derived : int }
      (** [proof] derives [∅•] from the schema's elements. *)
  | Unresolved of { reason : string; passes : int; derived : int }
      (** the inference system found no contradiction, but the witness
          chase could not build a legal instance — truth unknown. *)

val pp_verdict : Format.formatter -> verdict -> unit

val decide : ?max_nodes:int -> Schema.t -> verdict

(** Inference-only check, no witness construction: [false] means
    definitely inconsistent, [true] means no contradiction derivable
    (consistent for every schema {!decide} can resolve). *)
val is_consistent : Schema.t -> bool
