open Bounds_model

(* Direct implementation of Definition 2.6, one pairwise scan per schema
   element. *)
let check_structure (schema : Schema.t) inst =
  let s = schema.structure in
  let entries = Instance.entries inst in
  let viols = ref [] in
  let add v = viols := v :: !viols in
  let related rel ei ej =
    let i = Entry.id ei and j = Entry.id ej in
    match rel with
    | Structure_schema.Child -> Instance.parent inst j = Some i
    | Structure_schema.Parent -> Instance.parent inst i = Some j
    | Structure_schema.Descendant -> Instance.is_strict_ancestor inst ~anc:i ~desc:j
    | Structure_schema.Ancestor -> Instance.is_strict_ancestor inst ~anc:j ~desc:i
  in
  List.iter
    (fun ((ci, rel, cj) as r) ->
      List.iter
        (fun ei ->
          if Entry.has_class ei ci then
            let ok =
              List.exists (fun ej -> Entry.has_class ej cj && related rel ei ej) entries
            in
            if not ok then
              add (Violation.Unsatisfied_rel { entry = Entry.id ei; rel = r }))
        entries)
    (Structure_schema.required_rels s);
  List.iter
    (fun ((ci, f, cj) as r) ->
      let down =
        match f with
        | Structure_schema.F_child -> Structure_schema.Child
        | Structure_schema.F_descendant -> Structure_schema.Descendant
      in
      List.iter
        (fun ei ->
          if Entry.has_class ei ci then
            List.iter
              (fun ej ->
                if Entry.has_class ej cj && related down ei ej then
                  add
                    (Violation.Forbidden_rel
                       { source = Entry.id ei; target = Entry.id ej; rel = r }))
              entries)
        entries)
    (Structure_schema.forbidden_rels s);
  Oclass.Set.iter
    (fun c ->
      if not (List.exists (fun e -> Entry.has_class e c) entries) then
        add (Violation.Missing_required_class { cls = c }))
    (Structure_schema.required_classes s);
  List.rev !viols

let check ?(extensions = true) schema inst =
  Content_legality.check schema inst
  @ check_structure schema inst
  @
  if extensions then Single_valued.check schema inst @ Keys.check schema inst
  else []

let is_legal ?extensions schema inst = check ?extensions schema inst = []
