open Bounds_model

type t = {
  parents : Oclass.t Oclass.Map.t; (* core class -> parent; top absent *)
  kids : Oclass.t list Oclass.Map.t; (* core class -> children, insertion order *)
  core : Oclass.Set.t;
  aux : Oclass.Set.t;
  aux_map : Oclass.Set.t Oclass.Map.t; (* Aux : core -> aux set *)
}

let empty =
  {
    parents = Oclass.Map.empty;
    kids = Oclass.Map.empty;
    core = Oclass.Set.singleton Oclass.top;
    aux = Oclass.Set.empty;
    aux_map = Oclass.Map.empty;
  }

let is_core t c = Oclass.Set.mem c t.core
let is_aux t c = Oclass.Set.mem c t.aux
let mem t c = is_core t c || is_aux t c

let add_core c ~parent t =
  if mem t c then
    Error (Printf.sprintf "class %s already declared" (Oclass.to_string c))
  else if not (is_core t parent) then
    Error
      (Printf.sprintf "parent class %s of %s is not a declared core class"
         (Oclass.to_string parent) (Oclass.to_string c))
  else
    let siblings =
      match Oclass.Map.find_opt parent t.kids with Some l -> l | None -> []
    in
    Ok
      {
        t with
        parents = Oclass.Map.add c parent t.parents;
        kids = Oclass.Map.add parent (siblings @ [ c ]) t.kids;
        core = Oclass.Set.add c t.core;
      }

let add_core_exn c ~parent t =
  match add_core c ~parent t with Ok t -> t | Error m -> invalid_arg m

let add_aux c t =
  if mem t c then
    Error (Printf.sprintf "class %s already declared" (Oclass.to_string c))
  else Ok { t with aux = Oclass.Set.add c t.aux }

let add_aux_exn c t =
  match add_aux c t with Ok t -> t | Error m -> invalid_arg m

let allow_aux ~core aux t =
  if not (is_core t core) then
    Error (Printf.sprintf "%s is not a declared core class" (Oclass.to_string core))
  else if not (is_aux t aux) then
    Error (Printf.sprintf "%s is not a declared auxiliary class" (Oclass.to_string aux))
  else
    let cur =
      match Oclass.Map.find_opt core t.aux_map with
      | Some s -> s
      | None -> Oclass.Set.empty
    in
    Ok { t with aux_map = Oclass.Map.add core (Oclass.Set.add aux cur) t.aux_map }

let allow_aux_exn ~core aux t =
  match allow_aux ~core aux t with Ok t -> t | Error m -> invalid_arg m

let core_classes t = t.core
let aux_classes t = t.aux

let aux_of t c =
  match Oclass.Map.find_opt c t.aux_map with
  | Some s -> s
  | None -> Oclass.Set.empty

let parent t c = Oclass.Map.find_opt c t.parents

let children t c =
  match Oclass.Map.find_opt c t.kids with Some l -> l | None -> []

let superclasses t c =
  let rec go c acc =
    match parent t c with Some p -> go p (p :: acc) | None -> List.rev acc
  in
  go c []

let up_closure t c = Oclass.Set.of_list (c :: superclasses t c)

let is_subclass t ~sub ~super =
  Oclass.equal sub super
  || List.exists (Oclass.equal super) (superclasses t sub)

let comparable t c1 c2 =
  is_subclass t ~sub:c1 ~super:c2 || is_subclass t ~sub:c2 ~super:c1

let disjoint t c1 c2 = is_core t c1 && is_core t c2 && not (comparable t c1 c2)

let depth_of t c = List.length (superclasses t c) + 1

let depth t = Oclass.Set.fold (fun c d -> max d (depth_of t c)) t.core 0

let max_aux t =
  Oclass.Map.fold (fun _ s m -> max m (Oclass.Set.cardinal s)) t.aux_map 0

let equal t1 t2 =
  Oclass.Map.equal Oclass.equal t1.parents t2.parents
  && Oclass.Set.equal t1.core t2.core
  && Oclass.Set.equal t1.aux t2.aux
  && Oclass.Map.equal Oclass.Set.equal
       (Oclass.Map.filter (fun _ s -> not (Oclass.Set.is_empty s)) t1.aux_map)
       (Oclass.Map.filter (fun _ s -> not (Oclass.Set.is_empty s)) t2.aux_map)

let pp ppf t =
  let rec pp_node indent c =
    Format.fprintf ppf "%s%a" (String.make indent ' ') Oclass.pp c;
    let auxs = aux_of t c in
    if not (Oclass.Set.is_empty auxs) then
      Format.fprintf ppf " %a" Oclass.pp_set auxs;
    Format.fprintf ppf "@.";
    List.iter (pp_node (indent + 2)) (children t c)
  in
  pp_node 0 Oclass.top;
  if not (Oclass.Set.is_empty t.aux) then
    Format.fprintf ppf "auxiliary: %a@." Oclass.pp_set t.aux
