open Bounds_model
module SS = Structure_schema

type action =
  | Added_value of { entry : Entry.id; attr : Attr.t; value : Value.t }
  | Removed_attribute of { entry : Entry.id; attr : Attr.t }
  | Dropped_ill_typed of { entry : Entry.id; attr : Attr.t }
  | Kept_first_value of { entry : Entry.id; attr : Attr.t }
  | Rekeyed of { entry : Entry.id; attr : Attr.t; value : Value.t }
  | Closed_classes of { entry : Entry.id; classes : Oclass.Set.t }
  | Grafted of { parent : Entry.id option; size : int; for_class : Oclass.t }
  | Deleted_subtree of { root : Entry.id }

let pp_action ppf = function
  | Added_value { entry; attr; value } ->
      Format.fprintf ppf "entry %d: added %a: %a" entry Attr.pp attr Value.pp value
  | Removed_attribute { entry; attr } ->
      Format.fprintf ppf "entry %d: removed attribute %a" entry Attr.pp attr
  | Dropped_ill_typed { entry; attr } ->
      Format.fprintf ppf "entry %d: dropped ill-typed values of %a" entry Attr.pp attr
  | Kept_first_value { entry; attr } ->
      Format.fprintf ppf "entry %d: kept only the first value of %a" entry Attr.pp attr
  | Rekeyed { entry; attr; value } ->
      Format.fprintf ppf "entry %d: re-keyed %a to %a" entry Attr.pp attr Value.pp value
  | Closed_classes { entry; classes } ->
      Format.fprintf ppf "entry %d: class set normalized to %a" entry Oclass.pp_set
        classes
  | Grafted { parent; size; for_class } ->
      Format.fprintf ppf "grafted a %d-entry subtree for class %a %s" size Oclass.pp
        for_class
        (match parent with
        | None -> "at the top level"
        | Some p -> Printf.sprintf "under entry %d" p)
  | Deleted_subtree { root } ->
      Format.fprintf ppf "deleted the subtree rooted at entry %d" root

type outcome = {
  instance : Instance.t;
  actions : action list;
  remaining : Violation.t list;
}

type state = {
  schema : Schema.t;
  inf : Inference.t Lazy.t;
  mutable inst : Instance.t;
  mutable actions : action list;
  mutable changed : bool;
  mutable key_seq : int;
}

let act st a =
  st.actions <- a :: st.actions;
  st.changed <- true

let update st id f =
  match Instance.update_entry id f st.inst with
  | Ok inst -> st.inst <- inst
  | Error _ -> ()

let placeholder st attr =
  let unique = Attr.Set.mem attr st.schema.Schema.keys in
  let ty = Typing.find st.schema.Schema.typing attr in
  if unique then begin
    st.key_seq <- st.key_seq + 1;
    match ty with
    | Atype.T_int -> Some (Value.Int (1_000_000 + st.key_seq))
    | Atype.T_string -> Some (Value.String (Printf.sprintf "repair%d" st.key_seq))
    | Atype.T_dn -> Some (Value.Dn (Printf.sprintf "id=repair%d" st.key_seq))
    | Atype.T_telephone -> Some (Value.String (string_of_int (2_000_000 + st.key_seq)))
    | Atype.T_bool -> None (* a boolean key cannot be made unique at scale *)
  end
  else
    Some
      (match ty with
      | Atype.T_int -> Value.Int 0
      | Atype.T_string -> Value.String "unknown"
      | Atype.T_dn -> Value.Dn "id=0"
      | Atype.T_bool -> Value.Bool true
      | Atype.T_telephone -> Value.String "0")

(* normalize a class set: declared classes only, auxiliaries that some
   core class of the set allows, cores closed upward; [keep_deepest_only]
   additionally resolves incomparable cores in favour of the deepest. *)
let normalized_classes st ~keep_deepest_only e =
  let cs = st.schema.Schema.classes in
  let declared =
    Oclass.Set.filter (fun c -> Class_schema.mem cs c) (Entry.classes e)
  in
  let cores = Oclass.Set.filter (Class_schema.is_core cs) declared in
  let cores =
    if Oclass.Set.is_empty cores then Oclass.Set.singleton Oclass.top else cores
  in
  let cores =
    if keep_deepest_only then
      let deepest =
        Oclass.Set.fold
          (fun c best ->
            if Class_schema.depth_of cs c > Class_schema.depth_of cs best then c
            else best)
          cores Oclass.top
      in
      Class_schema.up_closure cs deepest
    else
      Oclass.Set.fold
        (fun c acc -> Oclass.Set.union acc (Class_schema.up_closure cs c))
        cores Oclass.Set.empty
  in
  let auxes =
    Oclass.Set.filter
      (fun c ->
        Class_schema.is_aux cs c
        && Oclass.Set.exists
             (fun core -> Oclass.Set.mem c (Class_schema.aux_of cs core))
             cores)
      declared
  in
  Oclass.Set.union cores auxes

let close_classes st ~keep_deepest_only id =
  match Instance.find st.inst id with
  | None -> ()
  | Some e ->
      let classes = normalized_classes st ~keep_deepest_only e in
      if not (Oclass.Set.equal classes (Entry.classes e)) then begin
        update st id (Entry.with_classes classes);
        act st (Closed_classes { entry = id; classes })
      end

let graft st ~parent ~for_class sub =
  match Instance.graft ~parent sub st.inst with
  | Ok inst ->
      st.inst <- inst;
      act st (Grafted { parent; size = Instance.size sub; for_class })
  | Error _ -> ()

let delete st root =
  if Instance.mem st.inst root then
    match Instance.remove_subtree root st.inst with
    | Ok inst ->
        st.inst <- inst;
        act st (Deleted_subtree { root })
    | Error _ -> ()

let handle st ~destructive violation =
  let alive id = Instance.mem st.inst id in
  match violation with
  | Violation.Missing_required_attr { entry; attr; _ } when alive entry -> (
      match placeholder st attr with
      | Some value
        when (Instance.find st.inst entry
             |> Option.fold ~none:false ~some:(fun e -> Entry.values e attr = []))
        ->
          update st entry (Entry.add_value attr value);
          act st (Added_value { entry; attr; value })
      | Some _ | None -> ())
  | Violation.Attr_not_allowed { entry; attr } when alive entry ->
      update st entry (Entry.remove_attr attr);
      act st (Removed_attribute { entry; attr })
  | Violation.Type_violation { entry; attr; expected } when alive entry ->
      update st entry (fun e ->
          List.fold_left
            (fun e v ->
              if Value.has_type expected v then e else Entry.remove_value attr v e)
            e (Entry.values e attr));
      act st (Dropped_ill_typed { entry; attr })
  | Violation.Multiple_values { entry; attr; _ } when alive entry ->
      update st entry (fun e ->
          match Entry.values e attr with
          | [] | [ _ ] -> e
          | _ :: extra -> List.fold_left (fun e v -> Entry.remove_value attr v e) e extra);
      act st (Kept_first_value { entry; attr })
  | Violation.Duplicate_key { attr; value; entries } ->
      List.iteri
        (fun i entry ->
          if i > 0 && alive entry then
            match placeholder st attr with
            | Some fresh ->
                update st entry (fun e ->
                    Entry.add_value attr fresh (Entry.remove_value attr value e));
                act st (Rekeyed { entry; attr; value = fresh })
            | None -> ())
        entries
  | Violation.Unknown_class { entry; _ }
  | Violation.No_core_class { entry }
  | Violation.Missing_superclass { entry; _ }
  | Violation.Aux_not_allowed { entry; aux = _ } ->
      if alive entry then close_classes st ~keep_deepest_only:false entry
  | Violation.Incomparable_classes { entry; _ } ->
      if destructive && alive entry then
        close_classes st ~keep_deepest_only:true entry
  | Violation.Missing_required_class { cls } -> (
      match
        Witness.seed_forest (Lazy.force st.inf)
          ~first_id:(Instance.fresh_id st.inst) cls
      with
      | Ok sub -> graft st ~parent:None ~for_class:cls sub
      | Error _ -> ())
  | Violation.Unsatisfied_rel { entry; rel = (_, (SS.Child | SS.Descendant), cj) }
    when alive entry -> (
      let attach_classes = Entry.classes (Instance.entry st.inst entry) in
      let above =
        List.fold_left
          (fun acc a -> Oclass.Set.union acc (Entry.classes (Instance.entry st.inst a)))
          attach_classes
          (Instance.ancestors st.inst entry)
      in
      match
        Witness.tree_for_attach (Lazy.force st.inf)
          ~first_id:(Instance.fresh_id st.inst) ~above ~attach_classes cj
      with
      | Ok sub -> graft st ~parent:(Some entry) ~for_class:cj sub
      | Error _ -> ())
  | Violation.Unsatisfied_rel { entry; rel = (_, (SS.Parent | SS.Ancestor), _) } ->
      (* cannot conjure a parent in place; removing the violator is the
         only repair, and it is destructive *)
      if destructive then delete st entry
  | Violation.Forbidden_rel { target; _ } -> if destructive then delete st target
  | Violation.Missing_required_attr _ | Violation.Attr_not_allowed _
  | Violation.Type_violation _ | Violation.Multiple_values _
  | Violation.Unsatisfied_rel _ ->
      (* the entry vanished under an earlier repair this round *)
      ()

let fix ?(destructive = false) ?(max_rounds = 12) schema inst =
  let st =
    {
      schema;
      inf = lazy (Inference.saturate schema);
      inst;
      actions = [];
      changed = true;
      key_seq = 0;
    }
  in
  let rounds = ref 0 in
  while st.changed && !rounds < max_rounds do
    incr rounds;
    st.changed <- false;
    List.iter (handle st ~destructive) (Legality.check schema st.inst)
  done;
  {
    instance = st.inst;
    actions = List.rev st.actions;
    remaining = Legality.check schema st.inst;
  }
