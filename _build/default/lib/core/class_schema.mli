(** Class schema (Definition 2.3).

    A single-inheritance tree of {e core} object classes rooted at [top],
    a set of {e auxiliary} classes, and a function [Aux] giving the
    auxiliary classes permitted for each core class.

    The tree encodes two kinds of schema elements: [ci ⊑ cj] (every entry
    in [ci] also belongs to [cj]) for ancestor pairs, and [ci ∦ cj]
    (no entry belongs to both) for incomparable core pairs — the single
    inheritance semantics of Section 2.2. *)

open Bounds_model

type t

(** Just [top], no auxiliaries. *)
val empty : t

(** [add_core c ~parent t] — [parent] must already be a core class;
    [c] must be new (neither core nor auxiliary). *)
val add_core : Oclass.t -> parent:Oclass.t -> t -> (t, string) result

val add_core_exn : Oclass.t -> parent:Oclass.t -> t -> t

(** [add_aux c t] declares an auxiliary class. *)
val add_aux : Oclass.t -> t -> (t, string) result

val add_aux_exn : Oclass.t -> t -> t

(** [allow_aux ~core aux t] adds [aux] to [Aux(core)]; both must be
    declared with the right kind. *)
val allow_aux : core:Oclass.t -> Oclass.t -> t -> (t, string) result

val allow_aux_exn : core:Oclass.t -> Oclass.t -> t -> t

val is_core : t -> Oclass.t -> bool
val is_aux : t -> Oclass.t -> bool
val mem : t -> Oclass.t -> bool
val core_classes : t -> Oclass.Set.t
val aux_classes : t -> Oclass.Set.t

(** [Aux(c)]; empty for non-core classes. *)
val aux_of : t -> Oclass.t -> Oclass.Set.t

(** Parent in the core tree; [None] for [top] and for non-core classes. *)
val parent : t -> Oclass.t -> Oclass.t option

val children : t -> Oclass.t -> Oclass.t list

(** Strict superclasses, nearest first, ending with [top]. *)
val superclasses : t -> Oclass.t -> Oclass.t list

(** [c] together with its superclasses — the class set a most-specific
    core class [c] induces on an entry. *)
val up_closure : t -> Oclass.t -> Oclass.Set.t

(** Reflexive subclass test on core classes. *)
val is_subclass : t -> sub:Oclass.t -> super:Oclass.t -> bool

(** Comparable = one is a (reflexive) subclass of the other. *)
val comparable : t -> Oclass.t -> Oclass.t -> bool

(** Incomparable core pair — the [ci ∦ cj] schema element. *)
val disjoint : t -> Oclass.t -> Oclass.t -> bool

(** Depth of the core tree (depth of [top] alone is 1). *)
val depth : t -> int

val depth_of : t -> Oclass.t -> int

(** Max over core classes of |Aux(c)| — a Theorem 3.1 size term. *)
val max_aux : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
