open Bounds_model

let check_entry (schema : Schema.t) e =
  Attr.Set.fold
    (fun attr acc ->
      let count = List.length (Entry.values e attr) in
      if count > 1 then
        Violation.Multiple_values { entry = Entry.id e; attr; count } :: acc
      else acc)
    schema.single_valued []
  |> List.rev

let check schema inst =
  List.rev
    (Instance.fold (fun e acc -> List.rev_append (check_entry schema e) acc) inst [])
