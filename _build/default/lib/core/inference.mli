(** The inference system of Section 5 (Figures 6 and 7).

    Saturates the structure-schema elements, in interaction with the core
    class hierarchy, under sound inference rules until a fixpoint;
    the schema is inconsistent iff the marker [∅•] becomes derivable
    (Theorem 5.2).  Saturation is polynomial in the schema size: the
    element universe is O(|Cc|²) and each pass closes under finitely many
    rules.

    The figures in the paper's source text are partially garbled, so each
    rule is restated here with its semantic justification.  [ci ⊑ cj]
    denotes the static subclass relation, [ci ∦ cj] static incomparability
    of core classes (disjointness under single inheritance), and
    [unsat c] abbreviates [Req (c, Descendant, Empty)] /
    [Req (c, Ancestor, Empty)] — "no entry may belong to c".

    {b Figure 6 — cycles.}
    - [exists-target]: [c•], [Req(c,R,d)] ⊢ [d•] for every axis [R]
      (a required neighbour of an existing entry exists).
    - [exists-up]: [c•], [c ⊑ d] ⊢ [d•].
    - [path]: [Req(c,Ch,d)] ⊢ [Req(c,De,d)]; [Req(c,Pa,d)] ⊢ [Req(c,An,d)].
    - [trans]: [Req(c,De,d)], [Req(d,De,e)] ⊢ [Req(c,De,e)]; same for [An].
    - [loop]: [Req(c,De,c)] ⊢ [unsat c]; [Req(c,An,c)] ⊢ [unsat c]
      (a self-loop forces an infinite chain; instances are finite).
    - [source-isa]: [Req(c,R,d)], [c' ⊑ c] ⊢ [Req(c',R,d)].
    - [target-isa]: [Req(c,R,d)], [d ⊑ d'] ⊢ [Req(c,R,d')].

    {b Figure 7 — contradictions.}
    - [top-path]: [Req(c,De,top)] ⊢ [Req(c,Ch,top)];
      [Req(c,An,top)] ⊢ [Req(c,Pa,top)] (every entry belongs to [top], so
      having a descendant is having a child).
    - [forb-top]: [Forb(c,FCh,top)] ⊢ [Forb(c,FDe,top)] (childless ⟹
      descendant-less); [Forb(top,FCh,c)] ⊢ [Forb(top,FDe,c)] (c-entries
      parentless ⟹ ancestor-less).
    - [forb-source-isa] / [forb-target-isa]: forbidden relationships close
      {e downward} on both sides: [Forb(c,F,d)], [c' ⊑ c] ⊢ [Forb(c',F,d)],
      and [d' ⊑ d] ⊢ [Forb(c,F,d')].
    - [conflict-ch]: [Req(c,Ch,d)], [Forb(c,FCh,d)] ⊢ [unsat c];
      [conflict-de] likewise on the descendant axis.
    - [conflict-pa]: [Req(c,Pa,d)], [Forb(d,FCh,c)] ⊢ [unsat c];
      [conflict-an]: [Req(c,An,d)], [Forb(d,FDe,c)] ⊢ [unsat c].
    - [parenthood]: [Req(c,Pa,d)], [Req(c,Pa,e)], [d ∦ e] ⊢ [unsat c]
      (the unique parent cannot belong to two incomparable core classes).
    - [ancestorhood]: [Req(c,An,d)], [Req(c,An,e)], [d ∦ e],
      [Forb(d,FDe,e)], [Forb(e,FDe,d)] ⊢ [unsat c] (two ancestors of one
      entry lie on a chain, so one must be the other's descendant).
    - [an-pa-conflict]: [Req(c,Pa,p)], [Req(c,An,a)], [a ∦ p],
      [Forb(a,FDe,p)] ⊢ [unsat c] (the [a]-ancestor must be a strict
      ancestor of the parent).
    - [an-de-conflict]: [Req(c,An,a)], [Req(c,De,d)], [Forb(a,FDe,d)]
      ⊢ [unsat c] (the required descendant is a descendant of the
      required ancestor).
    - [ch-pa-conflict]: [Req(c,Ch,d)], [Req(d,Pa,x)], [c ∦ x] ⊢ [unsat c]
      (the required child's required parent is [c] itself).
    {b The above-or-self judgment.}  [AoS(c,x)] asserts that every
    [c]-entry is an [x]-entry or has an [x]-ancestor.  It captures the
    disjunction "at or above" that pure [Req] elements cannot, and closes
    cycle detection over paths that pass through the entry itself:
    - class-schema axioms: [AoS(c,x)] for every [c ⊑ x] (including
      [c = x]);
    - [aos-an]: [Req(c,An,x)] ⊢ [AoS(c,x)];
    - [aos-ch-an]: [Req(c,Ch,d)], [Req(d,An,x)] ⊢ [AoS(c,x)] (the
      required child's strict ancestors are exactly [c] and [c]'s
      ancestors);
    - [aos-source-isa] / [aos-target-isa] / [aos-trans]: closure;
    - [aos-pa]: [AoS(c,x)], [Req(x,Pa,y)] ⊢ [Req(c,An,y)] (whether the
      [x]-role is played by the [c]-entry itself or by an ancestor, its
      required parent sits strictly above the [c]-entry);
    - [aos-an-lift]: [AoS(c,x)], [Req(x,An,y)] ⊢ [Req(c,An,y)];
    - [aos-disj]: [AoS(c,x)], [c ∦ x] ⊢ [Req(c,An,x)] (the entry cannot
      itself be [x]).
    - [de-pa-lift]: [Req(c,De,d)], [Req(d,Pa,x)], [c ∦ x] ⊢ [Req(c,De,x)]
      (the required descendant's parent lies on the path at or strictly
      below [c]; barred from being [c], it is a descendant of [c]).
    - [de-an-lift]: [Req(c,De,d)], [Req(d,An,x)], [c ∦ x],
      [Forb(c,FDe,x)] ⊢ [Req(c,An,x)] (the descendant's [x]-ancestor is
      above, at, or below [c]; barred from 'at' and 'below', it must be
      above).
    - [req-unsat]: [Req(c,R,d)], [unsat d] ⊢ [unsat c] for every axis.

    Derivations are recorded; {!explain} reconstructs a proof tree. *)


type t

(** [saturate schema] — runs to fixpoint. *)
val saturate : Schema.t -> t

val schema : t -> Schema.t

(** Derivable elements (including the axioms). *)
val elements : t -> Element.Set.t

val is_derivable : t -> Element.t -> bool

(** [∅• derivable] — the schema admits no legal instance. *)
val inconsistent : t -> bool

(** "No entry may belong to [c]". *)
val class_unsat : t -> Element.node -> bool

(** Required relationships with the given source, from the saturated set
    (used by the witness chase). *)
val reqs_from : t -> Element.node -> (Structure_schema.rel * Element.node) list

val forbs : t -> (Element.node * Structure_schema.forb * Element.node) list
val is_forbidden : t -> Element.node -> Structure_schema.forb -> Element.node -> bool

type proof = { conclusion : Element.t; rule : string; premises : proof list }
(** [rule = "axiom"] at leaves. *)

(** Proof tree for a derivable element.  Raises [Not_found] otherwise. *)
val explain : t -> Element.t -> proof

val pp_proof : Format.formatter -> proof -> unit

(** Structural validation of a proof tree: every conclusion is derivable,
    every leaf is a genuine axiom (a structure-schema element, or an
    above-or-self fact of the class hierarchy), every inner node uses a
    rule from the documented rule set with at least one premise, and the
    tree is finite by construction.  [explain] always produces proofs
    that pass; the checker exists so stored or transmitted proofs can be
    re-validated against a schema. *)
val check_proof : t -> proof -> bool

(** Number of saturation passes and derived elements, for the
    consistency-scaling benchmark. *)
val stats : t -> int * int
