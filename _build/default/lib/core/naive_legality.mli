(** The quadratic baseline of Section 3.2.

    Structure legality decided by comparing every (parent, child) and
    every (ancestor, descendant) entry pair against the structure schema:
    O((|Er| + |Ef|) · |D|²).  Semantics-identical to
    {!Structure_legality} (property-tested); exists as the paper's
    strawman for the [legality_scaling] benchmark and as a test oracle. *)

open Bounds_model

val check_structure : Schema.t -> Instance.t -> Violation.t list

(** Content + structure + extensions, with the quadratic structure path. *)
val check : ?extensions:bool -> Schema.t -> Instance.t -> Violation.t list

val is_legal : ?extensions:bool -> Schema.t -> Instance.t -> bool
