open Bounds_model

let check (schema : Schema.t) inst =
  if Attr.Set.is_empty schema.keys then []
  else begin
    let seen : (string * string, Entry.id list) Hashtbl.t = Hashtbl.create 64 in
    Instance.iter
      (fun e ->
        Attr.Set.iter
          (fun attr ->
            List.iter
              (fun v ->
                let k = (Attr.to_string attr, Value.to_string v) in
                let prev =
                  match Hashtbl.find_opt seen k with Some l -> l | None -> []
                in
                Hashtbl.replace seen k (Entry.id e :: prev))
              (Entry.values e attr))
          schema.keys)
      inst;
    Hashtbl.fold
      (fun (a, v) entries acc ->
        match entries with
        | [] | [ _ ] -> acc
        | _ ->
            Violation.Duplicate_key
              {
                attr = Attr.of_string a;
                value = Value.String v;
                entries = List.sort Int.compare entries;
              }
            :: acc)
      seen []
    |> List.sort Violation.compare
  end
