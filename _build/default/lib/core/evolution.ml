open Bounds_model
module SS = Structure_schema

type op =
  | Declare_attribute of Attr.t * Atype.t
  | Add_allowed_attribute of Oclass.t * Attr.t
  | Add_required_attribute of Oclass.t * Attr.t
  | Drop_required_attribute of Oclass.t * Attr.t
  | Drop_allowed_attribute of Oclass.t * Attr.t
  | Add_core_class of { name : Oclass.t; parent : Oclass.t }
  | Add_aux_class of Oclass.t
  | Allow_aux of { core : Oclass.t; aux : Oclass.t }
  | Require_class of Oclass.t
  | Drop_required_class of Oclass.t
  | Require_rel of SS.required
  | Drop_required_rel of SS.required
  | Forbid_rel of SS.forbidden
  | Drop_forbidden_rel of SS.forbidden
  | Make_single_valued of Attr.t
  | Drop_single_valued of Attr.t
  | Add_key of Attr.t
  | Drop_key of Attr.t

let pp_op ppf = function
  | Declare_attribute (a, ty) ->
      Format.fprintf ppf "declare attribute %a : %a" Attr.pp a Atype.pp ty
  | Add_allowed_attribute (c, a) ->
      Format.fprintf ppf "allow attribute %a on %a" Attr.pp a Oclass.pp c
  | Add_required_attribute (c, a) ->
      Format.fprintf ppf "require attribute %a on %a" Attr.pp a Oclass.pp c
  | Drop_required_attribute (c, a) ->
      Format.fprintf ppf "demote attribute %a on %a to allowed" Attr.pp a Oclass.pp c
  | Drop_allowed_attribute (c, a) ->
      Format.fprintf ppf "remove attribute %a from %a" Attr.pp a Oclass.pp c
  | Add_core_class { name; parent } ->
      Format.fprintf ppf "add core class %a extends %a" Oclass.pp name Oclass.pp parent
  | Add_aux_class c -> Format.fprintf ppf "add auxiliary class %a" Oclass.pp c
  | Allow_aux { core; aux } ->
      Format.fprintf ppf "allow auxiliary %a on %a" Oclass.pp aux Oclass.pp core
  | Require_class c -> Format.fprintf ppf "require exists %a" Oclass.pp c
  | Drop_required_class c -> Format.fprintf ppf "drop require exists %a" Oclass.pp c
  | Require_rel r -> Format.fprintf ppf "require %a" SS.pp_required r
  | Drop_required_rel r -> Format.fprintf ppf "drop require %a" SS.pp_required r
  | Forbid_rel f -> Format.fprintf ppf "forbid %a" SS.pp_forbidden f
  | Drop_forbidden_rel f -> Format.fprintf ppf "drop forbid %a" SS.pp_forbidden f
  | Make_single_valued a -> Format.fprintf ppf "single-valued %a" Attr.pp a
  | Drop_single_valued a -> Format.fprintf ppf "drop single-valued %a" Attr.pp a
  | Add_key a -> Format.fprintf ppf "key %a" Attr.pp a
  | Drop_key a -> Format.fprintf ppf "drop key %a" Attr.pp a

let ( let* ) = Result.bind

(* Rebuild an attribute schema with one class's declaration replaced. *)
let amend_attribute_schema (schema : Schema.t) cls ~required ~allowed =
  let base =
    Oclass.Set.fold
      (fun c acc ->
        let* acc = acc in
        if Oclass.equal c cls then Ok acc
        else
          Attribute_schema.add_class c
            ~required:
              (Attr.Set.elements (Attribute_schema.required schema.attributes c))
            ~allowed:(Attr.Set.elements (Attribute_schema.allowed schema.attributes c))
            acc)
      (Attribute_schema.classes schema.attributes)
      (Ok Attribute_schema.empty)
  in
  let* base = base in
  (* a class with no attribute declarations left is dropped entirely, so
     emptied declarations compare equal to absent ones *)
  if required = [] && allowed = [] then Ok base
  else Attribute_schema.add_class cls ~required ~allowed base

let remake (schema : Schema.t) ?typing ?attributes ?classes ?structure
    ?single_valued ?keys () =
  let typing = Option.value ~default:schema.typing typing in
  let attributes = Option.value ~default:schema.attributes attributes in
  let classes = Option.value ~default:schema.classes classes in
  let structure = Option.value ~default:schema.structure structure in
  let single_valued =
    Attr.Set.elements (Option.value ~default:schema.single_valued single_valued)
  in
  let keys = Attr.Set.elements (Option.value ~default:schema.keys keys) in
  Result.map_error (String.concat "; ")
    (Schema.make ~typing ~attributes ~classes ~structure ~single_valued ~keys ())

let apply op (schema : Schema.t) =
  match op with
  | Declare_attribute (a, ty) ->
      let* typing = Typing.declare a ty schema.typing in
      remake schema ~typing ()
  | Add_allowed_attribute (cls, a) ->
      let required = Attr.Set.elements (Attribute_schema.required schema.attributes cls) in
      let allowed =
        Attr.Set.elements
          (Attr.Set.add a (Attribute_schema.allowed schema.attributes cls))
      in
      let* attributes = amend_attribute_schema schema cls ~required ~allowed in
      remake schema ~attributes ()
  | Add_required_attribute (cls, a) ->
      let required =
        Attr.Set.elements
          (Attr.Set.add a (Attribute_schema.required schema.attributes cls))
      in
      let allowed =
        Attr.Set.elements
          (Attr.Set.add a (Attribute_schema.allowed schema.attributes cls))
      in
      let* attributes = amend_attribute_schema schema cls ~required ~allowed in
      remake schema ~attributes ()
  | Drop_required_attribute (cls, a) ->
      if not (Attr.Set.mem a (Attribute_schema.required schema.attributes cls)) then
        Error (Format.asprintf "%a is not required by %a" Attr.pp a Oclass.pp cls)
      else
        let required =
          Attr.Set.elements
            (Attr.Set.remove a (Attribute_schema.required schema.attributes cls))
        in
        (* stays allowed, so existing values remain legal *)
        let allowed =
          Attr.Set.elements (Attribute_schema.allowed schema.attributes cls)
        in
        let* attributes = amend_attribute_schema schema cls ~required ~allowed in
        remake schema ~attributes ()
  | Drop_allowed_attribute (cls, a) ->
      if not (Attr.Set.mem a (Attribute_schema.allowed schema.attributes cls)) then
        Error (Format.asprintf "%a is not allowed on %a" Attr.pp a Oclass.pp cls)
      else
        let required =
          Attr.Set.elements
            (Attr.Set.remove a (Attribute_schema.required schema.attributes cls))
        in
        let allowed =
          Attr.Set.elements
            (Attr.Set.remove a (Attribute_schema.allowed schema.attributes cls))
        in
        let* attributes = amend_attribute_schema schema cls ~required ~allowed in
        remake schema ~attributes ()
  | Add_core_class { name; parent } ->
      let* classes = Class_schema.add_core name ~parent schema.classes in
      remake schema ~classes ()
  | Add_aux_class c ->
      let* classes = Class_schema.add_aux c schema.classes in
      remake schema ~classes ()
  | Allow_aux { core; aux } ->
      let* classes = Class_schema.allow_aux ~core aux schema.classes in
      remake schema ~classes ()
  | Require_class c -> remake schema ~structure:(SS.require_class c schema.structure) ()
  | Drop_required_class c ->
      if not (SS.mem_required_class schema.structure c) then
        Error
          (Format.asprintf "schema does not require exists %a" Oclass.pp c)
      else
        let structure =
          Oclass.Set.fold
            (fun c' s -> if Oclass.equal c c' then s else SS.require_class c' s)
            (SS.required_classes schema.structure)
            (List.fold_left
               (fun s (a, r, b) -> SS.require a r b s)
               (List.fold_left
                  (fun s (a, f, b) -> SS.forbid a f b s)
                  SS.empty
                  (SS.forbidden_rels schema.structure))
               (SS.required_rels schema.structure))
        in
        remake schema ~structure ()
  | Require_rel (a, r, b) -> remake schema ~structure:(SS.require a r b schema.structure) ()
  | Drop_required_rel rel ->
      if not (SS.mem_required schema.structure rel) then
        Error (Format.asprintf "schema does not require %a" SS.pp_required rel)
      else
        let structure =
          List.fold_left
            (fun s ((a, r, b) as rel') ->
              if rel' = rel then s else SS.require a r b s)
            (Oclass.Set.fold SS.require_class
               (SS.required_classes schema.structure)
               (List.fold_left
                  (fun s (a, f, b) -> SS.forbid a f b s)
                  SS.empty
                  (SS.forbidden_rels schema.structure)))
            (SS.required_rels schema.structure)
        in
        remake schema ~structure ()
  | Forbid_rel (a, f, b) -> remake schema ~structure:(SS.forbid a f b schema.structure) ()
  | Drop_forbidden_rel rel ->
      if not (SS.mem_forbidden schema.structure rel) then
        Error (Format.asprintf "schema does not forbid %a" SS.pp_forbidden rel)
      else
        let structure =
          List.fold_left
            (fun s ((a, f, b) as rel') -> if rel' = rel then s else SS.forbid a f b s)
            (Oclass.Set.fold SS.require_class
               (SS.required_classes schema.structure)
               (List.fold_left
                  (fun s (a, r, b) -> SS.require a r b s)
                  SS.empty
                  (SS.required_rels schema.structure)))
            (SS.forbidden_rels schema.structure)
        in
        remake schema ~structure ()
  | Make_single_valued a ->
      remake schema ~single_valued:(Attr.Set.add a schema.single_valued) ()
  | Drop_single_valued a ->
      if Attr.Set.mem a schema.keys then
        Error
          (Format.asprintf "%a is a key attribute; keys are single-valued" Attr.pp a)
      else remake schema ~single_valued:(Attr.Set.remove a schema.single_valued) ()
  | Add_key a ->
      remake schema ~keys:(Attr.Set.add a schema.keys)
        ~single_valued:(Attr.Set.add a schema.single_valued) ()
  | Drop_key a ->
      remake schema ~keys:(Attr.Set.remove a schema.keys)
        ~single_valued:(Attr.Set.remove a schema.single_valued) ()

let apply_all ops schema =
  List.fold_left (fun acc op -> Result.bind acc (apply op)) (Ok schema) ops

let preserves_legality = function
  (* loosenings and pure additions: no existing entry can be affected *)
  | Add_allowed_attribute _ | Add_core_class _ | Add_aux_class _ | Allow_aux _
  | Drop_required_class _ | Drop_required_rel _ | Drop_forbidden_rel _
  | Drop_single_valued _ | Drop_key _ ->
      true
  (* string typing cannot invalidate values previously typed by the
     string default; any other type can *)
  | Declare_attribute (_, Atype.T_string) -> true
  | Declare_attribute (_, _) -> false
  (* demoting required to allowed only loosens; removing allowed can
     orphan present values *)
  | Drop_required_attribute _ -> true
  | Drop_allowed_attribute _ -> false
  (* tightenings: revalidation required in general *)
  | Add_required_attribute _ | Require_class _ | Require_rel _ | Forbid_rel _
  | Make_single_valued _ | Add_key _ ->
      false

type migration = {
  schema : Schema.t;
  revalidated : bool;
  violations : Violation.t list;
}

let migrate ops schema inst =
  let* schema' = apply_all ops schema in
  if List.for_all preserves_legality ops then
    Ok { schema = schema'; revalidated = false; violations = [] }
  else
    Ok
      {
        schema = schema';
        revalidated = true;
        violations = Legality.check schema' inst;
      }

(* --- schema difference -------------------------------------------------- *)

let diff (a : Schema.t) (b : Schema.t) =
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let err = ref None in
  let fail fmt = Format.kasprintf (fun m -> if !err = None then err := Some m) fmt in
  (* typing *)
  List.iter
    (fun (attr, ty) ->
      match List.assoc_opt attr (Typing.declarations a.Schema.typing) with
      | None -> emit (Declare_attribute (attr, ty))
      | Some ty' when Atype.equal ty ty' -> ()
      | Some ty' ->
          fail "attribute %a retyped from %a to %a (inexpressible)" Attr.pp attr
            Atype.pp ty' Atype.pp ty)
    (Typing.declarations b.Schema.typing);
  List.iter
    (fun (attr, _) ->
      if not (Typing.is_declared b.Schema.typing attr) then
        fail "attribute %a undeclared (inexpressible)" Attr.pp attr)
    (Typing.declarations a.Schema.typing);
  (* core classes, parent-first so additions apply in order *)
  let rec walk_core c =
    List.iter
      (fun child ->
        (match Class_schema.parent a.Schema.classes child with
        | None when Class_schema.is_core a.Schema.classes child ->
            () (* top, never a child *)
        | None ->
            if Class_schema.is_aux a.Schema.classes child then
              fail "class %a changed kind (inexpressible)" Oclass.pp child
            else emit (Add_core_class { name = child; parent = c })
        | Some p when Oclass.equal p c -> ()
        | Some p ->
            fail "class %a reparented from %a (inexpressible)" Oclass.pp child
              Oclass.pp p);
        walk_core child)
      (Class_schema.children b.Schema.classes c)
  in
  walk_core Oclass.top;
  Oclass.Set.iter
    (fun c ->
      if not (Class_schema.is_core b.Schema.classes c) then
        fail "core class %a removed (inexpressible)" Oclass.pp c)
    (Class_schema.core_classes a.Schema.classes);
  (* auxiliary classes and associations *)
  Oclass.Set.iter
    (fun c ->
      if not (Class_schema.mem a.Schema.classes c) then emit (Add_aux_class c))
    (Class_schema.aux_classes b.Schema.classes);
  Oclass.Set.iter
    (fun c ->
      if not (Class_schema.is_aux b.Schema.classes c) then
        fail "auxiliary class %a removed (inexpressible)" Oclass.pp c)
    (Class_schema.aux_classes a.Schema.classes);
  Oclass.Set.iter
    (fun core ->
      let old_aux =
        if Class_schema.is_core a.Schema.classes core then
          Class_schema.aux_of a.Schema.classes core
        else Oclass.Set.empty
      in
      let new_aux = Class_schema.aux_of b.Schema.classes core in
      Oclass.Set.iter
        (fun aux -> if not (Oclass.Set.mem aux old_aux) then emit (Allow_aux { core; aux }))
        new_aux;
      Oclass.Set.iter
        (fun aux ->
          if not (Oclass.Set.mem aux new_aux) then
            fail "auxiliary association %a/%a removed (inexpressible)" Oclass.pp core
              Oclass.pp aux)
        old_aux)
    (Class_schema.core_classes b.Schema.classes);
  (* attribute schema *)
  let all_classes =
    Oclass.Set.union
      (Attribute_schema.classes a.Schema.attributes)
      (Attribute_schema.classes b.Schema.attributes)
  in
  Oclass.Set.iter
    (fun c ->
      let req_a = Attribute_schema.required a.Schema.attributes c in
      let req_b = Attribute_schema.required b.Schema.attributes c in
      let alw_a = Attribute_schema.allowed a.Schema.attributes c in
      let alw_b = Attribute_schema.allowed b.Schema.attributes c in
      Attr.Set.iter
        (fun at -> if not (Attr.Set.mem at req_a) then emit (Add_required_attribute (c, at)))
        req_b;
      Attr.Set.iter
        (fun at ->
          if Attr.Set.mem at req_a && not (Attr.Set.mem at req_b) then
            emit (Drop_required_attribute (c, at)))
        req_a;
      Attr.Set.iter
        (fun at ->
          if not (Attr.Set.mem at alw_a) && not (Attr.Set.mem at req_b) then
            emit (Add_allowed_attribute (c, at)))
        alw_b;
      Attr.Set.iter
        (fun at ->
          if not (Attr.Set.mem at alw_b) then emit (Drop_allowed_attribute (c, at)))
        alw_a)
    all_classes;
  (* structure schema *)
  let cr_a = SS.required_classes a.Schema.structure in
  let cr_b = SS.required_classes b.Schema.structure in
  Oclass.Set.iter
    (fun c -> if not (Oclass.Set.mem c cr_a) then emit (Require_class c))
    cr_b;
  Oclass.Set.iter
    (fun c -> if not (Oclass.Set.mem c cr_b) then emit (Drop_required_class c))
    cr_a;
  List.iter
    (fun r -> if not (SS.mem_required a.Schema.structure r) then emit (Require_rel r))
    (SS.required_rels b.Schema.structure);
  List.iter
    (fun r ->
      if not (SS.mem_required b.Schema.structure r) then emit (Drop_required_rel r))
    (SS.required_rels a.Schema.structure);
  List.iter
    (fun f -> if not (SS.mem_forbidden a.Schema.structure f) then emit (Forbid_rel f))
    (SS.forbidden_rels b.Schema.structure);
  List.iter
    (fun f ->
      if not (SS.mem_forbidden b.Schema.structure f) then emit (Drop_forbidden_rel f))
    (SS.forbidden_rels a.Schema.structure);
  (* keys first (they imply single-valued), then the rest *)
  Attr.Set.iter
    (fun at -> if not (Attr.Set.mem at a.Schema.keys) then emit (Add_key at))
    b.Schema.keys;
  Attr.Set.iter
    (fun at -> if not (Attr.Set.mem at b.Schema.keys) then emit (Drop_key at))
    a.Schema.keys;
  Attr.Set.iter
    (fun at ->
      if (not (Attr.Set.mem at a.Schema.single_valued)) || Attr.Set.mem at a.Schema.keys
      then
        if not (Attr.Set.mem at b.Schema.keys) then emit (Make_single_valued at))
    (Attr.Set.diff b.Schema.single_valued b.Schema.keys);
  Attr.Set.iter
    (fun at ->
      if
        (not (Attr.Set.mem at b.Schema.single_valued))
        && not (Attr.Set.mem at a.Schema.keys)
      then emit (Drop_single_valued at))
    a.Schema.single_valued;
  match !err with Some m -> Error m | None -> Ok (List.rev !ops)
