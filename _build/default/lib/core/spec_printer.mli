(** Canonical rendering of a schema in the spec language.

    [Spec_parser.parse (to_string s)] reconstructs a schema equal to [s]
    (round-trip property-tested). *)

val to_string : Schema.t -> string

val pp : Format.formatter -> Schema.t -> unit
