open Bounds_model
open Bounds_query
module SS = Structure_schema

let empty_query = Query.Select (Filter.Or [])

let is_empty_query = function
  | Query.Select (Filter.Or []) -> true
  | _ -> false

let is_false = function Filter.Or [] -> true | _ -> false
let is_true = function Filter.And [] -> true | _ -> false

(* On legal instances, an objectClass assertion for a class that is not
   declared by the schema — or that the inference system proves no entry
   can belong to — never matches. *)
let class_leaf_unsatisfiable inf cls =
  let schema = Inference.schema inf in
  (not (Class_schema.mem schema.Schema.classes cls))
  || Inference.class_unsat inf (Element.Cls cls)

let rec simp_filter inf f =
  match f with
  | Filter.Eq (a, v) when Attr.equal a Attr.object_class -> (
      match Oclass.of_string_opt v with
      | Some cls when class_leaf_unsatisfiable inf cls -> Filter.Or []
      | _ -> f)
  | Filter.Present _ | Filter.Eq _ | Filter.Ge _ | Filter.Le _ | Filter.Substr _ ->
      f
  | Filter.And fs -> (
      let fs = List.map (simp_filter inf) fs in
      if List.exists is_false fs then Filter.Or []
      else
        match List.filter (fun f -> not (is_true f)) fs with
        | [ f ] -> f
        | fs -> Filter.And fs)
  | Filter.Or fs -> (
      let fs = List.map (simp_filter inf) fs in
      if List.exists is_true fs then Filter.And []
      else
        match List.filter (fun f -> not (is_false f)) fs with
        | [ f ] -> f
        | fs -> Filter.Or fs)
  | Filter.Not f -> (
      match simp_filter inf f with
      | Filter.Or [] -> Filter.And []
      | Filter.And [] -> Filter.Or []
      | f -> Filter.Not f)

let class_of_select = function
  | Query.Select (Filter.Eq (a, v)) when Attr.equal a Attr.object_class ->
      Oclass.of_string_opt v
  | _ -> None

(* χ is empty when the pair is forbidden by the schema (downward axes
   directly, upward axes against the reversed forbidden edge). *)
let chi_forbidden inf ax ci cj =
  let forb a f b = Inference.is_forbidden inf (Element.Cls a) f (Element.Cls b) in
  match ax with
  | Query.Child -> forb ci SS.F_child cj
  | Query.Descendant -> forb ci SS.F_descendant cj
  | Query.Parent -> forb cj SS.F_child ci
  | Query.Ancestor -> forb cj SS.F_descendant ci

let rel_of_axis = function
  | Query.Child -> SS.Child
  | Query.Descendant -> SS.Descendant
  | Query.Parent -> SS.Parent
  | Query.Ancestor -> SS.Ancestor

let rec simplify inf q =
  match q with
  | Query.Select f -> (
      match simp_filter inf f with Filter.Or [] -> empty_query | f -> Query.Select f)
  | Query.Minus (a, b) -> (
      let a = simplify inf a and b = simplify inf b in
      if is_empty_query a then empty_query
      else if is_empty_query b then a
      else if Query.equal a b then empty_query
      else
        (* the Figure-4 violation pattern: σ−(ci, χ_ax(ci, cj)) is empty
           when the schema requires the relationship — legal instances
           have no violators *)
        match (class_of_select a, b) with
        | Some ci, Query.Chi (ax, inner, target) -> (
            match (class_of_select inner, class_of_select target) with
            | Some ci', Some cj
              when Oclass.equal ci ci'
                   && Inference.is_derivable inf
                        (Element.Req (Element.Cls ci, rel_of_axis ax, Element.Cls cj))
              ->
                empty_query
            | _ -> Query.Minus (a, b))
        | _ -> Query.Minus (a, b))
  | Query.Union (a, b) ->
      let a = simplify inf a and b = simplify inf b in
      if is_empty_query a then b
      else if is_empty_query b then a
      else if Query.equal a b then a
      else Query.Union (a, b)
  | Query.Inter (a, b) ->
      let a = simplify inf a and b = simplify inf b in
      if is_empty_query a || is_empty_query b then empty_query
      else if Query.equal a b then a
      else Query.Inter (a, b)
  | Query.Chi (ax, a, b) -> (
      let a = simplify inf a and b = simplify inf b in
      if is_empty_query a || is_empty_query b then empty_query
      else
        match (class_of_select a, class_of_select b) with
        | Some ci, Some cj when chi_forbidden inf ax ci cj -> empty_query
        | _ -> Query.Chi (ax, a, b))

let saved ~before ~after = Query.size before - Query.size after
