(** Legality violations, with witnesses.

    Each constructor corresponds to one clause of Definition 2.7 (legal
    directory instance), plus the typing condition of Definition 2.1 and
    the two Section 6.1 extensions. *)

open Bounds_model

type t =
  (* attribute schema *)
  | Missing_required_attr of { entry : Entry.id; cls : Oclass.t; attr : Attr.t }
  | Attr_not_allowed of { entry : Entry.id; attr : Attr.t }
  (* class schema *)
  | Unknown_class of { entry : Entry.id; cls : Oclass.t }
  | No_core_class of { entry : Entry.id }
  | Missing_superclass of { entry : Entry.id; cls : Oclass.t; super : Oclass.t }
  | Incomparable_classes of { entry : Entry.id; c1 : Oclass.t; c2 : Oclass.t }
  | Aux_not_allowed of { entry : Entry.id; aux : Oclass.t }
  (* structure schema *)
  | Missing_required_class of { cls : Oclass.t }
  | Unsatisfied_rel of { entry : Entry.id; rel : Structure_schema.required }
  | Forbidden_rel of {
      source : Entry.id;  (** the entry of class ci *)
      target : Entry.id;  (** its offending child / descendant *)
      rel : Structure_schema.forbidden;
    }
  (* well-formedness (Definition 2.1, 3a) *)
  | Type_violation of { entry : Entry.id; attr : Attr.t; expected : Atype.t }
  (* Section 6.1 extensions *)
  | Multiple_values of { entry : Entry.id; attr : Attr.t; count : int }
  | Duplicate_key of { attr : Attr.t; value : Value.t; entries : Entry.id list }

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Stable ordering so violation lists can be compared in tests. *)
val compare : t -> t -> int
