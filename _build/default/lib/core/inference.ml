open Bounds_model
module SS = Structure_schema

type deriv = { rule : string; premises : Element.t list }

type t = {
  schema : Schema.t;
  derivs : (Element.t, deriv) Hashtbl.t;
  strict_subs : (Oclass.t, Oclass.t list) Hashtbl.t;
  strict_sups : (Oclass.t, Oclass.t list) Hashtbl.t;
  mutable passes : int;
}

let node_strict_subs t = function
  | Element.Empty -> []
  | Element.Cls c ->
      List.map (fun c -> Element.Cls c)
        (Option.value ~default:[] (Hashtbl.find_opt t.strict_subs c))

let node_strict_sups t = function
  | Element.Empty -> []
  | Element.Cls c ->
      List.map (fun c -> Element.Cls c)
        (Option.value ~default:[] (Hashtbl.find_opt t.strict_sups c))

let node_disjoint t n1 n2 =
  match (n1, n2) with
  | Element.Cls c1, Element.Cls c2 -> Class_schema.disjoint t.schema.classes c1 c2
  | _ -> false

let top = Element.Cls Oclass.top

let mem t e = Hashtbl.mem t.derivs e

let class_unsat t n =
  mem t (Element.Req (n, SS.Descendant, Element.Empty))
  || mem t (Element.Req (n, SS.Ancestor, Element.Empty))

(* One full pass: apply every rule to the current element set, returning
   candidate conclusions.  Simplicity over cleverness: the element
   universe is schema-sized, so fixpoint iteration with whole-set passes
   stays polynomial (Theorem 5.2 promises no more). *)
let pass t =
  let news = ref [] in
  let derive rule premises conclusion =
    if not (mem t conclusion) then news := (conclusion, { rule; premises }) :: !news
  in
  let exists_nodes = ref [] in
  let reqs = ref [] in
  let forb_tbl = Hashtbl.create 64 in
  let forbs = ref [] in
  let aos = ref [] in
  Hashtbl.iter
    (fun e _ ->
      match e with
      | Element.Exists n -> exists_nodes := n :: !exists_nodes
      | Element.Req (a, r, b) -> reqs := (a, r, b) :: !reqs
      | Element.Forb (a, f, b) ->
          Hashtbl.replace forb_tbl (a, f, b) ();
          forbs := (a, f, b) :: !forbs
      | Element.Above_or_self (a, b) -> aos := (a, b) :: !aos)
    t.derivs;
  let forb a f b = Hashtbl.mem forb_tbl (a, f, b) in
  let by_src = Hashtbl.create 64 in
  List.iter
    (fun (a, r, b) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_src a) in
      Hashtbl.replace by_src a ((r, b) :: cur))
    !reqs;
  let reqs_from a = Option.value ~default:[] (Hashtbl.find_opt by_src a) in
  let aos_by_src = Hashtbl.create 64 in
  List.iter
    (fun (a, x) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt aos_by_src a) in
      Hashtbl.replace aos_by_src a (x :: cur))
    !aos;
  let aos_from a = Option.value ~default:[] (Hashtbl.find_opt aos_by_src a) in
  let unsat_of rule premises src = derive rule premises (Element.unsat src) in
  (* exists-up *)
  List.iter
    (fun n ->
      List.iter
        (fun sup -> derive "exists-up" [ Element.Exists n ] (Element.Exists sup))
        (node_strict_sups t n))
    !exists_nodes;
  (* rules keyed on required relationships *)
  List.iter
    (fun (a, r, b) ->
      let e = Element.Req (a, r, b) in
      (* exists-target *)
      if List.exists (Element.node_equal a) !exists_nodes then
        derive "exists-target" [ Element.Exists a; e ] (Element.Exists b);
      (* source-isa / target-isa *)
      List.iter
        (fun a' -> derive "source-isa" [ e ] (Element.Req (a', r, b)))
        (node_strict_subs t a);
      List.iter
        (fun b' -> derive "target-isa" [ e ] (Element.Req (a, r, b')))
        (node_strict_sups t b);
      (* path *)
      (match r with
      | SS.Child -> derive "path" [ e ] (Element.Req (a, SS.Descendant, b))
      | SS.Parent -> derive "path" [ e ] (Element.Req (a, SS.Ancestor, b))
      | SS.Descendant | SS.Ancestor -> ());
      (* transitivity *)
      (match r with
      | SS.Descendant ->
          List.iter
            (fun (r2, c) ->
              if r2 = SS.Descendant then
                derive "trans-de" [ e; Element.Req (b, r2, c) ]
                  (Element.Req (a, SS.Descendant, c)))
            (reqs_from b)
      | SS.Ancestor ->
          List.iter
            (fun (r2, c) ->
              if r2 = SS.Ancestor then
                derive "trans-an" [ e; Element.Req (b, r2, c) ]
                  (Element.Req (a, SS.Ancestor, c)))
            (reqs_from b)
      | SS.Child | SS.Parent -> ());
      (* loop *)
      if Element.node_equal a b then begin
        match r with
        | SS.Descendant ->
            derive "loop-de" [ e ] (Element.Req (a, SS.Descendant, Element.Empty))
        | SS.Ancestor ->
            derive "loop-an" [ e ] (Element.Req (a, SS.Ancestor, Element.Empty))
        | SS.Child | SS.Parent -> ()
      end;
      (* top-path *)
      if Element.node_equal b top then begin
        match r with
        | SS.Descendant -> derive "top-path" [ e ] (Element.Req (a, SS.Child, top))
        | SS.Ancestor -> derive "top-path" [ e ] (Element.Req (a, SS.Parent, top))
        | SS.Child | SS.Parent -> ()
      end;
      (* req-unsat *)
      if (not (Element.node_equal b Element.Empty)) && class_unsat t b then begin
        let w =
          if mem t (Element.Req (b, SS.Descendant, Element.Empty)) then
            Element.Req (b, SS.Descendant, Element.Empty)
          else Element.Req (b, SS.Ancestor, Element.Empty)
        in
        unsat_of "req-unsat" [ e; w ] a
      end;
      (* direct conflicts with forbidden relationships *)
      (match r with
      | SS.Child ->
          if forb a SS.F_child b then
            unsat_of "conflict-ch" [ e; Element.Forb (a, SS.F_child, b) ] a
      | SS.Descendant ->
          if (not (Element.node_equal b Element.Empty)) && forb a SS.F_descendant b
          then unsat_of "conflict-de" [ e; Element.Forb (a, SS.F_descendant, b) ] a
      | SS.Parent ->
          if forb b SS.F_child a then
            unsat_of "conflict-pa" [ e; Element.Forb (b, SS.F_child, a) ] a
      | SS.Ancestor ->
          if (not (Element.node_equal b Element.Empty)) && forb b SS.F_descendant a
          then unsat_of "conflict-an" [ e; Element.Forb (b, SS.F_descendant, a) ] a);
      (* joins over a second requirement with the same source *)
      List.iter
        (fun (r2, c) ->
          let e2 = Element.Req (a, r2, c) in
          match (r, r2) with
          | SS.Parent, SS.Parent ->
              if node_disjoint t b c then unsat_of "parenthood" [ e; e2 ] a
          | SS.Ancestor, SS.Ancestor ->
              if
                node_disjoint t b c
                && forb b SS.F_descendant c
                && forb c SS.F_descendant b
              then
                unsat_of "ancestorhood"
                  [
                    e;
                    e2;
                    Element.Forb (b, SS.F_descendant, c);
                    Element.Forb (c, SS.F_descendant, b);
                  ]
                  a
          | SS.Ancestor, SS.Parent ->
              if node_disjoint t b c && forb b SS.F_descendant c then
                unsat_of "an-pa-conflict"
                  [ e; e2; Element.Forb (b, SS.F_descendant, c) ]
                  a
          | SS.Ancestor, SS.Descendant ->
              if
                (not (Element.node_equal c Element.Empty))
                && forb b SS.F_descendant c
              then
                unsat_of "an-de-conflict"
                  [ e; e2; Element.Forb (b, SS.F_descendant, c) ]
                  a
          | _ -> ())
        (reqs_from a);
      (* a required descendant's own parent/ancestor requirements reflect
         back onto the source: the descendant's parent lies on the path
         below the source (or is the source), its ancestors on the path
         through the source *)
      (match r with
      | SS.Descendant when not (Element.node_equal b Element.Empty) ->
          List.iter
            (fun (r2, x) ->
              match r2 with
              | SS.Parent ->
                  (* the d-entry's parent is the source or strictly below
                     it; when it cannot be the source, it is a descendant *)
                  if node_disjoint t a x then
                    derive "de-pa-lift"
                      [ e; Element.Req (b, r2, x) ]
                      (Element.Req (a, SS.Descendant, x))
              | SS.Ancestor ->
                  (* the d-entry's x-ancestor is above, at, or below the
                     source; barred from 'at' and 'below', it is above *)
                  if
                    node_disjoint t a x
                    && forb a SS.F_descendant x
                  then
                    derive "de-an-lift"
                      [ e; Element.Req (b, r2, x); Element.Forb (a, SS.F_descendant, x) ]
                      (Element.Req (a, SS.Ancestor, x))
              | SS.Child | SS.Descendant -> ())
            (reqs_from b)
      | SS.Child | SS.Descendant | SS.Parent | SS.Ancestor -> ());
      (* the required child's required parent/ancestor reflect back onto
         the creating class: its parent IS the creating entry
         (ch-pa-conflict), and its other ancestors lie on the creating
         entry's path through the entry itself (aos-ch-an) *)
      (match r with
      | SS.Child ->
          List.iter
            (fun (r2, x) ->
              match r2 with
              | SS.Parent ->
                  if node_disjoint t a x then
                    unsat_of "ch-pa-conflict" [ e; Element.Req (b, r2, x) ] a
              | SS.Ancestor ->
                  if not (Element.node_equal x Element.Empty) then
                    derive "aos-ch-an"
                      [ e; Element.Req (b, r2, x) ]
                      (Element.Above_or_self (a, x))
              | SS.Child | SS.Descendant -> ())
            (reqs_from b)
      | SS.Descendant | SS.Parent | SS.Ancestor -> ());
      (* every required ancestor is trivially above-or-self *)
      if r = SS.Ancestor && not (Element.node_equal b Element.Empty) then
        derive "aos-an" [ e ] (Element.Above_or_self (a, b)))
    !reqs;
  (* rules keyed on the above-or-self judgment *)
  List.iter
    (fun (a, x) ->
      let e = Element.Above_or_self (a, x) in
      List.iter
        (fun a' -> derive "aos-source-isa" [ e ] (Element.Above_or_self (a', x)))
        (node_strict_subs t a);
      List.iter
        (fun x' -> derive "aos-target-isa" [ e ] (Element.Above_or_self (a, x')))
        (node_strict_sups t x);
      (* transitivity through the middle class *)
      List.iter
        (fun y ->
          derive "aos-trans"
            [ e; Element.Above_or_self (x, y) ]
            (Element.Above_or_self (a, y)))
        (aos_from x);
      (* the x-role entry (self or above) pushes its own upward
         requirements strictly above the a-entry *)
      List.iter
        (fun (r2, y) ->
          match r2 with
          | SS.Parent when not (Element.node_equal y Element.Empty) ->
              derive "aos-pa"
                [ e; Element.Req (x, r2, y) ]
                (Element.Req (a, SS.Ancestor, y))
          | SS.Ancestor when not (Element.node_equal y Element.Empty) ->
              derive "aos-an-lift"
                [ e; Element.Req (x, r2, y) ]
                (Element.Req (a, SS.Ancestor, y))
          | SS.Parent | SS.Ancestor | SS.Child | SS.Descendant -> ())
        (reqs_from x);
      (* when the a-entry cannot itself be x, x must be strictly above *)
      if node_disjoint t a x then
        derive "aos-disj" [ e ] (Element.Req (a, SS.Ancestor, x)))
    !aos;
  (* rules keyed on forbidden relationships *)
  List.iter
    (fun (a, f, b) ->
      let e = Element.Forb (a, f, b) in
      List.iter
        (fun a' -> derive "forb-source-isa" [ e ] (Element.Forb (a', f, b)))
        (node_strict_subs t a);
      List.iter
        (fun b' -> derive "forb-target-isa" [ e ] (Element.Forb (a, f, b')))
        (node_strict_subs t b);
      if f = SS.F_child && Element.node_equal b top then
        derive "forb-top" [ e ] (Element.Forb (a, SS.F_descendant, top));
      if f = SS.F_child && Element.node_equal a top then
        derive "forb-top" [ e ] (Element.Forb (top, SS.F_descendant, b)))
    !forbs;
  !news

let saturate (schema : Schema.t) =
  let cs = schema.classes in
  let cores = Oclass.Set.elements (Class_schema.core_classes cs) in
  let strict_subs = Hashtbl.create 64 and strict_sups = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let sups = Class_schema.superclasses cs c in
      Hashtbl.replace strict_sups c sups;
      List.iter
        (fun s ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt strict_subs s) in
          Hashtbl.replace strict_subs s (c :: cur))
        sups)
    cores;
  let t = { schema; derivs = Hashtbl.create 256; strict_subs; strict_sups; passes = 0 } in
  List.iter
    (fun e -> Hashtbl.replace t.derivs e { rule = "axiom"; premises = [] })
    (Element.of_structure schema.structure);
  (* class-schema axioms for the above-or-self judgment: every entry of a
     class trivially "is" each class of its upward closure *)
  List.iter
    (fun c ->
      Oclass.Set.iter
        (fun s ->
          Hashtbl.replace t.derivs
            (Element.Above_or_self (Element.Cls c, Element.Cls s))
            { rule = "class-schema"; premises = [] })
        (Class_schema.up_closure cs c))
    cores;
  let rec fix () =
    t.passes <- t.passes + 1;
    match pass t with
    | [] -> ()
    | news ->
        List.iter
          (fun (e, d) -> if not (mem t e) then Hashtbl.replace t.derivs e d)
          news;
        fix ()
  in
  fix ();
  t

let schema t = t.schema

let elements t = Hashtbl.fold (fun e _ s -> Element.Set.add e s) t.derivs Element.Set.empty

let is_derivable = mem
let inconsistent t = mem t Element.bottom

let reqs_from t n =
  Hashtbl.fold
    (fun e _ acc ->
      match e with
      | Element.Req (a, r, b) when Element.node_equal a n -> (r, b) :: acc
      | _ -> acc)
    t.derivs []

let forbs t =
  Hashtbl.fold
    (fun e _ acc ->
      match e with Element.Forb (a, f, b) -> (a, f, b) :: acc | _ -> acc)
    t.derivs []

let is_forbidden t a f b = mem t (Element.Forb (a, f, b))

type proof = { conclusion : Element.t; rule : string; premises : proof list }

let explain t e =
  (* The derivation graph is acyclic: a premise is always recorded before
     the conclusion it supports. *)
  let rec go e =
    match Hashtbl.find_opt t.derivs e with
    | None -> raise Not_found
    | Some { rule; premises } -> { conclusion = e; rule; premises = List.map go premises }
  in
  go e

let rec pp_proof ppf { conclusion; rule; premises } =
  Format.fprintf ppf "@[<v 2>%a  [%s]%a@]" Element.pp conclusion rule
    (fun ppf -> function
      | [] -> ()
      | ps ->
          List.iter (fun p -> Format.fprintf ppf "@ %a" pp_proof p) ps)
    premises

let rule_names =
  [
    "exists-target"; "exists-up"; "path"; "trans-de"; "trans-an"; "loop-de";
    "loop-an"; "source-isa"; "target-isa"; "top-path"; "req-unsat";
    "conflict-ch"; "conflict-de"; "conflict-pa"; "conflict-an"; "parenthood";
    "ancestorhood"; "an-pa-conflict"; "an-de-conflict"; "ch-pa-conflict";
    "de-pa-lift"; "de-an-lift"; "forb-source-isa"; "forb-target-isa";
    "forb-top"; "aos-an"; "aos-ch-an"; "aos-source-isa"; "aos-target-isa";
    "aos-trans"; "aos-pa"; "aos-an-lift"; "aos-disj";
  ]

let is_axiom t e =
  match e with
  | Element.Above_or_self (Element.Cls c, Element.Cls s) ->
      Class_schema.is_core t.schema.Schema.classes c
      && Class_schema.is_subclass t.schema.Schema.classes ~sub:c ~super:s
  | _ -> List.exists (Element.equal e) (Element.of_structure t.schema.Schema.structure)

let rec check_proof t { conclusion; rule; premises } =
  mem t conclusion
  &&
  match premises with
  | [] -> (rule = "axiom" || rule = "class-schema") && is_axiom t conclusion
  | _ :: _ -> List.mem rule rule_names && List.for_all (check_proof t) premises

let stats t = (t.passes, Hashtbl.length t.derivs)
