(** Update transactions as subtree insertions and deletions
    (Section 4.1, Theorem 4.1).

    An arbitrary sequence of entry insertions and deletions is abstracted
    into a set of {e maximal} inserted subtrees and deleted subtrees whose
    roots are pairwise ancestor-free.  Theorem 4.1: the updated instance
    is legal iff every intermediate instance — all insertions applied
    first, one subtree at a time, then all deletions — is legal.  The
    decomposition is what makes incremental checking well-defined. *)

open Bounds_model

type subtree_update =
  | Insert_subtree of { parent : Entry.id option; subtree : Instance.t }
  | Delete_subtree of { root : Entry.id }

val pp_subtree_update : Format.formatter -> subtree_update -> unit

(** [decompose inst ops] validates the operation sequence against [inst]
    and returns the insertion-first subtree decomposition.  Fails if the
    sequence violates the LDAP discipline, or net-modifies a surviving
    entry (moves it or changes its payload) — transactions may only add
    and remove entries. *)
val decompose : Instance.t -> Update.op list -> (subtree_update list, string) result

(** Apply one subtree update (used to walk the D_i chain of
    Theorem 4.1). *)
val apply_subtree : Instance.t -> subtree_update -> (Instance.t, string) result

type rejection =
  | Bad_ops of string  (** discipline violation; nothing applied *)
  | Illegal of { step : int; update : subtree_update; violations : Violation.t list }

val pp_rejection : Format.formatter -> rejection -> unit

(** [check schema inst ops] — [inst] is assumed legal; decomposes, then
    checks legality after each subtree step with the full checker.
    Returns the final instance, or the first illegal step.  (For the
    incremental-check path, use {!Monitor}.) *)
val check : Schema.t -> Instance.t -> Update.op list -> (Instance.t, rejection) result
