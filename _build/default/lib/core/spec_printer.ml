open Bounds_model

let to_string (s : Schema.t) =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let names attrs = String.concat ", " (List.map Attr.to_string (Attr.Set.elements attrs)) in
  List.iter
    (fun (a, ty) ->
      if not (Attr.equal a Attr.object_class) then
        pf "attribute %s : %s\n" (Attr.to_string a) (Atype.to_string ty))
    (Typing.declarations s.typing);
  let class_body c ~with_aux =
    let req = Attribute_schema.required s.attributes c in
    let alw = Attr.Set.diff (Attribute_schema.allowed s.attributes c) req in
    let aux = if with_aux then Class_schema.aux_of s.classes c else Oclass.Set.empty in
    let parts =
      (if Attr.Set.is_empty req then [] else [ Printf.sprintf "required: %s" (names req) ])
      @ (if Attr.Set.is_empty alw then [] else [ Printf.sprintf "allowed: %s" (names alw) ])
      @
      if Oclass.Set.is_empty aux then []
      else
        [
          Printf.sprintf "aux: %s"
            (String.concat ", " (List.map Oclass.to_string (Oclass.Set.elements aux)));
        ]
    in
    match parts with
    | [] -> ""
    | parts -> Printf.sprintf " { %s }" (String.concat "; " parts)
  in
  (* core classes in parent-before-child (preorder) order *)
  let rec emit_core c =
    if not (Oclass.equal c Oclass.top) then
      pf "class %s extends %s%s\n" (Oclass.to_string c)
        (Oclass.to_string (Option.get (Class_schema.parent s.classes c)))
        (class_body c ~with_aux:true)
    else begin
      let body = class_body c ~with_aux:true in
      if body <> "" then pf "class top%s\n" body
    end;
    List.iter emit_core (Class_schema.children s.classes c)
  in
  emit_core Oclass.top;
  Oclass.Set.iter
    (fun c -> pf "auxiliary %s%s\n" (Oclass.to_string c) (class_body c ~with_aux:false))
    (Class_schema.aux_classes s.classes);
  Oclass.Set.iter
    (fun c -> pf "require exists %s\n" (Oclass.to_string c))
    (Structure_schema.required_classes s.structure);
  List.iter
    (fun (ci, r, cj) ->
      pf "require %s %s %s\n" (Oclass.to_string ci)
        (Structure_schema.rel_to_string r) (Oclass.to_string cj))
    (Structure_schema.required_rels s.structure);
  List.iter
    (fun (ci, f, cj) ->
      pf "forbid %s %s %s\n" (Oclass.to_string ci)
        (Structure_schema.forb_to_string f) (Oclass.to_string cj))
    (Structure_schema.forbidden_rels s.structure);
  let sv = Attr.Set.diff s.single_valued s.keys in
  if not (Attr.Set.is_empty sv) then pf "single-valued %s\n" (names sv);
  if not (Attr.Set.is_empty s.keys) then pf "key %s\n" (names s.keys);
  Buffer.contents buf

let pp ppf s = Format.pp_print_string ppf (to_string s)
