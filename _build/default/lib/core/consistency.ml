open Bounds_model

type verdict =
  | Consistent of { witness : Instance.t; passes : int; derived : int }
  | Inconsistent of { proof : Inference.proof; passes : int; derived : int }
  | Unresolved of { reason : string; passes : int; derived : int }

let pp_verdict ppf = function
  | Consistent { witness; passes; derived } ->
      Format.fprintf ppf
        "@[<v>consistent (saturation: %d passes, %d elements); witness with %d entries:@ %a@]"
        passes derived (Instance.size witness) Instance.pp witness
  | Inconsistent { proof; passes; derived } ->
      Format.fprintf ppf
        "@[<v>INCONSISTENT (saturation: %d passes, %d elements); proof:@ %a@]" passes
        derived Inference.pp_proof proof
  | Unresolved { reason; passes; derived } ->
      Format.fprintf ppf
        "unresolved (saturation: %d passes, %d elements): no contradiction derivable, but %s"
        passes derived reason

let decide ?max_nodes schema =
  let inf = Inference.saturate schema in
  let passes, derived = Inference.stats inf in
  if Inference.inconsistent inf then
    Inconsistent { proof = Inference.explain inf Element.bottom; passes; derived }
  else
    match Witness.construct ?max_nodes inf with
    | Error reason -> Unresolved { reason; passes; derived }
    | Ok witness -> (
        (* keys are generated unique and single-valued attributes get one
           value, so the witness is checked with extensions on *)
        match Legality.check schema witness with
        | [] -> Consistent { witness; passes; derived }
        | viols ->
            Unresolved
              {
                reason =
                  Format.asprintf "the constructed witness is illegal (@[%a@])"
                    (Format.pp_print_list ~pp_sep:Format.pp_print_space Violation.pp)
                    viols;
                passes;
                derived;
              })

let is_consistent schema = not (Inference.inconsistent (Inference.saturate schema))
