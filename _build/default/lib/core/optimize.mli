(** Schema-aware query simplification (the paper's Section 7 outlook:
    "query optimization is facilitated using schema").

    Given the saturated inference state of a schema, queries can be
    simplified {e statically} — the rewrites are guaranteed to preserve
    results on every instance that is {b legal} w.r.t. the schema (on
    illegal instances all bets are off, by design):

    - an atomic selection on an undeclared or unsatisfiable class is
      empty (legal instances only hold declared, satisfiable classes);
    - [χ_ch(ci, cj)] is empty when [Forb(ci, FCh, cj)] is derivable
      (likewise descendant, and the parent/ancestor axes against the
      reversed forbidden edge);
    - the Figure-4 violation pattern
      [σ−(ci, χ_ax(ci, cj))] is empty when [Req(ci, ax, cj)] is derivable
      — on legal instances a derivable requirement has no violators, so
      the legality queries of the schema's own elements simplify to ∅;
    - boolean algebra with the empty query: [q − ∅ = q], [∅ ∪ q = q],
      [∅ ∩ q = ∅], [q − q = ∅], [χ(∅, q) = χ(q, ∅) = ∅], and filter-level
      constant folding.

    Property-tested: on random legal instances, [simplify] never changes
    a query's result. *)

open Bounds_query

(** The canonical empty query, [select (|)]. *)
val empty_query : Query.t

val is_empty_query : Query.t -> bool

(** [simplify inf q] — [inf] is the saturated inference state of the
    schema the instances are legal against. *)
val simplify : Inference.t -> Query.t -> Query.t

(** Number of operator/filter nodes saved, for reporting. *)
val saved : before:Query.t -> after:Query.t -> int
