(** Structure schema (Definition 2.4).

    A triple (Cr, Er, Ef): required object classes ("some entry of class c
    must exist"), required structural relationships ("every ci-entry has an
    axis-related cj-entry"), and forbidden structural relationships ("no
    ci-entry has a cj child/descendant").

    All classes mentioned are core classes; this is validated when the
    structure schema is combined into a {!Schema}. *)

open Bounds_model

(** Axis of a required relationship: [ci -> cj] (child), [ci ->> cj]
    (descendant), [cj <- ci] (parent), [cj <<- ci] (ancestor). *)
type rel = Child | Descendant | Parent | Ancestor

(** Forbidden relationships exist only for the downward axes. *)
type forb = F_child | F_descendant

val rel_to_string : rel -> string
val rel_of_string : string -> (rel, string) result
val forb_to_string : forb -> string
val forb_of_string : string -> (forb, string) result

(** A required relationship [(ci, rel, cj)], read "every entry of class
    [ci] has a [rel]-related entry of class [cj]". *)
type required = Oclass.t * rel * Oclass.t

(** A forbidden relationship [(ci, forb, cj)], read "no entry of class
    [ci] has a child/descendant of class [cj]". *)
type forbidden = Oclass.t * forb * Oclass.t

val pp_required : Format.formatter -> required -> unit
val pp_forbidden : Format.formatter -> forbidden -> unit

type t

val empty : t
val require_class : Oclass.t -> t -> t
val require : Oclass.t -> rel -> Oclass.t -> t -> t
val forbid : Oclass.t -> forb -> Oclass.t -> t -> t

val required_classes : t -> Oclass.Set.t
val required_rels : t -> required list
val forbidden_rels : t -> forbidden list

val mem_required_class : t -> Oclass.t -> bool
val mem_required : t -> required -> bool
val mem_forbidden : t -> forbidden -> bool

(** All classes mentioned anywhere. *)
val classes : t -> Oclass.Set.t

(** |Cr| + |Er| + |Ef| — the [|S|] of Theorem 3.1. *)
val size : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
