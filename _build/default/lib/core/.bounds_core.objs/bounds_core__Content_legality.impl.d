lib/core/content_legality.ml: Attr Attribute_schema Bounds_model Class_schema Entry Instance List Oclass Schema Typing Value Violation
