lib/core/structure_schema.ml: Bounds_model Format Oclass Printf Set Stdlib String
