lib/core/schema.mli: Attr Attribute_schema Bounds_model Class_schema Format Oclass Structure_schema Typing
