lib/core/monitor.mli: Bounds_model Entry Format Instance Oclass Schema Update Violation
