lib/core/inference.ml: Bounds_model Class_schema Element Format Hashtbl List Oclass Option Schema Structure_schema
