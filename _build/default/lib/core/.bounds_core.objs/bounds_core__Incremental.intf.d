lib/core/incremental.mli: Bounds_model Entry Format Instance Oclass Schema Structure_schema Violation
