lib/core/incremental.ml: Bitset Bounds_model Bounds_query Content_legality Entry Eval Format Index Instance List Oclass Option Printf Query Schema Single_valued Structure_schema Violation
