lib/core/structure_legality.mli: Bounds_model Bounds_query Index Instance Schema Vindex Violation
