lib/core/violation.mli: Attr Atype Bounds_model Entry Format Oclass Structure_schema Value
