lib/core/element.ml: Bounds_model Format Int List Oclass Set Stdlib Structure_schema
