lib/core/witness.mli: Bounds_model Inference Instance Oclass
