lib/core/optimize.ml: Attr Bounds_model Bounds_query Class_schema Element Filter Inference List Oclass Query Schema Structure_schema
