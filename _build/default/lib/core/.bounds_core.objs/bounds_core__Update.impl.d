lib/core/update.ml: Bounds_model Entry Format Instance List Result
