lib/core/evolution.mli: Attr Atype Bounds_model Format Instance Oclass Schema Structure_schema Violation
