lib/core/monitor.ml: Attr Bounds_model Content_legality Entry Format Hashtbl Incremental Instance Legality List Map Oclass Option Printf Schema Single_valued String Transaction Value Violation
