lib/core/consistency.mli: Bounds_model Format Inference Instance Schema
