lib/core/evolution.ml: Attr Attribute_schema Atype Bounds_model Class_schema Format Legality List Oclass Option Result Schema String Structure_schema Typing Violation
