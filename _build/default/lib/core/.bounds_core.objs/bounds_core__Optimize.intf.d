lib/core/optimize.mli: Bounds_query Inference Query
