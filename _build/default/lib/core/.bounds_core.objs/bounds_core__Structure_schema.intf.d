lib/core/structure_schema.mli: Bounds_model Format Oclass
