lib/core/spec_printer.mli: Format Schema
