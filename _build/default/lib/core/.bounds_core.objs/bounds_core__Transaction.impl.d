lib/core/transaction.ml: Bounds_model Entry Format Instance Legality List Printf Result Update Violation
