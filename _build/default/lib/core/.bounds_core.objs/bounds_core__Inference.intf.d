lib/core/inference.mli: Element Format Schema Structure_schema
