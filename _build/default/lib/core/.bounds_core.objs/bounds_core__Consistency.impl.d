lib/core/consistency.ml: Bounds_model Element Format Inference Instance Legality Violation Witness
