lib/core/update.mli: Bounds_model Entry Format Instance
