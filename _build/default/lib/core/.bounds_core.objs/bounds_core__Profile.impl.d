lib/core/profile.ml: Array Attr Attribute_schema Bounds_model Class_schema Entry Format Hashtbl Instance List Oclass Option Schema
