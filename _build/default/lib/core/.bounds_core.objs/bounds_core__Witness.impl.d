lib/core/witness.ml: Attr Attribute_schema Atype Bounds_model Class_schema Element Entry Inference Instance List Oclass Option Printf Schema String Structure_schema Typing Value
