lib/core/spec_parser.ml: Attr Attribute_schema Atype Bounds_model Class_schema Format List Oclass Option Printf Schema String Structure_schema Typing
