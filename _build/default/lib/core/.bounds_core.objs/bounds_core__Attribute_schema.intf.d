lib/core/attribute_schema.mli: Attr Bounds_model Format Oclass
