lib/core/naive_legality.ml: Bounds_model Content_legality Entry Instance Keys List Oclass Schema Single_valued Structure_schema Violation
