lib/core/spec_printer.ml: Attr Attribute_schema Atype Bounds_model Buffer Class_schema Format List Oclass Option Printf Schema String Structure_schema Typing
