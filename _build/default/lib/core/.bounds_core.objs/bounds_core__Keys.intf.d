lib/core/keys.mli: Bounds_model Instance Schema Violation
