lib/core/schema.ml: Attr Attribute_schema Bounds_model Class_schema Format List Oclass Printf String Structure_schema Typing
