lib/core/class_schema.ml: Bounds_model Format List Oclass Printf String
