lib/core/legality.ml: Content_legality Keys Single_valued Structure_legality
