lib/core/repair.mli: Attr Bounds_model Entry Format Instance Oclass Schema Value Violation
