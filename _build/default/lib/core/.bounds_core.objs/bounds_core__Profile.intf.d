lib/core/profile.mli: Attr Bounds_model Format Instance Oclass Schema
