lib/core/repair.ml: Attr Atype Bounds_model Class_schema Entry Format Inference Instance Lazy Legality List Oclass Option Printf Schema Structure_schema Typing Value Violation Witness
