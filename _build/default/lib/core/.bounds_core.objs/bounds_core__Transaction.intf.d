lib/core/transaction.mli: Bounds_model Entry Format Instance Schema Update Violation
