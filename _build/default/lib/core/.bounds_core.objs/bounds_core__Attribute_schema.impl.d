lib/core/attribute_schema.ml: Attr Bounds_model Format Oclass Printf
