lib/core/violation.ml: Attr Atype Bounds_model Entry Format List Oclass Printf Stdlib String Structure_schema Value
