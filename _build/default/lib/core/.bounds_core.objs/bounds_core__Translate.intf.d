lib/core/translate.mli: Bounds_model Bounds_query Format Oclass Query Structure_schema
