lib/core/naive_legality.mli: Bounds_model Instance Schema Violation
