lib/core/class_schema.mli: Bounds_model Format Oclass
