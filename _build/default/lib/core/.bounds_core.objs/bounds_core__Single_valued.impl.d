lib/core/single_valued.ml: Attr Bounds_model Entry Instance List Schema Violation
