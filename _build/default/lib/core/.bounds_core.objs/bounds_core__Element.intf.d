lib/core/element.mli: Bounds_model Format Oclass Set Structure_schema
