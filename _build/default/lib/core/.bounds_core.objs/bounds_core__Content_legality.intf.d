lib/core/content_legality.mli: Bounds_model Entry Instance Schema Violation
