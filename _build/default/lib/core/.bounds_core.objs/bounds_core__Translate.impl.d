lib/core/translate.ml: Bounds_model Bounds_query Format List Oclass Query Structure_schema
