lib/core/single_valued.mli: Bounds_model Entry Instance Schema Violation
