lib/core/spec_parser.mli: Format Schema
