lib/core/structure_legality.ml: Bitset Bounds_model Bounds_query Entry Eval Index Instance List Schema Structure_schema Translate Violation
