lib/core/keys.ml: Attr Bounds_model Entry Hashtbl Instance Int List Schema Value Violation
