(** Schema evolution (Section 6.2).

    The paper observes that, unlike in rigid relational/object schemas,
    "many kinds of schema evolution … are extremely lightweight, involving
    no modifications to existing directory entries".  This module makes
    the observation precise: each evolution operation is statically
    classified by whether it {e preserves legality} — whether every
    instance legal under the old schema is guaranteed legal under the
    evolved one (in which case no revalidation or migration is needed).

    The classification is sound, not complete: [preserves_legality op =
    true] is a guarantee (property-tested over random legal instances);
    [false] means revalidation is required in general, even if a specific
    instance happens to survive.  [migrate] performs that revalidation,
    reporting exactly the violations an evolution step introduces. *)

open Bounds_model

type op =
  | Declare_attribute of Attr.t * Atype.t
      (** extend the typing function; lightweight only for [T_string]
          (any other type can invalidate values previously typed by the
          string default) *)
  | Add_allowed_attribute of Oclass.t * Attr.t
      (** the paper's first example of lightweight evolution *)
  | Add_required_attribute of Oclass.t * Attr.t
  | Drop_required_attribute of Oclass.t * Attr.t
      (** demote a required attribute to allowed-only *)
  | Drop_allowed_attribute of Oclass.t * Attr.t
      (** remove an attribute from a class entirely (required included) *)
  | Add_core_class of { name : Oclass.t; parent : Oclass.t }
  | Add_aux_class of Oclass.t
  | Allow_aux of { core : Oclass.t; aux : Oclass.t }
      (** the paper's second example of lightweight evolution *)
  | Require_class of Oclass.t
  | Drop_required_class of Oclass.t
  | Require_rel of Structure_schema.required
  | Drop_required_rel of Structure_schema.required
  | Forbid_rel of Structure_schema.forbidden
  | Drop_forbidden_rel of Structure_schema.forbidden
  | Make_single_valued of Attr.t
  | Drop_single_valued of Attr.t
  | Add_key of Attr.t
  | Drop_key of Attr.t

val pp_op : Format.formatter -> op -> unit

(** [apply op schema] — fails on ill-formed evolutions (unknown classes,
    duplicate declarations, conflicting typing, …). *)
val apply : op -> Schema.t -> (Schema.t, string) result

val apply_all : op list -> Schema.t -> (Schema.t, string) result

(** Static classification: [true] guarantees every instance legal under
    [schema] stays legal under [apply op schema]. *)
val preserves_legality : op -> bool

type migration = {
  schema : Schema.t;  (** the evolved schema *)
  revalidated : bool;  (** whether a full recheck was necessary *)
  violations : Violation.t list;
      (** violations of the instance under the evolved schema *)
}

(** [migrate ops schema inst] — applies the operations, skipping
    revalidation when every step is legality-preserving. *)
val migrate : op list -> Schema.t -> Instance.t -> (migration, string) result

(** [diff old_schema new_schema] — an operation sequence transforming the
    first schema into the second ([apply_all (diff a b) a] equals [b];
    property-tested).  Fails for changes the operation vocabulary cannot
    express: removing or retyping a declared attribute, and removing or
    reparenting classes. *)
val diff : Schema.t -> Schema.t -> (op list, string) result
