(** Violation repair: turn an illegal directory instance into a legal one
    with targeted edits.

    For each violation class there is a canonical repair:

    - content: missing required attributes get typed placeholder values
      (unique ones for key attributes); attributes no class allows are
      removed; class sets are closed upward, stripped of undeclared or
      disallowed auxiliary classes, and given [top] when coreless;
      single-valued attributes keep their first value; duplicate key
      values are re-keyed on all but the first holder;
    - structure: a missing required class is materialized as a fresh
      witness forest ({!Witness.seed_forest}); an unsatisfied required
      child/descendant grows a minimal subtree under the violating entry
      ({!Witness.tree_for_attach});
    - destructive repairs — deleting the offending subtree — are the only
      option for forbidden relationships, unsatisfied parent/ancestor
      requirements, and incomparable core classes, and run only with
      [~destructive:true].

    [fix] iterates repair → recheck to a fixpoint, because repairs can
    cascade (a grafted subtree brings required attributes of its own).
    It is conservative by construction: it never invents semantics, only
    placeholders, and reports what it changed. *)

open Bounds_model

type action =
  | Added_value of { entry : Entry.id; attr : Attr.t; value : Value.t }
  | Removed_attribute of { entry : Entry.id; attr : Attr.t }
  | Dropped_ill_typed of { entry : Entry.id; attr : Attr.t }
      (** values outside the attribute's declared type were removed *)
  | Kept_first_value of { entry : Entry.id; attr : Attr.t }
  | Rekeyed of { entry : Entry.id; attr : Attr.t; value : Value.t }
  | Closed_classes of { entry : Entry.id; classes : Oclass.Set.t }
  | Grafted of { parent : Entry.id option; size : int; for_class : Oclass.t }
  | Deleted_subtree of { root : Entry.id }

val pp_action : Format.formatter -> action -> unit

type outcome = {
  instance : Instance.t;
  actions : action list;  (** in application order *)
  remaining : Violation.t list;  (** empty iff fully repaired *)
}

(** [fix schema inst] — [destructive] defaults to [false].  The schema
    must be consistent for structural grafts to be constructible; on
    inconsistent schemas only content repairs apply. *)
val fix : ?destructive:bool -> ?max_rounds:int -> Schema.t -> Instance.t -> outcome
