(** The Figure-4 translation: structure-schema elements → hierarchical
    selection queries.

    For each required relationship the query retrieves its {e violators}
    (ci-entries with no axis-related cj-entry), so the instance is legal
    w.r.t. the element iff the query is {e empty}.  For each forbidden
    relationship the query retrieves the offending ci-entries directly.
    For a required class [c•] the query is the atomic selection
    [(objectClass=c)] and legality requires it {e non-empty}. *)

open Bounds_model
open Bounds_query

(** [(σ− (oc=ci) (χ_axis (oc=ci) (oc=cj)))] — empty iff the relationship
    holds. *)
val required_rel : Structure_schema.required -> Query.t

(** [(χ_axis (oc=ci) (oc=cj))] — empty iff the relationship holds.  The
    result contains the ci-side entries of offending pairs. *)
val forbidden_rel : Structure_schema.forbidden -> Query.t

(** [(objectClass=c)] — non-empty iff [c•] holds. *)
val required_class : Oclass.t -> Query.t

type expectation = Must_be_empty | Must_be_nonempty

type obligation =
  | Oblig_required of Structure_schema.required
  | Oblig_forbidden of Structure_schema.forbidden
  | Oblig_class of Oclass.t

(** Every obligation of a structure schema with its query and expected
    emptiness — the full Figure-4 table for one schema. *)
val all : Structure_schema.t -> (obligation * Query.t * expectation) list

val pp_obligation : Format.formatter -> obligation -> unit
