open Bounds_model
open Bounds_query

(* All offending children / descendants of [src], for the witness pairs in
   Forbidden_rel reports (one report per offending pair, matching the
   naive pairwise checker). *)
let find_targets inst f cj src =
  let has_class id = Entry.has_class (Instance.entry inst id) cj in
  match f with
  | Structure_schema.F_child -> List.filter has_class (Instance.children inst src)
  | Structure_schema.F_descendant ->
      List.filter has_class (Instance.descendants inst src)

let check ?index ?vindex (schema : Schema.t) inst =
  let ix = match index with Some ix -> ix | None -> Index.create inst in
  let eval q = Eval.eval ?vindex ix q in
  let viols = ref [] in
  let add v = viols := v :: !viols in
  List.iter
    (fun (oblig, q, expect) ->
      let result = eval q in
      match (expect, oblig) with
      | Translate.Must_be_nonempty, Translate.Oblig_class c ->
          if Bitset.is_empty result then
            add (Violation.Missing_required_class { cls = c })
      | Translate.Must_be_empty, Translate.Oblig_required rel ->
          List.iter
            (fun id -> add (Violation.Unsatisfied_rel { entry = id; rel }))
            (Index.ids_of ix result)
      | Translate.Must_be_empty, Translate.Oblig_forbidden ((_, f, cj) as rel) ->
          List.iter
            (fun src ->
              match find_targets inst f cj src with
              | [] -> assert false (* query said so *)
              | targets ->
                  List.iter
                    (fun target ->
                      add (Violation.Forbidden_rel { source = src; target; rel }))
                    targets)
            (Index.ids_of ix result)
      | Translate.Must_be_nonempty, (Translate.Oblig_required _ | Translate.Oblig_forbidden _)
      | Translate.Must_be_empty, Translate.Oblig_class _ ->
          assert false (* Translate.all pairs expectations correctly *))
    (Translate.all schema.structure);
  List.rev !viols

let is_legal ?index ?vindex schema inst = check ?index ?vindex schema inst = []
