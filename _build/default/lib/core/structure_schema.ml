open Bounds_model

type rel = Child | Descendant | Parent | Ancestor
type forb = F_child | F_descendant

let rel_to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Parent -> "parent"
  | Ancestor -> "ancestor"

let rel_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "child" -> Ok Child
  | "descendant" -> Ok Descendant
  | "parent" -> Ok Parent
  | "ancestor" -> Ok Ancestor
  | other ->
      Error
        (Printf.sprintf "unknown relationship %S (child/descendant/parent/ancestor)" other)

let forb_to_string = function F_child -> "child" | F_descendant -> "descendant"

let forb_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "child" -> Ok F_child
  | "descendant" -> Ok F_descendant
  | other ->
      Error (Printf.sprintf "unknown forbidden relationship %S (child/descendant)" other)

type required = Oclass.t * rel * Oclass.t
type forbidden = Oclass.t * forb * Oclass.t

let pp_required ppf (ci, r, cj) =
  let arrow =
    match r with
    | Child -> "->"
    | Descendant -> "->>"
    | Parent -> "<-parent-"
    | Ancestor -> "<<-ancestor-"
  in
  Format.fprintf ppf "%a %s %a" Oclass.pp ci arrow Oclass.pp cj

let pp_forbidden ppf (ci, f, cj) =
  let arrow = match f with F_child -> "-/->" | F_descendant -> "-/->>" in
  Format.fprintf ppf "%a %s %a" Oclass.pp ci arrow Oclass.pp cj

module Req = Set.Make (struct
  type t = required

  let compare (a1, r1, b1) (a2, r2, b2) =
    match Oclass.compare a1 a2 with
    | 0 -> ( match Stdlib.compare r1 r2 with 0 -> Oclass.compare b1 b2 | c -> c)
    | c -> c
end)

module Forb = Set.Make (struct
  type t = forbidden

  let compare (a1, r1, b1) (a2, r2, b2) =
    match Oclass.compare a1 a2 with
    | 0 -> ( match Stdlib.compare r1 r2 with 0 -> Oclass.compare b1 b2 | c -> c)
    | c -> c
end)

type t = { cr : Oclass.Set.t; er : Req.t; ef : Forb.t }

let empty = { cr = Oclass.Set.empty; er = Req.empty; ef = Forb.empty }
let require_class c t = { t with cr = Oclass.Set.add c t.cr }
let require ci r cj t = { t with er = Req.add (ci, r, cj) t.er }
let forbid ci f cj t = { t with ef = Forb.add (ci, f, cj) t.ef }
let required_classes t = t.cr
let required_rels t = Req.elements t.er
let forbidden_rels t = Forb.elements t.ef
let mem_required_class t c = Oclass.Set.mem c t.cr
let mem_required t r = Req.mem r t.er
let mem_forbidden t f = Forb.mem f t.ef

let classes t =
  let s = t.cr in
  let s = Req.fold (fun (a, _, b) s -> Oclass.Set.add a (Oclass.Set.add b s)) t.er s in
  Forb.fold (fun (a, _, b) s -> Oclass.Set.add a (Oclass.Set.add b s)) t.ef s

let size t = Oclass.Set.cardinal t.cr + Req.cardinal t.er + Forb.cardinal t.ef

let equal t1 t2 =
  Oclass.Set.equal t1.cr t2.cr && Req.equal t1.er t2.er && Forb.equal t1.ef t2.ef

let pp ppf t =
  Oclass.Set.iter
    (fun c -> Format.fprintf ppf "require exists %a@." Oclass.pp c)
    t.cr;
  Req.iter
    (fun (ci, r, cj) ->
      Format.fprintf ppf "require %a %s %a@." Oclass.pp ci (rel_to_string r)
        Oclass.pp cj)
    t.er;
  Forb.iter
    (fun (ci, f, cj) ->
      Format.fprintf ppf "forbid %a %s %a@." Oclass.pp ci (forb_to_string f)
        Oclass.pp cj)
    t.ef
