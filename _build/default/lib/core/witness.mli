(** Legal-witness construction for consistent schemas.

    Given a saturated inference state in which [∅•] is {e not} derivable,
    builds a concrete legal instance by a chase:

    - one tree is grown per required class (forest roots are independent,
      so cross-tree structural constraints never arise);
    - every node is labelled with a most-specific core class; its class
      set is the upward closure, and its attributes are the required
      attributes of those classes, filled with typed placeholder values
      (unique ones for key attributes);
    - labels are {e refined} downward when a required child's required
      parent class forces the creating node deeper in the hierarchy;
    - required children/descendants grow below (with intermediate nodes
      when a forbidden-child constraint rules out a direct edge, or when
      the new node itself requires ancestors); required parents/ancestors
      grow in a chain above, ordered to respect forbidden-descendant
      constraints.

    Termination is guaranteed for saturated consistent schemas (the cycle
    rules make the required-edge graph acyclic on instantiable classes); a
    node budget guards against inference incompleteness, turning a
    non-terminating chase into [Error]. *)

open Bounds_model

(** [construct inf] — [inf] must not be inconsistent.  The result is
    checked by the caller ({!Consistency.decide} verifies it with the
    independent {!Legality} checker). *)
val construct : ?max_nodes:int -> Inference.t -> (Instance.t, string) result

(** [seed_forest inf ~first_id cls] — a standalone forest containing an
    entry of class [cls] and satisfying all structural obligations
    internally (including any required ancestors, grown above the seed).
    Entry ids start at [first_id].  Used by {!Repair} to materialize a
    missing required class. *)
val seed_forest :
  ?max_nodes:int ->
  Inference.t ->
  first_id:int ->
  Oclass.t ->
  (Instance.t, string) result

(** [tree_for_attach inf ~first_id ~above ~attach_classes cls] — a
    single-rooted tree whose root belongs to [cls] and whose downward
    obligations are satisfied internally, suitable for grafting under an
    entry with class set [attach_classes] and path class set [above]
    (the root must need no further ancestors and must not be forbidden
    there — those cases are reported as errors). *)
val tree_for_attach :
  ?max_nodes:int ->
  Inference.t ->
  first_id:int ->
  above:Oclass.Set.t ->
  attach_classes:Oclass.Set.t ->
  Oclass.t ->
  (Instance.t, string) result
