open Bounds_model
module SS = Structure_schema

exception Fail of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

type state = {
  inf : Inference.t;
  schema : Schema.t;
  mutable inst : Instance.t;
  mutable next_id : int;
  mutable key_seq : int;
  max_nodes : int;
  n_core : int;
}

let cls_of = function Element.Cls c -> Some c | Element.Empty -> None

(* Targets of saturated required relationships with source exactly [c]
   (source-isa closure makes exact lookup complete), Empty excluded. *)
let targets st c rel =
  List.filter_map
    (fun (r, n) -> if r = rel then cls_of n else None)
    (Inference.reqs_from st.inf (Element.Cls c))
  |> List.sort_uniq Oclass.compare

let closure st c = Class_schema.up_closure st.schema.classes c

let deeper st c1 c2 =
  Class_schema.depth_of st.schema.classes c1
  > Class_schema.depth_of st.schema.classes c2

(* Is relationship [f] forbidden between some class of the upper closure
   and some class of the lower closure?  The saturated forb set is closed
   downward on both sides, but closures contain several classes, so test
   all pairs. *)
let blocked st f upper lower =
  Oclass.Set.exists
    (fun cu ->
      Oclass.Set.exists
        (fun cl -> Inference.is_forbidden st.inf (Element.Cls cu) f (Element.Cls cl))
        lower)
    upper

(* Most-specific label covering all classes in [need]; they must be
   pairwise comparable (the parenthood rule rejects the rest). *)
let deepest_of st = function
  | [] -> invalid_arg "deepest_of: empty"
  | c :: rest ->
      List.fold_left
        (fun best c ->
          if Class_schema.is_subclass st.schema.classes ~sub:c ~super:best then c
          else if Class_schema.is_subclass st.schema.classes ~sub:best ~super:c then
            best
          else
            failf "incomparable required parent classes %s and %s"
              (Oclass.to_string best) (Oclass.to_string c))
        c rest

(* Label refinement: a required child's required parent class can force
   the creating node deeper in the core hierarchy (see ch-pa-conflict).
   The child's own label may itself be refined, so the forced-parent
   collection recurses one step through refined child labels. *)
let refine st c0 =
  let rec refined_label depth l =
    if depth > st.n_core + 1 then
      failf "label refinement did not converge at %s" (Oclass.to_string c0);
    let forced =
      List.concat_map
        (fun t ->
          let t' = refined_label (depth + 1) t in
          (* the child's required parent classes are the creating node *)
          let from_parents = targets st t' SS.Parent in
          (* a required ancestor of the child that is barred (by a
             forbidden-descendant edge) from sitting above the creating
             node must be the creating node itself *)
          let from_ancestors =
            List.filter
              (fun x ->
                (not (Oclass.Set.mem x (closure st l)))
                && Class_schema.is_subclass st.schema.classes ~sub:x ~super:l
                && blocked st SS.F_descendant (closure st x) (closure st l))
              (targets st t' SS.Ancestor)
          in
          from_parents @ from_ancestors)
        (targets st l SS.Child)
    in
    let l' =
      List.fold_left
        (fun l x ->
          if Oclass.Set.mem x (closure st l) then l
          else if Class_schema.is_subclass st.schema.classes ~sub:x ~super:l then x
          else
            failf "required child of %s needs parent %s, incomparable with it"
              (Oclass.to_string l) (Oclass.to_string x))
        l forced
    in
    if Oclass.equal l l' then l else refined_label (depth + 1) l'
  in
  refined_label 0 c0

(* Placeholder value for a required attribute; unique for key attrs. *)
let dummy_value st attr =
  let unique = Attr.Set.mem attr st.schema.Schema.keys in
  let ty = Typing.find st.schema.Schema.typing attr in
  if unique then begin
    st.key_seq <- st.key_seq + 1;
    match ty with
    | Atype.T_int -> Value.Int st.key_seq
    | Atype.T_string -> Value.String (Printf.sprintf "w%d" st.key_seq)
    | Atype.T_dn -> Value.Dn (Printf.sprintf "id=w%d" st.key_seq)
    | Atype.T_bool -> failf "boolean key attribute %s" (Attr.to_string attr)
    | Atype.T_telephone -> Value.String (string_of_int st.key_seq)
  end
  else
    match ty with
    | Atype.T_int -> Value.Int 0
    | Atype.T_string -> Value.String "x"
    | Atype.T_dn -> Value.Dn "id=0"
    | Atype.T_bool -> Value.Bool true
    | Atype.T_telephone -> Value.String "0"

let make_entry st label =
  let classes = closure st label in
  let attrs =
    Oclass.Set.fold
      (fun c acc ->
        Attr.Set.fold
          (fun a acc ->
            if Attr.equal a Attr.object_class || List.mem_assoc a acc then acc
            else (a, dummy_value st a) :: acc)
          (Attribute_schema.required st.schema.Schema.attributes c)
          acc)
      classes []
  in
  let id = st.next_id in
  st.next_id <- id + 1;
  Entry.make ~id ~rdn:(Printf.sprintf "id=%d" id) ~classes attrs

let add_node st ~parent label =
  if Instance.size st.inst >= st.max_nodes then
    failf "chase exceeded the node budget (%d) — inference incompleteness?" st.max_nodes;
  if Inference.class_unsat st.inf (Element.Cls label) then
    failf "chase tried to instantiate unsatisfiable class %s" (Oclass.to_string label);
  let e = make_entry st label in
  (match Instance.add ~parent e st.inst with
  | Ok inst -> st.inst <- inst
  | Error err -> failf "%s" (Instance.error_to_string err));
  Entry.id e

let node_classes st id = Entry.classes (Instance.entry st.inst id)

let ancestor_classes st id =
  List.fold_left
    (fun acc a -> Oclass.Set.union acc (node_classes st a))
    Oclass.Set.empty (Instance.ancestors st.inst id)

let has_descendant_with st id cls =
  List.exists
    (fun d -> Oclass.Set.mem cls (node_classes st d))
    (Instance.descendants st.inst id)

let has_child_with st id cls =
  List.exists
    (fun ch -> Oclass.Set.mem cls (node_classes st ch))
    (Instance.children st.inst id)

(* --- the upward chain builder ------------------------------------------

   Given a starting label, compute the chain of labels that must sit
   strictly above it, bottom-most first.  Each step is driven by the
   current top label's own requirements:

   - a required-parent class fixes the next node exactly (the deepest of
     the parent targets — pairwise comparable or the parenthood rule
     would have fired);
   - otherwise an outstanding required-ancestor class is placed, chosen
     so that every other outstanding ancestor tolerates sitting above it
     (no Forb(other, F_descendant, chosen)); a forbidden-child edge to
     the node below is bridged with an interposed [top] node;
   - classes already guaranteed above the whole chain ([above], the
     attachment point's own class closure chain) satisfy pending
     ancestors for free.

   Pending obligations only ever need to hold for nodes below the
   current top, so satisfying them with any newly placed higher node is
   sound. *)
(* Ancestor obligations a node's future child-axis descendants will
   impose on the path above it: a required child [t] of [l] has exactly
   [l]'s path as its strict ancestors, so any required ancestor of [t]
   (or, recursively, of [t]'s own required children) not provided by
   [l]'s own class set must sit above [l]. *)
let rec child_ancestor_obligations st depth l =
  if depth > st.n_core + 1 then []
  else
    List.concat_map
      (fun t ->
        let t = refine st t in
        let own = targets st t SS.Ancestor in
        let deeper_obls = child_ancestor_obligations st (depth + 1) t in
        List.filter
          (fun x -> not (Oclass.Set.mem x (closure st t)))
          (own @ deeper_obls))
      (targets st l SS.Child)

(* All ancestor-side obligations a node labelled [l] puts on the path
   strictly above it. *)
let upward_obligations st l =
  targets st l SS.Ancestor
  @ List.filter
      (fun x -> not (Oclass.Set.mem x (closure st l)))
      (child_ancestor_obligations st 0 l)
  |> List.sort_uniq Oclass.compare

(* Result of planning the chain strictly above a node: either the list
   of labels to create (bottom-most first) together with the possibly
   deepened start label, or an instruction to relabel the attachment
   node itself (one of its required ancestors can only be the attachment
   node) and retry. *)
type chain_plan =
  | Chain of { start : Oclass.t; labels : Oclass.t list }
  | Merge_attach of Oclass.t

exception Plan_merge of Oclass.t

let chain_above st ~above ~attach_classes ~attach_label ~start_label =
  let fuel0 = ((st.n_core + 2) * (st.n_core + 2)) + 4 in
  let absorb pending extra =
    List.sort_uniq Oclass.compare (pending @ extra)
    |> List.filter (fun p -> not (Oclass.Set.mem p above))
  in
  (* a class barred from having any parent or any ancestor
     (Forb(top, F, y) for some y of its closure) can only be a forest
     root *)
  let must_be_root label =
    Oclass.Set.exists
      (fun y ->
        Inference.is_forbidden st.inf (Element.Cls Oclass.top) SS.F_child
          (Element.Cls y)
        || Inference.is_forbidden st.inf (Element.Cls Oclass.top) SS.F_descendant
             (Element.Cls y))
      (closure st label)
  in
  let under_node = not (Oclass.Set.is_empty above) in
  let above_blocked label = blocked st SS.F_descendant above (closure st label) in
  let attach_mergeable label =
    match attach_label with
    | Some al -> Class_schema.is_subclass st.schema.classes ~sub:label ~super:al
    | None -> false
  in
  (* [start]: current (possibly deepened) bottom label.
     [cur]: current top label (= start when out = []).
     [below]: classes of nodes strictly below cur.
     [pending]: classes still needed strictly above cur.
     [out]: labels created so far, top-most first (excludes start). *)
  let rec go ~start ~cur ~pending ~below ~out fuel =
    if fuel = 0 then
      failf "ancestor chain did not converge above %s" (Oclass.to_string start_label);
    let pending = absorb pending (upward_obligations st cur) in
    (* a pending class barred (by forbidden-descendant edges from the
       attachment path) from sitting anywhere below the attachment point
       can only be satisfied by the attachment node itself *)
    (match List.find_opt above_blocked pending with
    | Some p when attach_mergeable p -> raise (Plan_merge p)
    | Some p ->
        failf "required ancestor %s of %s cannot sit below the attachment point"
          (Oclass.to_string p) (Oclass.to_string start_label)
    | None -> ());
    let below_all = Oclass.Set.union below (closure st cur) in
    (* one entry can play several ancestor roles: deepen [next] by any
       pending class that is compatible, collision-free, and not needed
       higher up by another pending class (merging it low would force a
       duplicate above, which forbidden edges may rule out) *)
    let needed_above_by_other p =
      List.exists
        (fun q ->
          (not (Oclass.equal q p))
          && List.exists
               (fun x -> Oclass.Set.mem x (closure st p))
               (upward_obligations st q))
        pending
    in
    let merge_pending next =
      List.fold_left
        (fun next p ->
          if
            Class_schema.is_subclass st.schema.classes ~sub:p ~super:next
            && (not (must_be_root p))
            && (not (needed_above_by_other p))
            && (not (blocked st SS.F_child (closure st p) (closure st cur)))
            && (not (blocked st SS.F_descendant (closure st p) below_all))
            && not (above_blocked p)
          then p
          else next)
        next pending
    in
    let step next pending =
      let next = merge_pending (refine st next) in
      if above_blocked next then
        if out = [] && attach_mergeable next then Merge_attach next
        else
          failf "required ancestor %s of %s cannot sit below the attachment point"
            (Oclass.to_string next) (Oclass.to_string start_label)
      else begin
        (* bridge a forbidden child edge with an interposed top node *)
        let bridge =
          if blocked st SS.F_child (closure st next) (closure st cur) then
            [ Oclass.top ]
          else []
        in
        let pending =
          List.filter (fun p -> not (Oclass.Set.mem p (closure st next))) pending
        in
        go ~start ~cur:next ~pending ~below:below_all
          ~out:((next :: bridge) @ out) (fuel - 1)
      end
    in
    (* deepen the current top node's label to a compatible pending class
       instead of stacking another node above *)
    let relabel_cur () =
      List.find_opt
        (fun p ->
          Class_schema.is_subclass st.schema.classes ~sub:p ~super:cur
          && (not (Oclass.equal p cur))
          && (not (blocked st SS.F_descendant (closure st p) below))
          && not (above_blocked p))
        pending
      |> Option.map (fun p ->
             let pending = List.filter (fun q -> not (Oclass.Set.mem q (closure st p))) pending in
             match out with
             | [] -> go ~start:p ~cur:p ~pending ~below ~out (fuel - 1)
             | _ :: rest -> go ~start ~cur:p ~pending ~below ~out:(p :: rest) (fuel - 1))
    in
    match targets st cur SS.Parent with
    | _ :: _ as pa ->
        let p = deepest_of st pa in
        (* the attachment point itself may be the required parent *)
        if
          pending = []
          && Oclass.Set.mem p attach_classes
          && not (blocked st SS.F_child attach_classes (closure st cur))
        then Chain { start; labels = List.rev out }
        else step p pending
    | [] -> (
        match pending with
        | [] -> Chain { start; labels = List.rev out }
        | _ -> (
            let admissible cand =
              (* pending classes not absorbed by [cand]'s closure will sit
                 above it, so [cand] must accept a parent ... *)
              let remaining =
                List.filter
                  (fun p ->
                    (not (Oclass.equal p cand))
                    && not (Oclass.Set.mem p (closure st cand)))
                  pending
              in
              ((remaining = [] && not under_node) || not (must_be_root cand))
              (* ... tolerate every one of them above ... *)
              && List.for_all
                   (fun other ->
                     not
                       (blocked st SS.F_descendant (closure st other)
                          (closure st cand)))
                   remaining
              (* ... and everything already below and above it *)
              && (not (blocked st SS.F_descendant (closure st cand) below_all))
              && not (above_blocked cand)
            in
            (* prefer candidates no other pending class needs as its own
               ancestor — placing those low would force a duplicate higher
               up; fall back to any admissible order (duplication is fine
               when nothing forbids it) *)
            let independent cand =
              List.for_all
                (fun p ->
                  Oclass.equal p cand
                  || not
                       (List.exists
                          (fun x -> Oclass.Set.mem x (closure st cand))
                          (upward_obligations st p)))
                pending
            in
            let pick =
              match
                List.find_opt (fun c -> admissible c && independent c) pending
              with
              | Some c -> Some c
              | None -> List.find_opt admissible pending
            in
            match pick with
            | Some cand -> step cand pending
            | None -> (
                match relabel_cur () with
                | Some result -> result
                | None -> (
                    match
                      List.find_opt (fun p -> out = [] && attach_mergeable p) pending
                    with
                    | Some p -> Merge_attach p
                    | None ->
                        failf "no admissible ancestor order above %s for {%s}"
                          (Oclass.to_string start_label)
                          (String.concat ", " (List.map Oclass.to_string pending))))))
  in
  try
    go ~start:start_label ~cur:start_label ~pending:[] ~below:Oclass.Set.empty
      ~out:[] fuel0
  with Plan_merge p -> Merge_attach p

(* Deepen an existing node to [label] (a subclass of its current most
   specific class): extend its class set and fill in newly required
   attributes. *)
let relabel_node st id label =
  let classes = closure st label in
  (match
     Instance.update_entry id
       (fun e ->
         let e = Entry.with_classes classes e in
         Oclass.Set.fold
           (fun c e ->
             Attr.Set.fold
               (fun a e ->
                 if Attr.equal a Attr.object_class || Entry.values e a <> [] then e
                 else Entry.add_value a (dummy_value st a) e)
               (Attribute_schema.required st.schema.Schema.attributes c)
               e)
           classes e)
       st.inst
   with
  | Ok inst -> st.inst <- inst
  | Error e -> failf "%s" (Instance.error_to_string e))

(* --- downward processing ------------------------------------------------- *)

let rec process_down st id =
  let label_classes = node_classes st id in
  let req rel =
    Oclass.Set.fold (fun c acc -> targets st c rel @ acc) label_classes []
    |> List.sort_uniq Oclass.compare
  in
  (* children: deepest targets first so one child can cover its supers *)
  let ch_targets =
    List.sort (fun a b -> compare (deeper st b a) (deeper st a b)) (req SS.Child)
  in
  List.iter
    (fun t ->
      if not (has_child_with st id t) then begin
        let child = add_node st ~parent:(Some id) (refine st t) in
        process_down st child;
        satisfy_upward st ~attach_to:id ~node:child
      end)
    ch_targets;
  List.iter
    (fun t ->
      if not (has_descendant_with st id t) then attach_descendant st id t 3)
    (req SS.Descendant)

(* Grow a descendant of class [t] below [id], interposing the ancestor /
   parent chain that [t] itself requires.  A [Merge_attach] plan deepens
   [id] itself and retries ([retries] bounds the relabel loop). *)
and attach_descendant st id t retries =
  if retries = 0 then
    failf "attachment of a %s descendant kept relabelling its anchor"
      (Oclass.to_string t);
  let lbl = refine st t in
  let above = Oclass.Set.union (node_classes st id) (ancestor_classes st id) in
  let attach_label =
    (* deepest class of the attachment node *)
    Some
      (Oclass.Set.fold
         (fun c best -> if deeper st c best then c else best)
         (node_classes st id) Oclass.top)
  in
  match
    chain_above st ~above ~attach_classes:(node_classes st id) ~attach_label
      ~start_label:lbl
  with
  | Merge_attach m ->
      relabel_node st id m;
      process_down st id;
      if not (has_descendant_with st id t) then attach_descendant st id t (retries - 1)
  | Chain { start; labels } ->
      let top_down = List.rev labels in
      (* a direct forbidden child edge from [id] is bridged with a top node *)
      let first = match top_down with c :: _ -> c | [] -> start in
      let top_down =
        if blocked st SS.F_child (node_classes st id) (closure st first) then
          Oclass.top :: top_down
        else top_down
      in
      let attach = ref id in
      let created = ref [] in
      List.iter
        (fun c ->
          let n = add_node st ~parent:(Some !attach) c in
          created := n :: !created;
          attach := n)
        (top_down @ [ start ]);
      (* process the new nodes bottom-up: the target first, so the chain
         nodes see their descendant requirements already met where
         possible *)
      List.iter (fun n -> process_down st n) !created

(* Check the parent/ancestor requirements of [node], which hangs under
   [attach_to].  For children created by the child axis the parent was
   forced into the creating node's label by [refine], so this is a
   consistency assertion. *)
and satisfy_upward st ~attach_to ~node =
  let parent_classes = node_classes st attach_to in
  Oclass.Set.iter
    (fun own ->
      List.iter
        (fun pa_target ->
          if not (Oclass.Set.mem pa_target parent_classes) then
            failf "child %s requires parent %s not provided by its creator"
              (Oclass.to_string own) (Oclass.to_string pa_target))
        (targets st own SS.Parent))
    (node_classes st node);
  (* ancestor requirements of the child not satisfied by the path above *)
  let above = Oclass.Set.union parent_classes (ancestor_classes st attach_to) in
  Oclass.Set.iter
    (fun own ->
      List.iter
        (fun an_target ->
          if not (Oclass.Set.mem an_target above) then
            failf "child of %s requires ancestor %s missing from its path"
              (Oclass.to_string own) (Oclass.to_string an_target))
        (targets st own SS.Ancestor))
    (node_classes st node)

(* --- roots ------------------------------------------------------------------ *)

(* Build the tree for one seed class: compute the full upward chain first
   (so the forest root is created first), then grow downward. *)
let build_seed st seed =
  let lbl = refine st seed in
  match
    chain_above st ~above:Oclass.Set.empty ~attach_classes:Oclass.Set.empty
      ~attach_label:None ~start_label:lbl
  with
  | Merge_attach _ -> failf "seed chain cannot merge into an attachment point"
  | Chain { start; labels } ->
      let top_down = List.rev labels in
      let parent = ref None in
      let created = ref [] in
      List.iter
        (fun c ->
          let n = add_node st ~parent:!parent c in
          created := n :: !created;
          parent := Some n)
        (top_down @ [ start ]);
      (* downward requirements, target node first then the chain above it *)
      List.iter (fun n -> process_down st n) !created

let covered st c =
  Instance.fold (fun e acc -> acc || Entry.has_class e c) st.inst false

let make_state ?(max_nodes = 20_000) ?(first_id = 0) inf =
  let schema = Inference.schema inf in
  {
    inf;
    schema;
    inst = Instance.empty;
    next_id = first_id;
    key_seq = first_id;
    max_nodes;
    n_core = Oclass.Set.cardinal (Class_schema.core_classes schema.Schema.classes);
  }

let construct ?max_nodes inf =
  if Inference.inconsistent inf then Error "schema is inconsistent"
  else begin
    let st = make_state ?max_nodes inf in
    try
      Oclass.Set.iter
        (fun c -> if not (covered st c) then build_seed st c)
        (Structure_schema.required_classes st.schema.Schema.structure);
      Ok st.inst
    with Fail m -> Error m
  end

let seed_forest ?max_nodes inf ~first_id cls =
  if Inference.inconsistent inf then Error "schema is inconsistent"
  else if Inference.class_unsat inf (Element.Cls cls) then
    Error
      (Printf.sprintf "no legal instance can contain an entry of class %s"
         (Oclass.to_string cls))
  else begin
    let st = make_state ?max_nodes ~first_id inf in
    try
      build_seed st cls;
      Ok st.inst
    with Fail m -> Error m
  end

let tree_for_attach ?max_nodes inf ~first_id ~above ~attach_classes cls =
  if Inference.inconsistent inf then Error "schema is inconsistent"
  else if Inference.class_unsat inf (Element.Cls cls) then
    Error
      (Printf.sprintf "no legal instance can contain an entry of class %s"
         (Oclass.to_string cls))
  else begin
    let st = make_state ?max_nodes ~first_id inf in
    try
      let lbl = refine st cls in
      match
        chain_above st ~above ~attach_classes
          ~attach_label:
            (Some
               (Oclass.Set.fold
                  (fun c best -> if deeper st c best then c else best)
                  attach_classes Oclass.top))
          ~start_label:lbl
      with
      | Merge_attach m ->
          Error
            (Printf.sprintf
               "a %s subtree here needs the attachment entry itself to belong to %s"
               (Oclass.to_string cls) (Oclass.to_string m))
      | Chain { start; labels = _ :: _ } ->
          ignore start;
          Error
            (Printf.sprintf
               "a %s entry needs ancestors the attachment point does not provide"
               (Oclass.to_string cls))
      | Chain { start; labels = [] } ->
          if blocked st SS.F_child attach_classes (closure st start) then
            Error
              (Printf.sprintf "a %s child is forbidden at the attachment point"
                 (Oclass.to_string start))
          else begin
            let n = add_node st ~parent:None start in
            process_down st n;
            Ok st.inst
          end
    with Fail m -> Error m
  end
