(** Schema elements, as manipulated by the Section-5 inference system.

    Elements range over core classes extended with the impossible
    pseudo-class [∅] ("an entry with no object class"):

    - [Exists n] — the paper's [n•]; [Exists Empty] is the inconsistency
      marker [∅•].
    - [Req (n1, rel, n2)] — required structural relationship.
      [Req (c, Descendant, Empty)] and [Req (c, Ancestor, Empty)] encode
      "no entry may belong to [c]" ({e unsat}): they are satisfiable only
      by instances with no [c]-entries.
    - [Forb (n1, forb, n2)] — forbidden structural relationship.

    The class-schema elements [ci ⊑ cj] and [ci ∦ cj] are static facts of
    the core tree and are consulted as predicates rather than
    materialized. *)

open Bounds_model

type node = Cls of Oclass.t | Empty

val node_equal : node -> node -> bool
val node_compare : node -> node -> int
val pp_node : Format.formatter -> node -> unit

type t =
  | Exists of node
  | Req of node * Structure_schema.rel * node
  | Forb of node * Structure_schema.forb * node
  | Above_or_self of node * node
      (** auxiliary judgment used by the inference system:
          [Above_or_self (a, x)] asserts that in every legal instance,
          each [a]-entry either itself belongs to [x] or has an ancestor
          belonging to [x].  It arises from required ancestors
          ([Req (a, An, x)]), from subclassing ([a ⊑ x]), and from a
          required child's required ancestor, and closes the loop-detection
          rules over paths that pass {e through} the entry itself. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** The inconsistency marker [∅•]. *)
val bottom : t

(** The canonical unsat marker for a class. *)
val unsat : node -> t

(** Elements of a structure schema (its axioms for the inference
    system). *)
val of_structure : Structure_schema.t -> t list

module Set : Set.S with type elt = t
