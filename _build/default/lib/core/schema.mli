(** Directory schemas (Definition 2.5): attribute schema + class schema +
    structure schema, together with the attribute typing and the two
    orthogonal Section 6.1 extensions (single-valued attributes and
    directory-wide keys).

    [make] validates cross-component well-formedness:
    - every class in the attribute schema is declared in the class schema;
    - every class in the structure schema is a {e core} class;
    - single-valued / key attributes appear in the attribute schema
      (keys are additionally single-valued by definition). *)

open Bounds_model

type t = private {
  typing : Typing.t;
  attributes : Attribute_schema.t;
  classes : Class_schema.t;
  structure : Structure_schema.t;
  single_valued : Attr.Set.t;
  keys : Attr.Set.t;
}

val make :
  ?typing:Typing.t ->
  ?attributes:Attribute_schema.t ->
  ?classes:Class_schema.t ->
  ?structure:Structure_schema.t ->
  ?single_valued:Attr.t list ->
  ?keys:Attr.t list ->
  unit ->
  (t, string list) result

val make_exn :
  ?typing:Typing.t ->
  ?attributes:Attribute_schema.t ->
  ?classes:Class_schema.t ->
  ?structure:Structure_schema.t ->
  ?single_valued:Attr.t list ->
  ?keys:Attr.t list ->
  unit ->
  t

(** The schema with empty components — everything is allowed by the class
    and structure schemas, nothing by the attribute schema. *)
val empty : t

(** All object classes declared (core + auxiliary). *)
val all_classes : t -> Oclass.Set.t

(** Size of the schema: classes + attribute declarations + structure
    elements.  The measure of Theorem 5.2's polynomial bound. *)
val size : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
