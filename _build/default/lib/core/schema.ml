open Bounds_model

type t = {
  typing : Typing.t;
  attributes : Attribute_schema.t;
  classes : Class_schema.t;
  structure : Structure_schema.t;
  single_valued : Attr.Set.t;
  keys : Attr.Set.t;
}

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  Oclass.Set.iter
    (fun c ->
      if not (Class_schema.mem t.classes c) then
        err "attribute schema mentions undeclared class %s" (Oclass.to_string c))
    (Attribute_schema.classes t.attributes);
  Oclass.Set.iter
    (fun c ->
      if not (Class_schema.is_core t.classes c) then
        err "structure schema mentions non-core class %s" (Oclass.to_string c))
    (Structure_schema.classes t.structure);
  let declared = Attribute_schema.attributes t.attributes in
  Attr.Set.iter
    (fun a ->
      if not (Attr.Set.mem a declared) then
        err "single-valued attribute %s is not used by any class" (Attr.to_string a))
    t.single_valued;
  Attr.Set.iter
    (fun a ->
      if not (Attr.Set.mem a declared) then
        err "key attribute %s is not used by any class" (Attr.to_string a))
    t.keys;
  List.rev !errs

let make ?(typing = Typing.default) ?(attributes = Attribute_schema.empty)
    ?(classes = Class_schema.empty) ?(structure = Structure_schema.empty)
    ?(single_valued = []) ?(keys = []) () =
  let keys = Attr.Set.of_list keys in
  (* keys are single-valued by definition *)
  let single_valued = Attr.Set.union (Attr.Set.of_list single_valued) keys in
  let t = { typing; attributes; classes; structure; single_valued; keys } in
  match validate t with [] -> Ok t | errs -> Error errs

let make_exn ?typing ?attributes ?classes ?structure ?single_valued ?keys () =
  match make ?typing ?attributes ?classes ?structure ?single_valued ?keys () with
  | Ok t -> t
  | Error errs -> invalid_arg (String.concat "; " errs)

let empty = make_exn ()

let all_classes t =
  Oclass.Set.union
    (Class_schema.core_classes t.classes)
    (Class_schema.aux_classes t.classes)

let size t =
  Oclass.Set.cardinal (all_classes t)
  + Attribute_schema.total_allowed t.attributes
  + Structure_schema.size t.structure

let equal t1 t2 =
  Attribute_schema.equal t1.attributes t2.attributes
  && Class_schema.equal t1.classes t2.classes
  && Structure_schema.equal t1.structure t2.structure
  && Attr.Set.equal t1.single_valued t2.single_valued
  && Attr.Set.equal t1.keys t2.keys

let pp ppf t =
  Format.fprintf ppf "== typing ==@.%a@." Typing.pp t.typing;
  Format.fprintf ppf "== class schema ==@.%a" Class_schema.pp t.classes;
  Format.fprintf ppf "== attribute schema ==@.%a" Attribute_schema.pp t.attributes;
  Format.fprintf ppf "== structure schema ==@.%a" Structure_schema.pp t.structure;
  if not (Attr.Set.is_empty t.single_valued) then
    Format.fprintf ppf "single-valued: %s@."
      (String.concat ", " (List.map Attr.to_string (Attr.Set.elements t.single_valued)));
  if not (Attr.Set.is_empty t.keys) then
    Format.fprintf ppf "keys: %s@."
      (String.concat ", " (List.map Attr.to_string (Attr.Set.elements t.keys)))
