(** Parser for the RFC-2254-style filter syntax.

    Grammar (whitespace between tokens is ignored):
    {v
      filter  ::= '(' body ')'
      body    ::= '&' filter*            conjunction
                | '|' filter*            disjunction
                | '!' filter             negation
                | attr '=' '*'           presence
                | attr '=' pattern       equality or substring (if '*' occurs)
                | attr '>=' value
                | attr '<=' value
    v}
    Backslash escapes [\(], [\)], [\*], [\\] inside values. *)

val parse : string -> (Filter.t, string) result

(** [parse_exn] raises [Failure] with the error message. *)
val parse_exn : string -> Filter.t
