(** LDAP boolean filters — the atomic selections of the query language.

    A filter is a boolean combination of assertions on a single entry's
    (attribute, value) pairs, in the style of RFC 2254.  Assertion values
    are raw strings; matching is performed on the string rendering of
    stored values, case-insensitively (LDAP's [caseIgnoreMatch] default).
    Ordering assertions ([>=], [<=]) compare numerically when both sides
    parse as integers, lexicographically otherwise. *)

open Bounds_model

type substring = {
  initial : string option;
  any : string list;
  final : string option;
}

type t =
  | Present of Attr.t  (** presence: [a=*] *)
  | Eq of Attr.t * string  (** equality: [a=v] *)
  | Ge of Attr.t * string  (** ordering: [a>=v] *)
  | Le of Attr.t * string  (** ordering: [a<=v] *)
  | Substr of Attr.t * substring  (** substring: [a=i*m1*m2*f] *)
  | And of t list  (** conjunction [&f1..fn]; [And []] is true *)
  | Or of t list  (** disjunction [|f1..fn]; [Or []] is false *)
  | Not of t

(** [(objectClass=c)] — the only filter shape the Figure-4 translation
    needs. *)
val class_eq : Oclass.t -> t

(** [matches f e] decides whether entry [e] satisfies [f]. *)
val matches : t -> Entry.t -> bool

(** Number of nodes — the [|Q|] contribution of atomic selections. *)
val size : t -> int

(** RFC-2254-style rendering, parseable back by {!Filter_parser}. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** [attributes f] — all attributes mentioned. *)
val attributes : t -> Attr.Set.t
