lib/query/filter_parser.ml: Attr Bounds_model Buffer Filter List Printf String
