lib/query/query.ml: Filter Format Printf String
