lib/query/index.mli: Bitset Bounds_model Entry Instance
