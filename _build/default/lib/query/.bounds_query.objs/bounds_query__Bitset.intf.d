lib/query/bitset.mli: Format
