lib/query/search.ml: Bitset Bounds_model Eval Filter Index Instance List Printf Query String
