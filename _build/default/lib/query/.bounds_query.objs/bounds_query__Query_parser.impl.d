lib/query/query_parser.ml: Buffer Filter_parser Printf Query String
