lib/query/query.mli: Bounds_model Filter Format Oclass
