lib/query/filter_parser.mli: Filter
