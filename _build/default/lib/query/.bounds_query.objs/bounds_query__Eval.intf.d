lib/query/eval.mli: Bitset Bounds_model Entry Filter Index Query Vindex
