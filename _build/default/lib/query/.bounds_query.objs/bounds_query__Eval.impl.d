lib/query/eval.ml: Bitset Filter Index List Query Vindex
