lib/query/search.mli: Bounds_model Entry Filter Index Vindex
