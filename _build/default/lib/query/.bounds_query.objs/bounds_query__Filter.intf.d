lib/query/filter.mli: Attr Bounds_model Entry Format Oclass
