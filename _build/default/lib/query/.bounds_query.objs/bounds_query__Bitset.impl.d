lib/query/bitset.ml: Array Bytes Char Format List Printf
