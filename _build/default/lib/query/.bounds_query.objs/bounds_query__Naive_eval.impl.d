lib/query/naive_eval.ml: Bounds_model Entry Filter Instance Int Query Set
