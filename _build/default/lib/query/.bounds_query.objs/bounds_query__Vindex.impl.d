lib/query/vindex.ml: Attr Bitset Bounds_model Entry Hashtbl Index List Option String Value
