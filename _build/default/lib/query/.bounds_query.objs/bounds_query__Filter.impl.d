lib/query/filter.ml: Attr Bounds_model Buffer Entry Format Int List Oclass Printf String Value
