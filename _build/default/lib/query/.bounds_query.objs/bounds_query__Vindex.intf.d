lib/query/vindex.mli: Attr Bitset Bounds_model Index
