lib/query/index.ml: Array Bitset Bounds_model Entry Instance Int List Map Option
