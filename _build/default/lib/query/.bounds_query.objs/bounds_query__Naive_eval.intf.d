lib/query/naive_eval.mli: Bounds_model Entry Instance Query
