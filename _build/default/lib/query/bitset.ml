type t = { n : int; words : Bytes.t }

let nbytes n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Bytes.make (nbytes n) '\000' }

let length s = s.n

let full n =
  let s = { n; words = Bytes.make (nbytes n) '\255' } in
  (* clear the padding bits of the last byte *)
  let rem = n land 7 in
  if rem <> 0 && n > 0 then begin
    let last = nbytes n - 1 in
    Bytes.set s.words last (Char.chr ((1 lsl rem) - 1))
  end;
  s

let check_idx s i =
  if i < 0 || i >= s.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i s.n)

let mem s i =
  check_idx s i;
  Char.code (Bytes.get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set s i =
  check_idx s i;
  let b = i lsr 3 in
  Bytes.set s.words b (Char.chr (Char.code (Bytes.get s.words b) lor (1 lsl (i land 7))))

let unset s i =
  check_idx s i;
  let b = i lsr 3 in
  Bytes.set s.words b
    (Char.chr (Char.code (Bytes.get s.words b) land lnot (1 lsl (i land 7)) land 0xff))

let copy s = { n = s.n; words = Bytes.copy s.words }

let add s i =
  let s' = copy s in
  set s' i;
  s'

let remove s i =
  let s' = copy s in
  unset s' i;
  s'

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: universe size mismatch"

let map2 f a b =
  check_same a b;
  let r = create a.n in
  for k = 0 to Bytes.length a.words - 1 do
    Bytes.set r.words k
      (Char.chr (f (Char.code (Bytes.get a.words k)) (Char.code (Bytes.get b.words k)) land 0xff))
  done;
  r

let union = map2 (fun x y -> x lor y)
let inter = map2 (fun x y -> x land y)
let diff = map2 (fun x y -> x land lnot y)

let complement a =
  let r = diff (full a.n) a in
  r

let is_empty s = Bytes.for_all (fun c -> c = '\000') s.words

let popcount_byte = Array.init 256 (fun i ->
    let rec go i acc = if i = 0 then acc else go (i lsr 1) (acc + (i land 1)) in
    go i 0)

let cardinal s =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte.(Char.code c)) s.words;
  !acc

let equal a b = a.n = b.n && Bytes.equal a.words b.words

let subset a b =
  check_same a b;
  is_empty (diff a b)

let iter f s =
  for i = 0 to s.n - 1 do
    if Char.code (Bytes.get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0 then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n l =
  let s = create n in
  List.iter (set s) l;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
