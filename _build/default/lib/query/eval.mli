(** Linear-time query evaluation.

    Each operator costs one O(|D|) pass over the rank arrays of the
    {!Index}, so a whole query evaluates in O(|Q|·|D|) — the bound
    established for hierarchical selection queries in [9] and relied on by
    the paper's Theorem 3.1.  The χ sweeps exploit the preorder ranking:

    - χ child / parent use the parent-rank array directly;
    - χ descendant sweeps ranks in reverse (descendants precede their
      ancestors' completion), pushing "has a match below" up one edge at a
      time;
    - χ ancestor sweeps forward, pulling "has a match above" down.

    An optional {!Vindex} accelerates atomic equality/presence selections
    below the O(|D|) scan. *)

open Bounds_model

val eval : ?vindex:Vindex.t -> Index.t -> Query.t -> Bitset.t
val eval_ids : ?vindex:Vindex.t -> Index.t -> Query.t -> Entry.id list
val is_empty : ?vindex:Vindex.t -> Index.t -> Query.t -> bool

(** [eval_filter ix f] — the atomic-selection scan on its own. *)
val eval_filter : Index.t -> Filter.t -> Bitset.t
