let eval_filter ix f =
  let n = Index.n ix in
  let bs = Bitset.create n in
  for r = 0 to n - 1 do
    if Filter.matches f (Index.entry_of_rank ix r) then Bitset.set bs r
  done;
  bs

(* result = q1 ∩ { e | some child of e is in q2 } *)
let chi_child ix q1 q2 =
  let n = Index.n ix in
  let marked = Bitset.create n in
  Bitset.iter
    (fun r ->
      let p = Index.parent_rank ix r in
      if p >= 0 then Bitset.set marked p)
    q2;
  Bitset.inter q1 marked

(* result = q1 ∩ { e | parent of e is in q2 } *)
let chi_parent ix q1 q2 =
  let n = Index.n ix in
  let marked = Bitset.create n in
  for r = 0 to n - 1 do
    let p = Index.parent_rank ix r in
    if p >= 0 && Bitset.mem q2 p then Bitset.set marked r
  done;
  Bitset.inter q1 marked

(* Reverse preorder sweep: when node r is visited all its descendants have
   already pushed their contribution into [below].(r). *)
let chi_descendant ix q1 q2 =
  let n = Index.n ix in
  let below = Bitset.create n in
  for r = n - 1 downto 0 do
    if Bitset.mem q2 r || Bitset.mem below r then begin
      let p = Index.parent_rank ix r in
      if p >= 0 then Bitset.set below p
    end
  done;
  Bitset.inter q1 below

(* Forward preorder sweep: parents are visited before children. *)
let chi_ancestor ix q1 q2 =
  let n = Index.n ix in
  let above = Bitset.create n in
  for r = 0 to n - 1 do
    let p = Index.parent_rank ix r in
    if p >= 0 && (Bitset.mem q2 p || Bitset.mem above p) then Bitset.set above r
  done;
  Bitset.inter q1 above

(* With a value index, answer Eq/Present leaves from the hash table and
   push boolean structure into set algebra; other leaves fall back to the
   entry scan. *)
let rec eval_filter_indexed vx ix f =
  match f with
  | Filter.Eq (a, v) -> Vindex.lookup_eq vx a v
  | Filter.Present a -> Vindex.lookup_present vx a
  | Filter.And fs ->
      List.fold_left
        (fun acc f -> Bitset.inter acc (eval_filter_indexed vx ix f))
        (Bitset.full (Index.n ix))
        fs
  | Filter.Or fs ->
      List.fold_left
        (fun acc f -> Bitset.union acc (eval_filter_indexed vx ix f))
        (Bitset.create (Index.n ix))
        fs
  | Filter.Not f -> Bitset.complement (eval_filter_indexed vx ix f)
  | Filter.Ge _ | Filter.Le _ | Filter.Substr _ -> eval_filter ix f

let rec eval ?vindex ix q =
  match q with
  | Query.Select f -> (
      match vindex with
      | Some vx -> eval_filter_indexed vx ix f
      | None -> eval_filter ix f)
  | Query.Minus (a, b) -> Bitset.diff (eval ?vindex ix a) (eval ?vindex ix b)
  | Query.Union (a, b) -> Bitset.union (eval ?vindex ix a) (eval ?vindex ix b)
  | Query.Inter (a, b) -> Bitset.inter (eval ?vindex ix a) (eval ?vindex ix b)
  | Query.Chi (ax, a, b) ->
      let s1 = eval ?vindex ix a and s2 = eval ?vindex ix b in
      (match ax with
      | Query.Child -> chi_child ix s1 s2
      | Query.Parent -> chi_parent ix s1 s2
      | Query.Descendant -> chi_descendant ix s1 s2
      | Query.Ancestor -> chi_ancestor ix s1 s2)

let eval_ids ?vindex ix q = Index.ids_of ix (eval ?vindex ix q)
let is_empty ?vindex ix q = Bitset.is_empty (eval ?vindex ix q)
