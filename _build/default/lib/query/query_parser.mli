(** Parser for the s-expression query syntax produced by
    {!Query.to_string}:
    {v
      query ::= '(' 'select' string ')'          string: a quoted filter
              | '(' 'minus' query query ')'
              | '(' 'union' query query ')'
              | '(' 'inter' query query ')'
              | '(' 'chi' axis query query ')'   axis: c | p | d | a
    v}
    An unquoted bare filter such as [(objectClass=person)] is also
    accepted at query position as shorthand for a [select]. *)

val parse : string -> (Query.t, string) result

val parse_exn : string -> Query.t
