(** Reference evaluator: implements query semantics directly from the
    definitions, with pairwise entry comparisons for the χ axes —
    O(|Q|·|D|²) worst case.

    This is the quadratic strawman of Section 3.2 and the oracle the
    linear evaluator is property-tested against. *)

open Bounds_model

(** Result as a sorted list of entry ids. *)
val eval : Instance.t -> Query.t -> Entry.id list

val is_empty : Instance.t -> Query.t -> bool
