(** LDAP-style scoped search.

    The paper's introduction describes the retrieval model of directory
    applications: entries matching a boolean filter, "the retrieval
    typically scoped to some subtree of the hierarchy".  This module is
    that operation: a base entry, one of the three LDAP scopes, and a
    filter.

    Subtree scoping costs O(size of the scoped subtree), not O(|D|): in
    the preorder ranking of {!Index} a subtree is the contiguous interval
    [[rank(base), extent(base)]]. *)

open Bounds_model

type scope =
  | Base  (** the base entry alone *)
  | One_level  (** the base entry's children *)
  | Subtree  (** the base entry and all its descendants *)

val scope_to_string : scope -> string
val scope_of_string : string -> (scope, string) result

(** [search ix ~base scope filter] — entry ids in document (preorder)
    order.  [base = None] searches the whole forest ([Base] then means
    the roots).  Raises [Not_found] if [base] names an absent entry. *)
val search :
  ?vindex:Vindex.t ->
  Index.t ->
  base:Entry.id option ->
  scope ->
  Filter.t ->
  Entry.id list

(** [count] without materializing the ids. *)
val count :
  ?vindex:Vindex.t ->
  Index.t ->
  base:Entry.id option ->
  scope ->
  Filter.t ->
  int
