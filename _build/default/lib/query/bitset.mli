(** Dense bit sets over entry ranks.

    Query evaluation represents intermediate results as bit sets indexed by
    the dense rank an {!Index} assigns to each entry; all boolean
    combinators are then word-parallel.  The API is persistent (operations
    return fresh sets) — evaluation never aliases intermediate results. *)

type t

(** [create n] is the empty set over universe [0..n-1]. *)
val create : int -> t

(** Universe size. *)
val length : t -> int

(** [full n] is the set containing all of [0..n-1]. *)
val full : int -> t

val mem : t -> int -> bool

(** [add s i] / [remove s i] are persistent single-bit updates. *)
val add : t -> int -> t

val remove : t -> int -> t

(** In-place variants, used by the linear tree sweeps. *)
val set : t -> int -> unit

val unset : t -> int -> unit
val copy : t -> t

(** Set algebra; arguments must share a universe size
    (raises [Invalid_argument] otherwise). *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

val is_empty : t -> bool
val cardinal : t -> int
val equal : t -> t -> bool
val subset : t -> t -> bool

(** [iter f s] applies [f] to members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t

(** First member, if any. *)
val choose : t -> int option

val pp : Format.formatter -> t -> unit
