open Bounds_model

module Iset = Set.Make (Int)

let related inst ax ei ej =
  match ax with
  | Query.Child -> Instance.parent inst ej = Some ei
  | Query.Parent -> Instance.parent inst ei = Some ej
  | Query.Descendant -> Instance.is_strict_ancestor inst ~anc:ei ~desc:ej
  | Query.Ancestor -> Instance.is_strict_ancestor inst ~anc:ej ~desc:ei

let rec eval_set inst q =
  match q with
  | Query.Select f ->
      Instance.fold
        (fun e acc -> if Filter.matches f e then Iset.add (Entry.id e) acc else acc)
        inst Iset.empty
  | Query.Minus (a, b) -> Iset.diff (eval_set inst a) (eval_set inst b)
  | Query.Union (a, b) -> Iset.union (eval_set inst a) (eval_set inst b)
  | Query.Inter (a, b) -> Iset.inter (eval_set inst a) (eval_set inst b)
  | Query.Chi (ax, a, b) ->
      let s1 = eval_set inst a and s2 = eval_set inst b in
      Iset.filter (fun ei -> Iset.exists (fun ej -> related inst ax ei ej) s2) s1

let eval inst q = Iset.elements (eval_set inst q)
let is_empty inst q = Iset.is_empty (eval_set inst q)
