(** Deterministic pseudo-random generators for instances, schemas and
    update operations — shared by the benchmark harness and the
    property-based tests. *)

open Bounds_model
open Bounds_core

(** [random_forest ~seed ~size ~max_fanout ~mk_entry ()] — a forest of
    [size] entries with ids [0..size-1]; each non-first entry attaches to
    a random earlier entry (or becomes a root with probability ~1/8).
    Fanout is capped at [max_fanout]. *)
val random_forest :
  seed:int ->
  size:int ->
  ?max_fanout:int ->
  mk_entry:(Random.State.t -> int -> Entry.t) ->
  unit ->
  Instance.t

(** An entry generator producing content-legal entries for a schema:
    a random core class's upward closure, a random allowed auxiliary
    class, and the required attributes of all of them (unique values for
    key attributes). *)
val content_legal_entry : Schema.t -> Random.State.t -> int -> Entry.t

(** A content-legal random forest for a schema (structure legality is
    {e not} guaranteed). *)
val content_legal_forest :
  seed:int -> size:int -> ?max_fanout:int -> Schema.t -> Instance.t

(** [random_class_tree ~seed ~n] — a core-class tree with [n] classes
    besides [top], named [c0..c(n-1)]. *)
val random_class_tree : seed:int -> n:int -> Class_schema.t

(** [random_schema ~seed ~n_classes ~n_req ~n_forb ~n_required_classes]
    — random class tree plus random structure elements over it.  Not
    necessarily consistent: that is the point (consistency tests and
    benches classify them). *)
val random_schema :
  seed:int ->
  n_classes:int ->
  n_req:int ->
  n_forb:int ->
  n_required_classes:int ->
  Schema.t

(** [random_ops ~seed ~n inst] — a valid operation sequence against
    [inst]: entry insertions under random existing entries (fresh ids)
    and deletions of current leaves, interleaved. *)
val random_ops : seed:int -> n:int -> Schema.t -> Instance.t -> Update.op list
