(** A university directory workload.

    Complements {!White_pages} (descendant-heavy) and {!Den}
    (parent-heavy) with a schema that leans on the {e ancestor} axis:
    students must sit somewhere under a university, lecturers under a
    faculty, at any depth — the relationships fixed-length path
    constraints cannot express (the paper's Section 6.3 point, here in
    the directory model itself). *)

open Bounds_model
open Bounds_core

val schema : Schema.t

(** [generate ~seed ~faculties ~departments_per_faculty
    ~courses_per_department ~students_per_course ()] — legal w.r.t.
    {!schema}; deterministic in [seed]. *)
val generate :
  ?seed:int ->
  faculties:int ->
  departments_per_faculty:int ->
  courses_per_department:int ->
  students_per_course:int ->
  unit ->
  Instance.t
