open Bounds_model
open Bounds_core

let c = Oclass.of_string
let a = Attr.of_string

let schema =
  let typing =
    match
      Typing.of_list
        [
          (a "o", Atype.T_string);
          (a "ou", Atype.T_string);
          (a "uid", Atype.T_string);
          (a "name", Atype.T_string);
          (a "uri", Atype.T_string);
          (a "location", Atype.T_string);
          (a "mail", Atype.T_string);
          (a "telephonenumber", Atype.T_telephone);
        ]
    with
    | Ok t -> t
    | Error m -> invalid_arg m
  in
  (* Figure 2 *)
  let classes =
    Class_schema.empty
    |> Class_schema.add_core_exn (c "orggroup") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "organization") ~parent:(c "orggroup")
    |> Class_schema.add_core_exn (c "orgunit") ~parent:(c "orggroup")
    |> Class_schema.add_core_exn (c "person") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "staffmember") ~parent:(c "person")
    |> Class_schema.add_core_exn (c "researcher") ~parent:(c "person")
    |> Class_schema.add_aux_exn (c "online")
    |> Class_schema.add_aux_exn (c "manager")
    |> Class_schema.add_aux_exn (c "secretary")
    |> Class_schema.add_aux_exn (c "consultant")
    |> Class_schema.add_aux_exn (c "facultymember")
    |> Class_schema.allow_aux_exn ~core:(c "orggroup") (c "online")
    |> Class_schema.allow_aux_exn ~core:(c "person") (c "online")
    |> Class_schema.allow_aux_exn ~core:(c "staffmember") (c "manager")
    |> Class_schema.allow_aux_exn ~core:(c "staffmember") (c "secretary")
    |> Class_schema.allow_aux_exn ~core:(c "staffmember") (c "consultant")
    |> Class_schema.allow_aux_exn ~core:(c "researcher") (c "manager")
    |> Class_schema.allow_aux_exn ~core:(c "researcher") (c "consultant")
    |> Class_schema.allow_aux_exn ~core:(c "researcher") (c "facultymember")
  in
  (* sketch following Definition 2.2 *)
  let attributes =
    Attribute_schema.empty
    |> Attribute_schema.add_class_exn (c "organization") ~required:[ a "o" ]
    |> Attribute_schema.add_class_exn (c "orgunit") ~required:[ a "ou" ]
         ~allowed:[ a "location" ]
    |> Attribute_schema.add_class_exn (c "person")
         ~required:[ a "name"; a "uid" ]
         ~allowed:[ a "telephonenumber" ]
    |> Attribute_schema.add_class_exn (c "online") ~allowed:[ a "uri"; a "mail" ]
  in
  (* Figure 3 *)
  let structure =
    Structure_schema.empty
    |> Structure_schema.require_class (c "organization")
    |> Structure_schema.require_class (c "orgunit")
    |> Structure_schema.require_class (c "person")
    |> Structure_schema.require (c "orggroup") Structure_schema.Descendant (c "person")
    |> Structure_schema.require (c "orgunit") Structure_schema.Parent (c "orggroup")
    |> Structure_schema.forbid (c "person") Structure_schema.F_child Oclass.top
  in
  Schema.make_exn ~typing ~attributes ~classes ~structure
    ~single_valued:[ a "uid"; a "o"; a "ou" ]
    ~keys:[ a "uid" ] ()

let entry ~id ~rdn ~classes pairs =
  Entry.make ~id ~rdn
    ~classes:(Oclass.set_of_list classes)
    (List.map (fun (n, v) -> (a n, Value.String v)) pairs)

let instance =
  let att =
    entry ~id:0 ~rdn:"o=att"
      ~classes:[ "organization"; "orggroup"; "online"; "top" ]
      [ ("o", "att"); ("uri", "http://www.att.com/") ]
  in
  let attlabs =
    entry ~id:1 ~rdn:"ou=attLabs"
      ~classes:[ "orgunit"; "orggroup"; "top" ]
      [ ("ou", "attLabs"); ("location", "FP") ]
  in
  let armstrong =
    entry ~id:2 ~rdn:"uid=armstrong"
      ~classes:[ "staffmember"; "person"; "top" ]
      [ ("uid", "armstrong"); ("name", "m armstrong") ]
  in
  let databases =
    entry ~id:3 ~rdn:"ou=databases"
      ~classes:[ "orgunit"; "orggroup"; "top" ]
      [ ("ou", "databases") ]
  in
  let laks =
    entry ~id:4 ~rdn:"uid=laks"
      ~classes:[ "researcher"; "facultymember"; "person"; "online"; "top" ]
      [
        ("uid", "laks");
        ("name", "laks lakshmanan");
        ("mail", "laks@cs.concordia.ca");
        ("mail", "laks@cse.iitb.ernet.in");
      ]
  in
  let suciu =
    entry ~id:5 ~rdn:"uid=suciu"
      ~classes:[ "researcher"; "person"; "top" ]
      [ ("uid", "suciu"); ("name", "dan suciu") ]
  in
  Instance.empty
  |> Instance.add_root_exn att
  |> Instance.add_child_exn ~parent:0 attlabs
  |> Instance.add_child_exn ~parent:0 armstrong
  |> Instance.add_child_exn ~parent:1 databases
  |> Instance.add_child_exn ~parent:3 laks
  |> Instance.add_child_exn ~parent:3 suciu

let person_entry ~id ~uid ~rng =
  let researcher = Random.State.bool rng in
  let online = Random.State.int rng 3 = 0 in
  let classes =
    [ "person"; "top" ]
    @ (if researcher then [ "researcher" ] else [ "staffmember" ])
    @ (if online then [ "online" ] else [])
    @
    if researcher && Random.State.int rng 4 = 0 then [ "facultymember" ] else []
  in
  let pairs =
    [ ("uid", uid); ("name", "name of " ^ uid) ]
    @ if online then [ ("mail", uid ^ "@example.com") ] else []
  in
  entry ~id ~rdn:("uid=" ^ uid) ~classes pairs

let generate ?(seed = 42) ~units ~persons_per_unit () =
  (* the schema requires at least one orgUnit to exist *)
  let units = max 1 units in
  let rng = Random.State.make [| seed |] in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let root_id = fresh () in
  let root =
    entry ~id:root_id ~rdn:"o=acme"
      ~classes:[ "organization"; "orggroup"; "top" ]
      [ ("o", "acme") ]
  in
  let inst = ref (Instance.add_root_exn root Instance.empty) in
  let unit_ids = ref [ ] in
  for u = 1 to units do
    (* attach to the organization or a random earlier unit *)
    let parent =
      match !unit_ids with
      | [] -> root_id
      | ids ->
          if Random.State.int rng 3 = 0 then root_id
          else List.nth ids (Random.State.int rng (List.length ids))
    in
    let id = fresh () in
    let e =
      entry ~id
        ~rdn:(Printf.sprintf "ou=unit%d" u)
        ~classes:[ "orgunit"; "orggroup"; "top" ]
        [ ("ou", Printf.sprintf "unit%d" u) ]
    in
    inst := Instance.add_child_exn ~parent e !inst;
    unit_ids := id :: !unit_ids;
    for p = 1 to persons_per_unit do
      let pid = fresh () in
      let uid = Printf.sprintf "u%dp%d" u p in
      ignore p;
      inst := Instance.add_child_exn ~parent:id (person_entry ~id:pid ~uid ~rng) !inst
    done
  done;
  (* every orgGroup needs a person descendant; the organization root needs
     one directly if there are no units *)
  if persons_per_unit = 0 then begin
    let pid = fresh () in
    inst :=
      Instance.add_child_exn ~parent:root_id
        (person_entry ~id:pid ~uid:(Printf.sprintf "root-p%d" pid) ~rng)
        !inst;
    (* ... and each empty unit as well *)
    List.iter
      (fun u ->
        let pid = fresh () in
        inst :=
          Instance.add_child_exn ~parent:u
            (person_entry ~id:pid ~uid:(Printf.sprintf "fill-p%d" pid) ~rng)
            !inst)
      !unit_ids
  end;
  !inst

let fresh_person inst ~seed =
  let rng = Random.State.make [| seed |] in
  let id = Instance.fresh_id inst in
  let uid = Printf.sprintf "fresh%d-%d" id seed in
  Instance.add_root_exn (person_entry ~id ~uid ~rng) Instance.empty
