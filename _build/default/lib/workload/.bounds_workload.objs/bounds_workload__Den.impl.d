lib/workload/den.ml: Attr Attribute_schema Atype Bounds_core Bounds_model Class_schema Entry Instance Oclass Printf Random Schema Structure_schema Typing Value
