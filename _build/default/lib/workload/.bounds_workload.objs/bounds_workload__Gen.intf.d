lib/workload/gen.mli: Bounds_core Bounds_model Class_schema Entry Instance Random Schema Update
