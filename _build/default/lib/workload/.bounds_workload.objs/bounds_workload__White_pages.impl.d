lib/workload/white_pages.ml: Attr Attribute_schema Atype Bounds_core Bounds_model Class_schema Entry Instance List Oclass Printf Random Schema Structure_schema Typing Value
