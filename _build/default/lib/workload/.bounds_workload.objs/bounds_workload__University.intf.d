lib/workload/university.mli: Bounds_core Bounds_model Instance Schema
