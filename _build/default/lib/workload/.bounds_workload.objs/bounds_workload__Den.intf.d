lib/workload/den.mli: Bounds_core Bounds_model Instance Schema
