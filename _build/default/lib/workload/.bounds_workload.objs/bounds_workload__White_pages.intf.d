lib/workload/white_pages.mli: Bounds_core Bounds_model Instance Schema
