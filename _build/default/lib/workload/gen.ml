open Bounds_model
open Bounds_core

let random_forest ~seed ~size ?(max_fanout = 8) ~mk_entry () =
  let rng = Random.State.make [| seed |] in
  let inst = ref Instance.empty in
  let eligible = ref [] in
  (* parents that can still accept children *)
  for id = 0 to size - 1 do
    let e = mk_entry rng id in
    let parent =
      if id = 0 || Random.State.int rng 8 = 0 || !eligible = [] then None
      else Some (List.nth !eligible (Random.State.int rng (List.length !eligible)))
    in
    (match Instance.add ~parent e !inst with
    | Ok i -> inst := i
    | Error err -> invalid_arg (Instance.error_to_string err));
    (match parent with
    | Some p when List.length (Instance.children !inst p) >= max_fanout ->
        eligible := List.filter (fun q -> q <> p) !eligible
    | _ -> ());
    eligible := id :: !eligible
  done;
  !inst

let pick rng = function
  | [] -> invalid_arg "pick: empty"
  | l -> List.nth l (Random.State.int rng (List.length l))

let key_counter = ref 0

let content_legal_entry (schema : Schema.t) rng id =
  let cores = Oclass.Set.elements (Class_schema.core_classes schema.classes) in
  let core = pick rng cores in
  let closure = Class_schema.up_closure schema.classes core in
  let allowed_aux =
    Oclass.Set.fold
      (fun c acc -> Oclass.Set.union acc (Class_schema.aux_of schema.classes c))
      closure Oclass.Set.empty
  in
  let classes =
    if (not (Oclass.Set.is_empty allowed_aux)) && Random.State.bool rng then
      Oclass.Set.add (pick rng (Oclass.Set.elements allowed_aux)) closure
    else closure
  in
  let required =
    Oclass.Set.fold
      (fun c acc -> Attr.Set.union acc (Attribute_schema.required schema.attributes c))
      classes Attr.Set.empty
  in
  let value_for attr =
    incr key_counter;
    let unique = Attr.Set.mem attr schema.keys in
    match Typing.find schema.typing attr with
    | Atype.T_int -> Value.Int (if unique then !key_counter else Random.State.int rng 100)
    | Atype.T_bool -> Value.Bool (Random.State.bool rng)
    | Atype.T_dn -> Value.Dn (Printf.sprintf "id=%d" (Random.State.int rng 100))
    | Atype.T_telephone -> Value.String (string_of_int (10000 + !key_counter))
    | Atype.T_string ->
        Value.String
          (if unique then Printf.sprintf "k%d" !key_counter
           else Printf.sprintf "v%d" (Random.State.int rng 50))
  in
  let pairs =
    Attr.Set.fold
      (fun attr acc ->
        if Attr.equal attr Attr.object_class then acc
        else (attr, value_for attr) :: acc)
      required []
  in
  Entry.make ~id ~rdn:(Printf.sprintf "id=%d" id) ~classes pairs

let content_legal_forest ~seed ~size ?max_fanout schema =
  random_forest ~seed ~size ?max_fanout
    ~mk_entry:(fun rng id -> content_legal_entry schema rng id)
    ()

let random_class_tree ~seed ~n =
  let rng = Random.State.make [| seed |] in
  let rec go i acc names =
    if i >= n then acc
    else
      let name = Oclass.of_string (Printf.sprintf "c%d" i) in
      let parent = pick rng names in
      match Class_schema.add_core name ~parent acc with
      | Ok acc -> go (i + 1) acc (name :: names)
      | Error m -> invalid_arg m
  in
  go 0 Class_schema.empty [ Oclass.top ]

let random_schema ~seed ~n_classes ~n_req ~n_forb ~n_required_classes =
  let rng = Random.State.make [| seed; 17 |] in
  let classes = random_class_tree ~seed ~n:n_classes in
  let names = Oclass.Set.elements (Class_schema.core_classes classes) in
  let rels =
    [
      Structure_schema.Child;
      Structure_schema.Descendant;
      Structure_schema.Parent;
      Structure_schema.Ancestor;
    ]
  in
  let structure = ref Structure_schema.empty in
  for _ = 1 to n_req do
    structure :=
      Structure_schema.require (pick rng names) (pick rng rels) (pick rng names)
        !structure
  done;
  for _ = 1 to n_forb do
    let f =
      if Random.State.bool rng then Structure_schema.F_child
      else Structure_schema.F_descendant
    in
    structure := Structure_schema.forbid (pick rng names) f (pick rng names) !structure
  done;
  for _ = 1 to n_required_classes do
    structure := Structure_schema.require_class (pick rng names) !structure
  done;
  Schema.make_exn ~classes ~structure:!structure ()

let random_ops ~seed ~n (schema : Schema.t) inst =
  let rng = Random.State.make [| seed; 23 |] in
  let cur = ref inst in
  let next = ref (Instance.fresh_id inst) in
  let ops = ref [] in
  for _ = 1 to n do
    let ids = Instance.ids !cur in
    let leaves = List.filter (Instance.is_leaf !cur) ids in
    let do_insert = leaves = [] || Random.State.int rng 3 > 0 in
    if do_insert then begin
      let id = !next in
      incr next;
      let e = content_legal_entry schema rng id in
      let parent =
        if ids = [] || Random.State.int rng 8 = 0 then None
        else Some (pick rng ids)
      in
      ops := Update.Insert { parent; entry = e } :: !ops;
      cur :=
        (match Instance.add ~parent e !cur with
        | Ok i -> i
        | Error err -> invalid_arg (Instance.error_to_string err))
    end
    else begin
      let victim = pick rng leaves in
      ops := Update.Delete victim :: !ops;
      cur :=
        (match Instance.remove_leaf victim !cur with
        | Ok i -> i
        | Error err -> invalid_arg (Instance.error_to_string err))
    end
  done;
  List.rev !ops
