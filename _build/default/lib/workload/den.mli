(** A directory-enabled-networks (DEN) style workload.

    The paper's introduction motivates bounding-schemas with
    network-resource and policy directories; this module provides a
    representative schema (sites containing managed devices containing
    interfaces; policy groups containing policies) and a legal-instance
    generator for benchmarks and examples. *)

open Bounds_model
open Bounds_core

val schema : Schema.t

(** [generate ~seed ~sites ~devices_per_site ~interfaces_per_device
    ~policies ()] — legal w.r.t. {!schema}; deterministic in [seed]. *)
val generate :
  ?seed:int ->
  sites:int ->
  devices_per_site:int ->
  interfaces_per_device:int ->
  policies:int ->
  unit ->
  Instance.t
