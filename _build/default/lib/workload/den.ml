open Bounds_model
open Bounds_core

let c = Oclass.of_string
let a = Attr.of_string

let schema =
  let typing =
    match
      Typing.of_list
        [
          (a "sitename", Atype.T_string);
          (a "devicename", Atype.T_string);
          (a "ifname", Atype.T_string);
          (a "speed", Atype.T_int);
          (a "policyname", Atype.T_string);
          (a "priority", Atype.T_int);
          (a "location", Atype.T_string);
          (a "managedby", Atype.T_dn);
        ]
    with
    | Ok t -> t
    | Error m -> invalid_arg m
  in
  let classes =
    Class_schema.empty
    |> Class_schema.add_core_exn (c "site") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "device") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "router") ~parent:(c "device")
    |> Class_schema.add_core_exn (c "switch") ~parent:(c "device")
    |> Class_schema.add_core_exn (c "interface") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "policygroup") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "policy") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "qospolicy") ~parent:(c "policy")
    |> Class_schema.add_core_exn (c "securitypolicy") ~parent:(c "policy")
    |> Class_schema.add_aux_exn (c "managed")
    |> Class_schema.allow_aux_exn ~core:(c "device") (c "managed")
  in
  let attributes =
    Attribute_schema.empty
    |> Attribute_schema.add_class_exn (c "site") ~required:[ a "sitename" ]
         ~allowed:[ a "location" ]
    |> Attribute_schema.add_class_exn (c "device") ~required:[ a "devicename" ]
         ~allowed:[ a "location" ]
    |> Attribute_schema.add_class_exn (c "interface") ~required:[ a "ifname" ]
         ~allowed:[ a "speed" ]
    |> Attribute_schema.add_class_exn (c "policy") ~required:[ a "policyname" ]
         ~allowed:[ a "priority" ]
    |> Attribute_schema.add_class_exn (c "managed") ~allowed:[ a "managedby" ]
  in
  let structure =
    Structure_schema.empty
    |> Structure_schema.require_class (c "site")
    |> Structure_schema.require_class (c "policygroup")
    |> Structure_schema.require (c "device") Structure_schema.Parent (c "site")
    |> Structure_schema.require (c "interface") Structure_schema.Parent (c "device")
    |> Structure_schema.require (c "router") Structure_schema.Descendant (c "interface")
    |> Structure_schema.require (c "policygroup") Structure_schema.Descendant (c "policy")
    |> Structure_schema.forbid (c "interface") Structure_schema.F_child Oclass.top
    |> Structure_schema.forbid (c "device") Structure_schema.F_descendant (c "policy")
    |> Structure_schema.forbid (c "policygroup") Structure_schema.F_descendant (c "device")
  in
  Schema.make_exn ~typing ~attributes ~classes ~structure
    ~single_valued:[ a "sitename"; a "devicename"; a "ifname"; a "policyname" ]
    ()

let entry ~id ~rdn ~classes pairs =
  Entry.make ~id ~rdn ~classes:(Oclass.set_of_list classes) pairs

let generate ?(seed = 7) ~sites ~devices_per_site ~interfaces_per_device ~policies
    () =
  let rng = Random.State.make [| seed |] in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let inst = ref Instance.empty in
  for s = 1 to max 1 sites do
    let sid = fresh () in
    let site =
      entry ~id:sid
        ~rdn:(Printf.sprintf "sitename=site%d" s)
        ~classes:[ "site"; "top" ]
        [ (a "sitename", Value.String (Printf.sprintf "site%d" s)) ]
    in
    inst := Instance.add_root_exn site !inst;
    for d = 1 to devices_per_site do
      let did = fresh () in
      let is_router = Random.State.bool rng in
      let dclasses =
        [ "device"; "top" ] @ [ (if is_router then "router" else "switch") ]
        @ if Random.State.bool rng then [ "managed" ] else []
      in
      let device =
        entry ~id:did
          ~rdn:(Printf.sprintf "devicename=dev%d-%d" s d)
          ~classes:dclasses
          [ (a "devicename", Value.String (Printf.sprintf "dev%d-%d" s d)) ]
      in
      inst := Instance.add_child_exn ~parent:sid device !inst;
      let n_if = if is_router then max 1 interfaces_per_device else interfaces_per_device in
      for i = 1 to n_if do
        let iid = fresh () in
        let iface =
          entry ~id:iid
            ~rdn:(Printf.sprintf "ifname=eth%d" i)
            ~classes:[ "interface"; "top" ]
            [
              (a "ifname", Value.String (Printf.sprintf "eth%d" i));
              (a "speed", Value.Int (100 * (1 + Random.State.int rng 100)));
            ]
        in
        inst := Instance.add_child_exn ~parent:did iface !inst
      done
    done
  done;
  let pgid = fresh () in
  let pg =
    entry ~id:pgid ~rdn:"cn=policies" ~classes:[ "policygroup"; "top" ] []
  in
  inst := Instance.add_root_exn pg !inst;
  for p = 1 to max 1 policies do
    let pid = fresh () in
    let kind = if Random.State.bool rng then "qospolicy" else "securitypolicy" in
    let pol =
      entry ~id:pid
        ~rdn:(Printf.sprintf "policyname=pol%d" p)
        ~classes:[ kind; "policy"; "top" ]
        [
          (a "policyname", Value.String (Printf.sprintf "pol%d" p));
          (a "priority", Value.Int (Random.State.int rng 10));
        ]
    in
    inst := Instance.add_child_exn ~parent:pgid pol !inst
  done;
  !inst
