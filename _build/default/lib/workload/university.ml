open Bounds_model
open Bounds_core

let c = Oclass.of_string
let a = Attr.of_string

let schema =
  let typing =
    match
      Typing.of_list
        [
          (a "uname", Atype.T_string);
          (a "fname", Atype.T_string);
          (a "dname", Atype.T_string);
          (a "code", Atype.T_string);
          (a "credits", Atype.T_int);
          (a "name", Atype.T_string);
          (a "sid", Atype.T_string);
          (a "office", Atype.T_string);
        ]
    with
    | Ok t -> t
    | Error m -> invalid_arg m
  in
  let classes =
    Class_schema.empty
    |> Class_schema.add_core_exn (c "university") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "faculty") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "department") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "course") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "person") ~parent:Oclass.top
    |> Class_schema.add_core_exn (c "student") ~parent:(c "person")
    |> Class_schema.add_core_exn (c "lecturer") ~parent:(c "person")
    |> Class_schema.add_aux_exn (c "exchange")
    |> Class_schema.allow_aux_exn ~core:(c "student") (c "exchange")
  in
  let attributes =
    Attribute_schema.empty
    |> Attribute_schema.add_class_exn (c "university") ~required:[ a "uname" ]
    |> Attribute_schema.add_class_exn (c "faculty") ~required:[ a "fname" ]
    |> Attribute_schema.add_class_exn (c "department") ~required:[ a "dname" ]
    |> Attribute_schema.add_class_exn (c "course") ~required:[ a "code" ]
         ~allowed:[ a "credits" ]
    |> Attribute_schema.add_class_exn (c "person") ~required:[ a "name" ]
    |> Attribute_schema.add_class_exn (c "student") ~required:[ a "sid" ]
    |> Attribute_schema.add_class_exn (c "lecturer") ~allowed:[ a "office" ]
  in
  let structure =
    Structure_schema.empty
    |> Structure_schema.require_class (c "university")
    |> Structure_schema.require_class (c "department")
    (* the downward axes: organizational containment *)
    |> Structure_schema.require (c "faculty") Structure_schema.Parent (c "university")
    |> Structure_schema.require (c "department") Structure_schema.Parent (c "faculty")
    |> Structure_schema.require (c "course") Structure_schema.Parent (c "department")
    |> Structure_schema.require (c "department") Structure_schema.Descendant (c "course")
    (* the ancestor axis: membership at arbitrary depth *)
    |> Structure_schema.require (c "student") Structure_schema.Ancestor (c "university")
    |> Structure_schema.require (c "lecturer") Structure_schema.Ancestor (c "faculty")
    (* upper bounds *)
    |> Structure_schema.forbid (c "course") Structure_schema.F_descendant (c "course")
    |> Structure_schema.forbid (c "university") Structure_schema.F_descendant
         (c "university")
    |> Structure_schema.forbid (c "student") Structure_schema.F_child Oclass.top
  in
  Schema.make_exn ~typing ~attributes ~classes ~structure
    ~single_valued:[ a "uname"; a "code"; a "sid" ]
    ~keys:[ a "sid" ] ()

let entry ~id ~rdn ~classes pairs =
  Entry.make ~id ~rdn ~classes:(Oclass.set_of_list classes) pairs

let generate ?(seed = 11) ~faculties ~departments_per_faculty
    ~courses_per_department ~students_per_course () =
  let rng = Random.State.make [| seed |] in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let uid = fresh () in
  let inst =
    ref
      (Instance.add_root_exn
         (entry ~id:uid ~rdn:"uname=u1" ~classes:[ "university"; "top" ]
            [ (a "uname", Value.String "u1") ])
         Instance.empty)
  in
  (* the schema requires a department (hence a faculty and a course) *)
  let faculties = max 1 faculties
  and departments_per_faculty = max 1 departments_per_faculty
  and courses_per_department = max 1 courses_per_department in
  for f = 1 to faculties do
    let fid = fresh () in
    inst :=
      Instance.add_child_exn ~parent:uid
        (entry ~id:fid
           ~rdn:(Printf.sprintf "fname=f%d" f)
           ~classes:[ "faculty"; "top" ]
           [ (a "fname", Value.String (Printf.sprintf "f%d" f)) ])
        !inst;
    (* some lecturers live directly under the faculty: their ancestor
       requirement is met at depth 1 *)
    if Random.State.bool rng then begin
      let lid = fresh () in
      inst :=
        Instance.add_child_exn ~parent:fid
          (entry ~id:lid
             ~rdn:(Printf.sprintf "name=dean%d" f)
             ~classes:[ "lecturer"; "person"; "top" ]
             [ (a "name", Value.String (Printf.sprintf "dean %d" f)) ])
          !inst
    end;
    for d = 1 to departments_per_faculty do
      let did = fresh () in
      inst :=
        Instance.add_child_exn ~parent:fid
          (entry ~id:did
             ~rdn:(Printf.sprintf "dname=f%dd%d" f d)
             ~classes:[ "department"; "top" ]
             [ (a "dname", Value.String (Printf.sprintf "f%dd%d" f d)) ])
          !inst;
      for k = 1 to courses_per_department do
        let cid = fresh () in
        inst :=
          Instance.add_child_exn ~parent:did
            (entry ~id:cid
               ~rdn:(Printf.sprintf "code=c%d" cid)
               ~classes:[ "course"; "top" ]
               [
                 (a "code", Value.String (Printf.sprintf "c%d" cid));
                 (a "credits", Value.Int (3 + Random.State.int rng 9));
               ])
            !inst;
        ignore k;
        (* students enrol under courses: their university ancestor is
           four levels up *)
        for s = 1 to students_per_course do
          let sid = fresh () in
          ignore s;
          inst :=
            Instance.add_child_exn ~parent:cid
              (entry ~id:sid
                 ~rdn:(Printf.sprintf "sid=s%d" sid)
                 ~classes:
                   ([ "student"; "person"; "top" ]
                   @ if Random.State.int rng 5 = 0 then [ "exchange" ] else [])
                 [
                   (a "sid", Value.String (Printf.sprintf "s%d" sid));
                   (a "name", Value.String (Printf.sprintf "student %d" sid));
                 ])
              !inst
        done
      done;
      (* a lecturer inside the department: ancestor faculty at depth 2 *)
      let lid = fresh () in
      inst :=
        Instance.add_child_exn ~parent:did
          (entry ~id:lid
             ~rdn:(Printf.sprintf "name=prof%d" lid)
             ~classes:[ "lecturer"; "person"; "top" ]
             [
               (a "name", Value.String (Printf.sprintf "prof %d" lid));
               (a "office", Value.String (Printf.sprintf "B-%d" (Random.State.int rng 400)));
             ])
          !inst
    done
  done;
  !inst
