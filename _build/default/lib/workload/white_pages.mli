(** The paper's running example: the corporate white-pages directory of
    Figures 1–3, plus a size-parameterised generator of legal white-pages
    instances for the benchmarks. *)

open Bounds_model
open Bounds_core

(** Typing, attribute schema (sketch after Definition 2.2), class schema
    (Figure 2) and structure schema (Figure 3). *)
val schema : Schema.t

(** The directory instance of Figure 1 (entry ids 0–5:
    att, attLabs, armstrong, databases, laks, suciu). *)
val instance : Instance.t

(** [generate ~seed ~units ~persons_per_unit ()] — a legal instance: one
    [organization] root, a random tree of [units] orgUnits beneath it, and
    [persons_per_unit] persons per unit (mix of researchers and staff,
    some online with mail).  [units] is clamped to at least 1 (the schema
    requires an orgUnit); a unit count of persons 0 still receives one
    filler person per unit so the descendant requirement holds.  Size ≈
    [1 + units · (1 + persons_per_unit)].  Deterministic in [seed]. *)
val generate : ?seed:int -> units:int -> persons_per_unit:int -> unit -> Instance.t

(** A fresh person subtree (a single entry) suitable for insertion under
    an orgUnit of [inst]; ids are fresh for [inst]. *)
val fresh_person : Instance.t -> seed:int -> Instance.t
