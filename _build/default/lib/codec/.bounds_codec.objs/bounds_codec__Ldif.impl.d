lib/codec/ldif.ml: Attr Bounds_model Buffer Char Entry Format Hashtbl Instance List Oclass Printf String Typing Value
