lib/codec/ldif.mli: Bounds_model Format Instance Typing
