(** Labelled trees — the semistructured data of Section 6.3.

    Each node carries a single label (think of it as the label of its
    incoming edge in an OEM-style graph); data is a forest of such
    trees. *)

type t = { label : string; children : t list }

(** [v label children] — validates the label (non-empty, class-name
    alphabet); raises [Invalid_argument] otherwise. *)
val v : string -> t list -> t

val leaf : string -> t

val size : t -> int
val depth : t -> int
val labels : t -> string list

(** S-expression syntax: [(country (corporation (corporation)))]. *)
val parse : string -> (t, string) result

val parse_forest : string -> (t list, string) result
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
