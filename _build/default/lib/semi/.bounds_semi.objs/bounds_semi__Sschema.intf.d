lib/semi/sschema.mli: Bounds_core Bounds_model Format Ltree Schema Structure_schema
