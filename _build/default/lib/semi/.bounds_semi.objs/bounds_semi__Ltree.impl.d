lib/semi/ltree.ml: Format List Printf String
