lib/semi/ltree.mli: Format
