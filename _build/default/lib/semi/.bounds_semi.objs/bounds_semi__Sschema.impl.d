lib/semi/sschema.ml: Bounds_core Bounds_model Class_schema Consistency Entry Format Inference Instance Legality List Ltree Oclass Printf Schema Set String Structure_schema Violation
