open Bounds_model
open Bounds_core

module Sset = Set.Make (String)

type t = {
  req_labels : Sset.t;
  reqs : (string * Structure_schema.rel * string) list;
  forbs : (string * Structure_schema.forb * string) list;
}

let empty = { req_labels = Sset.empty; reqs = []; forbs = [] }

let check_label l =
  if Oclass.of_string_opt l = None || String.lowercase_ascii l = "top" then
    invalid_arg (Printf.sprintf "invalid semistructured label %S" l)

let require_label l t =
  check_label l;
  { t with req_labels = Sset.add l t.req_labels }

let require l1 r l2 t =
  check_label l1;
  check_label l2;
  if List.mem (l1, r, l2) t.reqs then t else { t with reqs = t.reqs @ [ (l1, r, l2) ] }

let forbid l1 f l2 t =
  check_label l1;
  check_label l2;
  if List.mem (l1, f, l2) t.forbs then t
  else { t with forbs = t.forbs @ [ (l1, f, l2) ] }

let required_labels t = Sset.elements t.req_labels
let required_rels t = t.reqs
let forbidden_rels t = t.forbs

let labels t =
  let s = t.req_labels in
  let s = List.fold_left (fun s (a, _, b) -> Sset.add a (Sset.add b s)) s t.reqs in
  let s = List.fold_left (fun s (a, _, b) -> Sset.add a (Sset.add b s)) s t.forbs in
  Sset.elements s

let pp ppf t =
  List.iter (fun l -> Format.fprintf ppf "require exists %s@." l) (required_labels t);
  List.iter
    (fun (a, r, b) ->
      Format.fprintf ppf "require %s %s %s@." a (Structure_schema.rel_to_string r) b)
    t.reqs;
  List.iter
    (fun (a, f, b) ->
      Format.fprintf ppf "forbid %s %s %s@." a (Structure_schema.forb_to_string f) b)
    t.forbs

let to_string t = Format.asprintf "%a" pp t

let parse src =
  let err line fmt =
    Format.kasprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt
  in
  let rec go t line = function
    | [] -> Ok t
    | raw :: rest -> (
        let stmt =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        match
          String.split_on_char ' ' stmt
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        with
        | [] -> go t (line + 1) rest
        | [ "require"; "exists"; l ] -> (
            match (try Ok (require_label l t) with Invalid_argument m -> Error m) with
            | Ok t -> go t (line + 1) rest
            | Error m -> err line "%s" m)
        | [ "require"; l1; rel; l2 ] -> (
            match Structure_schema.rel_of_string rel with
            | Error m -> err line "%s" m
            | Ok rel -> (
                match (try Ok (require l1 rel l2 t) with Invalid_argument m -> Error m) with
                | Ok t -> go t (line + 1) rest
                | Error m -> err line "%s" m))
        | [ "forbid"; l1; rel; l2 ] -> (
            match Structure_schema.forb_of_string rel with
            | Error m -> err line "%s" m
            | Ok rel -> (
                match (try Ok (forbid l1 rel l2 t) with Invalid_argument m -> Error m) with
                | Ok t -> go t (line + 1) rest
                | Error m -> err line "%s" m))
        | w :: _ -> err line "cannot parse statement starting with %S" w)
  in
  go empty 1
    (String.split_on_char '\n' src |> List.concat_map (String.split_on_char ';'))

let parse_exn src =
  match parse src with Ok t -> t | Error m -> failwith m

(* --- the embedding ----------------------------------------------------- *)

let to_schema t =
  let classes =
    List.fold_left
      (fun cs l -> Class_schema.add_core_exn (Oclass.of_string l) ~parent:Oclass.top cs)
      Class_schema.empty (labels t)
  in
  let structure =
    Structure_schema.empty
    |> fun s ->
    Sset.fold
      (fun l s -> Structure_schema.require_class (Oclass.of_string l) s)
      t.req_labels s
    |> fun s ->
    List.fold_left
      (fun s (a, r, b) ->
        Structure_schema.require (Oclass.of_string a) r (Oclass.of_string b) s)
      s t.reqs
    |> fun s ->
    List.fold_left
      (fun s (a, f, b) ->
        Structure_schema.forbid (Oclass.of_string a) f (Oclass.of_string b) s)
      s t.forbs
  in
  Schema.make_exn ~classes ~structure ()

(* Labels outside the schema are embedded too: each node's class set is
   {top, its label}; unknown labels would fail the class-schema check, so
   the embedding schema for a checking run is extended with the data's
   labels. *)
let schema_for t forest =
  let data_labels =
    List.concat_map Ltree.labels forest |> Sset.of_list |> Sset.elements
  in
  (* witnesses may contain "top" placeholder nodes; [top] is always
     declared *)
  let all =
    Sset.elements (Sset.union (Sset.of_list data_labels) (Sset.of_list (labels t)))
    |> List.filter (fun l -> String.lowercase_ascii l <> "top")
  in
  let classes =
    List.fold_left
      (fun cs l -> Class_schema.add_core_exn (Oclass.of_string l) ~parent:Oclass.top cs)
      Class_schema.empty all
  in
  let base = to_schema t in
  Schema.make_exn ~classes ~structure:base.Schema.structure ()

let embed_forest forest =
  let next = ref 0 in
  let entry label =
    let id = !next in
    incr next;
    Entry.make ~id ~rdn:(Printf.sprintf "n%d=%s" id label)
      ~classes:(Oclass.Set.of_list [ Oclass.top; Oclass.of_string label ])
      []
  in
  let rec add parent (node : Ltree.t) inst =
    let e = entry node.Ltree.label in
    let inst =
      match Instance.add ~parent e inst with
      | Ok inst -> inst
      | Error err -> invalid_arg (Instance.error_to_string err)
    in
    List.fold_left (fun inst c -> add (Some (Entry.id e)) c inst) inst node.Ltree.children
  in
  List.fold_left (fun inst tr -> add None tr inst) Instance.empty forest

let of_instance inst =
  let label_of id =
    let classes = Entry.classes (Instance.entry inst id) in
    match
      Oclass.Set.elements (Oclass.Set.remove Oclass.top classes)
    with
    | [ c ] -> Oclass.to_string c
    | [] -> "top"
    | c :: _ -> Oclass.to_string c
  in
  let rec build id =
    (* bypass label validation: placeholder nodes are labelled "top" *)
    { Ltree.label = label_of id; Ltree.children = List.map build (Instance.children inst id) }
  in
  List.map build (Instance.roots inst)

let check t forest =
  let schema = schema_for t forest in
  let inst = embed_forest forest in
  List.map Violation.to_string (Legality.check schema inst)

let is_legal t forest = check t forest = []

let is_consistent t = Consistency.is_consistent (to_schema t)

let witness t =
  match Consistency.decide (to_schema t) with
  | Consistency.Consistent { witness; _ } -> Ok (of_instance witness)
  | Consistency.Inconsistent { proof; _ } ->
      Error (Format.asprintf "inconsistent:@ %a" Inference.pp_proof proof)
  | Consistency.Unresolved { reason; _ } -> Error reason
