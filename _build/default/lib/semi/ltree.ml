type t = { label : string; children : t list }

let valid_label s =
  s <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s

let v label children =
  if not (valid_label label) then
    invalid_arg (Printf.sprintf "Ltree.v: invalid label %S" label);
  { label; children }

let leaf label = v label []

let rec size t = 1 + List.fold_left (fun n c -> n + size c) 0 t.children

let rec depth t =
  1 + List.fold_left (fun d c -> max d (depth c)) 0 t.children

let rec labels t = t.label :: List.concat_map labels t.children

let rec to_string t =
  match t.children with
  | [] -> Printf.sprintf "(%s)" t.label
  | cs ->
      Printf.sprintf "(%s %s)" t.label (String.concat " " (List.map to_string cs))

let pp ppf t = Format.pp_print_string ppf (to_string t)

let rec equal t1 t2 =
  String.equal t1.label t2.label && List.equal equal t1.children t2.children

exception Parse of string

type state = { src : string; mutable pos : int }

let perr st fmt =
  Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "at offset %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let rec parse_tree st =
  skip_ws st;
  (match peek st with Some '(' -> st.pos <- st.pos + 1 | _ -> perr st "expected '('");
  skip_ws st;
  let start = st.pos in
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
    | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then perr st "expected a label";
  let label = String.sub st.src start (st.pos - start) in
  let rec kids acc =
    skip_ws st;
    match peek st with
    | Some ')' ->
        st.pos <- st.pos + 1;
        List.rev acc
    | Some '(' -> kids (parse_tree st :: acc)
    | _ -> perr st "expected '(' or ')'"
  in
  { label; children = kids [] }

let parse s =
  let st = { src = s; pos = 0 } in
  try
    let t = parse_tree st in
    skip_ws st;
    if st.pos <> String.length s then Error "trailing input" else Ok t
  with Parse m -> Error m

let parse_forest s =
  let st = { src = s; pos = 0 } in
  try
    let rec go acc =
      skip_ws st;
      if st.pos = String.length s then List.rev acc else go (parse_tree st :: acc)
    in
    Ok (go [])
  with Parse m -> Error m
