(** Bounding-schemas for semistructured data (Section 6.3).

    The same lower/upper-bound vocabulary over node labels: required
    labels, required structural relationships (including the
    arbitrary-path-length [descendant]/[ancestor] forms that fixed-length
    path constraints cannot express — the paper's motivating
    observation), and forbidden relationships (e.g. "no [country] below
    another [country]"). *)

open Bounds_core

type t

val empty : t
val require_label : string -> t -> t
val require : string -> Structure_schema.rel -> string -> t -> t
val forbid : string -> Structure_schema.forb -> string -> t -> t

val required_labels : t -> string list
val required_rels : t -> (string * Structure_schema.rel * string) list
val forbidden_rels : t -> (string * Structure_schema.forb * string) list

(** Every label mentioned. *)
val labels : t -> string list

val pp : Format.formatter -> t -> unit

(** {1 Decision procedures — inherited from the directory model}

    Data and schema embed into the directory model (each label becomes a
    core class directly under [top]; each node an entry of that single
    class), and the three algorithms of the paper apply unchanged. *)

(** Human-readable violations. *)
val check : t -> Ltree.t list -> string list

val is_legal : t -> Ltree.t list -> bool
val is_consistent : t -> bool

(** A legal forest witnessing consistency. *)
val witness : t -> (Ltree.t list, string) result

(** {1 Textual syntax}

    {v
    require exists <label>
    require <label> (child|descendant|parent|ancestor) <label>
    forbid  <label> (child|descendant) <label>
    v}
    with [#] comments; newlines/semicolons separate statements. *)

val to_string : t -> string

val parse : string -> (t, string) result
val parse_exn : string -> t

(** The underlying embedding, for interop and tests. *)
val to_schema : t -> Schema.t

val embed_forest : Ltree.t list -> Bounds_model.Instance.t
val of_instance : Bounds_model.Instance.t -> Ltree.t list
