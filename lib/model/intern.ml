type pool = {
  pool_label : string;
  lock : Mutex.t;
  ids : (string, int) Hashtbl.t;
  mutable strings : string array;  (* id -> canonical string; grows by doubling *)
  mutable next : int;
  mutable hits : int;
  mutable saved : int;
}

let make_pool label =
  {
    pool_label = label;
    lock = Mutex.create ();
    ids = Hashtbl.create 256;
    strings = Array.make 64 "";
    next = 0;
    hits = 0;
    saved = 0;
  }

let attr = make_pool "attr"
let oclass = make_pool "oclass"
let rdn = make_pool "rdn"
let value = make_pool "value"
let vkey = make_pool "vkey"
let pools = [ attr; oclass; rdn; value; vkey ]
let enabled = ref true

(* Heap footprint of a string block: one header word plus the bytes
   rounded up to a word with at least one padding byte (the OCaml
   string representation). *)
let heap_bytes s = 8 + ((String.length s / 8) + 1) * 8

let locked p f =
  Mutex.lock p.lock;
  match f () with
  | v ->
      Mutex.unlock p.lock;
      v
  | exception e ->
      Mutex.unlock p.lock;
      raise e

(* Called with the lock held. *)
let intern_locked p s =
  match Hashtbl.find_opt p.ids s with
  | Some i ->
      p.hits <- p.hits + 1;
      p.saved <- p.saved + heap_bytes s;
      i
  | None ->
      let i = p.next in
      if i = Array.length p.strings then begin
        let bigger = Array.make (2 * i) "" in
        Array.blit p.strings 0 bigger 0 i;
        p.strings <- bigger
      end;
      p.strings.(i) <- s;
      Hashtbl.add p.ids s i;
      p.next <- i + 1;
      i

let id p s = locked p (fun () -> intern_locked p s)

let share p s =
  if not !enabled then s
  else locked p (fun () -> p.strings.(intern_locked p s))

let find_id p s = locked p (fun () -> Hashtbl.find_opt p.ids s)

let get p i =
  locked p (fun () ->
      if i < 0 || i >= p.next then
        invalid_arg
          (Printf.sprintf "Intern.get: id %d out of range for pool %s (size %d)"
             i p.pool_label p.next);
      p.strings.(i))

let size p = locked p (fun () -> p.next)

let with_disabled f =
  let prev = !enabled in
  enabled := false;
  Fun.protect ~finally:(fun () -> enabled := prev) f

type stat = {
  pool_name : string;
  distinct : int;
  hits : int;
  saved_bytes : int;
}

let stats () =
  List.map
    (fun p ->
      locked p (fun () ->
          {
            pool_name = p.pool_label;
            distinct = p.next;
            hits = p.hits;
            saved_bytes = p.saved;
          }))
    pools

let pp_stats ppf sts =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@ ";
      Format.fprintf ppf "%-7s distinct=%-8d hits=%-10d saved=%d B" s.pool_name
        s.distinct s.hits s.saved_bytes)
    sts;
  Format.fprintf ppf "@]"
