type id = int

type t = {
  id : id;
  rdn : string;
  classes : Oclass.Set.t;
  attrs : Value.t list Attr.Map.t; (* sorted, deduplicated; no objectClass *)
}

let sort_dedup vs = List.sort_uniq Value.compare vs

let check_not_object_class a =
  if Attr.equal a Attr.object_class then
    invalid_arg "Entry: the objectClass attribute is derived from the class set"

let make ~id ?rdn ~classes pairs =
  if Oclass.Set.is_empty classes then
    invalid_arg "Entry.make: an entry must belong to at least one object class";
  let rdn =
    match rdn with
    | Some r -> Intern.share Intern.rdn r
    | None -> Printf.sprintf "id=%d" id
  in
  let attrs =
    List.fold_left
      (fun m (a, v) ->
        check_not_object_class a;
        let vs = match Attr.Map.find_opt a m with Some vs -> vs | None -> [] in
        Attr.Map.add a (Value.intern v :: vs) m)
      Attr.Map.empty pairs
  in
  let attrs = Attr.Map.map sort_dedup attrs in
  { id; rdn; classes; attrs }

let id e = e.id
let rdn e = e.rdn
let classes e = e.classes
let has_class e c = Oclass.Set.mem c e.classes
let n_classes e = Oclass.Set.cardinal e.classes

let object_class_values e =
  List.map (fun c -> Value.String (Oclass.to_string c)) (Oclass.Set.elements e.classes)

let values e a =
  if Attr.equal a Attr.object_class then object_class_values e
  else match Attr.Map.find_opt a e.attrs with Some vs -> vs | None -> []

let has_attr e a =
  if Attr.equal a Attr.object_class then true else Attr.Map.mem a e.attrs

let has_pair e a v = List.exists (Value.equal v) (values e a)

let stored_pairs e =
  Attr.Map.fold (fun a vs acc -> List.map (fun v -> (a, v)) vs @ acc) e.attrs []
  |> List.rev

let pairs e =
  List.map (fun v -> (Attr.object_class, v)) (object_class_values e)
  @ stored_pairs e

let attributes e =
  Attr.Map.fold (fun a _ s -> Attr.Set.add a s) e.attrs
    (Attr.Set.singleton Attr.object_class)

let n_pairs e =
  Oclass.Set.cardinal e.classes
  + Attr.Map.fold (fun _ vs n -> n + List.length vs) e.attrs 0

let add_value a v e =
  check_not_object_class a;
  let vs = match Attr.Map.find_opt a e.attrs with Some vs -> vs | None -> [] in
  { e with attrs = Attr.Map.add a (sort_dedup (Value.intern v :: vs)) e.attrs }

let remove_value a v e =
  check_not_object_class a;
  match Attr.Map.find_opt a e.attrs with
  | None -> e
  | Some vs -> (
      match List.filter (fun v' -> not (Value.equal v v')) vs with
      | [] -> { e with attrs = Attr.Map.remove a e.attrs }
      | vs' -> { e with attrs = Attr.Map.add a vs' e.attrs })

let remove_attr a e =
  check_not_object_class a;
  { e with attrs = Attr.Map.remove a e.attrs }

let with_classes classes e =
  if Oclass.Set.is_empty classes then
    invalid_arg "Entry.with_classes: empty class set";
  { e with classes }

let add_class c e = { e with classes = Oclass.Set.add c e.classes }
let with_id id e = { e with id }
let with_rdn rdn e = { e with rdn = Intern.share Intern.rdn rdn }

let equal e1 e2 =
  e1.id = e2.id && String.equal e1.rdn e2.rdn
  && Oclass.Set.equal e1.classes e2.classes
  && Attr.Map.equal (List.equal Value.equal) e1.attrs e2.attrs

let pp ppf e =
  Format.fprintf ppf "@[<v 2>entry #%d (%s)@ classes: %a@ %a@]" e.id e.rdn
    Oclass.pp_set e.classes
    (Format.pp_print_list (fun ppf (a, v) ->
         Format.fprintf ppf "%a: %a" Attr.pp a Value.pp v))
    (stored_pairs e)
