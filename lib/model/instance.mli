(** Directory instances: a forest of entries (Definition 2.1).

    The structure is persistent: updated instances share structure with
    their originals.  This is load-bearing for Section 4 of the paper,
    where incremental legality tests evaluate different sub-expressions of
    one query against [D], [Δ], and [D ± Δ] simultaneously.

    Mutations obey the LDAP update discipline (Section 4.1): new entries
    are roots or children of existing entries; only leaves can be removed
    one entry at a time (subtree removal is provided as the transaction
    abstraction's bulk primitive). *)

type t

type error =
  | Duplicate_id of Entry.id
  | No_such_entry of Entry.id
  | Not_a_leaf of Entry.id
  | Id_clash of Entry.id  (** graft would collide with an existing id *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val empty : t
val size : t -> int
val is_empty : t -> bool
val mem : t -> Entry.id -> bool

(** [entry t id] raises [Not_found] if absent. *)
val entry : t -> Entry.id -> Entry.t

val find : t -> Entry.id -> Entry.t option
val parent : t -> Entry.id -> Entry.id option

(** Children in insertion order. *)
val children : t -> Entry.id -> Entry.id list

(** Children in stored order — most recently added first, i.e. the reverse
    of {!children} — returned without copying.  Hot traversals
    ({!Bounds_query.Index.create}) consume this directly instead of paying
    a [List.rev] allocation per node. *)
val rev_children : t -> Entry.id -> Entry.id list

(** Roots in insertion order. *)
val roots : t -> Entry.id list

(** Roots in stored order (reverse of {!roots}), without copying. *)
val rev_roots : t -> Entry.id list

val is_leaf : t -> Entry.id -> bool
val is_root : t -> Entry.id -> bool

(** {1 Construction} *)

val add_root : Entry.t -> t -> (t, error) result

val add_child : parent:Entry.id -> Entry.t -> t -> (t, error) result

(** [add ~parent e t]: root insertion when [parent = None]. *)
val add : parent:Entry.id option -> Entry.t -> t -> (t, error) result

(** Raising variants for test and example convenience. *)
val add_root_exn : Entry.t -> t -> t

val add_child_exn : parent:Entry.id -> Entry.t -> t -> t

val remove_leaf : Entry.id -> t -> (t, error) result

(** [remove_subtree id t] removes [id] and all its descendants. *)
val remove_subtree : Entry.id -> t -> (t, error) result

(** [subtree t id] extracts the subtree rooted at [id] as a standalone
    instance (entry ids preserved). *)
val subtree : t -> Entry.id -> (t, error) result

(** [graft ~parent sub t] inserts all of [sub] (a forest) under [parent]
    (roots of [sub] become children of [parent], or roots of [t]).
    Fails with [Id_clash] if any id of [sub] is already present. *)
val graft : parent:Entry.id option -> t -> t -> (t, error) result

(** [update_entry id f t] replaces the payload of node [id] by [f e]; the
    id must be unchanged by [f] (enforced). *)
val update_entry : Entry.id -> (Entry.t -> Entry.t) -> t -> (t, error) result

(** {1 Traversal} *)

val fold : (Entry.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Entry.t -> unit) -> t -> unit

(** Depth-first preorder over the whole forest; [depth] is 0 at roots. *)
val iter_preorder : (depth:int -> Entry.t -> unit) -> t -> unit

val ids : t -> Entry.id list
val entries : t -> Entry.t list

(** Descendant ids of [id] in preorder, excluding [id] itself. *)
val descendants : t -> Entry.id -> Entry.id list

(** Ancestor ids of [id], nearest first, excluding [id]. *)
val ancestors : t -> Entry.id -> Entry.id list

(** [is_strict_ancestor t ~anc ~desc]: walks up from [desc]. *)
val is_strict_ancestor : t -> anc:Entry.id -> desc:Entry.id -> bool

val depth : t -> Entry.id -> int

(** Largest id present, [-1] when empty; [fresh_id t] is one past it. *)
val max_id : t -> int

val fresh_id : t -> Entry.id

(** Distinguished name: rdns from the entry up to its root, joined with
    commas (leaf first), e.g. ["uid=laks,ou=databases,o=att"]. *)
val dn : t -> Entry.id -> string

(** [resolve_dn t dn] finds the entry whose root-path of rdns matches
    [dn] (rdn comparison is case- and whitespace-insensitive). *)
val resolve_dn : t -> string -> Entry.id option

(** Structural equality: same forest shape (parent relation) and equal
    entries.  Sibling order is ignored, matching the paper's model where
    [N] is an unordered parent/child relation. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
