type t = String of string | Int of int | Bool of bool | Dn of string

let equal a b =
  match (a, b) with
  | String x, String y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Dn x, Dn y -> String.equal x y
  | (String _ | Int _ | Bool _ | Dn _), _ -> false

let tag = function String _ -> 0 | Int _ -> 1 | Bool _ -> 2 | Dn _ -> 3

let compare a b =
  match (a, b) with
  | String x, String y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Dn x, Dn y -> String.compare x y
  | _ -> Int.compare (tag a) (tag b)

let hash = Hashtbl.hash

(* Hash-cons the string payloads (Int/Bool are immediate already). *)
let intern = function
  | String s -> String (Intern.share Intern.value s)
  | Dn d -> Dn (Intern.share Intern.value d)
  | (Int _ | Bool _) as v -> v

let telephone_char = function
  | '0' .. '9' | ' ' | '+' | '(' | ')' | '-' | '.' -> true
  | _ -> false

let has_type ty v =
  match (ty, v) with
  | Atype.T_string, String _ -> true
  | Atype.T_int, Int _ -> true
  | Atype.T_bool, Bool _ -> true
  | Atype.T_dn, Dn _ -> true
  | Atype.T_telephone, String s -> s <> "" && String.for_all telephone_char s
  | _ -> false

let parse ty raw =
  match ty with
  | Atype.T_string -> Ok (String raw)
  | Atype.T_dn -> Ok (Dn raw)
  | Atype.T_int -> (
      match int_of_string_opt (String.trim raw) with
      | Some n -> Ok (Int n)
      | None -> Error (Printf.sprintf "not an integer: %S" raw))
  | Atype.T_bool -> (
      match String.uppercase_ascii (String.trim raw) with
      | "TRUE" -> Ok (Bool true)
      | "FALSE" -> Ok (Bool false)
      | _ -> Error (Printf.sprintf "not a boolean (TRUE/FALSE): %S" raw))
  | Atype.T_telephone ->
      let v = String (String.trim raw) in
      if has_type Atype.T_telephone v then Ok v
      else Error (Printf.sprintf "not a telephone number: %S" raw)

let to_string = function
  | String s -> s
  | Int n -> string_of_int n
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Dn d -> d

let pp ppf v = Format.pp_print_string ppf (to_string v)
let s x = String x
let i x = Int x
let b x = Bool x
