module Imap = Map.Make (Int)

type node = {
  entry : Entry.t;
  parent : Entry.id option;
  rev_children : Entry.id list; (* most recently added first *)
}

type t = {
  nodes : node Imap.t;
  rev_roots : Entry.id list;
  size : int;
  max_id : int;
}

type error =
  | Duplicate_id of Entry.id
  | No_such_entry of Entry.id
  | Not_a_leaf of Entry.id
  | Id_clash of Entry.id

let error_to_string = function
  | Duplicate_id id -> Printf.sprintf "duplicate entry id %d" id
  | No_such_entry id -> Printf.sprintf "no such entry: %d" id
  | Not_a_leaf id -> Printf.sprintf "entry %d is not a leaf" id
  | Id_clash id -> Printf.sprintf "grafted subtree reuses existing id %d" id

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let empty = { nodes = Imap.empty; rev_roots = []; size = 0; max_id = -1 }
let size t = t.size
let is_empty t = t.size = 0
let mem t id = Imap.mem id t.nodes

let node t id =
  match Imap.find_opt id t.nodes with
  | Some n -> Ok n
  | None -> Error (No_such_entry id)

let entry t id =
  match Imap.find_opt id t.nodes with
  | Some n -> n.entry
  | None -> raise Not_found

let find t id = Option.map (fun n -> n.entry) (Imap.find_opt id t.nodes)

let parent t id =
  match Imap.find_opt id t.nodes with Some n -> n.parent | None -> None

let children t id =
  match Imap.find_opt id t.nodes with
  | Some n -> List.rev n.rev_children
  | None -> []

let rev_children t id =
  match Imap.find_opt id t.nodes with Some n -> n.rev_children | None -> []

let roots t = List.rev t.rev_roots
let rev_roots t = t.rev_roots
let is_leaf t id = children t id = []
let is_root t id = parent t id = None && mem t id

let ( let* ) = Result.bind

let add ~parent:p e t =
  let id = Entry.id e in
  if Imap.mem id t.nodes then Error (Duplicate_id id)
  else
    match p with
    | None ->
        Ok
          {
            nodes = Imap.add id { entry = e; parent = None; rev_children = [] } t.nodes;
            rev_roots = id :: t.rev_roots;
            size = t.size + 1;
            max_id = max t.max_id id;
          }
    | Some pid ->
        let* pn = node t pid in
        let nodes =
          t.nodes
          |> Imap.add pid { pn with rev_children = id :: pn.rev_children }
          |> Imap.add id { entry = e; parent = Some pid; rev_children = [] }
        in
        Ok { t with nodes; size = t.size + 1; max_id = max t.max_id id }

let add_root e t = add ~parent:None e t
let add_child ~parent e t = add ~parent:(Some parent) e t

let add_root_exn e t =
  match add_root e t with
  | Ok t -> t
  | Error err -> invalid_arg (error_to_string err)

let add_child_exn ~parent e t =
  match add_child ~parent e t with
  | Ok t -> t
  | Error err -> invalid_arg (error_to_string err)

let detach_from_parent id pid t =
  match Imap.find_opt pid t.nodes with
  | None -> t
  | Some pn ->
      let rev_children = List.filter (fun c -> c <> id) pn.rev_children in
      { t with nodes = Imap.add pid { pn with rev_children } t.nodes }

let remove_leaf id t =
  let* n = node t id in
  if n.rev_children <> [] then Error (Not_a_leaf id)
  else
    let t =
      match n.parent with
      | Some pid -> detach_from_parent id pid t
      | None -> { t with rev_roots = List.filter (fun r -> r <> id) t.rev_roots }
    in
    Ok { t with nodes = Imap.remove id t.nodes; size = t.size - 1 }

let rec preorder_ids t id acc =
  (* accumulates in reverse preorder *)
  List.fold_left (fun acc c -> preorder_ids t c acc) (id :: acc) (children t id)

let subtree_ids t id = List.rev (preorder_ids t id [])

let remove_subtree id t =
  let* _ = node t id in
  let victims = subtree_ids t id in
  let t =
    match parent t id with
    | Some pid -> detach_from_parent id pid t
    | None -> { t with rev_roots = List.filter (fun r -> r <> id) t.rev_roots }
  in
  let nodes = List.fold_left (fun m v -> Imap.remove v m) t.nodes victims in
  Ok { t with nodes; size = t.size - List.length victims }

let subtree t id =
  let* root = node t id in
  let rec copy src_id dst_parent acc =
    match add ~parent:dst_parent (entry t src_id) acc with
    | Error _ -> assert false (* ids unique in source *)
    | Ok acc ->
        List.fold_left (fun acc c -> copy c (Some src_id) acc) acc (children t src_id)
  in
  ignore root;
  Ok (copy id None empty)

let graft ~parent:pid sub t =
  let clash =
    Imap.fold
      (fun id _ acc -> match acc with Some _ -> acc | None -> if mem t id then Some id else None)
      sub.nodes None
  in
  match clash with
  | Some id -> Error (Id_clash id)
  | None -> (
      let* () = match pid with
        | None -> Ok ()
        | Some p -> let* _ = node t p in Ok ()
      in
      let rec copy src_id dst_parent acc =
        match add ~parent:dst_parent (entry sub src_id) acc with
        | Error e -> Error e
        | Ok acc ->
            List.fold_left
              (fun acc c ->
                match acc with Error _ -> acc | Ok acc -> copy c (Some src_id) acc)
              (Ok acc) (children sub src_id)
      in
      List.fold_left
        (fun acc r -> match acc with Error _ -> acc | Ok acc -> copy r pid acc)
        (Ok t) (roots sub))

let update_entry id f t =
  let* n = node t id in
  let e' = f n.entry in
  if Entry.id e' <> id then
    invalid_arg "Instance.update_entry: the update must preserve the entry id";
  Ok { t with nodes = Imap.add id { n with entry = e' } t.nodes }

let fold f t init = Imap.fold (fun _ n acc -> f n.entry acc) t.nodes init
let iter f t = Imap.iter (fun _ n -> f n.entry) t.nodes

let iter_preorder f t =
  let rec go depth id =
    f ~depth (entry t id);
    List.iter (go (depth + 1)) (children t id)
  in
  List.iter (go 0) (roots t)

let ids t = Imap.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.rev
let entries t = Imap.fold (fun _ n acc -> n.entry :: acc) t.nodes [] |> List.rev

let descendants t id =
  List.concat_map (fun c -> subtree_ids t c) (children t id)

let ancestors t id =
  let rec go id acc =
    match parent t id with Some p -> go p (p :: acc) | None -> List.rev acc
  in
  go id []

let is_strict_ancestor t ~anc ~desc =
  let rec go id =
    match parent t id with
    | Some p -> p = anc || go p
    | None -> false
  in
  go desc

let depth t id = List.length (ancestors t id)
let max_id t = t.max_id
let fresh_id t = t.max_id + 1

let dn t id =
  (* [ancestors] is nearest-first, so [id :: ancestors] is leaf-to-root *)
  let path = id :: ancestors t id in
  String.concat "," (List.map (fun i -> Entry.rdn (entry t i)) path)

let norm_rdn s = String.lowercase_ascii (String.trim s)

let resolve_dn t dn_str =
  let parts = String.split_on_char ',' dn_str |> List.map norm_rdn in
  (* leaf-first; walk from the root end *)
  let rec descend candidates = function
    | [] -> None
    | [ rdn ] ->
        List.find_opt (fun id -> norm_rdn (Entry.rdn (entry t id)) = rdn) candidates
    | rdn :: rest -> (
        match
          List.find_opt (fun id -> norm_rdn (Entry.rdn (entry t id)) = rdn) candidates
        with
        | Some id -> descend (children t id) rest
        | None -> None)
  in
  descend (roots t) (List.rev parts)

let equal t1 t2 =
  t1.size = t2.size
  && Imap.for_all
       (fun id n1 ->
         match Imap.find_opt id t2.nodes with
         | None -> false
         | Some n2 -> Entry.equal n1.entry n2.entry && n1.parent = n2.parent)
       t1.nodes

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter_preorder
    (fun ~depth e ->
      Format.fprintf ppf "%s%s %a@ " (String.make (2 * depth) ' ') (Entry.rdn e)
        Oclass.pp_set (Entry.classes e))
    t;
  Format.fprintf ppf "@]"
