type t = { pos : int; msg : string }

let make ~pos msg = { pos; msg }
let v pos fmt = Printf.ksprintf (fun msg -> { pos; msg }) fmt
let pos e = e.pos
let msg e = e.msg
let to_string e = Printf.sprintf "at offset %d: %s" e.pos e.msg
let to_line_string e = Printf.sprintf "line %d: %s" e.pos e.msg
let pp ppf e = Format.pp_print_string ppf (to_string e)
