(** Hash-consed string pools.

    A million white-pages entries hold a few hundred distinct attribute
    names, object classes and a heavily skewed value population ("Paris",
    "engineer", area codes...), yet every parse and every codec decode
    allocates a fresh copy.  Interning collapses each distinct string to
    one canonical heap block, keyed by a small dense integer, so equal
    strings become physically equal ([==]) and the instance stops paying
    for duplicates.

    Pools are process-global and append-only: an id, once assigned, names
    the same string for the lifetime of the process (ids are dense,
    starting at 0, in first-intern order).  Pools never evict — the live
    directory holds the canonical strings anyway, so the pool adds only
    the table overhead.  All operations are thread-safe. *)

type pool

(** The five standing pools. *)

val attr : pool  (** normalized attribute names ([cn], [member]...) *)

val oclass : pool  (** normalized object-class names ([person]...) *)

val rdn : pool  (** relative distinguished names ([cn=Alice]) *)

val value : pool  (** [String]/[Dn] value payloads *)

val vkey : pool  (** normalized value-index keys (lowercased payloads) *)

(** [share p s] is the canonical copy of [s]: physically equal to every
    other [share p s'] with [s' = s].  Interns [s] on first sight. *)
val share : pool -> string -> string

(** [id p s] interns [s] and returns its dense id. *)
val id : pool -> string -> int

(** [find_id p s] is [s]'s id if already interned, without polluting the
    pool — use on query-side lookups so hostile constants don't grow it. *)
val find_id : pool -> string -> int option

(** [get p i] is the canonical string with id [i].
    Raises [Invalid_argument] if [i] was never assigned. *)
val get : pool -> int -> string

val size : pool -> int

(** [enabled] — when [false], {!share} returns its argument unchanged and
    {!id} still interns (ids must stay meaningful).  Flip only from a
    single thread (used by the differential fuzz oracle to compare
    interned against uninterned evaluation). *)
val enabled : bool ref

(** [with_disabled f] runs [f ()] with {!enabled} off, restoring it
    afterwards (also on exception). *)
val with_disabled : (unit -> 'a) -> 'a

type stat = {
  pool_name : string;
  distinct : int;  (** strings in the pool *)
  hits : int;  (** [share]/[id] calls that found an existing string *)
  saved_bytes : int;  (** heap bytes the hits would otherwise duplicate *)
}

(** Per-pool counters, in declaration order. *)
val stats : unit -> stat list

val pp_stats : Format.formatter -> stat list -> unit
