type t = string

let valid_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
  | _ -> false

let normalize s = String.lowercase_ascii (String.trim s)

let of_string_opt s =
  let s = normalize s in
  if s = "" then None
  else if String.for_all valid_char s then Some (Intern.share Intern.oclass s)
  else None

let of_string s =
  match of_string_opt s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Oclass.of_string: invalid class name %S" s)

let to_string c = c
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf c = Format.pp_print_string ppf c

let top = "top"

module Set = Set.Make (String)
module Map = Map.Make (String)

let set_of_list names = Set.of_list (List.map of_string names)

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp)
    (Set.elements s)
