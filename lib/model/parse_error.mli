(** Shared error channel for the text parsers.

    Every parser in the system ({!Bounds_query.Filter_parser},
    {!Bounds_query.Query_parser}, [Bounds_core.Spec_parser]) reports
    failures as one structured value: a position and a message.  What
    the position counts is the parser's business — the single-line
    filter/query grammars use a byte offset into the source, the
    multi-line schema-spec grammar a 1-based line number — but the shape
    (and the pretty-printers callers compose with) is common. *)

type t = { pos : int; msg : string }

val make : pos:int -> string -> t

(** [v pos fmt ...] — [printf]-style constructor. *)
val v : int -> ('a, unit, string, t) format4 -> 'a

val pos : t -> int
val msg : t -> string

(** ["at offset %d: %s"] — the rendering for offset-positioned errors
    (filters, queries). *)
val to_string : t -> string

(** ["line %d: %s"] — the rendering for line-positioned errors (schema
    specs). *)
val to_line_string : t -> string

(** Formats as {!to_string}. *)
val pp : Format.formatter -> t -> unit
