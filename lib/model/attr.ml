type t = string

let valid_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | ';' | '.' -> true
  | _ -> false

let normalize s =
  let s = String.trim s in
  String.lowercase_ascii s

let of_string_opt s =
  let s = normalize s in
  if s = "" then None
  else if String.for_all valid_char s then Some (Intern.share Intern.attr s)
  else None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Attr.of_string: invalid attribute name %S" s)

let to_string a = a
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf a = Format.pp_print_string ppf a

let object_class = "objectclass"

module Set = Set.Make (String)
module Map = Map.Make (String)

let set_of_list names = Set.of_list (List.map of_string names)
