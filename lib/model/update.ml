
type op =
  | Insert of { parent : Entry.id option; entry : Entry.t }
  | Delete of Entry.id

let pp_op ppf = function
  | Insert { parent = None; entry } ->
      Format.fprintf ppf "insert %d as root" (Entry.id entry)
  | Insert { parent = Some p; entry } ->
      Format.fprintf ppf "insert %d under %d" (Entry.id entry) p
  | Delete id -> Format.fprintf ppf "delete %d" id

let apply_op inst = function
  | Insert { parent; entry } ->
      Result.map_error Instance.error_to_string (Instance.add ~parent entry inst)
  | Delete id ->
      Result.map_error Instance.error_to_string (Instance.remove_leaf id inst)

let apply inst ops =
  List.fold_left
    (fun acc op -> Result.bind acc (fun inst -> apply_op inst op))
    (Ok inst) ops

let ops_of_subtree ~parent sub =
  let ops = ref [] in
  let rec go parent id =
    ops := Insert { parent; entry = Instance.entry sub id } :: !ops;
    List.iter (go (Some id)) (Instance.children sub id)
  in
  List.iter (go parent) (Instance.roots sub);
  List.rev !ops

let ops_of_deletion inst root =
  let ops = ref [] in
  let rec go id =
    List.iter go (Instance.children inst id);
    ops := Delete id :: !ops
  in
  go root;
  List.rev !ops
