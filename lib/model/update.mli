(** Directory update operations (Section 4.1).

    LDAP's update discipline: a new entry must be a root or a child of an
    existing entry; only leaf entries may be deleted.  An update
    transaction is a sequence of such operations. *)


type op =
  | Insert of { parent : Entry.id option; entry : Entry.t }
  | Delete of Entry.id

val pp_op : Format.formatter -> op -> unit

(** [apply_op inst op] enforces the discipline ([Insert] under an existing
    parent with a fresh id; [Delete] of an existing leaf). *)
val apply_op : Instance.t -> op -> (Instance.t, string) result

(** [apply inst ops] applies left to right, failing fast. *)
val apply : Instance.t -> op list -> (Instance.t, string) result

(** [ops_of_subtree ~parent sub] — the insertion sequence creating [sub]
    (a forest) under [parent], parents before children. *)
val ops_of_subtree : parent:Entry.id option -> Instance.t -> op list

(** [ops_of_deletion inst root] — the leaf-first deletion sequence
    removing the subtree of [root]. *)
val ops_of_deletion : Instance.t -> Entry.id -> op list
