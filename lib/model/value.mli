(** Attribute values.

    A directory entry holds a finite set of (attribute, value) pairs; each
    value must belong to the domain of its attribute's type
    (Definition 2.1, condition 3a). *)

type t =
  | String of string
  | Int of int
  | Bool of bool
  | Dn of string  (** a reference to another entry, by distinguished name *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [intern v] hash-conses [String]/[Dn] payloads through
    {!Intern.value}; [Int]/[Bool] are immediate and pass through. *)
val intern : t -> t

(** [has_type ty v] tests [v ∈ dom(ty)].  [T_telephone] admits [String]
    values over the telephone alphabet; [T_dn] admits [Dn] values. *)
val has_type : Atype.t -> t -> bool

(** [parse ty s] reads [s] as a value of type [ty]. *)
val parse : Atype.t -> string -> (t, string) result

(** [to_string v] prints the raw value (no type tag); [parse] of the
    result under the appropriate type yields [v] back. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Convenience constructors. *)
val s : string -> t

val i : int -> t
val b : bool -> t
