(** Blocking client for the directory server.

    One connection, one request/response in flight at a time; not
    thread-safe — give each thread its own client.  Transport failures
    (refused connection, dying server, torn frame) come back as
    [Error], never an exception. *)

type t

(** [connect ~port ()] opens a connection.  [host] defaults to
    ["127.0.0.1"]; [retries] (default [0]) re-attempts a refused
    connection after a short pause — for racing a daemon that is still
    binding.  Unless [hello:false], the client performs the version
    handshake ({!Proto.Hello}, [role] defaulting to {!Proto.Reader})
    before returning, so a protocol mismatch surfaces here as [Error]
    rather than as garbled traffic later. *)
val connect :
  ?host:string ->
  port:int ->
  ?retries:int ->
  ?hello:bool ->
  ?role:Proto.role ->
  unit ->
  (t, string) result

(** [request t req] sends one request and blocks for its response.
    [Error] means the exchange failed (transport or framing); a
    server-side failure is [Ok (Failed _)]. *)
val request : t -> Proto.request -> (Proto.response, string) result

(** {!request}, with transport failure raised as [Failure]. *)
val request_exn : t -> Proto.request -> Proto.response

val close : t -> unit
