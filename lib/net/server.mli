(** The directory server: a wire-facing daemon over one durable
    {!Bounds_store.Store}.

    Reads (queries, scoped searches) run concurrently and lock-free
    against immutable {!Bounds_core.Directory.Snapshot} values —
    snapshot isolation, with superseded versions reclaimed by
    {!Epoch}.  Writes and checkpoints funnel through a single writer
    thread that commits every maximal run of queued transactions as one
    {!Bounds_store.Store.batch}: one WAL append, one shared fsync, and
    only then the acknowledgements — group commit.  A reply to [Apply]
    therefore means the transaction is durable (acknowledged ⊆
    recovered), and no reader ever observes a half-committed batch.

    The server owns the store while running: do not touch the store
    from outside between {!start} and {!wait}. *)

type t

(** [start store] binds, spawns the acceptor and writer threads, and
    returns immediately.  [host] defaults to ["127.0.0.1"], [port] to
    [0] (ephemeral — read it back with {!port}).  [batch_max] (default
    [64]) caps transactions per group commit; [max_clients] (default
    [64]) caps concurrent connections (also the number of epoch reader
    slots). *)
val start :
  ?host:string ->
  ?port:int ->
  ?batch_max:int ->
  ?max_clients:int ->
  Bounds_store.Store.t ->
  t

(** The bound port (useful with [port:0]). *)
val port : t -> int

(** Ask the server to stop: in-flight requests finish, queued writes
    commit, connections drain.  Idempotent; also triggered by a
    [Shutdown] request from any client. *)
val stop : t -> unit

(** Block until the acceptor, writer and every handler thread have
    exited (call {!stop} first, or let a client send [Shutdown]). *)
val wait : t -> unit

type stats = {
  clients : int;  (** handler threads currently connected *)
  reads : int;
  writes_ok : int;
  writes_rejected : int;
  batches : int;  (** group commits (WAL appends) *)
  batched : int;  (** write transactions those commits carried *)
  max_batch : int;
  snapshots_retired : int;
  snapshots_pending : int;  (** retired but still pinned by a reader *)
}

val stats : t -> stats
val stats_text : stats -> string
