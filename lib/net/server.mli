(** The directory server: a wire-facing daemon over one durable
    {!Bounds_store.Store}.

    Reads (queries, scoped searches) run concurrently and lock-free
    against immutable {!Bounds_core.Directory.Snapshot} values —
    snapshot isolation, with superseded versions reclaimed by
    {!Epoch}.  Writes and checkpoints funnel through a single writer
    thread that commits every maximal run of queued transactions as one
    {!Bounds_store.Store.batch}: one WAL append, one shared fsync, and
    only then the acknowledgements — group commit.  A reply to [Apply]
    therefore means the transaction is durable (acknowledged ⊆
    recovered), and no reader ever observes a half-committed batch.

    With [replicate:true] the server is also a replication primary: a
    connection that says hello as a {!Proto.Replica} may [Subscribe],
    after which it receives a catch-up set (shipped records, or a
    bootstrap snapshot when its lsn predates the base checkpoint) and
    then every subsequently acknowledged record, in lsn order, as
    {!Proto.stream} messages.  Subscription grants run on the writer
    thread, serialized with commits, so the feed never gaps and never
    duplicates between catch-up and live shipment.

    The server owns the store while running: do not touch the store
    from outside between {!start} and {!wait}. *)

type t

(** [start store] binds, spawns the acceptor and writer threads, and
    returns immediately.  [host] defaults to ["127.0.0.1"], [port] to
    [0] (ephemeral — read it back with {!port}).  [batch_max] (default
    [64]) caps transactions per group commit; [max_clients] (default
    [64]) caps concurrent connections (also the number of epoch reader
    slots).  [replicate] (default [false]) accepts replication
    subscribers and installs the store's ship hook for the feed. *)
val start :
  ?host:string ->
  ?port:int ->
  ?batch_max:int ->
  ?max_clients:int ->
  ?replicate:bool ->
  Bounds_store.Store.t ->
  t

(** The bound port (useful with [port:0]). *)
val port : t -> int

(** Ask the server to stop: in-flight requests finish, queued writes
    commit, connections (feeds included) drain.  Idempotent; also
    triggered by a [Shutdown] request from any client. *)
val stop : t -> unit

(** Block until the acceptor, writer and every handler thread have
    exited (call {!stop} first, or let a client send [Shutdown]). *)
val wait : t -> unit

type stats = {
  clients : int;  (** handler threads currently connected *)
  reads : int;
  writes_ok : int;
  writes_rejected : int;
  batches : int;  (** group commits (WAL appends) *)
  batched : int;  (** write transactions those commits carried *)
  max_batch : int;
  snapshots_retired : int;
  snapshots_pending : int;  (** retired but still pinned by a reader *)
  lsn : int;  (** last durable log sequence number *)
  recovered : string;
      (** how recovery found this store's tail: ["fresh"] (born of
          [init] in this process), ["clean"], or the positioned
          truncation reasons of a {!Bounds_store.Store.Recovered_at} *)
  replicas : int;  (** live replication subscribers *)
  replica_lag : int;
      (** records not yet shipped to the slowest subscriber
          (lsn − min sent-lsn; [0] with no subscribers) *)
}

val stats : t -> stats
val stats_text : stats -> string

(** {1 Read evaluation}

    The per-snapshot read paths, exported for the replica daemon —
    the same evaluation code answers a query whether the snapshot
    came from a primary or from applied shipment. *)

val serve_query : Bounds_core.Directory.Snapshot.t -> string -> Proto.response

val serve_search :
  Bounds_core.Directory.Snapshot.t ->
  base:string option ->
  scope:string ->
  filter:string ->
  Proto.response
