(* Blocking client for the directory server: one connection, one
   request/response in flight at a time.  Failures come back as
   [Error] strings — a client must survive a dying server. *)

type t = { fd : Unix.file_descr; mutable closed : bool }

(* Version handshake: declare who we are, fail fast if the server
   speaks a different protocol revision.  Servers predating the hello
   verb answer unknown requests with [Failed], which lands here as a
   mismatch too — exactly the right outcome. *)
let shake fd role =
  match Conn.send fd (Proto.encode_request (Hello { version = Proto.version; role })) with
  | exception Unix.Unix_error (err, _, _) ->
      Error ("hello: " ^ Unix.error_message err)
  | () -> (
      match Conn.recv_or_error fd with
      | exception Unix.Unix_error (err, _, _) ->
          Error ("hello: " ^ Unix.error_message err)
      | Error e -> Error ("hello: " ^ e)
      | Ok payload -> (
          match Proto.decode_response payload with
          | Ok (Reply _) -> Ok ()
          | Ok (Failed msg) -> Error ("hello rejected: " ^ msg)
          | Error e -> Error ("hello: " ^ e)))

let connect ?(host = "127.0.0.1") ~port ?(retries = 0) ?(hello = true)
    ?(role = Proto.Reader) () =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let rec go attempt =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        if not hello then Ok { fd; closed = false }
        else (
          match shake fd role with
          | Ok () -> Ok { fd; closed = false }
          | Error e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Error e)
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if attempt < retries then begin
          (* daemon may still be binding: back off briefly and retry *)
          Unix.sleepf 0.05;
          go (attempt + 1)
        end
        else
          Error
            (Printf.sprintf "connect %s:%d: %s" host port
               (Unix.error_message err))
  in
  go 0

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request t req =
  if t.closed then Error "client closed"
  else
    match Conn.send t.fd (Proto.encode_request req) with
    | exception Unix.Unix_error (err, _, _) ->
        Error ("send: " ^ Unix.error_message err)
    | () -> (
        match Conn.recv_or_error t.fd with
        | exception Unix.Unix_error (err, _, _) ->
            (* e.g. ECONNRESET when the server hung up with our request
               still unread — a failed exchange, not a caller crash *)
            Error ("recv: " ^ Unix.error_message err)
        | Error _ as e -> e
        | Ok payload -> Proto.decode_response payload)

(* Convenience: collapse transport and protocol failure into one
   string, for callers that only care about success. *)
let request_exn t req =
  match request t req with
  | Ok resp -> resp
  | Error e -> failwith ("request: " ^ e)
