(* Framed messages over a stream socket: every message travels as one
   {!Bounds_store.Frame} — [len][crc][payload] — so the wire format and
   the write-ahead log share one framing (and one set of torn/corrupt
   classifications).  [recv] is total over what the peer sends:
   short reads, oversize lengths and CRC mismatches come back as
   [Error], a clean close as [Ok None]. *)

module Frame = Bounds_store.Frame

(* Refuse absurd frames before allocating: a corrupt or hostile length
   must not turn into a multi-gigabyte Bytes.create. *)
let max_payload = 64 * 1024 * 1024

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let send fd payload =
  let framed = Frame.encode payload in
  write_all fd framed 0 (String.length framed)

(* Read exactly [len] bytes; [Ok None] iff the peer closed cleanly
   before the first byte. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Ok (Some (Bytes.unsafe_to_string buf))
    else
      match Unix.read fd buf off (len - off) with
      | 0 ->
          if off = 0 then Ok None
          else Error (Printf.sprintf "connection closed mid-frame (%d/%d bytes)" off len)
      | n -> go (off + n)
  in
  go 0

let recv fd =
  match read_exact fd Frame.header_size with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some header) -> (
      let len =
        Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string header) 0)
      in
      if len < 0 || len > max_payload then
        Error (Printf.sprintf "bad frame length %d" len)
      else
        match read_exact fd len with
        | Error _ as e -> e
        | Ok None -> Error "connection closed mid-frame (payload missing)"
        | Ok (Some payload) -> (
            (* reassemble and let the frame decoder do the CRC check, so
               wire and log corruption are classified by the same code *)
            match Frame.read (header ^ payload) 0 with
            | Frame.Record { payload; _ } -> Ok (Some payload)
            | Frame.Torn { reason; _ } -> Error reason
            | Frame.End -> Error "empty frame"))

let recv_or_error fd =
  match recv fd with
  | Ok (Some payload) -> Ok payload
  | Ok None -> Error "connection closed"
  | Error _ as e -> e
