(* The directory server: snapshot-isolated readers, one writer, group
   commit.

   Thread architecture (systhreads — the work is I/O- and
   fsync-bound, so the runtime lock is not the bottleneck):

   - an {e acceptor} thread owns the listening socket and spawns one
     handler thread per connection, up to [max_clients];
   - {e handler} threads serve reads directly: pin an epoch slot, load
     the current {!Directory.Snapshot} pointer, evaluate through the
     read-only memo path ([query_ro]/[search] — no locks, no shared
     mutation), unpin, reply.  Writes and checkpoints are enqueued for
     the writer and the handler blocks on a per-request semaphore until
     the commit (and its fsync) is durable;
   - one {e writer} thread drains the queue in chunks of at most
     [batch_max], admits each transaction against the rolling version,
     and commits every maximal run of writes through {!Store.batch} —
     one WAL append, one shared fsync, then all acknowledgements at
     once.  After a chunk that changed the directory it publishes a
     fresh snapshot with [Atomic.exchange] and {!Epoch.retire}s the old
     one.

   The durability contract this preserves: a reply is sent only after
   the transaction's log record is on disk (acknowledged ⊆ recovered —
   {!Store.batch}'s discipline), while readers never observe a
   half-applied batch (they hold whatever snapshot was current when
   they pinned).

   Replication ([replicate:true]) adds subscribers: a connection that
   says hello as a replica and subscribes is granted a catch-up set on
   the writer thread (so it is serialized with commits — no record can
   land between the catch-up read and the live feed) and then turns
   into a one-way feed.  The store's ship hook, which also fires on the
   writer thread right after each commit's durability point, pushes
   every acknowledged record onto each subscriber's queue; the
   connection's own thread drains it to the socket. *)

open Bounds_model
open Bounds_core
module Store = Bounds_store.Store

(* One replication subscriber: the writer thread (catch-up, ship hook)
   pushes feed messages onto [sq]; the connection's feed loop drains
   them to the socket.  Both sides synchronize on the server mutex
   [m]; [sc] is signalled under it when [sq] gains an item. *)
type sub = {
  sid : int;
  sq : Proto.stream Queue.t;  (* guarded by [m] *)
  sc : Condition.t;  (* waits on [m] *)
  mutable sent_lsn : int;  (* highest lsn written to the socket *)
}

type pending = {
  req : Proto.request;
  sem : Semaphore.Binary.t;
  mutable reply : Proto.response;
  mutable sub : sub option;  (* a granted subscription rides back here *)
}

type stats = {
  clients : int;  (** handler threads currently connected *)
  reads : int;
  writes_ok : int;
  writes_rejected : int;
  batches : int;  (** group commits (WAL appends) *)
  batched : int;  (** write transactions those commits carried *)
  max_batch : int;
  snapshots_retired : int;
  snapshots_pending : int;  (** retired but still pinned by a reader *)
  lsn : int;  (** last durable log sequence number *)
  recovered : string;  (** how recovery found this store's tail *)
  replicas : int;  (** live replication subscribers *)
  replica_lag : int;  (** records not yet shipped to the slowest one *)
}

type t = {
  store : Store.t;
  replicate : bool;
  listen_fd : Unix.file_descr;
  port : int;
  batch_max : int;
  current : Directory.Snapshot.t Atomic.t;
  epoch : Directory.Snapshot.t Epoch.t;
  free_slots : int list ref;  (* guarded by [m] *)
  queue : pending Queue.t;  (* guarded by [m] *)
  m : Mutex.t;
  nonempty : Condition.t;  (* queue gained an item, or stopping *)
  mutable stopping : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;  (* guarded by [m] *)
  mutable subs : sub list;  (* guarded by [m] *)
  mutable next_sid : int;  (* guarded by [m] *)
  mutable acceptor : Thread.t option;
  mutable writer : Thread.t option;
  (* counters, guarded by [m] (read path takes the lock only to bump —
     evaluation itself runs outside it) *)
  mutable n_clients : int;
  mutable n_reads : int;
  mutable n_writes_ok : int;
  mutable n_writes_rejected : int;
  mutable n_batches : int;
  mutable n_batched : int;
  mutable n_max_batch : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let port t = t.port

(* One stats line for how recovery found the store: "fresh" for a
   store born of [init] this process, "clean" when every tail replayed,
   else the positioned truncation reasons — the wire-visible surface of
   [Store.Recovered_at]. *)
let recovered_line = function
  | None -> "fresh"
  | Some (r : Store.report) -> (
      let tail name = function
        | Store.Clean -> None
        | Store.Recovered_at { offset; reason } ->
            Some (Printf.sprintf "%s recovered_at %d (%s)" name offset reason)
      in
      match
        List.filter_map Fun.id [ tail "delta" r.delta_tail; tail "wal" r.tail ]
      with
      | [] -> "clean"
      | l -> String.concat "; " l)

let stats t =
  let lsn = Store.lsn t.store in
  let recovered = recovered_line (Store.recovery t.store) in
  locked t (fun () ->
      {
        clients = t.n_clients;
        reads = t.n_reads;
        writes_ok = t.n_writes_ok;
        writes_rejected = t.n_writes_rejected;
        batches = t.n_batches;
        batched = t.n_batched;
        max_batch = t.n_max_batch;
        snapshots_retired = Epoch.retired t.epoch;
        snapshots_pending = Epoch.pending t.epoch;
        lsn;
        recovered;
        replicas = List.length t.subs;
        replica_lag =
          List.fold_left (fun acc s -> max acc (lsn - s.sent_lsn)) 0 t.subs;
      })

let stats_text s =
  Printf.sprintf
    "clients %d\nreads %d\nwrites_ok %d\nwrites_rejected %d\n\
     batches %d\nbatched %d\nmax_batch %d\n\
     snapshots_retired %d\nsnapshots_pending %d\n\
     lsn %d\nrecovered %s\nreplicas %d\nreplica_lag %d"
    s.clients s.reads s.writes_ok s.writes_rejected s.batches s.batched
    s.max_batch s.snapshots_retired s.snapshots_pending s.lsn s.recovered
    s.replicas s.replica_lag

(* --- read path (handler threads, lock-free) ----------------------------- *)

let dn_listing inst ids =
  String.concat "\n"
    (string_of_int (List.length ids) :: List.map (Instance.dn inst) ids)

let serve_query snap text =
  match Bounds_query.Query_parser.parse text with
  | Error e -> Proto.Failed ("query: " ^ Parse_error.to_string e)
  | Ok q ->
      let ids = Directory.Snapshot.query_ids_ro snap q in
      Proto.Reply (dn_listing (Directory.Snapshot.instance snap) ids)

let serve_search snap ~base ~scope ~filter =
  match Bounds_query.Search.scope_of_string scope with
  | Error e -> Proto.Failed e
  | Ok scope -> (
      match Bounds_query.Filter_parser.parse filter with
      | Error e -> Proto.Failed ("filter: " ^ Parse_error.to_string e)
      | Ok filter -> (
          let inst = Directory.Snapshot.instance snap in
          let base_id =
            match base with
            | None -> Ok None
            | Some dn -> (
                match Instance.resolve_dn inst dn with
                | Some id -> Ok (Some id)
                | None -> Error (Printf.sprintf "base %S not found" dn))
          in
          match base_id with
          | Error e -> Proto.Failed e
          | Ok base ->
              let ids = Directory.Snapshot.search snap ~base scope filter in
              Proto.Reply (dn_listing inst ids)))

(* Pin first, then load the pointer — the ordering {!Epoch} relies on. *)
let with_snapshot t ~slot f =
  ignore (Epoch.pin t.epoch ~slot);
  Fun.protect
    ~finally:(fun () -> Epoch.unpin t.epoch ~slot)
    (fun () -> f (Atomic.get t.current))

(* --- write path (the single writer thread) ------------------------------ *)

let apply_one t text =
  (* Parse at admission time against the rolling version — inside the
     batch, so DNs resolve against the effects of earlier transactions
     in the same group. *)
  let d = Store.directory t.store in
  let typing = (Store.schema t.store).Schema.typing in
  match Bounds_codec.Ldif.parse_changes ~typing (Directory.instance d) text with
  | Error e -> Proto.Failed ("parse: " ^ e)
  | Ok ops -> (
      (* one verdict shape across every write surface: the store's
         Admission.result carries the lsn the record was stamped with
         (mid-batch, that is its buffered position — durable once the
         shared flush lands, which is before this reply is released) *)
      match Store.apply t.store ops with
      | Admission.Accepted { lsn; ops; _ } ->
          Proto.Reply
            (Printf.sprintf "applied %d ops at lsn %d" (List.length ops)
               (Option.value lsn ~default:(Store.lsn t.store)))
      | Admission.Rejected { reason; _ } ->
          Proto.Failed (Format.asprintf "%a" Monitor.pp_rejection reason))

let publish t =
  let snap = Directory.snapshot (Store.directory t.store) in
  let old = Atomic.exchange t.current snap in
  Epoch.retire t.epoch old

(* Commit a run of [Apply]s as one group: tentative replies are
   computed while the batch admits transaction by transaction, but
   nothing is acknowledged until {!Store.batch} has flushed the shared
   append — if that flush fails, every tentatively-accepted reply is
   downgraded, matching the store's rollback. *)
let commit_applies t items =
  let n = List.length items in
  let tentative = Array.make n (Proto.Failed "not processed") in
  let committed =
    match
      Store.batch t.store (fun () ->
          List.iteri
            (fun i p ->
              match p.req with
              | Proto.Apply text -> tentative.(i) <- apply_one t text
              | _ -> assert false)
            items)
    with
    | (), _admissions -> true
    | exception e ->
        let msg = "commit failed: " ^ Printexc.to_string e in
        Array.iteri
          (fun i r ->
            match r with
            | Proto.Reply _ -> tentative.(i) <- Proto.Failed msg
            | Proto.Failed _ -> ())
          tentative;
        false
  in
  let ok =
    Array.fold_left
      (fun k r -> match r with Proto.Reply _ -> k + 1 | _ -> k)
      0 tentative
  in
  locked t (fun () ->
      t.n_writes_ok <- t.n_writes_ok + ok;
      t.n_writes_rejected <- t.n_writes_rejected + (n - ok);
      if committed && ok > 0 then begin
        t.n_batches <- t.n_batches + 1;
        t.n_batched <- t.n_batched + ok;
        t.n_max_batch <- max t.n_max_batch ok
      end);
  if committed && ok > 0 then publish t;
  (* Acknowledge only now: the shared fsync is behind us. *)
  List.iteri
    (fun i p ->
      p.reply <- tentative.(i);
      Semaphore.Binary.release p.sem)
    items

let commit_checkpoint t p =
  (match Store.checkpoint t.store with
  | () -> p.reply <- Proto.Reply (Printf.sprintf "checkpoint at lsn %d" (Store.lsn t.store))
  | exception e -> p.reply <- Proto.Failed ("checkpoint failed: " ^ Printexc.to_string e));
  Semaphore.Binary.release p.sem

(* Grant a subscription.  Runs on the writer thread, which serializes
   the catch-up read with commits: no record can land between
   [records_from] and the registration below, and the ship hook fires
   on this same thread — the feed never gaps and never duplicates.
   Subscribers whose lsn the logs no longer cover (or who ask from -1)
   get a [Boot] bootstrap package instead. *)
let commit_subscribe t p from_lsn =
  let sub =
    locked t (fun () ->
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        { sid; sq = Queue.create (); sc = Condition.create (); sent_lsn = from_lsn })
  in
  let boot () =
    let schema, checkpoint, lsn = Store.boot_blob t.store in
    [ Proto.Boot { lsn; schema; checkpoint } ]
  in
  let items =
    if from_lsn < 0 then boot ()
    else
      match Store.records_from t.store ~lsn:from_lsn with
      | `Records rs -> List.map (fun (lsn, ops) -> Proto.Ship { lsn; ops }) rs
      | `Too_old -> boot ()
  in
  locked t (fun () ->
      List.iter (fun i -> Queue.push i sub.sq) items;
      t.subs <- sub :: t.subs);
  p.sub <- Some sub;
  p.reply <-
    Proto.Reply
      (Printf.sprintf "subscribed from %d at %d" from_lsn (Store.lsn t.store));
  Semaphore.Binary.release p.sem

let writer_loop t =
  let rec drain () =
    let chunk =
      locked t (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.nonempty t.m
          done;
          let rec take acc k =
            if k = 0 || Queue.is_empty t.queue then List.rev acc
            else take (Queue.pop t.queue :: acc) (k - 1)
          in
          take [] t.batch_max)
    in
    match chunk with
    | [] -> if not (locked t (fun () -> t.stopping)) then drain ()
        (* stopping and queue empty: writer done *)
    | chunk ->
        (* maximal runs of applies commit as one group; checkpoints are
           barriers between them *)
        let rec runs = function
          | [] -> ()
          | { req = Proto.Apply _; _ } :: _ as l ->
              let applies, rest =
                let rec split acc = function
                  | ({ req = Proto.Apply _; _ } as p) :: tl -> split (p :: acc) tl
                  | tl -> (List.rev acc, tl)
                in
                split [] l
              in
              commit_applies t applies;
              runs rest
          | ({ req = Proto.Checkpoint; _ } as p) :: tl ->
              commit_checkpoint t p;
              runs tl
          | ({ req = Proto.Subscribe { from_lsn }; _ } as p) :: tl ->
              commit_subscribe t p from_lsn;
              runs tl
          | p :: tl ->
              p.reply <- Proto.Failed "not a write request";
              Semaphore.Binary.release p.sem;
              runs tl
        in
        runs chunk;
        drain ()
  in
  drain ()

let enqueue' t req =
  let p =
    {
      req;
      sem = Semaphore.Binary.make false;
      reply = Proto.Failed "server stopping";
      sub = None;
    }
  in
  let accepted =
    locked t (fun () ->
        if t.stopping then false
        else begin
          Queue.push p t.queue;
          Condition.signal t.nonempty;
          true
        end)
  in
  if accepted then begin
    Semaphore.Binary.acquire p.sem;
    Some p
  end
  else None

let enqueue t req =
  match enqueue' t req with
  | Some p -> p.reply
  | None -> Proto.Failed "server stopping"

(* --- connection handling ------------------------------------------------- *)

let initiate_stop t =
  let conns =
    locked t (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          Condition.broadcast t.nonempty;
          (* wake every feed loop so it can notice [stopping] *)
          List.iter (fun s -> Condition.broadcast s.sc) t.subs;
          t.conns
        end)
  in
  (* Wake the acceptor out of [accept] and handlers out of [recv]; the
     sockets deliver end-of-stream, the threads clean up and exit. *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns

let handle_request t ~slot = function
  | Proto.Ping -> Proto.Reply "pong"
  | Proto.Query text ->
      with_snapshot t ~slot (fun snap ->
          let r = serve_query snap text in
          locked t (fun () -> t.n_reads <- t.n_reads + 1);
          r)
  | Proto.Search { base; scope; filter } ->
      with_snapshot t ~slot (fun snap ->
          let r = serve_search snap ~base ~scope ~filter in
          locked t (fun () -> t.n_reads <- t.n_reads + 1);
          r)
  | Proto.Stats -> Proto.Reply (stats_text (stats t))
  | (Proto.Apply _ | Proto.Checkpoint) as req -> enqueue t req
  | Proto.Shutdown -> Proto.Reply "stopping"
  | Proto.Hello _ | Proto.Subscribe _ ->
      (* handled at the connection level before dispatch reaches here *)
      Proto.Failed "unexpected handshake request"

(* Drain a subscriber's queue to its socket until the server stops or
   the peer goes away (a failed send).  Runs on the connection's own
   handler thread — after [Subscribe] is granted, the connection stops
   being request/response and becomes this one-way feed. *)
let feed_loop t fd sub =
  let rec loop () =
    let items =
      locked t (fun () ->
          while Queue.is_empty sub.sq && not t.stopping do
            Condition.wait sub.sc t.m
          done;
          let rec take acc =
            if Queue.is_empty sub.sq then List.rev acc
            else take (Queue.pop sub.sq :: acc)
          in
          take [])
    in
    match items with
    | [] -> ()  (* stopping with nothing queued: feed done *)
    | items -> (
        match
          List.iter
            (fun item ->
              Conn.send fd (Proto.encode_stream item);
              sub.sent_lsn <-
                (match item with
                | Proto.Ship { lsn; _ } | Proto.Mark { lsn } | Proto.Boot { lsn; _ }
                  ->
                    lsn))
            items
        with
        | () -> loop ()
        | exception Unix.Unix_error _ -> ())
  in
  (try loop () with Unix.Unix_error _ -> ());
  locked t (fun () -> t.subs <- List.filter (fun s -> s.sid <> sub.sid) t.subs)

let client_loop t fd slot =
  (* the role this connection declared in its hello, if it said one *)
  let role = ref None in
  let rec loop () =
    match Conn.recv fd with
    | Ok None | Error _ -> ()  (* clean close, torn frame: drop the conn *)
    | Ok (Some payload) -> (
        match Proto.decode_request payload with
        | Error e ->
            Conn.send fd (Proto.encode_response (Proto.Failed e));
            loop ()
        | Ok (Proto.Hello { version; role = r }) ->
            if version <> Proto.version then
              (* fail fast and hang up: nothing else this peer sends
                 can be trusted to decode the same way on both ends *)
              Conn.send fd
                (Proto.encode_response
                   (Proto.Failed
                      (Printf.sprintf
                         "protocol version mismatch: server %d, client %d"
                         Proto.version version)))
            else begin
              role := Some r;
              Conn.send fd
                (Proto.encode_response
                   (Proto.Reply (Printf.sprintf "hello %d" Proto.version)));
              loop ()
            end
        | Ok (Proto.Subscribe { from_lsn }) ->
            if not t.replicate then begin
              Conn.send fd
                (Proto.encode_response (Proto.Failed "replication not enabled"));
              loop ()
            end
            else if !role <> Some Proto.Replica then begin
              Conn.send fd
                (Proto.encode_response
                   (Proto.Failed "subscribe requires a replica hello"));
              loop ()
            end
            else (
              match enqueue' t (Proto.Subscribe { from_lsn }) with
              | None ->
                  Conn.send fd
                    (Proto.encode_response (Proto.Failed "server stopping"))
              | Some p -> (
                  Conn.send fd (Proto.encode_response p.reply);
                  match (p.reply, p.sub) with
                  | Proto.Reply _, Some sub -> feed_loop t fd sub
                  | _ -> loop ()))
        | Ok req ->
            let resp = handle_request t ~slot req in
            Conn.send fd (Proto.encode_response resp);
            if req = Proto.Shutdown then initiate_stop t else loop ())
  in
  (try loop () with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.free_slots := slot :: !(t.free_slots);
      t.n_clients <- t.n_clients - 1;
      t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns)

let acceptor_loop t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error _ -> ()  (* listener shut down: stop *)
    | fd, _ ->
        if locked t (fun () -> t.stopping) then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          ())
        else begin
          let slot =
            locked t (fun () ->
                match !(t.free_slots) with
                | [] -> None
                | s :: rest ->
                    t.free_slots := rest;
                    t.n_clients <- t.n_clients + 1;
                    Some s)
          in
          (match slot with
          | None ->
              (* full: refuse politely — one response frame, then close *)
              (try
                 Conn.send fd (Proto.encode_response (Proto.Failed "server full"))
               with Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())
          | Some slot ->
              let th = Thread.create (fun () -> client_loop t fd slot) () in
              locked t (fun () -> t.conns <- (fd, th) :: t.conns));
          loop ()
        end
  in
  loop ()

(* --- lifecycle ----------------------------------------------------------- *)

let start ?(host = "127.0.0.1") ?(port = 0) ?(batch_max = 64)
    ?(max_clients = 64) ?(replicate = false) store =
  if batch_max < 1 then invalid_arg "Server.start: batch_max < 1";
  if max_clients < 1 then invalid_arg "Server.start: max_clients < 1";
  (* A replica killed mid-shipment leaves the feed writing into a dead
     socket; without this the resulting SIGPIPE kills the whole
     process instead of surfacing as a catchable EPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let snap = Directory.snapshot (Store.directory store) in
  let t =
    {
      store;
      replicate;
      listen_fd;
      port;
      batch_max;
      current = Atomic.make snap;
      epoch = Epoch.create ~slots:max_clients;
      free_slots = ref (List.init max_clients Fun.id);
      queue = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      conns = [];
      subs = [];
      next_sid = 0;
      acceptor = None;
      writer = None;
      n_clients = 0;
      n_reads = 0;
      n_writes_ok = 0;
      n_writes_rejected = 0;
      n_batches = 0;
      n_batched = 0;
      n_max_batch = 0;
    }
  in
  if replicate then
    Store.set_ship_hook store
      (Some
         (fun item ->
           let msg =
             match item with
             | Store.Ship_txn { lsn; ops } -> Proto.Ship { lsn; ops }
             | Store.Ship_mark { lsn } -> Proto.Mark { lsn }
           in
           locked t (fun () ->
               List.iter
                 (fun sub ->
                   Queue.push msg sub.sq;
                   Condition.signal sub.sc)
                 t.subs)));
  t.writer <- Some (Thread.create writer_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let stop t = initiate_stop t

let wait t =
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.writer;
  let conns = locked t (fun () -> t.conns) in
  List.iter (fun (_, th) -> Thread.join th) conns;
  Store.set_ship_hook t.store None;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
