(* The directory server: snapshot-isolated readers, one writer, group
   commit.

   Thread architecture (systhreads — the work is I/O- and
   fsync-bound, so the runtime lock is not the bottleneck):

   - an {e acceptor} thread owns the listening socket and spawns one
     handler thread per connection, up to [max_clients];
   - {e handler} threads serve reads directly: pin an epoch slot, load
     the current {!Directory.Snapshot} pointer, evaluate through the
     read-only memo path ([query_ro]/[search] — no locks, no shared
     mutation), unpin, reply.  Writes and checkpoints are enqueued for
     the writer and the handler blocks on a per-request semaphore until
     the commit (and its fsync) is durable;
   - one {e writer} thread drains the queue in chunks of at most
     [batch_max], admits each transaction against the rolling version,
     and commits every maximal run of writes through {!Store.batch} —
     one WAL append, one shared fsync, then all acknowledgements at
     once.  After a chunk that changed the directory it publishes a
     fresh snapshot with [Atomic.exchange] and {!Epoch.retire}s the old
     one.

   The durability contract this preserves: a reply is sent only after
   the transaction's log record is on disk (acknowledged ⊆ recovered —
   {!Store.batch}'s discipline), while readers never observe a
   half-applied batch (they hold whatever snapshot was current when
   they pinned). *)

open Bounds_model
open Bounds_core
module Store = Bounds_store.Store

type pending = {
  req : Proto.request;
  sem : Semaphore.Binary.t;
  mutable reply : Proto.response;
}

type stats = {
  clients : int;  (** handler threads currently connected *)
  reads : int;
  writes_ok : int;
  writes_rejected : int;
  batches : int;  (** group commits (WAL appends) *)
  batched : int;  (** write transactions those commits carried *)
  max_batch : int;
  snapshots_retired : int;
  snapshots_pending : int;  (** retired but still pinned by a reader *)
}

type t = {
  store : Store.t;
  listen_fd : Unix.file_descr;
  port : int;
  batch_max : int;
  current : Directory.Snapshot.t Atomic.t;
  epoch : Directory.Snapshot.t Epoch.t;
  free_slots : int list ref;  (* guarded by [m] *)
  queue : pending Queue.t;  (* guarded by [m] *)
  m : Mutex.t;
  nonempty : Condition.t;  (* queue gained an item, or stopping *)
  mutable stopping : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;  (* guarded by [m] *)
  mutable acceptor : Thread.t option;
  mutable writer : Thread.t option;
  (* counters, guarded by [m] (read path takes the lock only to bump —
     evaluation itself runs outside it) *)
  mutable n_clients : int;
  mutable n_reads : int;
  mutable n_writes_ok : int;
  mutable n_writes_rejected : int;
  mutable n_batches : int;
  mutable n_batched : int;
  mutable n_max_batch : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let port t = t.port

let stats t =
  locked t (fun () ->
      {
        clients = t.n_clients;
        reads = t.n_reads;
        writes_ok = t.n_writes_ok;
        writes_rejected = t.n_writes_rejected;
        batches = t.n_batches;
        batched = t.n_batched;
        max_batch = t.n_max_batch;
        snapshots_retired = Epoch.retired t.epoch;
        snapshots_pending = Epoch.pending t.epoch;
      })

let stats_text s =
  Printf.sprintf
    "clients %d\nreads %d\nwrites_ok %d\nwrites_rejected %d\n\
     batches %d\nbatched %d\nmax_batch %d\n\
     snapshots_retired %d\nsnapshots_pending %d"
    s.clients s.reads s.writes_ok s.writes_rejected s.batches s.batched
    s.max_batch s.snapshots_retired s.snapshots_pending

(* --- read path (handler threads, lock-free) ----------------------------- *)

let dn_listing inst ids =
  String.concat "\n"
    (string_of_int (List.length ids) :: List.map (Instance.dn inst) ids)

let serve_query snap text =
  match Bounds_query.Query_parser.parse text with
  | Error e -> Proto.Failed ("query: " ^ Parse_error.to_string e)
  | Ok q ->
      let ids = Directory.Snapshot.query_ids_ro snap q in
      Proto.Reply (dn_listing (Directory.Snapshot.instance snap) ids)

let serve_search snap ~base ~scope ~filter =
  match Bounds_query.Search.scope_of_string scope with
  | Error e -> Proto.Failed e
  | Ok scope -> (
      match Bounds_query.Filter_parser.parse filter with
      | Error e -> Proto.Failed ("filter: " ^ Parse_error.to_string e)
      | Ok filter -> (
          let inst = Directory.Snapshot.instance snap in
          let base_id =
            match base with
            | None -> Ok None
            | Some dn -> (
                match Instance.resolve_dn inst dn with
                | Some id -> Ok (Some id)
                | None -> Error (Printf.sprintf "base %S not found" dn))
          in
          match base_id with
          | Error e -> Proto.Failed e
          | Ok base ->
              let ids = Directory.Snapshot.search snap ~base scope filter in
              Proto.Reply (dn_listing inst ids)))

(* Pin first, then load the pointer — the ordering {!Epoch} relies on. *)
let with_snapshot t ~slot f =
  ignore (Epoch.pin t.epoch ~slot);
  Fun.protect
    ~finally:(fun () -> Epoch.unpin t.epoch ~slot)
    (fun () -> f (Atomic.get t.current))

(* --- write path (the single writer thread) ------------------------------ *)

let apply_one t text =
  (* Parse at admission time against the rolling version — inside the
     batch, so DNs resolve against the effects of earlier transactions
     in the same group. *)
  let d = Store.directory t.store in
  let typing = (Store.schema t.store).Schema.typing in
  match Bounds_codec.Ldif.parse_changes ~typing (Directory.instance d) text with
  | Error e -> Proto.Failed ("parse: " ^ e)
  | Ok ops -> (
      (* one verdict shape across every write surface: the store's
         Admission.result carries the lsn the record was stamped with
         (mid-batch, that is its buffered position — durable once the
         shared flush lands, which is before this reply is released) *)
      match Store.apply t.store ops with
      | Admission.Accepted { lsn; ops; _ } ->
          Proto.Reply
            (Printf.sprintf "applied %d ops at lsn %d" (List.length ops)
               (Option.value lsn ~default:(Store.lsn t.store)))
      | Admission.Rejected { reason; _ } ->
          Proto.Failed (Format.asprintf "%a" Monitor.pp_rejection reason))

let publish t =
  let snap = Directory.snapshot (Store.directory t.store) in
  let old = Atomic.exchange t.current snap in
  Epoch.retire t.epoch old

(* Commit a run of [Apply]s as one group: tentative replies are
   computed while the batch admits transaction by transaction, but
   nothing is acknowledged until {!Store.batch} has flushed the shared
   append — if that flush fails, every tentatively-accepted reply is
   downgraded, matching the store's rollback. *)
let commit_applies t items =
  let n = List.length items in
  let tentative = Array.make n (Proto.Failed "not processed") in
  let committed =
    match
      Store.batch t.store (fun () ->
          List.iteri
            (fun i p ->
              match p.req with
              | Proto.Apply text -> tentative.(i) <- apply_one t text
              | _ -> assert false)
            items)
    with
    | (), _admissions -> true
    | exception e ->
        let msg = "commit failed: " ^ Printexc.to_string e in
        Array.iteri
          (fun i r ->
            match r with
            | Proto.Reply _ -> tentative.(i) <- Proto.Failed msg
            | Proto.Failed _ -> ())
          tentative;
        false
  in
  let ok =
    Array.fold_left
      (fun k r -> match r with Proto.Reply _ -> k + 1 | _ -> k)
      0 tentative
  in
  locked t (fun () ->
      t.n_writes_ok <- t.n_writes_ok + ok;
      t.n_writes_rejected <- t.n_writes_rejected + (n - ok);
      if committed && ok > 0 then begin
        t.n_batches <- t.n_batches + 1;
        t.n_batched <- t.n_batched + ok;
        t.n_max_batch <- max t.n_max_batch ok
      end);
  if committed && ok > 0 then publish t;
  (* Acknowledge only now: the shared fsync is behind us. *)
  List.iteri
    (fun i p ->
      p.reply <- tentative.(i);
      Semaphore.Binary.release p.sem)
    items

let commit_checkpoint t p =
  (match Store.checkpoint t.store with
  | () -> p.reply <- Proto.Reply (Printf.sprintf "checkpoint at lsn %d" (Store.lsn t.store))
  | exception e -> p.reply <- Proto.Failed ("checkpoint failed: " ^ Printexc.to_string e));
  Semaphore.Binary.release p.sem

let writer_loop t =
  let rec drain () =
    let chunk =
      locked t (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.nonempty t.m
          done;
          let rec take acc k =
            if k = 0 || Queue.is_empty t.queue then List.rev acc
            else take (Queue.pop t.queue :: acc) (k - 1)
          in
          take [] t.batch_max)
    in
    match chunk with
    | [] -> if not (locked t (fun () -> t.stopping)) then drain ()
        (* stopping and queue empty: writer done *)
    | chunk ->
        (* maximal runs of applies commit as one group; checkpoints are
           barriers between them *)
        let rec runs = function
          | [] -> ()
          | { req = Proto.Apply _; _ } :: _ as l ->
              let applies, rest =
                let rec split acc = function
                  | ({ req = Proto.Apply _; _ } as p) :: tl -> split (p :: acc) tl
                  | tl -> (List.rev acc, tl)
                in
                split [] l
              in
              commit_applies t applies;
              runs rest
          | ({ req = Proto.Checkpoint; _ } as p) :: tl ->
              commit_checkpoint t p;
              runs tl
          | p :: tl ->
              p.reply <- Proto.Failed "not a write request";
              Semaphore.Binary.release p.sem;
              runs tl
        in
        runs chunk;
        drain ()
  in
  drain ()

let enqueue t req =
  let p = { req; sem = Semaphore.Binary.make false; reply = Proto.Failed "server stopping" } in
  let accepted =
    locked t (fun () ->
        if t.stopping then false
        else begin
          Queue.push p t.queue;
          Condition.signal t.nonempty;
          true
        end)
  in
  if accepted then Semaphore.Binary.acquire p.sem;
  p.reply

(* --- connection handling ------------------------------------------------- *)

let initiate_stop t =
  let conns =
    locked t (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          Condition.broadcast t.nonempty;
          t.conns
        end)
  in
  (* Wake the acceptor out of [accept] and handlers out of [recv]; the
     sockets deliver end-of-stream, the threads clean up and exit. *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns

let handle_request t ~slot = function
  | Proto.Ping -> Proto.Reply "pong"
  | Proto.Query text ->
      with_snapshot t ~slot (fun snap ->
          let r = serve_query snap text in
          locked t (fun () -> t.n_reads <- t.n_reads + 1);
          r)
  | Proto.Search { base; scope; filter } ->
      with_snapshot t ~slot (fun snap ->
          let r = serve_search snap ~base ~scope ~filter in
          locked t (fun () -> t.n_reads <- t.n_reads + 1);
          r)
  | Proto.Stats -> Proto.Reply (stats_text (stats t))
  | (Proto.Apply _ | Proto.Checkpoint) as req -> enqueue t req
  | Proto.Shutdown -> Proto.Reply "stopping"

let client_loop t fd slot =
  let rec loop () =
    match Conn.recv fd with
    | Ok None | Error _ -> ()  (* clean close, torn frame: drop the conn *)
    | Ok (Some payload) -> (
        match Proto.decode_request payload with
        | Error e ->
            Conn.send fd (Proto.encode_response (Proto.Failed e));
            loop ()
        | Ok req ->
            let resp = handle_request t ~slot req in
            Conn.send fd (Proto.encode_response resp);
            if req = Proto.Shutdown then initiate_stop t else loop ())
  in
  (try loop () with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.free_slots := slot :: !(t.free_slots);
      t.n_clients <- t.n_clients - 1;
      t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns)

let acceptor_loop t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error _ -> ()  (* listener shut down: stop *)
    | fd, _ ->
        if locked t (fun () -> t.stopping) then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          ())
        else begin
          let slot =
            locked t (fun () ->
                match !(t.free_slots) with
                | [] -> None
                | s :: rest ->
                    t.free_slots := rest;
                    t.n_clients <- t.n_clients + 1;
                    Some s)
          in
          (match slot with
          | None ->
              (* full: refuse politely — one response frame, then close *)
              (try
                 Conn.send fd (Proto.encode_response (Proto.Failed "server full"))
               with Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())
          | Some slot ->
              let th = Thread.create (fun () -> client_loop t fd slot) () in
              locked t (fun () -> t.conns <- (fd, th) :: t.conns));
          loop ()
        end
  in
  loop ()

(* --- lifecycle ----------------------------------------------------------- *)

let start ?(host = "127.0.0.1") ?(port = 0) ?(batch_max = 64)
    ?(max_clients = 64) store =
  if batch_max < 1 then invalid_arg "Server.start: batch_max < 1";
  if max_clients < 1 then invalid_arg "Server.start: max_clients < 1";
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let snap = Directory.snapshot (Store.directory store) in
  let t =
    {
      store;
      listen_fd;
      port;
      batch_max;
      current = Atomic.make snap;
      epoch = Epoch.create ~slots:max_clients;
      free_slots = ref (List.init max_clients Fun.id);
      queue = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      conns = [];
      acceptor = None;
      writer = None;
      n_clients = 0;
      n_reads = 0;
      n_writes_ok = 0;
      n_writes_rejected = 0;
      n_batches = 0;
      n_batched = 0;
      n_max_batch = 0;
    }
  in
  t.writer <- Some (Thread.create writer_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let stop t = initiate_stop t

let wait t =
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.writer;
  let conns = locked t (fun () -> t.conns) in
  List.iter (fun (_, th) -> Thread.join th) conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
