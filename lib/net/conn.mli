(** Framed messages over a stream socket.

    Each message is one {!Bounds_store.Frame} ([len][crc][payload]) —
    the same framing as the write-ahead log, so torn and corrupt input
    is classified by the same decoder.  Blocking; exceptions from the
    socket layer ([Unix.Unix_error], e.g. [EPIPE] on send to a closed
    peer) propagate to the caller. *)

(** [send fd payload] writes one whole frame (short writes retried). *)
val send : Unix.file_descr -> string -> unit

(** [recv fd] reads one whole frame.  [Ok None] is a clean close
    (end-of-stream before the first header byte); [Error] is a torn or
    corrupt frame (mid-frame close, oversize or negative length, CRC
    mismatch) — the connection is unusable after it. *)
val recv : Unix.file_descr -> (string option, string) result

(** {!recv} with a clean close folded into [Error "connection closed"] —
    for clients that expect a response. *)
val recv_or_error : Unix.file_descr -> (string, string) result

(** Largest accepted payload (64 MiB): a corrupt length field must not
    become a giant allocation. *)
val max_payload : int
