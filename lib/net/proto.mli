(** Wire protocol of the directory server.

    One request or response per {!Conn} frame; payloads are a small
    line-oriented text (verb first, operands after), so a session is
    inspectable with nothing fancier than a frame decoder.  Operand
    lines of [Search] (scope, base) must be newline-free; the trailing
    operand of [Query]/[Apply]/[Search] is the {e rest} of the payload
    and may span lines (LDIF change records do).

    Decoding is total: malformed payloads return [Error], never raise —
    the round-trip law [decode (encode r) = Ok r] holds for every value
    whose line-bound operands are newline-free, and is property-tested
    in [test_net].

    Replication rides the same framing: a subscriber sends {!Hello}
    and {!Subscribe} as ordinary requests, after which the server turns
    the connection into a one-way feed of {!stream} messages.  Shipped
    records reuse the {!Bounds_store.Codec} transaction encoding that
    sits in the WAL — wire and log share one byte format, so the frame
    CRC that vouches for a logged record vouches for a shipped one. *)

open Bounds_model

(** Protocol version, compared in the {!Hello} handshake.  Mismatched
    peers fail fast with [Failed] instead of mis-decoding each other. *)
val version : int

(** What the connecting peer intends to be: a [Reader] issues
    request/response traffic; a [Replica] will {!Subscribe} to the
    replication feed (only honoured by a primary serving with
    replication enabled). *)
type role = Reader | Replica

type request =
  | Ping
  | Query of string
      (** hierarchical selection query, as the query parser reads it *)
  | Search of { base : string option; scope : string; filter : string }
      (** LDAP-style scoped search; [base = None] means the whole
          forest *)
  | Apply of string
      (** one write transaction: LDIF change records, resolved and
          admitted atomically by the writer at commit time *)
  | Stats
  | Checkpoint  (** compact the store (serialized with commits) *)
  | Shutdown  (** stop the daemon once in-flight work drains *)
  | Hello of { version : int; role : role }
      (** handshake: declare protocol version and role; the server
          replies [Failed] on a version mismatch and the client must
          drop the connection *)
  | Subscribe of { from_lsn : int }
      (** enter the replication feed, starting after [from_lsn] ([-1]
          for everything, forcing a {!Boot} bootstrap) *)

type response = Reply of string | Failed of string

(** One message on the replication feed (server → subscriber only). *)
type stream =
  | Ship of { lsn : int; ops : Update.op list }
      (** an acknowledged record, in lsn order *)
  | Mark of { lsn : int }
      (** the primary compacted at [lsn]; replicas may fold their own
          logs on the same beat *)
  | Boot of { lsn : int; schema : string; checkpoint : string }
      (** bootstrap package for a subscriber the logs can no longer
          catch up (its lsn predates the primary's base checkpoint) *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
val encode_stream : stream -> string
val decode_stream : string -> (stream, string) result

(** The verb keyword, for logs and counters. *)
val request_verb : request -> string
