(** Wire protocol of the directory server.

    One request or response per {!Conn} frame; payloads are a small
    line-oriented text (verb first, operands after), so a session is
    inspectable with nothing fancier than a frame decoder.  Operand
    lines of [Search] (scope, base) must be newline-free; the trailing
    operand of [Query]/[Apply]/[Search] is the {e rest} of the payload
    and may span lines (LDIF change records do).

    Decoding is total: malformed payloads return [Error], never raise —
    the round-trip law [decode (encode r) = Ok r] holds for every value
    whose line-bound operands are newline-free, and is property-tested
    in [test_net]. *)

type request =
  | Ping
  | Query of string
      (** hierarchical selection query, as the query parser reads it *)
  | Search of { base : string option; scope : string; filter : string }
      (** LDAP-style scoped search; [base = None] means the whole
          forest *)
  | Apply of string
      (** one write transaction: LDIF change records, resolved and
          admitted atomically by the writer at commit time *)
  | Stats
  | Checkpoint  (** compact the store (serialized with commits) *)
  | Shutdown  (** stop the daemon once in-flight work drains *)

type response = Reply of string | Failed of string

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** The verb keyword, for logs and counters. *)
val request_verb : request -> string
