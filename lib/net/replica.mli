(** The replica daemon: a read-only directory server fed by WAL
    shipment from a primary ({!Server} started with [replicate:true]).

    The feeder thread subscribes from the replica's last durable lsn
    and applies every shipped record through the trusted replay path —
    admission happened when the primary acknowledged the record
    (Theorem 4.1's admission-at-acknowledge argument), so the replica
    only re-checks the frame CRC, not legality.  Each applied record
    publishes a fresh immutable snapshot; queries and searches are
    served lock-free against it, exactly like the primary's read path.

    Fault behaviour: a dropped or refused connection reconnects with
    exponential {!backoff}, resuming from the durable lsn — shipment
    overlap is skipped by the lsn discipline, never re-applied.  An lsn
    gap, an unappliable record, or a subscription the primary's logs
    can no longer serve forces a bootstrap: the primary ships a
    snapshot package which {!Bounds_store.Store.install_snapshot}
    writes as a fresh store.  A protocol version mismatch is fatal (no
    amount of retrying heals it) and is surfaced through {!stats}. *)

type t

(** Reconnect delay before attempt [n] (0-based): [0.05 · 2ⁿ] seconds,
    capped at 2 s.  Pure — the deterministic tests check the schedule
    without a clock. *)
val backoff : attempt:int -> float

(** [start ~primary_port io] opens (or awaits) the replica store under
    [io], binds the read-side listener, and spawns the feeder and
    acceptor threads.  [host]/[port] are the read side's (defaults
    ["127.0.0.1"]/ephemeral); [primary_host]:[primary_port] locate the
    primary's feed.  [sleep] replaces the reconnect pause (default
    real, interruptible sleeping) — inject a recorder for
    deterministic backoff tests.  A store already under [io] is
    recovered and served immediately, before the primary is even
    reachable. *)
val start :
  ?host:string ->
  ?port:int ->
  ?max_clients:int ->
  ?sleep:(float -> unit) ->
  ?primary_host:string ->
  primary_port:int ->
  Bounds_store.Io.t ->
  t

(** The read side's bound port (useful with [port:0]). *)
val port : t -> int

(** Stop feeding and serving; idempotent.  Also triggered by a
    [Shutdown] request on the read side. *)
val stop : t -> unit

(** Block until the feeder, acceptor and every handler have exited
    (call {!stop} first); closes the replica store. *)
val wait : t -> unit

type stats = {
  clients : int;  (** read connections currently served *)
  reads : int;
  applied_lsn : int;  (** last lsn applied to the replica's store *)
  shipped_lsn : int;
      (** last lsn seen on the feed — replication lag is
          [shipped_lsn − applied_lsn] *)
  connected : bool;  (** a subscription is live right now *)
  reconnects : int;  (** connections lost or refused since start *)
  boots : int;  (** snapshot bootstraps installed *)
  recovered : string;  (** how the replica's own store recovered *)
  last_error : string;  (** most recent feed failure ([""] if none) *)
  snapshots_retired : int;
  snapshots_pending : int;
}

val stats : t -> stats
val stats_text : stats -> string
