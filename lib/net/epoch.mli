(** Epoch-based reclamation of superseded snapshots.

    One writer publishes a sequence of versions; up to [slots] readers
    access the current version without locks.  A reader {e pins} its
    slot (one atomic store of the global epoch) {e before} loading the
    version pointer and unpins after finishing with it; the writer,
    after publishing a replacement, {!retire}s the old version, which
    is dropped once no pinned slot predates it.  Pin/unpin are
    wait-free; retire is writer-only (single writer assumed). *)

type 'a t

(** [create ~slots] makes a domain with [slots] reader slots, all
    idle. *)
val create : slots:int -> 'a t

val slots : 'a t -> int

(** [pin t ~slot] marks [slot] as reading at the current epoch and
    returns that epoch.  Call {e before} loading the shared version
    pointer — that ordering is what makes the sweep sound. *)
val pin : 'a t -> slot:int -> int

val unpin : 'a t -> slot:int -> unit

(** Writer only.  [retire t v] records [v] as superseded at the
    current epoch, advances the epoch, and reclaims every retired
    version that no pinned reader can still hold. *)
val retire : 'a t -> 'a -> unit

(** Retired versions not yet reclaimed (still possibly pinned). *)
val pending : 'a t -> int

(** Totals since {!create}: versions retired, versions reclaimed. *)
val retired : 'a t -> int

val reclaimed : 'a t -> int
val epoch : 'a t -> int
