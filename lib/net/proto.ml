(* Wire protocol of the directory server: one request or response per
   CRC frame (see {!Conn}), the payload a small line-oriented text —
   verb on the first line, operands on the rest.  Decoding is total:
   unknown verbs and missing operands come back as [Error], never an
   exception, so a confused peer cannot take the server down. *)

type request =
  | Ping
  | Query of string  (* hierarchical selection query text *)
  | Search of { base : string option; scope : string; filter : string }
  | Apply of string  (* LDIF change records *)
  | Stats
  | Checkpoint
  | Shutdown

type response = Reply of string | Failed of string

(* --- encoding ----------------------------------------------------------- *)

let encode_request = function
  | Ping -> "ping"
  | Query q -> "query\n" ^ q
  | Search { base; scope; filter } ->
      String.concat "\n"
        [ "search"; scope; Option.value ~default:"" base; filter ]
  | Apply text -> "apply\n" ^ text
  | Stats -> "stats"
  | Checkpoint -> "checkpoint"
  | Shutdown -> "shutdown"

let encode_response = function
  | Reply body -> "ok\n" ^ body
  | Failed msg -> "err\n" ^ msg

(* --- decoding ----------------------------------------------------------- *)

(* first line, rest-after-newline ("" when there is no rest) *)
let cut s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let decode_request payload =
  let verb, rest = cut payload in
  match verb with
  | "ping" -> Ok Ping
  | "query" -> Ok (Query rest)
  | "search" ->
      let scope, rest = cut rest in
      let base, filter = cut rest in
      if scope = "" || filter = "" then
        Error "search needs scope, base (may be empty) and filter lines"
      else
        Ok
          (Search
             { base = (if base = "" then None else Some base); scope; filter })
  | "apply" -> Ok (Apply rest)
  | "stats" -> Ok Stats
  | "checkpoint" -> Ok Checkpoint
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown request %S" other)

let decode_response payload =
  let verb, rest = cut payload in
  match verb with
  | "ok" -> Ok (Reply rest)
  | "err" -> Ok (Failed rest)
  | other -> Error (Printf.sprintf "unknown response %S" other)

(* --- printing (logs, CLI) ------------------------------------------------ *)

let request_verb = function
  | Ping -> "ping"
  | Query _ -> "query"
  | Search _ -> "search"
  | Apply _ -> "apply"
  | Stats -> "stats"
  | Checkpoint -> "checkpoint"
  | Shutdown -> "shutdown"
