(* Wire protocol of the directory server: one request or response per
   CRC frame (see {!Conn}), the payload a small line-oriented text —
   verb on the first line, operands on the rest.  Decoding is total:
   unknown verbs and missing operands come back as [Error], never an
   exception, so a confused peer cannot take the server down.

   Replication rides the same framing: a subscriber sends [Hello] and
   [Subscribe] as ordinary requests, after which the server turns the
   connection into a one-way feed of {!stream} messages (shipped
   records are the {!Bounds_store.Codec} bytes that sit in the WAL —
   the wire and the log share one transaction encoding). *)

open Bounds_model
module Codec = Bounds_store.Codec

(* Bump on any wire-visible change: peers compare it in the hello
   handshake and fail fast instead of mis-decoding each other. *)
let version = 1

type role = Reader | Replica

type request =
  | Ping
  | Query of string  (* hierarchical selection query text *)
  | Search of { base : string option; scope : string; filter : string }
  | Apply of string  (* LDIF change records *)
  | Stats
  | Checkpoint
  | Shutdown
  | Hello of { version : int; role : role }
  | Subscribe of { from_lsn : int }

type response = Reply of string | Failed of string

type stream =
  | Ship of { lsn : int; ops : Update.op list }
  | Mark of { lsn : int }
  | Boot of { lsn : int; schema : string; checkpoint : string }

(* --- encoding ----------------------------------------------------------- *)

let role_to_string = function Reader -> "reader" | Replica -> "replica"

let role_of_string = function
  | "reader" -> Ok Reader
  | "replica" -> Ok Replica
  | other -> Error (Printf.sprintf "unknown role %S" other)

let encode_request = function
  | Ping -> "ping"
  | Query q -> "query\n" ^ q
  | Search { base; scope; filter } ->
      String.concat "\n"
        [ "search"; scope; Option.value ~default:"" base; filter ]
  | Apply text -> "apply\n" ^ text
  | Stats -> "stats"
  | Checkpoint -> "checkpoint"
  | Shutdown -> "shutdown"
  | Hello { version; role } ->
      Printf.sprintf "hello %d %s" version (role_to_string role)
  | Subscribe { from_lsn } -> Printf.sprintf "subscribe %d" from_lsn

let encode_response = function
  | Reply body -> "ok\n" ^ body
  | Failed msg -> "err\n" ^ msg

let encode_stream = function
  | Ship { lsn; ops } -> "ship\n" ^ Codec.encode_txn ~lsn ops
  | Mark { lsn } -> Printf.sprintf "mark %d" lsn
  | Boot { lsn; schema; checkpoint } ->
      (* the verb line carries the schema's byte length so the decoder
         can split the raw rest into schema text and checkpoint blob *)
      Printf.sprintf "boot %d %d\n%s%s" lsn (String.length schema) schema
        checkpoint

(* --- decoding ----------------------------------------------------------- *)

(* first line, rest-after-newline ("" when there is no rest) *)
let cut s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let decode_request payload =
  let verb, rest = cut payload in
  match String.split_on_char ' ' verb with
  | [ "ping" ] -> Ok Ping
  | [ "query" ] -> Ok (Query rest)
  | [ "search" ] ->
      let scope, rest = cut rest in
      let base, filter = cut rest in
      if scope = "" || filter = "" then
        Error "search needs scope, base (may be empty) and filter lines"
      else
        Ok
          (Search
             { base = (if base = "" then None else Some base); scope; filter })
  | [ "apply" ] -> Ok (Apply rest)
  | [ "stats" ] -> Ok Stats
  | [ "checkpoint" ] -> Ok Checkpoint
  | [ "shutdown" ] -> Ok Shutdown
  | [ "hello"; v; r ] -> (
      match (int_of_string_opt v, role_of_string r) with
      | Some version, Ok role -> Ok (Hello { version; role })
      | None, _ -> Error (Printf.sprintf "hello: bad version %S" v)
      | _, Error e -> Error ("hello: " ^ e))
  | [ "subscribe"; l ] -> (
      match int_of_string_opt l with
      | Some from_lsn -> Ok (Subscribe { from_lsn })
      | None -> Error (Printf.sprintf "subscribe: bad lsn %S" l))
  | _ -> Error (Printf.sprintf "unknown request %S" verb)

let decode_response payload =
  let verb, rest = cut payload in
  match verb with
  | "ok" -> Ok (Reply rest)
  | "err" -> Ok (Failed rest)
  | other -> Error (Printf.sprintf "unknown response %S" other)

let decode_stream payload =
  let verb, rest = cut payload in
  match String.split_on_char ' ' verb with
  | [ "ship" ] -> (
      match Codec.decode_txn rest with
      | Ok (lsn, ops) -> Ok (Ship { lsn; ops })
      | Error e -> Error ("ship: " ^ e))
  | [ "mark"; l ] -> (
      match int_of_string_opt l with
      | Some lsn -> Ok (Mark { lsn })
      | None -> Error (Printf.sprintf "mark: bad lsn %S" l))
  | [ "boot"; l; n ] -> (
      match (int_of_string_opt l, int_of_string_opt n) with
      | Some lsn, Some n when n >= 0 && n <= String.length rest ->
          Ok
            (Boot
               {
                 lsn;
                 schema = String.sub rest 0 n;
                 checkpoint = String.sub rest n (String.length rest - n);
               })
      | _ -> Error "boot: bad lsn or schema length")
  | _ -> Error (Printf.sprintf "unknown stream message %S" verb)

(* --- printing (logs, CLI) ------------------------------------------------ *)

let request_verb = function
  | Ping -> "ping"
  | Query _ -> "query"
  | Search _ -> "search"
  | Apply _ -> "apply"
  | Stats -> "stats"
  | Checkpoint -> "checkpoint"
  | Shutdown -> "shutdown"
  | Hello _ -> "hello"
  | Subscribe _ -> "subscribe"
