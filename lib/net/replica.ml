(* The replica daemon: a read-only directory server fed by WAL
   shipment from a primary.

   One {e feeder} thread owns the replica's store.  It connects to the
   primary, says hello as a replica, subscribes from its last durable
   lsn, and applies every shipped record through the trusted replay
   path ({!Store.replica_apply} — the record passed admission when the
   primary acknowledged it, and the frame CRC vouches the bytes are
   unchanged, so legality is not re-checked).  After each applied
   record it publishes a fresh snapshot, so the read side serves
   monotonically advancing, transaction-consistent views.  Dropped
   connections reconnect with exponential backoff, resuming from the
   durable lsn — overlap is skipped by the lsn discipline, a gap or an
   unappliable record forces a fresh bootstrap (subscribe from -1, the
   primary answers with a snapshot package).

   The read side mirrors the primary server's: an acceptor plus one
   handler thread per connection, queries and searches evaluated
   lock-free against the current snapshot under {!Epoch} pinning.
   Writes are refused — the feed is the only write surface. *)

open Bounds_core
module Store = Bounds_store.Store
module Io = Bounds_store.Io

(* Reconnect delay before attempt [n] (0-based): 0.05 s doubling to a
   2 s ceiling — 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2, 2, …  Pure, so the
   test suite checks the schedule without a clock. *)
let backoff ~attempt = min 2.0 (0.05 *. (2. ** float_of_int attempt))

type stats = {
  clients : int;  (** read connections currently served *)
  reads : int;
  applied_lsn : int;  (** last lsn applied to the replica's store *)
  shipped_lsn : int;  (** last lsn seen on the feed (lag = shipped − applied) *)
  connected : bool;  (** a subscription is live right now *)
  reconnects : int;  (** connections lost or refused since start *)
  boots : int;  (** snapshot bootstraps installed *)
  recovered : string;  (** how the replica's own store recovered *)
  last_error : string;  (** most recent feed failure ("" if none) *)
  snapshots_retired : int;
  snapshots_pending : int;
}

type t = {
  io : Io.t;
  primary_host : string;
  primary_port : int;
  listen_fd : Unix.file_descr;
  port : int;
  current : Directory.Snapshot.t option Atomic.t;
  epoch : Directory.Snapshot.t Epoch.t;
  free_slots : int list ref;  (* guarded by [m] *)
  m : Mutex.t;
  sleep : (float -> unit) option;  (* injectable for deterministic tests *)
  mutable store : Store.t option;  (* owned by the feeder thread *)
  mutable pfd : Unix.file_descr option;  (* live primary connection *)
  mutable stopping : bool;
  mutable conns : (Unix.file_descr * Thread.t) list;  (* guarded by [m] *)
  mutable feeder : Thread.t option;
  mutable acceptor : Thread.t option;
  (* feed progress, guarded by [m] (plain ints — readers only report) *)
  mutable applied_lsn : int;
  mutable shipped_lsn : int;
  mutable connected : bool;
  mutable n_reconnects : int;
  mutable n_boots : int;
  mutable recovered : string;
  mutable last_error : string;
  mutable n_clients : int;
  mutable n_reads : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let port t = t.port

let stats t =
  locked t (fun () ->
      {
        clients = t.n_clients;
        reads = t.n_reads;
        applied_lsn = t.applied_lsn;
        shipped_lsn = t.shipped_lsn;
        connected = t.connected;
        reconnects = t.n_reconnects;
        boots = t.n_boots;
        recovered = t.recovered;
        last_error = t.last_error;
        snapshots_retired = Epoch.retired t.epoch;
        snapshots_pending = Epoch.pending t.epoch;
      })

let stats_text s =
  Printf.sprintf
    "clients %d\nreads %d\napplied_lsn %d\nshipped_lsn %d\nlag %d\n\
     connected %b\nreconnects %d\nboots %d\nrecovered %s\nlast_error %s\n\
     snapshots_retired %d\nsnapshots_pending %d"
    s.clients s.reads s.applied_lsn s.shipped_lsn
    (max 0 (s.shipped_lsn - s.applied_lsn))
    s.connected s.reconnects s.boots s.recovered
    (if s.last_error = "" then "-" else s.last_error)
    s.snapshots_retired s.snapshots_pending

(* --- feed side ----------------------------------------------------------- *)

let tail_line = function
  | Store.Clean -> None
  | Store.Recovered_at { offset; reason } ->
      Some (Printf.sprintf "recovered_at %d (%s)" offset reason)

let report_line (r : Store.report) =
  match
    List.filter_map Fun.id
      [
        Option.map (( ^ ) "delta ") (tail_line r.delta_tail);
        Option.map (( ^ ) "wal ") (tail_line r.tail);
      ]
  with
  | [] -> "clean"
  | l -> String.concat "; " l

let publish t store =
  let snap = Directory.snapshot (Store.directory store) in
  match Atomic.exchange t.current (Some snap) with
  | None -> ()
  | Some old -> Epoch.retire t.epoch old

(* Interruptible pause: chop real sleeps so [stop] is never stuck
   behind a full backoff delay.  An injected [sleep] receives the whole
   delay in one call — the deterministic tests record the schedule. *)
let pause t d =
  match t.sleep with
  | Some f -> f d
  | None ->
      let rec nap r =
        if r > 0. && not (locked t (fun () -> t.stopping)) then begin
          Unix.sleepf (min 0.05 r);
          nap (r -. 0.05)
        end
      in
      nap d

let fail t msg = locked t (fun () -> t.last_error <- msg)

(* One request/response exchange on the primary connection (the feed
   protocol starts as ordinary request/response before it goes
   one-way). *)
let exchange fd req =
  match Conn.send fd (Proto.encode_request req) with
  | exception Unix.Unix_error (err, _, _) ->
      Error ("send: " ^ Unix.error_message err)
  | () -> (
      match Conn.recv_or_error fd with
      | exception Unix.Unix_error (err, _, _) ->
          Error ("recv: " ^ Unix.error_message err)
      | Error _ as e -> e
      | Ok payload -> (
          match Proto.decode_response payload with
          | Ok (Proto.Reply body) -> Ok body
          | Ok (Proto.Failed msg) -> Error msg
          | Error e -> Error e))

let connect_primary t =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_of_string t.primary_host, t.primary_port))
  with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s:%d: %s" t.primary_host t.primary_port
           (Unix.error_message err))

(* Install a shipped bootstrap package: close whatever store we had,
   write the snapshot as a fresh store directory, re-open it through
   the trusted path, publish. *)
let install_boot t ~lsn ~schema ~checkpoint =
  (match t.store with Some s -> Store.close s | None -> ());
  t.store <- None;
  match Store.install_snapshot t.io ~schema ~checkpoint with
  | Error e -> Error ("bootstrap: " ^ e)
  | Ok () -> (
      match Store.open_ t.io with
      | Error e -> Error ("bootstrap reopen: " ^ Store.error_to_string e)
      | Ok (s, report) ->
          t.store <- Some s;
          locked t (fun () ->
              t.n_boots <- t.n_boots + 1;
              t.applied_lsn <- lsn;
              t.shipped_lsn <- max t.shipped_lsn lsn;
              t.recovered <- report_line report);
          publish t s;
          Ok ())

(* Drain the feed until the connection drops or the daemon stops.
   [`Reboot] means the stream and our store disagree (lsn gap,
   unappliable record, undecodable message): drop the connection and
   re-subscribe from -1 for a fresh bootstrap. *)
let drain t fd =
  let rec loop () =
    if locked t (fun () -> t.stopping) then `Stop
    else
      match Conn.recv fd with
      | Ok None -> `Reconnect  (* primary closed cleanly *)
      | Error _ -> `Reconnect  (* torn mid-frame: same recovery path *)
      | exception Unix.Unix_error _ -> `Reconnect
      | Ok (Some payload) -> (
          match Proto.decode_stream payload with
          | Error e -> `Reboot ("stream: " ^ e)
          | Ok (Proto.Ship { lsn; ops }) -> (
              locked t (fun () -> t.shipped_lsn <- max t.shipped_lsn lsn);
              match t.store with
              | None -> `Reboot "shipped record before any bootstrap"
              | Some s -> (
                  match Store.replica_apply s ~lsn ops with
                  | Ok `Applied ->
                      locked t (fun () -> t.applied_lsn <- lsn);
                      publish t s;
                      loop ()
                  | Ok `Duplicate -> loop ()
                  | Error e -> `Reboot e))
          | Ok (Proto.Mark { lsn = _ }) ->
              (* fold our own log on the primary's compaction beat *)
              (match t.store with Some s -> Store.checkpoint s | None -> ());
              loop ()
          | Ok (Proto.Boot { lsn; schema; checkpoint }) -> (
              locked t (fun () -> t.shipped_lsn <- max t.shipped_lsn lsn);
              match install_boot t ~lsn ~schema ~checkpoint with
              | Ok () -> loop ()
              | Error e -> `Reboot e))
  in
  loop ()

let feeder_loop t =
  let attempt = ref 0 in
  let force_boot = ref false in
  let fatal = ref false in
  while not (locked t (fun () -> t.stopping)) && not !fatal do
    if !attempt > 0 then pause t (backoff ~attempt:(!attempt - 1));
    if not (locked t (fun () -> t.stopping)) then begin
      incr attempt;
      match connect_primary t with
      | Error e ->
          fail t e;
          locked t (fun () -> t.n_reconnects <- t.n_reconnects + 1)
      | Ok fd -> (
          locked t (fun () -> t.pfd <- Some fd);
          let close () =
            locked t (fun () ->
                t.pfd <- None;
                t.connected <- false);
            try Unix.close fd with Unix.Unix_error _ -> ()
          in
          match
            exchange fd
              (Proto.Hello { version = Proto.version; role = Proto.Replica })
          with
          | Error e ->
              (* a version mismatch cannot heal by retrying: stop the
                 feed and surface the reason through stats *)
              fail t ("hello: " ^ e);
              close ();
              fatal := true
          | Ok _ -> (
              let from_lsn =
                if !force_boot then -1
                else match t.store with Some s -> Store.lsn s | None -> -1
              in
              match exchange fd (Proto.Subscribe { from_lsn }) with
              | Error e ->
                  fail t ("subscribe: " ^ e);
                  close ();
                  locked t (fun () -> t.n_reconnects <- t.n_reconnects + 1)
              | Ok _ -> (
                  attempt := 0;
                  force_boot := false;
                  locked t (fun () -> t.connected <- true);
                  let outcome = drain t fd in
                  close ();
                  match outcome with
                  | `Stop -> ()
                  | `Reconnect ->
                      fail t "feed connection lost";
                      locked t (fun () -> t.n_reconnects <- t.n_reconnects + 1)
                  | `Reboot e ->
                      fail t e;
                      force_boot := true;
                      locked t (fun () -> t.n_reconnects <- t.n_reconnects + 1))))
    end
  done

(* --- read side ------------------------------------------------------------ *)

let with_snapshot t ~slot f =
  ignore (Epoch.pin t.epoch ~slot);
  Fun.protect
    ~finally:(fun () -> Epoch.unpin t.epoch ~slot)
    (fun () ->
      match Atomic.get t.current with
      | None -> Proto.Failed "replica not yet synchronized"
      | Some snap -> f snap)

let initiate_stop t =
  let to_shutdown =
    locked t (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          let fds = List.map fst t.conns in
          match t.pfd with Some fd -> fd :: fds | None -> fds
        end)
  in
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    to_shutdown

let handle_request t ~slot = function
  | Proto.Ping -> Proto.Reply "pong"
  | Proto.Query text ->
      with_snapshot t ~slot (fun snap ->
          let r = Server.serve_query snap text in
          locked t (fun () -> t.n_reads <- t.n_reads + 1);
          r)
  | Proto.Search { base; scope; filter } ->
      with_snapshot t ~slot (fun snap ->
          let r = Server.serve_search snap ~base ~scope ~filter in
          locked t (fun () -> t.n_reads <- t.n_reads + 1);
          r)
  | Proto.Stats -> Proto.Reply (stats_text (stats t))
  | Proto.Apply _ | Proto.Checkpoint | Proto.Subscribe _ ->
      Proto.Failed "read-only replica"
  | Proto.Shutdown -> Proto.Reply "stopping"
  | Proto.Hello _ -> Proto.Failed "unexpected handshake request"

let client_loop t fd slot =
  let rec loop () =
    match Conn.recv fd with
    | Ok None | Error _ -> ()
    | Ok (Some payload) -> (
        match Proto.decode_request payload with
        | Error e ->
            Conn.send fd (Proto.encode_response (Proto.Failed e));
            loop ()
        | Ok (Proto.Hello { version; role = _ }) ->
            if version <> Proto.version then
              Conn.send fd
                (Proto.encode_response
                   (Proto.Failed
                      (Printf.sprintf
                         "protocol version mismatch: server %d, client %d"
                         Proto.version version)))
            else begin
              Conn.send fd
                (Proto.encode_response
                   (Proto.Reply (Printf.sprintf "hello %d" Proto.version)));
              loop ()
            end
        | Ok req ->
            let resp = handle_request t ~slot req in
            Conn.send fd (Proto.encode_response resp);
            if req = Proto.Shutdown then initiate_stop t else loop ())
  in
  (try loop () with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.free_slots := slot :: !(t.free_slots);
      t.n_clients <- t.n_clients - 1;
      t.conns <- List.filter (fun (fd', _) -> fd' != fd) t.conns)

let acceptor_loop t =
  let rec loop () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        if locked t (fun () -> t.stopping) then (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          ())
        else begin
          let slot =
            locked t (fun () ->
                match !(t.free_slots) with
                | [] -> None
                | s :: rest ->
                    t.free_slots := rest;
                    t.n_clients <- t.n_clients + 1;
                    Some s)
          in
          (match slot with
          | None ->
              (try
                 Conn.send fd (Proto.encode_response (Proto.Failed "server full"))
               with Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())
          | Some slot ->
              let th = Thread.create (fun () -> client_loop t fd slot) () in
              locked t (fun () -> t.conns <- (fd, th) :: t.conns));
          loop ()
        end
  in
  loop ()

(* --- lifecycle ------------------------------------------------------------ *)

let start ?(host = "127.0.0.1") ?(port = 0) ?(max_clients = 16) ?sleep
    ?(primary_host = "127.0.0.1") ~primary_port io =
  if max_clients < 1 then invalid_arg "Replica.start: max_clients < 1";
  (* same rationale as Server.start: a peer dying mid-write must
     surface as EPIPE, not kill the daemon *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let t =
    {
      io;
      primary_host;
      primary_port;
      listen_fd;
      port;
      current = Atomic.make None;
      epoch = Epoch.create ~slots:max_clients;
      free_slots = ref (List.init max_clients Fun.id);
      m = Mutex.create ();
      sleep;
      store = None;
      pfd = None;
      stopping = false;
      conns = [];
      feeder = None;
      acceptor = None;
      applied_lsn = -1;
      shipped_lsn = -1;
      connected = false;
      n_reconnects = 0;
      n_boots = 0;
      recovered = "fresh";
      last_error = "";
      n_clients = 0;
      n_reads = 0;
    }
  in
  (* Recover any store a previous incarnation left behind, so reads
     are served (and the subscription resumes from the durable lsn)
     before the primary is even reachable.  A store too damaged to
     open just means the first subscription bootstraps. *)
  if Store.exists io then begin
    match Store.open_ io with
    | Ok (s, report) ->
        t.store <- Some s;
        t.applied_lsn <- Store.lsn s;
        t.shipped_lsn <- Store.lsn s;
        t.recovered <- report_line report;
        publish t s
    | Error e -> t.last_error <- "open: " ^ Store.error_to_string e
  end;
  t.feeder <- Some (Thread.create feeder_loop t);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  t

let stop t = initiate_stop t

let wait t =
  Option.iter Thread.join t.acceptor;
  Option.iter Thread.join t.feeder;
  let conns = locked t (fun () -> t.conns) in
  List.iter (fun (_, th) -> Thread.join th) conns;
  (match t.store with Some s -> Store.close s | None -> ());
  t.store <- None;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
