(* Epoch-based reclamation of superseded snapshots.

   Readers are wait-free: to pin, a reader publishes the global epoch
   into its own slot (one Atomic.set) and then loads the current
   snapshot pointer; to unpin it stores [idle].  The single writer, on
   publishing version v+1, tags the superseded snapshot v with the
   epoch it was current at, advances the global epoch, and sweeps: a
   retired snapshot is dropped once every pinned slot is past its tag —
   no pinned reader can still dereference it, because pinning happens
   {e before} loading the pointer, so a reader pinned at epoch e only
   ever holds snapshots current at e or later.

   "Dropping" here means releasing the reference (the GC does the
   rest); what the structure buys is the observable discipline — how
   many superseded versions are alive at once, surfaced in the server
   stats — and a place where a non-GC resource (a mmap, an arena)
   would be freed. *)

let idle = max_int

type 'a t = {
  slots : int Atomic.t array;
  epoch : int Atomic.t;
  (* writer-only: *)
  mutable retired : (int * 'a) list;  (* (epoch it was superseded at, v) *)
  mutable retired_total : int;
  mutable reclaimed_total : int;
}

let create ~slots =
  {
    slots = Array.init slots (fun _ -> Atomic.make idle);
    epoch = Atomic.make 0;
    retired = [];
    retired_total = 0;
    reclaimed_total = 0;
  }

let slots t = Array.length t.slots

let pin t ~slot =
  let e = Atomic.get t.epoch in
  Atomic.set t.slots.(slot) e;
  e

let unpin t ~slot = Atomic.set t.slots.(slot) idle

let min_pinned t =
  Array.fold_left (fun m s -> min m (Atomic.get s)) idle t.slots

(* Writer side.  [retire t v] marks [v] superseded as of the current
   epoch, advances the epoch, and sweeps.  The sweep also runs the
   hysteresis for free: with no readers pinned, everything retired so
   far drops immediately. *)
let sweep t =
  let floor = min_pinned t in
  let keep, drop = List.partition (fun (e, _) -> e >= floor) t.retired in
  t.retired <- keep;
  t.reclaimed_total <- t.reclaimed_total + List.length drop

let retire t v =
  let e = Atomic.get t.epoch in
  t.retired <- (e, v) :: t.retired;
  t.retired_total <- t.retired_total + 1;
  Atomic.set t.epoch (e + 1);
  sweep t

let pending t = List.length t.retired
let retired t = t.retired_total
let reclaimed t = t.reclaimed_total
let epoch t = Atomic.get t.epoch
