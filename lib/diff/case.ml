open Bounds_model
open Bounds_core
open Bounds_query

type t = {
  oracle : string;
  seed : int;
  schema : Schema.t option;
  instance : Instance.t option;
  ops : Update.op list;
  query : Query.t option;
  filter : Filter.t option;
  text : string option;
}

let make ~oracle ?(seed = 0) ?schema ?instance ?(ops = []) ?query ?filter ?text () =
  { oracle; seed; schema; instance; ops; query; filter; text }

(* --- size --------------------------------------------------------------- *)

let entry_weight e = 1 + Entry.n_pairs e

let instance_weight inst =
  Instance.fold (fun e n -> n + entry_weight e) inst 0

let op_weight = function
  | Update.Insert { entry; _ } -> 1 + entry_weight entry
  | Update.Delete _ -> 1

let size c =
  (match c.schema with Some s -> Schema.size s | None -> 0)
  + (match c.instance with Some i -> instance_weight i | None -> 0)
  + List.fold_left (fun n op -> n + op_weight op) 0 c.ops
  + (match c.query with Some q -> Query.size q | None -> 0)
  + (match c.filter with Some f -> Filter.size f | None -> 0)
  + match c.text with Some t -> String.length t | None -> 0

(* --- equality ----------------------------------------------------------- *)

let opt_equal eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | _ -> false

let op_equal o1 o2 =
  match (o1, o2) with
  | Update.Insert { parent = p1; entry = e1 }, Update.Insert { parent = p2; entry = e2 }
    ->
      p1 = p2 && Entry.equal e1 e2
  | Update.Delete i, Update.Delete j -> i = j
  | (Update.Insert _ | Update.Delete _), _ -> false

let equal c1 c2 =
  String.equal c1.oracle c2.oracle
  && c1.seed = c2.seed
  && opt_equal Schema.equal c1.schema c2.schema
  && opt_equal Instance.equal c1.instance c2.instance
  && List.length c1.ops = List.length c2.ops
  && List.for_all2 op_equal c1.ops c2.ops
  && opt_equal Query.equal c1.query c2.query
  && opt_equal Filter.equal c1.filter c2.filter
  && opt_equal String.equal c1.text c2.text

(* --- encoding ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let sexp_of_value = function
  | Value.String s -> Sexp.list [ Sexp.atom "s"; Sexp.atom s ]
  | Value.Int n -> Sexp.list [ Sexp.atom "i"; Sexp.atom (string_of_int n) ]
  | Value.Bool b -> Sexp.list [ Sexp.atom "b"; Sexp.atom (string_of_bool b) ]
  | Value.Dn d -> Sexp.list [ Sexp.atom "d"; Sexp.atom d ]

let value_of_sexp s =
  let* l = Sexp.as_list s in
  match l with
  | [ Sexp.Atom "s"; v ] ->
      let* v = Sexp.as_atom v in
      Ok (Value.String v)
  | [ Sexp.Atom "i"; v ] ->
      let* n = Sexp.as_int v in
      Ok (Value.Int n)
  | [ Sexp.Atom "b"; v ] -> (
      let* v = Sexp.as_atom v in
      match bool_of_string_opt v with
      | Some b -> Ok (Value.Bool b)
      | None -> Error (Printf.sprintf "bad boolean %S" v))
  | [ Sexp.Atom "d"; v ] ->
      let* v = Sexp.as_atom v in
      Ok (Value.Dn v)
  | _ -> Error "malformed value"

let sexp_of_entry e =
  Sexp.list
    [
      Sexp.atom "entry";
      Sexp.atom (string_of_int (Entry.id e));
      Sexp.atom (Entry.rdn e);
      Sexp.list
        (List.map
           (fun c -> Sexp.atom (Oclass.to_string c))
           (Oclass.Set.elements (Entry.classes e)));
      Sexp.list
        (List.map
           (fun (a, v) ->
             Sexp.list [ Sexp.atom (Attr.to_string a); sexp_of_value v ])
           (Entry.stored_pairs e));
    ]

let entry_of_sexp s =
  let* l = Sexp.as_list s in
  match l with
  | [ Sexp.Atom "entry"; id; rdn; classes; pairs ] ->
      let* id = Sexp.as_int id in
      let* rdn = Sexp.as_atom rdn in
      let* class_atoms = Sexp.as_list classes in
      let* classes =
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* name = Sexp.as_atom c in
            match Oclass.of_string_opt name with
            | Some cls -> Ok (Oclass.Set.add cls acc)
            | None -> Error (Printf.sprintf "bad class %S" name))
          (Ok Oclass.Set.empty) class_atoms
      in
      let* pair_sexps = Sexp.as_list pairs in
      let* pairs =
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            let* pl = Sexp.as_list p in
            match pl with
            | [ a; v ] -> (
                let* a = Sexp.as_atom a in
                match Attr.of_string_opt a with
                | None -> Error (Printf.sprintf "bad attribute %S" a)
                | Some attr ->
                    let* v = value_of_sexp v in
                    Ok ((attr, v) :: acc))
            | _ -> Error "malformed pair")
          (Ok []) pair_sexps
      in
      if Oclass.Set.is_empty classes then Error "entry with no classes"
      else Ok (Entry.make ~id ~rdn ~classes (List.rev pairs))
  | _ -> Error "malformed entry"

let sexp_of_instance inst =
  let nodes = ref [] in
  Instance.iter_preorder
    (fun ~depth:_ e ->
      let id = Entry.id e in
      let parent = match Instance.parent inst id with Some p -> p | None -> -1 in
      nodes :=
        Sexp.list [ Sexp.atom "node"; Sexp.atom (string_of_int parent); sexp_of_entry e ]
        :: !nodes)
    inst;
  Sexp.list (Sexp.atom "instance" :: List.rev !nodes)

let instance_of_sexp s =
  let* l = Sexp.as_list s in
  match l with
  | Sexp.Atom "instance" :: nodes ->
      List.fold_left
        (fun acc node ->
          let* inst = acc in
          let* nl = Sexp.as_list node in
          match nl with
          | [ Sexp.Atom "node"; parent; entry ] -> (
              let* parent = Sexp.as_int parent in
              let* e = entry_of_sexp entry in
              let parent = if parent < 0 then None else Some parent in
              match Instance.add ~parent e inst with
              | Ok inst -> Ok inst
              | Error err -> Error (Instance.error_to_string err))
          | _ -> Error "malformed node")
        (Ok Instance.empty) nodes
  | _ -> Error "malformed instance"

let sexp_of_op = function
  | Update.Insert { parent; entry } ->
      let parent = match parent with Some p -> p | None -> -1 in
      Sexp.list
        [ Sexp.atom "insert"; Sexp.atom (string_of_int parent); sexp_of_entry entry ]
  | Update.Delete id -> Sexp.list [ Sexp.atom "delete"; Sexp.atom (string_of_int id) ]

let op_of_sexp s =
  let* l = Sexp.as_list s in
  match l with
  | [ Sexp.Atom "insert"; parent; entry ] ->
      let* parent = Sexp.as_int parent in
      let* entry = entry_of_sexp entry in
      Ok (Update.Insert { parent = (if parent < 0 then None else Some parent); entry })
  | [ Sexp.Atom "delete"; id ] ->
      let* id = Sexp.as_int id in
      Ok (Update.Delete id)
  | _ -> Error "malformed op"

let rec sexp_of_filter = function
  | Filter.Present a -> Sexp.list [ Sexp.atom "present"; Sexp.atom (Attr.to_string a) ]
  | Filter.Eq (a, v) ->
      Sexp.list [ Sexp.atom "eq"; Sexp.atom (Attr.to_string a); Sexp.atom v ]
  | Filter.Ge (a, v) ->
      Sexp.list [ Sexp.atom "ge"; Sexp.atom (Attr.to_string a); Sexp.atom v ]
  | Filter.Le (a, v) ->
      Sexp.list [ Sexp.atom "le"; Sexp.atom (Attr.to_string a); Sexp.atom v ]
  | Filter.Substr (a, { initial; any; final }) ->
      let opt name = function
        | None -> Sexp.list [ Sexp.atom name ]
        | Some v -> Sexp.list [ Sexp.atom name; Sexp.atom v ]
      in
      Sexp.list
        [
          Sexp.atom "substr";
          Sexp.atom (Attr.to_string a);
          opt "initial" initial;
          Sexp.list (Sexp.atom "any" :: List.map Sexp.atom any);
          opt "final" final;
        ]
  | Filter.And fs -> Sexp.list (Sexp.atom "and" :: List.map sexp_of_filter fs)
  | Filter.Or fs -> Sexp.list (Sexp.atom "or" :: List.map sexp_of_filter fs)
  | Filter.Not f -> Sexp.list [ Sexp.atom "not"; sexp_of_filter f ]

let attr_of_atom s =
  let* a = Sexp.as_atom s in
  match Attr.of_string_opt a with
  | Some attr -> Ok attr
  | None -> Error (Printf.sprintf "bad attribute %S" a)

let rec filter_of_sexp s =
  let* l = Sexp.as_list s in
  let all_filters fs =
    List.fold_left
      (fun acc f ->
        let* acc = acc in
        let* f = filter_of_sexp f in
        Ok (f :: acc))
      (Ok []) fs
    |> Result.map List.rev
  in
  match l with
  | [ Sexp.Atom "present"; a ] ->
      let* a = attr_of_atom a in
      Ok (Filter.Present a)
  | [ Sexp.Atom "eq"; a; v ] ->
      let* a = attr_of_atom a in
      let* v = Sexp.as_atom v in
      Ok (Filter.Eq (a, v))
  | [ Sexp.Atom "ge"; a; v ] ->
      let* a = attr_of_atom a in
      let* v = Sexp.as_atom v in
      Ok (Filter.Ge (a, v))
  | [ Sexp.Atom "le"; a; v ] ->
      let* a = attr_of_atom a in
      let* v = Sexp.as_atom v in
      Ok (Filter.Le (a, v))
  | [ Sexp.Atom "substr"; a; initial; any; final ] ->
      let* a = attr_of_atom a in
      let opt s =
        let* l = Sexp.as_list s in
        match l with
        | [ Sexp.Atom _ ] -> Ok None
        | [ Sexp.Atom _; v ] ->
            let* v = Sexp.as_atom v in
            Ok (Some v)
        | _ -> Error "malformed substring component"
      in
      let* initial = opt initial in
      let* final = opt final in
      let* any_l = Sexp.as_list any in
      let* any =
        match any_l with
        | Sexp.Atom "any" :: parts ->
            List.fold_left
              (fun acc p ->
                let* acc = acc in
                let* p = Sexp.as_atom p in
                Ok (p :: acc))
              (Ok []) parts
            |> Result.map List.rev
        | _ -> Error "malformed any-list"
      in
      Ok (Filter.Substr (a, { Filter.initial; any; final }))
  | Sexp.Atom "and" :: fs ->
      let* fs = all_filters fs in
      Ok (Filter.And fs)
  | Sexp.Atom "or" :: fs ->
      let* fs = all_filters fs in
      Ok (Filter.Or fs)
  | [ Sexp.Atom "not"; f ] ->
      let* f = filter_of_sexp f in
      Ok (Filter.Not f)
  | _ -> Error "malformed filter"

let rec sexp_of_query = function
  | Query.Select f -> Sexp.list [ Sexp.atom "select"; sexp_of_filter f ]
  | Query.Minus (a, b) ->
      Sexp.list [ Sexp.atom "minus"; sexp_of_query a; sexp_of_query b ]
  | Query.Union (a, b) ->
      Sexp.list [ Sexp.atom "union"; sexp_of_query a; sexp_of_query b ]
  | Query.Inter (a, b) ->
      Sexp.list [ Sexp.atom "inter"; sexp_of_query a; sexp_of_query b ]
  | Query.Chi (ax, a, b) ->
      Sexp.list
        [
          Sexp.atom "chi";
          Sexp.atom (Query.axis_to_string ax);
          sexp_of_query a;
          sexp_of_query b;
        ]

let rec query_of_sexp s =
  let* l = Sexp.as_list s in
  match l with
  | [ Sexp.Atom "select"; f ] ->
      let* f = filter_of_sexp f in
      Ok (Query.Select f)
  | [ Sexp.Atom "minus"; a; b ] ->
      let* a = query_of_sexp a in
      let* b = query_of_sexp b in
      Ok (Query.Minus (a, b))
  | [ Sexp.Atom "union"; a; b ] ->
      let* a = query_of_sexp a in
      let* b = query_of_sexp b in
      Ok (Query.Union (a, b))
  | [ Sexp.Atom "inter"; a; b ] ->
      let* a = query_of_sexp a in
      let* b = query_of_sexp b in
      Ok (Query.Inter (a, b))
  | [ Sexp.Atom "chi"; ax; a; b ] ->
      let* ax = Sexp.as_atom ax in
      let* ax = Query.axis_of_string ax in
      let* a = query_of_sexp a in
      let* b = query_of_sexp b in
      Ok (Query.Chi (ax, a, b))
  | _ -> Error "malformed query"

let to_string c =
  let fields = ref [] in
  let add s = fields := s :: !fields in
  (match c.text with
  | Some t -> add (Sexp.list [ Sexp.atom "text"; Sexp.atom t ])
  | None -> ());
  (match c.filter with
  | Some f -> add (Sexp.list [ Sexp.atom "filter"; sexp_of_filter f ])
  | None -> ());
  (match c.query with
  | Some q -> add (Sexp.list [ Sexp.atom "query"; sexp_of_query q ])
  | None -> ());
  if c.ops <> [] then add (Sexp.list (Sexp.atom "ops" :: List.map sexp_of_op c.ops));
  (match c.instance with
  | Some inst -> add (sexp_of_instance inst)
  | None -> ());
  (match c.schema with
  | Some s ->
      add (Sexp.list [ Sexp.atom "schema"; Sexp.atom (Spec_printer.to_string s) ])
  | None -> ());
  add (Sexp.list [ Sexp.atom "seed"; Sexp.atom (string_of_int c.seed) ]);
  add (Sexp.list [ Sexp.atom "oracle"; Sexp.atom c.oracle ]);
  Sexp.to_string (Sexp.list (Sexp.atom "case" :: !fields)) ^ "\n"

let of_string s =
  let* v = Sexp.parse (String.trim s) in
  let* l = Sexp.as_list v in
  match l with
  | Sexp.Atom "case" :: fields ->
      let case =
        ref
          {
            oracle = "";
            seed = 0;
            schema = None;
            instance = None;
            ops = [];
            query = None;
            filter = None;
            text = None;
          }
      in
      let* () =
        List.fold_left
          (fun acc field ->
            let* () = acc in
            let* fl = Sexp.as_list field in
            match fl with
            | [ Sexp.Atom "oracle"; o ] ->
                let* o = Sexp.as_atom o in
                case := { !case with oracle = o };
                Ok ()
            | [ Sexp.Atom "seed"; n ] ->
                let* n = Sexp.as_int n in
                case := { !case with seed = n };
                Ok ()
            | [ Sexp.Atom "schema"; text ] -> (
                let* text = Sexp.as_atom text in
                match Spec_parser.parse text with
                | Ok schema ->
                    case := { !case with schema = Some schema };
                    Ok ()
                | Error e ->
                    Error ("embedded schema: " ^ Spec_parser.error_to_string e))
            | Sexp.Atom "instance" :: _ ->
                let* inst = instance_of_sexp field in
                case := { !case with instance = Some inst };
                Ok ()
            | Sexp.Atom "ops" :: ops ->
                let* ops =
                  List.fold_left
                    (fun acc op ->
                      let* acc = acc in
                      let* op = op_of_sexp op in
                      Ok (op :: acc))
                    (Ok []) ops
                  |> Result.map List.rev
                in
                case := { !case with ops };
                Ok ()
            | [ Sexp.Atom "query"; q ] ->
                let* q = query_of_sexp q in
                case := { !case with query = Some q };
                Ok ()
            | [ Sexp.Atom "filter"; f ] ->
                let* f = filter_of_sexp f in
                case := { !case with filter = Some f };
                Ok ()
            | [ Sexp.Atom "text"; t ] ->
                let* t = Sexp.as_atom t in
                case := { !case with text = Some t };
                Ok ()
            | Sexp.Atom other :: _ -> Error (Printf.sprintf "unknown field %S" other)
            | _ -> Error "malformed field")
          (Ok ()) fields
      in
      if !case.oracle = "" then Error "case without an oracle name" else Ok !case
  | _ -> Error "expected (case ...)"

let pp ppf c =
  Format.fprintf ppf "@[<v>oracle: %s (seed %d)" c.oracle c.seed;
  (match c.schema with
  | Some s ->
      Format.fprintf ppf "@,schema:@,  @[<v>%a@]" Fmt.lines (Spec_printer.to_string s)
  | None -> ());
  (match c.instance with
  | Some inst -> Format.fprintf ppf "@,instance (%d entries):@,  @[<v>%a@]" (Instance.size inst) Instance.pp inst
  | None -> ());
  if c.ops <> [] then begin
    Format.fprintf ppf "@,ops:";
    List.iter (fun op -> Format.fprintf ppf "@,  %a" Update.pp_op op) c.ops
  end;
  (match c.query with
  | Some q -> Format.fprintf ppf "@,query: %s" (Query.to_string q)
  | None -> ());
  (match c.filter with
  | Some f -> Format.fprintf ppf "@,filter: %s" (Filter.to_string f)
  | None -> ());
  (match c.text with
  | Some t -> Format.fprintf ppf "@,text: %S" t
  | None -> ());
  Format.fprintf ppf "@]"
