module Pool = Bounds_par.Pool

type failure = { case : Case.t; message : string; shrink_tests : int }
type report = { oracle : string; budget : int; failures : failure list }

(* Independent PRNG per (oracle, seed, index): a failing case replays from
   the seed alone, whatever the budget or parallelism around it. *)
let case_rng ~seed ~name ~index =
  Random.State.make [| seed; Hashtbl.hash name; index |]

let run_oracle ?(max_failures = 3) ?(log = ignore) ~budget ~seed (o : Oracle.t) =
  let failures = ref [] in
  let n_failures = ref 0 in
  for index = 0 to budget - 1 do
    let rng = case_rng ~seed ~name:o.name ~index in
    let case = o.generate ~seed:index rng in
    match o.check case with
    | Agree -> ()
    | Disagree first_message ->
        incr n_failures;
        if !n_failures <= max_failures then begin
          let shrunk =
            Shrink.minimize ~still_fails:(Oracle.disagrees o) case
          in
          let message =
            match o.check shrunk with
            | Disagree m -> m
            | Agree -> first_message (* flaky check: report the original *)
          in
          let fresh =
            not (List.exists (fun f -> Case.equal f.case shrunk) !failures)
          in
          if fresh then begin
            log
              (Printf.sprintf "%s: case %d disagrees (%d -> %d after shrink): %s"
                 o.name index (Case.size case) (Case.size shrunk) message);
            failures :=
              { case = shrunk; message; shrink_tests = Shrink.last_tests () }
              :: !failures
          end
        end
  done;
  { oracle = o.name; budget; failures = List.rev !failures }

let run ?(jobs = 1) ?oracles ?max_failures ?log ~budget ~seed () =
  let selected =
    match oracles with
    | None -> Ok Oracle.all
    | Some names ->
        List.fold_left
          (fun acc n ->
            match (acc, Oracle.find n) with
            | Error _, _ -> acc
            | Ok _, None ->
                Error
                  (Printf.sprintf "unknown oracle %S (known: %s)" n
                     (String.concat ", " Oracle.names))
            | Ok l, Some o -> Ok (o :: l))
          (Ok []) names
        |> Result.map List.rev
  in
  match selected with
  | Error _ as e -> e
  | Ok selected ->
      let worker o = run_oracle ?max_failures ?log ~budget ~seed o in
      let arr = Array.of_list selected in
      let reports =
        if jobs <= 1 || Array.length arr <= 1 then Array.map worker arr
        else
          Pool.with_pool ~domains:(min jobs (Array.length arr)) (fun pool ->
              Pool.map_array ~pool worker arr)
      in
      Ok (Array.to_list reports)

let total_failures reports =
  List.fold_left (fun n r -> n + List.length r.failures) 0 reports

(* --- regression corpus --------------------------------------------------- *)

let save_case ~dir (case : Case.t) =
  let body = Case.to_string case in
  let name = Printf.sprintf "%s-%04x.case" case.oracle (Hashtbl.hash body land 0xffff) in
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  output_string oc body;
  close_out oc;
  path

let load_corpus ~dir =
  match Sys.readdir dir with
  | exception Sys_error m -> Error m
  | names ->
      let names =
        Array.to_list names
        |> List.filter (fun n -> Filename.check_suffix n ".case")
        |> List.sort compare
      in
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ -> acc
          | Ok cases -> (
              let path = Filename.concat dir name in
              let ic = open_in_bin path in
              let len = in_channel_length ic in
              let body = really_input_string ic len in
              close_in ic;
              match Case.of_string body with
              | Ok case -> Ok ((name, case) :: cases)
              | Error m -> Error (Printf.sprintf "%s: %s" name m)))
        (Ok []) names
      |> Result.map List.rev

let replay (case : Case.t) =
  match Oracle.find case.oracle with
  | None -> Error (Printf.sprintf "unknown oracle %S" case.oracle)
  | Some o -> Ok (o.check case)
