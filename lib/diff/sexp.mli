(** Minimal s-expressions for the regression corpus.

    The corpus must encode counterexamples {e faithfully} — in particular
    more faithfully than the text formats under test (a filter that the
    filter printer renders lossily still needs an exact on-disk form).
    Atoms are printed bare when they are safe identifiers and as quoted
    strings with OCaml-style escapes otherwise, so arbitrary bytes
    round-trip. *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t

(** [to_string s] — single-line rendering; [parse] inverts it for any
    value, including atoms holding arbitrary bytes. *)
val to_string : t -> string

val parse : string -> (t, string) result
val parse_exn : string -> t

(** Decoding helpers used by the case codec. *)
val as_atom : t -> (string, string) result

val as_list : t -> (t list, string) result
val as_int : t -> (int, string) result
