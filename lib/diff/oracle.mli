(** The oracle registry: named pairs of independently-implemented
    behaviours that must agree.

    Each oracle bundles a generator (fresh random case from a seeded
    state), a deterministic checker (does the case expose a
    discrepancy?), and documentation.  The checker is total: crashes in
    either implementation under comparison are reported as
    discrepancies, not propagated. *)

type outcome =
  | Agree
  | Disagree of string
      (** human-readable account of the discrepancy, shown (with the
          shrunk case) in fuzz reports *)

type t = {
  name : string;
  doc : string;  (** one-line description, shown by [ldapschema fuzz --list] *)
  generate : seed:int -> Random.State.t -> Case.t;
  check : Case.t -> outcome;
}

(** All registered oracles, in registration order. *)
val all : t list

val names : string list
val find : string -> t option

(** [disagrees o c] — [check] as a shrinker predicate. *)
val disagrees : t -> Case.t -> bool
