(** Fuzz cases: the universal counterexample tuple.

    Every oracle draws its input from (a subset of) one record: a schema,
    an instance, a transaction, a query, a filter, and a raw text payload.
    A case is what the generic {!Shrink} minimizer walks over and what the
    regression corpus persists.

    Serialization is a single s-expression and is {e faithful} by
    construction — entries, values, filters and queries are encoded
    structurally (not through the LDIF/filter/query printers, which are
    themselves under test), so a counterexample exposing a printer bug
    survives the trip to disk.  The schema is the one exception: it is
    stored as spec-language text, whose round-trip is property-tested
    independently. *)

open Bounds_model
open Bounds_core
open Bounds_query

type t = {
  oracle : string;  (** name of the oracle this case feeds *)
  seed : int;  (** generator seed, for provenance *)
  schema : Schema.t option;
  instance : Instance.t option;
  ops : Update.op list;
  query : Query.t option;
  filter : Filter.t option;
  text : string option;
}

val make :
  oracle:string ->
  ?seed:int ->
  ?schema:Schema.t ->
  ?instance:Instance.t ->
  ?ops:Update.op list ->
  ?query:Query.t ->
  ?filter:Filter.t ->
  ?text:string ->
  unit ->
  t

(** Total structural weight (entries + pairs + ops + query/filter nodes +
    schema size + text length): the measure the shrinker decreases. *)
val size : t -> int

val equal : t -> t -> bool

(** Corpus serialization. *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** Human-readable multi-line rendering for fuzz reports. *)
val pp : Format.formatter -> t -> unit

(** {2 Structural sub-codecs} (exposed for tests) *)

val sexp_of_filter : Filter.t -> Sexp.t
val filter_of_sexp : Sexp.t -> (Filter.t, string) result
val sexp_of_query : Query.t -> Sexp.t
val query_of_sexp : Sexp.t -> (Query.t, string) result
