open Bounds_model
open Bounds_core
open Bounds_query
open Bounds_codec
module Gen = Bounds_workload.Gen
module Pool = Bounds_par.Pool
module Store = Bounds_store.Store
module Store_io = Bounds_store.Io

type outcome = Agree | Disagree of string

type t = {
  name : string;
  doc : string;
  generate : seed:int -> Random.State.t -> Case.t;
  check : Case.t -> outcome;
}

(* --- plumbing ----------------------------------------------------------- *)

let sub rng = Random.State.int rng 0x3FFFFFFF

(* Checkers are total: a crash in either engine under comparison is a
   discrepancy, not a harness failure. *)
let total f c =
  try f c with e -> Disagree ("exception escaped: " ^ Printexc.to_string e)

let with_instance c f =
  match c.Case.instance with Some i -> f i | None -> Agree

let with_text c f = match c.Case.text with Some t -> f t | None -> Agree
let with_query c f = match c.Case.query with Some q -> f q | None -> Agree
let with_filter c f = match c.Case.filter with Some fl -> f fl | None -> Agree
let with_schema c f = match c.Case.schema with Some s -> f s | None -> Agree

let disagreef fmt = Printf.ksprintf (fun m -> Disagree m) fmt

let pp_ids ids =
  "[" ^ String.concat " " (List.map string_of_int ids) ^ "]"

let pp_violations vs =
  match vs with
  | [] -> "(none)"
  | _ -> String.concat "; " (List.map Violation.to_string vs)

(* --- independent strict base64 (the reference side of the b64 oracles) -- *)

let b64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let ref_b64_encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let emit i = Buffer.add_char buf b64_alphabet.[i] in
  let rec go i =
    if i + 3 <= n then begin
      let a = Char.code s.[i] and b = Char.code s.[i + 1] and c = Char.code s.[i + 2] in
      emit (a lsr 2);
      emit (((a land 3) lsl 4) lor (b lsr 4));
      emit (((b land 15) lsl 2) lor (c lsr 6));
      emit (c land 63);
      go (i + 3)
    end
    else if i + 2 = n then begin
      let a = Char.code s.[i] and b = Char.code s.[i + 1] in
      emit (a lsr 2);
      emit (((a land 3) lsl 4) lor (b lsr 4));
      emit ((b land 15) lsl 2);
      Buffer.add_char buf '='
    end
    else if i + 1 = n then begin
      let a = Char.code s.[i] in
      emit (a lsr 2);
      emit ((a land 3) lsl 4);
      Buffer.add_string buf "=="
    end
  in
  go 0;
  Buffer.contents buf

(* Strict decode: alphabet bytes only, length a multiple of four, '=' only
   in the final one or two positions.  Deliberately does {e not} insist on
   zeroed leftover bits — the codec under test is allowed to accept
   non-canonical final sextets, it may not accept structural damage. *)
let ref_b64_decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "length not a multiple of 4"
  else
    let pad =
      if n = 0 then 0
      else if s.[n - 1] = '=' then if s.[n - 2] = '=' then 2 else 1
      else 0
    in
    let bad = ref None in
    String.iteri
      (fun i c ->
        if !bad = None then
          if i < n - pad then (
            if not (String.contains b64_alphabet c) then
              bad := Some (Printf.sprintf "byte %d: %C not in alphabet" i c))
          else if c <> '=' then
            bad := Some (Printf.sprintf "byte %d: expected padding" i))
      s;
    match !bad with
    | Some m -> Error m
    | None ->
        let v c = String.index b64_alphabet c in
        let buf = Buffer.create (n / 4 * 3) in
        let rec go i =
          if i < n then begin
            let a = v s.[i] and b = v s.[i + 1] in
            Buffer.add_char buf (Char.chr ((a lsl 2) lor (b lsr 4)));
            if s.[i + 2] <> '=' then begin
              let c = v s.[i + 2] in
              Buffer.add_char buf (Char.chr (((b land 15) lsl 4) lor (c lsr 2)));
              if s.[i + 3] <> '=' then begin
                let d = v s.[i + 3] in
                Buffer.add_char buf (Char.chr (((c land 3) lsl 6) lor d))
              end
            end;
            go (i + 4)
          end
        in
        go 0;
        Ok (Buffer.contents buf)

(* --- adversarial text generators ---------------------------------------- *)

let pick rng a = a.(Random.State.int rng (Array.length a))

let b64ish_chars = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/= \n."

let random_bytes rng =
  String.init (Random.State.int rng 10) (fun _ -> Char.chr (Random.State.int rng 256))

let b64_text rng =
  match Random.State.int rng 4 with
  | 0 -> ref_b64_encode (random_bytes rng)
  | 1 ->
      (* mutate a valid encoding *)
      let s = ref_b64_encode (random_bytes rng) in
      let s = Bytes.of_string s in
      if Bytes.length s = 0 then "="
      else begin
        let i = Random.State.int rng (Bytes.length s) in
        (match Random.State.int rng 3 with
        | 0 -> Bytes.set s i '='
        | 1 -> Bytes.set s i b64ish_chars.[Random.State.int rng (String.length b64ish_chars)]
        | _ -> ());
        let s = Bytes.to_string s in
        if Random.State.bool rng then s
        else String.sub s 0 (Random.State.int rng (String.length s))
      end
  | _ ->
      String.init
        (Random.State.int rng 13)
        (fun _ -> b64ish_chars.[Random.State.int rng (String.length b64ish_chars)])

let pattern_fragments =
  [| "*"; "**"; "a"; "b"; "xy"; {|\2a|}; {|\28|}; {|\29|}; {|\5c|}; {|\*|}; "*a"; "a*"; "" |]

let filter_attrs = [| "a"; "b"; "cn"; "mail" |]

let rec filter_text ~depth rng =
  let attr () = pick rng filter_attrs in
  let pat () =
    String.concat "" (List.init (1 + Random.State.int rng 3) (fun _ -> pick rng pattern_fragments))
  in
  if depth = 0 || Random.State.int rng 3 > 0 then
    match Random.State.int rng 4 with
    | 0 -> Printf.sprintf "(%s=*)" (attr ())
    | 1 -> Printf.sprintf "(%s=%s)" (attr ()) (pat ())
    | 2 -> Printf.sprintf "(%s>=%s)" (attr ()) (pat ())
    | _ -> Printf.sprintf "(%s<=%s)" (attr ()) (pat ())
  else
    match Random.State.int rng 3 with
    | 0 ->
        let n = 1 + Random.State.int rng 2 in
        Printf.sprintf "(&%s)"
          (String.concat "" (List.init n (fun _ -> filter_text ~depth:(depth - 1) rng)))
    | 1 ->
        let n = 1 + Random.State.int rng 2 in
        Printf.sprintf "(|%s)"
          (String.concat "" (List.init n (fun _ -> filter_text ~depth:(depth - 1) rng)))
    | _ -> Printf.sprintf "(!%s)" (filter_text ~depth:(depth - 1) rng)

(* --- instance canonicalization (id-insensitive) ------------------------- *)

let canon inst =
  List.sort compare
    (Instance.fold
       (fun e acc ->
         ( String.lowercase_ascii (Instance.dn inst (Entry.id e)),
           List.sort compare
             (List.map Oclass.to_string (Oclass.Set.elements (Entry.classes e))),
           List.sort compare
             (List.map
                (fun (a, v) -> (Attr.to_string a, Value.to_string v))
                (Entry.stored_pairs e)) )
         :: acc)
       inst [])

let first_canon_diff c1 c2 =
  let rec go l1 l2 =
    match (l1, l2) with
    | [], [] -> "equal"
    | x :: _, [] -> Printf.sprintf "only left has dn %S" (let d, _, _ = x in d)
    | [], y :: _ -> Printf.sprintf "only right has dn %S" (let d, _, _ = y in d)
    | x :: t1, y :: t2 ->
        if x = y then go t1 t2
        else
          let d1, cs1, ps1 = x and d2, cs2, ps2 = y in
          if d1 <> d2 then Printf.sprintf "dn %S vs %S" d1 d2
          else if cs1 <> cs2 then Printf.sprintf "classes differ at dn %S" d1
          else
            let p1 = List.filter (fun p -> not (List.mem p ps2)) ps1
            and p2 = List.filter (fun p -> not (List.mem p ps1)) ps2 in
            Printf.sprintf "pairs differ at dn %S: left-only %s, right-only %s" d1
              (String.concat ", "
                 (List.map (fun (a, v) -> Printf.sprintf "%s=%S" a v) p1))
              (String.concat ", "
                 (List.map (fun (a, v) -> Printf.sprintf "%s=%S" a v) p2))
  in
  go c1 c2

(* --- the oracles -------------------------------------------------------- *)

let small_instance rng =
  Gen.adversarial_forest ~seed:(sub rng) ~size:(1 + Random.State.int rng 7) ()

let ldif_roundtrip =
  {
    name = "ldif-roundtrip";
    doc = "Ldif.parse ∘ Ldif.to_string preserves the instance (RFC 2849)";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"ldif-roundtrip" ~seed
          ~instance:(small_instance rng) ());
    check =
      total (fun c ->
          with_instance c (fun inst ->
              let text = Ldif.to_string inst in
              match Ldif.parse ~typing:Typing.default text with
              | Error e ->
                  disagreef "printed LDIF does not parse back: %s"
                    (Ldif.error_to_string e)
              | Ok inst' ->
                  let a = canon inst and b = canon inst' in
                  if a = b then Agree
                  else disagreef "instance lost in round-trip: %s" (first_canon_diff a b)));
  }

let b64_strict =
  {
    name = "b64-strict";
    doc = "Ldif.b64_decode agrees with an independent strict RFC 4648 decoder";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"b64-strict" ~seed ~text:(b64_text rng) ());
    check =
      total (fun c ->
          with_text c (fun t ->
              let lenient =
                match Ldif.b64_decode t with
                | v -> Ok v
                | exception Invalid_argument m -> Error m
              in
              match (lenient, ref_b64_decode t) with
              | Ok a, Ok b when String.equal a b -> Agree
              | Error _, Error _ -> Agree
              | Ok a, Ok b -> disagreef "decoders differ on %S: %S vs %S" t a b
              | Ok a, Error m ->
                  disagreef "codec accepts %S -> %S; strict reference rejects (%s)" t a m
              | Error m, Ok b ->
                  disagreef "codec rejects %S (%s); strict reference decodes %S" t m b));
  }

let b64_roundtrip =
  {
    name = "b64-roundtrip";
    doc = "b64_decode ∘ b64_encode is the identity and encodings are canonical";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"b64-roundtrip" ~seed ~text:(random_bytes rng) ());
    check =
      total (fun c ->
          with_text c (fun bytes ->
              let enc = Ldif.b64_encode bytes in
              let ref_enc = ref_b64_encode bytes in
              if not (String.equal enc ref_enc) then
                disagreef "encoders differ on %S: %S vs %S" bytes enc ref_enc
              else
                match Ldif.b64_decode enc with
                | dec when String.equal dec bytes -> Agree
                | dec -> disagreef "decode(encode %S) = %S" bytes dec
                | exception Invalid_argument m ->
                    disagreef "decode rejects own encoding %S: %s" enc m));
  }

let filter_roundtrip =
  {
    name = "filter-roundtrip";
    doc = "Filter_parser.parse ∘ Filter.to_string is the identity on ASTs";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"filter-roundtrip" ~seed
          ~filter:(Gen.random_filter ~depth:(1 + Random.State.int rng 3) rng)
          ());
    check =
      total (fun c ->
          with_filter c (fun f ->
              let text = Filter.to_string f in
              match Filter_parser.parse text with
              | Error e ->
                  disagreef "printed filter %S does not parse: %s" text
                    (Parse_error.to_string e)
              | Ok f' ->
                  if Filter.equal f f' then Agree
                  else
                    disagreef "filter changed in round-trip: %S reparses as %S" text
                      (Filter.to_string f')));
  }

let filter_text =
  {
    name = "filter-text";
    doc = "parse ∘ print ∘ parse is stable on adversarial filter texts";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"filter-text" ~seed
          ~text:(filter_text ~depth:2 rng) ());
    check =
      total (fun c ->
          with_text c (fun t ->
              match Filter_parser.parse t with
              | Error _ -> Agree (* rejecting junk is fine; losing data is not *)
              | Ok f -> (
                  let printed = Filter.to_string f in
                  match Filter_parser.parse printed with
                  | Error e ->
                      disagreef "%S parses, but its printed form %S does not: %s" t
                        printed (Parse_error.to_string e)
                  | Ok f' ->
                      if Filter.equal f f' then Agree
                      else
                        disagreef "%S -> %S -> %S: AST changed" t printed
                          (Filter.to_string f'))));
  }

let query_roundtrip =
  {
    name = "query-roundtrip";
    doc = "Query_parser.parse ∘ Query.to_string is the identity on ASTs";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"query-roundtrip" ~seed
          ~query:(Gen.random_query ~depth:(1 + Random.State.int rng 2) rng)
          ());
    check =
      total (fun c ->
          with_query c (fun q ->
              let text = Query.to_string q in
              match Query_parser.parse text with
              | Error e ->
                  disagreef "printed query %S does not parse: %s" text
                    (Parse_error.to_string e)
              | Ok q' ->
                  if Query.equal q q' then Agree
                  else
                    disagreef "query changed in round-trip: %S reparses as %S" text
                      (Query.to_string q')));
  }

let spec_roundtrip =
  {
    name = "spec-roundtrip";
    doc = "Spec_parser.parse ∘ Spec_printer.to_string is the identity on schemas";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"spec-roundtrip" ~seed
          ~schema:(Gen.random_schema_rich ~seed:(sub rng) ()) ());
    check =
      total (fun c ->
          with_schema c (fun s ->
              let text = Spec_printer.to_string s in
              match Spec_parser.parse text with
              | Error e ->
                  disagreef "printed spec does not parse: %s"
                    (Spec_parser.error_to_string e)
              | Ok s' ->
                  if Schema.equal s s' then Agree
                  else Disagree "schema changed in print/parse round-trip"));
  }

let eval_vs_naive =
  {
    name = "eval-vs-naive";
    doc = "indexed Eval agrees with the specification interpreter Naive_eval";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"eval-vs-naive" ~seed
          ~instance:(small_instance rng)
          ~query:(Gen.random_query ~depth:(1 + Random.State.int rng 2) rng)
          ());
    check =
      total (fun c ->
          with_instance c (fun inst ->
              with_query c (fun q ->
                  let ix = Index.create inst in
                  let a = List.sort compare (Eval.eval_ids ix q) in
                  let b = List.sort compare (Naive_eval.eval inst q) in
                  if a = b then Agree
                  else
                    disagreef "eval %s vs naive %s on %s" (pp_ids a) (pp_ids b)
                      (Query.to_string q))));
  }

let plan_vs_naive =
  {
    name = "plan-vs-naive";
    doc = "cost-based Plan agrees with the specification interpreter Naive_eval";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"plan-vs-naive" ~seed
          ~instance:(small_instance rng)
          ~query:(Gen.random_query ~depth:(1 + Random.State.int rng 2) rng)
          ());
    check =
      total (fun c ->
          with_instance c (fun inst ->
              with_query c (fun q ->
                  let vx = Vindex.create (Index.create inst) in
                  let a = List.sort compare (Plan.eval_ids vx q) in
                  let b = List.sort compare (Naive_eval.eval inst q) in
                  if a = b then Agree
                  else
                    disagreef "plan %s vs naive %s on %s" (pp_ids a) (pp_ids b)
                      (Query.to_string q))));
  }

let legality_case name ~seed rng =
  let schema = Gen.random_schema_rich ~seed:(sub rng) () in
  let instance =
    Gen.mutated_forest
      ~counter:(ref 0)
      ~seed:(sub rng)
      ~size:(2 + Random.State.int rng 8)
      schema
  in
  Case.make ~oracle:name ~seed ~schema ~instance ()

let check_legality ~extensions c =
  with_schema c (fun s ->
      with_instance c (fun inst ->
          let a = List.sort Violation.compare (Legality.check ~extensions s inst) in
          let b =
            List.sort Violation.compare (Naive_legality.check ~extensions s inst)
          in
          if List.equal Violation.equal a b then Agree
          else
            disagreef "engine: %s / naive: %s" (pp_violations a) (pp_violations b)))

let legality_vs_naive =
  {
    name = "legality-vs-naive";
    doc = "linear Legality agrees with quadratic Naive_legality (with §6.1 extensions)";
    generate = (fun ~seed rng -> legality_case "legality-vs-naive" ~seed rng);
    check = total (check_legality ~extensions:true);
  }

let legality_noext_vs_naive =
  {
    name = "legality-noext-vs-naive";
    doc = "Legality agrees with Naive_legality (core Definition 2.6 only)";
    generate =
      (fun ~seed rng -> legality_case "legality-noext-vs-naive" ~seed rng);
    check = total (check_legality ~extensions:false);
  }

let monitor_case name ~seed rng =
  let schema = Gen.random_schema_rich ~seed:(sub rng) () in
  let counter = ref 0 in
  let instance =
    Gen.content_legal_forest ~counter ~seed:(sub rng)
      ~size:(2 + Random.State.int rng 6)
      schema
  in
  let ops =
    Gen.random_ops ~counter ~seed:(sub rng) ~n:(1 + Random.State.int rng 5) schema
      instance
  in
  Case.make ~oracle:name ~seed ~schema ~instance ~ops ()

let monitor_vs_recheck =
  {
    name = "monitor-vs-recheck";
    doc = "incremental Monitor agrees with per-step full recheck (Transaction.check)";
    generate = (fun ~seed rng -> monitor_case "monitor-vs-recheck" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun schema ->
              with_instance c (fun inst ->
                  match Monitor.create schema inst with
                  | Error _ ->
                      if Naive_legality.check schema inst = [] then
                        Disagree "Monitor.create rejects a naive-legal instance"
                      else Agree (* illegal start: out of the monitor's contract *)
                  | Ok m -> (
                      if Naive_legality.check schema inst <> [] then
                        Disagree "Monitor.create accepts a naive-illegal instance"
                      else
                        match (Monitor.apply c.Case.ops m, Transaction.check schema inst c.Case.ops) with
                        | Ok (m', _), Ok final ->
                            if Instance.equal (Monitor.instance m') final then Agree
                            else Disagree "both accept but final instances differ"
                        | Error (Monitor.Bad_ops a), Error (Transaction.Bad_ops b) ->
                            if String.equal a b then Agree
                            else disagreef "Bad_ops messages differ: %S vs %S" a b
                        | ( Error (Monitor.Illegal { step = s1; violations = v1 }),
                            Error (Transaction.Illegal { step = s2; violations = v2; _ }) ) ->
                            let v1 = List.sort Violation.compare v1
                            and v2 = List.sort Violation.compare v2 in
                            if s1 = s2 && List.equal Violation.equal v1 v2 then Agree
                            else
                              disagreef
                                "rejections differ: monitor step %d (%s) vs recheck step %d (%s)"
                                s1 (pp_violations v1) s2 (pp_violations v2)
                        | Ok _, Error r ->
                            disagreef "monitor accepts, recheck rejects: %s"
                              (Format.asprintf "%a" Transaction.pp_rejection r)
                        | Error r, Ok _ ->
                            disagreef "monitor rejects (%s), recheck accepts"
                              (Format.asprintf "%a" Monitor.pp_rejection r)
                        | Error r1, Error r2 ->
                            disagreef "rejection kinds differ: %s vs %s"
                              (Format.asprintf "%a" Monitor.pp_rejection r1)
                              (Format.asprintf "%a" Transaction.pp_rejection r2)))));
  }

let txn_witness =
  {
    name = "txn-witness";
    doc = "an accepted transaction's final instance is naive-legal";
    generate = (fun ~seed rng -> monitor_case "txn-witness" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun schema ->
              with_instance c (fun inst ->
                  (* The Theorem 4.1 contract starts from a legal instance;
                     from an illegal one a net-empty transaction is
                     (correctly) accepted without repairing anything. *)
                  if Naive_legality.check schema inst <> [] then Agree
                  else
                  match Transaction.check schema inst c.Case.ops with
                  | Error _ -> Agree
                  | Ok final ->
                      let vs = Naive_legality.check schema final in
                      if vs = [] then Agree
                      else
                        disagreef "accepted transaction yields illegal instance: %s"
                          (pp_violations vs))));
  }

(* Every per-rank fact the interval-shifting maintenance patches, against
   a from-scratch [Index.create] of the same instance. *)
let index_diff live fresh =
  if Index.n live <> Index.n fresh then
    Some (Printf.sprintf "sizes differ: %d vs %d" (Index.n live) (Index.n fresh))
  else
    let n = Index.n live in
    let rec go r =
      if r = n then None
      else
        let fail what a b =
          Some (Printf.sprintf "rank %d: %s %d vs %d" r what a b)
        in
        let a = Index.id_of_rank live r and b = Index.id_of_rank fresh r in
        if a <> b then fail "id" a b
        else if
          not (Entry.equal (Index.entry_of_rank live r) (Index.entry_of_rank fresh r))
        then Some (Printf.sprintf "rank %d: entries differ" r)
        else
          let a = Index.parent_rank live r and b = Index.parent_rank fresh r in
          if a <> b then fail "parent" a b
          else
            let a = Index.depth_of_rank live r and b = Index.depth_of_rank fresh r in
            if a <> b then fail "depth" a b
            else
              let a = Index.extent_of_rank live r
              and b = Index.extent_of_rank fresh r in
              if a <> b then fail "extent" a b
              else if Index.rank live (Index.id_of_rank live r) <> r then
                Some (Printf.sprintf "rank %d: rank table does not round-trip" r)
              else go (r + 1)
    in
    go 0

let index_apply_vs_rebuild =
  {
    name = "index-apply-vs-rebuild";
    doc =
      "a Directory session's incrementally-patched index/vindex/memo agree \
       with a from-scratch rebuild after each accepted transaction";
    generate =
      (fun ~seed rng -> monitor_case "index-apply-vs-rebuild" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun schema ->
              with_instance c (fun inst ->
                  match Directory.open_ schema inst with
                  | Error _ -> Agree (* illegal start: out of contract *)
                  | Ok dir0 -> (
                      match Directory.apply dir0 c.Case.ops with
                      | _, Admission.Rejected _ ->
                          Agree (* rejection is monitor-vs-recheck's job *)
                      | dir, Admission.Accepted _ -> (
                          let live_ix =
                            Directory.Snapshot.Private.index
                              (Directory.snapshot dir)
                          in
                          let final = Directory.instance dir in
                          let fresh_ix = Index.create final in
                          (* the raw-ops twin of the monitor's graft/prune path *)
                          let base_ix = Index.create inst in
                          let twin_ix = Index.apply c.Case.ops base_ix in
                          match
                            match index_diff live_ix fresh_ix with
                            | Some m -> Some ("live index vs rebuild: " ^ m)
                            | None -> (
                                match index_diff twin_ix fresh_ix with
                                | Some m -> Some ("Index.apply vs rebuild: " ^ m)
                                | None -> (
                                    if
                                      not
                                        (Instance.equal (Index.instance live_ix)
                                           final)
                                    then Some "live index instance diverged"
                                    else
                                      (* chunked COW isolation: producing the
                                         new version must leave the base
                                         version bit-identical *)
                                      match
                                        index_diff base_ix (Index.create inst)
                                      with
                                      | Some m ->
                                          Some ("base version mutated: " ^ m)
                                      | None ->
                                          let old_ix =
                                            Directory.Snapshot.Private.index
                                              (Directory.snapshot dir0)
                                          in
                                          Option.map
                                            (fun m ->
                                              "pre-apply session version \
                                               mutated: " ^ m)
                                            (index_diff old_ix
                                               (Index.create inst))))
                          with
                          | Some m -> Disagree m
                          | None -> (
                              (* patched vindex + migrated memo vs fresh ones,
                                 on the very queries the memo caches *)
                              let fresh_vx = Vindex.create fresh_ix in
                              let qs =
                                List.map
                                  (fun (_, q, _) -> q)
                                  (Translate.all schema.Schema.structure)
                              in
                              let bad =
                                List.find_map
                                  (fun q ->
                                    let live =
                                      Index.ids_of live_ix
                                        (Plan.eval
                                           (Directory.Snapshot.Private.vindex
                                              (Directory.snapshot dir))
                                           q)
                                    in
                                    let fresh =
                                      Index.ids_of fresh_ix (Plan.eval fresh_vx q)
                                    in
                                    let memo =
                                      Index.ids_of live_ix (Directory.query dir q)
                                    in
                                    if live <> fresh then
                                      Some
                                        (Printf.sprintf
                                           "patched vindex %s vs fresh %s on %s"
                                           (pp_ids live) (pp_ids fresh)
                                           (Query.to_string q))
                                    else if memo <> fresh then
                                      Some
                                        (Printf.sprintf
                                           "migrated memo %s vs fresh %s on %s"
                                           (pp_ids memo) (pp_ids fresh)
                                           (Query.to_string q))
                                    else None)
                                  qs
                              in
                              match bad with
                              | Some m -> Disagree m
                              | None -> (
                                  match Directory.validate dir with
                                  | [] -> Agree
                                  | vs ->
                                      disagreef
                                        "accepted session fails its own validate: %s"
                                        (pp_violations vs))))))));
  }

let par_vs_seq_legality =
  {
    name = "par-vs-seq-legality";
    doc = "pooled Legality.check is bit-identical to the sequential engine";
    generate =
      (fun ~seed rng -> legality_case "par-vs-seq-legality" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun s ->
              with_instance c (fun inst ->
                  Pool.with_pool ~domains:2 (fun pool ->
                      let a = Legality.check ~pool s inst in
                      let b = Legality.check s inst in
                      if List.equal Violation.equal a b then Agree
                      else
                        disagreef "parallel: %s / sequential: %s" (pp_violations a)
                          (pp_violations b)))));
  }

let par_vs_seq_eval =
  {
    name = "par-vs-seq-eval";
    doc = "pooled index build + Eval is bit-identical to the sequential path";
    generate =
      (fun ~seed rng ->
        Case.make ~oracle:"par-vs-seq-eval" ~seed
          ~instance:(small_instance rng)
          ~query:(Gen.random_query ~depth:(1 + Random.State.int rng 2) rng)
          ());
    check =
      total (fun c ->
          with_instance c (fun inst ->
              with_query c (fun q ->
                  Pool.with_pool ~domains:2 (fun pool ->
                      let a = Eval.eval_ids ~pool (Index.create ~pool inst) q in
                      let b = Eval.eval_ids (Index.create inst) q in
                      if a = b then Agree
                      else disagreef "parallel %s vs sequential %s" (pp_ids a) (pp_ids b)))));
  }

(* The persisted session and its in-memory twin run the same transactions;
   after a mid-run compaction and a full recovery the store must agree with
   the twin on every observable: acceptance verdicts, the instance itself,
   legality, and the memoized obligation answers. *)
let store_roundtrip =
  {
    name = "store-roundtrip";
    doc =
      "a WAL-persisted session recovers to its in-memory twin (instance, \
       legality, obligation answers)";
    generate = (fun ~seed rng -> monitor_case "store-roundtrip" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun schema ->
              with_instance c (fun inst ->
                  let fs = Store_io.fresh_fs () in
                  match
                    (Store.init (Store_io.mem fs) schema inst,
                     Directory.open_ schema inst)
                  with
                  | Error (Store.Illegal _), Error _ ->
                      Agree (* both refuse an illegal seed: out of contract *)
                  | Error e, _ ->
                      disagreef "store refused what the session accepts: %s"
                        (Store.error_to_string e)
                  | Ok _, Error _ ->
                      Disagree "store accepted what the session refuses"
                  | Ok st, Ok twin0 -> (
                      (* split the ops into two transactions with a
                         compaction between them, so recovery always
                         crosses a checkpoint boundary *)
                      let txns =
                        match c.Case.ops with
                        | [] -> [ [] ]
                        | ops ->
                            let k = (List.length ops + 1) / 2 in
                            [
                              List.filteri (fun i _ -> i < k) ops;
                              List.filteri (fun i _ -> i >= k) ops;
                            ]
                      in
                      let rec drive twin accepted = function
                        | [] -> Ok (twin, accepted)
                        | ops :: rest -> (
                            let store_v = Store.apply st ops in
                            let twin', twin_v = Directory.apply twin ops in
                            if accepted = 0 then Store.checkpoint st;
                            match (store_v, twin_v) with
                            | Admission.Accepted _, Admission.Accepted _ ->
                                drive twin' (accepted + 1) rest
                            | Admission.Rejected _, Admission.Rejected _ ->
                                drive twin accepted rest
                            | Admission.Accepted _, Admission.Rejected { reason; _ }
                              ->
                                Error
                                  (Format.asprintf
                                     "store accepts, twin rejects: %a"
                                     Monitor.pp_rejection reason)
                            | Admission.Rejected { reason; _ }, Admission.Accepted _
                              ->
                                Error
                                  (Format.asprintf
                                     "store rejects, twin accepts: %a"
                                     Monitor.pp_rejection reason))
                      in
                      match drive twin0 0 txns with
                      | Error m -> Disagree m
                      | Ok (twin, accepted) -> (
                          Store.close st;
                          match Store.open_ (Store_io.mem fs) with
                          | Error e ->
                              disagreef "recovery failed: %s"
                                (Store.error_to_string e)
                          | Ok (st', report) -> (
                              let dir = Store.directory st' in
                              let verdict =
                                if report.Store.tail <> Store.Clean then
                                  Some "undamaged log recovered as damaged"
                                else if Store.lsn st' <> accepted then
                                  Some
                                    (Printf.sprintf
                                       "recovered lsn %d, %d transactions \
                                        acknowledged"
                                       (Store.lsn st') accepted)
                                else if
                                  not
                                    (Instance.equal (Directory.instance dir)
                                       (Directory.instance twin))
                                then Some "recovered instance diverged"
                                else
                                  match Directory.validate dir with
                                  | _ :: _ as vs ->
                                      Some
                                        ("recovered session fails validate: "
                                        ^ pp_violations vs)
                                  | [] ->
                                      List.find_map
                                        (fun (_, q, _) ->
                                          let a = Directory.query_ids dir q in
                                          let b = Directory.query_ids twin q in
                                          if a = b then None
                                          else
                                            Some
                                              (Printf.sprintf
                                                 "recovered %s vs twin %s on %s"
                                                 (pp_ids a) (pp_ids b)
                                                 (Query.to_string q)))
                                        (Translate.all schema.Schema.structure)
                              in
                              Store.close st';
                              match verdict with
                              | None -> Agree
                              | Some m -> Disagree m))))));
  }

(* Recovery must not depend on which replay engine walks the tail: the
   checked path re-runs full admission per record, the trusted path
   splices without checks (and past the cost crossover, batches the
   index rebuild) — Theorem 4.1 says the verdicts cannot differ on
   records that were admitted when first acknowledged.  Every case holds
   all three trusted regimes (auto, forced batch, forced incremental)
   against the checked baseline on lsn, instance, legality, and the
   memoized obligation answers. *)
let trusted_replay =
  {
    name = "trusted-replay";
    doc =
      "recovery via trusted replay (auto/batch/incremental ingest) agrees \
       with checked replay (instance, legality, obligation answers)";
    generate = (fun ~seed rng -> monitor_case "trusted-replay" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun schema ->
              with_instance c (fun inst ->
                  let fs = Store_io.fresh_fs () in
                  match Store.init (Store_io.mem fs) schema inst with
                  | Error _ -> Agree (* illegal seed: out of contract *)
                  | Ok st -> (
                      (* one record per op leaves the longest possible
                         tail; a compaction after the first keeps a
                         checkpoint boundary in front of recovery *)
                      List.iteri
                        (fun i op ->
                          ignore (Store.apply st [ op ]);
                          if i = 0 then Store.checkpoint st)
                        c.Case.ops;
                      Store.close st;
                      let recover label ~trusted ?ingest () =
                        match
                          Store.open_ ~trusted ?ingest
                            (Store_io.mem (Store_io.copy_fs fs))
                        with
                        | Error e ->
                            Error (label ^ ": " ^ Store.error_to_string e)
                        | Ok (st', report) ->
                            if report.Store.tail <> Store.Clean then
                              Error
                                (label ^ ": undamaged log recovered as damaged")
                            else Ok st'
                      in
                      match recover "checked" ~trusted:false () with
                      | Error m -> Disagree m
                      | Ok ref_st -> (
                          let ref_dir = Store.directory ref_st in
                          let obligations =
                            Translate.all schema.Schema.structure
                          in
                          let compare_one (label, ingest) =
                            match recover label ~trusted:true ~ingest () with
                            | Error m -> Some m
                            | Ok st' ->
                                let dir = Store.directory st' in
                                let verdict =
                                  if Store.lsn st' <> Store.lsn ref_st then
                                    Some
                                      (Printf.sprintf "%s: lsn %d vs checked %d"
                                         label (Store.lsn st') (Store.lsn ref_st))
                                  else if
                                    not
                                      (Instance.equal (Directory.instance dir)
                                         (Directory.instance ref_dir))
                                  then Some (label ^ ": recovered instance diverged")
                                  else
                                    match Directory.validate dir with
                                    | _ :: _ as vs ->
                                        Some
                                          (label ^ ": fails validate: "
                                          ^ pp_violations vs)
                                    | [] -> (
                                        (* the chunked COW index rebuilt
                                           through recovery must land on
                                           the canonical encoding *)
                                        match
                                          index_diff
                                            (Directory.Snapshot.Private.index
                                               (Directory.snapshot dir))
                                            (Index.create
                                               (Directory.instance dir))
                                        with
                                        | Some m ->
                                            Some
                                              (label
                                             ^ ": recovered index vs rebuild: "
                                             ^ m)
                                        | None ->
                                            List.find_map
                                              (fun (_, q, _) ->
                                                let a =
                                                  Directory.query_ids dir q
                                                in
                                                let b =
                                                  Directory.query_ids ref_dir q
                                                in
                                                if a = b then None
                                                else
                                                  Some
                                                    (Printf.sprintf
                                                       "%s: %s vs checked %s \
                                                        on %s"
                                                       label (pp_ids a)
                                                       (pp_ids b)
                                                       (Query.to_string q)))
                                              obligations)
                                in
                                Store.close st';
                                verdict
                          in
                          let verdict =
                            List.find_map compare_one
                              [
                                ("trusted-auto", `Auto);
                                ("trusted-batch", `Batch);
                                ("trusted-incremental", `Incremental);
                              ]
                          in
                          Store.close ref_st;
                          match verdict with
                          | None -> Agree
                          | Some m -> Disagree m)))));
  }

(* Interning must be semantically invisible: hash-consing changes
   physical identity only, never an answer.  The twin rebuilds the case
   from fresh string copies with the pools disabled ([Intern.share]
   becomes the identity, so nothing it evaluates is pool-canonical),
   drives the same transactions through its own session, and must agree
   with the interned pipeline on acceptance verdicts, the final
   instance, legality, and the obligation answers. *)
let intern_transparency =
  {
    name = "intern-transparency";
    doc =
      "evaluation with interning disabled agrees with the interned path \
       (instance, legality, obligation answers)";
    generate = (fun ~seed rng -> monitor_case "intern-transparency" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun schema ->
              with_instance c (fun inst ->
                  let copy_s s = String.sub s 0 (String.length s) in
                  let copy_value = function
                    | Value.String s -> Value.String (copy_s s)
                    | Value.Dn d -> Value.Dn (copy_s d)
                    | (Value.Int _ | Value.Bool _) as v -> v
                  in
                  let copy_entry e =
                    Entry.make ~id:(Entry.id e) ~rdn:(copy_s (Entry.rdn e))
                      ~classes:
                        (Oclass.set_of_list
                           (List.map
                              (fun cl -> copy_s (Oclass.to_string cl))
                              (Oclass.Set.elements (Entry.classes e))))
                      (List.map
                         (fun (a, v) ->
                           ( Attr.of_string (copy_s (Attr.to_string a)),
                             copy_value v ))
                         (Entry.stored_pairs e))
                  in
                  let copy_instance i0 =
                    let rec add parent acc id =
                      let acc =
                        match
                          Instance.add ~parent (copy_entry (Instance.entry i0 id)) acc
                        with
                        | Ok acc -> acc
                        | Error e -> failwith (Instance.error_to_string e)
                      in
                      List.fold_left (add (Some id)) acc
                        (List.rev (Instance.rev_children i0 id))
                    in
                    List.fold_left (add None) Instance.empty
                      (List.rev (Instance.rev_roots i0))
                  in
                  let copy_op = function
                    | Update.Insert { parent; entry } ->
                        Update.Insert { parent; entry = copy_entry entry }
                    | Update.Delete _ as op -> op
                  in
                  let drive inst ops =
                    match Directory.open_ schema inst with
                    | Error vs -> Error ("illegal seed: " ^ pp_violations vs)
                    | Ok dir0 ->
                        let dir, verdicts =
                          List.fold_left
                            (fun (dir, vs) op ->
                              match Directory.apply dir [ op ] with
                              | dir', Admission.Accepted _ -> (dir', true :: vs)
                              | _, Admission.Rejected _ -> (dir, false :: vs))
                            (dir0, []) ops
                        in
                        let answers =
                          List.map
                            (fun (_, q, _) -> Directory.query_ids dir q)
                            (Translate.all schema.Schema.structure)
                        in
                        Ok
                          ( Directory.instance dir,
                            List.rev verdicts,
                            Directory.validate dir,
                            answers )
                  in
                  let interned = drive inst c.Case.ops in
                  let plain =
                    Intern.with_disabled (fun () ->
                        drive (copy_instance inst) (List.map copy_op c.Case.ops))
                  in
                  match (interned, plain) with
                  | Error _, Error _ -> Agree (* both refuse the seed *)
                  | Error m, Ok _ -> disagreef "only interned refuses the seed: %s" m
                  | Ok _, Error m ->
                      disagreef "only uninterned refuses the seed: %s" m
                  | Ok (i1, v1, l1, a1), Ok (i2, v2, l2, a2) ->
                      if v1 <> v2 then Disagree "acceptance verdicts diverged"
                      else if not (Instance.equal i1 i2) then
                        Disagree "final instances diverged"
                      else if l1 <> l2 then
                        disagreef "legality diverged: %s vs %s" (pp_violations l1)
                          (pp_violations l2)
                      else if a1 <> a2 then Disagree "obligation answers diverged"
                      else Agree)));
  }

(* WAL shipment, with the wire replaced by an in-process queue and an
   adversary pulling the plug: the primary's ship hook feeds a queue
   that only delivers while "connected"; between transactions the
   adversary disconnects, kills the replica outright (close + recover
   from its own files), compacts the primary, and reconnects from the
   replica's durable lsn — sometimes one lsn early, so the duplicate
   path is exercised, and sometimes from before the primary's base
   checkpoint, so the bootstrap path is.  After a final kill, recovery
   and catch-up, the replica must agree with the primary on lsn, the
   instance itself, legality, and every memoized obligation answer. *)
let replica_convergence =
  {
    name = "replica-convergence";
    doc =
      "a WAL-shipped replica converges to the primary across disconnects, \
       kills and bootstraps (lsn, instance, legality, obligation answers)";
    generate = (fun ~seed rng -> monitor_case "replica-convergence" ~seed rng);
    check =
      total (fun c ->
          with_schema c (fun schema ->
              with_instance c (fun inst ->
                  let fs = Store_io.fresh_fs () in
                  match Store.init (Store_io.mem fs) schema inst with
                  | Error _ -> Agree (* illegal seed: out of contract *)
                  | Ok primary -> (
                      let rng =
                        Random.State.make [| c.Case.seed; 0x5EED |]
                      in
                      let rfs = Store_io.fresh_fs () in
                      let rio = Store_io.mem rfs in
                      let replica = ref None in
                      let connected = ref false in
                      let wire : Store.ship Queue.t = Queue.create () in
                      Store.set_ship_hook primary
                        (Some
                           (fun item ->
                             if !connected then Queue.push item wire));
                      let failure = ref None in
                      let failf fmt =
                        Printf.ksprintf
                          (fun m -> if !failure = None then failure := Some m)
                          fmt
                      in
                      let rlsn () =
                        match !replica with Some s -> Store.lsn s | None -> -1
                      in
                      let apply_shipped lsn ops =
                        match !replica with
                        | None -> failf "shipped record before any bootstrap"
                        | Some s -> (
                            match Store.replica_apply s ~lsn ops with
                            | Ok (`Applied | `Duplicate) -> ()
                            | Error e -> failf "replica_apply: %s" e)
                      in
                      let boot () =
                        (match !replica with
                        | Some s -> Store.close s
                        | None -> ());
                        replica := None;
                        let schema_text, checkpoint, _lsn =
                          Store.boot_blob primary
                        in
                        match
                          Store.install_snapshot rio ~schema:schema_text
                            ~checkpoint
                        with
                        | Error e -> failf "install_snapshot: %s" e
                        | Ok () -> (
                            match Store.open_ rio with
                            | Error e ->
                                failf "bootstrap reopen: %s"
                                  (Store.error_to_string e)
                            | Ok (s, _) -> replica := Some s)
                      in
                      let drain () =
                        while not (Queue.is_empty wire) do
                          match Queue.pop wire with
                          | Store.Ship_txn { lsn; ops } -> apply_shipped lsn ops
                          | Store.Ship_mark _ -> (
                              match !replica with
                              | Some s -> Store.checkpoint s
                              | None -> ())
                        done
                      in
                      let disconnect () =
                        connected := false;
                        (* in-flight but undelivered shipment is lost *)
                        Queue.clear wire
                      in
                      let reconnect () =
                        if not !connected then begin
                          (* resuming one lsn early re-ships a record the
                             replica already holds: the duplicate path *)
                          let from =
                            if Random.State.bool rng then rlsn ()
                            else rlsn () - 1
                          in
                          (match Store.records_from primary ~lsn:from with
                          | `Records rs ->
                              List.iter (fun (lsn, ops) -> apply_shipped lsn ops) rs
                          | `Too_old -> boot ());
                          connected := true
                        end
                      in
                      let kill () =
                        match !replica with
                        | None -> disconnect ()
                        | Some s ->
                            disconnect ();
                            Store.close s;
                            (* recover from the replica's own files, like a
                               daemon restart *)
                            replica := None;
                            (match Store.open_ rio with
                            | Error e ->
                                failf "replica recovery: %s"
                                  (Store.error_to_string e)
                            | Ok (s', _) -> replica := Some s')
                      in
                      reconnect ();
                      (* group ops into transactions of one or two; pairs go
                         through [batch] so batch-order shipment is covered *)
                      let rec chunks = function
                        | [] -> []
                        | a :: b :: rest when Random.State.bool rng ->
                            [ a; b ] :: chunks rest
                        | a :: rest -> [ a ] :: chunks rest
                      in
                      List.iter
                        (fun txn ->
                          (match Random.State.int rng 6 with
                          | 0 -> disconnect ()
                          | 1 -> kill ()
                          | 2 ->
                              Store.checkpoint
                                ~full:(Random.State.bool rng)
                                primary
                          | 3 -> reconnect ()
                          | _ -> ());
                          (match txn with
                          | [ _ ] ->
                              List.iter
                                (fun op -> ignore (Store.apply primary [ op ]))
                                txn
                          | _ ->
                              ignore
                                (Store.batch primary (fun () ->
                                     List.iter
                                       (fun op ->
                                         ignore (Store.apply primary [ op ]))
                                       txn)));
                          if !connected then drain ())
                        (chunks c.Case.ops);
                      (* finale: crash the replica once more, recover, catch
                         up, and demand convergence *)
                      kill ();
                      reconnect ();
                      drain ();
                      let verdict =
                        match !failure with
                        | Some m -> Some m
                        | None -> (
                            match !replica with
                            | None -> Some "no replica after final catch-up"
                            | Some s -> (
                                let pdir = Store.directory primary in
                                let rdir = Store.directory s in
                                if Store.lsn s <> Store.lsn primary then
                                  Some
                                    (Printf.sprintf
                                       "replica lsn %d vs primary %d"
                                       (Store.lsn s) (Store.lsn primary))
                                else if
                                  not
                                    (Instance.equal (Directory.instance rdir)
                                       (Directory.instance pdir))
                                then Some "replica instance diverged"
                                else
                                  match Directory.validate rdir with
                                  | _ :: _ as vs ->
                                      Some
                                        ("replica fails validate: "
                                        ^ pp_violations vs)
                                  | [] ->
                                      List.find_map
                                        (fun (_, q, _) ->
                                          let a = Directory.query_ids rdir q in
                                          let b = Directory.query_ids pdir q in
                                          if a = b then None
                                          else
                                            Some
                                              (Printf.sprintf
                                                 "replica %s vs primary %s on \
                                                  %s"
                                                 (pp_ids a) (pp_ids b)
                                                 (Query.to_string q)))
                                        (Translate.all schema.Schema.structure))
                              )
                      in
                      Store.set_ship_hook primary None;
                      (match !replica with
                      | Some s -> Store.close s
                      | None -> ());
                      Store.close primary;
                      match verdict with
                      | None -> Agree
                      | Some m -> Disagree m))));
  }

let all =
  [
    ldif_roundtrip;
    b64_strict;
    b64_roundtrip;
    filter_roundtrip;
    filter_text;
    query_roundtrip;
    spec_roundtrip;
    eval_vs_naive;
    plan_vs_naive;
    legality_vs_naive;
    legality_noext_vs_naive;
    monitor_vs_recheck;
    txn_witness;
    index_apply_vs_rebuild;
    par_vs_seq_legality;
    par_vs_seq_eval;
    store_roundtrip;
    trusted_replay;
    intern_transparency;
    replica_convergence;
  ]

let names = List.map (fun o -> o.name) all
let find name = List.find_opt (fun o -> o.name = name) all

let disagrees o c = match o.check c with Disagree _ -> true | Agree -> false
