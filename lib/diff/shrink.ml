open Bounds_model
open Bounds_core
open Bounds_query

(* --- secondary measure -------------------------------------------------- *)

(* [Case.size] counts structural weight (entries, pairs, ops, AST nodes),
   which value-simplification steps do not decrease.  The shrinker orders
   cases lexicographically by (size, detail) where [detail] is the total
   length of every embedded string, so replacing "some long value" by ""
   is still strictly-decreasing progress. *)

let value_detail = function
  | Value.String s -> String.length s
  | Value.Dn s -> String.length s
  | Value.Int _ | Value.Bool _ -> 1

let entry_detail e =
  String.length (Entry.rdn e)
  + List.fold_left (fun n (_, v) -> n + value_detail v) 0 (Entry.stored_pairs e)

let rec filter_detail = function
  | Filter.Present _ -> 0
  | Filter.Eq (_, v) | Filter.Ge (_, v) | Filter.Le (_, v) -> String.length v
  | Filter.Substr (_, { initial; any; final }) ->
      let o = function Some s -> String.length s + 1 | None -> 0 in
      o initial + o final + List.fold_left (fun n s -> n + String.length s + 1) 0 any
  | Filter.And fs | Filter.Or fs ->
      List.fold_left (fun n f -> n + filter_detail f) 0 fs
  | Filter.Not f -> filter_detail f

let rec query_detail = function
  | Query.Select f -> filter_detail f
  | Query.Minus (a, b) | Query.Union (a, b) | Query.Inter (a, b)
  | Query.Chi (_, a, b) ->
      query_detail a + query_detail b

let detail (c : Case.t) =
  (match c.instance with
  | Some inst -> Instance.fold (fun e n -> n + entry_detail e) inst 0
  | None -> 0)
  + List.fold_left
      (fun n op ->
        n
        + match op with Update.Insert { entry; _ } -> entry_detail entry | _ -> 0)
      0 c.ops
  + (match c.query with Some q -> query_detail q | None -> 0)
  + (match c.filter with Some f -> filter_detail f | None -> 0)
  + match c.text with Some t -> String.length t | None -> 0

let measure c = (Case.size c, detail c)

(* --- sub-term shrinkers ------------------------------------------------- *)

(* Candidates for a string: aggressive first.  Every candidate is strictly
   shorter, so detail strictly decreases. *)
let shrink_string s =
  let n = String.length s in
  if n = 0 then []
  else
    let cands = ref [] in
    let add s' = if not (List.mem s' !cands) then cands := s' :: !cands in
    add "";
    if n > 1 then (
      add (String.sub s 0 (n / 2));
      add (String.sub s (n / 2) (n - n / 2));
      add (String.sub s 0 (n - 1));
      add (String.sub s 1 (n - 1)));
    List.rev !cands

let shrink_value = function
  | Value.String s -> List.map (fun s' -> Value.String s') (shrink_string s)
  | Value.Dn s -> List.map (fun s' -> Value.Dn s') (shrink_string s)
  | Value.Int n -> if n = 0 then [] else [ Value.Int 0 ]
  | Value.Bool b -> if b then [ Value.Bool false ] else []

(* Entry candidates: drop a pair, drop a class (keeping >= 1), simplify a
   value, shorten the rdn. *)
let shrink_entry e =
  let pairs = Entry.stored_pairs e in
  let drop_pair =
    List.map (fun (a, v) -> Entry.remove_value a v e) pairs
  in
  let drop_class =
    if Entry.n_classes e > 1 then
      List.map
        (fun c -> Entry.with_classes (Oclass.Set.remove c (Entry.classes e)) e)
        (Oclass.Set.elements (Entry.classes e))
    else []
  in
  let simplify_value =
    List.concat_map
      (fun (a, v) ->
        List.map
          (fun v' -> Entry.add_value a v' (Entry.remove_value a v e))
          (shrink_value v))
      pairs
  in
  let shorten_rdn =
    List.filter_map
      (fun r -> if r = "" then None else Some (Entry.with_rdn r e))
      (shrink_string (Entry.rdn e))
  in
  drop_pair @ drop_class @ simplify_value @ shorten_rdn

let rec shrink_filter f =
  match f with
  | Filter.Present _ -> []
  | Filter.Eq (a, v) ->
      Filter.Present a :: List.map (fun v' -> Filter.Eq (a, v')) (shrink_string v)
  | Filter.Ge (a, v) ->
      Filter.Present a :: List.map (fun v' -> Filter.Ge (a, v')) (shrink_string v)
  | Filter.Le (a, v) ->
      Filter.Present a :: List.map (fun v' -> Filter.Le (a, v')) (shrink_string v)
  | Filter.Substr (a, ({ initial; any; final } as p)) ->
      (* never propose the degenerate all-empty pattern: it is unprintable
         — its only rendering is the presence filter, which reads back as
         [Present] *)
      let keep q =
        match q with
        | { Filter.initial = None; any = []; final = None } -> None
        | q -> Some (Filter.Substr (a, q))
      in
      Filter.Present a
      :: List.filter_map Fun.id
           ((match initial with
            | Some _ -> [ keep { p with initial = None } ]
            | None -> [])
           @ (match final with
             | Some _ -> [ keep { p with final = None } ]
             | None -> [])
           @ List.mapi
               (fun i _ -> keep { p with any = List.filteri (fun j _ -> j <> i) any })
               any)
  | Filter.And fs ->
      fs
      @ List.mapi (fun i _ -> Filter.And (List.filteri (fun j _ -> j <> i) fs)) fs
      @ List.concat
          (List.mapi
             (fun i fi ->
               List.map
                 (fun fi' ->
                   Filter.And (List.mapi (fun j fj -> if i = j then fi' else fj) fs))
                 (shrink_filter fi))
             fs)
  | Filter.Or fs ->
      fs
      @ List.mapi (fun i _ -> Filter.Or (List.filteri (fun j _ -> j <> i) fs)) fs
      @ List.concat
          (List.mapi
             (fun i fi ->
               List.map
                 (fun fi' ->
                   Filter.Or (List.mapi (fun j fj -> if i = j then fi' else fj) fs))
                 (shrink_filter fi))
             fs)
  | Filter.Not f -> f :: List.map (fun f' -> Filter.Not f') (shrink_filter f)

let rec shrink_query q =
  match q with
  | Query.Select f -> List.map (fun f' -> Query.Select f') (shrink_filter f)
  | Query.Minus (a, b) ->
      (a :: b
       :: List.map (fun a' -> Query.Minus (a', b)) (shrink_query a))
      @ List.map (fun b' -> Query.Minus (a, b')) (shrink_query b)
  | Query.Union (a, b) ->
      (a :: b
       :: List.map (fun a' -> Query.Union (a', b)) (shrink_query a))
      @ List.map (fun b' -> Query.Union (a, b')) (shrink_query b)
  | Query.Inter (a, b) ->
      (a :: b
       :: List.map (fun a' -> Query.Inter (a', b)) (shrink_query a))
      @ List.map (fun b' -> Query.Inter (a, b')) (shrink_query b)
  | Query.Chi (ax, a, b) ->
      (a :: b
       :: List.map (fun a' -> Query.Chi (ax, a', b)) (shrink_query a))
      @ List.map (fun b' -> Query.Chi (ax, a, b')) (shrink_query b)

(* Instance candidates: drop each subtree, then per-entry rewrites. *)
let shrink_instance inst =
  let drop_subtree =
    List.filter_map
      (fun id ->
        match Instance.remove_subtree id inst with
        | Ok inst' -> Some inst'
        | Error _ -> None)
      (Instance.ids inst)
  in
  let rewrite_entry =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun e' ->
            match Instance.update_entry (Entry.id e) (fun _ -> e') inst with
            | Ok inst' -> Some inst'
            | Error _ -> None)
          (shrink_entry e))
      (Instance.entries inst)
  in
  drop_subtree @ rewrite_entry

(* Schema candidates: drop keys / single-valued / individual structure
   constraints, rebuilt through [Schema.make] (rejecting ill-formed
   combinations). *)
let shrink_schema (s : Schema.t) =
  let rebuild ?(single_valued = Attr.Set.elements s.single_valued)
      ?(keys = Attr.Set.elements s.keys) ?(structure = s.structure) () =
    match
      Schema.make ~typing:s.typing ~attributes:s.attributes ~classes:s.classes
        ~structure ~single_valued ~keys ()
    with
    | Ok s' -> Some s'
    | Error _ -> None
  in
  let drop_keys =
    List.map
      (fun k ->
        rebuild ~keys:(Attr.Set.elements (Attr.Set.remove k s.keys)) ())
      (Attr.Set.elements s.keys)
  in
  let drop_sv =
    List.map
      (fun a ->
        rebuild
          ~single_valued:(Attr.Set.elements (Attr.Set.remove a s.single_valued))
          ())
      (Attr.Set.elements s.single_valued)
  in
  let req_classes = Oclass.Set.elements (Structure_schema.required_classes s.structure) in
  let req_rels = Structure_schema.required_rels s.structure in
  let forb_rels = Structure_schema.forbidden_rels s.structure in
  let rebuild_structure ~req_classes ~req_rels ~forb_rels =
    let st =
      List.fold_left (fun st c -> Structure_schema.require_class c st)
        Structure_schema.empty req_classes
    in
    let st =
      List.fold_left (fun st (c, r, d) -> Structure_schema.require c r d st) st req_rels
    in
    let st =
      List.fold_left (fun st (c, f, d) -> Structure_schema.forbid c f d st) st forb_rels
    in
    rebuild ~structure:st ()
  in
  let drop_structure =
    List.mapi
      (fun i _ ->
        rebuild_structure
          ~req_classes:(List.filteri (fun j _ -> j <> i) req_classes)
          ~req_rels ~forb_rels)
      req_classes
    @ List.mapi
        (fun i _ ->
          rebuild_structure ~req_classes
            ~req_rels:(List.filteri (fun j _ -> j <> i) req_rels)
            ~forb_rels)
        req_rels
    @ List.mapi
        (fun i _ ->
          rebuild_structure ~req_classes ~req_rels
            ~forb_rels:(List.filteri (fun j _ -> j <> i) forb_rels))
        forb_rels
  in
  List.filter_map Fun.id (drop_keys @ drop_sv @ drop_structure)

(* --- the shrink loop ---------------------------------------------------- *)

let candidates (c : Case.t) : Case.t list =
  let ops_cands =
    if c.ops = [] then []
    else
      (* drop each op individually, and each suffix (keeping a prefix) *)
      List.mapi
        (fun i _ -> { c with ops = List.filteri (fun j _ -> j <> i) c.ops })
        c.ops
      @ List.mapi
          (fun i _ -> { c with ops = List.filteri (fun j _ -> j <= i) c.ops })
          c.ops
      @ List.concat
          (List.mapi
             (fun i op ->
               match op with
               | Update.Insert { parent; entry } ->
                   List.map
                     (fun e' ->
                       {
                         c with
                         ops =
                           List.mapi
                             (fun j o ->
                               if i = j then Update.Insert { parent; entry = e' }
                               else o)
                             c.ops;
                       })
                     (shrink_entry entry)
               | Update.Delete _ -> [])
             c.ops)
  in
  let instance_cands =
    match c.instance with
    | None -> []
    | Some inst ->
        List.map (fun i -> { c with instance = Some i }) (shrink_instance inst)
  in
  let query_cands =
    match c.query with
    | None -> []
    | Some q -> List.map (fun q' -> { c with query = Some q' }) (shrink_query q)
  in
  let filter_cands =
    match c.filter with
    | None -> []
    | Some f -> List.map (fun f' -> { c with filter = Some f' }) (shrink_filter f)
  in
  let text_cands =
    match c.text with
    | None -> []
    | Some t -> List.map (fun t' -> { c with text = Some t' }) (shrink_string t)
  in
  let schema_cands =
    match c.schema with
    | None -> []
    | Some s -> List.map (fun s' -> { c with schema = Some s' }) (shrink_schema s)
  in
  (* Big cuts first: whole-instance / whole-ops candidates lead, then
     per-component rewrites. *)
  instance_cands @ ops_cands @ text_cands @ query_cands @ filter_cands
  @ schema_cands

let tests_used = ref 0
let last_tests () = !tests_used

let minimize ?(max_tests = 10_000) ~still_fails case =
  tests_used := 0;
  let try_case c =
    incr tests_used;
    try still_fails c with _ -> false
  in
  let rec loop current =
    if !tests_used >= max_tests then current
    else
      let m = measure current in
      let next =
        List.find_opt
          (fun cand ->
            measure cand < m && !tests_used < max_tests && try_case cand)
          (candidates current)
      in
      match next with Some better -> loop better | None -> current
  in
  loop case
