(** Greedy counterexample minimization.

    [minimize ~still_fails case] repeatedly proposes strictly-smaller
    variants of [case] — dropping instance subtrees, entry pairs and
    classes, transaction ops, schema constraints, query/filter subterms,
    and text chunks — keeping any variant for which [still_fails] holds,
    until no proposal reproduces the failure (a local minimum) or the
    test budget runs out.

    Progress is measured lexicographically by {!Case.size} and then by
    total embedded string length, so every accepted step strictly
    decreases the measure and the loop terminates even without a budget. *)

val minimize :
  ?max_tests:int -> still_fails:(Case.t -> bool) -> Case.t -> Case.t

(** Number of [still_fails] evaluations in the last [minimize] call
    (exposed for reporting and tests). *)
val last_tests : unit -> int
