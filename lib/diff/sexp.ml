type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l

let bare_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '=' | '+' | ':'
  | '/' | ';' | '!' | '?' | '@' | '*' | '<' | '>' | ',' ->
      true
  | _ -> false

let needs_quoting s = s = "" || not (String.for_all bare_char s)

(* OCaml-style escapes: what [String.escaped] emits, decoded back by
   [unescape] below.  Quoted atoms therefore carry arbitrary bytes. *)
let rec write buf = function
  | Atom s ->
      if needs_quoting s then (
        Buffer.add_char buf '"';
        Buffer.add_string buf (String.escaped s);
        Buffer.add_char buf '"')
      else Buffer.add_string buf s
  | List l ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i s ->
          if i > 0 then Buffer.add_char buf ' ';
          write buf s)
        l;
      Buffer.add_char buf ')'

let to_string s =
  let buf = Buffer.create 256 in
  write buf s;
  Buffer.contents buf

exception Err of string

type state = { src : string; mutable pos : int }

let err st fmt =
  Printf.ksprintf (fun m -> raise (Err (Printf.sprintf "offset %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let digit c = Char.code c - Char.code '0'

let read_quoted st =
  st.pos <- st.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> err st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> err st "dangling backslash"
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some ('0' .. '9') ->
            if st.pos + 2 >= String.length st.src then err st "truncated escape";
            let c1 = st.src.[st.pos]
            and c2 = st.src.[st.pos + 1]
            and c3 = st.src.[st.pos + 2] in
            (match (c2, c3) with
            | '0' .. '9', '0' .. '9' ->
                let n = (digit c1 * 100) + (digit c2 * 10) + digit c3 in
                if n > 255 then err st "escape out of range";
                Buffer.add_char buf (Char.chr n);
                st.pos <- st.pos + 3
            | _ -> err st "malformed decimal escape");
            go ()
        | Some c -> Buffer.add_char buf c; st.pos <- st.pos + 1; go ())
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let rec read st =
  skip_ws st;
  match peek st with
  | None -> err st "unexpected end of input"
  | Some '(' ->
      st.pos <- st.pos + 1;
      let rec go acc =
        skip_ws st;
        match peek st with
        | None -> err st "unclosed '('"
        | Some ')' ->
            st.pos <- st.pos + 1;
            List (List.rev acc)
        | Some _ -> go (read st :: acc)
      in
      go []
  | Some ')' -> err st "unexpected ')'"
  | Some '"' -> Atom (read_quoted st)
  | Some _ ->
      let start = st.pos in
      while (match peek st with Some c when bare_char c -> true | _ -> false) do
        st.pos <- st.pos + 1
      done;
      if st.pos = start then err st "unexpected character %C" st.src.[st.pos];
      Atom (String.sub st.src start (st.pos - start))

let parse s =
  let st = { src = s; pos = 0 } in
  try
    let v = read st in
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" st.pos)
    else Ok v
  with Err m -> Error m

let parse_exn s = match parse s with Ok v -> v | Error m -> failwith m

let as_atom = function
  | Atom s -> Ok s
  | List _ -> Error "expected an atom, got a list"

let as_list = function
  | List l -> Ok l
  | Atom a -> Error (Printf.sprintf "expected a list, got atom %S" a)

let as_int s =
  match as_atom s with
  | Error _ as e -> e
  | Ok a -> (
      match int_of_string_opt a with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "expected an integer, got %S" a))
