(** The differential fuzzing driver.

    For each oracle: generate [budget] cases from a seed, check each, and
    shrink any discrepancy to a local minimum.  Case generation derives an
    independent PRNG per (oracle, seed, index), so a single failing case
    can be regenerated — and the whole run reproduced — from the seed
    alone, regardless of oracle selection or parallelism. *)

type failure = {
  case : Case.t;  (** shrunk counterexample *)
  message : string;  (** discrepancy report from the oracle *)
  shrink_tests : int;  (** oracle evaluations spent shrinking *)
}

type report = {
  oracle : string;
  budget : int;  (** cases generated and checked *)
  failures : failure list;
}

(** [run_oracle ~budget ~seed o] — fuzz one oracle.  Stops collecting
    (but keeps counting) after [max_failures] distinct shrunk
    counterexamples (default 3).  [log] receives one line per failure as
    it is found. *)
val run_oracle :
  ?max_failures:int ->
  ?log:(string -> unit) ->
  budget:int ->
  seed:int ->
  Oracle.t ->
  report

(** [run ~budget ~seed ()] — fuzz every oracle (or just [oracles]),
    [jobs] oracle streams in parallel.  Reports come back in registry
    order either way; results are independent of [jobs].  Errors on an
    unknown oracle name. *)
val run :
  ?jobs:int ->
  ?oracles:string list ->
  ?max_failures:int ->
  ?log:(string -> unit) ->
  budget:int ->
  seed:int ->
  unit ->
  (report list, string) result

val total_failures : report list -> int

(** {2 Regression corpus} *)

(** [save_case ~dir case] writes [case] to [dir]/[oracle]-[hash].case and
    returns the path. *)
val save_case : dir:string -> Case.t -> string

(** [load_corpus ~dir] reads every [*.case] file (sorted by name).
    Errors if any file fails to decode — a corrupt corpus must not pass
    silently. *)
val load_corpus : dir:string -> ((string * Case.t) list, string) result

(** [replay case] re-checks a corpus case against its named oracle.
    [Error _] if the oracle is unknown. *)
val replay : Case.t -> (Oracle.outcome, string) result
