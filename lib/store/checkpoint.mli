(** Snapshot checkpoints.

    A checkpoint is one {!Frame}-wrapped blob: a small header (format
    tag, log sequence number, entry count, session/memo statistics, and
    the preorder entry-id list) followed by the instance as LDIF.  The
    id list is what makes the LDIF body a faithful snapshot: LDIF names
    entries by DN only, while the log tail names them by id, so load
    re-assigns the k-th streamed record its original id.

    Writes go through a temporary file and an atomic rename, so the
    previous checkpoint survives any crash during compaction. *)

open Bounds_model

type meta = {
  lsn : int;  (** every logged record with lsn ≤ this is already folded in *)
  entries : int;
  applied : int;
  rejected : int;
  queries : int;
  memo_hits : int;
  memo_misses : int;
  memo_entries : int;
}

val write : Io.t -> string -> meta -> Instance.t -> unit

(** Header only — enough for [ldapschema log] to describe a store
    without parsing the instance. *)
val read_meta : Io.t -> string -> (meta, string) result

(** Full load, streaming the LDIF body through
    {!Bounds_codec.Ldif.fold_entries} with original ids. *)
val read : Io.t -> string -> typing:Typing.t -> (meta * Instance.t, string) result
