open Bounds_core

let schema_file = "schema.spec"
let checkpoint_file = "checkpoint.ckpt"
let wal_file = "wal.log"
let delta_file = "delta.log"

type tail = Clean | Recovered_at of { offset : int; reason : string }

type report = {
  checkpoint_lsn : int;
  replayed : int;
  skipped : int;
  tail : tail;
  delta_segments : int;
  delta_replayed : int;
  delta_tail : tail;
}

(* What a replication feed sees: every durable record the moment it is
   acknowledged, plus a marker whenever the store compacts (a replica
   may fold its own log on the same beat). *)
type ship =
  | Ship_txn of { lsn : int; ops : Update.op list }
  | Ship_mark of { lsn : int }

type t = {
  io : Io.t;
  schema_v : Schema.t;
  auto_checkpoint : int;
  delta_chain : int;  (** collapse the delta chain past this many segments *)
  (* the session's commit hook closes over this cell: a no-op while
     recovery replays the tail (those records are already durable), the
     log appender afterwards *)
  hook : (Update.op list -> Directory.t -> unit) ref;
  mutable dir : Directory.t;
  mutable lsn_v : int;
  mutable wal_bytes_v : int;
  mutable wal_records_v : int;
  mutable chain_len : int;  (** delta segments since the last full snapshot *)
  mutable delta_bytes_v : int;
  mutable base : Checkpoint.meta;  (** session totals at last checkpoint *)
  mutable counted : Directory.stats;  (** live counters at last checkpoint *)
  (* group commit: while [Some buf], accepted transactions buffer their
     encoded log records here instead of appending — {!batch} lands the
     whole buffer with one append (one shared fsync) before anything is
     acknowledged *)
  mutable batch_buf : Buffer.t option;
  mutable batch_count : int;
  mutable batch_results : Admission.result list;  (** newest first *)
  (* the replication feed, fired only after the record's bytes are
     durable (post-append, post-shared-flush) — never mid-batch *)
  mutable ship : (ship -> unit) option;
  mutable recovery_v : report option;  (** how {!open_} found the logs *)
}

type error =
  | Not_a_store of string
  | Already_a_store
  | Corrupt of string
  | Illegal of Violation.t list
  | Bad_load of string

let error_to_string = function
  | Not_a_store m -> "not a store: " ^ m
  | Already_a_store -> "already a store"
  | Corrupt m -> "corrupt store: " ^ m
  | Illegal vs ->
      Format.asprintf "illegal instance:@ %a"
        (Format.pp_print_list Violation.pp)
        vs
  | Bad_load m -> "bulk load failed: " ^ m

let pp_tail ppf = function
  | Clean -> Format.fprintf ppf "clean"
  | Recovered_at { offset; reason } ->
      Format.fprintf ppf "recovered at byte %d (%s)" offset reason

let pp_report ppf r =
  Format.fprintf ppf "checkpoint lsn %d, %d replayed, %d skipped, tail %a"
    r.checkpoint_lsn r.replayed r.skipped pp_tail r.tail;
  if r.delta_segments > 0 || r.delta_tail <> Clean then
    Format.fprintf ppf "; delta: %d segment(s), %d replayed, %a"
      r.delta_segments r.delta_replayed pp_tail r.delta_tail

let exists io = io.Io.read schema_file <> None

let schema t = t.schema_v
let directory t = t.dir
let lsn t = t.lsn_v
let wal_bytes t = t.wal_bytes_v
let wal_records t = t.wal_records_v
let delta_segments t = t.chain_len
let delta_bytes t = t.delta_bytes_v
let recovery t = t.recovery_v
let set_ship_hook t hook = t.ship <- hook

(* The feed must never be able to fail a commit that is already durable:
   a throwing subscriber is that subscriber's problem. *)
let fire_ship t item =
  match t.ship with None -> () | Some f -> ( try f item with _ -> ())

let stats t =
  let s = Directory.stats t.dir in
  {
    Checkpoint.lsn = t.lsn_v;
    entries = s.Directory.entries;
    applied = t.base.Checkpoint.applied + s.Directory.applied - t.counted.Directory.applied;
    rejected = t.base.Checkpoint.rejected + s.Directory.rejected - t.counted.Directory.rejected;
    queries = t.base.Checkpoint.queries + s.Directory.queries - t.counted.Directory.queries;
    memo_hits = s.Directory.memo_hits;
    memo_misses = s.Directory.memo_misses;
    memo_entries = s.Directory.memo_entries;
  }

let wal_hook t ops _dir =
  let lsn = t.lsn_v + 1 in
  match t.batch_buf with
  | Some buf ->
      (* inside a batch: the record is encoded now (so lsns stay dense
         and later records in the batch see the right sequence) but hits
         the log only at the shared flush in {!batch} *)
      Buffer.add_string buf (Wal.encode_record ~lsn ops);
      t.lsn_v <- lsn;
      t.batch_count <- t.batch_count + 1
  | None ->
      (* [append] reports the bytes it framed, so the accounting reuses
         the encoding just written instead of encoding the transaction
         twice *)
      let bytes = Wal.append t.io wal_file ~lsn ops in
      t.lsn_v <- lsn;
      t.wal_bytes_v <- t.wal_bytes_v + bytes;
      t.wal_records_v <- t.wal_records_v + 1

(* Collapse: rewrite the whole snapshot (atomic temp+rename), then drop
   the delta chain and the log.  A crash after the rename leaves delta
   and log records with lsn ≤ the new checkpoint's, which recovery skips
   as duplicates — every intermediate state recovers. *)
let full_checkpoint t =
  let meta = stats t in
  Checkpoint.write t.io checkpoint_file meta (Directory.instance t.dir);
  t.io.Io.write delta_file "";
  Wal.reset t.io wal_file;
  t.chain_len <- 0;
  t.delta_bytes_v <- 0;
  t.wal_bytes_v <- 0;
  t.wal_records_v <- 0;
  t.base <- meta;
  t.counted <- Directory.stats t.dir;
  fire_ship t (Ship_mark { lsn = t.lsn_v })

(* Each delta segment starts with a marker record — lsn 0, no ops — so
   recovery can count segments without side metadata; lsn 0 precedes
   every real lsn, so the replay discipline skips it for free. *)
let segment_marker = Wal.encode_record ~lsn:0 []

(* O(Δ) compaction: fold the log into the delta chain.  The log records
   are already CRC-framed and lsn-stamped, so the segment is one append
   of bytes that already exist; recovery replays base + delta + log
   under one lsn discipline.  Crash anywhere: before the append nothing
   changed; a torn append truncates to whole records and the untouched
   log still holds the segment (duplicates skip); between append and
   reset, delta and log hold the same lsns (duplicates skip). *)
let delta_checkpoint t =
  if t.wal_records_v > 0 then begin
    let bytes =
      match t.io.Io.read wal_file with Some b -> b | None -> ""
    in
    t.io.Io.append delta_file (segment_marker ^ bytes);
    Wal.reset t.io wal_file;
    t.chain_len <- t.chain_len + 1;
    t.delta_bytes_v <-
      t.delta_bytes_v + String.length segment_marker + String.length bytes;
    t.wal_bytes_v <- 0;
    t.wal_records_v <- 0;
    fire_ship t (Ship_mark { lsn = t.lsn_v })
  end

let checkpoint ?(full = false) t =
  if full || t.delta_chain <= 0 || t.chain_len >= t.delta_chain then
    full_checkpoint t
  else delta_checkpoint t

let apply t ops =
  let dir, res = Directory.apply t.dir ops in
  let res =
    match res with
    | Admission.Rejected _ -> res
    | Admission.Accepted _ ->
        t.dir <- dir;
        (* the commit hook ran inside [Directory.apply] — by now the
           record is durable (or buffered, inside a batch) and [lsn_v]
           is its log position *)
        Admission.with_lsn t.lsn_v res
  in
  (match t.batch_buf with
  | Some _ -> t.batch_results <- res :: t.batch_results
  | None ->
      (match res with
      | Admission.Accepted { ops; _ } ->
          (* the append above made the record durable: ship it *)
          fire_ship t (Ship_txn { lsn = t.lsn_v; ops })
      | Admission.Rejected _ -> ());
      (* auto-compaction waits for the batch flush: a checkpoint taken
         mid-batch would cover records that are not on disk yet *)
      if
        Admission.accepted res
        && t.auto_checkpoint > 0
        && t.wal_records_v >= t.auto_checkpoint
      then checkpoint t);
  res

(* Group commit.  Every {!apply} inside [f] is admitted against the
   rolling version as usual, but its log record lands in the batch
   buffer; when [f] returns, the whole buffer is appended in one I/O
   operation — one shared fsync on a durable handle — and only then does
   [batch] return, which is when the caller may acknowledge any of the
   batched transactions.  The on-disk bytes are identical to sequential
   {!apply}s of the same accepted transactions.

   Crash discipline: a crash before the flush leaves none of the batch
   on disk (none was acknowledged); a torn flush leaves a prefix of
   whole records that recovery replays (admitted-but-unacknowledged
   transactions — allowed, since durability promises acknowledged ⊆
   recovered).  If the flush append raises, the store rolls back to the
   batch-start version and lsn and the exception propagates: nothing is
   acknowledged, the store handle stays usable. *)
let batch t f =
  if t.batch_buf <> None then invalid_arg "Store.batch: batch already open";
  let dir0 = t.dir and lsn0 = t.lsn_v in
  let buf = Buffer.create 1024 in
  t.batch_buf <- Some buf;
  t.batch_count <- 0;
  t.batch_results <- [];
  let rollback () =
    t.dir <- dir0;
    t.lsn_v <- lsn0;
    t.batch_buf <- None;
    t.batch_count <- 0;
    t.batch_results <- []
  in
  match f () with
  | exception e ->
      rollback ();
      raise e
  | result ->
      let n = t.batch_count in
      let results = List.rev t.batch_results in
      t.batch_buf <- None;
      t.batch_count <- 0;
      t.batch_results <- [];
      if Buffer.length buf > 0 then begin
        (try Wal.append_raw t.io wal_file (Buffer.contents buf)
         with e ->
           rollback ();
           raise e);
        t.wal_bytes_v <- t.wal_bytes_v + Buffer.length buf;
        t.wal_records_v <- t.wal_records_v + n;
        (* the shared flush is behind us: every accepted record of the
           batch is durable, in lsn order — ship them on the same beat
           the caller is allowed to acknowledge them *)
        List.iter
          (fun r ->
            match r with
            | Admission.Accepted { lsn = Some l; ops; _ } ->
                fire_ship t (Ship_txn { lsn = l; ops })
            | Admission.Accepted { lsn = None; _ } | Admission.Rejected _ ->
                ())
          results
      end;
      if t.auto_checkpoint > 0 && t.wal_records_v >= t.auto_checkpoint then
        checkpoint t;
      (result, results)

(* Streaming bulk load: the caller drives [feed], pushing one entry at a
   time into a {!Directory.Bulk} builder (so a million-entry dump never
   materializes an op list).  Nothing is committed until the whole feed
   succeeded and — unless [trust] — the final instance passed one full
   admission check; the commit itself is an atomic checkpoint replace,
   so a crash at any point leaves the pre-load store intact.  Loaded
   entries bypass the log on purpose: one O(|D|) checkpoint instead of
   |Δ| log records, which is the point of a bulk path. *)
let load ?(trust = false) t feed =
  let bulk = Directory.Bulk.start t.dir in
  let before = Directory.size t.dir in
  let add ~parent entry =
    match Directory.Bulk.add bulk [ Update.Insert { parent; entry } ] with
    | Ok () -> Ok ()
    | Error rej -> Error (Format.asprintf "%a" Monitor.pp_rejection rej)
  in
  match feed add with
  | Error m -> Error (Bad_load m)
  | Ok () -> (
      let dir = Directory.Bulk.finish bulk in
      match (if trust then [] else Directory.validate dir) with
      | _ :: _ as vs -> Error (Illegal vs)
      | [] ->
          t.dir <- dir;
          (* commit: fresh FULL checkpoint at the current lsn, then log
             reset.  Loaded entries bypass the log, so only a whole
             snapshot captures them — a delta segment here would lose
             the load.  A crash between the two leaves old records with
             lsn ≤ the checkpoint's, which recovery skips as
             duplicates. *)
          full_checkpoint t;
          Ok (Directory.size dir - before))

let close t = Directory.close t.dir

let init ?extensions ?pool ?(auto_checkpoint = 0) ?(delta_chain = 8) io schema
    inst =
  if exists io then Error Already_a_store
  else
    let hook = ref (fun _ _ -> ()) in
    match
      Directory.open_ ?extensions ?pool
        ~store:(fun ops d -> !hook ops d)
        schema inst
    with
    | Error vs -> Error (Illegal vs)
    | Ok dir ->
        let s = Directory.stats dir in
        let meta =
          {
            Checkpoint.lsn = 0;
            entries = s.Directory.entries;
            applied = 0;
            rejected = 0;
            queries = 0;
            memo_hits = s.Directory.memo_hits;
            memo_misses = s.Directory.memo_misses;
            memo_entries = s.Directory.memo_entries;
          }
        in
        Checkpoint.write io checkpoint_file meta inst;
        (* clear any stale chain/log left behind by an earlier store in
           the same directory (the marker was removed, not the data) *)
        io.Io.write delta_file "";
        Wal.reset io wal_file;
        (* the schema is the store marker, written last: a crash anywhere
           during init leaves a directory [open_] refuses as Not_a_store *)
        io.Io.write schema_file (Spec_printer.to_string schema);
        let t =
          {
            io;
            schema_v = schema;
            auto_checkpoint;
            delta_chain;
            hook;
            dir;
            lsn_v = 0;
            wal_bytes_v = 0;
            wal_records_v = 0;
            chain_len = 0;
            delta_bytes_v = 0;
            base = meta;
            counted = s;
            batch_buf = None;
            batch_count = 0;
            batch_results = [];
            ship = None;
            recovery_v = None;
          }
        in
        hook := wal_hook t;
        Ok t

(* --- recovery ----------------------------------------------------------- *)

type replay_state = {
  mutable cur : int;
  mutable replayed : int;
  mutable skipped : int;
  mutable broke : Wal.truncation option;
  mutable segments : int;  (** delta segment markers seen *)
}

(* Stream the log once ({!Wal.fold} — O(record) memory) and replay each
   record under the lsn discipline: lsn ≤ current is a duplicate the
   checkpoint already covers (left by a crash between checkpoint-rename
   and log-reset) and is skipped; lsn = current+1 is applied; anything
   else — a gap, or a record that no longer applies — marks the damage
   point and ends replay.

   [trusted] replays through {!Directory.Bulk}: acknowledged records
   passed admission when they were logged and the CRC already vouches
   they are the same bytes, so legality is not re-checked and index
   maintenance is batched past the cost crossover.  [trusted:false]
   keeps the original checked path ({!Directory.apply}, which re-runs
   admission per record) — the differential twin and benchmark
   baseline. *)
(* One replay pass shared by the delta chain and the log: both files
   hold the same CRC-framed records, and one lsn discipline covers the
   whole fold — base checkpoint, then every delta segment in append
   order, then the log.  Segment markers (lsn 0, no ops) are counted,
   not replayed. *)
let replay_file st ~apply_record io file =
  Wal.fold io file
    (fun () (r : Wal.record) ->
      if st.broke <> None then ()
      else if r.lsn = 0 && r.ops = [] then st.segments <- st.segments + 1
      else if r.lsn <= st.cur then st.skipped <- st.skipped + 1
      else if r.lsn = st.cur + 1 then
        match apply_record r.ops with
        | Ok () ->
            st.cur <- r.lsn;
            st.replayed <- st.replayed + 1
        | Error rej ->
            st.broke <-
              Some
                {
                  Wal.offset = r.offset;
                  reason =
                    Format.asprintf "replay rejected: %a" Monitor.pp_rejection
                      rej;
                }
      else
        st.broke <-
          Some
            {
              Wal.offset = r.offset;
              reason =
                Printf.sprintf "lsn gap: expected %d, found %d" (st.cur + 1)
                  r.lsn;
            })
    ()

let replay_log ~trusted ~ingest io dir0 ~lsn:lsn0 =
  let bulk =
    if trusted then Some (Directory.Bulk.start ~mode:ingest dir0) else None
  in
  let checked_dir = ref dir0 in
  let apply_record ops =
    match bulk with
    | Some b -> Directory.Bulk.add b ops
    | None -> (
        match Directory.apply !checked_dir ops with
        | dir, Admission.Accepted _ ->
            checked_dir := dir;
            Ok ()
        | _, Admission.Rejected { reason; _ } -> Error reason)
  in
  (* Delta chain first: it holds the older folded segments. *)
  let st = { cur = lsn0; replayed = 0; skipped = 0; broke = None; segments = 0 } in
  let delta_folded = replay_file st ~apply_record io delta_file in
  let delta_replayed = st.replayed and delta_skipped = st.skipped in
  let delta_broke =
    match st.broke with
    | Some _ as b -> b
    | None -> delta_folded.Wal.truncated
  in
  (* A damaged delta tail ends the chain; the log may still bridge the
     lost suffix (a torn segment append leaves the log un-reset, so the
     same records replay from there as duplicates-then-fresh). *)
  st.broke <- None;
  let folded = replay_file st ~apply_record io wal_file in
  let dir =
    match bulk with Some b -> Directory.Bulk.finish b | None -> !checked_dir
  in
  let wal_replayed = st.replayed - delta_replayed
  and wal_skipped = st.skipped - delta_skipped in
  ( dir,
    `Wal (st.cur, wal_replayed, wal_skipped, st.broke, folded),
    `Delta (delta_replayed, delta_broke, delta_folded.Wal.end_offset, st.segments)
  )

let open_ ?extensions ?pool ?(auto_checkpoint = 0) ?(delta_chain = 8)
    ?(trusted = true) ?(ingest = `Auto) io =
  match io.Io.read schema_file with
  | None -> Error (Not_a_store ("missing " ^ schema_file))
  | Some spec -> (
      match Spec_parser.parse spec with
      | Error e ->
          Error (Corrupt (schema_file ^ ": " ^ Spec_parser.error_to_string e))
      | Ok schema -> (
          match
            Checkpoint.read io checkpoint_file ~typing:schema.Schema.typing
          with
          | Error m -> Error (Corrupt (checkpoint_file ^ ": " ^ m))
          | Ok (meta, inst) -> (
              let hook = ref (fun _ _ -> ()) in
              match
                Directory.open_ ?extensions ?pool
                  ~store:(fun ops d -> !hook ops d)
                  schema inst
              with
              | Error vs -> Error (Illegal vs)
              | Ok dir0 ->
                  let counted = Directory.stats dir0 in
                  let ( dir,
                        `Wal (cur, wal_replayed, wal_skipped, wal_broke, folded),
                        `Delta (delta_replayed, delta_broke, delta_end, segments)
                      ) =
                    replay_log ~trusted ~ingest io dir0
                      ~lsn:meta.Checkpoint.lsn
                  in
                  let delta_tail, delta_end =
                    match delta_broke with
                    | None -> (Clean, delta_end)
                    | Some { Wal.offset; reason } ->
                        (* cut the chain back to whole segments/records so
                           the next segment append extends valid frames *)
                        Wal.truncate io delta_file ~keep:offset;
                        (Recovered_at { offset; reason }, offset)
                  in
                  let truncated =
                    match wal_broke with
                    | Some _ -> wal_broke
                    | None -> folded.Wal.truncated
                  in
                  let tail, valid_end =
                    match truncated with
                    | None -> (Clean, folded.Wal.end_offset)
                    | Some { Wal.offset; reason } ->
                        (* cut the log back to the durable prefix so the
                           next append extends valid records, not junk *)
                        Wal.truncate io wal_file ~keep:offset;
                        (Recovered_at { offset; reason }, offset)
                  in
                  let report =
                    {
                      checkpoint_lsn = meta.Checkpoint.lsn;
                      replayed = wal_replayed;
                      skipped = wal_skipped;
                      tail;
                      delta_segments = segments;
                      delta_replayed;
                      delta_tail;
                    }
                  in
                  let t =
                    {
                      io;
                      schema_v = schema;
                      auto_checkpoint;
                      delta_chain;
                      hook;
                      dir;
                      lsn_v = cur;
                      wal_bytes_v = valid_end;
                      wal_records_v = wal_replayed + wal_skipped;
                      chain_len = segments;
                      delta_bytes_v = delta_end;
                      base = meta;
                      counted;
                      batch_buf = None;
                      batch_count = 0;
                      batch_results = [];
                      ship = None;
                      recovery_v = Some report;
                    }
                  in
                  hook := wal_hook t;
                  Ok (t, report))))

(* --- replication (WAL shipment) ------------------------------------------ *)

(* Catch a subscriber up from its last durable lsn: every record with a
   greater lsn still lives in the delta chain + log iff the subscriber
   is no older than the base checkpoint (records at or below the base's
   lsn are folded into the snapshot and gone from the logs). *)
let records_from t ~lsn:from_lsn =
  if t.batch_buf <> None then invalid_arg "Store.records_from: inside a batch";
  if from_lsn < t.base.Checkpoint.lsn || from_lsn > t.lsn_v then `Too_old
  else
    let take acc (r : Wal.record) =
      if r.lsn = 0 && r.ops = [] then acc (* segment marker *)
      else (r.lsn, r.ops) :: acc
    in
    let acc = (Wal.fold_from t.io delta_file ~lsn:from_lsn take []).Wal.acc in
    let acc = (Wal.fold_from t.io wal_file ~lsn:from_lsn take acc).Wal.acc in
    `Records (List.rev acc)

(* A bootstrap package for a subscriber too old (or too new — a primary
   that lost data) to catch up from the logs: the schema text plus the
   current version as one checkpoint blob, encoded through the same
   {!Checkpoint} codec the store trusts on disk.  O(|D|). *)
let boot_blob t =
  if t.batch_buf <> None then invalid_arg "Store.boot_blob: inside a batch";
  let meta = stats t in
  let scratch = Io.mem (Io.fresh_fs ()) in
  Checkpoint.write scratch checkpoint_file meta (Directory.instance t.dir);
  let blob =
    match scratch.Io.read checkpoint_file with
    | Some b -> b
    | None -> assert false
  in
  (Spec_printer.to_string t.schema_v, blob, t.lsn_v)

(* Install a shipped bootstrap package as a store directory, replacing
   whatever was there.  The blob is validated against the shipped schema
   before anything is written.  Write order makes a crash at any point
   recoverable: checkpoint first (old log records become skippable
   duplicates), then the log resets, then the schema marker — the same
   marker-last discipline as {!init}.  The caller re-opens with
   {!open_}. *)
let install_snapshot io ~schema ~checkpoint =
  match Spec_parser.parse schema with
  | Error e ->
      Error ("boot schema: " ^ Spec_parser.error_to_string e)
  | Ok parsed -> (
      let scratch = Io.mem (Io.fresh_fs ()) in
      scratch.Io.write checkpoint_file checkpoint;
      match
        Checkpoint.read scratch checkpoint_file ~typing:parsed.Schema.typing
      with
      | Error m -> Error ("boot checkpoint: " ^ m)
      | Ok _ ->
          io.Io.write checkpoint_file checkpoint;
          io.Io.write delta_file "";
          Wal.reset io wal_file;
          io.Io.write schema_file schema;
          Ok ())

(* The replica's write surface: apply one shipped record under the same
   lsn discipline recovery uses.  A duplicate (lsn already covered) is
   skipped — the overlap a resume-from-lsn re-subscription produces; the
   successor lsn is logged durably {e first} (acknowledged ⊆ recovered
   holds on the replica too) and then applied through the trusted
   {!Directory.replay} path: the primary admitted the record before
   acknowledging it (Theorem 4.1), and the frame CRC vouches these are
   the same bytes, so legality is not re-checked.  A gap means shipment
   lost records — the caller must re-bootstrap, not guess. *)
let replica_apply t ~lsn ops =
  if t.batch_buf <> None then invalid_arg "Store.replica_apply: inside a batch";
  if lsn <= t.lsn_v then Ok `Duplicate
  else if lsn <> t.lsn_v + 1 then
    Error
      (Printf.sprintf "lsn gap: expected %d, shipped %d" (t.lsn_v + 1) lsn)
  else begin
    let before = t.wal_bytes_v in
    let bytes = Wal.append t.io wal_file ~lsn ops in
    match Directory.replay t.dir ops with
    | Ok dir ->
        t.dir <- dir;
        t.lsn_v <- lsn;
        t.wal_bytes_v <- before + bytes;
        t.wal_records_v <- t.wal_records_v + 1;
        if t.auto_checkpoint > 0 && t.wal_records_v >= t.auto_checkpoint then
          checkpoint t;
        Ok `Applied
    | Error rej ->
        (* a shipped record the trusted path cannot apply is damage, not
           a verdict: un-log it so the durable prefix stays replayable *)
        Wal.truncate t.io wal_file ~keep:before;
        Error
          (Format.asprintf "shipped record %d rejected: %a" lsn
             Monitor.pp_rejection rej)
  end
