open Bounds_core

let schema_file = "schema.spec"
let checkpoint_file = "checkpoint.ckpt"
let wal_file = "wal.log"

type t = {
  io : Io.t;
  schema_v : Schema.t;
  auto_checkpoint : int;
  (* the session's commit hook closes over this cell: a no-op while
     recovery replays the tail (those records are already durable), the
     log appender afterwards *)
  hook : (Update.op list -> Directory.t -> unit) ref;
  mutable dir : Directory.t;
  mutable lsn_v : int;
  mutable wal_bytes_v : int;
  mutable wal_records_v : int;
  mutable base : Checkpoint.meta;  (** session totals at last checkpoint *)
  mutable counted : Directory.stats;  (** live counters at last checkpoint *)
}

type error =
  | Not_a_store of string
  | Already_a_store
  | Corrupt of string
  | Illegal of Violation.t list

let error_to_string = function
  | Not_a_store m -> "not a store: " ^ m
  | Already_a_store -> "already a store"
  | Corrupt m -> "corrupt store: " ^ m
  | Illegal vs ->
      Format.asprintf "illegal instance:@ %a"
        (Format.pp_print_list Violation.pp)
        vs

type tail = Clean | Recovered_at of { offset : int; reason : string }

type report = {
  checkpoint_lsn : int;
  replayed : int;
  skipped : int;
  tail : tail;
}

let pp_report ppf r =
  Format.fprintf ppf "checkpoint lsn %d, %d replayed, %d skipped"
    r.checkpoint_lsn r.replayed r.skipped;
  match r.tail with
  | Clean -> Format.fprintf ppf ", tail clean"
  | Recovered_at { offset; reason } ->
      Format.fprintf ppf ", recovered at byte %d (%s)" offset reason

let exists io = io.Io.read schema_file <> None

let schema t = t.schema_v
let directory t = t.dir
let lsn t = t.lsn_v
let wal_bytes t = t.wal_bytes_v
let wal_records t = t.wal_records_v

let stats t =
  let s = Directory.stats t.dir in
  {
    Checkpoint.lsn = t.lsn_v;
    entries = s.Directory.entries;
    applied = t.base.Checkpoint.applied + s.Directory.applied - t.counted.Directory.applied;
    rejected = t.base.Checkpoint.rejected + s.Directory.rejected - t.counted.Directory.rejected;
    queries = t.base.Checkpoint.queries + s.Directory.queries - t.counted.Directory.queries;
    memo_hits = s.Directory.memo_hits;
    memo_misses = s.Directory.memo_misses;
    memo_entries = s.Directory.memo_entries;
  }

let wal_hook t ops _dir =
  let lsn = t.lsn_v + 1 in
  Wal.append t.io wal_file ~lsn ops;
  t.lsn_v <- lsn;
  t.wal_bytes_v <- t.wal_bytes_v + Wal.record_size ops;
  t.wal_records_v <- t.wal_records_v + 1

let checkpoint t =
  let meta = stats t in
  Checkpoint.write t.io checkpoint_file meta (Directory.instance t.dir);
  Wal.reset t.io wal_file;
  t.wal_bytes_v <- 0;
  t.wal_records_v <- 0;
  t.base <- meta;
  t.counted <- Directory.stats t.dir

let apply t ops =
  match Directory.apply t.dir ops with
  | Error _ as e -> e
  | Ok dir ->
      t.dir <- dir;
      if t.auto_checkpoint > 0 && t.wal_records_v >= t.auto_checkpoint then
        checkpoint t;
      Ok dir

let close t = Directory.close t.dir

let init ?extensions ?pool ?(auto_checkpoint = 0) io schema inst =
  if exists io then Error Already_a_store
  else
    let hook = ref (fun _ _ -> ()) in
    match
      Directory.open_ ?extensions ?pool
        ~store:(fun ops d -> !hook ops d)
        schema inst
    with
    | Error vs -> Error (Illegal vs)
    | Ok dir ->
        let s = Directory.stats dir in
        let meta =
          {
            Checkpoint.lsn = 0;
            entries = s.Directory.entries;
            applied = 0;
            rejected = 0;
            queries = 0;
            memo_hits = s.Directory.memo_hits;
            memo_misses = s.Directory.memo_misses;
            memo_entries = s.Directory.memo_entries;
          }
        in
        Checkpoint.write io checkpoint_file meta inst;
        Wal.reset io wal_file;
        (* the schema is the store marker, written last: a crash anywhere
           during init leaves a directory [open_] refuses as Not_a_store *)
        io.Io.write schema_file (Spec_printer.to_string schema);
        let t =
          {
            io;
            schema_v = schema;
            auto_checkpoint;
            hook;
            dir;
            lsn_v = 0;
            wal_bytes_v = 0;
            wal_records_v = 0;
            base = meta;
            counted = s;
          }
        in
        hook := wal_hook t;
        Ok t

(* --- recovery ----------------------------------------------------------- *)

(* Replay the scanned records against [dir] under the lsn discipline:
   lsn ≤ current is a duplicate the checkpoint already covers (left by a
   crash between checkpoint-rename and log-reset) and is skipped; lsn =
   current+1 is applied; anything else — a gap, or a record the monitor
   now rejects — marks the damage point and ends replay. *)
let replay_tail dir0 ~lsn:lsn0 records =
  let rec go dir cur replayed skipped = function
    | [] -> (dir, cur, replayed, skipped, None)
    | (r : Wal.record) :: rest ->
        if r.lsn <= cur then go dir cur replayed (skipped + 1) rest
        else if r.lsn = cur + 1 then
          match Directory.apply dir r.ops with
          | Ok dir' -> go dir' r.lsn (replayed + 1) skipped rest
          | Error rej ->
              ( dir,
                cur,
                replayed,
                skipped,
                Some
                  {
                    Wal.offset = r.offset;
                    reason =
                      Format.asprintf "replay rejected: %a" Monitor.pp_rejection
                        rej;
                  } )
        else
          ( dir,
            cur,
            replayed,
            skipped,
            Some
              {
                Wal.offset = r.offset;
                reason =
                  Printf.sprintf "lsn gap: expected %d, found %d" (cur + 1)
                    r.lsn;
              } )
  in
  go dir0 lsn0 0 0 records

let open_ ?extensions ?pool ?(auto_checkpoint = 0) io =
  match io.Io.read schema_file with
  | None -> Error (Not_a_store ("missing " ^ schema_file))
  | Some spec -> (
      match Spec_parser.parse spec with
      | Error e ->
          Error (Corrupt (schema_file ^ ": " ^ Spec_parser.error_to_string e))
      | Ok schema -> (
          match
            Checkpoint.read io checkpoint_file ~typing:schema.Schema.typing
          with
          | Error m -> Error (Corrupt (checkpoint_file ^ ": " ^ m))
          | Ok (meta, inst) -> (
              let hook = ref (fun _ _ -> ()) in
              match
                Directory.open_ ?extensions ?pool
                  ~store:(fun ops d -> !hook ops d)
                  schema inst
              with
              | Error vs -> Error (Illegal vs)
              | Ok dir0 ->
                  let counted = Directory.stats dir0 in
                  let scan = Wal.scan io wal_file in
                  let dir, cur, replayed, skipped, broke =
                    replay_tail dir0 ~lsn:meta.Checkpoint.lsn scan.Wal.records
                  in
                  let truncated =
                    match broke with
                    | Some _ -> broke
                    | None -> scan.Wal.truncated
                  in
                  let tail, valid_end =
                    match truncated with
                    | None -> (Clean, scan.Wal.end_offset)
                    | Some { Wal.offset; reason } ->
                        (* cut the log back to the durable prefix so the
                           next append extends valid records, not junk *)
                        Wal.truncate io wal_file ~keep:offset;
                        (Recovered_at { offset; reason }, offset)
                  in
                  let t =
                    {
                      io;
                      schema_v = schema;
                      auto_checkpoint;
                      hook;
                      dir;
                      lsn_v = cur;
                      wal_bytes_v = valid_end;
                      wal_records_v = replayed + skipped;
                      base = meta;
                      counted;
                    }
                  in
                  hook := wal_hook t;
                  Ok
                    ( t,
                      {
                        checkpoint_lsn = meta.Checkpoint.lsn;
                        replayed;
                        skipped;
                        tail;
                      } ))))
