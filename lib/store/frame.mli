(** CRC32-guarded, length-prefixed record framing.

    A frame is [len:u32le][crc:u32le][payload], where [crc] is the
    CRC-32 (IEEE 802.3) of the payload.  Framing is what turns "a file
    of bytes" into "a longest valid prefix of records": the decoder
    never raises on damaged input, it reports {e where} the valid
    prefix ends and why, so recovery can truncate there. *)

(** CRC-32 of [s], as the usual reflected polynomial 0xEDB88320. *)
val crc32 : string -> int32

val header_size : int

val encode : string -> string

type read_result =
  | Record of { payload : string; next : int }
  | End  (** clean end of input at the offset given to [read] *)
  | Torn of { offset : int; reason : string }
      (** the bytes from [offset] on are not a whole valid frame:
          truncated header, truncated or over-long payload, corrupt
          length, or CRC mismatch *)

(** [read s off] decodes the frame starting at byte [off] of [s]. *)
val read : string -> int -> read_result
