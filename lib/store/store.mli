(** Durable directory sessions.

    A store is a directory session ({!Bounds_core.Directory}) layered
    over four files inside one store directory:

    - [schema.spec] — the bounding-schema, written once at {!init} (its
      presence is the store marker: it is the last file [init] writes);
    - [checkpoint.ckpt] — one {!Frame}-wrapped snapshot of the instance
      at some log sequence number, replaced atomically only by a {e full}
      {!checkpoint} (collapse) or a bulk {!load};
    - [delta.log] — the delta-checkpoint chain: each O(Δ) {!checkpoint}
      folds the current log into it as one CRC-framed segment behind a
      marker record, collapsed into a fresh full snapshot once the chain
      exceeds the [delta_chain] threshold;
    - [wal.log] — the write-ahead transaction log: every transaction
      accepted since the last checkpoint, appended as one CRC-framed
      record {e before} {!apply} acknowledges it (via
      {!Bounds_core.Directory.commit_hook}).

    Recovery ({!open_}) loads the checkpoint, folds the delta chain and
    then the log tail in lsn order, and {e truncates} the damaged file
    at the first record that is torn, corrupt, out of sequence, or
    rejected by the legality monitor — damaged tails yield a positioned
    {!Recovered_at} report, never an exception.  Records whose lsn is
    already covered are skipped as duplicates, which is what makes both
    compaction sequences (segment-append-then-reset and
    snapshot-rewrite-then-reset) crash-safe at every intermediate
    point.

    All I/O goes through an {!Io.t}, so the same code runs against real
    files ({!Io.real}) and against the fault-injecting harness
    ({!Io.faulty}) used by the crash-recovery tests. *)

open Bounds_model
open Bounds_core

(** Store-relative file names (useful to damage a store on purpose). *)

val schema_file : string
val checkpoint_file : string
val wal_file : string
val delta_file : string

type t

type error =
  | Not_a_store of string  (** missing [schema.spec]: never initialized *)
  | Already_a_store  (** {!init} refuses to clobber an existing store *)
  | Corrupt of string  (** unreadable schema or checkpoint *)
  | Illegal of Violation.t list
      (** the initial instance ({!init}), the checkpointed instance
          ({!open_}), or the result of an untrusted bulk {!load} fails
          the admission scan *)
  | Bad_load of string
      (** a bulk {!load} feed failed (unreadable input, structurally
          impossible entry); nothing was committed *)

val error_to_string : error -> string

(** How {!open_} found the log tail. *)
type tail =
  | Clean  (** every record after the checkpoint replayed *)
  | Recovered_at of { offset : int; reason : string }
      (** the log was truncated to [offset] bytes; [reason] says what
          was wrong with the first discarded record *)

type report = {
  checkpoint_lsn : int;  (** lsn of the loaded base checkpoint *)
  replayed : int;  (** log tail records re-applied *)
  skipped : int;  (** duplicate log records (lsn already covered) skipped *)
  tail : tail;
  delta_segments : int;  (** delta-chain segments folded before the log *)
  delta_replayed : int;  (** delta-chain records re-applied *)
  delta_tail : tail;  (** how the delta chain itself ended *)
}

val pp_report : Format.formatter -> report -> unit

(** The {!report} {!open_} returned for this handle ([None] for a store
    born of {!init}) — surfaced by server stats so a recovered-at tail
    is visible over the wire, not just in the opening process's logs. *)
val recovery : t -> report option

(** [exists io] — does [io]'s root hold an initialized store? *)
val exists : Io.t -> bool

(** [init io schema inst] creates a fresh store: admission-scans [inst]
    (so an illegal seed is [Error (Illegal _)]), writes the lsn-0
    checkpoint, an empty log, and finally the schema marker.
    [auto_checkpoint] (default [0] = never) compacts automatically once
    that many records accumulate in the log. *)
val init :
  ?extensions:bool ->
  ?pool:Bounds_par.Pool.t ->
  ?auto_checkpoint:int ->
  ?delta_chain:int ->
  Io.t ->
  Schema.t ->
  Instance.t ->
  (t, error) result

(** [open_ io] recovers a store: checkpoint load + one streaming pass
    over the log ({!Wal.fold} — O(record) memory however long the log),
    then truncates any damaged tail so subsequent appends extend the
    durable prefix.  The returned {!report} says how far recovery got.

    [trusted] (default [true]) replays the tail through the trusted fast
    path ({!Directory.replay} / {!Directory.Bulk}): every logged record
    passed admission before it was acknowledged and the CRC frame
    vouches the bytes are unchanged, so legality is not re-checked and
    index maintenance is batched past a cost crossover — recovery is
    codec-decode plus state maintenance, O(|D| + Δ) instead of
    O(Δ · re-admission).  [trusted:false] re-runs full admission per
    record (the original path, kept as the differential twin and
    benchmark baseline); [ingest] forces the trusted path's batching
    regime (testing/benchmarks — the default [`Auto] applies the
    crossover). *)
val open_ :
  ?extensions:bool ->
  ?pool:Bounds_par.Pool.t ->
  ?auto_checkpoint:int ->
  ?delta_chain:int ->
  ?trusted:bool ->
  ?ingest:Directory.Bulk.mode ->
  Io.t ->
  (t * report, error) result

val schema : t -> Schema.t

(** The live session over the store's current version.  Reads
    ({!Directory.query}, {!Directory.search}, {!Directory.validate},
    …) go straight through it; writes must go through {!apply} below
    or they will not be logged. *)
val directory : t -> Directory.t

(** Last durable log sequence number. *)
val lsn : t -> int

(** Current log size in bytes / records (since the last checkpoint). *)
val wal_bytes : t -> int

val wal_records : t -> int

(** Delta-chain length / size (segments folded since the last full
    snapshot; zero right after a full {!checkpoint} or {!load}). *)
val delta_segments : t -> int

val delta_bytes : t -> int

(** Session statistics accumulated {e across} crashes: the checkpoint
    header's totals plus everything the live session has done since. *)
val stats : t -> Checkpoint.meta

(** [apply t ops] — append the transaction to the log (inside the
    session's commit hook, before acknowledgement), then advance the
    store to the new version.  Rejected transactions touch neither the
    log nor the session.  An accepted verdict carries the record's
    durable lsn ({!Bounds_core.Admission.lsn}); the advanced session is
    available through {!directory}.  Raises {!Io.Crash} only under a
    fault schedule; the on-disk prefix then still recovers. *)
val apply : t -> Update.op list -> Admission.result

(** [batch t f] — group commit.  {!apply}s made by [f] are admitted
    one by one against the rolling version exactly as usual, but their
    log records are buffered; when [f] returns they are appended in
    {e one} I/O operation — one shared fsync on a durable {!Io.real}
    handle — and only then does [batch] return [f]'s result alongside
    the per-transaction {!Bounds_core.Admission.result}s, in apply
    order.  Callers must not acknowledge any transaction of the batch
    before [batch] returns.  The resulting log bytes are identical to
    sequential {!apply}s of the same accepted transactions (same lsns,
    same frames), so recovery cannot tell batches apart — the
    group-commit equivalence the [test_net] property pins down.

    Crash/failure discipline: a crash before the shared append loses
    the whole (unacknowledged) batch; a torn append leaves a prefix of
    whole records that recovery replays — admitted but unacknowledged
    transactions, which the durability contract permits (acknowledged ⊆
    recovered).  If the append raises, the store rolls back to the
    batch-start version and lsn, and the exception propagates with the
    handle still usable.  Auto-compaction is deferred to the flush.
    Nesting [batch], or calling {!checkpoint}/{!load} inside [f], is a
    programming error. *)
val batch : t -> (unit -> 'a) -> 'a * Admission.result list

(** Compact in O(Δ): fold the current log into the delta chain — one
    append of the already-framed record bytes behind a segment marker —
    then reset the log.  Once the chain reaches [delta_chain] segments
    (or with [~full:true], or [delta_chain ≤ 0]), collapse instead:
    rewrite the whole snapshot (atomic replace), drop the chain, reset
    the log — the old O(|D|) behaviour, now amortized over the chain.

    Recovery folds base + delta chain + log under one lsn discipline, so
    every intermediate state of either sequence recovers: a torn segment
    append truncates to whole records while the un-reset log still holds
    the same lsns; a crash between append and log reset leaves
    duplicates that replay skips; a crash inside a collapse leaves
    delta/log records the new snapshot already covers. *)
val checkpoint : ?full:bool -> t -> unit

(** [load t feed] — streaming bulk load.  [feed add] drives the load,
    calling [add ~parent entry] once per entry (parents before
    children, ids fresh for the store); entries flow straight into a
    {!Directory.Bulk} builder, so arbitrarily large dumps load in
    O(entry) working memory and one bulk index build.  Unless [trust]
    is set, the final instance must pass {e one} full admission check
    ([Error (Illegal _)] otherwise); [trust] skips it for
    pre-validated dumps.  Nothing is committed until the feed and the
    check succeed — the commit is an atomic checkpoint replace plus log
    reset (loaded entries bypass the WAL deliberately), after which
    [Ok n] reports the entries added.  An [Error] from [feed] or a
    structurally impossible entry aborts with [Bad_load] and the store
    is unchanged. *)
val load :
  ?trust:bool ->
  t ->
  ((parent:Entry.id option -> Entry.t -> (unit, string) result) ->
  (unit, string) result) ->
  (int, error) result

(** Shut down the session's pool, if it owns one. *)
val close : t -> unit

(** {1 Replication — WAL shipment}

    A primary streams every acknowledged record to its subscribers; a
    replica applies them through the trusted {!Directory.replay} path
    under the recovery lsn discipline.  The paper's
    admission-at-acknowledge argument (Theorem 4.1 — the same one that
    justifies trusted replay) is what makes re-checking legality on the
    replica unnecessary: the record was admitted when the primary
    acknowledged it, and the frame CRC vouches the bytes are unchanged. *)

(** One event on the replication feed. *)
type ship =
  | Ship_txn of { lsn : int; ops : Update.op list }
      (** a record, fired only once its bytes are durable on the
          primary — after the append in {!apply}, after the shared
          flush in {!batch} *)
  | Ship_mark of { lsn : int }
      (** the primary compacted ({!checkpoint}); replicas may fold
          their own logs on the same beat *)

(** Install (or clear) the feed hook.  The hook runs on the committing
    thread, after durability and before {!apply}/{!batch} return —
    i.e. on the exact beat the caller is first allowed to acknowledge.
    A raising hook is ignored: the feed can never fail a commit that is
    already durable. *)
val set_ship_hook : t -> (ship -> unit) option -> unit

(** [records_from t ~lsn] — catch a subscriber up: every durable record
    with lsn strictly greater than [lsn], oldest first (delta chain,
    then log).  [`Too_old] when the base checkpoint already folded lsns
    past [lsn] (or [lsn] is beyond this store's history): the
    subscriber needs a {!boot_blob} bootstrap instead. *)
val records_from :
  t -> lsn:int -> [ `Records of (int * Update.op list) list | `Too_old ]

(** The current version as a bootstrap package:
    [(schema text, checkpoint blob, lsn)].  O(|D|) — the feed sends it
    once per subscriber that cannot catch up from the logs. *)
val boot_blob : t -> string * string * int

(** [install_snapshot io ~schema ~checkpoint] writes a shipped
    bootstrap package as a store directory (validating the blob against
    the schema first), replacing any store already there; re-open with
    {!open_}.  Marker-last write order keeps every crash point
    recoverable. *)
val install_snapshot :
  Io.t -> schema:string -> checkpoint:string -> (unit, string) result

(** [replica_apply t ~lsn ops] — the replica's write surface: log the
    shipped record durably (acknowledged ⊆ recovered holds on the
    replica too), then apply it through trusted {!Directory.replay}.
    [Ok `Duplicate] when [lsn] is already covered (the overlap a
    resume-from-lsn re-subscription produces — never re-applied);
    [Error] on an lsn gap or an unappliable record, with the log left
    on its durable prefix — the caller should re-bootstrap. *)
val replica_apply :
  t -> lsn:int -> Update.op list -> ([ `Applied | `Duplicate ], string) result
