open Bounds_model

(* All integers are fixed-width little-endian: WAL records are small and
   short-lived in memory, so simplicity beats varint compactness. *)

(* --- writer ------------------------------------------------------------- *)

let put_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_str buf s =
  Buffer.add_int32_le buf (Int32.of_int (String.length s));
  Buffer.add_string buf s

let put_value buf = function
  | Value.String s ->
      Buffer.add_char buf '\000';
      put_str buf s
  | Value.Int n ->
      Buffer.add_char buf '\001';
      put_i64 buf n
  | Value.Bool b ->
      Buffer.add_char buf '\002';
      Buffer.add_char buf (if b then '\001' else '\000')
  | Value.Dn d ->
      Buffer.add_char buf '\003';
      put_str buf d

let put_entry buf e =
  put_i64 buf (Entry.id e);
  put_str buf (Entry.rdn e);
  let classes = Oclass.Set.elements (Entry.classes e) in
  Buffer.add_int32_le buf (Int32.of_int (List.length classes));
  List.iter (fun c -> put_str buf (Oclass.to_string c)) classes;
  let pairs = Entry.stored_pairs e in
  Buffer.add_int32_le buf (Int32.of_int (List.length pairs));
  List.iter
    (fun (a, v) ->
      put_str buf (Attr.to_string a);
      put_value buf v)
    pairs

let put_op buf = function
  | Update.Insert { parent; entry } ->
      Buffer.add_char buf '\000';
      (match parent with
      | None -> Buffer.add_char buf '\000'
      | Some p ->
          Buffer.add_char buf '\001';
          put_i64 buf p);
      put_entry buf entry
  | Update.Delete id ->
      Buffer.add_char buf '\001';
      put_i64 buf id

let encode_txn ~lsn ops =
  let buf = Buffer.create 256 in
  put_i64 buf lsn;
  Buffer.add_int32_le buf (Int32.of_int (List.length ops));
  List.iter (put_op buf) ops;
  Buffer.contents buf

(* --- reader ------------------------------------------------------------- *)

exception Bad of string

let bad pos fmt = Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "byte %d: %s" pos m))) fmt

type cursor = { s : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.s then
    bad c.pos "truncated payload (need %d bytes, have %d)" n
      (String.length c.s - c.pos)

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string c.s) c.pos) in
  c.pos <- c.pos + 8;
  v

let get_count c what =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le (Bytes.unsafe_of_string c.s) c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 || v > String.length c.s then bad (c.pos - 4) "corrupt %s count %d" what v;
  v

let get_str c =
  let n = get_count c "string" in
  need c n;
  let v = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  v

let get_value c =
  let at = c.pos in
  match get_u8 c with
  | 0 -> Value.String (get_str c)
  | 1 -> Value.Int (get_i64 c)
  | 2 -> Value.Bool (get_u8 c <> 0)
  | 3 -> Value.Dn (get_str c)
  | t -> bad at "unknown value tag %d" t

let get_entry c =
  let id = get_i64 c in
  let rdn = get_str c in
  let n_classes = get_count c "class" in
  let classes = ref Oclass.Set.empty in
  for _ = 1 to n_classes do
    let at = c.pos in
    let name = get_str c in
    match Oclass.of_string_opt name with
    | Some cls -> classes := Oclass.Set.add cls !classes
    | None -> bad at "invalid class name %S" name
  done;
  let n_pairs = get_count c "pair" in
  let pairs = ref [] in
  for _ = 1 to n_pairs do
    let at = c.pos in
    let name = get_str c in
    match Attr.of_string_opt name with
    | None -> bad at "invalid attribute name %S" name
    | Some a -> pairs := (a, get_value c) :: !pairs
  done;
  try Entry.make ~id ~rdn ~classes:!classes (List.rev !pairs)
  with Invalid_argument m -> bad c.pos "malformed entry: %s" m

let get_op c =
  let at = c.pos in
  match get_u8 c with
  | 0 ->
      let parent =
        let at = c.pos in
        match get_u8 c with
        | 0 -> None
        | 1 -> Some (get_i64 c)
        | t -> bad at "unknown parent tag %d" t
      in
      Update.Insert { parent; entry = get_entry c }
  | 1 -> Update.Delete (get_i64 c)
  | t -> bad at "unknown op tag %d" t

let decode_txn s =
  try
    let c = { s; pos = 0 } in
    let lsn = get_i64 c in
    if lsn < 0 then bad 0 "corrupt lsn %d" lsn;
    let n = get_count c "op" in
    let ops = ref [] in
    for _ = 1 to n do
      ops := get_op c :: !ops
    done;
    let ops = List.rev !ops in
    if c.pos <> String.length s then
      bad c.pos "%d trailing bytes" (String.length s - c.pos);
    Ok (lsn, ops)
  with Bad m -> Error m
