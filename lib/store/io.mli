(** Injectable file I/O for the durable store.

    Every byte the store reads or writes goes through one of these
    handles, so crash behaviour is testable from pure OCaml: {!faulty}
    wraps any handle with a deterministic fault schedule that can kill
    the "process" ({!Crash}), tear a write at a byte offset, or flip a
    bit of a payload — and an in-memory file system ({!mem}) survives
    the simulated death, so a test can crash one handle and recover
    through a fresh one over the same state.

    Operations are whole-file reads, atomic replaces, and synced
    appends — exactly the primitives a log-structured store needs, and
    few enough that the fault schedule stays meaningful. *)

(** Raised by a faulty handle when its schedule says the process dies
    here; every later operation on the same handle raises it again (a
    dead process does not come back). *)
exception Crash

(** A handle is an open record so tests can wrap individual operations
    (e.g. to trace append sizes before choosing crash points).  [write]
    is an atomic create-or-replace; [append] appends and makes the new
    bytes durable; [read] returns [None] for a missing file; [remove] is
    idempotent; [rename] atomically replaces the destination. *)
type t = {
  read : string -> string option;
  write : string -> string -> unit;
  append : string -> string -> unit;
  remove : string -> unit;
  rename : string -> string -> unit;
}

(** {1 Real files} *)

(** [real ~root] resolves paths under the directory [root] (created if
    missing); stale temp files from interrupted writers are removed.

    [write] goes through a uniquely-named temporary file (pid +
    counter, so concurrent writers never corrupt each other) and
    [Sys.rename], so a reader never observes a half-written file.

    [fsync] (default [true]) is what makes the handle {e durable}, not
    just atomic: the file descriptor is fsynced before every
    close/rename and the store directory is fsynced after renames and
    file-creating appends, so once [write]/[append] returns the bytes
    survive power loss — the property the WAL's written-pre-acknowledge
    argument rests on.  [~fsync:false] stops at the OS page cache
    (atomicity against concurrent readers is kept, durability is not):
    for benchmarks that isolate fsync cost, never for stores whose
    acknowledgements anyone trusts. *)
val real : ?fsync:bool -> root:string -> unit -> t

(** {1 In-memory files} *)

(** The backing state of {!mem} handles: a path → contents map that
    outlives any individual handle.  Append-heavy files are held as
    growable buffers internally (appends are amortized O(|data|), not
    O(|file|) — scripted fuzz/crash sessions append thousands of
    records), materialized on read. *)
type fs

val fresh_fs : unit -> fs

(** An independent snapshot of the state — replay many fault schedules
    from one prepared base. *)
val copy_fs : fs -> fs

val mem : fs -> t

(** Test access to the raw state, for building corruption scenarios
    directly ([read_fs] of a missing path is [None]). *)
val read_fs : fs -> string -> string option

val write_fs : fs -> string -> string -> unit
val remove_fs : fs -> string -> unit

(** {1 Fault injection} *)

(** Faults are scheduled by {e mutating-operation index}: the [op]th
    call to [write]/[append]/[remove]/[rename] on the handle, counting
    from 0.  Reads never count and never fail (a dead handle raises
    {!Crash} on them anyway).

    - [Crash_at] dies before the operation touches anything.
    - [Tear] applies only the first [keep] bytes of the operation's
      payload, then dies — a torn write.  On [remove]/[rename] (no
      payload) it behaves like [Crash_at].
    - [Flip] damages bit [bit] of byte [byte] of the payload and lets
      the operation succeed — silent corruption, no crash. *)
type fault =
  | Crash_at of int
  | Tear of { op : int; keep : int }
  | Flip of { op : int; byte : int; bit : int }

(** [faulty ~faults io] wraps [io] with the schedule.  Multiple faults
    may target distinct ops; the first crash-fault to fire marks the
    handle dead. *)
val faulty : faults:fault list -> t -> t

(** [counting io] returns a wrapped handle plus a function listing, in
    op order, each mutating operation performed through it as
    [(op_index, payload_size)] ([remove]/[rename] record size 0) — the
    raw material for enumerating every crash point of a scenario. *)
val counting : t -> t * (unit -> (int * int) list)
