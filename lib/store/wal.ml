open Bounds_model

type record = { offset : int; lsn : int; ops : Update.op list }
type truncation = { offset : int; reason : string }

type scan = {
  records : record list;
  end_offset : int;
  truncated : truncation option;
}

let scan io path =
  match io.Io.read path with
  | None -> { records = []; end_offset = 0; truncated = None }
  | Some raw ->
      let rec go acc off =
        match Frame.read raw off with
        | Frame.End -> { records = List.rev acc; end_offset = off; truncated = None }
        | Frame.Torn { offset; reason } ->
            {
              records = List.rev acc;
              end_offset = off;
              truncated = Some { offset; reason };
            }
        | Frame.Record { payload; next } -> (
            match Codec.decode_txn payload with
            | Ok (lsn, ops) -> go ({ offset = off; lsn; ops } :: acc) next
            | Error reason ->
                {
                  records = List.rev acc;
                  end_offset = off;
                  truncated = Some { offset = off; reason };
                })
      in
      go [] 0

let append io path ~lsn ops =
  io.Io.append path (Frame.encode (Codec.encode_txn ~lsn ops))

let record_size ops =
  Frame.header_size + String.length (Codec.encode_txn ~lsn:0 ops)

let reset io path = io.Io.write path ""

let truncate io path ~keep =
  match io.Io.read path with
  | None -> ()
  | Some raw ->
      let keep = max 0 (min keep (String.length raw)) in
      io.Io.write path (String.sub raw 0 keep)
