open Bounds_model

type record = { offset : int; lsn : int; ops : Update.op list }
type truncation = { offset : int; reason : string }

type 'a folded = { acc : 'a; end_offset : int; truncated : truncation option }

(* One frame is decoded, handed to [f], and dropped before the next is
   read: the only per-record allocation that outlives a step is whatever
   [f] keeps, so a scan of an arbitrarily long log runs in O(record)
   memory (plus the raw bytes, which the {!Io} abstraction reads whole). *)
let fold io path f init =
  match io.Io.read path with
  | None -> { acc = init; end_offset = 0; truncated = None }
  | Some raw ->
      let rec go acc off =
        match Frame.read raw off with
        | Frame.End -> { acc; end_offset = off; truncated = None }
        | Frame.Torn { offset; reason } ->
            { acc; end_offset = off; truncated = Some { offset; reason } }
        | Frame.Record { payload; next } -> (
            match Codec.decode_txn payload with
            | Ok (lsn, ops) -> go (f acc { offset = off; lsn; ops }) next
            | Error reason ->
                { acc; end_offset = off; truncated = Some { offset = off; reason } })
      in
      go init 0

(* Lsn-addressed replay for replication catch-up: skip every record a
   subscriber already holds (lsn ≤ [lsn]) and the lsn-0 segment markers,
   stream the rest.  Same totality as [fold]. *)
let fold_from io path ~lsn f init =
  fold io path
    (fun acc r -> if r.lsn <= lsn then acc else f acc r)
    init

type scan = {
  records : record list;
  end_offset : int;
  truncated : truncation option;
}

let scan io path =
  let { acc; end_offset; truncated } =
    fold io path (fun acc r -> r :: acc) []
  in
  { records = List.rev acc; end_offset; truncated }

let encode_record ~lsn ops = Frame.encode (Codec.encode_txn ~lsn ops)

let append_raw io path framed = io.Io.append path framed

let append io path ~lsn ops =
  let framed = encode_record ~lsn ops in
  append_raw io path framed;
  String.length framed

let record_size ops =
  Frame.header_size + String.length (Codec.encode_txn ~lsn:0 ops)

let reset io path = io.Io.write path ""

let truncate io path ~keep =
  match io.Io.read path with
  | None -> ()
  | Some raw ->
      let keep = max 0 (min keep (String.length raw)) in
      io.Io.write path (String.sub raw 0 keep)
