(** Binary codec for logged transactions.

    A WAL payload is one accepted transaction: its log sequence number
    and its raw operation list, encoded {e structurally} (ids, rdns,
    class sets, typed values) so that replay reconstructs exactly the
    ops {!Bounds_core.Directory.apply} accepted — independently of the
    LDIF/value printers, which have their own round-trip oracles.

    The decoder is total: any malformed byte yields [Error] with an
    offset-positioned message, never an exception — a frame whose CRC
    matches but whose payload fails here is still just a damaged tail
    to truncate at. *)

open Bounds_model

val encode_txn : lsn:int -> Update.op list -> string

val decode_txn : string -> (int * Update.op list, string) result
