exception Crash

type t = {
  read : string -> string option;
  write : string -> string -> unit;
  append : string -> string -> unit;
  remove : string -> unit;
  rename : string -> string -> unit;
}

(* --- real files -------------------------------------------------------- *)

(* Unique temp-file suffix: two writers (a server checkpoint racing a CLI
   [checkpoint] verb) must never share a temp path, or each clobbers the
   other's half-written bytes before the rename.  pid + per-process
   counter keeps names distinct across processes and within one. *)
let tmp_counter = Atomic.make 0

let tmp_name name =
  Printf.sprintf "%s.tmp.%d.%d" name (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

let is_tmp name =
  (* [base.tmp.pid.k] — anything an interrupted writer may have left *)
  let rec has_sub i =
    i + 4 <= String.length name
    && (String.sub name i 4 = ".tmp" || has_sub (i + 1))
  in
  has_sub 0

(* fsync a directory so a just-renamed or just-created entry survives
   power loss (POSIX durability requires syncing the parent too).  Some
   filesystems refuse fsync on a directory fd; that leaves us no worse
   than before, so the error is swallowed. *)
let fsync_dir path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let real ?(fsync = true) ~root () =
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  (* clean up temp files a crashed or interrupted writer left behind:
     they are by construction un-renamed, i.e. never part of the store *)
  Array.iter
    (fun name ->
      if is_tmp name then try Sys.remove (Filename.concat root name) with Sys_error _ -> ())
    (Sys.readdir root);
  let p name = Filename.concat root name in
  let sync_channel oc =
    flush oc;
    if fsync then Unix.fsync (Unix.descr_of_out_channel oc)
  in
  let read name =
    let path = p name in
    if not (Sys.file_exists path) then None
    else
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
  in
  let write name data =
    (* create-or-replace through a unique temp file and [Sys.rename].
       What is guaranteed: readers never observe a half-written file
       (rename is atomic on POSIX), and — with [fsync] — once [write]
       returns, the new contents survive power loss (file fsynced before
       the rename, directory fsynced after it).  Without [fsync] the
       rename is still atomic against concurrent readers, but a crash
       can roll the file back to its previous contents, or to nothing. *)
    let tmp = p (tmp_name name) in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc data;
        sync_channel oc);
    Sys.rename tmp (p name);
    if fsync then fsync_dir root
  in
  let append name data =
    let path = p name in
    let created = not (Sys.file_exists path) in
    let oc =
      open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
        path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc data;
        (* durability stops at the OS page cache unless the fd is
           fsynced before [append] returns: this is what lets the store
           acknowledge a transaction as durable *)
        sync_channel oc);
    if fsync && created then fsync_dir root
  in
  let remove name = if Sys.file_exists (p name) then Sys.remove (p name) in
  let rename a b =
    Sys.rename (p a) (p b);
    if fsync then fsync_dir root
  in
  { read; write; append; remove; rename }

(* --- in-memory files --------------------------------------------------- *)

(* Hot append paths (fuzz and crash-point suites replay whole scripted
   sessions against [mem]) must not rebuild the file per record — an
   O(n^2) log.  Files therefore live as either a materialized string or
   an append [Buffer]; [read] materializes a buffer-backed file without
   flipping its representation, so an append-heavy file stays cheap. *)
type node = Str of string | Buf of Buffer.t

type fs = (string, node) Hashtbl.t

let fresh_fs () : fs = Hashtbl.create 8

let copy_fs (fs : fs) : fs =
  (* deep copy: a shared [Buffer] would leak appends across snapshots *)
  let out = Hashtbl.create (Hashtbl.length fs) in
  Hashtbl.iter
    (fun name node ->
      let node' =
        match node with
        | Str s -> Str s
        | Buf b ->
            let b' = Buffer.create (Buffer.length b + 64) in
            Buffer.add_buffer b' b;
            Buf b'
      in
      Hashtbl.replace out name node')
    fs;
  out

let materialize = function Str s -> s | Buf b -> Buffer.contents b

let read_fs fs name = Option.map materialize (Hashtbl.find_opt fs name)
let write_fs fs name data = Hashtbl.replace fs name (Str data)
let remove_fs fs name = Hashtbl.remove fs name

let append_fs fs name data =
  match Hashtbl.find_opt fs name with
  | Some (Buf b) -> Buffer.add_string b data
  | (Some (Str _) | None) as prev ->
      let b = Buffer.create (String.length data + 256) in
      (match prev with Some (Str s) -> Buffer.add_string b s | _ -> ());
      Buffer.add_string b data;
      Hashtbl.replace fs name (Buf b)

let mem fs =
  {
    read = (fun name -> read_fs fs name);
    write = (fun name data -> write_fs fs name data);
    append = (fun name data -> append_fs fs name data);
    remove = (fun name -> Hashtbl.remove fs name);
    rename =
      (fun a b ->
        match Hashtbl.find_opt fs a with
        | None -> raise (Sys_error (a ^ ": no such file"))
        | Some node ->
            Hashtbl.remove fs a;
            Hashtbl.replace fs b node);
  }

(* --- fault injection ---------------------------------------------------- *)

type fault =
  | Crash_at of int
  | Tear of { op : int; keep : int }
  | Flip of { op : int; byte : int; bit : int }

let flip_payload ~byte ~bit data =
  if byte < 0 || byte >= String.length data then data
  else begin
    let b = Bytes.of_string data in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit land 7))));
    Bytes.to_string b
  end

let faulty ~faults io =
  let op = ref 0 in
  let dead = ref false in
  let guard () = if !dead then raise Crash in
  (* [step payload apply] — run one mutating operation under the
     schedule; [apply] consumes the (possibly damaged) payload. *)
  let step payload apply =
    guard ();
    let here = !op in
    incr op;
    let fault =
      List.find_opt
        (function
          | Crash_at o -> o = here
          | Tear { op = o; _ } -> o = here
          | Flip { op = o; _ } -> o = here)
        faults
    in
    match fault with
    | None -> apply payload
    | Some (Crash_at _) ->
        dead := true;
        raise Crash
    | Some (Tear { keep; _ }) ->
        let keep = max 0 (min keep (String.length payload)) in
        if keep > 0 then apply (String.sub payload 0 keep);
        dead := true;
        raise Crash
    | Some (Flip { byte; bit; _ }) -> apply (flip_payload ~byte ~bit payload)
  in
  {
    read =
      (fun name ->
        guard ();
        io.read name);
    write = (fun name data -> step data (fun d -> io.write name d));
    append = (fun name data -> step data (fun d -> io.append name d));
    remove = (fun name -> step "" (fun _ -> io.remove name));
    rename = (fun a b -> step "" (fun _ -> io.rename a b));
  }

let counting io =
  let sizes = ref [] in
  let note n =
    sizes := n :: !sizes;
    ()
  in
  let t =
    {
      read = io.read;
      write =
        (fun name data ->
          note (String.length data);
          io.write name data);
      append =
        (fun name data ->
          note (String.length data);
          io.append name data);
      remove =
        (fun name ->
          note 0;
          io.remove name);
      rename =
        (fun a b ->
          note 0;
          io.rename a b);
    }
  in
  (t, fun () -> List.mapi (fun i n -> (i, n)) (List.rev !sizes))
