exception Crash

type t = {
  read : string -> string option;
  write : string -> string -> unit;
  append : string -> string -> unit;
  remove : string -> unit;
  rename : string -> string -> unit;
}

(* --- real files -------------------------------------------------------- *)

let real ~root =
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  let p name = Filename.concat root name in
  let read name =
    let path = p name in
    if not (Sys.file_exists path) then None
    else
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))
  in
  let write name data =
    (* atomic create-or-replace: a crash leaves either the old file or
       the new one, never a prefix *)
    let tmp = p (name ^ ".tmp") in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc data;
        flush oc);
    Sys.rename tmp (p name)
  in
  let append name data =
    let oc =
      open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
        (p name)
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc data;
        flush oc)
  in
  let remove name = if Sys.file_exists (p name) then Sys.remove (p name) in
  let rename a b = Sys.rename (p a) (p b) in
  { read; write; append; remove; rename }

(* --- in-memory files --------------------------------------------------- *)

type fs = (string, string) Hashtbl.t

let fresh_fs () : fs = Hashtbl.create 8
let copy_fs : fs -> fs = Hashtbl.copy
let read_fs fs name = Hashtbl.find_opt fs name
let write_fs fs name data = Hashtbl.replace fs name data
let remove_fs fs name = Hashtbl.remove fs name

let mem fs =
  {
    read = (fun name -> Hashtbl.find_opt fs name);
    write = (fun name data -> Hashtbl.replace fs name data);
    append =
      (fun name data ->
        let old = Option.value ~default:"" (Hashtbl.find_opt fs name) in
        Hashtbl.replace fs name (old ^ data));
    remove = (fun name -> Hashtbl.remove fs name);
    rename =
      (fun a b ->
        match Hashtbl.find_opt fs a with
        | None -> raise (Sys_error (a ^ ": no such file"))
        | Some data ->
            Hashtbl.remove fs a;
            Hashtbl.replace fs b data);
  }

(* --- fault injection ---------------------------------------------------- *)

type fault =
  | Crash_at of int
  | Tear of { op : int; keep : int }
  | Flip of { op : int; byte : int; bit : int }

let flip_payload ~byte ~bit data =
  if byte < 0 || byte >= String.length data then data
  else begin
    let b = Bytes.of_string data in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit land 7))));
    Bytes.to_string b
  end

let faulty ~faults io =
  let op = ref 0 in
  let dead = ref false in
  let guard () = if !dead then raise Crash in
  (* [step payload apply] — run one mutating operation under the
     schedule; [apply] consumes the (possibly damaged) payload. *)
  let step payload apply =
    guard ();
    let here = !op in
    incr op;
    let fault =
      List.find_opt
        (function
          | Crash_at o -> o = here
          | Tear { op = o; _ } -> o = here
          | Flip { op = o; _ } -> o = here)
        faults
    in
    match fault with
    | None -> apply payload
    | Some (Crash_at _) ->
        dead := true;
        raise Crash
    | Some (Tear { keep; _ }) ->
        let keep = max 0 (min keep (String.length payload)) in
        if keep > 0 then apply (String.sub payload 0 keep);
        dead := true;
        raise Crash
    | Some (Flip { byte; bit; _ }) -> apply (flip_payload ~byte ~bit payload)
  in
  {
    read =
      (fun name ->
        guard ();
        io.read name);
    write = (fun name data -> step data (fun d -> io.write name d));
    append = (fun name data -> step data (fun d -> io.append name d));
    remove = (fun name -> step "" (fun _ -> io.remove name));
    rename = (fun a b -> step "" (fun _ -> io.rename a b));
  }

let counting io =
  let sizes = ref [] in
  let note n =
    sizes := n :: !sizes;
    ()
  in
  let t =
    {
      read = io.read;
      write =
        (fun name data ->
          note (String.length data);
          io.write name data);
      append =
        (fun name data ->
          note (String.length data);
          io.append name data);
      remove =
        (fun name ->
          note 0;
          io.remove name);
      rename =
        (fun a b ->
          note 0;
          io.rename a b);
    }
  in
  (t, fun () -> List.mapi (fun i n -> (i, n)) (List.rev !sizes))
