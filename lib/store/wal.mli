(** The write-ahead transaction log.

    An append-only file of {!Frame}-wrapped {!Codec} transactions, one
    per accepted update.  Appends are O(|Δ|) — the whole point of
    logging instead of rewriting the instance — and the scanner is
    total: a damaged tail (torn header, torn payload, flipped bit,
    undecodable ops) ends the valid prefix with a positioned reason and
    never raises. *)

open Bounds_model

type record = {
  offset : int;  (** byte offset of the record's frame in the log *)
  lsn : int;
  ops : Update.op list;
}

type truncation = { offset : int; reason : string }

type scan = {
  records : record list;  (** the longest decodable prefix, in order *)
  end_offset : int;  (** where that prefix ends *)
  truncated : truncation option;
      (** damage past [end_offset], if the log does not end cleanly *)
}

(** [scan io path] — a missing log is an empty one. *)
val scan : Io.t -> string -> scan

val append : Io.t -> string -> lsn:int -> Update.op list -> unit

(** Size in bytes of one logged transaction (frame included). *)
val record_size : Update.op list -> int

(** Reset to empty (log compaction after a checkpoint). *)
val reset : Io.t -> string -> unit

(** [truncate io path ~keep] atomically rewrites the log to its first
    [keep] bytes — recovery chops a damaged tail with this so later
    appends extend the valid prefix, not the garbage. *)
val truncate : Io.t -> string -> keep:int -> unit
