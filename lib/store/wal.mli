(** The write-ahead transaction log.

    An append-only file of {!Frame}-wrapped {!Codec} transactions, one
    per accepted update.  Appends are O(|Δ|) — the whole point of
    logging instead of rewriting the instance — and the scanner is
    total: a damaged tail (torn header, torn payload, flipped bit,
    undecodable ops) ends the valid prefix with a positioned reason and
    never raises. *)

open Bounds_model

type record = {
  offset : int;  (** byte offset of the record's frame in the log *)
  lsn : int;
  ops : Update.op list;
}

type truncation = { offset : int; reason : string }

type 'a folded = {
  acc : 'a;
  end_offset : int;  (** where the longest decodable prefix ends *)
  truncated : truncation option;
      (** damage past [end_offset], if the log does not end cleanly *)
}

(** [fold io path f init] streams the longest decodable prefix in order,
    decoding one record at a time — recovery over a long log runs in
    O(record) memory instead of materializing the whole record list.  A
    missing log is an empty one; like {!scan}, damage ends the fold with
    a positioned reason and never raises. *)
val fold : Io.t -> string -> ('a -> record -> 'a) -> 'a -> 'a folded

(** [fold_from io path ~lsn f init] — {!fold} restricted to records with
    lsn strictly greater than [lsn]: the catch-up read of WAL shipment
    (a subscriber names the last lsn it holds; segment markers carry
    lsn 0 and are skipped with the other duplicates). *)
val fold_from :
  Io.t -> string -> lsn:int -> ('a -> record -> 'a) -> 'a -> 'a folded

type scan = {
  records : record list;  (** the longest decodable prefix, in order *)
  end_offset : int;  (** where that prefix ends *)
  truncated : truncation option;
      (** damage past [end_offset], if the log does not end cleanly *)
}

(** [scan io path] — {!fold} materialized, for callers that want the
    whole list (e.g. the [log] inspection verb). *)
val scan : Io.t -> string -> scan

(** Appends one record and returns its size in bytes (frame included),
    so the caller's byte accounting reuses the encoding just written
    instead of encoding the transaction a second time. *)
val append : Io.t -> string -> lsn:int -> Update.op list -> int

(** One record as its on-log bytes (frame included) without writing it —
    group commit buffers these and lands a whole batch with one
    {!append_raw}. *)
val encode_record : lsn:int -> Update.op list -> string

(** Append pre-encoded record bytes (a concatenation of
    {!encode_record}s) in {e one} I/O operation — and so, on a durable
    {!Io.real} handle, one shared fsync for every record in the batch.
    Byte-equivalent to appending the records one at a time. *)
val append_raw : Io.t -> string -> string -> unit

(** Size in bytes of one logged transaction (frame included). *)
val record_size : Update.op list -> int

(** Reset to empty (log compaction after a checkpoint). *)
val reset : Io.t -> string -> unit

(** [truncate io path ~keep] atomically rewrites the log to its first
    [keep] bytes — recovery chops a damaged tail with this so later
    appends extend the valid prefix, not the garbage. *)
val truncate : Io.t -> string -> keep:int -> unit
