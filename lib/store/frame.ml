(* --- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) ------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = (Int32.to_int !c lxor Char.code ch) land 0xff in
      c := Int32.logxor (Int32.shift_right_logical !c 8) table.(i))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- framing ------------------------------------------------------------ *)

let header_size = 8

let encode payload =
  let b = Bytes.create (header_size + String.length payload) in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length payload));
  Bytes.set_int32_le b 4 (crc32 payload);
  Bytes.blit_string payload 0 b header_size (String.length payload);
  Bytes.to_string b

type read_result =
  | Record of { payload : string; next : int }
  | End
  | Torn of { offset : int; reason : string }

let read s off =
  let n = String.length s in
  if off = n then End
  else if off + header_size > n then
    Torn { offset = off; reason = "truncated frame header" }
  else
    let b = Bytes.unsafe_of_string s in
    let len = Int32.to_int (Bytes.get_int32_le b off) in
    let crc = Bytes.get_int32_le b (off + 4) in
    if len < 0 then Torn { offset = off; reason = "corrupt frame length" }
    else if off + header_size + len > n then
      Torn { offset = off; reason = "truncated frame payload" }
    else
      let payload = String.sub s (off + header_size) len in
      if crc32 payload <> crc then
        Torn { offset = off; reason = "crc mismatch" }
      else Record { payload; next = off + header_size + len }
