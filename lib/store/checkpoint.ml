open Bounds_model

type meta = {
  lsn : int;
  entries : int;
  applied : int;
  rejected : int;
  queries : int;
  memo_hits : int;
  memo_misses : int;
  memo_entries : int;
}

let format_tag = "bounds-store checkpoint v1"

let write io path meta inst =
  let ids = ref [] in
  Instance.iter_preorder (fun ~depth:_ e -> ids := Entry.id e :: !ids) inst;
  let ids = List.rev !ids in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (format_tag ^ "\n");
  Buffer.add_string buf (Printf.sprintf "lsn: %d\n" meta.lsn);
  Buffer.add_string buf (Printf.sprintf "entries: %d\n" meta.entries);
  Buffer.add_string buf
    (Printf.sprintf "stats: applied %d rejected %d queries %d\n" meta.applied
       meta.rejected meta.queries);
  Buffer.add_string buf
    (Printf.sprintf "memo: hits %d misses %d entries %d\n" meta.memo_hits
       meta.memo_misses meta.memo_entries);
  Buffer.add_string buf
    ("ids:"
    ^ String.concat "" (List.map (Printf.sprintf " %d") ids)
    ^ "\n\n");
  Buffer.add_string buf (Bounds_codec.Ldif.to_string inst);
  let tmp = path ^ ".new" in
  io.Io.write tmp (Frame.encode (Buffer.contents buf));
  io.Io.rename tmp path

(* --- reading ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let unframe io path =
  match io.Io.read path with
  | None -> Error "no checkpoint"
  | Some raw -> (
      match Frame.read raw 0 with
      | Frame.End -> Error "empty checkpoint file"
      | Frame.Torn { reason; _ } -> Error ("damaged checkpoint: " ^ reason)
      | Frame.Record { payload; next } ->
          if next <> String.length raw then
            Error "trailing bytes after checkpoint frame"
          else Ok payload)

(* header lines end at the first blank line; the rest is the LDIF body *)
let split_header payload =
  let rec go start acc =
    match String.index_from_opt payload start '\n' with
    | None -> Error "checkpoint header has no terminating blank line"
    | Some j ->
        let line = String.sub payload start (j - start) in
        if line = "" then
          Ok (List.rev acc, String.sub payload (j + 1) (String.length payload - j - 1))
        else go (j + 1) (line :: acc)
  in
  go 0 []

let field name line =
  let prefix = name ^ ":" in
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some (String.trim (String.sub line n (String.length line - n)))
  else None

let int_field name line =
  match field name line with
  | None -> None
  | Some v -> int_of_string_opt v

let parse_header lines =
  match lines with
  | tag :: lsn :: entries :: stats :: memo :: ids :: [] ->
      if tag <> format_tag then Error (Printf.sprintf "unknown checkpoint format %S" tag)
      else
        let* lsn =
          Option.to_result ~none:"bad lsn line" (int_field "lsn" lsn)
        in
        let* entries =
          Option.to_result ~none:"bad entries line" (int_field "entries" entries)
        in
        let* applied, rejected, queries =
          match field "stats" stats with
          | Some s -> (
              match String.split_on_char ' ' s with
              | [ "applied"; a; "rejected"; r; "queries"; q ] -> (
                  match
                    (int_of_string_opt a, int_of_string_opt r, int_of_string_opt q)
                  with
                  | Some a, Some r, Some q -> Ok (a, r, q)
                  | _ -> Error "bad stats line")
              | _ -> Error "bad stats line")
          | None -> Error "bad stats line"
        in
        let* memo_hits, memo_misses, memo_entries =
          match field "memo" memo with
          | Some s -> (
              match String.split_on_char ' ' s with
              | [ "hits"; h; "misses"; m; "entries"; e ] -> (
                  match
                    (int_of_string_opt h, int_of_string_opt m, int_of_string_opt e)
                  with
                  | Some h, Some m, Some e -> Ok (h, m, e)
                  | _ -> Error "bad memo line")
              | _ -> Error "bad memo line")
          | None -> Error "bad memo line"
        in
        let* ids =
          match field "ids" ids with
          | None -> Error "bad ids line"
          | Some s ->
              let parts =
                List.filter (fun p -> p <> "") (String.split_on_char ' ' s)
              in
              let rec to_ints acc = function
                | [] -> Ok (List.rev acc)
                | p :: rest -> (
                    match int_of_string_opt p with
                    | Some i -> to_ints (i :: acc) rest
                    | None -> Error (Printf.sprintf "bad id %S" p))
              in
              to_ints [] parts
        in
        if List.length ids <> entries then
          Error
            (Printf.sprintf "id list has %d entries, header says %d"
               (List.length ids) entries)
        else
          Ok
            ( {
                lsn;
                entries;
                applied;
                rejected;
                queries;
                memo_hits;
                memo_misses;
                memo_entries;
              },
              Array.of_list ids )
  | _ -> Error "checkpoint header is incomplete"

let read_meta io path =
  let* payload = unframe io path in
  let* lines, _ldif = split_header payload in
  let* meta, _ids = parse_header lines in
  Ok meta

let read io path ~typing =
  let* payload = unframe io path in
  let* lines, ldif = split_header payload in
  let* meta, ids = parse_header lines in
  let id_of k =
    if k >= Array.length ids then -1 (* caught below as an entry-count mismatch *)
    else ids.(k)
  in
  match
    Bounds_codec.Ldif.fold_entries ~typing ~id_of
      (fun ~parent e inst ->
        Result.map_error Instance.error_to_string (Instance.add ~parent e inst))
      Instance.empty ldif
  with
  | Error e -> Error ("checkpoint body: " ^ Bounds_codec.Ldif.error_to_string e)
  | Ok inst ->
      if Instance.size inst <> meta.entries then
        Error
          (Printf.sprintf "checkpoint body has %d entries, header says %d"
             (Instance.size inst) meta.entries)
      else Ok (meta, inst)
