(** Parser for the s-expression query syntax produced by
    {!Query.to_string}:
    {v
      query ::= '(' 'select' string ')'          string: a quoted filter
              | '(' 'minus' query query ')'
              | '(' 'union' query query ')'
              | '(' 'inter' query query ')'
              | '(' 'chi' axis query query ')'   axis: c | p | d | a
    v}
    An unquoted bare filter such as [(objectClass=person)] is also
    accepted at query position as shorthand for a [select]. *)

(** Errors carry the byte offset the parser stopped at, in the shared
    {!Bounds_model.Parse_error.t} shape. *)
val parse : string -> (Query.t, Bounds_model.Parse_error.t) result

val parse_string : string -> (Query.t, string) result
[@@deprecated "use [parse]; render with [Bounds_model.Parse_error.to_string]"]

val parse_exn : string -> Query.t
