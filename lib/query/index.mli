(** Evaluation index over one instance version.

    Built in O(|D|); assigns each entry a dense {e rank} equal to its
    position in a depth-first preorder of the forest.  This single
    numbering makes all four χ axes evaluable in one linear array sweep
    (see {!Eval}): in preorder every node precedes its descendants, so a
    reverse sweep propagates information from descendants to ancestors and
    a forward sweep the other way. *)

open Bounds_model

type t

(** [create ?pool instance] — the preorder numbering pass is sequential
    (a rank {e is} a DFS position); with a [pool] the per-rank entry
    array is then filled in parallel. *)
val create : ?pool:Bounds_par.Pool.t -> Instance.t -> t
val instance : t -> Instance.t

(** Number of entries. *)
val n : t -> int

(** [rank ix id] — raises [Not_found] for ids absent from the instance. *)
val rank : t -> Entry.id -> int

val rank_opt : t -> Entry.id -> int option
val id_of_rank : t -> int -> Entry.id
val entry_of_rank : t -> int -> Entry.t

(** Rank of the parent, or [-1] for roots. *)
val parent_rank : t -> int -> int

val depth_of_rank : t -> int -> int

(** Last rank of the subtree rooted at the given rank: in a preorder
    numbering the subtree occupies the contiguous interval
    [[r, extent_of_rank ix r]]. *)
val extent_of_rank : t -> int -> int

(** Ranks back to entry ids. *)
val ids_of : t -> Bitset.t -> Entry.id list

(** {2 Incremental maintenance}

    A preorder subtree is a contiguous rank interval, so updates patch
    the encoding by interval shifting instead of re-traversal: each
    function below returns a {e new} version in O(n) copy-on-write blits
    plus O(|Δ| + shifted interval) splicing, leaving the argument — and
    every bitset computed against it — fully usable.  The full rebuild
    {!create} stays as the differential-fuzz twin ([index-apply-vs-
    rebuild] holds the two extensionally equal). *)

(** [apply ops t] plays an accepted transaction's operations (inserts
    under existing parents, leaf deletes) against [t].  Raises
    [Invalid_argument] on ill-formed operations, mirroring
    {!Update.apply_op}'s discipline. *)
val apply : Update.op list -> t -> t

(** [graft ~parent ?delta_index delta t] splices the forest [delta]
    under [parent] (or as new roots) as one block.  [delta_index] — an
    index of [delta], e.g. the one the incremental legality check
    already built — makes the splice a rank-translated copy; without it
    the delta is indexed first. *)
val graft : parent:Entry.id option -> ?delta_index:t -> Instance.t -> t -> t

(** [prune root t] removes the whole subtree of [root]. *)
val prune : Entry.id -> t -> t

(** [replace_entry e t] swaps the payload of the entry with [e]'s id;
    the shape (and so every rank) is untouched. *)
val replace_entry : Entry.t -> t -> t
