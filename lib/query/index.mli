(** Evaluation index over one instance version.

    Built in O(|D|); assigns each entry a dense {e rank} equal to its
    position in a depth-first preorder of the forest.  This single
    numbering makes all four χ axes evaluable in one linear array sweep
    (see {!Eval}): in preorder every node precedes its descendants, so a
    reverse sweep propagates information from descendants to ancestors and
    a forward sweep the other way.

    Versions are {e chunked copy-on-write}: the per-rank columns live in
    immutable chunks shared structurally between versions, the id->rank
    table is a persistent map, and a transaction's version step copies
    only the chunks its splices touch plus an O(#chunks) spine — not the
    O(n) array blits + [Hashtbl.copy] of the flat representation this
    replaced.  Rank sweeps lazily materialize a flat mirror per version
    ({!materialize}); the write path never does. *)

open Bounds_model

type t

(** [create ?pool instance] — the preorder numbering pass is sequential
    (a rank {e is} a DFS position); with a [pool] the per-rank entry
    array is then filled in parallel.  The result keeps its flat mirror
    pre-materialized. *)
val create : ?pool:Bounds_par.Pool.t -> Instance.t -> t

val instance : t -> Instance.t

(** Number of entries. *)
val n : t -> int

(** [rank ix id] — raises [Not_found] for ids absent from the instance. *)
val rank : t -> Entry.id -> int

val rank_opt : t -> Entry.id -> int option
val id_of_rank : t -> int -> Entry.id
val entry_of_rank : t -> int -> Entry.t

(** Rank of the parent, or [-1] for roots. *)
val parent_rank : t -> int -> int

val depth_of_rank : t -> int -> int

(** Last rank of the subtree rooted at the given rank: in a preorder
    numbering the subtree occupies the contiguous interval
    [[r, extent_of_rank ix r]]. *)
val extent_of_rank : t -> int -> int

(** Ranks back to entry ids. *)
val ids_of : t -> Bitset.t -> Entry.id list

(** Force the flat per-rank mirror (idempotent, thread-safe).  Call
    before an O(n) rank sweep so per-rank accessors run at array speed;
    accessors fall back to the chunk tier (binary search + persistent
    map, fine for sparse access) when it is absent. *)
val materialize : t -> unit

(** {2 Chunk introspection} — for memory/sharing properties and bench
    reporting; says nothing about entry data. *)

val chunk_count : t -> int

(** [shared_chunks t1 t2] — how many of [t1]'s chunks are physically
    (pointer-)shared with [t2]. *)
val shared_chunks : t -> t -> int

(** {2 Incremental maintenance}

    A preorder subtree is a contiguous rank interval, so updates patch
    the encoding by interval splicing.  Each splice rebuilds only the
    chunks overlapping its boundaries, adjusts subtree sizes along the
    ancestor path, and recomputes the O(#chunks) spine of rank offsets —
    the old version (and every bitset computed against it) stays fully
    usable, now sharing all untouched chunks with the new one.  The full
    rebuild {!create} stays as the differential-fuzz twin
    ([index-apply-vs-rebuild] holds the two extensionally equal). *)

(** One structural edit in {e rolling} rank coordinates: at the moment
    it was recorded, ranks [[sp_at, sp_at + sp_removed)] were removed
    and [sp_inserted] ranks inserted at [sp_at].  Replaying a builder's
    splices in order against any rank-indexed structure of the base
    version (e.g. a cached bitset) re-aligns it with the sealed
    version. *)
type splice = { sp_at : int; sp_removed : int; sp_inserted : int }

(** Accumulates a transaction's splices against one base version and
    seals them into the next.  A builder is single-threaded; [seal] may
    be called at most once per builder (the sealed version owns the
    builder's chunks from then on). *)
module Builder : sig
  type index := t
  type t

  val of_version : index -> t

  (** The instance as patched so far (admission checks read it between
      steps). *)
  val instance : t -> Instance.t

  val n : t -> int

  (** Single insert-under-parent / leaf-delete, mirroring
      {!Update.apply_op}'s discipline; raises [Invalid_argument] on
      ill-formed operations. *)
  val apply_op : t -> Update.op -> unit

  (** [graft b ~parent ?delta_index delta] splices the forest [delta]
      under [parent] (or as new roots) as one block.  [delta_index] — an
      index of [delta], e.g. the one the incremental legality check
      already built — makes the splice a translation-free block copy;
      without it the delta is indexed first. *)
  val graft :
    t -> parent:Entry.id option -> ?delta_index:index -> Instance.t -> unit

  (** [prune b root] removes the whole subtree of [root]. *)
  val prune : t -> Entry.id -> unit

  (** [replace_entry b e] swaps the payload of the entry with [e]'s id;
      the shape (and so every rank) is untouched.  Records no splice. *)
  val replace_entry : t -> Entry.t -> unit

  (** Splices recorded so far, in application order. *)
  val splices : t -> splice list

  val seal : t -> index
end

(** {2 One-shot wrappers} — builder round-trips for single-edit
    callers. *)

(** [apply ops t] plays an accepted transaction's operations against one
    builder and seals. *)
val apply : Update.op list -> t -> t

val graft : parent:Entry.id option -> ?delta_index:t -> Instance.t -> t -> t
val prune : Entry.id -> t -> t
val replace_entry : Entry.t -> t -> t
