type t = { n : int; words : Bytes.t }

let nbytes n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Bytes.make (nbytes n) '\000' }

let length s = s.n

let full n =
  let s = { n; words = Bytes.make (nbytes n) '\255' } in
  (* clear the padding bits of the last byte *)
  let rem = n land 7 in
  if rem <> 0 && n > 0 then begin
    let last = nbytes n - 1 in
    Bytes.set s.words last (Char.chr ((1 lsl rem) - 1))
  end;
  s

let check_idx s i =
  if i < 0 || i >= s.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i s.n)

let mem s i =
  check_idx s i;
  Char.code (Bytes.get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set s i =
  check_idx s i;
  let b = i lsr 3 in
  Bytes.set s.words b (Char.chr (Char.code (Bytes.get s.words b) lor (1 lsl (i land 7))))

let unset s i =
  check_idx s i;
  let b = i lsr 3 in
  Bytes.set s.words b
    (Char.chr (Char.code (Bytes.get s.words b) land lnot (1 lsl (i land 7)) land 0xff))

let copy s = { n = s.n; words = Bytes.copy s.words }

let add s i =
  let s' = copy s in
  set s' i;
  s'

let remove s i =
  let s' = copy s in
  unset s' i;
  s'

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: universe size mismatch"

(* The kernels below go 64 bits at a stride ([Bytes.get_int64_le] /
   [set_int64_le] — unaligned-safe, and the native compiler unboxes the
   Int64 locals), with a byte loop over the [length mod 8] tail.  The
   byte-at-a-time reference lives on in test_query's bit-identity
   properties. *)

let tail_start nb = nb land lnot 7

let map2_words f64 f8 a b =
  check_same a b;
  let r = create a.n in
  let nb = Bytes.length a.words in
  let t = tail_start nb in
  let o = ref 0 in
  while !o < t do
    Bytes.set_int64_le r.words !o
      (f64 (Bytes.get_int64_le a.words !o) (Bytes.get_int64_le b.words !o));
    o := !o + 8
  done;
  for k = t to nb - 1 do
    Bytes.set r.words k
      (Char.unsafe_chr
         (f8 (Char.code (Bytes.get a.words k)) (Char.code (Bytes.get b.words k))
         land 0xff))
  done;
  r

let union = map2_words Int64.logor (fun x y -> x lor y)
let inter = map2_words Int64.logand (fun x y -> x land y)

let diff =
  map2_words (fun x y -> Int64.logand x (Int64.lognot y)) (fun x y -> x land lnot y)

let union_into ~into src =
  check_same into src;
  let nb = Bytes.length into.words in
  let t = tail_start nb in
  let o = ref 0 in
  while !o < t do
    Bytes.set_int64_le into.words !o
      (Int64.logor (Bytes.get_int64_le into.words !o) (Bytes.get_int64_le src.words !o));
    o := !o + 8
  done;
  for k = t to nb - 1 do
    let c = Char.code (Bytes.get into.words k) lor Char.code (Bytes.get src.words k) in
    Bytes.set into.words k (Char.unsafe_chr c)
  done

let inter_into ~into src =
  check_same into src;
  let nb = Bytes.length into.words in
  let t = tail_start nb in
  let o = ref 0 in
  while !o < t do
    Bytes.set_int64_le into.words !o
      (Int64.logand (Bytes.get_int64_le into.words !o) (Bytes.get_int64_le src.words !o));
    o := !o + 8
  done;
  for k = t to nb - 1 do
    let c = Char.code (Bytes.get into.words k) land Char.code (Bytes.get src.words k) in
    Bytes.set into.words k (Char.unsafe_chr c)
  done

let blit_words ~src ~dst ~at =
  if at land 7 <> 0 then invalid_arg "Bitset.blit_words: offset not byte-aligned";
  if at < 0 || at + src.n > dst.n then invalid_arg "Bitset.blit_words: range";
  if src.n > 0 then begin
    let b0 = at lsr 3 in
    let nb = nbytes src.n in
    let rem = src.n land 7 in
    let full = if rem = 0 then nb else nb - 1 in
    Bytes.blit src.words 0 dst.words b0 full;
    if rem <> 0 then begin
      (* only bits [at, at + src.n) of dst may change: mask the last byte *)
      let mask = (1 lsl rem) - 1 in
      let s = Char.code (Bytes.get src.words (nb - 1)) land mask in
      let d = Char.code (Bytes.get dst.words (b0 + nb - 1)) land lnot mask land 0xff in
      Bytes.set dst.words (b0 + nb - 1) (Char.unsafe_chr (s lor d))
    end
  end

(* Bits [pos, pos+64) of [bytes] as one little-endian word, reading
   zeros past the end — the unaligned gather primitive of [splice]. *)
let get_bits64 bytes nb pos =
  let b = pos lsr 3 and sh = pos land 7 in
  let word ofs =
    if ofs >= nb then 0L
    else if ofs + 8 <= nb then Bytes.get_int64_le bytes ofs
    else begin
      let v = ref 0L in
      for k = nb - 1 downto ofs do
        v :=
          Int64.logor (Int64.shift_left !v 8)
            (Int64.of_int (Char.code (Bytes.get bytes k)))
      done;
      !v
    end
  in
  if sh = 0 then word b
  else
    Int64.logor
      (Int64.shift_right_logical (word b) sh)
      (Int64.shift_left (word (b + 8)) (64 - sh))

let get_bits8 bytes nb pos =
  let b = pos lsr 3 and sh = pos land 7 in
  let byte ofs = if ofs >= nb then 0 else Char.code (Bytes.get bytes ofs) in
  if sh = 0 then byte b else ((byte b lsr sh) lor (byte (b + 1) lsl (8 - sh))) land 0xff

let splice ~at ~removed ~inserted s =
  if at < 0 || removed < 0 || inserted < 0 || at + removed > s.n then
    invalid_arg "Bitset.splice";
  let n' = s.n - removed + inserted in
  let r = create n' in
  (* head [0, at): byte blit plus a masked boundary byte *)
  let hb = at lsr 3 in
  Bytes.blit s.words 0 r.words 0 hb;
  let hrem = at land 7 in
  if hrem <> 0 then
    Bytes.set r.words hb
      (Char.unsafe_chr (Char.code (Bytes.get s.words hb) land ((1 lsl hrem) - 1)));
  (* tail: dst bits [at+inserted, n') := src bits [at+removed, n).  The
     inserted gap stays zero.  Walk bitwise to the next dst byte
     boundary, then gather unaligned 64-bit source windows into aligned
     destination words. *)
  let left = ref (s.n - at - removed) in
  if !left > 0 then begin
    let nbs = Bytes.length s.words in
    let d = ref (at + inserted) and sp = ref (at + removed) in
    while !left > 0 && !d land 7 <> 0 do
      if mem s !sp then set r !d;
      incr d;
      incr sp;
      decr left
    done;
    let db = ref (!d lsr 3) in
    while !left >= 64 do
      Bytes.set_int64_le r.words !db (get_bits64 s.words nbs !sp);
      db := !db + 8;
      sp := !sp + 64;
      left := !left - 64
    done;
    while !left >= 8 do
      Bytes.set r.words !db (Char.unsafe_chr (get_bits8 s.words nbs !sp));
      incr db;
      sp := !sp + 8;
      left := !left - 8
    done;
    d := !db lsl 3;
    while !left > 0 do
      if mem s !sp then set r !d;
      incr d;
      incr sp;
      decr left
    done
  end;
  r

let complement a =
  let r = diff (full a.n) a in
  r

let is_empty s =
  let nb = Bytes.length s.words in
  let t = tail_start nb in
  let rec words o =
    o >= t || (Bytes.get_int64_le s.words o = 0L && words (o + 8))
  in
  let rec bytes k =
    k >= nb || (Bytes.get s.words k = '\000' && bytes (k + 1))
  in
  words 0 && bytes t

let popcount_byte = Array.init 256 (fun i ->
    let rec go i acc = if i = 0 then acc else go (i lsr 1) (acc + (i land 1)) in
    go i 0)

(* SWAR popcount.  The masks exceed OCaml's native max_int (2^62 - 1), so
   the reduction has to run in Int64 arithmetic; the compiler keeps the
   intermediates unboxed. *)
let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let cardinal s =
  let nb = Bytes.length s.words in
  let t = tail_start nb in
  let acc = ref 0 in
  let o = ref 0 in
  while !o < t do
    acc := !acc + popcount64 (Bytes.get_int64_le s.words !o);
    o := !o + 8
  done;
  for k = t to nb - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.get s.words k))
  done;
  !acc

let count = cardinal

let equal a b = a.n = b.n && Bytes.equal a.words b.words

(* a ⊆ b ⇔ every word of a land lnot b is zero — no scratch set. *)
let subset a b =
  check_same a b;
  let nb = Bytes.length a.words in
  let t = tail_start nb in
  let rec words o =
    o >= t
    || Int64.logand (Bytes.get_int64_le a.words o)
         (Int64.lognot (Bytes.get_int64_le b.words o))
       = 0L
       && words (o + 8)
  in
  let rec bytes k =
    k >= nb
    || Char.code (Bytes.get a.words k) land lnot (Char.code (Bytes.get b.words k))
       = 0
       && bytes (k + 1)
  in
  words 0 && bytes t

(* Members of [max lo 0, min hi n) in increasing order: skip all-zero
   64-bit words in one probe, then resolve nonzero words byte by byte, so
   sparse sets iterate in O(n/64 + touched bytes + |members|). *)
let iter_range f s ~lo ~hi =
  let lo = max lo 0 and hi = min hi s.n in
  if lo < hi then begin
    let b_lo = lo lsr 3 and b_hi = (hi - 1) lsr 3 in
    let byte b =
      let c = Char.code (Bytes.get s.words b) in
      if c <> 0 then begin
        let base = b lsl 3 in
        let first = if base >= lo then 0 else lo - base in
        let last = if base + 7 < hi then 7 else hi - 1 - base in
        for j = first to last do
          if c land (1 lsl j) <> 0 then f (base + j)
        done
      end
    in
    let b = ref b_lo in
    while !b <= b_hi do
      if !b + 7 <= b_hi then
        if Bytes.get_int64_le s.words !b = 0L then b := !b + 8
        else begin
          for k = !b to !b + 7 do
            byte k
          done;
          b := !b + 8
        end
      else begin
        byte !b;
        incr b
      end
    done
  end

let iter f s = iter_range f s ~lo:0 ~hi:s.n

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n l =
  let s = create n in
  List.iter (set s) l;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
