type t = { n : int; words : Bytes.t }

let nbytes n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Bytes.make (nbytes n) '\000' }

let length s = s.n

let full n =
  let s = { n; words = Bytes.make (nbytes n) '\255' } in
  (* clear the padding bits of the last byte *)
  let rem = n land 7 in
  if rem <> 0 && n > 0 then begin
    let last = nbytes n - 1 in
    Bytes.set s.words last (Char.chr ((1 lsl rem) - 1))
  end;
  s

let check_idx s i =
  if i < 0 || i >= s.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i s.n)

let mem s i =
  check_idx s i;
  Char.code (Bytes.get s.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set s i =
  check_idx s i;
  let b = i lsr 3 in
  Bytes.set s.words b (Char.chr (Char.code (Bytes.get s.words b) lor (1 lsl (i land 7))))

let unset s i =
  check_idx s i;
  let b = i lsr 3 in
  Bytes.set s.words b
    (Char.chr (Char.code (Bytes.get s.words b) land lnot (1 lsl (i land 7)) land 0xff))

let copy s = { n = s.n; words = Bytes.copy s.words }

let add s i =
  let s' = copy s in
  set s' i;
  s'

let remove s i =
  let s' = copy s in
  unset s' i;
  s'

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: universe size mismatch"

let map2 f a b =
  check_same a b;
  let r = create a.n in
  for k = 0 to Bytes.length a.words - 1 do
    Bytes.set r.words k
      (Char.chr (f (Char.code (Bytes.get a.words k)) (Char.code (Bytes.get b.words k)) land 0xff))
  done;
  r

let union = map2 (fun x y -> x lor y)
let inter = map2 (fun x y -> x land y)
let diff = map2 (fun x y -> x land lnot y)

let union_into ~into src =
  check_same into src;
  for k = 0 to Bytes.length into.words - 1 do
    let c = Char.code (Bytes.get into.words k) lor Char.code (Bytes.get src.words k) in
    Bytes.set into.words k (Char.unsafe_chr c)
  done

let inter_into ~into src =
  check_same into src;
  for k = 0 to Bytes.length into.words - 1 do
    let c = Char.code (Bytes.get into.words k) land Char.code (Bytes.get src.words k) in
    Bytes.set into.words k (Char.unsafe_chr c)
  done

let blit_words ~src ~dst ~at =
  if at land 7 <> 0 then invalid_arg "Bitset.blit_words: offset not byte-aligned";
  if at < 0 || at + src.n > dst.n then invalid_arg "Bitset.blit_words: range";
  if src.n > 0 then begin
    let b0 = at lsr 3 in
    let nb = nbytes src.n in
    let rem = src.n land 7 in
    let full = if rem = 0 then nb else nb - 1 in
    Bytes.blit src.words 0 dst.words b0 full;
    if rem <> 0 then begin
      (* only bits [at, at + src.n) of dst may change: mask the last byte *)
      let mask = (1 lsl rem) - 1 in
      let s = Char.code (Bytes.get src.words (nb - 1)) land mask in
      let d = Char.code (Bytes.get dst.words (b0 + nb - 1)) land lnot mask land 0xff in
      Bytes.set dst.words (b0 + nb - 1) (Char.unsafe_chr (s lor d))
    end
  end

let complement a =
  let r = diff (full a.n) a in
  r

let is_empty s = Bytes.for_all (fun c -> c = '\000') s.words

let popcount_byte = Array.init 256 (fun i ->
    let rec go i acc = if i = 0 then acc else go (i lsr 1) (acc + (i land 1)) in
    go i 0)

let cardinal s =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte.(Char.code c)) s.words;
  !acc

let count = cardinal

let equal a b = a.n = b.n && Bytes.equal a.words b.words

let subset a b =
  check_same a b;
  is_empty (diff a b)

(* Members of [max lo 0, min hi n) in increasing order, skipping all-zero
   bytes so sparse sets iterate in O(n/8 + |members|). *)
let iter_range f s ~lo ~hi =
  let lo = max lo 0 and hi = min hi s.n in
  if lo < hi then begin
    let b_lo = lo lsr 3 and b_hi = (hi - 1) lsr 3 in
    for b = b_lo to b_hi do
      let c = Char.code (Bytes.get s.words b) in
      if c <> 0 then begin
        let base = b lsl 3 in
        let first = if base >= lo then 0 else lo - base in
        let last = if base + 7 < hi then 7 else hi - 1 - base in
        for j = first to last do
          if c land (1 lsl j) <> 0 then f (base + j)
        done
      end
    done
  end

let iter f s = iter_range f s ~lo:0 ~hi:s.n

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n l =
  let s = create n in
  List.iter (set s) l;
  s

let choose s =
  let exception Found of int in
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)
