open Bounds_model

exception Err of Parse_error.t

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf (fun m -> raise (Err (Parse_error.make ~pos:st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> error st "expected %c, found %c" c c'
  | None -> error st "expected %c, found end of input" c

(* Reads the word after '(' without consuming it, to decide between a
   structured query form and a bare filter. *)
let lookahead_word st =
  let p = ref st.pos in
  let buf = Buffer.create 8 in
  let continue = ref true in
  while !continue && !p < String.length st.src do
    match st.src.[!p] with
    | 'a' .. 'z' | 'A' .. 'Z' -> Buffer.add_char buf st.src.[!p]; incr p
    | _ -> continue := false
  done;
  String.lowercase_ascii (Buffer.contents buf)

let read_word st =
  skip_ws st;
  let start = st.pos in
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected a keyword";
  String.lowercase_ascii (String.sub st.src start (st.pos - start))

let read_quoted st =
  skip_ws st;
  match peek st with
  | Some '"' ->
      st.pos <- st.pos + 1;
      let buf = Buffer.create 32 in
      let rec go () =
        match peek st with
        | None -> error st "unterminated string"
        | Some '"' -> st.pos <- st.pos + 1
        | Some '\\' ->
            (* the printer quotes with OCaml's %S: decode its escapes *)
            st.pos <- st.pos + 1;
            (match peek st with
            | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1
            | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1
            | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1
            | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1
            | Some ('0' .. '9') when st.pos + 2 < String.length st.src ->
                let digit i =
                  match st.src.[i] with
                  | '0' .. '9' as c -> Char.code c - Char.code '0'
                  | _ -> error st "expected three decimal digits after backslash"
                in
                let code =
                  (100 * digit st.pos) + (10 * digit (st.pos + 1)) + digit (st.pos + 2)
                in
                if code > 255 then error st "escape \\%d out of byte range" code;
                Buffer.add_char buf (Char.chr code);
                st.pos <- st.pos + 3
            | Some c ->
                Buffer.add_char buf c;
                st.pos <- st.pos + 1
            | None -> error st "dangling backslash");
            go ()
        | Some c ->
            Buffer.add_char buf c;
            st.pos <- st.pos + 1;
            go ()
      in
      go ();
      Buffer.contents buf
  | _ -> error st "expected a quoted filter string"

(* Consumes a balanced-parenthesis span starting at the current '(' and
   returns it verbatim (used for bare-filter shorthand). *)
let read_balanced st =
  skip_ws st;
  let start = st.pos in
  (match peek st with Some '(' -> () | _ -> error st "expected '('");
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    (match peek st with
    | None -> error st "unbalanced parentheses"
    | Some '(' -> incr depth
    | Some ')' -> decr depth
    | Some _ -> ());
    st.pos <- st.pos + 1;
    if !depth = 0 then continue := false
  done;
  String.sub st.src start (st.pos - start)

let parse_filter_string st s =
  match Filter_parser.parse s with
  | Ok f -> f
  | Error e -> error st "bad filter %S: %s" s (Parse_error.to_string e)

let rec parse_query st =
  skip_ws st;
  (match peek st with Some '(' -> () | _ -> error st "expected '('");
  let save = st.pos in
  st.pos <- st.pos + 1;
  skip_ws st;
  match lookahead_word st with
  | "select" ->
      let _ = read_word st in
      skip_ws st;
      let f =
        match peek st with
        | Some '"' -> parse_filter_string st (read_quoted st)
        | Some '(' -> parse_filter_string st (read_balanced st)
        | _ -> error st "expected a filter after 'select'"
      in
      expect st ')';
      Query.Select f
  | "minus" ->
      let _ = read_word st in
      let a = parse_query st in
      let b = parse_query st in
      expect st ')';
      Query.Minus (a, b)
  | "union" ->
      let _ = read_word st in
      let a = parse_query st in
      let b = parse_query st in
      expect st ')';
      Query.Union (a, b)
  | "inter" ->
      let _ = read_word st in
      let a = parse_query st in
      let b = parse_query st in
      expect st ')';
      Query.Inter (a, b)
  | "chi" ->
      let _ = read_word st in
      let ax_word = read_word st in
      let ax =
        match Query.axis_of_string ax_word with
        | Ok ax -> ax
        | Error m -> error st "%s" m
      in
      let a = parse_query st in
      let b = parse_query st in
      expect st ')';
      Query.Chi (ax, a, b)
  | _ ->
      (* bare filter shorthand *)
      st.pos <- save;
      let f = parse_filter_string st (read_balanced st) in
      Query.Select f

let parse s =
  let st = { src = s; pos = 0 } in
  try
    let q = parse_query st in
    skip_ws st;
    if st.pos <> String.length s then
      Error (Parse_error.make ~pos:st.pos "trailing input")
    else Ok q
  with Err e -> Error e

let parse_string s = Result.map_error Parse_error.to_string (parse s)

let parse_exn s =
  match parse s with Ok q -> q | Error e -> failwith (Parse_error.to_string e)
