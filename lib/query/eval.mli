(** Linear-time query evaluation.

    Each operator costs one O(|D|) pass over the rank arrays of the
    {!Index}, so a whole query evaluates in O(|Q|·|D|) — the bound
    established for hierarchical selection queries in [9] and relied on by
    the paper's Theorem 3.1.  The χ sweeps exploit the preorder ranking:

    - χ child / parent use the parent-rank array directly;
    - χ descendant sweeps ranks in reverse (descendants precede their
      ancestors' completion), pushing "has a match below" up one edge at a
      time;
    - χ ancestor sweeps forward, pulling "has a match above" down.

    An optional {!Vindex} accelerates atomic equality/presence selections
    below the O(|D|) scan.

    An optional [pool] divides the linear constant by the worker count:
    filter scans and the χ child/parent marking loops are chunked over
    word-aligned slices of the rank space (each worker owns a disjoint
    byte range of the result, so the fill is synchronization-free), while
    the χ descendant/ancestor sweeps stay sequential — their loop-carried
    dependency spans chunk boundaries.  Results are bit-identical to the
    sequential evaluation with or without a pool. *)

open Bounds_model

val eval : ?vindex:Vindex.t -> ?pool:Bounds_par.Pool.t -> Index.t -> Query.t -> Bitset.t

val eval_ids :
  ?vindex:Vindex.t -> ?pool:Bounds_par.Pool.t -> Index.t -> Query.t -> Entry.id list

val is_empty :
  ?vindex:Vindex.t -> ?pool:Bounds_par.Pool.t -> Index.t -> Query.t -> bool

(** [eval_filter ix f] — the atomic-selection scan on its own. *)
val eval_filter : ?pool:Bounds_par.Pool.t -> Index.t -> Filter.t -> Bitset.t

(** [chi ?pool ix ax q1 q2] — the χ sweep on already-evaluated operand
    sets; {!Plan} combines its leaf access paths with this. *)
val chi :
  ?pool:Bounds_par.Pool.t -> Index.t -> Query.axis -> Bitset.t -> Bitset.t -> Bitset.t
