open Bounds_model

type t = {
  instance : Instance.t;
  n : int;
  entries : Entry.t array; (* by rank, preorder *)
  ids : Entry.id array; (* rank -> id *)
  ranks : (Entry.id, int) Hashtbl.t; (* id -> rank *)
  parents : int array; (* rank -> parent rank, -1 for roots *)
  depths : int array;
  extents : int array; (* rank -> last rank of its subtree *)
}

let create ?pool instance =
  let n = Instance.size instance in
  let ids = Array.make n 0 in
  let parents = Array.make n (-1) in
  let depths = Array.make n 0 in
  let extents = Array.make n 0 in
  let ranks = Hashtbl.create (max 16 n) in
  (* The preorder numbering itself is inherently order-dependent (a rank
     is the DFS position), so this pass stays sequential.  It consumes the
     stored (most-recent-first) child lists directly: pushing a reversed
     list head-first leaves the first-inserted child on top of the stack,
     so pops reproduce exactly the forward preorder of the recursive
     visit — without a [List.rev] allocation per node.

     The stack lives in two pre-sized int arrays (every node is pushed
     exactly once, so [n] slots bound its height); a cons-cell stack of
     boxed triples costs ~7 words of transient heap per node, which at
     10^6 entries is the difference between bulk load fitting its budget
     or not.  Depth is not stacked at all: parents are ranked before
     their children, so it is [depths.(parent) + 1] at pop time. *)
  let next = ref 0 in
  let st_id = Array.make (max 1 n) 0 in
  let st_parent = Array.make (max 1 n) (-1) in
  let sp = ref 0 in
  let push parent_rank rev_ids =
    List.iter
      (fun id ->
        st_id.(!sp) <- id;
        st_parent.(!sp) <- parent_rank;
        incr sp)
      rev_ids
  in
  push (-1) (Instance.rev_roots instance);
  while !sp > 0 do
    decr sp;
    let id = st_id.(!sp) and parent_rank = st_parent.(!sp) in
    let r = !next in
    incr next;
    ids.(r) <- id;
    parents.(r) <- parent_rank;
    depths.(r) <- (if parent_rank < 0 then 0 else depths.(parent_rank) + 1);
    Hashtbl.replace ranks id r;
    push r (Instance.rev_children instance id)
  done;
  assert (!next = n);
  (* Extents by one reverse pass: a rank is at least its own extent, and
     since children carry larger ranks than their parent, visiting ranks
     high-to-low folds each subtree's maximum into its parent before the
     parent itself is read. *)
  for r = 0 to n - 1 do
    extents.(r) <- r
  done;
  for r = n - 1 downto 1 do
    let p = parents.(r) in
    if p >= 0 && extents.(r) > extents.(p) then extents.(p) <- extents.(r)
  done;
  (* The per-rank entry payloads are independent map lookups: fill the
     array in parallel once the numbering is known. *)
  let entries =
    if n = 0 then [||]
    else begin
      let entries = Array.make n (Instance.entry instance ids.(0)) in
      Bounds_par.Pool.parallel_for ?pool ~align:1 n (fun ~lo ~hi ->
          for r = max lo 1 to hi - 1 do
            entries.(r) <- Instance.entry instance ids.(r)
          done);
      entries
    end
  in
  { instance; n; entries; ids; ranks; parents; depths; extents }

let instance ix = ix.instance
let n ix = ix.n

let rank ix id =
  match Hashtbl.find_opt ix.ranks id with Some r -> r | None -> raise Not_found

let rank_opt ix id = Hashtbl.find_opt ix.ranks id
let id_of_rank ix r = ix.ids.(r)
let entry_of_rank ix r = ix.entries.(r)
let parent_rank ix r = ix.parents.(r)
let depth_of_rank ix r = ix.depths.(r)
let extent_of_rank ix r = ix.extents.(r)

let ids_of ix bs =
  let k = Bitset.count bs in
  if k = 0 then []
  else begin
    let out = Array.make k 0 in
    let j = ref 0 in
    Bitset.iter
      (fun r ->
        out.(!j) <- ix.ids.(r);
        incr j)
      bs;
    Array.to_list out
  end

(* {1 Incremental maintenance}

   In a preorder numbering a subtree is the contiguous rank interval
   [r, extent r], so a subtree insertion under parent [p] lands as one
   block at [k = extent p + 1] (new children are appended after their
   siblings — [Instance.add]/[Instance.graft] prepend to the reversed
   child list) and a deletion removes one block.  Either way the patch
   is an interval shift:

   - ranks in the tail [k, n) move by ±w; their depths are unchanged,
     their extents move with them, and their parent pointers move iff
     they point into the tail;
   - the extents of [p] and of every ancestor of [p] grow/shrink by
     [w]: an entry [q] outside the shifted tail has its subtree changed
     iff the spliced block lies inside [q]'s interval, and (intervals
     being laterally disjoint or nested) those [q] are exactly the
     ancestors;
   - everything else is untouched.

   The patch runs on a mutable builder holding one flat copy of the
   previous version, so each [apply]/[graft]/[prune]/[replace_entry] is
   copy-on-write: O(n) array blits plus a [Hashtbl.copy] — memmove-speed
   work, with none of [create]'s DFS, per-entry map lookups or hashtable
   re-insertion — and then O(|Δ| + shifted interval) splicing.  The
   arrays of a frozen version may exceed its logical [n]; nothing reads
   past [n]. *)

type builder = {
  mutable b_inst : Instance.t;
  mutable b_n : int;
  mutable b_entries : Entry.t array;
  mutable b_ids : Entry.id array;
  b_ranks : (Entry.id, int) Hashtbl.t;
  mutable b_parents : int array;
  mutable b_depths : int array;
  mutable b_extents : int array;
}

let builder_of ~extra t =
  let cap = max 1 (t.n + extra) in
  let copy_int a =
    let out = Array.make cap (-1) in
    Array.blit a 0 out 0 t.n;
    out
  in
  let entries =
    if t.n = 0 then [||]
    else begin
      let out = Array.make cap t.entries.(0) in
      Array.blit t.entries 0 out 0 t.n;
      out
    end
  in
  {
    b_inst = t.instance;
    b_n = t.n;
    b_entries = entries;
    b_ids = copy_int t.ids;
    b_ranks = Hashtbl.copy t.ranks;
    b_parents = copy_int t.parents;
    b_depths = copy_int t.depths;
    b_extents = copy_int t.extents;
  }

let freeze b =
  {
    instance = b.b_inst;
    n = b.b_n;
    entries = b.b_entries;
    ids = b.b_ids;
    ranks = b.b_ranks;
    parents = b.b_parents;
    depths = b.b_depths;
    extents = b.b_extents;
  }

(* [filler] seeds freshly-allocated [Entry.t] slots (immediately
   overwritten by the splice). *)
let ensure_cap b extra filler =
  let need = b.b_n + extra in
  let cur = Array.length b.b_ids in
  if cur < need then begin
    let cap = max need ((2 * cur) + extra) in
    let grow_int a =
      let out = Array.make cap (-1) in
      Array.blit a 0 out 0 b.b_n;
      out
    in
    let entries = Array.make cap filler in
    Array.blit b.b_entries 0 entries 0 b.b_n;
    b.b_entries <- entries;
    b.b_ids <- grow_int b.b_ids;
    b.b_parents <- grow_int b.b_parents;
    b.b_depths <- grow_int b.b_depths;
    b.b_extents <- grow_int b.b_extents
  end
  else if Array.length b.b_entries < need then begin
    (* int arrays were pre-sized but the entry array started empty *)
    let entries = Array.make cur filler in
    Array.blit b.b_entries 0 entries 0 b.b_n;
    b.b_entries <- entries
  end

(* Open a [w]-wide hole at [k]: tail ranks, their extents, and their
   into-the-tail parent pointers all move by [+w].  Depths of shifted
   entries are theirs regardless of position. *)
let shift_right b k w filler =
  ensure_cap b w filler;
  let n = b.b_n in
  if k < n then begin
    Array.blit b.b_entries k b.b_entries (k + w) (n - k);
    Array.blit b.b_ids k b.b_ids (k + w) (n - k);
    Array.blit b.b_parents k b.b_parents (k + w) (n - k);
    Array.blit b.b_depths k b.b_depths (k + w) (n - k);
    Array.blit b.b_extents k b.b_extents (k + w) (n - k);
    for r = k + w to n + w - 1 do
      Hashtbl.replace b.b_ranks b.b_ids.(r) r;
      if b.b_parents.(r) >= k then b.b_parents.(r) <- b.b_parents.(r) + w;
      b.b_extents.(r) <- b.b_extents.(r) + w
    done
  end

(* Close the [w]-wide hole at [k] (whose rank-table bindings are already
   gone).  A tail entry's parent is never inside the hole — descendants
   of the removed block live in the block. *)
let shift_left b k w =
  let n = b.b_n in
  if k + w < n then begin
    Array.blit b.b_entries (k + w) b.b_entries k (n - k - w);
    Array.blit b.b_ids (k + w) b.b_ids k (n - k - w);
    Array.blit b.b_parents (k + w) b.b_parents k (n - k - w);
    Array.blit b.b_depths (k + w) b.b_depths k (n - k - w);
    Array.blit b.b_extents (k + w) b.b_extents k (n - k - w);
    for r = k to n - w - 1 do
      Hashtbl.replace b.b_ranks b.b_ids.(r) r;
      if b.b_parents.(r) >= k + w then b.b_parents.(r) <- b.b_parents.(r) - w;
      b.b_extents.(r) <- b.b_extents.(r) - w
    done
  end

let bump_ancestor_extents b pr w =
  let r = ref pr in
  while !r >= 0 do
    b.b_extents.(!r) <- b.b_extents.(!r) + w;
    r := b.b_parents.(!r)
  done

let parent_rank_of b ~op = function
  | None -> -1
  | Some p -> (
      match Hashtbl.find_opt b.b_ranks p with
      | Some r -> r
      | None -> invalid_arg (Printf.sprintf "Index.%s: no parent entry %d" op p))

let insert_one b ~parent entry =
  (match Instance.add ~parent entry b.b_inst with
  | Ok inst -> b.b_inst <- inst
  | Error e -> invalid_arg ("Index.apply: " ^ Instance.error_to_string e));
  let pr = parent_rank_of b ~op:"apply" parent in
  let k = if pr < 0 then b.b_n else b.b_extents.(pr) + 1 in
  shift_right b k 1 entry;
  b.b_entries.(k) <- entry;
  b.b_ids.(k) <- Entry.id entry;
  b.b_parents.(k) <- pr;
  b.b_depths.(k) <- (if pr < 0 then 0 else b.b_depths.(pr) + 1);
  b.b_extents.(k) <- k;
  Hashtbl.replace b.b_ranks (Entry.id entry) k;
  if pr >= 0 then bump_ancestor_extents b pr 1;
  b.b_n <- b.b_n + 1

let delete_one b id =
  (match Instance.remove_leaf id b.b_inst with
  | Ok inst -> b.b_inst <- inst
  | Error e -> invalid_arg ("Index.apply: " ^ Instance.error_to_string e));
  let r = Hashtbl.find b.b_ranks id in
  let pr = b.b_parents.(r) in
  if pr >= 0 then bump_ancestor_extents b pr (-1);
  Hashtbl.remove b.b_ranks id;
  shift_left b r 1;
  b.b_n <- b.b_n - 1

let apply ops t =
  let inserts =
    List.fold_left
      (fun acc -> function Update.Insert _ -> acc + 1 | Update.Delete _ -> acc)
      0 ops
  in
  let b = builder_of ~extra:inserts t in
  List.iter
    (function
      | Update.Insert { parent; entry } -> insert_one b ~parent entry
      | Update.Delete id -> delete_one b id)
    ops;
  freeze b

let graft ~parent ?delta_index delta t =
  let dix = match delta_index with Some d -> d | None -> create delta in
  let w = dix.n in
  if w = 0 then t
  else begin
    let b = builder_of ~extra:w t in
    (match Instance.graft ~parent delta b.b_inst with
    | Ok inst -> b.b_inst <- inst
    | Error e -> invalid_arg ("Index.graft: " ^ Instance.error_to_string e));
    let pr = parent_rank_of b ~op:"graft" parent in
    let k = if pr < 0 then b.b_n else b.b_extents.(pr) + 1 in
    let depth_off = if pr < 0 then 0 else b.b_depths.(pr) + 1 in
    shift_right b k w dix.entries.(0);
    for i = 0 to w - 1 do
      let r = k + i in
      b.b_entries.(r) <- dix.entries.(i);
      b.b_ids.(r) <- dix.ids.(i);
      b.b_parents.(r) <- (if dix.parents.(i) < 0 then pr else k + dix.parents.(i));
      b.b_depths.(r) <- depth_off + dix.depths.(i);
      b.b_extents.(r) <- k + dix.extents.(i);
      Hashtbl.replace b.b_ranks b.b_ids.(r) r
    done;
    if pr >= 0 then bump_ancestor_extents b pr w;
    b.b_n <- b.b_n + w;
    freeze b
  end

let prune root t =
  let r =
    match Hashtbl.find_opt t.ranks root with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Index.prune: no entry %d" root)
  in
  let w = t.extents.(r) - r + 1 in
  let b = builder_of ~extra:0 t in
  (match Instance.remove_subtree root b.b_inst with
  | Ok inst -> b.b_inst <- inst
  | Error e -> invalid_arg ("Index.prune: " ^ Instance.error_to_string e));
  for i = r to r + w - 1 do
    Hashtbl.remove b.b_ranks b.b_ids.(i)
  done;
  let pr = b.b_parents.(r) in
  if pr >= 0 then bump_ancestor_extents b pr (-w);
  shift_left b r w;
  b.b_n <- b.b_n - w;
  freeze b

let replace_entry e t =
  let id = Entry.id e in
  let r =
    match Hashtbl.find_opt t.ranks id with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Index.replace_entry: no entry %d" id)
  in
  let inst =
    match Instance.update_entry id (fun _ -> e) t.instance with
    | Ok inst -> inst
    | Error err -> invalid_arg ("Index.replace_entry: " ^ Instance.error_to_string err)
  in
  let entries = Array.copy t.entries in
  entries.(r) <- e;
  { t with instance = inst; entries }
