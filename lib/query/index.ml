open Bounds_model

type t = {
  instance : Instance.t;
  n : int;
  entries : Entry.t array; (* by rank, preorder *)
  ids : Entry.id array; (* rank -> id *)
  ranks : (Entry.id, int) Hashtbl.t; (* id -> rank *)
  parents : int array; (* rank -> parent rank, -1 for roots *)
  depths : int array;
  extents : int array; (* rank -> last rank of its subtree *)
}

let create ?pool instance =
  let n = Instance.size instance in
  let ids = Array.make n 0 in
  let parents = Array.make n (-1) in
  let depths = Array.make n 0 in
  let extents = Array.make n 0 in
  let ranks = Hashtbl.create (max 16 n) in
  (* The preorder numbering itself is inherently order-dependent (a rank
     is the DFS position), so this pass stays sequential.  It consumes the
     stored (most-recent-first) child lists directly: pushing a reversed
     list head-first leaves the first-inserted child on top of the stack,
     so pops reproduce exactly the forward preorder of the recursive
     visit — without a [List.rev] allocation per node. *)
  let next = ref 0 in
  let stack = ref [] in
  let push parent_rank depth rev_ids =
    List.iter (fun id -> stack := (id, parent_rank, depth) :: !stack) rev_ids
  in
  push (-1) 0 (Instance.rev_roots instance);
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (id, parent_rank, depth) :: rest ->
        stack := rest;
        let r = !next in
        incr next;
        ids.(r) <- id;
        parents.(r) <- parent_rank;
        depths.(r) <- depth;
        Hashtbl.replace ranks id r;
        push r (depth + 1) (Instance.rev_children instance id)
  done;
  assert (!next = n);
  (* Extents by one reverse pass: a rank is at least its own extent, and
     since children carry larger ranks than their parent, visiting ranks
     high-to-low folds each subtree's maximum into its parent before the
     parent itself is read. *)
  for r = 0 to n - 1 do
    extents.(r) <- r
  done;
  for r = n - 1 downto 1 do
    let p = parents.(r) in
    if p >= 0 && extents.(r) > extents.(p) then extents.(p) <- extents.(r)
  done;
  (* The per-rank entry payloads are independent map lookups: fill the
     array in parallel once the numbering is known. *)
  let entries =
    if n = 0 then [||]
    else begin
      let entries = Array.make n (Instance.entry instance ids.(0)) in
      Bounds_par.Pool.parallel_for ?pool ~align:1 n (fun ~lo ~hi ->
          for r = max lo 1 to hi - 1 do
            entries.(r) <- Instance.entry instance ids.(r)
          done);
      entries
    end
  in
  { instance; n; entries; ids; ranks; parents; depths; extents }

let instance ix = ix.instance
let n ix = ix.n

let rank ix id =
  match Hashtbl.find_opt ix.ranks id with Some r -> r | None -> raise Not_found

let rank_opt ix id = Hashtbl.find_opt ix.ranks id
let id_of_rank ix r = ix.ids.(r)
let entry_of_rank ix r = ix.entries.(r)
let parent_rank ix r = ix.parents.(r)
let depth_of_rank ix r = ix.depths.(r)
let extent_of_rank ix r = ix.extents.(r)

let ids_of ix bs =
  let k = Bitset.count bs in
  if k = 0 then []
  else begin
    let out = Array.make k 0 in
    let j = ref 0 in
    Bitset.iter
      (fun r ->
        out.(!j) <- ix.ids.(r);
        incr j)
      bs;
    Array.to_list out
  end
