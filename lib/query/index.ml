open Bounds_model

(* {1 Chunked copy-on-write preorder versions}

   A version still assigns each entry a dense preorder rank, but the
   five per-rank columns no longer live in flat arrays copied per
   transaction.  They are cut into immutable chunks of at most
   [chunk_cap] slots strung on a spine; versions share chunks
   structurally, and a splice rebuilds only the chunk(s) it touches
   plus the O(#chunks) spine.

   The preorder-shift problem — an insert at rank [k] renumbers every
   rank after [k] — is solved by storing nothing rank-absolute inside a
   chunk:

   - a slot's rank is [starts.(pos) + slot], with [starts] (the
     per-chunk rank offsets) recomputed on the spine in O(#chunks);
   - parents are stored as entry {e ids} (stable across shifts), not
     parent ranks;
   - subtree extents are stored as subtree {e sizes}:
     [extent r = r + size - 1], and a splice changes sizes only along
     the ancestor path of the splice point.

   The id->rank table is a persistent Patricia map ({!Pmap}) from id to
   [(chunk uid, slot)], shared between versions and updated in
   O(touched slots · log n) — replacing the per-transaction
   [Hashtbl.copy].  A chunk's [uid] names its {e logical} slot layout:
   copy-on-write that preserves every slot (an ancestor size bump, a
   payload replace) keeps the uid, so the id->loc map needs no update;
   only rebuilds that move slots allocate fresh uids.

   Query sweeps (χ axes, filter scans) want flat arrays back: a version
   lazily materializes a flat mirror (ranks table included) on first
   sweep, under a mutex so concurrent snapshot readers race safely.
   The write path never forces it. *)

let chunk_cap = 256
let slot_bits = 8 (* chunk_cap <= 2^slot_bits; locs pack (uid, slot) *)
let slot_mask = (1 lsl slot_bits) - 1
let next_uid = Atomic.make 0
let fresh_uid () = Atomic.fetch_and_add next_uid 1

type chunk = {
  uid : int;
  len : int;
  c_ids : int array; (* slot -> Entry.id *)
  c_entries : Entry.t array;
  c_parents : int array; (* slot -> parent Entry.id, -1 for roots *)
  c_depths : int array;
  c_sizes : int array; (* slot -> subtree size *)
}

(* Lazily-materialized flat mirror for rank sweeps; [f_parents] and
   [f_extents] are back in rank coordinates. *)
type flat = {
  f_ids : Entry.id array;
  f_entries : Entry.t array;
  f_parents : int array;
  f_depths : int array;
  f_extents : int array;
  f_ranks : (Entry.id, int) Hashtbl.t;
}

type t = {
  instance : Instance.t;
  n : int;
  chunks : chunk array; (* the spine *)
  starts : int array; (* spine pos -> rank of the chunk's slot 0 *)
  locs : int Pmap.t; (* Entry.id -> (uid lsl slot_bits) lor slot *)
  pos : (int, int) Hashtbl.t; (* uid -> spine pos, rebuilt per version *)
  mutable flat : flat option;
  flat_lock : Mutex.t;
}

(* Greatest [p] with [starts.(p) <= r]; caller guarantees a non-empty
   spine and [r < n]. *)
let find_pos starts nchunks r =
  let lo = ref 0 and hi = ref (nchunks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= r then lo := mid else hi := mid - 1
  done;
  !lo

let spine_of_chunks chunks =
  let nchunks = Array.length chunks in
  let starts = Array.make (max 1 nchunks) 0 in
  let pos = Hashtbl.create (max 16 nchunks) in
  let r = ref 0 in
  for p = 0 to nchunks - 1 do
    starts.(p) <- !r;
    Hashtbl.replace pos chunks.(p).uid p;
    r := !r + chunks.(p).len
  done;
  (Array.sub starts 0 nchunks, pos)

let locs_of_chunks chunks =
  Array.fold_left
    (fun locs c ->
      let base = c.uid lsl slot_bits in
      let locs = ref locs in
      for i = 0 to c.len - 1 do
        locs := Pmap.add c.c_ids.(i) (base lor i) !locs
      done;
      !locs)
    Pmap.empty chunks

(* Cut flat preorder columns ([parents]/[extents] in rank coordinates)
   into chunks. *)
let chunkify n ids entries parents depths extents =
  let nchunks = (n + chunk_cap - 1) / chunk_cap in
  Array.init nchunks (fun ci ->
      let lo = ci * chunk_cap in
      let len = min chunk_cap (n - lo) in
      {
        uid = fresh_uid ();
        len;
        c_ids = Array.sub ids lo len;
        c_entries = Array.sub entries lo len;
        c_parents =
          Array.init len (fun i ->
              let pr = parents.(lo + i) in
              if pr < 0 then -1 else ids.(pr));
        c_depths = Array.sub depths lo len;
        c_sizes = Array.init len (fun i -> extents.(lo + i) - (lo + i) + 1);
      })

let create ?pool instance =
  let n = Instance.size instance in
  let ids = Array.make n 0 in
  let parents = Array.make n (-1) in
  let depths = Array.make n 0 in
  let extents = Array.make n 0 in
  let ranks = Hashtbl.create (max 16 n) in
  (* The preorder numbering itself is inherently order-dependent (a rank
     is the DFS position), so this pass stays sequential.  It consumes the
     stored (most-recent-first) child lists directly: pushing a reversed
     list head-first leaves the first-inserted child on top of the stack,
     so pops reproduce exactly the forward preorder of the recursive
     visit — without a [List.rev] allocation per node.

     The stack lives in two pre-sized int arrays (every node is pushed
     exactly once, so [n] slots bound its height); a cons-cell stack of
     boxed triples costs ~7 words of transient heap per node, which at
     10^6 entries is the difference between bulk load fitting its budget
     or not.  Depth is not stacked at all: parents are ranked before
     their children, so it is [depths.(parent) + 1] at pop time. *)
  let next = ref 0 in
  let st_id = Array.make (max 1 n) 0 in
  let st_parent = Array.make (max 1 n) (-1) in
  let sp = ref 0 in
  let push parent_rank rev_ids =
    List.iter
      (fun id ->
        st_id.(!sp) <- id;
        st_parent.(!sp) <- parent_rank;
        incr sp)
      rev_ids
  in
  push (-1) (Instance.rev_roots instance);
  while !sp > 0 do
    decr sp;
    let id = st_id.(!sp) and parent_rank = st_parent.(!sp) in
    let r = !next in
    incr next;
    ids.(r) <- id;
    parents.(r) <- parent_rank;
    depths.(r) <- (if parent_rank < 0 then 0 else depths.(parent_rank) + 1);
    Hashtbl.replace ranks id r;
    push r (Instance.rev_children instance id)
  done;
  assert (!next = n);
  (* Extents by one reverse pass: a rank is at least its own extent, and
     since children carry larger ranks than their parent, visiting ranks
     high-to-low folds each subtree's maximum into its parent before the
     parent itself is read. *)
  for r = 0 to n - 1 do
    extents.(r) <- r
  done;
  for r = n - 1 downto 1 do
    let p = parents.(r) in
    if p >= 0 && extents.(r) > extents.(p) then extents.(p) <- extents.(r)
  done;
  (* The per-rank entry payloads are independent map lookups: fill the
     array in parallel once the numbering is known. *)
  let entries =
    if n = 0 then [||]
    else begin
      let entries = Array.make n (Instance.entry instance ids.(0)) in
      Bounds_par.Pool.parallel_for ?pool ~align:1 n (fun ~lo ~hi ->
          for r = max lo 1 to hi - 1 do
            entries.(r) <- Instance.entry instance ids.(r)
          done);
      entries
    end
  in
  let chunks = chunkify n ids entries parents depths extents in
  let starts, pos = spine_of_chunks chunks in
  (* A freshly-built version keeps its flat mirror: the build already
     paid for it, and bulk-loaded bases are the versions queries sweep
     hardest. *)
  let flat =
    Some
      {
        f_ids = ids;
        f_entries = entries;
        f_parents = parents;
        f_depths = depths;
        f_extents = extents;
        f_ranks = ranks;
      }
  in
  {
    instance;
    n;
    chunks;
    starts;
    locs = locs_of_chunks chunks;
    pos;
    flat;
    flat_lock = Mutex.create ();
  }

let instance ix = ix.instance
let n ix = ix.n

let force_flat t =
  Mutex.lock t.flat_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.flat_lock)
    (fun () ->
      match t.flat with
      | Some f -> f
      | None ->
          let n = t.n in
          let f_ids = Array.make n 0 in
          let f_depths = Array.make n 0 in
          let f_ranks = Hashtbl.create (max 16 n) in
          let f_entries =
            if n = 0 then [||] else Array.make n t.chunks.(0).c_entries.(0)
          in
          let r = ref 0 in
          Array.iter
            (fun c ->
              for i = 0 to c.len - 1 do
                f_ids.(!r) <- c.c_ids.(i);
                f_entries.(!r) <- c.c_entries.(i);
                f_depths.(!r) <- c.c_depths.(i);
                Hashtbl.replace f_ranks c.c_ids.(i) !r;
                incr r
              done)
            t.chunks;
          let f_parents = Array.make n (-1) in
          let f_extents = Array.make n 0 in
          let r = ref 0 in
          Array.iter
            (fun c ->
              for i = 0 to c.len - 1 do
                let pid = c.c_parents.(i) in
                if pid >= 0 then f_parents.(!r) <- Hashtbl.find f_ranks pid;
                f_extents.(!r) <- !r + c.c_sizes.(i) - 1;
                incr r
              done)
            t.chunks;
          let f =
            { f_ids; f_entries; f_parents; f_depths; f_extents; f_ranks }
          in
          t.flat <- Some f;
          f)

let materialize t = match t.flat with Some _ -> () | None -> ignore (force_flat t)

(* Reading [t.flat] without the lock is safe: the record is immutable
   once published, and a stale [None] only costs the chunk-tier path. *)

let rank t id =
  match t.flat with
  | Some f -> (
      match Hashtbl.find_opt f.f_ranks id with
      | Some r -> r
      | None -> raise Not_found)
  | None -> (
      match Pmap.find_opt id t.locs with
      | None -> raise Not_found
      | Some loc ->
          t.starts.(Hashtbl.find t.pos (loc lsr slot_bits))
          + (loc land slot_mask))

let rank_opt t id =
  match t.flat with
  | Some f -> Hashtbl.find_opt f.f_ranks id
  | None -> (
      match Pmap.find_opt id t.locs with
      | None -> None
      | Some loc ->
          Some
            (t.starts.(Hashtbl.find t.pos (loc lsr slot_bits))
            + (loc land slot_mask)))

let[@inline] chunk_at t r =
  let p = find_pos t.starts (Array.length t.chunks) r in
  (t.chunks.(p), r - t.starts.(p))

let id_of_rank t r =
  match t.flat with
  | Some f -> f.f_ids.(r)
  | None ->
      let c, i = chunk_at t r in
      c.c_ids.(i)

let entry_of_rank t r =
  match t.flat with
  | Some f -> f.f_entries.(r)
  | None ->
      let c, i = chunk_at t r in
      c.c_entries.(i)

let parent_rank t r =
  match t.flat with
  | Some f -> f.f_parents.(r)
  | None ->
      let c, i = chunk_at t r in
      let pid = c.c_parents.(i) in
      if pid < 0 then -1 else rank t pid

let depth_of_rank t r =
  match t.flat with
  | Some f -> f.f_depths.(r)
  | None ->
      let c, i = chunk_at t r in
      c.c_depths.(i)

let extent_of_rank t r =
  match t.flat with
  | Some f -> f.f_extents.(r)
  | None ->
      let c, i = chunk_at t r in
      r + c.c_sizes.(i) - 1

let ids_of t bs =
  let k = Bitset.count bs in
  if k = 0 then []
  else begin
    let out = Array.make k 0 in
    let j = ref 0 in
    (match t.flat with
    | Some f ->
        Bitset.iter
          (fun r ->
            out.(!j) <- f.f_ids.(r);
            incr j)
          bs
    | None ->
        Bitset.iter
          (fun r ->
            out.(!j) <- id_of_rank t r;
            incr j)
          bs);
    Array.to_list out
  end

let chunk_count t = Array.length t.chunks

let shared_chunks t1 t2 =
  let tbl = Hashtbl.create (max 16 (Array.length t2.chunks)) in
  Array.iter (fun c -> Hashtbl.replace tbl c.uid c) t2.chunks;
  Array.fold_left
    (fun acc c ->
      match Hashtbl.find_opt tbl c.uid with
      | Some c' when c' == c -> acc + 1
      | _ -> acc)
    0 t1.chunks

(* {1 Incremental maintenance}

   In a preorder numbering a subtree is the contiguous rank interval
   [r, extent r], so a subtree insertion under parent [p] lands as one
   block at [k = extent p + 1] (new children are appended after their
   siblings — [Instance.add]/[Instance.graft] prepend to the reversed
   child list) and a deletion removes one block.  On the chunked
   representation the splice rebuilds only the chunks overlapping the
   block's boundaries (interior chunks of a removed range are dropped
   whole), bumps subtree sizes along the ancestor path of the splice
   point, and recomputes the spine — O(|Δ| + touched chunks + #chunks)
   per transaction instead of O(n). *)

type splice = { sp_at : int; sp_removed : int; sp_inserted : int }

type builder = {
  mutable b_inst : Instance.t;
  mutable b_n : int;
  mutable b_chunks : chunk array; (* dense prefix of length b_nchunks *)
  mutable b_nchunks : int;
  mutable b_starts : int array; (* same capacity as b_chunks *)
  mutable b_locs : int Pmap.t;
  b_pos : (int, int) Hashtbl.t;
  (* Chunks this builder allocated: not yet visible to any sealed
     version, so slot-preserving edits may mutate them in place. *)
  b_owned : (int, chunk) Hashtbl.t;
  mutable b_splices : splice list; (* newest first *)
}

let dummy_chunk =
  {
    uid = -1;
    len = 0;
    c_ids = [||];
    c_entries = [||];
    c_parents = [||];
    c_depths = [||];
    c_sizes = [||];
  }

let builder_of t =
  {
    b_inst = t.instance;
    b_n = t.n;
    b_chunks = Array.copy t.chunks;
    b_nchunks = Array.length t.chunks;
    b_starts = Array.copy t.starts;
    b_locs = t.locs;
    b_pos = Hashtbl.copy t.pos;
    b_owned = Hashtbl.create 16;
    b_splices = [];
  }

let recompute_spine b =
  if Array.length b.b_starts < Array.length b.b_chunks then
    b.b_starts <- Array.make (Array.length b.b_chunks) 0;
  Hashtbl.clear b.b_pos;
  let r = ref 0 in
  for p = 0 to b.b_nchunks - 1 do
    b.b_starts.(p) <- !r;
    Hashtbl.replace b.b_pos b.b_chunks.(p).uid p;
    r := !r + b.b_chunks.(p).len
  done

(* Replace spine positions [p_lo..p_hi] (empty range when
   [p_hi = p_lo - 1]) with [repl]. *)
let replace_spine b p_lo p_hi repl =
  let m = Array.length repl in
  let old_span = p_hi - p_lo + 1 in
  let new_nchunks = b.b_nchunks - old_span + m in
  if new_nchunks > Array.length b.b_chunks then begin
    let cap = max new_nchunks ((2 * Array.length b.b_chunks) + 1) in
    let chunks = Array.make cap dummy_chunk in
    Array.blit b.b_chunks 0 chunks 0 p_lo;
    Array.blit repl 0 chunks p_lo m;
    Array.blit b.b_chunks (p_hi + 1) chunks (p_lo + m)
      (b.b_nchunks - p_hi - 1);
    b.b_chunks <- chunks
  end
  else begin
    Array.blit b.b_chunks (p_hi + 1) b.b_chunks (p_lo + m)
      (b.b_nchunks - p_hi - 1);
    Array.blit repl 0 b.b_chunks p_lo m
  end;
  b.b_nchunks <- new_nchunks;
  recompute_spine b

(* Block content for an insertion, parents as entry ids. *)
type slab = {
  s_ids : Entry.id array;
  s_entries : Entry.t array;
  s_parents : int array;
  s_depths : int array;
  s_sizes : int array;
}

let empty_slab =
  {
    s_ids = [||];
    s_entries = [||];
    s_parents = [||];
    s_depths = [||];
    s_sizes = [||];
  }

(* The one structural edit: remove ranks [at, at+removed) and insert
   [slab] in their place.  Slots kept from the boundary chunks and the
   slab are redistributed into fresh evenly-sized chunks (each at most
   [chunk_cap], at least [chunk_cap/2] when more than one), so the
   chunk count never grows faster than inserted-slots / (chunk_cap/2)
   and repeated edits at one site cannot fragment the spine. *)
let splice_chunks b ~at ~removed slab =
  let w = Array.length slab.s_ids in
  let p_lo, p_hi =
    if b.b_nchunks = 0 then (0, -1)
    else if at >= b.b_n then (b.b_nchunks - 1, b.b_nchunks - 1)
    else
      let p0 = find_pos b.b_starts b.b_nchunks at in
      let p1 =
        if removed = 0 then p0
        else find_pos b.b_starts b.b_nchunks (at + removed - 1)
      in
      (p0, p1)
  in
  (* Unbind the removed slots (interior chunks included). *)
  if removed > 0 then
    for p = p_lo to p_hi do
      let c = b.b_chunks.(p) and s = b.b_starts.(p) in
      let lo = max 0 (at - s) and hi = min (c.len - 1) (at + removed - 1 - s) in
      for i = lo to hi do
        b.b_locs <- Pmap.remove c.c_ids.(i) b.b_locs
      done
    done;
  let left_len = if p_hi < p_lo then 0 else min at b.b_n - b.b_starts.(p_lo) in
  let right_len =
    if p_hi < p_lo then 0
    else b.b_starts.(p_hi) + b.b_chunks.(p_hi).len - (at + removed)
  in
  let cl = if p_hi < p_lo then dummy_chunk else b.b_chunks.(p_lo) in
  let cr = if p_hi < p_lo then dummy_chunk else b.b_chunks.(p_hi) in
  let right_off = if p_hi < p_lo then 0 else at + removed - b.b_starts.(p_hi) in
  (* Global slot [g] of the rebuilt region -> source columns. *)
  let src g =
    if g < left_len then (cl.c_ids, cl.c_entries, cl.c_parents, cl.c_depths, cl.c_sizes, g)
    else if g < left_len + w then
      (slab.s_ids, slab.s_entries, slab.s_parents, slab.s_depths, slab.s_sizes, g - left_len)
    else
      ( cr.c_ids,
        cr.c_entries,
        cr.c_parents,
        cr.c_depths,
        cr.c_sizes,
        right_off + (g - left_len - w) )
  in
  let total = left_len + w + right_len in
  let m = if total = 0 then 0 else (total + chunk_cap - 1) / chunk_cap in
  let repl =
    Array.init m (fun ci ->
        let base = ci * total / m and next = (ci + 1) * total / m in
        let len = next - base in
        let ids = Array.make len 0
        and parents = Array.make len (-1)
        and depths = Array.make len 0
        and sizes = Array.make len 0 in
        let entries =
          let _, es, _, _, _, j = src base in
          Array.make len es.(j)
        in
        for i = 0 to len - 1 do
          let is, es, ps, ds, ss, j = src (base + i) in
          ids.(i) <- is.(j);
          entries.(i) <- es.(j);
          parents.(i) <- ps.(j);
          depths.(i) <- ds.(j);
          sizes.(i) <- ss.(j)
        done;
        { uid = fresh_uid (); len; c_ids = ids; c_entries = entries;
          c_parents = parents; c_depths = depths; c_sizes = sizes })
  in
  replace_spine b p_lo p_hi repl;
  (* Rebind every slot of the rebuilt chunks (kept boundary slots moved
     chunk too) and let later edits in this transaction mutate them. *)
  Array.iter
    (fun c ->
      Hashtbl.replace b.b_owned c.uid c;
      let base = c.uid lsl slot_bits in
      for i = 0 to c.len - 1 do
        b.b_locs <- Pmap.add c.c_ids.(i) (base lor i) b.b_locs
      done)
    repl;
  b.b_n <- b.b_n - removed + w;
  b.b_splices <-
    { sp_at = at; sp_removed = removed; sp_inserted = w } :: b.b_splices

(* Copy-on-write for a slot-preserving edit: uid (and so every loc into
   the chunk) survives; only the physical arrays fork. *)
let cow_chunk b p =
  let c = b.b_chunks.(p) in
  match Hashtbl.find_opt b.b_owned c.uid with
  | Some c' when c' == c -> c
  | _ ->
      let c' =
        {
          uid = c.uid;
          len = c.len;
          c_ids = Array.copy c.c_ids;
          c_entries = Array.copy c.c_entries;
          c_parents = Array.copy c.c_parents;
          c_depths = Array.copy c.c_depths;
          c_sizes = Array.copy c.c_sizes;
        }
      in
      Hashtbl.replace b.b_owned c.uid c';
      b.b_chunks.(p) <- c';
      c'

(* (spine pos, slot, rank) of an id in the builder. *)
let b_find b id =
  match Pmap.find_opt id b.b_locs with
  | None -> None
  | Some loc ->
      let p = Hashtbl.find b.b_pos (loc lsr slot_bits) in
      let slot = loc land slot_mask in
      Some (p, slot, b.b_starts.(p) + slot)

let bump_sizes b start_pid w =
  let pid = ref start_pid in
  while !pid >= 0 do
    match b_find b !pid with
    | None ->
        invalid_arg (Printf.sprintf "Index: broken parent chain at %d" !pid)
    | Some (p, slot, _) ->
        let c = cow_chunk b p in
        c.c_sizes.(slot) <- c.c_sizes.(slot) + w;
        pid := c.c_parents.(slot)
  done

let parent_point b ~op = function
  | None -> (-1, b.b_n, 0)
  | Some p -> (
      match b_find b p with
      | None -> invalid_arg (Printf.sprintf "Index.%s: no parent entry %d" op p)
      | Some (cp, slot, r) ->
          let c = b.b_chunks.(cp) in
          (p, r + c.c_sizes.(slot), c.c_depths.(slot) + 1))

let insert_one b ~parent entry =
  (match Instance.add ~parent entry b.b_inst with
  | Ok inst -> b.b_inst <- inst
  | Error e -> invalid_arg ("Index.apply: " ^ Instance.error_to_string e));
  let pid, k, depth = parent_point b ~op:"apply" parent in
  splice_chunks b ~at:k ~removed:0
    {
      s_ids = [| Entry.id entry |];
      s_entries = [| entry |];
      s_parents = [| pid |];
      s_depths = [| depth |];
      s_sizes = [| 1 |];
    };
  if pid >= 0 then bump_sizes b pid 1

let delete_one b id =
  (match Instance.remove_leaf id b.b_inst with
  | Ok inst -> b.b_inst <- inst
  | Error e -> invalid_arg ("Index.apply: " ^ Instance.error_to_string e));
  match b_find b id with
  | None -> invalid_arg (Printf.sprintf "Index.apply: no entry %d" id)
  | Some (p, slot, r) ->
      let pid = b.b_chunks.(p).c_parents.(slot) in
      splice_chunks b ~at:r ~removed:1 empty_slab;
      if pid >= 0 then bump_sizes b pid (-1)

let seal b =
  (* Published chunks must never mutate again: forget ownership so a
     reused builder copies on its next write. *)
  Hashtbl.reset b.b_owned;
  let chunks = Array.sub b.b_chunks 0 b.b_nchunks in
  let starts, pos = spine_of_chunks chunks in
  {
    instance = b.b_inst;
    n = b.b_n;
    chunks;
    starts;
    locs = b.b_locs;
    pos;
    flat = None;
    flat_lock = Mutex.create ();
  }

let apply_op_b b = function
  | Update.Insert { parent; entry } -> insert_one b ~parent entry
  | Update.Delete id -> delete_one b id

let graft_b b ~parent ?delta_index delta =
  let dix =
    match delta_index with Some d -> d | None -> create delta
  in
  let w = dix.n in
  if w > 0 then begin
    (match Instance.graft ~parent delta b.b_inst with
    | Ok inst -> b.b_inst <- inst
    | Error e -> invalid_arg ("Index.graft: " ^ Instance.error_to_string e));
    let pid, k, depth_off = parent_point b ~op:"graft" parent in
    let f = force_flat dix in
    (* Parents as ids and extents as sizes make the block translation-
       free except for the depth offset and the delta-roots' parent. *)
    let slab =
      {
        s_ids = f.f_ids;
        s_entries = f.f_entries;
        s_parents =
          Array.map (fun pr -> if pr < 0 then pid else f.f_ids.(pr)) f.f_parents;
        s_depths = Array.map (fun d -> depth_off + d) f.f_depths;
        s_sizes = Array.init w (fun i -> f.f_extents.(i) - i + 1);
      }
    in
    splice_chunks b ~at:k ~removed:0 slab;
    if pid >= 0 then bump_sizes b pid w
  end

let prune_b b root =
  match b_find b root with
  | None -> invalid_arg (Printf.sprintf "Index.prune: no entry %d" root)
  | Some (p, slot, r) ->
      let c = b.b_chunks.(p) in
      let w = c.c_sizes.(slot) in
      let pid = c.c_parents.(slot) in
      (match Instance.remove_subtree root b.b_inst with
      | Ok inst -> b.b_inst <- inst
      | Error e -> invalid_arg ("Index.prune: " ^ Instance.error_to_string e));
      splice_chunks b ~at:r ~removed:w empty_slab;
      if pid >= 0 then bump_sizes b pid (-w)

let replace_entry_b b e =
  let id = Entry.id e in
  match b_find b id with
  | None -> invalid_arg (Printf.sprintf "Index.replace_entry: no entry %d" id)
  | Some (p, slot, _) ->
      (match Instance.update_entry id (fun _ -> e) b.b_inst with
      | Ok inst -> b.b_inst <- inst
      | Error err ->
          invalid_arg ("Index.replace_entry: " ^ Instance.error_to_string err));
      let c = cow_chunk b p in
      c.c_entries.(slot) <- e

module Builder = struct
  type index = t
  type t = builder

  let of_version = builder_of
  let instance b = b.b_inst
  let n b = b.b_n
  let apply_op = apply_op_b
  let graft b ~parent ?delta_index delta = graft_b b ~parent ?delta_index delta
  let prune b root = prune_b b root
  let replace_entry b e = replace_entry_b b e
  let splices b = List.rev b.b_splices
  let seal : t -> index = seal
end

let apply ops t =
  let b = builder_of t in
  List.iter (apply_op_b b) ops;
  seal b

let graft ~parent ?delta_index delta t =
  let dix = match delta_index with Some d -> d | None -> create delta in
  if dix.n = 0 then t
  else begin
    let b = builder_of t in
    graft_b b ~parent ~delta_index:dix delta;
    seal b
  end

let prune root t =
  let b = builder_of t in
  prune_b b root;
  seal b

let replace_entry e t =
  let b = builder_of t in
  replace_entry_b b e;
  seal b
