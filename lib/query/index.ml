open Bounds_model

module Imap = Map.Make (Int)

type t = {
  instance : Instance.t;
  n : int;
  entries : Entry.t array; (* by rank, preorder *)
  ids : Entry.id array; (* rank -> id *)
  ranks : int Imap.t; (* id -> rank *)
  parents : int array; (* rank -> parent rank, -1 for roots *)
  depths : int array;
  extents : int array; (* rank -> last rank of its subtree *)
}

let create ?pool instance =
  let n = Instance.size instance in
  let ids = Array.make n 0 in
  let parents = Array.make n (-1) in
  let depths = Array.make n 0 in
  let extents = Array.make n 0 in
  let ranks = ref Imap.empty in
  let next = ref 0 in
  (* The preorder numbering itself is inherently order-dependent (a rank
     is the DFS position), so this pass stays sequential. *)
  let rec visit parent_rank depth id =
    let r = !next in
    incr next;
    ids.(r) <- id;
    parents.(r) <- parent_rank;
    depths.(r) <- depth;
    ranks := Imap.add id r !ranks;
    List.iter (visit r (depth + 1)) (Instance.children instance id);
    (* all descendants were numbered in [r+1, next-1] *)
    extents.(r) <- !next - 1
  in
  List.iter (visit (-1) 0) (Instance.roots instance);
  assert (!next = n);
  (* The per-rank entry payloads are independent map lookups: fill the
     array in parallel once the numbering is known. *)
  let entries =
    if n = 0 then [||]
    else begin
      let entries = Array.make n (Instance.entry instance ids.(0)) in
      Bounds_par.Pool.parallel_for ?pool ~align:1 n (fun ~lo ~hi ->
          for r = max lo 1 to hi - 1 do
            entries.(r) <- Instance.entry instance ids.(r)
          done);
      entries
    end
  in
  { instance; n; entries; ids; ranks = !ranks; parents; depths; extents }

let instance ix = ix.instance
let n ix = ix.n

let rank ix id =
  match Imap.find_opt id ix.ranks with Some r -> r | None -> raise Not_found

let rank_opt ix id = Imap.find_opt id ix.ranks
let id_of_rank ix r = ix.ids.(r)
let entry_of_rank ix r = ix.entries.(r)
let parent_rank ix r = ix.parents.(r)
let depth_of_rank ix r = ix.depths.(r)
let extent_of_rank ix r = ix.extents.(r)
let ids_of ix bs = List.rev (Bitset.fold (fun r acc -> ix.ids.(r) :: acc) bs [])
