open Bounds_model

(** Hierarchical selection queries (Jagadish et al., SIGMOD'99).

    A query denotes a set of directory entries.  Besides atomic selections
    (filters) and boolean combinators, the language has the hierarchical
    operator χ: [Chi (axis, q1, q2)] selects the entries in [q1] that have
    at least one [axis]-related entry in [q2].  [Minus] is the σ−
    difference operator the paper's Figure 4 uses to express "entries in
    [q1] {e not} covered by [q2]". *)

type axis = Child | Parent | Descendant | Ancestor

type t =
  | Select of Filter.t
  | Minus of t * t  (** σ−(q1, q2) = q1 \ q2 *)
  | Union of t * t
  | Inter of t * t
  | Chi of axis * t * t

(** Number of operators + atomic filter nodes: the [|Q|] of the
    O(|Q|·|D|) evaluation bound. *)
val size : t -> int

val axis_to_string : axis -> string
val axis_of_string : string -> (axis, string) result

(** S-expression rendering in the paper's style, e.g.
    [(minus (select "(objectClass=orgGroup)")
            (chi d (select "(objectClass=orgGroup)")
                   (select "(objectClass=person)")))].
    Parseable back by {!Query_parser}. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Convenience constructors. *)
val select_class : Oclass.t -> t

(** All subquery nodes of [q], including [q] itself, in preorder.
    Occurrence counts over the canonical {!to_string} renderings of these
    nodes drive the shared-subquery prewarm of {!Plan}'s memo tables. *)
val subqueries : t -> t list
