open Bounds_model

(* {1 Plan representation} *)

type access =
  | A_eq of Attr.t * string
  | A_present of Attr.t
  | A_range of { ge : bool; attr : Attr.t; value : string }
  | A_substr of Attr.t * Filter.substring
  | A_full (* And [] *)
  | A_empty (* Or [] *)

type fnode = { fshape : fshape; f_est : int; mutable f_actual : int }

and fshape =
  | F_access of access
  | F_and of fnode * conjunct list
      (* seed access path + the remaining conjuncts, most selective
         first, each either intersected as a materialized bitset or
         verified per candidate over the running candidate set *)
  | F_or of fnode list
  | F_not of fnode

and conjunct = C_inter of fnode | C_verify of residual
and residual = { pred : Filter.t; r_est : int }

type qnode = { qshape : qshape; q_est : int; mutable q_actual : int }

and qshape =
  | Q_select of fnode
  | Q_minus of qnode * qnode
  | Q_union of qnode * qnode
  | Q_inter of qnode * qnode
  | Q_chi of Query.axis * qnode * qnode

type t = { vx : Vindex.t; ix : Index.t; query : Query.t; root : qnode }

(* {1 Selectivity estimation}

   Cardinality upper bounds straight from the value index (O(log) per
   leaf).  Conjunctions estimate as the minimum over conjuncts,
   disjunctions as the clamped sum, complements as the remainder — crude,
   but the only decision they drive is ordering, where relative magnitude
   is what matters. *)

let rec est_filter vx n = function
  | Filter.Eq (a, v) -> min n (Vindex.card_eq vx a v)
  | Filter.Present a -> min n (Vindex.card_present vx a)
  | Filter.Ge (a, v) -> min n (Vindex.card_range vx ~ge:true a v)
  | Filter.Le (a, v) -> min n (Vindex.card_range vx ~ge:false a v)
  | Filter.Substr (a, s) -> min n (Vindex.card_substr vx a s)
  | Filter.And fs -> List.fold_left (fun m f -> min m (est_filter vx n f)) n fs
  | Filter.Or fs -> min n (List.fold_left (fun s f -> s + est_filter vx n f) 0 fs)
  | Filter.Not _ ->
      (* Leaf estimates are upper bounds, so [n - est f] would be a lower
         bound — treating it as an estimate once made a Not the seed of a
         conjunction and forced a full per-candidate verification sweep.
         The only sound upper bound for a complement is [n], which also
         keeps Not out of seed position. *)
      n

(* {1 Planning} *)

let fnode fshape f_est = { fshape; f_est; f_actual = -1 }

(* One per-candidate [Filter.matches] verification costs about this many
   bitset rank-fills (entry lookup, attribute access, string
   normalization vs. one list step and a bit set).  It prices the
   intersect-vs-verify decision below; only the order of magnitude
   matters. *)
let verify_factor = 16

(* Materialization cost of a plan subtree, in rank-fill units: access
   paths pay one fill per estimated member, trigram candidates
   additionally pay a per-candidate verification each, and complements
   add a word-wise pass over the universe. *)
let rec mat_cost n fn =
  match fn.fshape with
  | F_access (A_eq _ | A_present _ | A_range _) -> fn.f_est
  | F_access (A_substr _) -> verify_factor * fn.f_est
  | F_access A_full -> n / 32
  | F_access A_empty -> 0
  | F_and (seed, cs) ->
      List.fold_left
        (fun acc -> function
          | C_inter nd -> acc + mat_cost n nd
          | C_verify r -> acc + (verify_factor * min seed.f_est r.r_est))
        (mat_cost n seed) cs
  | F_or nodes -> List.fold_left (fun acc nd -> acc + mat_cost n nd) 0 nodes
  | F_not nd -> mat_cost n nd + (n / 32)

let rec plan_filter vx n f =
  let est = est_filter vx n f in
  match f with
  | Filter.Eq (a, v) -> fnode (F_access (A_eq (a, v))) est
  | Filter.Present a -> fnode (F_access (A_present a)) est
  | Filter.Ge (attr, value) -> fnode (F_access (A_range { ge = true; attr; value })) est
  | Filter.Le (attr, value) -> fnode (F_access (A_range { ge = false; attr; value })) est
  | Filter.Substr (a, s) -> fnode (F_access (A_substr (a, s))) est
  | Filter.And [] -> fnode (F_access A_full) n
  | Filter.And [ f ] -> plan_filter vx n f
  | Filter.And fs ->
      (* Most selective conjunct becomes the seed access path.  The
         remaining conjuncts apply most selective first, each in the
         cheaper of two modes: materialize its own bitset and intersect
         (one fill per estimated member), or verify it per candidate of
         the running set (one [Filter.matches] per survivor,
         [verify_factor] dearer apiece).  Indexed conjuncts therefore
         intersect unless the candidate set has already shrunk well below
         their cardinality; [Not] conjuncts estimate at [n] and so
         gravitate to the verify tail — complements are taken late and
         narrow, as a per-candidate boolean test, never as an O(n)
         complement set. *)
      let scored = List.mapi (fun i f -> (i, f, est_filter vx n f)) fs in
      let seed_i, seed_f, seed_e =
        List.fold_left
          (fun (bi, bf, be) (i, f, e) -> if e < be then (i, f, e) else (bi, bf, be))
          (List.hd scored) (List.tl scored)
      in
      let rest =
        scored
        |> List.filter (fun (i, _, _) -> i <> seed_i)
        |> List.stable_sort (fun (_, _, e1) (_, _, e2) -> Int.compare e1 e2)
      in
      let _, rev_conjuncts =
        List.fold_left
          (fun (cur, acc) (_, pred, r_est) ->
            let nd = plan_filter vx n pred in
            let c =
              if mat_cost n nd <= verify_factor * cur then C_inter nd
              else C_verify { pred; r_est }
            in
            (min cur r_est, c :: acc))
          (seed_e, []) rest
      in
      fnode (F_and (plan_filter vx n seed_f, List.rev rev_conjuncts)) est
  | Filter.Or [] -> fnode (F_access A_empty) 0
  | Filter.Or fs -> fnode (F_or (List.map (plan_filter vx n) fs)) est
  | Filter.Not f -> fnode (F_not (plan_filter vx n f)) est

let qnode qshape q_est = { qshape; q_est; q_actual = -1 }

let rec plan_q vx n = function
  | Query.Select f ->
      let fn = plan_filter vx n f in
      qnode (Q_select fn) fn.f_est
  | Query.Minus (a, b) ->
      let pa = plan_q vx n a and pb = plan_q vx n b in
      qnode (Q_minus (pa, pb)) pa.q_est
  | Query.Union (a, b) ->
      let pa = plan_q vx n a and pb = plan_q vx n b in
      qnode (Q_union (pa, pb)) (min n (pa.q_est + pb.q_est))
  | Query.Inter (a, b) ->
      let pa = plan_q vx n a and pb = plan_q vx n b in
      qnode (Q_inter (pa, pb)) (min pa.q_est pb.q_est)
  | Query.Chi (ax, a, b) ->
      (* the result is a subset of q1 *)
      let pa = plan_q vx n a and pb = plan_q vx n b in
      qnode (Q_chi (ax, pa, pb)) pa.q_est

let plan vx query =
  let ix = Vindex.index vx in
  { vx; ix; query; root = plan_q vx (Index.n ix) query }

(* {1 Execution}

   Every branch returns a freshly allocated bitset, so in-place residual
   filtering and [_into] accumulation never alias a caller-visible set.
   [f_actual]/[q_actual] are recorded as nodes complete; a node skipped
   by an early exit keeps [-1] and explains as "skipped". *)

let verify_into ix pred cand =
  (* [Bitset.iter] reads one byte ahead of the bits it visits, so
     unsetting the current member is safe. *)
  Bitset.iter
    (fun r -> if not (Filter.matches pred (Index.entry_of_rank ix r)) then Bitset.unset cand r)
    cand

let rec exec_f ?pool vx ix node =
  let n = Index.n ix in
  let bs =
    match node.fshape with
    | F_access (A_eq (a, v)) -> Vindex.lookup_eq vx a v
    | F_access (A_present a) -> Vindex.lookup_present vx a
    | F_access (A_range { ge; attr; value }) -> Vindex.lookup_range vx ~ge attr value
    | F_access (A_substr (a, sub)) ->
        (* trigram candidates are a superset: verify each one *)
        let cand = Vindex.substr_candidates vx a sub in
        verify_into ix (Filter.Substr (a, sub)) cand;
        cand
    | F_access A_full -> Bitset.full n
    | F_access A_empty -> Bitset.create n
    | F_and (seed, conjuncts) ->
        let cand = exec_f ?pool vx ix seed in
        List.iter
          (fun c ->
            if not (Bitset.is_empty cand) then
              match c with
              | C_inter nd -> Bitset.inter_into ~into:cand (exec_f ?pool vx ix nd)
              | C_verify { pred; _ } -> verify_into ix pred cand)
          conjuncts;
        cand
    | F_or nodes ->
        let acc = Bitset.create n in
        List.iter (fun nd -> Bitset.union_into ~into:acc (exec_f ?pool vx ix nd)) nodes;
        acc
    | F_not nd -> Bitset.complement (exec_f ?pool vx ix nd)
  in
  node.f_actual <- Bitset.count bs;
  bs

let rec exec_q ?pool vx ix node =
  let bs =
    match node.qshape with
    | Q_select fn -> exec_f ?pool vx ix fn
    | Q_minus (a, b) ->
        let sa = exec_q ?pool vx ix a in
        if Bitset.is_empty sa then sa else Bitset.diff sa (exec_q ?pool vx ix b)
    | Q_union (a, b) ->
        Bitset.union (exec_q ?pool vx ix a) (exec_q ?pool vx ix b)
    | Q_inter (a, b) ->
        let sa = exec_q ?pool vx ix a in
        if Bitset.is_empty sa then sa else Bitset.inter sa (exec_q ?pool vx ix b)
    | Q_chi (ax, a, b) ->
        let sa = exec_q ?pool vx ix a in
        if Bitset.is_empty sa then sa
        else
          let sb = exec_q ?pool vx ix b in
          if Bitset.is_empty sb then Bitset.create (Index.n ix)
          else Eval.chi ?pool ix ax sa sb
  in
  node.q_actual <- Bitset.count bs;
  bs

let exec ?pool t = exec_q ?pool t.vx t.ix t.root
let query t = t.query

let eval ?pool vx q = exec ?pool (plan vx q)
let eval_ids ?pool vx q = Index.ids_of (Vindex.index vx) (eval ?pool vx q)
let is_empty ?pool vx q = Bitset.is_empty (eval ?pool vx q)

(* {1 Explain} *)

let access_to_string = function
  | A_eq (a, v) -> Printf.sprintf "eq (%s=%s)" (Attr.to_string a) v
  | A_present a -> Printf.sprintf "present (%s=*)" (Attr.to_string a)
  | A_range { ge; attr; value } ->
      Printf.sprintf "range (%s%s%s)" (Attr.to_string attr) (if ge then ">=" else "<=") value
  | A_substr (a, s) -> Printf.sprintf "substr %s" (Filter.to_string (Filter.Substr (a, s)))
  | A_full -> "full"
  | A_empty -> "empty"

let card = function -1 -> "skipped" | c -> string_of_int c

let explain_lines t =
  let lines = ref [] in
  let emit depth text est actual =
    let line =
      Printf.sprintf "%s%-*s est=%-6d actual=%s"
        (String.make (2 * depth) ' ')
        (max 1 (40 - (2 * depth)))
        text est actual
    in
    lines := line :: !lines
  in
  let rec fgo depth fn =
    match fn.fshape with
    | F_access a -> emit depth (access_to_string a) fn.f_est (card fn.f_actual)
    | F_and (seed, conjuncts) ->
        emit depth "and" fn.f_est (card fn.f_actual);
        fgo (depth + 1) seed;
        List.iter
          (function
            | C_inter nd -> fgo (depth + 1) nd
            | C_verify { pred; r_est } ->
                emit (depth + 1)
                  (Printf.sprintf "verify %s" (Filter.to_string pred))
                  r_est "-")
          conjuncts
    | F_or nodes ->
        emit depth "or" fn.f_est (card fn.f_actual);
        List.iter (fgo (depth + 1)) nodes
    | F_not nd ->
        emit depth "not" fn.f_est (card fn.f_actual);
        fgo (depth + 1) nd
  in
  let rec qgo depth qn =
    match qn.qshape with
    | Q_select fn ->
        emit depth "select" qn.q_est (card qn.q_actual);
        fgo (depth + 1) fn
    | Q_minus (a, b) ->
        emit depth "minus" qn.q_est (card qn.q_actual);
        qgo (depth + 1) a;
        qgo (depth + 1) b
    | Q_union (a, b) ->
        emit depth "union" qn.q_est (card qn.q_actual);
        qgo (depth + 1) a;
        qgo (depth + 1) b
    | Q_inter (a, b) ->
        emit depth "inter" qn.q_est (card qn.q_actual);
        qgo (depth + 1) a;
        qgo (depth + 1) b
    | Q_chi (ax, a, b) ->
        emit depth (Printf.sprintf "chi %s" (Query.axis_to_string ax)) qn.q_est
          (card qn.q_actual);
        qgo (depth + 1) a;
        qgo (depth + 1) b
  in
  qgo 0 t.root;
  List.rev !lines

let pp_explain ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    (explain_lines t)

(* {1 Memoized evaluation}

   Hash-consed on the canonical [Query.to_string] rendering (round-trip
   tested in the parser suite), scoped to one [(index, vindex)] snapshot:
   a memo must be dropped with the snapshot it was built from.  Cached
   bitsets are shared — callers must treat results as immutable (all
   combinators here are persistent).

   Concurrency contract: [memo_eval] writes the cache and must run
   sequentially; [memo_eval_ro] never writes, so any number of domains
   may call it over a prewarmed memo concurrently ([Hashtbl] reads are
   safe when no writer runs).  The hit/miss counters move only under
   [memo_eval] for the same reason. *)

type memo = {
  m_vx : Vindex.t;
  m_ix : Index.t;
  cache : (string, Query.t * Bitset.t) Hashtbl.t;
      (* the AST rides along with each result so {!memo_apply} can
         re-admit inserted entries without reparsing the key *)
  mutable hits : int;
  mutable misses : int;
  mutable migrated : int;
  mutable dropped : int;
}

let memo_create vx =
  {
    m_vx = vx;
    m_ix = Vindex.index vx;
    cache = Hashtbl.create 256;
    hits = 0;
    misses = 0;
    migrated = 0;
    dropped = 0;
  }

let rec memo_eval_gen ~rw ?pool m q =
  let key = Query.to_string q in
  match Hashtbl.find_opt m.cache key with
  | Some (_, bs) ->
      if rw then m.hits <- m.hits + 1;
      bs
  | None ->
      if rw then m.misses <- m.misses + 1;
      let go = memo_eval_gen ~rw ?pool m in
      let bs =
        match q with
        | Query.Select _ -> exec ?pool (plan m.m_vx q)
        | Query.Minus (a, b) ->
            let sa = go a in
            if Bitset.is_empty sa then sa else Bitset.diff sa (go b)
        | Query.Union (a, b) -> Bitset.union (go a) (go b)
        | Query.Inter (a, b) ->
            let sa = go a in
            if Bitset.is_empty sa then sa else Bitset.inter sa (go b)
        | Query.Chi (ax, a, b) ->
            let sa = go a in
            if Bitset.is_empty sa then sa
            else
              let sb = go b in
              if Bitset.is_empty sb then Bitset.create (Index.n m.m_ix)
              else Eval.chi ?pool m.m_ix ax sa sb
      in
      if rw then Hashtbl.add m.cache key (q, bs);
      bs

let memo_eval ?pool m q = memo_eval_gen ~rw:true ?pool m q
let memo_eval_ro ?pool m q = memo_eval_gen ~rw:false ?pool m q

let prewarm ?pool m qs =
  (* Occurrence counts over canonical renderings of every subquery node;
     anything shared (count ≥ 2) is evaluated-and-cached up front — the
     Figure-4 obligation set shares its class selections and χ frames
     heavily, and even a single obligation like σ−(s_i, χ(ax, s_i, s_j))
     names s_i twice. *)
  let counts = Hashtbl.create 256 in
  let subs = List.map Query.subqueries qs in
  List.iter
    (List.iter (fun sq ->
         let key = Query.to_string sq in
         Hashtbl.replace counts key
           (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))))
    subs;
  List.iter
    (List.iter (fun sq ->
         let key = Query.to_string sq in
         if
           Option.value ~default:0 (Hashtbl.find_opt counts key) >= 2
           && not (Hashtbl.mem m.cache key)
         then ignore (memo_eval ?pool m sq)))
    subs

let memo_stats m = (m.hits, m.misses, Hashtbl.length m.cache)

(* {2 Memo migration across an update}

   A cached result can be carried to the post-transaction snapshot when
   the query is {e pointwise} — membership of an entry depends only on
   that entry's own content (Select leaves composed with ∪/∩/−).  Then
   surviving entries keep their verdict (ranks translate through the two
   id tables), deleted entries drop out, and each inserted entry is
   admitted by one direct membership test.  χ-containing queries are
   invalidated instead: an insertion changes χ membership of arbitrary
   relatives of the insertion point (e.g. χ_p spreads to every child of
   an affected parent), so no per-subtree confinement of the affected
   set is sound for composed queries.  The expensive shared subqueries
   across the Figure-4 obligation set — the class selections — are
   pointwise, so they are exactly what survives. *)

let rec pointwise = function
  | Query.Select _ -> true
  | Query.Minus (a, b) | Query.Union (a, b) | Query.Inter (a, b) ->
      pointwise a && pointwise b
  | Query.Chi _ -> false

let rec pointwise_member q e =
  match q with
  | Query.Select f -> Filter.matches f e
  | Query.Minus (a, b) -> pointwise_member a e && not (pointwise_member b e)
  | Query.Union (a, b) -> pointwise_member a e || pointwise_member b e
  | Query.Inter (a, b) -> pointwise_member a e && pointwise_member b e
  | Query.Chi _ -> assert false

let memo_apply ~vindex ~splices ops m =
  let new_ix = Vindex.index vindex in
  (* entries inserted by Δ and still present at the end of it *)
  let inserted : (Entry.id, Entry.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Update.Insert { entry; _ } -> Hashtbl.replace inserted (Entry.id entry) entry
      | Update.Delete id -> Hashtbl.remove inserted id)
    ops;
  let inserted_ranks =
    Hashtbl.fold
      (fun id e acc ->
        match Index.rank_opt new_ix id with
        | Some r -> (r, e) :: acc
        | None -> acc)
      inserted []
  in
  (* Replay the transaction's rank-space edits on the bitset itself: a
     splice shifts every surviving verdict to its new rank in one
     word-level pass ([Bitset.splice]), deleted ranks fall out of the
     removed window, and inserted ranks start cleared — to be admitted
     below by direct membership tests.  O(#splices · n/64) per cached
     set, independent of how many members it has, and with no per-member
     id→rank translation.  (A delete-then-reinsert of the same id is
     handled structurally: the old verdict dies with the removed window
     rather than leaking through an id-based translation.) *)
  let migrate bs =
    List.fold_left
      (fun bs { Index.sp_at; sp_removed; sp_inserted } ->
        Bitset.splice ~at:sp_at ~removed:sp_removed ~inserted:sp_inserted bs)
      bs splices
  in
  let m' =
    {
      m_vx = vindex;
      m_ix = new_ix;
      cache = Hashtbl.create (max 16 (Hashtbl.length m.cache));
      hits = m.hits;
      misses = m.misses;
      migrated = m.migrated;
      dropped = m.dropped;
    }
  in
  Hashtbl.iter
    (fun key (q, bs) ->
      if pointwise q then begin
        let nbs = migrate bs in
        List.iter
          (fun (r', e) -> if pointwise_member q e then Bitset.set nbs r')
          inserted_ranks;
        Hashtbl.add m'.cache key (q, nbs);
        m'.migrated <- m'.migrated + 1
      end
      else m'.dropped <- m'.dropped + 1)
    m.cache;
  m'

let memo_migration_stats m = (m.migrated, m.dropped)
