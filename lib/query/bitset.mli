(** Dense bit sets over entry ranks.

    Query evaluation represents intermediate results as bit sets indexed by
    the dense rank an {!Index} assigns to each entry; all boolean
    combinators are then word-parallel.  The API is persistent (operations
    return fresh sets) — evaluation never aliases intermediate results. *)

type t

(** [create n] is the empty set over universe [0..n-1]. *)
val create : int -> t

(** Universe size. *)
val length : t -> int

(** [full n] is the set containing all of [0..n-1]. *)
val full : int -> t

val mem : t -> int -> bool

(** [add s i] / [remove s i] are persistent single-bit updates. *)
val add : t -> int -> t

val remove : t -> int -> t

(** In-place variants, used by the linear tree sweeps. *)
val set : t -> int -> unit

val unset : t -> int -> unit
val copy : t -> t

(** Set algebra; arguments must share a universe size
    (raises [Invalid_argument] otherwise). *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

(** [union_into ~into src] — [into := into ∪ src], in place, no
    allocation.  Used to merge per-chunk results of the parallel sweeps
    without building an intermediate set per chunk.  Universe sizes must
    match. *)
val union_into : into:t -> t -> unit

(** [inter_into ~into src] — [into := into ∩ src], in place, no
    allocation.  The conjunction chains of the indexed evaluator and the
    planner accumulate into one set instead of allocating a fresh bitset
    per conjunct.  Universe sizes must match. *)
val inter_into : into:t -> t -> unit

(** [blit_words ~src ~dst ~at] copies all bits of [src] into [dst]
    starting at bit offset [at], overwriting exactly the bits
    [at, at + length src) of [dst] (the trailing padding of [src]'s last
    byte is masked, not copied).  [at] must be byte-aligned ([at mod 8 =
    0]) and the target range in bounds — [Invalid_argument] otherwise.
    Disjoint byte-aligned targets of one [dst] may be blitted from
    different domains concurrently. *)
val blit_words : src:t -> dst:t -> at:int -> unit

(** [splice ~at ~removed ~inserted s] re-aligns a rank-indexed set with
    one index splice (see {!Index.splice}): bits [[0, at)] keep their
    positions, bits [[at, at + removed)] are dropped, [inserted] fresh
    {e zero} bits appear at [at], and the tail shifts by
    [inserted - removed].  The result's universe is resized to match.
    O(n/64) — this is what lets a cached per-rank set ride through a
    version step without per-member re-ranking. *)
val splice : at:int -> removed:int -> inserted:int -> t -> t

val is_empty : t -> bool
val cardinal : t -> int

(** Synonym for {!cardinal}; reads naturally next to the [_into]
    accumulation loops ([count] after [inter_into] replaces the
    allocate-then-[cardinal] pattern). *)
val count : t -> int
val equal : t -> t -> bool
val subset : t -> t -> bool

(** [iter f s] applies [f] to members in increasing order, skipping
    all-zero words — O(n/8 + |members|), so iterating a sparse candidate
    set is much cheaper than a full rank scan. *)
val iter : (int -> unit) -> t -> unit

(** [iter_range f s ~lo ~hi] — members within [lo, hi) only, in
    increasing order.  Out-of-range bounds are clamped.  This is the
    per-chunk traversal primitive of the parallel sweeps. *)
val iter_range : (int -> unit) -> t -> lo:int -> hi:int -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t

(** First member, if any. *)
val choose : t -> int option

val pp : Format.formatter -> t -> unit
