open Bounds_model

type scope = Base | One_level | Subtree

let scope_to_string = function
  | Base -> "base"
  | One_level -> "one"
  | Subtree -> "sub"

let scope_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "base" -> Ok Base
  | "one" | "onelevel" | "one-level" -> Ok One_level
  | "sub" | "subtree" -> Ok Subtree
  | other -> Error (Printf.sprintf "unknown scope %S (base/one/sub)" other)

(* Fold over the ranks in scope, in increasing (preorder) order. *)
let fold_scope ix ~base scope f init =
  Index.materialize ix;
  match (base, scope) with
  | None, Base ->
      (* the roots: ranks whose parent is -1 *)
      let acc = ref init in
      for r = 0 to Index.n ix - 1 do
        if Index.parent_rank ix r = -1 then acc := f r !acc
      done;
      !acc
  | None, (One_level | Subtree) ->
      let acc = ref init in
      let depth_limit = match scope with One_level -> Some 1 | _ -> None in
      for r = 0 to Index.n ix - 1 do
        match depth_limit with
        | Some d -> if Index.depth_of_rank ix r = d then acc := f r !acc
        | None -> acc := f r !acc
      done;
      !acc
  | Some id, Base -> f (Index.rank ix id) init
  | Some id, One_level ->
      (* validates that the base exists, even when childless *)
      ignore (Index.rank ix id);
      List.fold_left
        (fun acc child -> f (Index.rank ix child) acc)
        init
        (Instance.children (Index.instance ix) id)
  | Some id, Subtree ->
      let r0 = Index.rank ix id in
      let r1 = Index.extent_of_rank ix r0 in
      let acc = ref init in
      for r = r0 to r1 do
        acc := f r !acc
      done;
      !acc

let matches ?vindex ix filter =
  (* with a value index, pre-evaluate the filter once and test membership;
     otherwise test the filter per entry *)
  match vindex with
  | None -> fun r -> Filter.matches filter (Index.entry_of_rank ix r)
  | Some _ ->
      let bs = Eval.eval ?vindex ix (Query.Select filter) in
      fun r -> Bitset.mem bs r

let search ?vindex ix ~base scope filter =
  let keep = matches ?vindex ix filter in
  fold_scope ix ~base scope
    (fun r acc -> if keep r then Index.id_of_rank ix r :: acc else acc)
    []
  |> List.rev

let count ?vindex ix ~base scope filter =
  let keep = matches ?vindex ix filter in
  fold_scope ix ~base scope (fun r acc -> if keep r then acc + 1 else acc) 0
