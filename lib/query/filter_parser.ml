open Bounds_model

exception Err of Parse_error.t

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf (fun m -> raise (Err (Parse_error.make ~pos:st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> error st "expected %c, found %c" c c'
  | None -> error st "expected %c, found end of input" c

let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* A pattern is the text between '=' and ')'; '*' splits substring
   components.  Escapes follow RFC 2254: a backslash names a byte by two
   hex digits ([\2a] is '*').  A backslash before a non-hex-pair still
   escapes that single character, for compatibility with the pre-RFC
   form. Returns the components with a flag marking where stars were. *)
let read_pattern st =
  let buf = Buffer.create 16 in
  let parts = ref [] in
  let rec go () =
    match peek st with
    | None -> error st "unterminated filter (missing ')')"
    | Some ')' ->
        parts := Buffer.contents buf :: !parts;
        List.rev !parts
    | Some '*' ->
        st.pos <- st.pos + 1;
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf;
        go ()
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | None -> error st "dangling backslash"
        | Some c1 ->
            let hex =
              if st.pos + 1 < String.length st.src then
                match (hex_digit c1, hex_digit st.src.[st.pos + 1]) with
                | Some h, Some l -> Some (Char.chr ((h lsl 4) lor l))
                | _ -> None
              else None
            in
            (match hex with
            | Some byte ->
                Buffer.add_char buf byte;
                st.pos <- st.pos + 2
            | None ->
                Buffer.add_char buf c1;
                st.pos <- st.pos + 1));
        go ()
    | Some '(' -> error st "unescaped '(' in value"
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ()

let read_attr st =
  skip_ws st;
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | ';' | '.') ->
        st.pos <- st.pos + 1;
        go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error st "expected attribute name";
  match Attr.of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some a -> a
  | None -> error st "invalid attribute name"

let rec parse_filter st =
  expect st '(';
  skip_ws st;
  let f =
    match peek st with
    | Some '&' ->
        st.pos <- st.pos + 1;
        Filter.And (parse_list st)
    | Some '|' ->
        st.pos <- st.pos + 1;
        Filter.Or (parse_list st)
    | Some '!' ->
        st.pos <- st.pos + 1;
        Filter.Not (parse_filter st)
    | Some _ -> parse_simple st
    | None -> error st "unexpected end of input"
  in
  expect st ')';
  f

and parse_list st =
  skip_ws st;
  match peek st with
  | Some '(' ->
      let f = parse_filter st in
      f :: parse_list st
  | _ -> []

and parse_simple st =
  let attr = read_attr st in
  skip_ws st;
  match peek st with
  | Some '>' ->
      st.pos <- st.pos + 1;
      expect st '=';
      (match read_pattern st with
      | [ v ] -> Filter.Ge (attr, v)
      | _ -> error st "'*' not allowed in ordering assertions")
  | Some '<' ->
      st.pos <- st.pos + 1;
      expect st '=';
      (match read_pattern st with
      | [ v ] -> Filter.Le (attr, v)
      | _ -> error st "'*' not allowed in ordering assertions")
  | Some '=' -> (
      st.pos <- st.pos + 1;
      match read_pattern st with
      | [ v ] -> Filter.Eq (attr, v)
      | parts ->
          (* first part is initial (may be empty), last is final *)
          let rec split_last = function
            | [] -> assert false
            | [ x ] -> ([], x)
            | x :: rest ->
                let mid, last = split_last rest in
                (x :: mid, last)
          in
          let initial, rest =
            match parts with
            | "" :: rest -> (None, rest)
            | i :: rest -> (Some i, rest)
            | [] -> assert false
          in
          let any, final = split_last rest in
          let final = if final = "" then None else Some final in
          let any = List.filter (fun s -> s <> "") any in
          match (initial, any, final) with
          | None, [], None ->
              (* all components empty — one or more bare stars assert no
                 substring constraint at all, i.e. plain presence; the
                 degenerate Substr node would be unprintable *)
              Filter.Present attr
          | _ -> Filter.Substr (attr, { initial; any; final }))
  | _ -> error st "expected '=', '>=' or '<='"

let parse s =
  let st = { src = s; pos = 0 } in
  try
    let f = parse_filter st in
    skip_ws st;
    if st.pos <> String.length s then
      Error (Parse_error.make ~pos:st.pos "trailing input")
    else Ok f
  with Err e -> Error e

let parse_string s = Result.map_error Parse_error.to_string (parse s)

let parse_exn s =
  match parse s with Ok f -> f | Error e -> failwith (Parse_error.to_string e)
