module Pool = Bounds_par.Pool

(* Parallel scans partition the rank space [0, n) into chunks whose
   boundaries are multiples of 64 bits ([Pool.parallel_for]'s default
   alignment): each worker then writes only bytes of the shared result
   bitset that belong to its own chunk, so the fill needs no
   synchronization, and the pool's join publishes the writes to the
   caller.  Without a pool every combinator below degrades to the exact
   sequential loop. *)

let eval_filter ?pool ix f =
  Index.materialize ix;
  let n = Index.n ix in
  let bs = Bitset.create n in
  Pool.parallel_for ?pool n (fun ~lo ~hi ->
      for r = lo to hi - 1 do
        if Filter.matches f (Index.entry_of_rank ix r) then Bitset.set bs r
      done);
  bs

(* result = q1 ∩ { e | some child of e is in q2 }: iterate the members of
   q2 (the sparse candidate set) and keep their parents that lie in q1.
   A member's parent rank can fall in any chunk, so parallel workers mark
   into chunk-local sets, merged in place afterwards — [union_into]
   allocates no intermediate set per merge step. *)
let chi_child ?pool ix q1 q2 =
  let n = Index.n ix in
  let mark target ~lo ~hi =
    Bitset.iter_range
      (fun r ->
        let p = Index.parent_rank ix r in
        if p >= 0 && Bitset.mem q1 p then Bitset.set target p)
      q2 ~lo ~hi
  in
  match
    Pool.map_chunks ?pool ~oversub:1 n (fun ~lo ~hi ->
        let local = Bitset.create n in
        mark local ~lo ~hi;
        local)
  with
  | [] -> Bitset.create n
  | first :: rest ->
      List.iter (fun local -> Bitset.union_into ~into:first local) rest;
      first

(* result = { r ∈ q1 | parent of r is in q2 }: iterate q1 — the result is
   a subset of it — instead of scanning every rank (mirrors the chi_child
   pattern).  Each chunk sets only bits of its own range, so parallel
   workers write disjoint bytes of the shared result directly. *)
let chi_parent ?pool ix q1 q2 =
  let n = Index.n ix in
  let result = Bitset.create n in
  Pool.parallel_for ?pool n (fun ~lo ~hi ->
      Bitset.iter_range
        (fun r ->
          let p = Index.parent_rank ix r in
          if p >= 0 && Bitset.mem q2 p then Bitset.set result r)
        q1 ~lo ~hi);
  result

(* Reverse preorder sweep: when node r is visited all its descendants have
   already pushed their contribution into [below].(r).

   Deliberately sequential even when a pool is available: [below.(p)]
   depends on [below.(r)] of every descendant r, and that dependency
   chains across arbitrary distances of the rank space (one edge per
   iteration), so a chunked sweep would read incomplete prefixes from
   neighbouring chunks.  See DESIGN.md, "Multicore legality engine". *)
let chi_descendant ix q1 q2 =
  let n = Index.n ix in
  let below = Bitset.create n in
  for r = n - 1 downto 0 do
    if Bitset.mem q2 r || Bitset.mem below r then begin
      let p = Index.parent_rank ix r in
      if p >= 0 then Bitset.set below p
    end
  done;
  Bitset.inter q1 below

(* Forward preorder sweep: parents are visited before children.  Also a
   loop-carried dependency ([above.(r)] needs [above.(parent r)], which
   may live arbitrarily far back), hence sequential — same argument as
   chi_descendant. *)
let chi_ancestor ix q1 q2 =
  let n = Index.n ix in
  let above = Bitset.create n in
  for r = 0 to n - 1 do
    let p = Index.parent_rank ix r in
    if p >= 0 && (Bitset.mem q2 p || Bitset.mem above p) then Bitset.set above r
  done;
  Bitset.inter q1 above

let chi ?pool ix ax s1 s2 =
  (* every axis kernel is a rank sweep over parent pointers *)
  Index.materialize ix;
  match ax with
  | Query.Child -> chi_child ?pool ix s1 s2
  | Query.Parent -> chi_parent ?pool ix s1 s2
  | Query.Descendant -> chi_descendant ix s1 s2
  | Query.Ancestor -> chi_ancestor ix s1 s2

(* With a value index, answer Eq/Present leaves from the hash table and
   push boolean structure into set algebra; other leaves fall back to the
   (chunk-parallel) entry scan. *)
let rec eval_filter_indexed ?pool vx ix f =
  match f with
  | Filter.Eq (a, v) -> Vindex.lookup_eq vx a v
  | Filter.Present a -> Vindex.lookup_present vx a
  | Filter.And fs ->
      (* Accumulate in place and stop as soon as the accumulator drains —
         a dead conjunction cannot come back, so the remaining conjuncts
         (possibly full scans) need not run at all. *)
      let rec go acc = function
        | [] -> acc
        | f :: rest ->
            Bitset.inter_into ~into:acc (eval_filter_indexed ?pool vx ix f);
            if Bitset.is_empty acc then acc else go acc rest
      in
      go (Bitset.full (Index.n ix)) fs
  | Filter.Or fs ->
      let acc = Bitset.create (Index.n ix) in
      List.iter
        (fun f -> Bitset.union_into ~into:acc (eval_filter_indexed ?pool vx ix f))
        fs;
      acc
  | Filter.Not f -> Bitset.complement (eval_filter_indexed ?pool vx ix f)
  | Filter.Ge _ | Filter.Le _ | Filter.Substr _ -> eval_filter ?pool ix f

let rec eval ?vindex ?pool ix q =
  match q with
  | Query.Select f -> (
      match vindex with
      | Some vx -> eval_filter_indexed ?pool vx ix f
      | None -> eval_filter ?pool ix f)
  | Query.Minus (a, b) ->
      Bitset.diff (eval ?vindex ?pool ix a) (eval ?vindex ?pool ix b)
  | Query.Union (a, b) ->
      Bitset.union (eval ?vindex ?pool ix a) (eval ?vindex ?pool ix b)
  | Query.Inter (a, b) ->
      Bitset.inter (eval ?vindex ?pool ix a) (eval ?vindex ?pool ix b)
  | Query.Chi (ax, a, b) ->
      let s1 = eval ?vindex ?pool ix a and s2 = eval ?vindex ?pool ix b in
      chi ?pool ix ax s1 s2

let eval_ids ?vindex ?pool ix q = Index.ids_of ix (eval ?vindex ?pool ix q)

(* Emptiness tests (the legality hot path) don't need the full result:
   every binary operator except Union is left-absorbing — an empty left
   operand forces an empty result — so evaluate the left side first and
   skip the right side entirely when it already drained. *)
let rec is_empty ?vindex ?pool ix q =
  match q with
  | Query.Union (a, b) ->
      is_empty ?vindex ?pool ix a && is_empty ?vindex ?pool ix b
  | Query.Minus (a, b) ->
      let sa = eval ?vindex ?pool ix a in
      Bitset.is_empty sa
      || Bitset.is_empty (Bitset.diff sa (eval ?vindex ?pool ix b))
  | Query.Inter (a, b) ->
      let sa = eval ?vindex ?pool ix a in
      Bitset.is_empty sa
      || Bitset.is_empty (Bitset.inter sa (eval ?vindex ?pool ix b))
  | Query.Chi (ax, a, b) ->
      (* χ results are subsets of q1 and empty whenever q2 is empty. *)
      let s1 = eval ?vindex ?pool ix a in
      Bitset.is_empty s1
      ||
      let s2 = eval ?vindex ?pool ix b in
      Bitset.is_empty s2 || Bitset.is_empty (chi ?pool ix ax s1 s2)
  | Query.Select _ -> Bitset.is_empty (eval ?vindex ?pool ix q)
