(* Little-endian Patricia tries after Okasaki & Gill, "Fast Mergeable
   Integer Maps".  [Branch (p, m, l, r)]: [m] is a one-bit branching
   mask, [p] the common prefix of every key below (bits strictly below
   [m]); keys with bit [m] clear live in [l].  Lookup inspects one bit
   per node, insertion copies only the spine above the touched leaf. *)

type 'a t =
  | Empty
  | Leaf of int * 'a
  | Branch of int * int * 'a t * 'a t

let empty = Empty
let is_empty t = t = Empty
let singleton k v = Leaf (k, v)

let[@inline] zero_bit k m = k land m = 0
let[@inline] lowest_bit x = x land -x
let[@inline] mask k m = k land (m - 1)
let[@inline] match_prefix k p m = mask k m = p

let rec find_opt k = function
  | Empty -> None
  | Leaf (j, v) -> if j = k then Some v else None
  | Branch (p, m, l, r) ->
      if not (match_prefix k p m) then None
      else if zero_bit k m then find_opt k l
      else find_opt k r

let mem k t = find_opt k t <> None

(* Combine two trees whose prefixes are known to differ. *)
let join p0 t0 p1 t1 =
  let m = lowest_bit (p0 lxor p1) in
  if zero_bit p0 m then Branch (mask p0 m, m, t0, t1)
  else Branch (mask p0 m, m, t1, t0)

let rec add k v = function
  | Empty -> Leaf (k, v)
  | Leaf (j, _) as t -> if j = k then Leaf (k, v) else join k (Leaf (k, v)) j t
  | Branch (p, m, l, r) as t ->
      if match_prefix k p m then
        if zero_bit k m then Branch (p, m, add k v l, r)
        else Branch (p, m, l, add k v r)
      else join k (Leaf (k, v)) p t

(* Smart constructor: collapse empty sides so the trie never holds a
   one-child branch. *)
let branch p m l r =
  match (l, r) with Empty, t | t, Empty -> t | _ -> Branch (p, m, l, r)

let rec remove k = function
  | Empty -> Empty
  | Leaf (j, _) as t -> if j = k then Empty else t
  | Branch (p, m, l, r) as t ->
      if not (match_prefix k p m) then t
      else if zero_bit k m then branch p m (remove k l) r
      else branch p m l (remove k r)

let update k f t =
  match f (find_opt k t) with Some v -> add k v t | None -> remove k t

let rec iter f = function
  | Empty -> ()
  | Leaf (k, v) -> f k v
  | Branch (_, _, l, r) ->
      iter f l;
      iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf (k, v) -> f k v acc
  | Branch (_, _, l, r) -> fold f r (fold f l acc)

let rec cardinal = function
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r
