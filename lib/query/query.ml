type axis = Child | Parent | Descendant | Ancestor

type t =
  | Select of Filter.t
  | Minus of t * t
  | Union of t * t
  | Inter of t * t
  | Chi of axis * t * t

let rec size = function
  | Select f -> Filter.size f
  | Minus (a, b) | Union (a, b) | Inter (a, b) -> 1 + size a + size b
  | Chi (_, a, b) -> 1 + size a + size b

let axis_to_string = function
  | Child -> "c"
  | Parent -> "p"
  | Descendant -> "d"
  | Ancestor -> "a"

let axis_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "c" | "child" -> Ok Child
  | "p" | "parent" -> Ok Parent
  | "d" | "descendant" -> Ok Descendant
  | "a" | "ancestor" -> Ok Ancestor
  | other -> Error (Printf.sprintf "unknown axis %S (expected c/p/d/a)" other)

let quote s = Printf.sprintf "%S" s

let rec to_string = function
  | Select f -> Printf.sprintf "(select %s)" (quote (Filter.to_string f))
  | Minus (a, b) -> Printf.sprintf "(minus %s %s)" (to_string a) (to_string b)
  | Union (a, b) -> Printf.sprintf "(union %s %s)" (to_string a) (to_string b)
  | Inter (a, b) -> Printf.sprintf "(inter %s %s)" (to_string a) (to_string b)
  | Chi (ax, a, b) ->
      Printf.sprintf "(chi %s %s %s)" (axis_to_string ax) (to_string a) (to_string b)

let pp ppf q = Format.pp_print_string ppf (to_string q)

let rec equal q1 q2 =
  match (q1, q2) with
  | Select f, Select g -> Filter.equal f g
  | Minus (a, b), Minus (c, d)
  | Union (a, b), Union (c, d)
  | Inter (a, b), Inter (c, d) ->
      equal a c && equal b d
  | Chi (ax, a, b), Chi (ay, c, d) -> ax = ay && equal a c && equal b d
  | (Select _ | Minus _ | Union _ | Inter _ | Chi _), _ -> false

let select_class c = Select (Filter.class_eq c)

let subqueries q =
  let rec go q acc =
    match q with
    | Select _ -> q :: acc
    | Minus (a, b) | Union (a, b) | Inter (a, b) | Chi (_, a, b) ->
        q :: go a (go b acc)
  in
  go q []
