(** Parser for the RFC-2254-style filter syntax.

    Grammar (whitespace between tokens is ignored):
    {v
      filter  ::= '(' body ')'
      body    ::= '&' filter*            conjunction
                | '|' filter*            disjunction
                | '!' filter             negation
                | attr '=' '*'           presence
                | attr '=' pattern       equality or substring (if '*' occurs)
                | attr '>=' value
                | attr '<=' value
    v}
    Backslash escapes [\(], [\)], [\*], [\\] inside values. *)

(** Errors carry the byte offset the parser stopped at, in the shared
    {!Bounds_model.Parse_error.t} shape. *)
val parse : string -> (Filter.t, Bounds_model.Parse_error.t) result

val parse_string : string -> (Filter.t, string) result
[@@deprecated "use [parse]; render with [Bounds_model.Parse_error.to_string]"]

(** [parse_exn] raises [Failure] with the rendered error message. *)
val parse_exn : string -> Filter.t
