(** Persistent int-keyed maps (Okasaki–Gill little-endian Patricia
    tries).

    The index and value-index version steps need maps that share
    structure between versions: updating [k] copies the O(log n) path to
    [k]'s leaf and shares everything else, so a transaction's version
    step costs O(|Δ| log n) instead of the O(n) [Hashtbl.copy] it
    replaces.  Keys must be non-negative (entry ids, interned string
    ids, chunk uids — all dense counters here). *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val singleton : int -> 'a -> 'a t
val mem : int -> 'a t -> bool
val find_opt : int -> 'a t -> 'a option

(** [add k v t] binds [k] to [v], replacing any previous binding. *)
val add : int -> 'a -> 'a t -> 'a t

(** [remove k t] — returns [t] itself when [k] is unbound. *)
val remove : int -> 'a t -> 'a t

(** [update k f t] — [f] receives the current binding; [Some v] rebinds,
    [None] removes. *)
val update : int -> ('a option -> 'a option) -> 'a t -> 'a t

val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

(** O(n). *)
val cardinal : 'a t -> int
